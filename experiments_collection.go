package xqtp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"xqtp/internal/gen"
	"xqtp/internal/xdm"
)

// The collection experiment measures the corpus layer: parallel ingest
// throughput (MB/s, one bounded worker pool over the fused scanner) and
// fan-out query throughput (corpus queries per second) as the corpus grows,
// each at one worker and at one worker per CPU.

// CollectionCell is one measurement of the collection experiment: an ingest
// row (Query empty, MBPerSec set), a query row (QPS set), or a snapshot row
// (phase "snapshot-save" / "snapshot-load", MBPerSec normalized to the XML
// size of the corpus so it compares directly against the ingest rows).
type CollectionCell struct {
	Phase       string `json:"phase"` // "ingest", "query", "snapshot-save", "snapshot-load"
	Docs        int    `json:"docs"`
	Workers     int    `json:"workers"`
	Query       string `json:"query,omitempty"`
	CorpusBytes int    `json:"corpus_bytes"`
	// SnapshotBytes is the serialized snapshot size of the snapshot rows.
	SnapshotBytes int `json:"snapshot_bytes,omitempty"`
	Nodes         int `json:"nodes,omitempty"`
	Items         int `json:"items,omitempty"` // result size of the query rows
	// Skipped counts corpus members the fan-out never evaluated because the
	// count-based emptiness proof ruled them out (query rows only).
	Skipped     int     `json:"skipped,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	QPS         float64 `json:"qps,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// CollectionReport is the machine-readable output of RunCollection. The
// cells key is distinct from the other reports so benchdiff can identify the
// report kind.
type CollectionReport struct {
	Seed    int64            `json:"seed"`
	Repeats int              `json:"repeats"`
	CPUs    int              `json:"cpus"`
	Note    string           `json:"note,omitempty"`
	Cells   []CollectionCell `json:"collection_cells"`
}

// collectionQueries are the query rows: a root-bound XMark pattern (fans out
// per member, skipping the MemBeR members via the name table), a root-bound
// MemBeR pattern, and an fn:collection() form (evaluated once over the
// corpus, parallel across member roots).
var collectionQueries = []PaperQuery{
	{"fanout-xmark", `$input//person[emailaddress]/name`},
	{"fanout-member", `$input//t01[t02]`},
	{"collection-fn", `fn:collection()//person[emailaddress]/name`},
}

// collectionSources generates a mixed corpus of n members: MemBeR-style and
// XMark-like documents interleaved, a few KB each, serialized through the
// generator-to-scanner path.
func collectionSources(n int, seed int64) []CorpusSource {
	out := make([]CorpusSource, n)
	for i := 0; i < n; i++ {
		var root *xdm.Node
		if i%2 == 0 {
			root = gen.MemberRoot(gen.MemberConfig{
				Seed: seed + int64(i), Depth: 4, NumTags: 20, NumNodes: 300,
			})
		} else {
			root = gen.XMarkRoot(gen.XMarkConfig{Seed: seed + int64(i), People: 8})
		}
		out[i] = CorpusSource{
			URI:  fmt.Sprintf("mem://corpus-%05d.xml", i),
			Data: generatedXML(root, 0),
		}
	}
	return out
}

// collectionWorkerCounts returns the measured worker settings: 1 and one per
// CPU (deduplicated on single-CPU hosts).
func collectionWorkerCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// RunCollection measures corpus ingest MB/s and fan-out query QPS against
// corpus size and worker count. If jsonPath is non-empty the
// machine-readable report is also written there.
func RunCollection(w io.Writer, opts ExperimentOptions, jsonPath string) error {
	fmt.Fprintf(w, "Collection: parallel corpus ingest and fan-out query throughput\n\n")
	report := CollectionReport{Seed: opts.Seed, Repeats: opts.Repeats, CPUs: runtime.NumCPU()}
	if report.CPUs == 1 {
		report.Note = "single-CPU host: workers>1 rows are absent and parallel speedups cannot manifest; treat these as single-proc baselines"
	}
	workerCounts := collectionWorkerCounts()

	fmt.Fprintf(w, "%-8s %-8s %10s %12s %12s %14s %12s\n",
		"docs", "workers", "MB/s", "ms/op", "nodes", "B/op", "allocs/op")
	for _, nDocs := range opts.CollectionSizes {
		sources := collectionSources(nDocs, opts.Seed)
		totalBytes := 0
		for _, s := range sources {
			totalBytes += len(s.Data)
		}
		for _, workers := range workerCounts {
			if err := opts.checkpoint(); err != nil {
				return err
			}
			workers := workers
			var corpus *Corpus
			op := func() (int, error) {
				c, err := LoadCorpus(sources, workers)
				if err != nil {
					return 0, err
				}
				corpus = c
				return c.NumNodes(), nil
			}
			d, allocs, bytesPerOp, nodes, err := measureIngest(op, opts.Repeats)
			if err != nil {
				return fmt.Errorf("ingest %d docs: %w", nDocs, err)
			}
			mbps := float64(totalBytes) / d.Seconds() / 1e6
			fmt.Fprintf(w, "%-8d %-8d %10.1f %12.2f %12d %14d %12d\n",
				nDocs, workers, mbps, float64(d.Nanoseconds())/1e6, nodes, bytesPerOp, allocs)
			report.Cells = append(report.Cells, CollectionCell{
				Phase:       "ingest",
				Docs:        nDocs,
				Workers:     workers,
				CorpusBytes: totalBytes,
				Nodes:       nodes,
				NsPerOp:     float64(d.Nanoseconds()),
				MBPerSec:    mbps,
				AllocsPerOp: allocs,
				BytesPerOp:  bytesPerOp,
			})
			_ = corpus
		}
	}

	// Snapshot phases: serialize the loaded corpus and load it back. MB/s is
	// normalized to the corpus's XML size, so the load rows state directly
	// how much faster opening a snapshot is than re-ingesting the XML.
	fmt.Fprintf(w, "\n%-16s %-8s %10s %12s %16s %14s %12s\n",
		"phase", "docs", "MB/s", "ms/op", "snapshot_bytes", "B/op", "allocs/op")
	for _, nDocs := range opts.CollectionSizes {
		sources := collectionSources(nDocs, opts.Seed)
		totalBytes := 0
		for _, s := range sources {
			totalBytes += len(s.Data)
		}
		corpus, err := LoadCorpus(sources, 0)
		if err != nil {
			return err
		}
		var blob []byte
		saveOp := func() (int, error) {
			var buf bytes.Buffer
			if err := corpus.SaveSnapshot(&buf); err != nil {
				return 0, err
			}
			blob = buf.Bytes()
			return len(blob), nil
		}
		d, allocs, bytesPerOp, snapBytes, err := measureIngest(saveOp, opts.Repeats)
		if err != nil {
			return fmt.Errorf("snapshot-save %d docs: %w", nDocs, err)
		}
		mbps := float64(totalBytes) / d.Seconds() / 1e6
		fmt.Fprintf(w, "%-16s %-8d %10.1f %12.2f %16d %14d %12d\n",
			"snapshot-save", nDocs, mbps, float64(d.Nanoseconds())/1e6, snapBytes, bytesPerOp, allocs)
		report.Cells = append(report.Cells, CollectionCell{
			Phase:         "snapshot-save",
			Docs:          nDocs,
			Workers:       1,
			CorpusBytes:   totalBytes,
			SnapshotBytes: snapBytes,
			NsPerOp:       float64(d.Nanoseconds()),
			MBPerSec:      mbps,
			AllocsPerOp:   allocs,
			BytesPerOp:    bytesPerOp,
		})
		loadOp := func() (int, error) {
			c, err := OpenCorpusSnapshot(blob)
			if err != nil {
				return 0, err
			}
			return c.NumNodes(), nil
		}
		d, allocs, bytesPerOp, nodes, err := measureIngest(loadOp, opts.Repeats)
		if err != nil {
			return fmt.Errorf("snapshot-load %d docs: %w", nDocs, err)
		}
		mbps = float64(totalBytes) / d.Seconds() / 1e6
		fmt.Fprintf(w, "%-16s %-8d %10.1f %12.2f %16d %14d %12d\n",
			"snapshot-load", nDocs, mbps, float64(d.Nanoseconds())/1e6, len(blob), bytesPerOp, allocs)
		report.Cells = append(report.Cells, CollectionCell{
			Phase:         "snapshot-load",
			Docs:          nDocs,
			Workers:       1,
			CorpusBytes:   totalBytes,
			SnapshotBytes: len(blob),
			Nodes:         nodes,
			NsPerOp:       float64(d.Nanoseconds()),
			MBPerSec:      mbps,
			AllocsPerOp:   allocs,
			BytesPerOp:    bytesPerOp,
		})
	}

	fmt.Fprintf(w, "\n%-16s %-8s %-8s %10s %12s %8s %8s %14s %12s\n",
		"query", "docs", "workers", "qps", "ms/op", "items", "skipped", "B/op", "allocs/op")
	for _, nDocs := range opts.CollectionSizes {
		corpus, err := LoadCorpus(collectionSources(nDocs, opts.Seed), 0)
		if err != nil {
			return err
		}
		for _, pq := range collectionQueries {
			q, err := Prepare(pq.Query)
			if err != nil {
				return fmt.Errorf("%s: %w", pq.Name, err)
			}
			for _, workers := range workerCounts {
				if err := opts.checkpoint(); err != nil {
					return err
				}
				items, skipped := 0, 0
				op := func() (int, error) {
					seq, rs, err := corpus.RunParallelStats(q, Auto, workers)
					if err != nil {
						return 0, err
					}
					items = len(seq)
					skipped = rs.Skipped
					return items, nil
				}
				d, allocs, bytesPerOp, _, err := measureIngest(op, opts.Repeats)
				if err != nil {
					return fmt.Errorf("%s over %d docs: %w", pq.Name, nDocs, err)
				}
				qps := 1 / d.Seconds()
				fmt.Fprintf(w, "%-16s %-8d %-8d %10.1f %12.2f %8d %8d %14d %12d\n",
					pq.Name, nDocs, workers, qps, float64(d.Nanoseconds())/1e6, items, skipped, bytesPerOp, allocs)
				report.Cells = append(report.Cells, CollectionCell{
					Phase:       "query",
					Docs:        nDocs,
					Workers:     workers,
					Query:       pq.Name,
					CorpusBytes: corpus.SizeBytes(),
					Items:       items,
					Skipped:     skipped,
					NsPerOp:     float64(d.Nanoseconds()),
					QPS:         qps,
					AllocsPerOp: allocs,
					BytesPerOp:  bytesPerOp,
				})
			}
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "(report written to %s)\n", jsonPath)
	}
	return nil
}
