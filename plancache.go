package xqtp

import (
	"container/list"
	"sync"
)

// DefaultPlanCacheSize is the capacity of the package-level plan cache used
// by PrepareCached.
const DefaultPlanCacheSize = 256

// PlanCache is a bounded LRU cache of compiled queries keyed by (query
// text, compile options). A serving process prepares each distinct query
// once and reuses the compiled plan — and, through the Query's own physical
// plan memoization and prepared-pattern cache, the slot-resolved physical
// lowering and the resolved joins — on every subsequent request.
//
// All methods are safe for concurrent use. Cached *Query values are shared
// between callers; they are immutable after compilation and safe to Run
// from many goroutines.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // front = most recently used; values are *planEntry
	entries map[planKey]*list.Element

	hits, misses, evictions uint64
}

type planKey struct {
	query string
	opts  CompileOptions
}

type planEntry struct {
	key planKey
	q   *Query
}

// NewPlanCache builds a cache holding at most size compiled queries
// (size <= 0 falls back to DefaultPlanCacheSize).
func NewPlanCache(size int) *PlanCache {
	if size <= 0 {
		size = DefaultPlanCacheSize
	}
	return &PlanCache{
		max:     size,
		lru:     list.New(),
		entries: make(map[planKey]*list.Element, size),
	}
}

// Prepare returns the cached compilation of query under DefaultOptions,
// compiling and caching it on a miss.
func (c *PlanCache) Prepare(query string) (*Query, error) {
	return c.PrepareWithOptions(query, DefaultOptions)
}

// PrepareWithOptions returns the cached compilation of query under opts,
// compiling and caching it on a miss. The compile itself runs outside the
// cache lock, so a slow compilation never blocks cache hits; concurrent
// misses on the same key may compile twice, and the first stored entry
// wins.
func (c *PlanCache) PrepareWithOptions(query string, opts CompileOptions) (*Query, error) {
	if opts.ContextVar == "" {
		// Normalize so "" and the explicit default share one entry.
		opts.ContextVar = "dot"
	}
	key := planKey{query: query, opts: opts}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		q := el.Value.(*planEntry).q
		c.mu.Unlock()
		return q, nil
	}
	c.misses++
	c.mu.Unlock()

	q, err := PrepareWithOptions(query, opts)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Lost the race: keep the first entry so every caller shares one
		// Query (and one prepared-pattern cache).
		c.lru.MoveToFront(el)
		return el.Value.(*planEntry).q, nil
	}
	c.entries[key] = c.lru.PushFront(&planEntry{key: key, q: q})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
		c.evictions++
	}
	return q, nil
}

// PlanCacheStats is a snapshot of cache activity.
type PlanCacheStats struct {
	Size      int    // entries currently cached
	Capacity  int    // maximum entries
	Hits      uint64 // lookups served from cache
	Misses    uint64 // lookups that compiled
	Evictions uint64 // entries dropped by the LRU bound
}

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Size:      c.lru.Len(),
		Capacity:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// Reset empties the cache and zeroes its counters.
func (c *PlanCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[planKey]*list.Element, c.max)
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// defaultPlanCache backs PrepareCached / PrepareCachedWithOptions.
var defaultPlanCache = NewPlanCache(DefaultPlanCacheSize)

// PrepareCached is Prepare backed by a process-wide bounded LRU plan cache:
// the serving-path entry point for repeated queries.
func PrepareCached(query string) (*Query, error) {
	return defaultPlanCache.Prepare(query)
}

// PrepareCachedWithOptions is PrepareWithOptions backed by the process-wide
// plan cache.
func PrepareCachedWithOptions(query string, opts CompileOptions) (*Query, error) {
	return defaultPlanCache.PrepareWithOptions(query, opts)
}
