package xqtp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

// ServeResult is one measurement of the concurrent serving experiment: a
// mixed XMark query workload over a shared document, executed from cached
// plans on a fixed number of processors.
type ServeResult struct {
	Algorithm   string  `json:"algorithm"`
	Procs       int     `json:"procs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	QPS         float64 `json:"qps"`
	// Speedup is this measurement's QPS over the same algorithm's
	// single-proc QPS (1.0 for the single-proc row itself).
	Speedup float64 `json:"speedup_vs_serial"`
}

// HTTPServeCell is one measurement of the HTTP serving experiment: a fixed
// number of closed-loop clients issuing the mixed XMark workload as POST
// /query requests against the network serving tier (admission control,
// streamed NDJSON, optional result cache). Latency percentiles come from the
// sorted per-request samples, not a histogram.
type HTTPServeCell struct {
	Algorithm   string  `json:"algorithm"`
	Clients     int     `json:"clients"`
	ResultCache string  `json:"result_cache"` // "off" or "on"
	Requests    int     `json:"requests"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Rows        int64   `json:"rows"`
	Shed        uint64  `json:"shed"`
	CacheHits   uint64  `json:"cache_hits"`
}

// ServeReport is the machine-readable output of RunServe.
type ServeReport struct {
	People        int      `json:"xmark_people"`
	DocumentBytes int      `json:"document_bytes"`
	Queries       []string `json:"queries"`
	MaxProcs      int      `json:"max_procs"`
	CPUs          []int    `json:"cpus"`
	// Note documents the measurement environment caveats (in particular:
	// on a single-CPU host the multi-processor rows oversubscribe one core,
	// so speedup_vs_serial reflects scheduling overhead, not parallelism).
	Note    string        `json:"note"`
	Results []ServeResult `json:"results"`
	// HTTPCells are the network-tier rows (treebench -exp serve drives the
	// HTTP server after the in-process sweep and merges its cells here).
	HTTPCells []HTTPServeCell `json:"serve_cells,omitempty"`
}

// WriteJSON writes the report to path as indented JSON.
func (r *ServeReport) WriteJSON(w io.Writer, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(report written to %s)\n", path)
	return nil
}

// serveQueries is the mixed workload: the Fig. 6 XMark paths in child form,
// the shape of a read-mostly query service over a loaded document.
func serveQueries() ([]*Query, []string, error) {
	qs := make([]*Query, 0, len(Figure6Queries))
	srcs := make([]string, 0, len(Figure6Queries))
	for _, pair := range Figure6Queries {
		q, err := PrepareCached(pair.Child)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", pair.Name, err)
		}
		qs = append(qs, q)
		srcs = append(srcs, pair.Child)
	}
	return qs, srcs, nil
}

// benchServe measures the mixed workload with procs processors. Queries are
// dispatched round-robin across the benchmark's goroutines; ns/op counts
// individual query executions, so QPS is 1e9/NsPerOp regardless of procs.
func benchServe(doc *Document, queries []*Query, alg Algorithm, procs int) (testing.BenchmarkResult, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	var benchErr atomic.Value
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var next uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q := queries[int(atomic.AddUint64(&next, 1))%len(queries)]
				if _, err := q.Run(doc, alg); err != nil {
					benchErr.Store(err)
					return
				}
			}
		})
	})
	if err, ok := benchErr.Load().(error); ok {
		return res, err
	}
	return res, nil
}

// RunServe measures the compile-once/index-once serving path: concurrent
// mixed XMark queries from cached plans against one shared document. The
// cpus list gives the GOMAXPROCS settings to measure (nil measures one
// processor and, when more are available, every processor). If jsonPath is
// non-empty the report is also written there as JSON.
func RunServe(w io.Writer, opts ExperimentOptions, jsonPath string, cpus []int) error {
	report, err := RunServeReport(w, opts, cpus)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		return report.WriteJSON(w, jsonPath)
	}
	return nil
}

// RunServeReport is RunServe without the JSON write: it returns the report
// so a caller (cmd/treebench) can append the HTTP serving cells before
// serializing.
func RunServeReport(w io.Writer, opts ExperimentOptions, cpus []int) (*ServeReport, error) {
	doc := NewXMarkDocument(opts.Seed, opts.Fig6People)
	queries, srcs, err := serveQueries()
	if err != nil {
		return nil, err
	}
	maxProcs := runtime.GOMAXPROCS(0)
	procsList := []int{1}
	if maxProcs > 1 {
		procsList = append(procsList, maxProcs)
	}
	if len(cpus) > 0 {
		procsList = procsList[:0]
		for _, c := range cpus {
			if c >= 1 {
				procsList = append(procsList, c)
			}
		}
		if len(procsList) == 0 {
			return nil, fmt.Errorf("serve: no usable cpu count in %v", cpus)
		}
	}
	note := fmt.Sprintf("measured with %d CPU(s) available", runtime.NumCPU())
	if runtime.NumCPU() == 1 {
		note += "; rows with procs > 1 oversubscribe a single core, so qps and speedup_vs_serial measure scheduling overhead, not parallel scaling"
	}
	report := ServeReport{
		People:        opts.Fig6People,
		DocumentBytes: doc.SizeBytes(),
		Queries:       srcs,
		MaxProcs:      maxProcs,
		CPUs:          procsList,
		Note:          note,
	}
	fmt.Fprintf(w, "Serving: %d mixed XMark queries, cached plans, shared %.1fMB document\n\n",
		len(queries), float64(doc.SizeBytes())/1e6)
	fmt.Fprintf(w, "%-6s %-7s %-12s %-12s %-10s %-10s %-8s\n",
		"alg", "procs", "ns/op", "qps", "B/op", "allocs/op", "speedup")
	for _, alg := range []Algorithm{NestedLoop, Twig, Staircase, Auto} {
		// Warm every (query, document, algorithm) combination — the physical
		// lowering and the prepared joins — so the timed region measures the
		// steady serving state: slot-addressed plans, one field store per run.
		for _, q := range queries {
			if _, err := q.Run(doc, alg); err != nil {
				return nil, err
			}
		}
		var serial float64
		for _, procs := range procsList {
			if err := opts.checkpoint(); err != nil {
				return nil, err
			}
			res, err := benchServe(doc, queries, alg, procs)
			if err != nil {
				return nil, err
			}
			ns := float64(res.NsPerOp())
			if res.N > 0 && ns == 0 {
				ns = float64(res.T.Nanoseconds()) / float64(res.N)
			}
			r := ServeResult{
				Algorithm:   shortAlg(alg),
				Procs:       procs,
				NsPerOp:     ns,
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				QPS:         1e9 / ns,
			}
			if procs == 1 {
				serial = ns
			}
			if serial > 0 {
				r.Speedup = serial / ns
			}
			report.Results = append(report.Results, r)
			fmt.Fprintf(w, "%-6s %-7d %-12.0f %-12.0f %-10d %-10d %-8.2f\n",
				r.Algorithm, r.Procs, r.NsPerOp, r.QPS, r.BytesPerOp, r.AllocsPerOp, r.Speedup)
		}
	}
	return &report, nil
}
