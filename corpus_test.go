package xqtp

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xqtp/internal/gen"
	"xqtp/internal/xdm"
)

// genCorpusSources builds a mixed corpus: MemBeR-style and XMark-like
// members interleaved, with per-member seeds and sizes so no two members are
// identical.
func genCorpusSources(n int, seed int64) []CorpusSource {
	out := make([]CorpusSource, n)
	for i := 0; i < n; i++ {
		var root *xdm.Node
		if i%2 == 0 {
			root = gen.MemberRoot(gen.MemberConfig{
				Seed: seed + int64(i), Depth: 4, NumTags: 20, NumNodes: 150 + 37*i,
			})
		} else {
			root = gen.XMarkRoot(gen.XMarkConfig{Seed: seed + int64(i), People: 4 + i%7})
		}
		out[i] = CorpusSource{
			URI:  fmt.Sprintf("mem://corpus-%03d.xml", i),
			Data: generatedXML(root, 0),
		}
	}
	return out
}

// corpusDiffQueries is the query set of the corpus differential: root-bound
// paper queries that exercise the pattern algorithms. XMark names are absent
// from the MemBeR members (and vice versa), so the set also exercises the
// name-table skip path.
func corpusDiffQueries() []PaperQuery {
	return []PaperQuery{
		{"person-email", `$input//person[emailaddress]/name`},
		{"interest", `$input//person[profile/interest]/name`},
		{"t01", `$input//t01`},
		{"t01-t02", `$input//t01[t02]`},
		{"bidder", `$input//open_auction[bidder/increase]/current`},
	}
}

// Corpus.Run over a mixed corpus equals the concatenation of per-member
// nested-loop oracle runs, for every set-at-a-time algorithm, the chooser
// and the streaming automaton — at one worker and at eight.
func TestCorpusDifferential(t *testing.T) {
	corpus, err := LoadCorpus(genCorpusSources(12, 42), 4)
	if err != nil {
		t.Fatal(err)
	}
	algs := []Algorithm{Staircase, Twig, Auto, Streaming}
	for _, pq := range corpusDiffQueries() {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		// The oracle: one nested-loop run per member, concatenated in corpus
		// order.
		var oracle Sequence
		for i := 0; i < corpus.Len(); i++ {
			part, err := q.Run(corpus.DocumentAt(i), NestedLoop)
			if err != nil {
				t.Fatalf("%s/member-%d/NL: %v", pq.Name, i, err)
			}
			oracle = append(oracle, part...)
		}
		for _, alg := range algs {
			for _, workers := range []int{1, 8} {
				got, err := corpus.RunParallel(q, alg, workers)
				if err != nil {
					t.Fatalf("%s/%v/workers=%d: %v", pq.Name, alg, workers, err)
				}
				if err := sameItems(oracle, got); err != nil {
					t.Errorf("%s/%v/workers=%d differs from NL oracle: %v", pq.Name, alg, workers, err)
				}
			}
		}
	}
}

// fn:collection() queries — evaluated once over the whole corpus — match the
// concatenation of per-member runs of the equivalent root-bound query, and
// are identical at every worker count.
func TestCollectionFunctionDifferential(t *testing.T) {
	corpus, err := LoadCorpus(genCorpusSources(10, 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		name       string
		collection string
		perDoc     string
	}{
		{"names", `fn:collection()//person[emailaddress]/name`, `$input//person[emailaddress]/name`},
		{"tags", `fn:collection()//t01[t02]`, `$input//t01[t02]`},
	}
	algs := []Algorithm{NestedLoop, Staircase, Twig, Auto}
	for _, pair := range pairs {
		qc := MustPrepare(pair.collection)
		qd := MustPrepare(pair.perDoc)
		var oracle Sequence
		for i := 0; i < corpus.Len(); i++ {
			part, err := qd.Run(corpus.DocumentAt(i), NestedLoop)
			if err != nil {
				t.Fatal(err)
			}
			oracle = append(oracle, part...)
		}
		for _, alg := range algs {
			for _, workers := range []int{1, 8} {
				got, err := corpus.RunParallel(qc, alg, workers)
				if err != nil {
					t.Fatalf("%s/%v/workers=%d: %v", pair.name, alg, workers, err)
				}
				if err := sameItems(oracle, got); err != nil {
					t.Errorf("%s/%v/workers=%d differs from per-member oracle: %v", pair.name, alg, workers, err)
				}
			}
		}
	}
}

// fn:doc resolves members by URI, both through Corpus.Run and on a member
// Document; unknown URIs and unbound documents fail cleanly.
func TestDocFunction(t *testing.T) {
	corpus, err := LoadCorpus(genCorpusSources(6, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	uri := corpus.URIs()[1] // an XMark member
	q := MustPrepare(fmt.Sprintf(`fn:doc(%q)//person[emailaddress]/name`, uri))
	member, _ := corpus.Document(uri)
	oracle, err := MustPrepare(`$input//person[emailaddress]/name`).Run(member, NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	got, err := corpus.Run(q, Staircase)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameItems(oracle, got); err != nil {
		t.Errorf("doc() through the corpus differs: %v", err)
	}
	// A member Document resolves corpus-wide.
	got, err = q.Run(member, Staircase)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameItems(oracle, got); err != nil {
		t.Errorf("doc() on a member document differs: %v", err)
	}
	// Unknown URI errors.
	if _, err := corpus.Run(MustPrepare(`fn:doc("mem://nope.xml")//a`), Staircase); err == nil {
		t.Error("doc() of an unknown URI should fail")
	}
	// A standalone document is the degenerate one-document collection.
	solo, err := LoadXMLString(`<doc><a>x</a></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	solo.SetURI("mem://solo.xml")
	seq, err := MustPrepare(`fn:collection()//a`).Run(solo, Staircase)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 {
		t.Errorf("collection() on a standalone document: %d items, want 1", len(seq))
	}
	seq, err = MustPrepare(`fn:doc("mem://solo.xml")//a`).Run(solo, Staircase)
	if err != nil || len(seq) != 1 {
		t.Errorf("doc() on a standalone document: %d items, err %v", len(seq), err)
	}
}

// The required-name analysis feeding the corpus skip path: conjunctive
// pattern names are required, aggregates and collection access void the
// claim.
func TestRequiredNamesAnalysis(t *testing.T) {
	reqOf := func(src string) []string {
		q := MustPrepare(src)
		p, err := q.physicalPlan(Staircase)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return p.RequiredNames()
	}
	got := reqOf(`$input//person[emailaddress]/name`)
	for _, want := range []string{"person", "emailaddress", "name"} {
		found := false
		for _, n := range got {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("RequiredNames missing %q: %v", want, got)
		}
	}
	if got := reqOf(`count($input//person)`); got != nil {
		t.Errorf("count() result can be non-empty on any document; got required names %v", got)
	}
	if got := reqOf(`fn:collection()//person`); got != nil {
		t.Errorf("collection access voids per-document claims; got %v", got)
	}
}

// Concurrent corpus use under -race: many goroutines run queries while
// Extend snapshots grow the corpus; old snapshots keep answering with their
// member set.
func TestCorpusConcurrentExtend(t *testing.T) {
	base, err := LoadCorpus(genCorpusSources(8, 99), 4)
	if err != nil {
		t.Fatal(err)
	}
	q := MustPrepare(`$input//person[emailaddress]/name`)
	oracle, err := base.Run(q, NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		alg := []Algorithm{Staircase, Twig, Auto}[g]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := base.RunParallel(q, alg, 4)
				if err != nil {
					t.Errorf("%v during Extend: %v", alg, err)
					return
				}
				if err := sameItems(oracle, got); err != nil {
					t.Errorf("%v during Extend differs: %v", alg, err)
					return
				}
			}
		}()
	}
	grown := base
	for round := 0; round < 4; round++ {
		extra := genCorpusSources(3, int64(1000+100*round))
		for i := range extra {
			extra[i].URI = fmt.Sprintf("mem://extend-%d-%d.xml", round, i)
		}
		next, err := grown.Extend(extra, 2)
		if err != nil {
			t.Fatal(err)
		}
		grown = next
	}
	close(stop)
	wg.Wait()
	if base.Len() != 8 || grown.Len() != 20 {
		t.Fatalf("snapshot sizes: base %d (want 8), grown %d (want 20)", base.Len(), grown.Len())
	}
	// The grown snapshot answers over all members, strictly extending the
	// base result.
	all, err := grown.RunParallel(q, Staircase, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(oracle) {
		t.Fatalf("grown corpus returned fewer items (%d) than its base (%d)", len(all), len(oracle))
	}
	if err := sameItems(oracle, all[:len(oracle)]); err != nil {
		t.Errorf("grown corpus does not extend the base result: %v", err)
	}
	if !strings.HasPrefix(grown.URIs()[8], "mem://extend-") {
		t.Errorf("extended members should follow the base members, got %q at position 8", grown.URIs()[8])
	}
}
