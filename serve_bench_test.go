package xqtp

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkServe measures the steady serving state: a mixed XMark workload
// from cached plans over one shared document, with every goroutine sharing
// the document's catalog and each query's prepared-pattern cache. Run with
// -cpu 1,4 to see the QPS scaling:
//
//	go test -bench Serve -cpu 1,4 -benchmem .
func BenchmarkServe(b *testing.B) {
	doc := xmarkDoc(b, 1000)
	queries := make([]*Query, 0, len(Figure6Queries))
	for _, pair := range Figure6Queries {
		q, err := PrepareCached(pair.Child)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	for _, alg := range Algorithms {
		b.Run(shortAlg(alg), func(b *testing.B) {
			// Warm the (query, document, algorithm) preparations so the
			// timed region is pure evaluation.
			for _, q := range queries {
				if _, err := q.Run(doc, alg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next uint64
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q := queries[int(atomic.AddUint64(&next, 1))%len(queries)]
					if _, err := q.Run(doc, alg); err != nil {
						b.Error(err)
						return
					}
				}
			})
			if wall := time.Since(start).Seconds(); wall > 0 {
				b.ReportMetric(float64(b.N)/wall, "qps")
			}
		})
	}
}
