package xqtp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// cancelLatencyBound is the time a run may take to return after its context
// is canceled: the checkpoint interval of the kernels plus the in-flight
// member evaluations of the fan-out. The race detector instruments every
// atomic and channel operation, so the bound gets generous headroom there.
func cancelLatencyBound() time.Duration {
	d := 10 * time.Millisecond
	if raceEnabled {
		d *= 20
	}
	return d
}

// cancelTestCorpus lazily builds the shared 1000-document mixed corpus
// (MemBeR-style and XMark-like members interleaved) the cancellation matrix
// runs against.
var (
	cancelCorpusOnce sync.Once
	cancelCorpus     *Corpus
	cancelCorpusErr  error
)

func cancelTestCorpus(t *testing.T) *Corpus {
	t.Helper()
	cancelCorpusOnce.Do(func() {
		cancelCorpus, cancelCorpusErr = LoadCorpus(collectionSources(1000, 7), 8)
	})
	if cancelCorpusErr != nil {
		t.Fatalf("building 1000-doc corpus: %v", cancelCorpusErr)
	}
	return cancelCorpus
}

// cancelingSink cancels the run's context on the first item it receives and
// keeps collecting, recording when the cancellation was issued.
type cancelingSink struct {
	cancel     context.CancelFunc
	once       sync.Once
	items      Sequence
	canceledAt time.Time
}

func (s *cancelingSink) Push(it Item) error {
	s.items = append(s.items, it)
	s.once.Do(func() {
		s.canceledAt = time.Now()
		s.cancel()
	})
	return nil
}

// waitNoGoroutineLeak retries the goroutine count for a bounded time: worker
// goroutines of a canceled run are allowed a moment to observe the stop and
// exit, but must all be gone well before the deadline.
func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after canceled run: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Canceling a corpus run mid-evaluation — from the result stream itself, so
// the cancellation always lands while members are in flight — returns
// ErrCanceled within the checkpoint latency bound, leaks no goroutines, and
// the delivered items are a corpus-order prefix of the full result.
func TestCancelMidCorpusRun(t *testing.T) {
	corpus := cancelTestCorpus(t)
	q := MustPrepare(`$input//person[emailaddress]/name`)
	full, err := corpus.RunParallel(q, NestedLoop, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("query matches nothing; the cancellation test needs results to cancel from")
	}
	for _, alg := range []Algorithm{NestedLoop, Staircase, Twig, Auto} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%v/workers=%d", alg, workers), func(t *testing.T) {
				before := runtime.NumGoroutine()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				sink := &cancelingSink{cancel: cancel}
				_, _, err := corpus.RunWith(ctx, q, alg, RunOptions{Workers: workers, Sink: sink})
				returned := time.Now()
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("want ErrCanceled, got %v", err)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("error does not unwrap to context.Canceled: %v", err)
				}
				if sink.canceledAt.IsZero() {
					t.Fatal("sink never saw an item; cancellation was not mid-run")
				}
				if lat := returned.Sub(sink.canceledAt); lat > cancelLatencyBound() {
					t.Errorf("run returned %v after cancellation (bound %v)", lat, cancelLatencyBound())
				}
				if len(sink.items) == 0 || len(sink.items) >= len(full) {
					t.Fatalf("delivered %d of %d items; expected a proper nonempty prefix", len(sink.items), len(full))
				}
				for i, it := range sink.items {
					if it != full[i] {
						t.Fatalf("delivered item %d differs from the full run's prefix", i)
					}
				}
				waitNoGoroutineLeak(t, before)
			})
		}
	}
}

// A run canceled mid-evaluation must leave the pooled kernel state (staircase
// arenas, twig buffers) clean: an immediately following uncancelled run of
// the same query returns exactly the oracle result.
func TestCancelLeavesPoolsClean(t *testing.T) {
	corpus := cancelTestCorpus(t)
	for _, pq := range corpusDiffQueries() {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		oracle, err := corpus.RunParallel(q, NestedLoop, 8)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		for _, alg := range []Algorithm{Staircase, Twig, Auto} {
			ctx, cancel := context.WithCancel(context.Background())
			sink := &cancelingSink{cancel: cancel}
			_, _, err := corpus.RunWith(ctx, q, alg, RunOptions{Workers: 8, Sink: sink})
			cancel()
			if err != nil && !errors.Is(err, ErrCanceled) {
				t.Fatalf("%s/%v canceled run: %v", pq.Name, alg, err)
			}
			got, err := corpus.RunParallel(q, alg, 8)
			if err != nil {
				t.Fatalf("%s/%v rerun after cancel: %v", pq.Name, alg, err)
			}
			if err := sameItems(oracle, got); err != nil {
				t.Errorf("%s/%v rerun after cancel differs from oracle: %v", pq.Name, alg, err)
			}
		}
	}
}

// A context that is already done returns ErrCanceled without evaluating, for
// both the document and the corpus entry points, and the error unwraps to
// the context's cause.
func TestPreCanceledContext(t *testing.T) {
	corpus := cancelTestCorpus(t)
	doc := corpus.DocumentAt(1)
	q := MustPrepare(`$input//person/name`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.RunCtx(ctx, doc, Staircase); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on canceled context: %v", err)
	}
	if _, err := corpus.RunParallelCtx(ctx, q, Staircase, 4); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunParallelCtx on canceled context: %v", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	if _, err := q.RunCtx(expired, doc, Twig); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx on expired deadline: %v", err)
	}
	var re *RunError
	_, err := q.RunCtx(ctx, doc, NestedLoop)
	if !errors.As(err, &re) {
		t.Fatalf("canceled run error is not a *RunError: %v", err)
	}
}

// A MaxRows budget delivers exactly the first K items of the full result in
// document order, reports Rows = K, and returns ErrBudgetExceeded — for the
// single-document and the corpus fan-out paths, where the budget is charged
// at the corpus-order merge regardless of worker interleaving.
func TestMaxRowsPrefix(t *testing.T) {
	corpus := cancelTestCorpus(t)
	q := MustPrepare(`$input//person[emailaddress]/name`)
	full, err := corpus.RunParallel(q, Staircase, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 20 {
		t.Fatalf("only %d results; the budget test needs more", len(full))
	}
	for _, k := range []int64{1, 7, int64(len(full)) - 1} {
		got, info, err := corpus.RunWith(context.Background(), q, Staircase, RunOptions{Workers: 8, MaxRows: k})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("MaxRows=%d: want ErrBudgetExceeded, got %v", k, err)
		}
		if int64(len(got)) != k || info.Rows != k {
			t.Fatalf("MaxRows=%d: delivered %d items, info.Rows=%d", k, len(got), info.Rows)
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("MaxRows=%d: item %d differs from the full run's prefix", k, i)
			}
		}
	}
	// A budget the result never reaches delivers everything and no error.
	got, info, err := corpus.RunWith(context.Background(), q, Staircase, RunOptions{Workers: 8, MaxRows: int64(len(full)) + 1})
	if err != nil {
		t.Fatalf("unreached budget: %v", err)
	}
	if err := sameItems(full, got); err != nil {
		t.Fatalf("unreached budget changed the result: %v", err)
	}
	if info.Rows != int64(len(full)) {
		t.Fatalf("info.Rows=%d, want %d", info.Rows, len(full))
	}

	// Single document, through Query.RunWith.
	doc := corpus.DocumentAt(1)
	dfull, err := q.Run(doc, Staircase)
	if err != nil {
		t.Fatal(err)
	}
	if len(dfull) < 3 {
		t.Fatalf("member query returned %d items; need more", len(dfull))
	}
	dgot, dinfo, err := q.RunWith(context.Background(), doc, Staircase, RunOptions{MaxRows: 2})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("doc MaxRows=2: want ErrBudgetExceeded, got %v", err)
	}
	if len(dgot) != 2 || dinfo.Rows != 2 {
		t.Fatalf("doc MaxRows=2: delivered %d, info.Rows=%d", len(dgot), dinfo.Rows)
	}
	for i := range dgot {
		if dgot[i] != dfull[i] {
			t.Fatalf("doc MaxRows=2: item %d differs from the full run's prefix", i)
		}
	}
}

// A MaxBytes budget stops the run with ErrBudgetExceeded after delivering a
// document-order prefix.
func TestMaxBytesBudget(t *testing.T) {
	corpus := cancelTestCorpus(t)
	q := MustPrepare(`$input//person`)
	full, err := corpus.RunParallel(q, Staircase, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, info, err := corpus.RunWith(context.Background(), q, Staircase, RunOptions{Workers: 8, MaxBytes: 256})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if len(got) == 0 || len(got) >= len(full) {
		t.Fatalf("delivered %d of %d items under a 256-byte budget", len(got), len(full))
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("item %d differs from the full run's prefix", i)
		}
	}
	if info.Bytes == 0 {
		t.Fatal("info.Bytes not accounted")
	}
}

// errSink fails on the Nth push; the run must abort and return that error.
type errSink struct {
	failAt int
	n      int
}

var errSinkBoom = errors.New("sink refused the item")

func (s *errSink) Push(it Item) error {
	s.n++
	if s.n >= s.failAt {
		return errSinkBoom
	}
	return nil
}

// A sink error aborts the run and comes back verbatim.
func TestSinkErrorAbortsRun(t *testing.T) {
	corpus := cancelTestCorpus(t)
	q := MustPrepare(`$input//person/name`)
	_, _, err := corpus.RunWith(context.Background(), q, Staircase, RunOptions{Workers: 8, Sink: &errSink{failAt: 3}})
	if !errors.Is(err, errSinkBoom) {
		t.Fatalf("want the sink's error, got %v", err)
	}
	doc := corpus.DocumentAt(1)
	_, _, err = q.RunWith(context.Background(), doc, Staircase, RunOptions{Sink: &errSink{failAt: 1}})
	if !errors.Is(err, errSinkBoom) {
		t.Fatalf("doc run: want the sink's error, got %v", err)
	}
}

// An Explain with the cost model's act= columns aborts under a canceled
// context instead of evaluating every spine prefix.
func TestExplainPhysicalCtxCancel(t *testing.T) {
	corpus := cancelTestCorpus(t)
	doc := corpus.DocumentAt(1)
	q := MustPrepare(`$input//person[emailaddress]/name`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.ExplainPhysicalCtx(ctx, Auto, doc); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// And with a live context it matches the uncancelled explain.
	want, err := q.ExplainPhysical(Auto, doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.ExplainPhysicalCtx(context.Background(), Auto, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("ExplainPhysicalCtx(background) differs from ExplainPhysical")
	}
}

// Worker-count normalization: <= 0 resolves to one worker per CPU in the
// shared helper, and the normalized runs return the sequential results.
func TestNormalizeWorkers(t *testing.T) {
	if got := normalizeWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("normalizeWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := normalizeWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("normalizeWorkers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := normalizeWorkers(5); got != 5 {
		t.Fatalf("normalizeWorkers(5) = %d, want 5", got)
	}
	corpus := cancelTestCorpus(t)
	doc := corpus.DocumentAt(1)
	q := MustPrepare(`$input//person[emailaddress]/name`)
	want, err := q.Run(doc, Staircase)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.RunParallel(doc, Staircase, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameItems(want, got); err != nil {
		t.Fatalf("RunParallel(workers=0) differs from Run: %v", err)
	}
	cgot, err := corpus.RunParallel(q, Staircase, 0)
	if err != nil {
		t.Fatal(err)
	}
	cwant, err := corpus.RunParallel(q, Staircase, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameItems(cwant, cgot); err != nil {
		t.Fatalf("Corpus.RunParallel(workers=0) differs from workers=1: %v", err)
	}
}

// RunCtx with a background context is exactly Run, for every algorithm.
func TestRunCtxBackgroundEqualsRun(t *testing.T) {
	corpus := cancelTestCorpus(t)
	doc := corpus.DocumentAt(1)
	for _, pq := range corpusDiffQueries() {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		for _, alg := range []Algorithm{NestedLoop, Staircase, Twig, Auto, Streaming} {
			want, err := q.Run(doc, alg)
			if err != nil {
				t.Fatalf("%s/%v: %v", pq.Name, alg, err)
			}
			got, err := q.RunCtx(context.Background(), doc, alg)
			if err != nil {
				t.Fatalf("%s/%v: %v", pq.Name, alg, err)
			}
			if err := sameItems(want, got); err != nil {
				t.Errorf("%s/%v: RunCtx differs from Run: %v", pq.Name, alg, err)
			}
		}
	}
}
