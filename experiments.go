package xqtp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// ExperimentOptions scales the paper's experiments. The defaults reproduce
// the paper's parameters; tests and quick runs pass smaller values (the
// reproduction targets the shape of the results, not absolute numbers).
type ExperimentOptions struct {
	Seed int64
	// Table1Sizes are the MemBeR document sizes in bytes (paper: 2.1, 4.3,
	// 6.5, 8.7, 11 MB).
	Table1Sizes []int
	// Fig4People scales the XMark documents of the Fig. 4 series.
	Fig4People []int
	// Fig6People scales the XMark document of the Fig. 6 experiment.
	Fig6People int
	// DeepNodes and DeepDepth shape the §5.3 document (paper: 50 000 nodes,
	// depth 15).
	DeepNodes, DeepDepth int
	// CollectionSizes are the corpus member counts of the collection
	// experiment (documents per corpus).
	CollectionSizes []int
	// Repeats is the number of timed runs per measurement (the median is
	// reported).
	Repeats int
	// Algorithms overrides the algorithm list of the Table 1 and Fig. 6
	// experiments (nil: the paper's NL, TJ, SC columns). Auto is a valid
	// entry, measuring the cost-based per-pattern choice.
	Algorithms []Algorithm
	// Context, when non-nil, lets the caller abandon a sweep: the drivers
	// check it between measurements and return its error once it is done.
	// The measured operations themselves run without an execution context,
	// so every cell stays comparable to baselines recorded before
	// cancellation existed.
	Context context.Context
}

// checkpoint returns the options context's error, checked by the experiment
// drivers between measurements (never inside a timed region).
func (o ExperimentOptions) checkpoint() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

// experimentAlgorithms resolves the per-cell algorithm list.
func (o ExperimentOptions) experimentAlgorithms() []Algorithm {
	if len(o.Algorithms) > 0 {
		return o.Algorithms
	}
	return []Algorithm{NestedLoop, Twig, Staircase}
}

// DefaultExperimentOptions reproduces the paper's experiment parameters.
func DefaultExperimentOptions() ExperimentOptions {
	return ExperimentOptions{
		Seed:            1,
		Table1Sizes:     []int{2_100_000, 4_300_000, 6_500_000, 8_700_000, 11_000_000},
		Fig4People:      []int{250, 500, 1000, 2000, 4000},
		Fig6People:      2000,
		DeepNodes:       50_000,
		DeepDepth:       15,
		CollectionSizes: []int{10, 100, 1000, 3000},
		Repeats:         3,
	}
}

// QuickExperimentOptions is a scaled-down configuration for smoke runs and
// tests.
func QuickExperimentOptions() ExperimentOptions {
	return ExperimentOptions{
		Seed:            1,
		Table1Sizes:     []int{200_000, 400_000},
		Fig4People:      []int{100, 200},
		Fig6People:      300,
		DeepNodes:       10_000,
		DeepDepth:       15,
		CollectionSizes: []int{10, 50},
		Repeats:         1,
	}
}

// timeQuery measures the median evaluation time of a prepared query.
func timeQuery(q *Query, doc *Document, alg Algorithm, repeats int) (time.Duration, error) {
	d, _, _, err := measureQuery(q, doc, alg, repeats)
	return d, err
}

// measureQuery measures the median evaluation time and the steady-state
// allocation footprint (allocations and bytes per run, from MemStats deltas
// over the timed runs; one warm-up run populates the plan and index caches
// so the deltas reflect serving state, not first-run setup).
func measureQuery(q *Query, doc *Document, alg Algorithm, repeats int) (time.Duration, int64, int64, error) {
	if repeats < 1 {
		repeats = 1
	}
	if _, err := q.Run(doc, alg); err != nil {
		return 0, 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if _, err := q.Run(doc, alg); err != nil {
			return 0, 0, 0, err
		}
		times = append(times, time.Since(start))
	}
	runtime.ReadMemStats(&after)
	allocs := int64(after.Mallocs-before.Mallocs) / int64(repeats)
	bytes := int64(after.TotalAlloc-before.TotalAlloc) / int64(repeats)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], allocs, bytes, nil
}

func seconds(d time.Duration) string { return fmt.Sprintf("%.5f", d.Seconds()) }

// Table1Cell is one measurement of the Table 1 experiment.
type Table1Cell struct {
	Query         string  `json:"query"`
	Algorithm     string  `json:"algorithm"`
	DocumentBytes int     `json:"document_bytes"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
}

// Table1Report is the machine-readable output of RunTable1.
type Table1Report struct {
	Seed    int64        `json:"seed"`
	Repeats int          `json:"repeats"`
	Cells   []Table1Cell `json:"cells"`
}

// RunTable1 regenerates Table 1: evaluation time of QE1–QE6 under NLJoin,
// TwigJoin and SCJoin over MemBeR documents of growing size. The fastest
// algorithm per cell row group is marked with '*'. If jsonPath is non-empty
// a machine-readable report (ns/op, allocs/op, bytes/op per cell) is also
// written there.
func RunTable1(w io.Writer, opts ExperimentOptions, jsonPath string) error {
	fmt.Fprintf(w, "Table 1: QE1-QE6 evaluation time (seconds), MemBeR documents (depth 4, 100 tags)\n\n")
	docs := make([]*Document, len(opts.Table1Sizes))
	fmt.Fprintf(w, "%-10s", "doc size")
	for i, sz := range opts.Table1Sizes {
		docs[i] = NewMemberDocument(opts.Seed+int64(i), sz)
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%.1fMB", float64(sz)/1e6))
	}
	fmt.Fprintln(w)
	algs := opts.experimentAlgorithms()
	report := Table1Report{Seed: opts.Seed, Repeats: opts.Repeats}
	for _, pq := range QEQueries {
		q, err := PrepareCached(pq.Query)
		if err != nil {
			return fmt.Errorf("%s: %w", pq.Name, err)
		}
		// Measure all cells first to mark the per-column winner.
		cells := make([][]time.Duration, len(algs))
		for ai, alg := range algs {
			cells[ai] = make([]time.Duration, len(docs))
			for di, doc := range docs {
				if err := opts.checkpoint(); err != nil {
					return err
				}
				d, allocs, bytes, err := measureQuery(q, doc, alg, opts.Repeats)
				if err != nil {
					return fmt.Errorf("%s/%v: %w", pq.Name, alg, err)
				}
				cells[ai][di] = d
				report.Cells = append(report.Cells, Table1Cell{
					Query:         pq.Name,
					Algorithm:     shortAlg(alg),
					DocumentBytes: opts.Table1Sizes[di],
					NsPerOp:       float64(d.Nanoseconds()),
					AllocsPerOp:   allocs,
					BytesPerOp:    bytes,
				})
			}
		}
		for ai, alg := range algs {
			label := pq.Name
			if ai > 0 {
				label = ""
			}
			fmt.Fprintf(w, "%-4s %-5s", label, shortAlg(alg))
			for di := range docs {
				best := true
				for aj := range algs {
					if cells[aj][di] < cells[ai][di] {
						best = false
						break
					}
				}
				mark := " "
				if best {
					mark = "*"
				}
				fmt.Fprintf(w, "%11s%s", seconds(cells[ai][di]), mark)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\n(* = fastest algorithm for that query and document size)")
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "(report written to %s)\n", jsonPath)
	}
	return nil
}

func shortAlg(a Algorithm) string {
	switch a {
	case NestedLoop:
		return "NL"
	case Twig:
		return "TJ"
	case Staircase:
		return "SC"
	case Auto:
		return "auto"
	case Streaming:
		return "stream"
	}
	return "?"
}

// RunFigure4 regenerates Fig. 4: the §5.1 path expression written as a
// FLWOR, evaluated with and without the tree-pattern rewrites over growing
// XMark documents.
func RunFigure4(w io.Writer, opts ExperimentOptions) error {
	fmt.Fprintf(w, "Figure 4: FLWOR-written path, with vs without tree-pattern rewrites (seconds)\n\n")
	flwor := Fig4Variants()[7] // a fully exploded FLWOR variant
	oldQ, err := PrepareWithOptions(flwor, StandardEngineOptions)
	if err != nil {
		return err
	}
	newQ, err := PrepareCached(flwor)
	if err != nil {
		return err
	}
	if newQ.TreePatterns() != 1 {
		return fmt.Errorf("figure4: rewritten variant has %d patterns", newQ.TreePatterns())
	}
	fmt.Fprintf(w, "%-12s %-10s %-12s %-12s %-12s %-12s\n",
		"people", "size", "no-rewrite", "TTP(NL)", "TTP(TJ)", "TTP(SC)")
	for i, people := range opts.Fig4People {
		if err := opts.checkpoint(); err != nil {
			return err
		}
		doc := NewXMarkDocument(opts.Seed+int64(i), people)
		told, err := timeQuery(oldQ, doc, NestedLoop, opts.Repeats)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-12d %-10s %-12s", people, fmt.Sprintf("%.1fMB", float64(doc.SizeBytes())/1e6), seconds(told))
		for _, alg := range []Algorithm{NestedLoop, Twig, Staircase} {
			tn, err := timeQuery(newQ, doc, alg, opts.Repeats)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-12s", seconds(tn))
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "\n(query: %s)\n", flwor)
	return nil
}

// RunFigure6 regenerates Fig. 6: XMark queries in child form and in the
// equivalent descendant form, under the three algorithms.
func RunFigure6(w io.Writer, opts ExperimentOptions) error {
	doc := NewXMarkDocument(opts.Seed, opts.Fig6People)
	fmt.Fprintf(w, "Figure 6: XMark queries, child vs descendant steps (seconds, %.1fMB document)\n\n",
		float64(doc.SizeBytes())/1e6)
	algs := opts.experimentAlgorithms()
	fmt.Fprintf(w, "%-14s %-6s", "query", "form")
	for _, alg := range algs {
		fmt.Fprintf(w, " %-12s", shortAlg(alg))
	}
	fmt.Fprintln(w)
	for _, pair := range Figure6Queries {
		for _, form := range []struct {
			label string
			src   string
		}{{"child", pair.Child}, {"desc", pair.Descendant}} {
			if err := opts.checkpoint(); err != nil {
				return err
			}
			q, err := PrepareCached(form.src)
			if err != nil {
				return fmt.Errorf("%s: %w", pair.Name, err)
			}
			fmt.Fprintf(w, "%-14s %-6s", pair.Name, form.label)
			for _, alg := range algs {
				d, err := timeQuery(q, doc, alg, opts.Repeats)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %-12s", seconds(d))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// RunSection53 regenerates the §5.3 table: the highly selective positional
// chain (/t1[1])^k on a deep single-tag document, where the nested loop's
// cursor-style early exit beats the set-at-a-time algorithms.
func RunSection53(w io.Writer, opts ExperimentOptions) error {
	doc := NewDeepDocument(opts.Seed, opts.DeepNodes, opts.DeepDepth, "t1")
	fmt.Fprintf(w, "Section 5.3: (/t1[1])^k on a %d-node depth-%d document (seconds)\n\n",
		opts.DeepNodes, opts.DeepDepth)
	ks := []int{5, 10, 15}
	if opts.DeepDepth < 15 {
		ks = []int{3, opts.DeepDepth / 2, opts.DeepDepth - 1}
	}
	fmt.Fprintf(w, "%-10s", "")
	for _, k := range ks {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("k=%d", k))
	}
	fmt.Fprintln(w)
	for _, alg := range []Algorithm{NestedLoop, Twig, Staircase} {
		fmt.Fprintf(w, "%-10s", alg.String())
		for _, k := range ks {
			if err := opts.checkpoint(); err != nil {
				return err
			}
			q, err := PrepareCached(Section53Query(k))
			if err != nil {
				return err
			}
			d, err := timeQuery(q, doc, alg, opts.Repeats)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%12s", seconds(d))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunValidation regenerates the §5.1 robustness check: all syntactic
// variants of the Fig. 4 path compile to the identical single-pattern plan.
func RunValidation(w io.Writer) error {
	variants := Fig4Variants()
	fmt.Fprintf(w, "Section 5.1 validation: %d syntactic variants of\n  %s\n\n", len(variants), Fig4Query)
	var refPlan string
	identical := 0
	for i, v := range variants {
		q, err := PrepareCached(v)
		if err != nil {
			return fmt.Errorf("variant %d: %w", i, err)
		}
		if i == 0 {
			refPlan = q.Plan()
		}
		same := q.Plan() == refPlan && q.TreePatterns() == 1
		if same {
			identical++
		}
		status := "ok "
		if !same {
			status = "DIFF"
		}
		fmt.Fprintf(w, "  [%s] %s\n", status, v)
	}
	fmt.Fprintf(w, "\n%d/%d variants compile to the identical plan:\n  %s\n", identical, len(variants), refPlan)
	if identical != len(variants) {
		return fmt.Errorf("validation failed: %d/%d variants diverged", len(variants)-identical, len(variants))
	}
	return nil
}

// RunAll runs every experiment in paper order.
func RunAll(w io.Writer, opts ExperimentOptions) error {
	if err := RunValidation(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := RunFigure4(w, opts); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := RunTable1(w, opts, ""); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := RunFigure6(w, opts); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := RunSection53(w, opts); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := RunCollection(w, opts, ""); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return RunSnapshot(w, opts, "")
}
