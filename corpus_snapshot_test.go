package xqtp

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"xqtp/internal/xdm"
)

// equivItems is sameItems across trees: the loaded corpus holds structurally
// identical but distinct trees, so nodes compare by preorder rank and owning
// member (resolved through each corpus's own URI attribution) instead of by
// pointer.
func equivItems(a, b Sequence, uriA, uriB func(Item) (string, bool)) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		an, aIsNode := a[i].(*xdm.Node)
		bn, bIsNode := b[i].(*xdm.Node)
		if aIsNode != bIsNode {
			return fmt.Errorf("item %d: node-ness differs", i)
		}
		if !aIsNode {
			if a[i] != b[i] {
				return fmt.Errorf("item %d: %s vs %s", i, ItemString(a[i]), ItemString(b[i]))
			}
			continue
		}
		if an.Pre != bn.Pre || an.Kind != bn.Kind || an.Name != bn.Name || an.Text != bn.Text {
			return fmt.Errorf("item %d: %s vs %s", i, ItemString(a[i]), ItemString(b[i]))
		}
		ua, oka := uriA(a[i])
		ub, okb := uriB(b[i])
		if oka != okb || ua != ub {
			return fmt.Errorf("item %d: member %q vs %q", i, ua, ub)
		}
	}
	return nil
}

// A corpus loaded from a snapshot must be indistinguishable from the
// freshly-ingested corpus it was saved from: same members, same name table,
// and — the part that matters — identical query results for every pattern
// algorithm, at one worker and at eight. This is the load-path analogue of
// TestCorpusDifferential.
func TestCorpusSnapshotQueryDifferential(t *testing.T) {
	fresh, err := LoadCorpus(genCorpusSources(12, 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenCorpusSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != fresh.Len() {
		t.Fatalf("loaded %d members, want %d", loaded.Len(), fresh.Len())
	}
	if !reflect.DeepEqual(loaded.URIs(), fresh.URIs()) {
		t.Fatalf("URIs differ:\n  %v\n  %v", loaded.URIs(), fresh.URIs())
	}
	if loaded.NumNodes() != fresh.NumNodes() {
		t.Fatalf("node count %d, want %d", loaded.NumNodes(), fresh.NumNodes())
	}
	algs := []Algorithm{Staircase, Twig, Auto, Streaming}
	for _, pq := range corpusDiffQueries() {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		for _, alg := range algs {
			want, err := fresh.RunParallel(q, alg, 1)
			if err != nil {
				t.Fatalf("%s/%v/fresh: %v", pq.Name, alg, err)
			}
			for _, workers := range []int{1, 8} {
				got, err := loaded.RunParallel(q, alg, workers)
				if err != nil {
					t.Fatalf("%s/%v/workers=%d/loaded: %v", pq.Name, alg, workers, err)
				}
				if err := equivItems(want, got, fresh.URIOf, loaded.URIOf); err != nil {
					t.Errorf("%s/%v/workers=%d: loaded corpus differs from fresh: %v",
						pq.Name, alg, workers, err)
				}
			}
		}
	}
}

// Single-document snapshots: save/load through the Document API preserves
// query results and serialization.
func TestDocumentSnapshotRoundTrip(t *testing.T) {
	doc, err := LoadXMLString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c><b><c/></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	doc2, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.XML() != doc.XML() {
		t.Fatalf("serialization differs:\n  %s\n  %s", doc.XML(), doc2.XML())
	}
	if doc2.NumNodes() != doc.NumNodes() {
		t.Fatalf("node count %d, want %d", doc2.NumNodes(), doc.NumNodes())
	}
	q, err := Prepare(`$input//b[c]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{NestedLoop, Staircase, Twig, Auto} {
		want, err := q.Run(doc, alg)
		if err != nil {
			t.Fatalf("%v/fresh: %v", alg, err)
		}
		got, err := q.Run(doc2, alg)
		if err != nil {
			t.Fatalf("%v/loaded: %v", alg, err)
		}
		same := func(Item) (string, bool) { return "", true }
		if err := equivItems(want, got, same, same); err != nil {
			t.Errorf("%v: loaded document differs from fresh: %v", alg, err)
		}
	}
}

// Extending a snapshot-loaded corpus works like extending a fresh one (the
// loaded trees participate in the global ID order).
func TestCorpusSnapshotExtend(t *testing.T) {
	fresh, err := LoadCorpus(genCorpusSources(4, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenCorpusSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	grown, err := loaded.Extend([]CorpusSource{
		{URI: "mem://extra.xml", Data: []byte(`<doc><t01><t02/></t01></doc>`)},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Len() != 5 {
		t.Fatalf("grown corpus has %d members, want 5", grown.Len())
	}
	q, err := Prepare(`$input//t01[t02]`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := grown.RunParallel(q, Auto, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range res {
		if uri, ok := grown.URIOf(it); ok && uri == "mem://extra.xml" {
			found = true
		}
	}
	if !found {
		t.Fatal("query did not reach the member added after snapshot load")
	}
}

// The file-mapped open is the same corpus again: identical query results,
// identical skip accounting (the deferred members answer the emptiness probe
// from their section directories), and a typed error after Close. This is
// TestCorpusSnapshotQueryDifferential over OpenCorpusFile.
func TestCorpusFileQueryDifferential(t *testing.T) {
	fresh, err := LoadCorpus(genCorpusSources(12, 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.xqts")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != fresh.Len() {
		t.Fatalf("loaded %d members, want %d", loaded.Len(), fresh.Len())
	}
	// Directory-backed accounting before any member load.
	if loaded.NumNodes() != fresh.NumNodes() {
		t.Fatalf("node count %d, want %d", loaded.NumNodes(), fresh.NumNodes())
	}
	algs := []Algorithm{Staircase, Twig, Auto, Streaming}
	for _, pq := range corpusDiffQueries() {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		for _, alg := range algs {
			want, wantStats, err := fresh.RunParallelStats(q, alg, 1)
			if err != nil {
				t.Fatalf("%s/%v/fresh: %v", pq.Name, alg, err)
			}
			for _, workers := range []int{1, 8} {
				got, gotStats, err := loaded.RunParallelStats(q, alg, workers)
				if err != nil {
					t.Fatalf("%s/%v/workers=%d/mapped: %v", pq.Name, alg, workers, err)
				}
				if err := equivItems(want, got, fresh.URIOf, loaded.URIOf); err != nil {
					t.Errorf("%s/%v/workers=%d: mapped corpus differs from fresh: %v",
						pq.Name, alg, workers, err)
				}
				// The deferred skip test must prove exactly what the loaded
				// one proves — a deferred member silently skipped when its
				// stream is non-empty would drop results.
				if gotStats.Skipped != wantStats.Skipped {
					t.Errorf("%s/%v/workers=%d: skipped %d members, fresh skipped %d",
						pq.Name, alg, workers, gotStats.Skipped, wantStats.Skipped)
				}
			}
		}
	}

	if err := loaded.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := loaded.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	q, err := Prepare(`$input//doc`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Run(q, Auto); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
}

// XQTP_SNAPSHOT_READALL forces the old read-everything open; results must
// not change, only the backing storage.
func TestCorpusFileReadAllFallback(t *testing.T) {
	fresh, err := LoadCorpus(genCorpusSources(6, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.xqts")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("XQTP_SNAPSHOT_READALL", "1")
	loaded, err := OpenCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Mapped() {
		t.Fatal("read-all fallback reported a live mapping")
	}
	q, err := Prepare(`$input//doc`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.RunParallel(q, Auto, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.RunParallel(q, Auto, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := equivItems(want, got, fresh.URIOf, loaded.URIOf); err != nil {
		t.Fatalf("read-all corpus differs from fresh: %v", err)
	}
}

// Single-document file mapping through the public Document API.
func TestDocumentOpenSnapshotFile(t *testing.T) {
	doc, err := LoadXMLString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c><b><c/></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	doc.SetURI("mem://one.xml")
	var buf bytes.Buffer
	if err := doc.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.xqts")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	doc2, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.URI() != doc.URI() {
		t.Fatalf("URI = %q, want %q", doc2.URI(), doc.URI())
	}
	if doc2.XML() != doc.XML() {
		t.Fatalf("serialization differs:\n  %s\n  %s", doc.XML(), doc2.XML())
	}
	q, err := Prepare(`$input//b[c]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{NestedLoop, Staircase, Twig, Auto} {
		want, err := q.Run(doc, alg)
		if err != nil {
			t.Fatalf("%v/fresh: %v", alg, err)
		}
		got, err := q.Run(doc2, alg)
		if err != nil {
			t.Fatalf("%v/mapped: %v", alg, err)
		}
		same := func(Item) (string, bool) { return "", true }
		if err := equivItems(want, got, same, same); err != nil {
			t.Errorf("%v: mapped document differs from fresh: %v", alg, err)
		}
	}
	if err := doc2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := doc2.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := q.Run(doc2, Auto); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
	if _, err := q.RunWithVars(doc2, Auto, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunWithVars after Close = %v, want ErrClosed", err)
	}
	// A truncated single-document snapshot is rejected at open (the member
	// is validated eagerly on this path).
	trunc := filepath.Join(t.TempDir(), "trunc.xqts")
	if err := os.WriteFile(trunc, buf.Bytes()[:buf.Len()-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshotFile(trunc); err == nil {
		t.Fatal("open of a truncated document snapshot should fail")
	}
}
