package xqtp

import (
	"strings"
	"testing"
)

const personDoc = `<doc>
  <person><name>John</name><emailaddress>j@x</emailaddress></person>
  <person><name>Mary</name></person>
  <person>
    <person><name>Nested</name><emailaddress>n@x</emailaddress></person>
    <name>Outer</name>
    <emailaddress>o@x</emailaddress>
  </person>
</doc>`

func values(t *testing.T, s Sequence) []string {
	t.Helper()
	out := make([]string, len(s))
	for i, it := range s {
		if n, ok := it.(*Node); ok {
			out[i] = n.StringValue()
		} else {
			out[i] = ItemString(it)
		}
	}
	return out
}

func TestQuickstart(t *testing.T) {
	doc, err := LoadXMLString(personDoc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Prepare(`$d//person[emailaddress]/name`)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		items, err := q.Run(doc, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := strings.Join(values(t, items), ","); got != "John,Nested,Outer" {
			t.Errorf("%v: %s", alg, got)
		}
	}
	if q.TreePatterns() != 1 {
		t.Errorf("Q1a should compile to one tree pattern, got %d:\n%s", q.TreePatterns(), q.Plan())
	}
}

func TestFigure1QueriesRun(t *testing.T) {
	doc, err := LoadXMLString(personDoc)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"Q1a": "John,Nested,Outer",
		"Q1b": "John,Nested,Outer",
		"Q1c": "John,Nested,Outer",
		"Q2":  "j@x",
		"Q3":  "John",
		"Q4":  "j@x",
		"Q5":  "John,Outer,Nested",
	}
	for _, pq := range Figure1Queries {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		for _, alg := range Algorithms {
			items, err := q.Run(doc, alg)
			if err != nil {
				t.Fatalf("%s/%v: %v", pq.Name, alg, err)
			}
			if got := strings.Join(values(t, items), ","); got != want[pq.Name] {
				t.Errorf("%s/%v: got %s, want %s", pq.Name, alg, got, want[pq.Name])
			}
		}
	}
}

// §5.1 validation: every variant compiles to the identical plan containing
// exactly one TupleTreePattern, and all variants return identical results.
func TestFig4VariantValidation(t *testing.T) {
	variants := Fig4Variants()
	if len(variants) < 20 {
		t.Fatalf("only %d variants generated", len(variants))
	}
	doc := NewXMarkDocument(11, 60)
	var refPlan string
	var refResult string
	for i, v := range variants {
		q, err := Prepare(v)
		if err != nil {
			t.Fatalf("variant %d (%s): %v", i, v, err)
		}
		if q.TreePatterns() != 1 {
			t.Errorf("variant %d has %d tree patterns (%s):\n%s", i, q.TreePatterns(), v, q.Plan())
		}
		items, err := q.Run(doc, Staircase)
		if err != nil {
			t.Fatalf("variant %d run: %v", i, err)
		}
		res := strings.Join(values(t, items), "|")
		if i == 0 {
			refPlan = q.Plan()
			refResult = res
			continue
		}
		if q.Plan() != refPlan {
			t.Errorf("variant %d produced a different plan (%s):\n  %s\n  %s", i, v, refPlan, q.Plan())
		}
		if res != refResult {
			t.Errorf("variant %d produced different results (%s)", i, v)
		}
	}
	// The "standard engine" (no rewrites, no tree patterns) still computes
	// the same result, just without the operator.
	old, err := PrepareWithOptions(Fig4Query, StandardEngineOptions)
	if err != nil {
		t.Fatal(err)
	}
	if old.TreePatterns() != 0 {
		t.Errorf("standard engine should have no tree patterns")
	}
	items, err := old.Run(doc, NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(values(t, items), "|"); got != refResult {
		t.Errorf("standard engine result differs")
	}
}

// PathVariants convergence holds for other child-step families too, with
// nested path predicates.
func TestPathVariantsOtherFamilies(t *testing.T) {
	families := []struct {
		steps []string
		pred  string
	}{
		{[]string{"people", "person", "name"}, ""},
		{[]string{"people", "person", "profile", "interest"}, "name"},
		{[]string{"regions", "australia", "item", "name"}, "quantity"},
	}
	for _, f := range families {
		variants := PathVariants("$input", f.steps, 1, f.pred)
		var ref string
		for i, v := range variants {
			q, err := Prepare(v)
			if err != nil {
				t.Fatalf("%v variant %d (%s): %v", f.steps, i, v, err)
			}
			if q.TreePatterns() != 1 {
				t.Errorf("%s: %d patterns:\n%s", v, q.TreePatterns(), q.Plan())
			}
			if i == 0 {
				ref = q.Plan()
			} else if q.Plan() != ref {
				t.Errorf("%v variant %d diverges (%s):\n  %s\n  %s", f.steps, i, v, ref, q.Plan())
			}
		}
	}
}

// A predicate whose input type is unknown at compile time keeps its runtime
// typeswitch: numeric values select positionally, node sets select
// existentially (XPath's dynamic predicate semantics).
func TestRuntimeTypeSwitch(t *testing.T) {
	doc, err := LoadXMLString(personDoc)
	if err != nil {
		t.Fatal(err)
	}
	q := MustPrepare(`$d//person[$k]/name`)
	if q.Operators()["TypeSwitch"] == 0 {
		t.Fatalf("typeswitch eliminated despite unknown type: %s", q.Plan())
	}
	vars := func(k Sequence) map[string]Sequence {
		return map[string]Sequence{
			"d": Sequence{doc.Root()}, "dot": Sequence{doc.Root()}, "k": k,
		}
	}
	// Numeric: positional.
	items, err := q.RunWithVars(doc, NestedLoop, vars(Sequence{Integer(2)}))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(values(t, items), ","); got != "Mary" {
		t.Errorf("person[$k=2] = %s", got)
	}
	// Boolean-ish: effective boolean value.
	items, err = q.RunWithVars(doc, NestedLoop, vars(Sequence{Bool(true)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Errorf("person[$k=true] returned %d names", len(items))
	}
}

// QE queries run identically under all three algorithms on a MemBeR
// document.
func TestQEQueriesAgree(t *testing.T) {
	doc := NewMemberDocumentNodes(5, 4, 100, 4000)
	for _, pq := range QEQueries {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		var ref string
		for _, alg := range Algorithms {
			items, err := q.Run(doc, alg)
			if err != nil {
				t.Fatalf("%s/%v: %v", pq.Name, alg, err)
			}
			res := strings.Join(values(t, items), "|")
			if ref == "" {
				ref = res
			} else if res != ref {
				t.Errorf("%s/%v disagrees", pq.Name, alg)
			}
		}
	}
}

// Fig. 6 pairs: the child and descendant forms return the same results on
// the XMark-like documents.
func TestFigure6PairsEquivalent(t *testing.T) {
	doc := NewXMarkDocument(2, 80)
	for _, pair := range Figure6Queries {
		qc := MustPrepare(pair.Child)
		qd := MustPrepare(pair.Descendant)
		for _, alg := range Algorithms {
			rc, err := qc.Run(doc, alg)
			if err != nil {
				t.Fatalf("%s child/%v: %v", pair.Name, alg, err)
			}
			rd, err := qd.Run(doc, alg)
			if err != nil {
				t.Fatalf("%s desc/%v: %v", pair.Name, alg, err)
			}
			if strings.Join(values(t, rc), "|") != strings.Join(values(t, rd), "|") {
				t.Errorf("%s/%v: child and descendant forms disagree", pair.Name, alg)
			}
		}
	}
}

// §5.3 chains return the spine nodes; all algorithms agree.
func TestSection53Chain(t *testing.T) {
	doc := NewDeepDocument(3, 5000, 15, "t1")
	for _, k := range []int{1, 5, 10, 14} {
		q, err := Prepare(Section53Query(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		var ref string
		for _, alg := range Algorithms {
			items, err := q.Run(doc, alg)
			if err != nil {
				t.Fatalf("k=%d/%v: %v", k, alg, err)
			}
			if len(items) != 1 {
				t.Fatalf("k=%d/%v: %d items, want 1 (spine)", k, alg, len(items))
			}
			res := ItemString(items[0])
			if ref == "" {
				ref = res
			} else if res != ref {
				t.Errorf("k=%d/%v disagrees", k, alg)
			}
		}
	}
}

// The standard engine (unrewritten, unoptimized plans) agrees with the
// full pipeline on every Fig. 1 query — the baseline is semantically
// faithful, just slower.
func TestStandardEngineAgrees(t *testing.T) {
	doc, err := LoadXMLString(personDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, pq := range Figure1Queries {
		newQ := MustPrepare(pq.Query)
		oldQ, err := PrepareWithOptions(pq.Query, StandardEngineOptions)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		if oldQ.TreePatterns() != 0 {
			t.Errorf("%s: standard engine has tree patterns", pq.Name)
		}
		want, err := newQ.Run(doc, Staircase)
		if err != nil {
			t.Fatal(err)
		}
		got, err := oldQ.Run(doc, NestedLoop)
		if err != nil {
			t.Fatalf("%s standard: %v", pq.Name, err)
		}
		if strings.Join(values(t, want), "|") != strings.Join(values(t, got), "|") {
			t.Errorf("%s: standard engine disagrees", pq.Name)
		}
	}
	// And its plans are syntax-dependent: Q1a and Q1b differ.
	a, _ := PrepareWithOptions(Figure1Queries[0].Query, StandardEngineOptions)
	b, _ := PrepareWithOptions(Figure1Queries[1].Query, StandardEngineOptions)
	if a.Plan() == b.Plan() {
		t.Error("standard engine plans for Q1a and Q1b should differ")
	}
}

func TestExplainAndPhases(t *testing.T) {
	q := MustPrepare(`$d//person[emailaddress]/name`)
	ex := q.Explain()
	for _, want := range []string{"Normalized", "typeswitch", "TPNF", "TupleTreePattern", "MapFromItem"} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q", want)
		}
	}
	if !strings.Contains(q.UnoptimizedPlan(), "TreeJoin") {
		t.Error("UnoptimizedPlan should keep TreeJoins")
	}
	if !strings.Contains(q.Core(), "ddo") {
		t.Error("Core should contain ddo calls")
	}
	if !strings.Contains(q.Rewritten(), "for $") {
		t.Error("Rewritten should contain for loops")
	}
}

func TestDocumentAccessors(t *testing.T) {
	doc, err := LoadXMLString(`<a><b>x</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.NumNodes() != 4 { // document, a, b, text
		t.Errorf("NumNodes = %d", doc.NumNodes())
	}
	if doc.SizeBytes() == 0 || !strings.Contains(doc.XML(), "<b>x</b>") {
		t.Errorf("serialization broken: %s", doc.XML())
	}
	if doc.Root().Kind.String() != "document" {
		t.Errorf("root kind = %s", doc.Root().Kind)
	}
}

func TestPrepareErrors(t *testing.T) {
	if _, err := Prepare(`$d//person[`); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := Prepare(`unknown-fn($d)`); err == nil {
		t.Error("unknown function not reported")
	}
}

func TestRunWithVars(t *testing.T) {
	doc, _ := LoadXMLString(personDoc)
	q := MustPrepare(`$v//name`)
	persons, err := MustPrepare(`$d//person[1]`).Run(doc, NestedLoop)
	if err != nil || len(persons) != 1 {
		t.Fatal(err)
	}
	items, err := q.RunWithVars(doc, Staircase, map[string]Sequence{"v": persons, "dot": persons})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(values(t, items), ","); got != "John" {
		t.Errorf("got %s", got)
	}
}
