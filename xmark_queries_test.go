package xqtp

import (
	"strings"
	"testing"
)

// Every XMark catalog query compiles, runs under all algorithms with
// identical results, and agrees with the standard (unrewritten) engine.
func TestXMarkCatalog(t *testing.T) {
	doc := NewXMarkDocument(13, 150)
	for _, pq := range XMarkQueries {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		baseline, err := PrepareWithOptions(pq.Query, StandardEngineOptions)
		if err != nil {
			t.Fatalf("%s baseline: %v", pq.Name, err)
		}
		want, err := baseline.Run(doc, NestedLoop)
		if err != nil {
			t.Fatalf("%s baseline run: %v", pq.Name, err)
		}
		wantS := strings.Join(values(t, want), "|")
		for _, alg := range []Algorithm{NestedLoop, Twig, Staircase, Auto} {
			got, err := q.Run(doc, alg)
			if err != nil {
				t.Fatalf("%s/%v: %v", pq.Name, alg, err)
			}
			if gotS := strings.Join(values(t, got), "|"); gotS != wantS {
				t.Errorf("%s/%v: results differ from baseline\n want %.120s\n got  %.120s",
					pq.Name, alg, wantS, gotS)
			}
		}
	}
}

// A few XMark queries have known cardinalities on the seeded generator
// output; pin them so generator changes are visible.
func TestXMarkCatalogSanity(t *testing.T) {
	doc := NewXMarkDocument(13, 150)
	// XQ1: exactly one person has id person0.
	q := MustPrepare(XMarkQueries[0].Query)
	items, err := q.Run(doc, Staircase)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Errorf("XQ1 returned %d items", len(items))
	}
	// XQ6: the item count matches the generator's 4×people.
	q = MustPrepare(XMarkQueries[4].Query)
	items, err = q.Run(doc, Staircase)
	if err != nil {
		t.Fatal(err)
	}
	if got := values(t, items)[0]; got != "600" {
		t.Errorf("XQ6 = %s, want 600", got)
	}
}
