package xqtp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"xqtp/internal/gen"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// The ingest experiment measures document loading throughput: the fused
// zero-copy scanner (Ingest: one pass producing tree, columns, and index)
// against the encoding/xml reference path (ParseStd + BuildIndex — the
// serving path before the fast scanner existed). Both sides are measured
// end to end from the same document bytes to a ready-to-query index.

// IngestCell is one parser measurement over one document.
type IngestCell struct {
	Document      string  `json:"document"`
	Parser        string  `json:"parser"` // "fast" or "std"
	DocumentBytes int     `json:"document_bytes"`
	Nodes         int     `json:"nodes"`
	NsPerOp       float64 `json:"ns_per_op"`
	MBPerSec      float64 `json:"mb_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
}

// IngestReport is the machine-readable output of RunIngest. The cells key
// is distinct from the Table 1 and serve reports so benchdiff can identify
// the report kind.
type IngestReport struct {
	Seed    int64        `json:"seed"`
	Repeats int          `json:"repeats"`
	Cells   []IngestCell `json:"ingest_cells"`
}

// ingestDoc is one benchmark document: its display name and serialized
// bytes.
type ingestDoc struct {
	name string
	data []byte
}

// generatedXML streams a generated document skeleton through the
// serializer into an IngestWriter and returns the accumulated bytes — the
// generator-to-scanner path with no intermediate full-document string.
func generatedXML(root *xdm.Node, sizeHint int) []byte {
	w := xmlstore.NewIngestWriter(sizeHint)
	if err := xmlstore.Serialize(w, root); err != nil {
		panic(err) // IngestWriter.Write cannot fail
	}
	return w.Bytes()
}

// ingestDocuments builds the benchmark corpus: MemBeR documents at the
// Table 1 sizes plus an XMark document calibrated to ≈1.0 MB (≈250 KB in
// quick runs), the acceptance-gate row.
func ingestDocuments(opts ExperimentOptions) []ingestDoc {
	var docs []ingestDoc
	for i, sz := range opts.Table1Sizes {
		root := gen.MemberRoot(gen.MemberConfig{
			Seed: opts.Seed + int64(i), Depth: 4, NumTags: 100, NumNodes: sz / 9,
		})
		docs = append(docs, ingestDoc{
			name: fmt.Sprintf("member-%.1fMB", float64(sz)/1e6),
			data: generatedXML(root, sz+sz/8),
		})
	}
	xmarkTarget := 1_000_000
	if len(opts.Table1Sizes) > 0 && opts.Table1Sizes[0] < 1_000_000 {
		xmarkTarget = 250_000 // quick scale
	}
	// Calibrate the people count against a probe document, then regenerate
	// at the scaled size.
	probePeople := 200
	probe := generatedXML(gen.XMarkRoot(gen.XMarkConfig{Seed: opts.Seed, People: probePeople}), 0)
	people := probePeople * xmarkTarget / len(probe)
	if people < 1 {
		people = 1
	}
	docs = append(docs, ingestDoc{
		name: fmt.Sprintf("xmark-%.1fMB", float64(xmarkTarget)/1e6),
		data: generatedXML(gen.XMarkRoot(gen.XMarkConfig{Seed: opts.Seed, People: people}), xmarkTarget+xmarkTarget/8),
	})
	return docs
}

// measureIngest runs op once to warm up, then repeats timed runs, returning
// the median wall time and the per-run allocation footprint from MemStats
// deltas.
func measureIngest(op func() (int, error), repeats int) (time.Duration, int64, int64, int, error) {
	if repeats < 1 {
		repeats = 1
	}
	nodes, err := op()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if _, err := op(); err != nil {
			return 0, 0, 0, 0, err
		}
		times = append(times, time.Since(start))
	}
	runtime.ReadMemStats(&after)
	allocs := int64(after.Mallocs-before.Mallocs) / int64(repeats)
	bytes := int64(after.TotalAlloc-before.TotalAlloc) / int64(repeats)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], allocs, bytes, nodes, nil
}

// RunIngest measures ingest throughput (fast scanner vs encoding/xml
// reference) over the benchmark corpus: MB/s, ns/op, B/op, allocs/op per
// document and parser. If jsonPath is non-empty the machine-readable
// report is also written there.
func RunIngest(w io.Writer, opts ExperimentOptions, jsonPath string) error {
	fmt.Fprintf(w, "Ingest: XML bytes to queryable index, fast scanner vs encoding/xml\n\n")
	fmt.Fprintf(w, "%-16s %-6s %10s %12s %12s %14s %12s\n",
		"document", "parser", "MB/s", "ms/op", "nodes", "B/op", "allocs/op")
	report := IngestReport{Seed: opts.Seed, Repeats: opts.Repeats}
	for _, doc := range ingestDocuments(opts) {
		data := doc.data
		type side struct {
			name string
			op   func() (int, error)
		}
		sides := []side{
			{"fast", func() (int, error) {
				ix, err := xmlstore.Ingest(data)
				if err != nil {
					return 0, err
				}
				return ix.Tree.CountNodes(), nil
			}},
			{"std", func() (int, error) {
				t, err := xmlstore.ParseStd(bytes.NewReader(data))
				if err != nil {
					return 0, err
				}
				ix := xmlstore.BuildIndex(t)
				return ix.Tree.CountNodes(), nil
			}},
		}
		for _, s := range sides {
			if err := opts.checkpoint(); err != nil {
				return err
			}
			d, allocs, bytesPerOp, nodes, err := measureIngest(s.op, opts.Repeats)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", doc.name, s.name, err)
			}
			mbps := float64(len(data)) / d.Seconds() / 1e6
			fmt.Fprintf(w, "%-16s %-6s %10.1f %12.2f %12d %14d %12d\n",
				doc.name, s.name, mbps, float64(d.Nanoseconds())/1e6, nodes, bytesPerOp, allocs)
			report.Cells = append(report.Cells, IngestCell{
				Document:      doc.name,
				Parser:        s.name,
				DocumentBytes: len(data),
				Nodes:         nodes,
				NsPerOp:       float64(d.Nanoseconds()),
				MBPerSec:      mbps,
				AllocsPerOp:   allocs,
				BytesPerOp:    bytesPerOp,
			})
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "(report written to %s)\n", jsonPath)
	}
	return nil
}
