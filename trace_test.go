package xqtp

import (
	"strings"
	"testing"
)

// PrepareTraced records the paper's worked derivation: the normalized core
// (Q1a-n), the TPNF′ passes reaching Q1-tp, the compiled P1, and the rule
// applications reaching P5.
func TestPrepareTraced(t *testing.T) {
	q, tr, err := PrepareTraced(`$d//person[emailaddress]/name`)
	if err != nil {
		t.Fatal(err)
	}
	if q.TreePatterns() != 1 {
		t.Fatalf("traced query compiled differently: %s", q.Plan())
	}
	if !strings.Contains(tr.Core, "typeswitch") {
		t.Errorf("trace lost the normalized core: %s", tr.Core)
	}
	if len(tr.CoreSteps) < 3 {
		t.Errorf("expected several core rewriting steps, got %d", len(tr.CoreSteps))
	}
	if len(tr.PlanSteps) < 5 {
		t.Errorf("expected several algebraic steps, got %d", len(tr.PlanSteps))
	}
	last := tr.PlanSteps[len(tr.PlanSteps)-1].Repr
	if last != q.Plan() {
		t.Errorf("final trace step differs from the plan:\n  %s\n  %s", last, q.Plan())
	}
	s := tr.String()
	for _, want := range []string{"normalized core", "core rewriting", "algebraic optimization", "canonicalize", "TupleTreePattern"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered trace missing %q", want)
		}
	}
	// The traced query is fully usable.
	doc, err := LoadXMLString(personDoc)
	if err != nil {
		t.Fatal(err)
	}
	items, err := q.Run(doc, Staircase)
	if err != nil || len(items) != 3 {
		t.Errorf("traced query run: %d items, %v", len(items), err)
	}
}
