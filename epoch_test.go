package xqtp

import (
	"bytes"
	"testing"
)

// Epoch is 0 for a fresh corpus, bumps by one per Extend, and leaves the
// receiver untouched — the monotonic counter a (query, corpus name, epoch)
// result-cache key relies on.
func TestCorpusEpochBumpsOnExtend(t *testing.T) {
	src := func(i int) CorpusSource {
		return CorpusSource{
			URI:  "mem://epoch-" + string(rune('a'+i)) + ".xml",
			Data: []byte(`<doc><person><emailaddress/><name>N</name></person></doc>`),
		}
	}
	c, err := LoadCorpus([]CorpusSource{src(0), src(1)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 0 {
		t.Fatalf("fresh corpus epoch = %d, want 0", got)
	}
	c2, err := c.Extend([]CorpusSource{src(2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Epoch(); got != 1 {
		t.Fatalf("epoch after one Extend = %d, want 1", got)
	}
	if got := c.Epoch(); got != 0 {
		t.Fatalf("Extend mutated the receiver's epoch: %d, want 0", got)
	}
	c3, err := c2.Extend([]CorpusSource{src(3)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c3.Epoch(); got != 2 {
		t.Fatalf("epoch after two Extends = %d, want 2", got)
	}

	// A snapshot round-trip starts a fresh lineage: the loaded corpus is a
	// new corpus at epoch 0 (the server keys caches on the corpus it serves,
	// and a newly opened corpus has no cached answers to invalidate).
	var buf bytes.Buffer
	if err := c3.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenCorpusSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Epoch(); got != 0 {
		t.Fatalf("snapshot-loaded corpus epoch = %d, want 0", got)
	}
}
