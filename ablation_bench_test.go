package xqtp

// Ablation benchmarks quantifying individual design choices, referenced by
// DESIGN.md and EXPERIMENTS.md.

import (
	"fmt"
	"testing"
)

// BenchmarkAblationPositionalFirst measures the value of the Head rewrite
// (the §5.3 cursor-style early exit): the positional chain with and without
// the positional-first rule, under the nested loop.
func BenchmarkAblationPositionalFirst(b *testing.B) {
	doc := deepDoc(b)
	src := Section53Query(10)
	withRule := MustPrepare(src)
	withoutRule, err := PrepareWithOptions(src, CompileOptions{
		TreePatterns: true, Rewrites: true, ContextVar: "dot",
		DisablePositionalFirst: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("head-on/NL", func(b *testing.B) { runQuery(b, withRule, doc, NestedLoop) })
	b.Run("head-off/NL", func(b *testing.B) { runQuery(b, withoutRule, doc, NestedLoop) })
	b.Run("head-on/SC", func(b *testing.B) { runQuery(b, withRule, doc, Staircase) })
	b.Run("head-off/SC", func(b *testing.B) { runQuery(b, withoutRule, doc, Staircase) })
}

// BenchmarkAblationBulkConversion measures the value of rule (b): the §5.1
// path with bulk set-at-a-time patterns vs. per-tuple patterns inside maps.
func BenchmarkAblationBulkConversion(b *testing.B) {
	doc := xmarkDoc(b, 1000)
	bulk := MustPrepare(Fig4Query)
	perTuple, err := PrepareWithOptions(Fig4Query, CompileOptions{
		TreePatterns: true, Rewrites: true, ContextVar: "dot",
		DisableBulkConversion: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []Algorithm{NestedLoop, Twig, Staircase} {
		b.Run(fmt.Sprintf("bulk/%s", shortAlg(alg)), func(b *testing.B) {
			runQuery(b, bulk, doc, alg)
		})
		b.Run(fmt.Sprintf("per-tuple/%s", shortAlg(alg)), func(b *testing.B) {
			runQuery(b, perTuple, doc, alg)
		})
	}
}

// BenchmarkStreaming compares the single-scan streaming evaluator (the
// paper's future-work item) against the index-based algorithms on linear
// paths, where it applies.
func BenchmarkStreaming(b *testing.B) {
	member := memberDoc(b, 1_000_000)
	xmark := xmarkDoc(b, 1000)
	queries := []struct {
		name string
		q    *Query
		doc  *Document
	}{
		{"linear-desc", MustPrepare(`$input/desc::t01/desc::t02/desc::t03`), member},
		{"linear-child", MustPrepare(`$input/site/people/person/name`), xmark},
		{"deep-desc", MustPrepare(`$input//person//interest`), xmark},
	}
	for _, tc := range queries {
		for _, alg := range []Algorithm{NestedLoop, Twig, Staircase, Streaming} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, alg), func(b *testing.B) {
				runQuery(b, tc.q, tc.doc, alg)
			})
		}
	}
}

// BenchmarkParallel measures the parallel TupleTreePattern evaluation on a
// per-tuple workload (Q5-shaped maps evaluate one pattern per person).
func BenchmarkParallel(b *testing.B) {
	doc := xmarkDoc(b, 1000)
	// The residual Select leaves the profile/interest pattern with many
	// input tuples (one per selected person), which is where per-context
	// parallelism applies.
	q := MustPrepare(`$input//person[string-length(name) > 3]/profile/interest`)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.RunParallel(doc, NestedLoop, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAuto compares the cost-based chooser against each fixed
// algorithm on a mixed workload (bulk twigs + a selective positional
// chain).
func BenchmarkAuto(b *testing.B) {
	member := memberDoc(b, 1_000_000)
	deep := deepDoc(b)
	queries := []struct {
		name string
		q    *Query
		doc  *Document
	}{
		{"QE1", MustPrepare(QEQueries[0].Query), member},
		{"QE5", MustPrepare(QEQueries[4].Query), member},
		{"chain", MustPrepare(Section53Query(10)), deep},
	}
	algs := []Algorithm{NestedLoop, Twig, Staircase, Auto}
	for _, tc := range queries {
		for _, alg := range algs {
			name := alg.String()
			b.Run(fmt.Sprintf("%s/%s", tc.name, name), func(b *testing.B) {
				runQuery(b, tc.q, tc.doc, alg)
			})
		}
	}
}
