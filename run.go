package xqtp

import (
	"context"
	"runtime"
	"time"

	"xqtp/internal/execctx"
)

// ErrCanceled reports a run cut short by its context: cancellation or an
// expired deadline. Match with errors.Is; the concrete error is a *RunError
// carrying the rows delivered before the stop, and unwraps to the context's
// cause (context.Canceled or context.DeadlineExceeded).
var ErrCanceled = execctx.ErrCanceled

// ErrBudgetExceeded reports a run stopped by its row or byte budget. The
// delivered results are exactly the first rows of the full result in
// document order; the concrete error is a *RunError carrying the counts.
var ErrBudgetExceeded = execctx.ErrBudgetExceeded

// RunError is the typed abort error of a canceled or budget-stopped run:
// the reason (ErrCanceled or ErrBudgetExceeded) plus the rows and bytes
// delivered before the stop.
type RunError = execctx.Error

// Sink receives result items as a run produces them. Push returning an
// error aborts the run; the error comes back from the Run call. A Sink is
// called from the run's merging goroutine only — implementations need no
// locking against the run itself.
type Sink = execctx.Sink

// RunOptions configures a context-aware run. The zero value means no
// deadline, no budgets, sequential evaluation, and results collected into
// the returned Sequence.
type RunOptions struct {
	// Workers caps the evaluation parallelism, as in RunParallel; <= 0
	// means sequential for Query runs and GOMAXPROCS for Corpus runs
	// (matching Run and RunParallel defaults).
	Workers int
	// Timeout, when positive, bounds the run's wall-clock time (applied on
	// top of the caller's context).
	Timeout time.Duration
	// Deadline, when set, bounds the run's wall-clock time absolutely.
	Deadline time.Time
	// MaxRows, when positive, stops the run after that many result items
	// have been delivered; the run returns ErrBudgetExceeded and the
	// delivered items are the first MaxRows of the full result in document
	// order.
	MaxRows int64
	// MaxBytes, when positive, stops the run once the delivered items'
	// estimated size exceeds it (node items weigh in at their subtree size,
	// atomics at their lexical length).
	MaxBytes int64
	// Sink, when non-nil, receives result items as the run produces them;
	// the returned Sequence is then nil. A nil Sink collects into the
	// returned Sequence.
	Sink Sink
}

// context applies the options' deadline and timeout to ctx.
func (o RunOptions) context(ctx context.Context) (context.Context, context.CancelFunc) {
	cancel := func() {}
	if !o.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, o.Deadline)
	}
	if o.Timeout > 0 {
		ctx2, cancel2 := context.WithTimeout(ctx, o.Timeout)
		prev := cancel
		ctx, cancel = ctx2, func() { cancel2(); prev() }
	}
	return ctx, cancel
}

// RunInfo reports what one context-aware run delivered.
type RunInfo struct {
	// Rows and Bytes count the delivered result items and their estimated
	// size (the quantities the budgets meter).
	Rows, Bytes int64
	// Members and Skipped mirror RunStats for corpus runs (zero for
	// single-document runs).
	Members, Skipped int
}

// normalizeWorkers resolves a worker-count argument: values <= 0 mean one
// worker per available CPU.
func normalizeWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// RunCtx is Run under a context: the evaluation polls ctx at bounded
// intervals and aborts with ErrCanceled (wrapping the context's cause) once
// it is done. With a background context it is exactly Run.
func (q *Query) RunCtx(ctx context.Context, doc *Document, alg Algorithm) (Sequence, error) {
	if err := doc.closedErr(); err != nil {
		return nil, err
	}
	p, err := q.physicalPlan(alg)
	if err != nil {
		return nil, err
	}
	rt := q.runtime(doc, 0)
	rt.EC = execctx.From(ctx, 0, 0)
	return p.Run(rt)
}

// RunParallelCtx is RunParallel under a context; workers <= 0 means one
// worker per available CPU.
func (q *Query) RunParallelCtx(ctx context.Context, doc *Document, alg Algorithm, workers int) (Sequence, error) {
	if err := doc.closedErr(); err != nil {
		return nil, err
	}
	p, err := q.physicalPlan(alg)
	if err != nil {
		return nil, err
	}
	rt := q.runtime(doc, normalizeWorkers(workers))
	rt.EC = execctx.From(ctx, 0, 0)
	return p.Run(rt)
}

// RunWith evaluates the query under a context with deadlines, budgets, and
// streaming delivery. Result items flow to opts.Sink as they are produced
// (a nil Sink collects them into the returned Sequence). On cancellation or
// a spent budget the delivered items are a prefix of the full result in
// document order, the returned Sequence (nil-Sink case) holds that prefix,
// and the error matches ErrCanceled or ErrBudgetExceeded.
func (q *Query) RunWith(ctx context.Context, doc *Document, alg Algorithm, opts RunOptions) (Sequence, RunInfo, error) {
	if err := doc.closedErr(); err != nil {
		return nil, RunInfo{}, err
	}
	p, err := q.physicalPlan(alg)
	if err != nil {
		return nil, RunInfo{}, err
	}
	ctx, cancel := opts.context(ctx)
	defer cancel()
	ec := execctx.From(ctx, opts.MaxRows, opts.MaxBytes)
	rt := q.runtime(doc, opts.Workers)
	rt.EC = ec
	sink := opts.Sink
	var col *execctx.Collector
	if sink == nil {
		col = &execctx.Collector{}
		sink = col
	}
	err = p.RunSink(rt, sink)
	info := RunInfo{Rows: ec.Rows(), Bytes: ec.Bytes()}
	if col != nil {
		return col.Seq, info, err
	}
	return nil, info, err
}
