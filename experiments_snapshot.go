package xqtp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// The snapshot experiment measures the paging behavior of the file-backed
// snapshot store: cold-open latency (file to queryable corpus), first-query
// latency on a cold store (the one member the query touches pages in and
// parses; everything else stays on disk), and the resident set those two
// operations leave behind — each in "mmap" mode (OpenCorpusFile) against
// the "readall" baseline (read the whole file, then open the buffer).

// SnapshotCell is one measurement of the snapshot experiment. The phases:
//
//   - "cold-open": open the snapshot file into a queryable corpus.
//   - "first-query": one needle query against a freshly opened corpus
//     (open outside the timed region) — the latency of faulting in and
//     parsing exactly the members the query needs.
//   - "warm-query": the same query repeated on the same corpus, members
//     already loaded — the steady-state floor.
//
// ResidentBytes is filled for mmap rows on hosts that can report it
// (Linux): the snapshot mapping's resident set after the phase ran, the
// direct measure of how little of the file the operation touched.
type SnapshotCell struct {
	Phase         string  `json:"phase"` // "cold-open", "first-query", "warm-query"
	Mode          string  `json:"mode"`  // "mmap", "readall"
	Docs          int     `json:"docs"`
	Query         string  `json:"query,omitempty"`
	Items         int     `json:"items,omitempty"`
	Skipped       int     `json:"skipped,omitempty"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	ResidentBytes int64   `json:"resident_bytes,omitempty"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
}

// SnapshotReport is the machine-readable output of RunSnapshot. The cells
// key identifies the report kind to benchdiff.
type SnapshotReport struct {
	Seed    int64          `json:"seed"`
	Repeats int            `json:"repeats"`
	CPUs    int            `json:"cpus"`
	Note    string         `json:"note,omitempty"`
	Cells   []SnapshotCell `json:"snapshot_cells"`
}

// snapshotNeedleURI / snapshotNeedleQuery: one extra corpus member carrying
// a tag that occurs nowhere else, and the query that finds it. The name
// table prunes every other member, so a first-query measurement touches
// exactly one member's pages — the experiment's larger-than-RAM story in
// miniature.
const (
	snapshotNeedleURI   = "mem://needle.xml"
	snapshotNeedleXML   = `<needle><pin note="x">hit</pin></needle>`
	snapshotNeedleQuery = `$input//needle/pin`
)

// snapshotCorpusFile writes the generated corpus (plus the needle member)
// as a snapshot file under dir and returns its path and size.
func snapshotCorpusFile(dir string, nDocs int, seed int64) (string, int, error) {
	sources := collectionSources(nDocs, seed)
	sources = append(sources, CorpusSource{URI: snapshotNeedleURI, Data: []byte(snapshotNeedleXML)})
	corpus, err := LoadCorpus(sources, 0)
	if err != nil {
		return "", 0, err
	}
	path := filepath.Join(dir, fmt.Sprintf("corpus-%d.xqts", nDocs))
	f, err := os.Create(path)
	if err != nil {
		return "", 0, err
	}
	if err := corpus.SaveSnapshot(f); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return "", 0, err
	}
	return path, int(st.Size()), nil
}

// snapshotOpen opens the snapshot file in the given mode. "readall" goes
// through the buffer-owning path directly rather than the environment
// variable, so the two modes are measured in one process.
func snapshotOpen(path, mode string) (*Corpus, error) {
	if mode == "readall" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return OpenCorpusSnapshot(data)
	}
	return OpenCorpusFile(path)
}

// measureCold times op against a fresh state each repeat: setup runs
// outside the timed region, op inside, teardown after. The median, with
// allocation deltas averaged across repeats, mirroring measureIngest.
func measureCold(repeats int, setup func() error, op func() error, teardown func()) (time.Duration, int64, int64, error) {
	if repeats < 1 {
		repeats = 1
	}
	times := make([]time.Duration, 0, repeats)
	var before, after runtime.MemStats
	var allocs, bytes int64
	for i := 0; i < repeats; i++ {
		if err := setup(); err != nil {
			return 0, 0, 0, err
		}
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := op(); err != nil {
			teardown()
			return 0, 0, 0, err
		}
		times = append(times, time.Since(start))
		runtime.ReadMemStats(&after)
		allocs += int64(after.Mallocs - before.Mallocs)
		bytes += int64(after.TotalAlloc - before.TotalAlloc)
		teardown()
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], allocs / int64(repeats), bytes / int64(repeats), nil
}

// RunSnapshot measures snapshot cold-open, first-query and warm-query
// latency, mmap against read-all, with the mapping's resident set where the
// host reports it. If jsonPath is non-empty the machine-readable report is
// also written there.
func RunSnapshot(w io.Writer, opts ExperimentOptions, jsonPath string) error {
	fmt.Fprintf(w, "Snapshot: file-backed corpus paging — cold open, first query, resident set\n\n")
	report := SnapshotReport{Seed: opts.Seed, Repeats: opts.Repeats, CPUs: runtime.NumCPU()}
	if runtime.GOOS != "linux" {
		report.Note = "resident-set bytes are reported on Linux only; rows on this host omit them"
	}
	dir, err := os.MkdirTemp("", "xqtp-snapshot-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	q, err := Prepare(snapshotNeedleQuery)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-12s %-8s %-8s %12s %16s %16s %10s %10s\n",
		"phase", "mode", "docs", "ms/op", "snapshot_bytes", "resident_bytes", "items", "skipped")
	for _, nDocs := range opts.CollectionSizes {
		path, snapBytes, err := snapshotCorpusFile(dir, nDocs, opts.Seed)
		if err != nil {
			return fmt.Errorf("snapshot %d docs: %w", nDocs, err)
		}
		for _, mode := range []string{"mmap", "readall"} {
			if err := opts.checkpoint(); err != nil {
				return err
			}
			// cold-open: file path to queryable corpus, nothing loaded.
			var c *Corpus
			d, allocs, bytesPerOp, err := measureCold(opts.Repeats,
				func() error { return nil },
				func() error { c, err = snapshotOpen(path, mode); return err },
				func() { c.Close() })
			if err != nil {
				return fmt.Errorf("cold-open %s %d docs: %w", mode, nDocs, err)
			}
			// The resident set right after an open (measured once, outside
			// the timed loop).
			c, err = snapshotOpen(path, mode)
			if err != nil {
				return err
			}
			resident, haveRes := c.SnapshotResident()
			c.Close()
			cell := SnapshotCell{
				Phase: "cold-open", Mode: mode, Docs: nDocs,
				SnapshotBytes: snapBytes,
				NsPerOp:       float64(d.Nanoseconds()),
				AllocsPerOp:   allocs, BytesPerOp: bytesPerOp,
			}
			if haveRes {
				cell.ResidentBytes = resident
			}
			report.Cells = append(report.Cells, cell)
			fmt.Fprintf(w, "%-12s %-8s %-8d %12.3f %16d %16s %10s %10s\n",
				"cold-open", mode, nDocs, float64(d.Nanoseconds())/1e6, snapBytes,
				residentString(resident, haveRes), "", "")

			// first-query: a cold corpus answers the needle query. The open
			// is setup; only the query is timed.
			items, skipped := 0, 0
			var lastRes int64
			var lastHaveRes bool
			d, allocs, bytesPerOp, err = measureCold(opts.Repeats,
				func() error { c, err = snapshotOpen(path, mode); return err },
				func() error {
					seq, rs, err := c.RunParallelStats(q, Auto, 1)
					if err != nil {
						return err
					}
					items = len(seq)
					skipped = rs.Skipped
					return nil
				},
				func() {
					lastRes, lastHaveRes = c.SnapshotResident()
					c.Close()
				})
			if err != nil {
				return fmt.Errorf("first-query %s %d docs: %w", mode, nDocs, err)
			}
			cell = SnapshotCell{
				Phase: "first-query", Mode: mode, Docs: nDocs,
				Query: snapshotNeedleQuery, Items: items, Skipped: skipped,
				SnapshotBytes: snapBytes,
				NsPerOp:       float64(d.Nanoseconds()),
				AllocsPerOp:   allocs, BytesPerOp: bytesPerOp,
			}
			if lastHaveRes {
				cell.ResidentBytes = lastRes
			}
			report.Cells = append(report.Cells, cell)
			fmt.Fprintf(w, "%-12s %-8s %-8d %12.3f %16d %16s %10d %10d\n",
				"first-query", mode, nDocs, float64(d.Nanoseconds())/1e6, snapBytes,
				residentString(lastRes, lastHaveRes), items, skipped)

			// warm-query: the same corpus, needle member already loaded.
			c, err = snapshotOpen(path, mode)
			if err != nil {
				return err
			}
			if _, _, err := c.RunParallelStats(q, Auto, 1); err != nil {
				c.Close()
				return err
			}
			d, allocs, bytesPerOp, err = measureCold(opts.Repeats,
				func() error { return nil },
				func() error {
					_, _, err := c.RunParallelStats(q, Auto, 1)
					return err
				},
				func() {})
			c.Close()
			if err != nil {
				return fmt.Errorf("warm-query %s %d docs: %w", mode, nDocs, err)
			}
			report.Cells = append(report.Cells, SnapshotCell{
				Phase: "warm-query", Mode: mode, Docs: nDocs,
				Query: snapshotNeedleQuery, Items: items, Skipped: skipped,
				SnapshotBytes: snapBytes,
				NsPerOp:       float64(d.Nanoseconds()),
				AllocsPerOp:   allocs, BytesPerOp: bytesPerOp,
			})
			fmt.Fprintf(w, "%-12s %-8s %-8d %12.3f %16d %16s %10d %10d\n",
				"warm-query", mode, nDocs, float64(d.Nanoseconds())/1e6, snapBytes,
				"", items, skipped)
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "(report written to %s)\n", jsonPath)
	}
	return nil
}

func residentString(res int64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%d", res)
}
