// Command xmlgen generates the synthetic XML documents used by the paper's
// experiments: MemBeR-style random trees, XMark-like auction documents, and
// the deep single-tag document of §5.3.
//
// Usage:
//
//	xmlgen -kind member -bytes 2100000 -seed 1 > member.xml
//	xmlgen -kind xmark -people 1000 > auctions.xml
//	xmlgen -kind deep -nodes 50000 -depth 15 > deep.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xqtp"
)

func main() {
	var (
		kind   = flag.String("kind", "member", "document kind: member, xmark, deep")
		seed   = flag.Int64("seed", 1, "generator seed")
		bytes_ = flag.Int("bytes", 2_100_000, "target serialized size (member)")
		people = flag.Int("people", 255, "number of persons (xmark)")
		nodes  = flag.Int("nodes", 50_000, "number of elements (deep)")
		depth  = flag.Int("depth", 15, "maximum depth (deep)")
		tag    = flag.String("tag", "t1", "element tag (deep)")
		format = flag.String("format", "xml", "output format: xml, snapshot (document), corpus (single-member corpus snapshot for xqd/OpenCorpusFile)")
	)
	flag.Parse()

	var doc *xqtp.Document
	switch *kind {
	case "member":
		doc = xqtp.NewMemberDocument(*seed, *bytes_)
	case "xmark":
		doc = xqtp.NewXMarkDocument(*seed, *people)
	case "deep":
		doc = xqtp.NewDeepDocument(*seed, *nodes, *depth, *tag)
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch *format {
	case "xml":
		if err := doc.WriteXML(w); err != nil {
			fmt.Fprintln(os.Stderr, "xmlgen:", err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	case "snapshot":
		if err := doc.SaveSnapshot(w); err != nil {
			fmt.Fprintln(os.Stderr, "xmlgen:", err)
			os.Exit(1)
		}
	case "corpus":
		// A one-member corpus snapshot: what cmd/xqd and OpenCorpusFile load.
		corpus, err := xqtp.LoadCorpus([]xqtp.CorpusSource{
			{URI: fmt.Sprintf("mem://%s.xml", *kind), Data: []byte(doc.XML())},
		}, 1)
		if err == nil {
			err = corpus.SaveSnapshot(w)
			corpus.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlgen:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown format %q\n", *format)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "xmlgen: %d nodes, %d bytes of XML\n", doc.NumNodes(), doc.SizeBytes())
}
