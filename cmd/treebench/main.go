// Command treebench regenerates the paper's evaluation: the §5.1 plan
// validation, Fig. 4, Table 1 (QE1–QE6), Fig. 6, and the §5.3 positional
// chains, printing the same rows and series the paper reports.
//
// Usage:
//
//	treebench -exp all            # every experiment at paper scale
//	treebench -exp table1 -quick  # one experiment at reduced scale
//	treebench -exp table1 -json BENCH_table1.json  # per-cell ns/allocs/bytes
//	treebench -exp table1 -algs nl,sc,auto         # choose the measured algorithms
//	treebench -exp serve -json BENCH_serve.json -cpus 1,2,4  # serving QPS
//	treebench -exp ingest -json BENCH_ingest.json  # parse throughput fast vs std
//	treebench -exp collection -json BENCH_collection.json  # corpus ingest MB/s + fan-out QPS
//	treebench -exp optimizer -json BENCH_optimizer.json  # cost-model est vs act + member skips
//	treebench -exp snapshot -json BENCH_snapshot.json  # mmap cold open + paging vs read-all
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xqtp"
	"xqtp/internal/server"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: validate, fig4, table1, fig6, sec53, serve, ingest, collection, optimizer, snapshot, all")
		quick    = flag.Bool("quick", false, "reduced document sizes for a fast run")
		seed     = flag.Int64("seed", 1, "generator seed")
		repeats  = flag.Int("repeats", 3, "timed runs per measurement (median reported)")
		jsonPath = flag.String("json", "", "write the report as JSON to this file (table1 and serve)")
		cpusFlag = flag.String("cpus", "", "comma-separated GOMAXPROCS settings to measure (serve only, e.g. 1,2,4)")
		clients  = flag.String("clients", "", "comma-separated HTTP client counts for the serve experiment (default 1,4,16; quick 1,4)")
		algsFlag = flag.String("algs", "", "comma-separated algorithms for table1/fig6 (nl, sc, twig, auto, stream; default nl,twig,sc)")
	)
	flag.Parse()

	var cpus []int
	if *cpusFlag != "" {
		for _, part := range strings.Split(*cpusFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "treebench: bad -cpus entry %q\n", part)
				os.Exit(2)
			}
			cpus = append(cpus, n)
		}
	}

	// An interrupt abandons the sweep at the next between-cell checkpoint
	// instead of grinding through the remaining measurements; a second
	// interrupt (after ctx is done) kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := xqtp.DefaultExperimentOptions()
	if *quick {
		opts = xqtp.QuickExperimentOptions()
	}
	opts.Seed = *seed
	opts.Repeats = *repeats
	opts.Context = ctx
	if *algsFlag != "" {
		for _, part := range strings.Split(*algsFlag, ",") {
			alg, err := xqtp.ParseAlgorithm(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
				os.Exit(2)
			}
			opts.Algorithms = append(opts.Algorithms, alg)
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var err error
	switch *exp {
	case "validate":
		err = xqtp.RunValidation(w)
	case "fig4":
		err = xqtp.RunFigure4(w, opts)
	case "table1":
		err = xqtp.RunTable1(w, opts, *jsonPath)
	case "fig6":
		err = xqtp.RunFigure6(w, opts)
	case "sec53":
		err = xqtp.RunSection53(w, opts)
	case "serve":
		err = runServeWithHTTP(w, opts, *jsonPath, cpus, *clients, *quick)
	case "ingest":
		err = xqtp.RunIngest(w, opts, *jsonPath)
	case "collection":
		err = xqtp.RunCollection(w, opts, *jsonPath)
	case "optimizer":
		err = xqtp.RunOptimizer(w, opts, *jsonPath)
	case "snapshot":
		err = xqtp.RunSnapshot(w, opts, *jsonPath)
	case "all":
		err = xqtp.RunAll(w, opts)
	default:
		fmt.Fprintf(os.Stderr, "treebench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		w.Flush()
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "treebench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "treebench:", err)
		os.Exit(1)
	}
}

// runServeWithHTTP runs the in-process serving sweep, then drives the real
// HTTP serving tier (internal/server on a loopback listener) with closed-loop
// clients and merges those cells into the same report before writing JSON.
func runServeWithHTTP(w io.Writer, opts xqtp.ExperimentOptions, jsonPath string, cpus []int, clientsFlag string, quick bool) error {
	report, err := xqtp.RunServeReport(w, opts, cpus)
	if err != nil {
		return err
	}

	clientCounts := []int{1, 4, 16}
	people := 100
	cellDur := 2 * time.Second
	if quick {
		clientCounts = []int{1, 4}
		people = 25
		cellDur = 400 * time.Millisecond
	}
	if clientsFlag != "" {
		clientCounts = clientCounts[:0]
		for _, part := range strings.Split(clientsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -clients entry %q", part)
			}
			clientCounts = append(clientCounts, n)
		}
	}

	cells, err := server.RunHTTPLoad(w, server.LoadOptions{
		Seed:         opts.Seed,
		People:       people,
		Clients:      clientCounts,
		CellDuration: cellDur,
		Context:      opts.Context,
	})
	if err != nil {
		return err
	}
	report.HTTPCells = cells
	if runtime.NumCPU() == 1 {
		report.Note += "; serve_cells rows with clients > 1 time-share a single core, so their qps bounds overhead, not scaling"
	}

	if jsonPath != "" {
		return report.WriteJSON(w, jsonPath)
	}
	return nil
}
