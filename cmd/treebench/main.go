// Command treebench regenerates the paper's evaluation: the §5.1 plan
// validation, Fig. 4, Table 1 (QE1–QE6), Fig. 6, and the §5.3 positional
// chains, printing the same rows and series the paper reports.
//
// Usage:
//
//	treebench -exp all            # every experiment at paper scale
//	treebench -exp table1 -quick  # one experiment at reduced scale
//	treebench -exp serve -json BENCH_serve.json  # concurrent serving QPS
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xqtp"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: validate, fig4, table1, fig6, sec53, serve, all")
		quick    = flag.Bool("quick", false, "reduced document sizes for a fast run")
		seed     = flag.Int64("seed", 1, "generator seed")
		repeats  = flag.Int("repeats", 3, "timed runs per measurement (median reported)")
		jsonPath = flag.String("json", "", "write the serve report as JSON to this file (serve only)")
	)
	flag.Parse()

	opts := xqtp.DefaultExperimentOptions()
	if *quick {
		opts = xqtp.QuickExperimentOptions()
	}
	opts.Seed = *seed
	opts.Repeats = *repeats

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var err error
	switch *exp {
	case "validate":
		err = xqtp.RunValidation(w)
	case "fig4":
		err = xqtp.RunFigure4(w, opts)
	case "table1":
		err = xqtp.RunTable1(w, opts)
	case "fig6":
		err = xqtp.RunFigure6(w, opts)
	case "sec53":
		err = xqtp.RunSection53(w, opts)
	case "serve":
		err = xqtp.RunServe(w, opts, *jsonPath)
	case "all":
		err = xqtp.RunAll(w, opts)
	default:
		fmt.Fprintf(os.Stderr, "treebench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		w.Flush()
		fmt.Fprintln(os.Stderr, "treebench:", err)
		os.Exit(1)
	}
}
