// Command xqplan shows every phase of the tree-pattern compilation pipeline
// (Fig. 2 of the paper) for a query: the parsed surface syntax, the
// normalized XQuery Core, the TPNF' rewritten core, the compiled algebraic
// plan, and the optimized plan with detected TupleTreePattern operators.
//
// Usage:
//
//	xqplan '$d//person[emailaddress]/name'
package main

import (
	"flag"
	"fmt"
	"os"

	"xqtp"
)

func main() {
	trace := flag.Bool("trace", false, "show every intermediate rewriting step")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xqplan [-trace] <query>")
		os.Exit(2)
	}
	if *trace {
		_, tr, err := xqtp.PrepareTraced(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqplan:", err)
			os.Exit(1)
		}
		fmt.Println(tr)
		return
	}
	q, err := xqtp.Prepare(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqplan:", err)
		os.Exit(1)
	}
	fmt.Println(q.Explain())
	fmt.Printf("\nTupleTreePattern operators: %d\n", q.TreePatterns())
}
