// Command xqplan shows every phase of the tree-pattern compilation pipeline
// (Fig. 2 of the paper) for a query: the parsed surface syntax, the
// normalized XQuery Core, the TPNF' rewritten core, the compiled algebraic
// plan, the optimized plan with detected TupleTreePattern operators, and
// the physical plan with its slot layout and per-pattern algorithm
// annotation.
//
// Usage:
//
//	xqplan '$d//person[emailaddress]/name'
//	xqplan -alg auto '$d//person/name'     # physical phase for another algorithm
package main

import (
	"flag"
	"fmt"
	"os"

	"xqtp"
)

func main() {
	trace := flag.Bool("trace", false, "show every intermediate rewriting step")
	algName := flag.String("alg", "sc", "algorithm of the physical phase: nl, sc, twig, auto, stream")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xqplan [-trace] [-alg nl|sc|twig|auto] <query>")
		os.Exit(2)
	}
	alg, err := xqtp.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqplan:", err)
		os.Exit(1)
	}
	if *trace {
		_, tr, err := xqtp.PrepareTraced(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqplan:", err)
			os.Exit(1)
		}
		fmt.Println(tr)
		return
	}
	q, err := xqtp.Prepare(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqplan:", err)
		os.Exit(1)
	}
	fmt.Println(q.Explain())
	if alg != xqtp.Staircase {
		// Explain's physical phase shows the Staircase plan; render the
		// requested algorithm's phase in addition.
		phys, err := q.ExplainPhysical(alg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqplan:", err)
			os.Exit(1)
		}
		fmt.Printf("\nPhysical plan (%s):\n%s", alg, phys)
	}
	fmt.Printf("\nTupleTreePattern operators: %d\n", q.TreePatterns())
}
