// Command xqplan shows every phase of the tree-pattern compilation pipeline
// (Fig. 2 of the paper) for a query: the parsed surface syntax, the
// normalized XQuery Core, the TPNF' rewritten core, the compiled algebraic
// plan, the optimized plan with detected TupleTreePattern operators, and
// the physical plan with its slot layout and per-pattern algorithm
// annotation.
//
// Usage:
//
//	xqplan '$d//person[emailaddress]/name'
//	xqplan -alg auto '$d//person/name'                  # physical phase for another algorithm
//	xqplan -alg auto -file doc.xml '$d//person/name'    # cost-model choice for a concrete document
//	xqplan -alg auto -dir corpus/ '$d//person/name'     # per-member choices across a collection
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"xqtp"
)

func main() {
	trace := flag.Bool("trace", false, "show every intermediate rewriting step")
	algName := flag.String("alg", "sc", "algorithm of the physical phase: nl, sc, twig, auto, stream")
	file := flag.String("file", "", "XML document to evaluate the -alg auto cost model against")
	dir := flag.String("dir", "", "directory of *.xml files: render the -alg auto choice per member")
	timeout := flag.Duration("timeout", 0, "abort the document-annotated explain after this wall-clock time (the act= columns evaluate the query; 0: no limit)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xqplan [-trace] [-alg nl|sc|twig|auto] [-file doc.xml | -dir corpus/] <query>")
		os.Exit(2)
	}
	alg, err := xqtp.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	if *trace {
		_, tr, err := xqtp.PrepareTraced(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr)
		return
	}
	q, err := xqtp.Prepare(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Println(q.Explain())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var doc *xqtp.Document
	if *file != "" {
		doc, err = loadFile(*file)
		if err != nil {
			fatal(err)
		}
	}
	if alg != xqtp.Staircase || doc != nil {
		// Explain's physical phase shows the Staircase plan; render the
		// requested algorithm's phase (annotated when a document is given)
		// in addition.
		phys, err := q.ExplainPhysicalCtx(ctx, alg, doc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nPhysical plan (%s):\n%s", alg, phys)
	}
	if *dir != "" {
		matches, err := filepath.Glob(filepath.Join(*dir, "*.xml"))
		if err != nil {
			fatal(err)
		}
		if len(matches) == 0 {
			fatal(fmt.Errorf("no *.xml files in %s", *dir))
		}
		sort.Strings(matches)
		corpus, err := xqtp.LoadCorpusFiles(matches, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nPer-member plans (%s, %d members):\n", alg, corpus.Len())
		for i, uri := range corpus.URIs() {
			phys, err := q.ExplainPhysicalCtx(ctx, alg, corpus.DocumentAt(i))
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s:\n%s", uri, phys)
		}
	}
	fmt.Printf("\nTupleTreePattern operators: %d\n", q.TreePatterns())
}

func loadFile(path string) (*xqtp.Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := xqtp.LoadXML(f)
	if err != nil {
		return nil, err
	}
	doc.SetURI(path)
	return doc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xqplan:", err)
	os.Exit(1)
}
