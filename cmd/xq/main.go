// Command xq evaluates an XQuery expression against an XML document — or a
// whole collection of them — using the tree-pattern compilation pipeline.
//
// Usage:
//
//	xq -query '$d//person[emailaddress]/name' -file doc.xml [-alg nl|sc|twig|auto] [-serialize]
//	xq -query '$d//person/name' -file doc.xml -alg auto -explain   # physical plan + cost-model choice
//	xq -query '$d//item/name' -file big.xml -timeout 2s -limit 100 # bounded run: wall clock + row budget
//	echo '<a><b/></a>' | xq -query '$d/a/b'
//
// Collections: naming several inputs (positional files, repeated use of the
// same pattern via the shell, or -dir with a directory of *.xml) loads them
// as one corpus in argument order. Root-bound queries fan out across the
// members; fn:collection() sees every member and fn:doc($uri) resolves the
// input paths:
//
//	xq -query 'fn:collection()//person/name' a.xml b.xml c.xml
//	xq -query '$d//item/name' -dir corpus/ -workers 8 -with-uri
//
// Snapshots: -save-snapshot serializes the loaded inputs (one document or a
// whole corpus) in the columnar binary snapshot format; -snapshot reads one
// back, skipping parsing and index building. A snapshot named by path is
// memory-mapped: members page in as the query touches them, so corpora
// larger than RAM are queryable and the open cost is independent of corpus
// size. -query may be omitted when converting:
//
//	xq -dir corpus/ -save-snapshot corpus.snap
//	xq -snapshot -query 'fn:collection()//person/name' corpus.snap
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"xqtp"
)

func main() {
	var (
		query     = flag.String("query", "", "XQuery expression (required unless -save-snapshot converts)")
		file      = flag.String("file", "", "XML input file (default: stdin; positional arguments add more)")
		dir       = flag.String("dir", "", "load every *.xml file of a directory (sorted) into the collection")
		workers   = flag.Int("workers", runtime.NumCPU(), "ingest and query parallelism for collections")
		withURI   = flag.Bool("with-uri", false, "prefix every result line with the URI of the document holding it")
		algName   = flag.String("alg", "sc", "tree-pattern algorithm: nl, sc, twig, auto, stream")
		snapshot  = flag.Bool("snapshot", false, "input is a binary corpus snapshot (see -save-snapshot, xmlgen -format snapshot)")
		saveSnap  = flag.String("save-snapshot", "", "write the loaded input as a binary corpus snapshot to this path")
		serialize = flag.Bool("serialize", false, "serialize node results as XML")
		noTP      = flag.Bool("no-tree-patterns", false, "disable tree-pattern detection (standard engine)")
		explain   = flag.Bool("explain", false, "print the physical plan (with the per-pattern cost-model choice under -alg auto) before the results")
		timeout   = flag.Duration("timeout", 0, "abort the query after this wall-clock time (0: no limit)")
		limit     = flag.Int64("limit", 0, "stop after this many result items, in document order (0: no limit)")
	)
	flag.Parse()
	if *query == "" && *saveSnap == "" {
		fmt.Fprintln(os.Stderr, "xq: -query is required")
		flag.Usage()
		os.Exit(2)
	}

	paths, err := inputPaths(*file, *dir, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *snapshot && len(paths) > 1 {
		fatal(fmt.Errorf("-snapshot supports a single input (a snapshot already holds a whole corpus)"))
	}

	// Load the input: a corpus snapshot, a multi-file corpus, or one document.
	// A one-member corpus (including single-document snapshots) runs through
	// the document path so -explain sees the document context.
	var (
		corpus *xqtp.Corpus
		doc    *xqtp.Document
		uri    string
	)
	switch {
	case *snapshot:
		corpus, err = loadSnapshotInput(paths)
	case len(paths) > 1:
		corpus, err = xqtp.LoadCorpusFiles(paths, *workers)
	default:
		doc, uri, err = loadSingle(paths)
	}
	if err != nil {
		fatal(err)
	}
	if corpus != nil {
		// A file snapshot is memory-mapped (pages fault in per query);
		// release the mapping on the way out.
		defer corpus.Close()
	}
	if corpus != nil && corpus.Len() == 1 {
		doc = corpus.DocumentAt(0)
		uri = corpus.URIs()[0]
	}

	if *saveSnap != "" {
		if err := writeSnapshotFile(*saveSnap, corpus, doc); err != nil {
			fatal(err)
		}
		if *query == "" {
			return
		}
	}

	alg, err := xqtp.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	opts := xqtp.DefaultOptions
	opts.TreePatterns = !*noTP
	q, err := xqtp.PrepareCachedWithOptions(*query, opts)
	if err != nil {
		fatal(err)
	}

	print := func(uri string, it xqtp.Item) {
		var text string
		if *serialize {
			text = xqtp.SerializeItem(it)
		} else {
			text = xqtp.ItemString(it)
		}
		if *withURI {
			fmt.Printf("%s\t%s\n", uri, text)
		} else {
			fmt.Println(text)
		}
	}

	runOpts := xqtp.RunOptions{Workers: *workers, Timeout: *timeout, MaxRows: *limit}

	if doc == nil {
		if *explain {
			phys, err := q.ExplainPhysical(alg, nil)
			if err != nil {
				fatal(err)
			}
			fmt.Print(phys)
		}
		items, _, err := corpus.RunWith(context.Background(), q, alg, runOpts)
		if err != nil && !limitReached(err, *limit) {
			fatal(err)
		}
		for _, it := range items {
			uri, _ := corpus.URIOf(it)
			print(uri, it)
		}
		return
	}

	if *explain {
		phys, err := q.ExplainPhysical(alg, doc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(phys)
	}
	items, _, err := q.RunWith(context.Background(), doc, alg, runOpts)
	if err != nil && !limitReached(err, *limit) {
		fatal(err)
	}
	for _, it := range items {
		print(uri, it)
	}
}

// limitReached reports whether err is the expected budget stop of an
// explicit -limit (printing the collected prefix is then the point, not a
// failure).
func limitReached(err error, limit int64) bool {
	return limit > 0 && errors.Is(err, xqtp.ErrBudgetExceeded)
}

// inputPaths merges the -file flag, positional arguments, and -dir scan into
// one ordered path list (empty: read stdin).
func inputPaths(file, dir string, args []string) ([]string, error) {
	var paths []string
	if file != "" {
		paths = append(paths, file)
	}
	paths = append(paths, args...)
	if dir != "" {
		matches, err := filepath.Glob(filepath.Join(dir, "*.xml"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("no *.xml files in %s", dir)
		}
		sort.Strings(matches)
		paths = append(paths, matches...)
	}
	return paths, nil
}

// loadSnapshotInput opens a corpus snapshot from the named file or stdin.
func loadSnapshotInput(paths []string) (*xqtp.Corpus, error) {
	if len(paths) == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return xqtp.OpenCorpusSnapshot(data)
	}
	return xqtp.OpenCorpusFile(paths[0])
}

// loadSingle loads the one-document case: a named file or stdin.
func loadSingle(paths []string) (*xqtp.Document, string, error) {
	if len(paths) == 0 {
		doc, err := xqtp.LoadXML(os.Stdin)
		return doc, "(stdin)", err
	}
	f, err := os.Open(paths[0])
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	doc, err := xqtp.LoadXML(f)
	if err != nil {
		return nil, "", err
	}
	doc.SetURI(paths[0])
	return doc, paths[0], nil
}

// writeSnapshotFile saves the loaded input — corpus or single document — as
// a snapshot at path.
func writeSnapshotFile(path string, corpus *xqtp.Corpus, doc *xqtp.Document) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if corpus != nil {
		err = corpus.SaveSnapshot(f)
	} else {
		err = doc.SaveSnapshot(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xq:", err)
	os.Exit(1)
}
