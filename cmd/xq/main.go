// Command xq evaluates an XQuery expression against an XML document using
// the tree-pattern compilation pipeline.
//
// Usage:
//
//	xq -query '$d//person[emailaddress]/name' -file doc.xml [-alg nl|sc|twig|auto] [-serialize]
//	xq -query '$d//person/name' -file doc.xml -alg auto -explain   # physical plan + cost-model choice
//	echo '<a><b/></a>' | xq -query '$d/a/b'
package main

import (
	"flag"
	"fmt"
	"os"

	"xqtp"
)

func main() {
	var (
		query     = flag.String("query", "", "XQuery expression (required)")
		file      = flag.String("file", "", "XML input file (default: stdin)")
		algName   = flag.String("alg", "sc", "tree-pattern algorithm: nl, sc, twig, auto, stream")
		snapshot  = flag.Bool("snapshot", false, "input is a binary snapshot (see xmlgen -format snapshot)")
		serialize = flag.Bool("serialize", false, "serialize node results as XML")
		noTP      = flag.Bool("no-tree-patterns", false, "disable tree-pattern detection (standard engine)")
		explain   = flag.Bool("explain", false, "print the physical plan (with the per-pattern cost-model choice under -alg auto) before the results")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "xq: -query is required")
		flag.Usage()
		os.Exit(2)
	}
	alg, err := xqtp.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}

	load := xqtp.LoadXML
	if *snapshot {
		load = xqtp.LoadSnapshot
	}
	var doc *xqtp.Document
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		doc, err = load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		doc, err = load(os.Stdin)
		if err != nil {
			fatal(err)
		}
	}

	opts := xqtp.DefaultOptions
	opts.TreePatterns = !*noTP
	q, err := xqtp.PrepareCachedWithOptions(*query, opts)
	if err != nil {
		fatal(err)
	}
	if *explain {
		phys, err := q.ExplainPhysical(alg, doc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(phys)
	}
	items, err := q.Run(doc, alg)
	if err != nil {
		fatal(err)
	}
	for _, it := range items {
		if *serialize {
			fmt.Println(xqtp.SerializeItem(it))
		} else {
			fmt.Println(xqtp.ItemString(it))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xq:", err)
	os.Exit(1)
}
