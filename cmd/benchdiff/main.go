// Command benchdiff compares two benchmark reports produced by treebench
// (BENCH_table1.json or BENCH_serve.json) and prints the per-cell deltas.
// It exits non-zero on malformed input or when the two files hold different
// report kinds, so it can gate CI and Makefile comparisons.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -gate-ns 2 -gate-algs SC,TJ OLD.json NEW.json   # fail if the
//	    median ns/op ratio over the named table1 algorithms regressed > 2%
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"xqtp"
)

// report is the union of the treebench report shapes; the populated slice
// identifies the kind.
type report struct {
	Cells           []xqtp.Table1Cell     `json:"cells"`
	Results         []xqtp.ServeResult    `json:"results"`
	ServeCells      []xqtp.HTTPServeCell  `json:"serve_cells"`
	IngestCells     []xqtp.IngestCell     `json:"ingest_cells"`
	CollectionCells []xqtp.CollectionCell `json:"collection_cells"`
	OptimizerCells  []xqtp.OptimizerCell  `json:"optimizer_cells"`
	SnapshotCells   []xqtp.SnapshotCell   `json:"snapshot_cells"`
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Cells) == 0 && len(r.Results) == 0 && len(r.ServeCells) == 0 &&
		len(r.IngestCells) == 0 && len(r.CollectionCells) == 0 &&
		len(r.OptimizerCells) == 0 && len(r.SnapshotCells) == 0 {
		return r, fmt.Errorf("%s: no cells or results", path)
	}
	return r, nil
}

func pct(old, new float64) string {
	if old == 0 {
		return "    n/a"
	}
	return fmt.Sprintf("%+6.1f%%", (new-old)/old*100)
}

func diffTable1(old, new []xqtp.Table1Cell) {
	type key struct {
		query, alg string
		bytes      int
	}
	prev := make(map[key]xqtp.Table1Cell, len(old))
	for _, c := range old {
		prev[key{c.Query, c.Algorithm, c.DocumentBytes}] = c
	}
	fmt.Printf("%-6s %-5s %-10s %22s %22s %20s\n",
		"query", "alg", "doc", "ns/op old→new", "B/op old→new", "allocs old→new")
	for _, c := range new {
		o, ok := prev[key{c.Query, c.Algorithm, c.DocumentBytes}]
		if !ok {
			fmt.Printf("%-6s %-5s %-10.1fMB  (new cell)\n", c.Query, c.Algorithm, float64(c.DocumentBytes)/1e6)
			continue
		}
		fmt.Printf("%-6s %-5s %-10s %9.0f→%-9.0f %s %8d→%-8d %s %6d→%-6d %s\n",
			c.Query, c.Algorithm, fmt.Sprintf("%.1fMB", float64(c.DocumentBytes)/1e6),
			o.NsPerOp, c.NsPerOp, pct(o.NsPerOp, c.NsPerOp),
			o.BytesPerOp, c.BytesPerOp, pct(float64(o.BytesPerOp), float64(c.BytesPerOp)),
			o.AllocsPerOp, c.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(c.AllocsPerOp)))
	}
}

func diffServe(old, new []xqtp.ServeResult) {
	type key struct {
		alg   string
		procs int
	}
	prev := make(map[key]xqtp.ServeResult, len(old))
	for _, r := range old {
		prev[key{r.Algorithm, r.Procs}] = r
	}
	fmt.Printf("%-6s %-6s %22s %22s %20s\n",
		"alg", "procs", "qps old→new", "B/op old→new", "allocs old→new")
	for _, r := range new {
		o, ok := prev[key{r.Algorithm, r.Procs}]
		if !ok {
			fmt.Printf("%-6s %-6d (new row)\n", r.Algorithm, r.Procs)
			continue
		}
		fmt.Printf("%-6s %-6d %9.0f→%-9.0f %s %8d→%-8d %s %6d→%-6d %s\n",
			r.Algorithm, r.Procs,
			o.QPS, r.QPS, pct(o.QPS, r.QPS),
			o.BytesPerOp, r.BytesPerOp, pct(float64(o.BytesPerOp), float64(r.BytesPerOp)),
			o.AllocsPerOp, r.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(r.AllocsPerOp)))
	}
}

// diffServeHTTP compares the network-tier rows of two serve reports: QPS,
// tail latency, and the shed count (which should stay zero — the load
// generator sizes admission to its client count).
func diffServeHTTP(old, new []xqtp.HTTPServeCell) {
	type key struct {
		alg     string
		clients int
		cache   string
	}
	prev := make(map[key]xqtp.HTTPServeCell, len(old))
	for _, c := range old {
		prev[key{c.Algorithm, c.Clients, c.ResultCache}] = c
	}
	fmt.Printf("\nHTTP serving tier (serve_cells)\n")
	fmt.Printf("%-6s %-8s %-6s %22s %22s %22s %12s\n",
		"alg", "clients", "cache", "qps old→new", "p50ms old→new", "p99ms old→new", "shed old→new")
	for _, c := range new {
		o, ok := prev[key{c.Algorithm, c.Clients, c.ResultCache}]
		if !ok {
			fmt.Printf("%-6s %-8d %-6s (new cell)\n", c.Algorithm, c.Clients, c.ResultCache)
			continue
		}
		fmt.Printf("%-6s %-8d %-6s %9.0f→%-9.0f %s %8.2f→%-8.2f %s %8.2f→%-8.2f %s %4d→%-4d\n",
			c.Algorithm, c.Clients, c.ResultCache,
			o.QPS, c.QPS, pct(o.QPS, c.QPS),
			o.P50Ms, c.P50Ms, pct(o.P50Ms, c.P50Ms),
			o.P99Ms, c.P99Ms, pct(o.P99Ms, c.P99Ms),
			o.Shed, c.Shed)
	}
}

func diffIngest(old, new []xqtp.IngestCell) {
	type key struct {
		doc, parser string
	}
	prev := make(map[key]xqtp.IngestCell, len(old))
	for _, c := range old {
		prev[key{c.Document, c.Parser}] = c
	}
	fmt.Printf("%-16s %-6s %22s %22s %20s\n",
		"document", "parser", "MB/s old→new", "B/op old→new", "allocs old→new")
	for _, c := range new {
		o, ok := prev[key{c.Document, c.Parser}]
		if !ok {
			fmt.Printf("%-16s %-6s (new cell)\n", c.Document, c.Parser)
			continue
		}
		fmt.Printf("%-16s %-6s %9.1f→%-9.1f %s %8d→%-8d %s %6d→%-6d %s\n",
			c.Document, c.Parser,
			o.MBPerSec, c.MBPerSec, pct(o.MBPerSec, c.MBPerSec),
			o.BytesPerOp, c.BytesPerOp, pct(float64(o.BytesPerOp), float64(c.BytesPerOp)),
			o.AllocsPerOp, c.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(c.AllocsPerOp)))
	}
}

func diffCollection(old, new []xqtp.CollectionCell) {
	type key struct {
		phase, query string
		docs, work   int
	}
	prev := make(map[key]xqtp.CollectionCell, len(old))
	for _, c := range old {
		prev[key{c.Phase, c.Query, c.Docs, c.Workers}] = c
	}
	fmt.Printf("%-14s %-16s %-6s %-7s %24s %22s %20s\n",
		"phase", "query", "docs", "workers", "MB/s|qps old→new", "B/op old→new", "allocs old→new")
	for _, c := range new {
		o, ok := prev[key{c.Phase, c.Query, c.Docs, c.Workers}]
		if !ok {
			fmt.Printf("%-14s %-16s %-6d %-7d (new cell)\n", c.Phase, c.Query, c.Docs, c.Workers)
			continue
		}
		// The throughput column is MB/s for the ingest and snapshot-save/load
		// rows (all normalized to the corpus's XML size, so they compare
		// against each other), QPS for query rows.
		oRate, nRate := o.MBPerSec, c.MBPerSec
		if c.Phase == "query" {
			oRate, nRate = o.QPS, c.QPS
		}
		fmt.Printf("%-14s %-16s %-6d %-7d %10.1f→%-10.1f %s %8d→%-8d %s %6d→%-6d %s\n",
			c.Phase, c.Query, c.Docs, c.Workers,
			oRate, nRate, pct(oRate, nRate),
			o.BytesPerOp, c.BytesPerOp, pct(float64(o.BytesPerOp), float64(c.BytesPerOp)),
			o.AllocsPerOp, c.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(c.AllocsPerOp)))
	}
}

func diffOptimizer(old, new []xqtp.OptimizerCell) {
	type key struct {
		kind, query, doc, step string
		members                int
	}
	prev := make(map[key]xqtp.OptimizerCell, len(old))
	for _, c := range old {
		prev[key{c.Kind, c.Query, c.Doc, c.Step, c.Members}] = c
	}
	fmt.Printf("%-6s %-16s %-40s %20s %18s %20s\n",
		"query", "doc", "step", "q-err old→new", "act old→new", "skipped old→new")
	for _, c := range new {
		o, ok := prev[key{c.Kind, c.Query, c.Doc, c.Step, c.Members}]
		if !ok {
			fmt.Printf("%-6s %-16s %-40s (new cell)\n", c.Query, c.Doc, c.Step)
			continue
		}
		if c.Kind == "skip" {
			fmt.Printf("%-6s %-16s %-40s %20s %18s %8d→%-8d %s\n",
				c.Query, fmt.Sprintf("corpus-%d", c.Members), "", "", "",
				o.Skipped, c.Skipped, pct(float64(o.Skipped), float64(c.Skipped)))
			continue
		}
		fmt.Printf("%-6s %-16s %-40s %8.2f→%-8.2f %s %6d→%-6d %s\n",
			c.Query, c.Doc, c.Step,
			o.QError, c.QError, pct(o.QError, c.QError),
			o.Act, c.Act, pct(float64(o.Act), float64(c.Act)))
	}
}

func diffSnapshot(old, new []xqtp.SnapshotCell) {
	type key struct {
		phase, mode string
		docs        int
	}
	prev := make(map[key]xqtp.SnapshotCell, len(old))
	for _, c := range old {
		prev[key{c.Phase, c.Mode, c.Docs}] = c
	}
	fmt.Printf("%-12s %-8s %-6s %24s %26s %20s\n",
		"phase", "mode", "docs", "ms/op old→new", "resident old→new", "allocs old→new")
	for _, c := range new {
		o, ok := prev[key{c.Phase, c.Mode, c.Docs}]
		if !ok {
			fmt.Printf("%-12s %-8s %-6d (new cell)\n", c.Phase, c.Mode, c.Docs)
			continue
		}
		fmt.Printf("%-12s %-8s %-6d %8.3f→%-8.3f %s %10d→%-10d %s %6d→%-6d %s\n",
			c.Phase, c.Mode, c.Docs,
			o.NsPerOp/1e6, c.NsPerOp/1e6, pct(o.NsPerOp, c.NsPerOp),
			o.ResidentBytes, c.ResidentBytes, pct(float64(o.ResidentBytes), float64(c.ResidentBytes)),
			o.AllocsPerOp, c.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(c.AllocsPerOp)))
	}
}

// gateTable1 computes the median new/old ns/op ratio over the table1 cells
// whose algorithm is in algs (empty: every cell), and fails when the median
// regressed by more than pct percent. The median — not the mean or the max —
// keeps one noisy cell from failing a run while still catching a systematic
// slowdown across the matrix.
func gateTable1(old, new []xqtp.Table1Cell, pct float64, algs map[string]bool) error {
	type key struct {
		query, alg string
		bytes      int
	}
	prev := make(map[key]xqtp.Table1Cell, len(old))
	for _, c := range old {
		prev[key{c.Query, c.Algorithm, c.DocumentBytes}] = c
	}
	var ratios []float64
	for _, c := range new {
		if len(algs) > 0 && !algs[strings.ToUpper(c.Algorithm)] {
			continue
		}
		o, ok := prev[key{c.Query, c.Algorithm, c.DocumentBytes}]
		if !ok || o.NsPerOp == 0 {
			continue
		}
		ratios = append(ratios, c.NsPerOp/o.NsPerOp)
	}
	if len(ratios) == 0 {
		return fmt.Errorf("gate: no comparable table1 cells for the selected algorithms")
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	fmt.Printf("\ngate: median ns/op ratio %.4f over %d cells (threshold %.4f)\n",
		median, len(ratios), 1+pct/100)
	if median > 1+pct/100 {
		return fmt.Errorf("gate: median ns/op regressed %.1f%% (> %.1f%% allowed)",
			(median-1)*100, pct)
	}
	return nil
}

func main() {
	gateNs := flag.Float64("gate-ns", 0, "fail when the median table1 ns/op regression exceeds this percentage (0: report only)")
	gateAlgs := flag.String("gate-algs", "", "comma-separated algorithm labels the gate considers (e.g. SC,TJ; empty: all)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate-ns PCT [-gate-algs SC,TJ]] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	algs := map[string]bool{}
	for _, a := range strings.Split(*gateAlgs, ",") {
		if a = strings.ToUpper(strings.TrimSpace(a)); a != "" {
			algs[a] = true
		}
	}
	oldR, err := load(flag.Arg(0))
	if err == nil {
		var newR report
		if newR, err = load(flag.Arg(1)); err == nil {
			switch {
			case len(oldR.Cells) > 0 && len(newR.Cells) > 0:
				diffTable1(oldR.Cells, newR.Cells)
				if *gateNs > 0 {
					err = gateTable1(oldR.Cells, newR.Cells, *gateNs, algs)
				}
			case len(oldR.Results) > 0 && len(newR.Results) > 0:
				diffServe(oldR.Results, newR.Results)
				if len(oldR.ServeCells) > 0 || len(newR.ServeCells) > 0 {
					diffServeHTTP(oldR.ServeCells, newR.ServeCells)
				}
			case len(oldR.ServeCells) > 0 && len(newR.ServeCells) > 0:
				diffServeHTTP(oldR.ServeCells, newR.ServeCells)
			case len(oldR.IngestCells) > 0 && len(newR.IngestCells) > 0:
				diffIngest(oldR.IngestCells, newR.IngestCells)
			case len(oldR.CollectionCells) > 0 && len(newR.CollectionCells) > 0:
				diffCollection(oldR.CollectionCells, newR.CollectionCells)
			case len(oldR.OptimizerCells) > 0 && len(newR.OptimizerCells) > 0:
				diffOptimizer(oldR.OptimizerCells, newR.OptimizerCells)
			case len(oldR.SnapshotCells) > 0 && len(newR.SnapshotCells) > 0:
				diffSnapshot(oldR.SnapshotCells, newR.SnapshotCells)
			default:
				err = fmt.Errorf("reports are of different kinds")
			}
			if err == nil && *gateNs > 0 && len(oldR.Cells) == 0 {
				err = fmt.Errorf("-gate-ns only applies to table1 reports")
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
