package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildXqd compiles the xqd binary once per test binary.
func buildXqd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xqd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startXqd launches the daemon on an ephemeral port and waits for its
// listening line, returning the process and base URL.
func startXqd(t *testing.T, bin string, extraArgs ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	corpusPath := filepath.Join(t.TempDir(), "doc.xml")
	xml := `<site><people>` +
		strings.Repeat(`<person><name>n</name><emailaddress>e</emailaddress></person>`, 50) +
		`</people></site>`
	if err := os.WriteFile(corpusPath, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}

	args := append([]string{"-addr", "127.0.0.1:0", "-corpus", "main=" + corpusPath}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Scan stdout for the listening line; keep draining afterwards so the
	// child never blocks on a full pipe.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default:
			}
		}
		close(lines)
	}()
	var addr string
	deadline := time.After(10 * time.Second)
	for addr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				cmd.Wait()
				t.Fatalf("xqd exited before listening; stderr: %s", stderr.String())
			}
			if rest, found := strings.CutPrefix(line, "xqd: listening on "); found {
				addr = strings.TrimSpace(rest)
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("xqd never printed its listening line")
		}
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd, "http://" + addr, &stderr
}

// SIGTERM during streaming requests: the daemon drains the in-flight
// responses, closes its listener, and exits 0.
func TestXqdSIGTERMGracefulExit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildXqd(t)
	cmd, base, stderr := startXqd(t, bin, "-drain", "5s")

	// Health first, so the mux is known to answer.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// K concurrent streaming requests; SIGTERM lands while they run.
	const K = 3
	var wg sync.WaitGroup
	bodies := make([][]byte, K)
	reqErrs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := strings.NewReader(`{"query": "$input//person[emailaddress]/name"}`)
			resp, err := http.Post(base+"/query", "application/json", body)
			if err != nil {
				reqErrs[i] = err
				return
			}
			defer resp.Body.Close()
			bodies[i], reqErrs[i] = io.ReadAll(resp.Body)
		}(i)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < K; i++ {
		if reqErrs[i] != nil {
			// Refused because the listener already closed — a valid drain
			// outcome for a request that raced the signal.
			continue
		}
		if !bytes.Contains(bodies[i], []byte(`"summary"`)) {
			t.Errorf("request %d response has no summary: %q", i, bodies[i])
		}
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("xqd exited non-zero: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("xqd did not exit after SIGTERM")
	}

	// The port is released.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("xqd still serving after exit")
	}
}

// End-to-end over the binary: query, metrics, corpora.
func TestXqdServesQueryAndMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildXqd(t)
	cmd, base, stderr := startXqd(t, bin)

	body := strings.NewReader(`{"query": "$input//person/name", "limit": 5}`)
	resp, err := http.Post(base+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, data)
	}
	if n := bytes.Count(bytes.TrimSpace(data), []byte("\n")); n != 5 {
		t.Fatalf("expected 5 item lines + summary, got %d newlines in %q", n, data)
	}
	if !bytes.Contains(data, []byte(`"status":"limit-reached"`)) {
		t.Fatalf("summary lacks limit-reached: %q", data)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`xqd_requests_total{outcome="limit_reached"} 1`,
		"xqd_request_seconds_bucket",
		"xqd_result_cache_entries",
	} {
		if !bytes.Contains(mdata, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, mdata)
		}
	}

	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("exit after SIGTERM: %v\nstderr: %s", err, stderr.String())
	}
}
