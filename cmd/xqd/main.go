// Command xqd serves tree-pattern queries over HTTP: a long-lived process
// that loads one or more corpora (binary snapshots, directories of XML, or
// single documents) and evaluates POST /query requests from cached plans,
// streaming results as NDJSON or XML.
//
// Usage:
//
//	xqd -addr :8080 -corpus main=corpus.snap
//	xqd -corpus docs=xmldir/ -corpus aux=one.xml -max-concurrent 8
//
// Each -corpus flag is name=path: a .snap/.snapshot file is memory-mapped
// (OpenCorpusFile — O(open) cold start, pages fault in per query), a
// directory loads every *.xml inside (sorted), and anything else is ingested
// as a single XML document. Endpoints:
//
//	POST /query    {"query": "...", "corpus": "main", "alg": "auto",
//	                "limit": 100, "timeout": "2s", "format": "ndjson"}
//	POST /extend   {"corpus": "main", "documents": [{"uri": "u", "xml": "<a/>"}]}
//	GET  /corpora  registered corpora with member counts and epochs
//	GET  /metrics  Prometheus text format
//	GET  /healthz  liveness
//
// SIGTERM/SIGINT drain gracefully: the listener closes, streaming requests
// finish, and whatever outlives -drain is canceled through the engine's
// cancellation protocol. The process exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"xqtp"
	"xqtp/internal/server"
)

// corpusFlag collects repeated -corpus name=path arguments.
type corpusFlag []string

func (c *corpusFlag) String() string { return strings.Join(*c, ",") }
func (c *corpusFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	var corpora corpusFlag
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("ingest-workers", 0, "corpus ingest parallelism (<= 0: one per CPU)")
		maxConcurrent = flag.Int("max-concurrent", 0, "queries evaluating at once (<= 0: one per CPU)")
		maxQueue      = flag.Int("max-queue", 0, "requests allowed to wait for a slot (0: 4x max-concurrent, -1: none)")
		queueWait     = flag.Duration("queue-wait", 2*time.Second, "longest a queued request waits before shedding")
		maxBody       = flag.Int64("max-body", 1<<20, "request body size cap in bytes")
		defTimeout    = flag.Duration("default-timeout", 30*time.Second, "per-request timeout when the request names none")
		maxTimeout    = flag.Duration("max-timeout", 2*time.Minute, "cap on the timeout a request may ask for")
		maxRows       = flag.Int64("max-rows", 0, "server-side cap on result rows per request (0: none)")
		maxBytes      = flag.Int64("max-bytes", 0, "server-side cap on estimated result bytes per request (0: none)")
		cacheEntries  = flag.Int("cache-entries", 1024, "result cache entry bound (0: default)")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "result cache total byte bound (0: default)")
		noCache       = flag.Bool("no-result-cache", false, "disable the result cache")
		planCache     = flag.Int("plan-cache", 0, "compiled-query cache size (0: default)")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Var(&corpora, "corpus", "name=path to serve (repeatable); path: snapshot file, directory of *.xml, or one XML document")
	flag.Parse()

	if len(corpora) == 0 {
		fmt.Fprintln(os.Stderr, "xqd: no corpora; pass at least one -corpus name=path")
		return 2
	}

	s := server.New(server.Config{
		MaxConcurrent:      *maxConcurrent,
		MaxQueue:           *maxQueue,
		QueueWait:          *queueWait,
		MaxBodyBytes:       *maxBody,
		DefaultTimeout:     *defTimeout,
		MaxTimeout:         *maxTimeout,
		MaxRows:            *maxRows,
		MaxBytes:           *maxBytes,
		ResultCacheEntries: *cacheEntries,
		ResultCacheBytes:   *cacheBytes,
		NoResultCache:      *noCache,
		PlanCacheSize:      *planCache,
	})

	for _, spec := range corpora {
		name, path, _ := strings.Cut(spec, "=")
		c, desc, err := loadCorpus(path, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xqd: corpus %s: %v\n", name, err)
			return 1
		}
		defer c.Close()
		s.AddCorpus(name, c)
		fmt.Printf("xqd: corpus %s: %s (%d members, %d nodes)\n", name, desc, c.Len(), c.NumNodes())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqd:", err)
		return 1
	}
	fmt.Printf("xqd: listening on %s\n", ln.Addr())

	// A signal starts the drain; the listener closes at once, in-flight
	// streams finish, and stragglers are canceled after the drain deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Println("xqd: shutting down, draining in-flight requests")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		shutdownDone <- s.Shutdown(drainCtx)
	}()

	err = s.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "xqd:", err)
		return 1
	}
	if err := <-shutdownDone; err != nil {
		fmt.Fprintln(os.Stderr, "xqd: shutdown:", err)
		return 1
	}
	fmt.Println("xqd: drained, exiting")
	return 0
}

// loadCorpus opens one -corpus path by shape: snapshot file (memory-mapped),
// directory of *.xml, or a single XML document.
func loadCorpus(path string, workers int) (*xqtp.Corpus, string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, "", err
	}
	if fi.IsDir() {
		glob, err := filepath.Glob(filepath.Join(path, "*.xml"))
		if err != nil {
			return nil, "", err
		}
		if len(glob) == 0 {
			return nil, "", fmt.Errorf("no *.xml files in %s", path)
		}
		sort.Strings(glob)
		c, err := xqtp.LoadCorpusFiles(glob, workers)
		return c, fmt.Sprintf("directory %s", path), err
	}
	if ext := strings.ToLower(filepath.Ext(path)); ext == ".snap" || ext == ".snapshot" {
		c, err := xqtp.OpenCorpusFile(path)
		return c, fmt.Sprintf("snapshot %s (mmap)", path), err
	}
	c, err := xqtp.LoadCorpusFiles([]string{path}, 1)
	return c, fmt.Sprintf("document %s", path), err
}
