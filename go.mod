module xqtp

go 1.22
