package xqtp

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"xqtp/internal/collection"
	"xqtp/internal/execctx"
	"xqtp/internal/physical"
	"xqtp/internal/xdm"
)

// ErrClosed reports use of a corpus or document after Close.
var ErrClosed = collection.ErrClosed

// CorpusSource is one document for corpus ingest: its URI and, optionally,
// its content. Nil Data means the URI is a file path to read during ingest.
type CorpusSource struct {
	URI  string
	Data []byte
}

// Corpus is an immutable collection of documents behind one query surface:
// ingest parses the members concurrently, and Run fans a compiled query out
// across them, merging per-document results in corpus order. A Corpus is
// safe for concurrent Run calls; Extend returns a grown snapshot without
// disturbing the original.
type Corpus struct {
	c *collection.Corpus
}

// LoadCorpusFiles ingests the given files on a bounded worker pool (workers
// <= 0 means one worker per file). The corpus order is the argument order,
// whatever the pool's scheduling.
func LoadCorpusFiles(paths []string, workers int) (*Corpus, error) {
	c, err := collection.Ingest(collection.FileSources(paths), workers)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// LoadCorpus ingests in-memory or file-backed sources on a bounded worker
// pool. As with LoadXMLBytes, the corpus takes ownership of the data slices.
func LoadCorpus(sources []CorpusSource, workers int) (*Corpus, error) {
	c, err := collection.Ingest(internalSources(sources), workers)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// Extend ingests additional sources and returns a new corpus with the
// existing members followed by the new ones. The receiver is unchanged, so
// queries running against it concurrently are unaffected.
func (c *Corpus) Extend(sources []CorpusSource, workers int) (*Corpus, error) {
	grown, err := c.c.Extend(internalSources(sources), workers)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: grown}, nil
}

// SaveSnapshot writes the corpus in the columnar binary snapshot format:
// every member's region columns, symbol table and tag-stream index, plus
// the corpus name table, serialized as they sit in memory. Reloading with
// OpenCorpusSnapshot skips parsing, index building and name interning
// entirely.
func (c *Corpus) SaveSnapshot(w io.Writer) error {
	return c.c.WriteSnapshot(w)
}

// OpenCorpusSnapshot loads a corpus written by SaveSnapshot. It takes
// ownership of data: the loaded members' strings and columns alias the
// buffer, so the caller must not modify it afterwards.
func OpenCorpusSnapshot(data []byte) (*Corpus, error) {
	c, err := collection.OpenSnapshot(data)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// OpenCorpusFile opens a corpus snapshot from a file by memory-mapping it:
// only the header, offset table and corpus name table are read at open, so
// the cost is O(open) regardless of corpus size, and member pages fault in
// as queries touch them — a corpus larger than RAM stays queryable. The
// corpus owns the mapping; call Close to release it. Setting the
// XQTP_SNAPSHOT_READALL environment variable (any non-empty value) forces
// the old read-everything path instead, which needs no Close.
func OpenCorpusFile(path string) (*Corpus, error) {
	if os.Getenv("XQTP_SNAPSHOT_READALL") != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return OpenCorpusSnapshot(data)
	}
	c, err := collection.OpenSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// Close poisons the corpus and releases its snapshot file mapping (if any).
// After Close every Run/Document entry point returns ErrClosed; so does a
// second Close. Closing while queries are in flight is a caller bug, exactly
// as with os.File. Close on an ingested (non-mapped) corpus only poisons it.
func (c *Corpus) Close() error { return c.c.Close() }

// Closed reports whether Close has been called.
func (c *Corpus) Closed() bool { return c.c.Closed() }

// Mapped reports whether the corpus is backed by a live file mapping (true
// only for OpenCorpusFile corpora on mmap-capable builds, before Close).
func (c *Corpus) Mapped() bool {
	m := c.c.Mapping()
	return m != nil && m.Mapped()
}

// SnapshotResident returns the number of bytes of the snapshot mapping
// currently resident in physical memory (ok=false when the corpus is not
// file-backed or the platform cannot report residency). This is the
// measurement behind the paging experiments: after a cold open it is a few
// pages; after a single-member query it is roughly that member's size.
func (c *Corpus) SnapshotResident() (int64, bool) {
	m := c.c.Mapping()
	if m == nil {
		return 0, false
	}
	return m.Resident()
}

func internalSources(sources []CorpusSource) []collection.Source {
	out := make([]collection.Source, len(sources))
	for i, s := range sources {
		out[i] = collection.Source{URI: s.URI, Data: s.Data}
	}
	return out
}

// Len returns the number of member documents.
func (c *Corpus) Len() int { return c.c.Len() }

// Epoch returns the corpus's extension epoch: 0 for a freshly ingested or
// snapshot-loaded corpus, and one more than the receiver for every Extend
// result. A result cache keyed by (query, corpus name, epoch) is therefore
// invalidated exactly when a server swaps in an extended corpus — the epoch
// is the cheap, monotonic stand-in for "same membership".
func (c *Corpus) Epoch() uint64 { return c.c.Epoch() }

// URIs returns the member URIs in corpus order.
func (c *Corpus) URIs() []string {
	out := make([]string, c.c.Len())
	for i, d := range c.c.Docs() {
		out[i] = d.URI
	}
	return out
}

// Document returns the member with the given URI as a standalone Document
// sharing the corpus's catalog (so its indexes are never rebuilt).
func (c *Corpus) Document(uri string) (*Document, bool) {
	d, ok := c.c.ByURI(uri)
	if !ok {
		return nil, false
	}
	return c.wrap(d), true
}

// DocumentAt returns member i (in corpus order) as a standalone Document.
func (c *Corpus) DocumentAt(i int) *Document {
	return c.wrap(c.c.Doc(i))
}

func (c *Corpus) wrap(d *collection.Doc) *Document {
	return &Document{
		tree:    d.Tree(),
		index:   d.Index,
		catalog: c.c.Catalog(),
		rootSeq: xdm.Singleton(d.Root()),
		uri:     d.URI,
		docs:    c.c,
	}
}

// NumNodes returns the total node count across members.
func (c *Corpus) NumNodes() int { return c.c.NumNodes() }

// SizeBytes returns the total serialized size of the members.
func (c *Corpus) SizeBytes() int { return c.c.SizeBytes() }

// Run evaluates the query against every member and returns the merged
// results in corpus order (which is cross-document document order). See
// RunParallel for the evaluation strategy; Run is its workers=1 form.
func (c *Corpus) Run(q *Query, alg Algorithm) (Sequence, error) {
	return c.RunParallel(q, alg, 1)
}

// RunParallel evaluates the query against the corpus with up to workers
// goroutines, in one of two shapes chosen by the plan itself:
//
// Root-bound plans (no fn:doc/fn:collection) fan out one evaluation per
// member — the context item and every free variable bound to the member's
// document node, exactly as Query.Run binds a single Document — and the
// per-document results merge in corpus order, so the output is byte-identical
// at any worker count. Members where some required step of the plan
// (physical.RequiredSteps over the conjunctive patterns) has an empty rank
// stream — the name absent entirely, or present only as the wrong node kind
// — are skipped without evaluation; the members that do run pick their
// algorithm per member through the cost model when alg is Auto.
//
// Plans that call fn:doc or fn:collection see the whole corpus at once: they
// evaluate once with the corpus bound as the document resolver, and workers
// instead caps the pattern operators' per-context-node parallelism (a
// fn:collection()-rooted pattern's context nodes are the member roots, so
// cross-document parallelism falls out of the existing fan-out). Both shapes
// reuse the query's plan and preparation caches, keyed per member document.
func (c *Corpus) RunParallel(q *Query, alg Algorithm, workers int) (Sequence, error) {
	seq, _, err := c.RunParallelStats(q, alg, workers)
	return seq, err
}

// RunStats is the member accounting of one RunParallelStats call.
type RunStats struct {
	Members int // corpus members
	Skipped int // members skipped by the emptiness proof, never evaluated
}

// RunParallelStats is RunParallel, additionally reporting how many members
// the count-based emptiness proof skipped.
func (c *Corpus) RunParallelStats(q *Query, alg Algorithm, workers int) (Sequence, RunStats, error) {
	var col execctx.Collector
	stats, err := c.runCore(nil, q, alg, workers, &col)
	if err != nil {
		return nil, stats, err
	}
	return col.Seq, stats, nil
}

// RunParallelCtx is RunParallel under a context: the fan-out stops admitting
// members and the kernels cut in-flight evaluations short once ctx is done,
// returning ErrCanceled. workers <= 0 means one worker per available CPU.
func (c *Corpus) RunParallelCtx(ctx context.Context, q *Query, alg Algorithm, workers int) (Sequence, error) {
	seq, _, err := c.RunWith(ctx, q, alg, RunOptions{Workers: workers})
	return seq, err
}

// RunWith evaluates the query against the corpus under a context with
// deadlines, budgets, and streaming delivery. Member results flow to
// opts.Sink in corpus order as the merge admits them (a nil Sink collects
// into the returned Sequence). Budgets are charged at the merge point, so a
// stopped run's delivered items are exactly the first rows of the full
// corpus-order result; in-flight member evaluations past the stop are cut
// short and discarded. opts.Workers <= 0 means one worker per available CPU.
func (c *Corpus) RunWith(ctx context.Context, q *Query, alg Algorithm, opts RunOptions) (Sequence, RunInfo, error) {
	ctx, cancel := opts.context(ctx)
	defer cancel()
	ec := execctx.From(ctx, opts.MaxRows, opts.MaxBytes)
	sink := opts.Sink
	var col *execctx.Collector
	if sink == nil {
		col = &execctx.Collector{}
		sink = col
	}
	stats, err := c.runCore(ec, q, alg, opts.Workers, sink)
	info := RunInfo{
		Rows:    ec.Rows(),
		Bytes:   ec.Bytes(),
		Members: stats.Members,
		Skipped: stats.Skipped,
	}
	var seq Sequence
	if col != nil {
		seq = col.Seq
	}
	return seq, info, err
}

// runCore is the single evaluation path behind every corpus run shape: it
// compiles the plan, picks the corpus-wide or fan-out strategy, and streams
// result items to sink under the execution context. Member evaluations run
// under a cancel-only view of ec — they observe the stop but never charge
// the budgets; the merge charges each delivered item in corpus order, so
// budget cutoffs land on the exact corpus-order prefix regardless of how
// the worker pool interleaved.
func (c *Corpus) runCore(ec *execctx.Ctx, q *Query, alg Algorithm, workers int, sink execctx.Sink) (RunStats, error) {
	workers = normalizeWorkers(workers)
	stats := RunStats{Members: c.c.Len()}
	p, err := q.physicalPlan(alg)
	if err != nil {
		return stats, err
	}
	if p.UsesDocAccess() {
		rt := &physical.Runtime{
			Catalog:  c.c.Catalog(),
			Preps:    q.preps,
			Parallel: workers,
			Docs:     c.c,
			EC:       ec,
		}
		return stats, p.RunSink(rt, sink)
	}
	var skip func(int) bool
	var skipped atomic.Int64
	if required := p.RequiredSteps(); len(required) > 0 {
		// Hoist the name-table lookups: one symbol column per required
		// step, then the per-member test is an array index plus a stream
		// length — no string hashing anywhere in the fan-out.
		nt := c.c.Names()
		cols := make([][]xdm.Sym, len(required))
		for k, r := range required {
			cols[k] = nt.SymColumn(r.Name)
		}
		docs := c.c.Docs()
		skip = func(i int) bool {
			ix := docs[i].Index
			for k, r := range required {
				col := cols[k]
				if col == nil || col[i] == xdm.NoSym {
					skipped.Add(1)
					return true
				}
				// StreamLen answers from the loaded index or, for a deferred
				// member, from its section directory — a definite count either
				// way, without paging in the member's data. ok=false means the
				// directory itself is unreadable: admit the member so its load
				// error surfaces as a query error instead of a silent skip.
				if n, ok := ix.StreamLen(col[i], r.Attr); ok && n == 0 {
					skipped.Add(1)
					return true
				}
			}
			// The member will run: hint the kernel to page its region in
			// ahead of the parse (no-op once loaded or unmapped).
			ix.Prefetch()
			return false
		}
	}
	memberEC := ec.CancelOnly()
	err = c.c.RunAllCtx(ec, workers, skip, func(d *collection.Doc) (Sequence, error) {
		// A deferred member parses and validates here, on the worker that
		// evaluates it; a corrupt member becomes this member's query error.
		if err := d.Ensure(); err != nil {
			return nil, err
		}
		rt := &physical.Runtime{
			Catalog: c.c.Catalog(),
			Preps:   q.preps,
			Docs:    c.c,
			Root:    xdm.Singleton(d.Root()),
			EC:      memberEC,
		}
		return p.Run(rt)
	}, func(seq Sequence) error {
		return execctx.Deliver(ec, sink, seq)
	})
	stats.Skipped = int(skipped.Load())
	return stats, err
}

// URIOf attributes a result item back to the member document holding it
// (ok=false for atomic items and nodes from outside the corpus).
func (c *Corpus) URIOf(it Item) (string, bool) {
	n, isNode := it.(*xdm.Node)
	if !isNode {
		return "", false
	}
	d, ok := c.c.ByTree(n.Doc)
	if !ok {
		return "", false
	}
	return d.URI, true
}

// RunURI evaluates the query against a single member, bound like Query.Run.
func (c *Corpus) RunURI(q *Query, alg Algorithm, uri string) (Sequence, error) {
	d, ok := c.Document(uri)
	if !ok {
		return nil, fmt.Errorf("corpus: no document %q", uri)
	}
	return q.Run(d, alg)
}
