//go:build !race

package xqtp

// raceEnabled scales the cancellation-latency assertions (see race_on_test.go).
const raceEnabled = false
