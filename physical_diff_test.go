package xqtp

import (
	"fmt"
	"sync"
	"testing"

	"xqtp/internal/xdm"
)

// physicalDiffCorpus is the full query corpus of the repository: the Fig. 1
// motivating queries, the Table 1 QE set, both forms of every Fig. 6 pair,
// the Fig. 4 path, a §5.3 positional chain, and the XMark catalog.
func physicalDiffCorpus() []PaperQuery {
	corpus := make([]PaperQuery, 0, 32)
	corpus = append(corpus, Figure1Queries...)
	corpus = append(corpus, QEQueries...)
	for _, pair := range Figure6Queries {
		corpus = append(corpus, PaperQuery{pair.Name + "-child", pair.Child})
		corpus = append(corpus, PaperQuery{pair.Name + "-desc", pair.Descendant})
	}
	corpus = append(corpus, PaperQuery{"Fig4", Fig4Query})
	corpus = append(corpus, PaperQuery{"Sec53-k3", Section53Query(3)})
	corpus = append(corpus, XMarkQueries...)
	return corpus
}

// sameItems requires item-for-item equality: identical node pointers for
// nodes, identical values for atomics.
func sameItems(a, b Sequence) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		an, aIsNode := a[i].(*xdm.Node)
		bn, bIsNode := b[i].(*xdm.Node)
		if aIsNode != bIsNode || (aIsNode && an != bn) || (!aIsNode && a[i] != b[i]) {
			return fmt.Errorf("item %d: %s vs %s", i, ItemString(a[i]), ItemString(b[i]))
		}
	}
	return nil
}

// The physical executor under every set-at-a-time algorithm and the cost
// based chooser matches the pointer-based nested-loop oracle item for item,
// on every corpus query over both document families.
func TestPhysicalDifferentialCorpus(t *testing.T) {
	docs := []struct {
		name string
		doc  *Document
	}{
		{"xmark", NewXMarkDocument(7, 120)},
		{"member", NewMemberDocument(7, 150_000)},
	}
	algs := []Algorithm{Staircase, Twig, Auto, Streaming}
	for _, pq := range physicalDiffCorpus() {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		for _, d := range docs {
			oracle, err := q.Run(d.doc, NestedLoop)
			if err != nil {
				t.Fatalf("%s/%s/NL: %v", pq.Name, d.name, err)
			}
			for _, alg := range algs {
				got, err := q.Run(d.doc, alg)
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", pq.Name, d.name, alg, err)
				}
				if err := sameItems(oracle, got); err != nil {
					t.Errorf("%s/%s/%v differs from NL oracle: %v", pq.Name, d.name, alg, err)
				}
			}
		}
	}
}

// One compiled physical plan (one Query, one memoized lowering per
// algorithm) is shared by many goroutines running concurrently; every run
// must match the sequential oracle. Run under -race this exercises the
// plan's concurrency contract: immutable operators, per-call frames, and
// the atomic per-operator prepared-join cache.
func TestPhysicalPlanConcurrentRuns(t *testing.T) {
	doc := NewXMarkDocument(11, 100)
	q := MustPrepare(`$input//person[emailaddress]/name`)
	oracle, err := q.Run(doc, NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	algs := []Algorithm{NestedLoop, Staircase, Twig, Auto}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		alg := algs[g%len(algs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				got, err := q.Run(doc, alg)
				if err != nil {
					errs <- fmt.Errorf("%v: %v", alg, err)
					return
				}
				if err := sameItems(oracle, got); err != nil {
					errs <- fmt.Errorf("%v: %v", alg, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// The physical explain surfaces the compiled slot layout and, under Auto
// with a document, the cost model's per-pattern choice.
func TestExplainPhysicalAnnotations(t *testing.T) {
	doc := NewXMarkDocument(3, 60)
	q := MustPrepare(`$input//person[emailaddress]/name`)
	fixed, err := q.ExplainPhysical(Staircase, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"physical plan:", "slots", "alg=SCJoin", "TupleTreePattern"} {
		if !contains(fixed, want) {
			t.Errorf("ExplainPhysical(SC) missing %q:\n%s", want, fixed)
		}
	}
	auto, err := q.ExplainPhysical(Auto, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(auto, "alg=Auto→") {
		t.Errorf("ExplainPhysical(Auto, doc) missing the cost-model choice:\n%s", auto)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
