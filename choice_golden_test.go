package xqtp

import (
	"sort"
	"strings"
	"testing"

	"xqtp/internal/join"
)

// choiceFor renders the cost model's decision for every pattern operator of
// the query's Auto plan against the document root, in lowering order:
// "skip(empty)" when the emptiness proof fires, otherwise the chosen
// algorithm's name. Multiple pattern operators join with "+".
func choiceFor(t *testing.T, q *Query, d *Document) string {
	t.Helper()
	p, err := q.physicalPlan(Auto)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	pats := p.Patterns()
	if len(pats) == 0 {
		return "none"
	}
	root := d.tree.RootNode()
	parts := make([]string, len(pats))
	for i, pat := range pats {
		est := join.ChooseEstimate(d.index, root, pat)
		if est.Empty {
			parts[i] = "skip(empty)"
		} else {
			parts[i] = est.Alg.String()
		}
	}
	return strings.Join(parts, "+")
}

// goldenChoices pins the cost model's algorithm pick for every corpus query
// over both document families. The value is the per-pattern-operator decision
// of the Auto plan (see choiceFor).
//
// A failure here means the cost model changed its mind. That is sometimes the
// point of a change — but never an accident to wave through: re-run the
// Table 1 experiment (go run ./cmd/treebench -exp table1) and confirm Auto
// still matches or beats the best hand-picked algorithm on every query before
// updating the entry.
var goldenChoices = map[string]string{
	"Fig4/member":              "skip(empty)",
	"Fig4/xmark":               "SCJoin",
	"Q1a/member":               "skip(empty)",
	"Q1a/xmark":                "SCJoin",
	"Q1b/member":               "skip(empty)",
	"Q1b/xmark":                "SCJoin",
	"Q1c/member":               "skip(empty)",
	"Q1c/xmark":                "SCJoin",
	"Q2/member":                "skip(empty)+skip(empty)",
	"Q2/xmark":                 "SCJoin+SCJoin",
	"Q3/member":                "skip(empty)+skip(empty)",
	"Q3/xmark":                 "SCJoin+SCJoin",
	"Q4/member":                "skip(empty)+skip(empty)",
	"Q4/xmark":                 "SCJoin+SCJoin",
	"Q5/member":                "skip(empty)+skip(empty)",
	"Q5/xmark":                 "SCJoin+SCJoin",
	"QE1/member":               "SCJoin",
	"QE1/xmark":                "skip(empty)",
	"QE2/member":               "SCJoin+SCJoin+SCJoin",
	"QE2/xmark":                "skip(empty)+skip(empty)+skip(empty)",
	"QE3/member":               "SCJoin",
	"QE3/xmark":                "skip(empty)",
	"QE4/member":               "SCJoin",
	"QE4/xmark":                "skip(empty)",
	"QE5/member":               "SCJoin+SCJoin+SCJoin",
	"QE5/xmark":                "skip(empty)+skip(empty)+skip(empty)",
	"QE6/member":               "SCJoin",
	"QE6/xmark":                "skip(empty)",
	"Sec53-k3/member":          "skip(empty)+skip(empty)+skip(empty)",
	"Sec53-k3/xmark":           "skip(empty)+skip(empty)+skip(empty)",
	"XM-email-child/member":    "skip(empty)",
	"XM-email-child/xmark":     "SCJoin",
	"XM-email-desc/member":     "skip(empty)",
	"XM-email-desc/xmark":      "SCJoin",
	"XM-increase-child/member": "skip(empty)",
	"XM-increase-child/xmark":  "SCJoin",
	"XM-increase-desc/member":  "skip(empty)",
	"XM-increase-desc/xmark":   "SCJoin",
	"XM-interest-child/member": "skip(empty)",
	"XM-interest-child/xmark":  "SCJoin",
	"XM-interest-desc/member":  "skip(empty)",
	"XM-interest-desc/xmark":   "SCJoin",
	"XM-price-child/member":    "skip(empty)",
	"XM-price-child/xmark":     "SCJoin",
	"XM-price-desc/member":     "skip(empty)",
	"XM-price-desc/xmark":      "SCJoin",
}

// TestGoldenAlgorithmChoices locks the cost model's decisions over the full
// paper query corpus (Fig. 1, Table 1's QE set, both Fig. 6 forms, Fig. 4,
// the §5.3 chain) on both document families. Any flip fails loudly with
// instructions; silent choice drift is how cost-model regressions ship.
func TestGoldenAlgorithmChoices(t *testing.T) {
	docs := []struct {
		name string
		doc  *Document
	}{
		{"xmark", NewXMarkDocument(7, 120)},
		{"member", NewMemberDocument(7, 150_000)},
	}
	corpus := make([]PaperQuery, 0, 32)
	corpus = append(corpus, Figure1Queries...)
	corpus = append(corpus, QEQueries...)
	for _, pair := range Figure6Queries {
		corpus = append(corpus, PaperQuery{pair.Name + "-child", pair.Child})
		corpus = append(corpus, PaperQuery{pair.Name + "-desc", pair.Descendant})
	}
	corpus = append(corpus, PaperQuery{"Fig4", Fig4Query})
	corpus = append(corpus, PaperQuery{"Sec53-k3", Section53Query(3)})

	seen := make(map[string]bool, len(goldenChoices))
	for _, pq := range corpus {
		q, err := Prepare(pq.Query)
		if err != nil {
			t.Fatalf("%s: %v", pq.Name, err)
		}
		for _, d := range docs {
			key := pq.Name + "/" + d.name
			seen[key] = true
			got := choiceFor(t, q, d.doc)
			want, ok := goldenChoices[key]
			if !ok {
				t.Errorf("%s: no golden entry; cost model chose %q — add the entry after validating against Table 1", key, got)
				continue
			}
			if got != want {
				t.Errorf("%s: cost model flipped %q -> %q\n"+
					"If this flip is intentional, re-run the Table 1 experiment and confirm Auto\n"+
					"still matches or beats the best hand-picked algorithm on every query, then\n"+
					"update goldenChoices. Do NOT update the table to silence the failure.", key, want, got)
			}
		}
	}
	var stale []string
	for key := range goldenChoices {
		if !seen[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		t.Errorf("goldenChoices has stale entry %q (query or doc no longer in the corpus)", key)
	}
}
