package xqtp

import "xqtp/internal/exec"

// PrepCacheStats is a snapshot of a prepared-join cache: the per-(pattern,
// document, algorithm) join preparations a compiled query memoizes across
// runs.
type PrepCacheStats = exec.PrepCacheStats

// PrepStats returns the query's prepared-join cache counters.
func (q *Query) PrepStats() PrepCacheStats { return q.preps.Stats() }

// PrepStats aggregates the prepared-join cache counters over every query
// currently held by the plan cache: the sum of each cached query's
// PrepStats. Size and Capacity sum too, so the ratio Size/Capacity keeps its
// "how full" meaning across the fleet of per-query caches.
func (c *PlanCache) PrepStats() PrepCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total PrepCacheStats
	for el := c.lru.Front(); el != nil; el = el.Next() {
		s := el.Value.(*planEntry).q.preps.Stats()
		total.Size += s.Size
		total.Capacity += s.Capacity
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Evictions += s.Evictions
	}
	return total
}

// ServerStats bundles the engine-side cache counters a serving tier exports:
// the plan cache (query text → compiled plan) and the prepared-join caches
// of the queries it holds. A /metrics endpoint can render this snapshot
// without importing any internal package.
type ServerStats struct {
	Plan PlanCacheStats
	Prep PrepCacheStats
}

// ServerStats returns the cache counters behind this plan cache in one
// snapshot.
func (c *PlanCache) ServerStats() ServerStats {
	return ServerStats{Plan: c.Stats(), Prep: c.PrepStats()}
}

// DefaultServerStats returns the ServerStats of the process-wide plan cache
// behind PrepareCached.
func DefaultServerStats() ServerStats {
	return defaultPlanCache.ServerStats()
}
