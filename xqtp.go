// Package xqtp is an XQuery-subset compiler and evaluation engine that
// reproduces "Put a Tree Pattern in Your Algebra" (Michiels, Mihăilă,
// Siméon; ICDE 2007).
//
// Queries are compiled through the paper's pipeline: parsing, normalization
// into the XQuery Core, rewriting into TPNF′ (type rewritings, FLWOR
// rewritings, document-order rewritings, loop splitting), compilation into
// a tuple algebra, and algebraic optimization that detects maximal
// TupleTreePattern operators. Detected patterns evaluate under one of three
// physical algorithms: nested-loop navigation, staircase join, or holistic
// twig join.
//
// Quick start:
//
//	doc, _ := xqtp.LoadXMLString("<doc><person><emailaddress/><name>Ann</name></person></doc>")
//	q, _ := xqtp.Prepare(`$d//person[emailaddress]/name`)
//	items, _ := q.Run(doc, xqtp.Staircase)
package xqtp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xqtp/internal/algebra"
	"xqtp/internal/ast"
	"xqtp/internal/compile"
	"xqtp/internal/core"
	"xqtp/internal/exec"
	"xqtp/internal/execctx"
	"xqtp/internal/join"
	"xqtp/internal/optimize"
	"xqtp/internal/parser"
	"xqtp/internal/pattern"
	"xqtp/internal/physical"
	"xqtp/internal/rewrite"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Item is a single XDM item: a *Node or an atomic value.
type Item = xdm.Item

// Node is an XML tree node with its region encoding.
type Node = xdm.Node

// Sequence is an ordered sequence of items.
type Sequence = xdm.Sequence

// Atomic item types, for binding variables and inspecting results.
type (
	// String is an xs:string item.
	String = xdm.String
	// Integer is an xs:integer item.
	Integer = xdm.Integer
	// Float is an xs:double item.
	Float = xdm.Float
	// Bool is an xs:boolean item.
	Bool = xdm.Bool
)

// Algorithm selects the physical tree-pattern algorithm.
type Algorithm = join.Algorithm

// The physical tree-pattern algorithms of the paper's evaluation, plus the
// cost-based chooser the paper's conclusion calls for.
const (
	NestedLoop = join.NestedLoop // NLJoin: navigational, cursor-style
	Staircase  = join.Staircase  // SCJoin: staircase join over region-encoded streams
	Twig       = join.Twig       // TwigJoin: holistic twig join
	Auto       = join.Auto       // per-pattern cost-based choice among the three
	Streaming  = join.Streaming  // single-scan stack automaton for linear paths
)

// Algorithms lists all physical algorithms, in the paper's table order
// (NL, TJ, SC).
var Algorithms = []Algorithm{NestedLoop, Twig, Staircase}

// ParseAlgorithm resolves an algorithm name ("nl", "sc", "twig"/"tj",
// "stream", "auto", …) as accepted by the command-line tools.
func ParseAlgorithm(name string) (Algorithm, error) {
	return join.ParseAlgorithm(name)
}

// Document is a loaded XML document with its index structures. A Document
// is immutable after load and safe for concurrent Run calls; its catalog
// hands every engine the same prebuilt index.
type Document struct {
	tree    *xdm.Tree
	index   *xmlstore.Index
	catalog *xmlstore.Catalog
	// rootSeq is the document node as a singleton sequence, allocated once:
	// the uniform binding Run hands to every free variable.
	rootSeq xdm.Sequence
	// uri names the document for fn:doc resolution ("" when loaded from a
	// reader or string without a name).
	uri string
	// docs, when the document is a corpus member, resolves fn:doc and
	// fn:collection against the whole corpus; nil documents resolve against
	// themselves (the degenerate one-document collection).
	docs xdm.DocResolver
	// mapping is the file mapping behind a document opened with
	// OpenSnapshotFile; nil otherwise. Close releases it.
	mapping *xmlstore.Mapping
	closed  atomic.Bool
}

// LoadXML parses an XML document through the fused ingest path: one pass
// over the input builds the tree, its columns, and the tag-stream index
// together (no separate finalize or index walk).
func LoadXML(r io.Reader) (*Document, error) {
	ix, err := xmlstore.IngestReader(r)
	if err != nil {
		return nil, err
	}
	return newDocumentIndexed(ix), nil
}

// LoadXMLBytes ingests an XML document held in a byte slice. It takes
// ownership of data: the document's text values alias the buffer, so the
// caller must not modify it afterwards.
func LoadXMLBytes(data []byte) (*Document, error) {
	ix, err := xmlstore.Ingest(data)
	if err != nil {
		return nil, err
	}
	return newDocumentIndexed(ix), nil
}

// LoadXMLString ingests an XML document held in a string.
func LoadXMLString(s string) (*Document, error) {
	ix, err := xmlstore.IngestString(s)
	if err != nil {
		return nil, err
	}
	return newDocumentIndexed(ix), nil
}

// newDocument wraps an already-built tree (used by the generators and the
// benchmark harness).
func newDocument(t *xdm.Tree) *Document {
	cat := xmlstore.NewCatalog()
	return &Document{tree: t, index: cat.Index(t), catalog: cat, rootSeq: xdm.Singleton(t.RootNode())}
}

// newDocumentIndexed wraps a fused ingest result, registering its
// already-built index in the catalog so no engine ever rebuilds it.
func newDocumentIndexed(ix *xmlstore.Index) *Document {
	cat := xmlstore.NewCatalog()
	cat.Register(ix)
	return &Document{tree: ix.Tree, index: ix, catalog: cat, rootSeq: xdm.Singleton(ix.Tree.RootNode())}
}

// Root returns the document node.
func (d *Document) Root() *Node { return d.tree.Root }

// URI returns the document's name for fn:doc resolution ("" when loaded
// without one).
func (d *Document) URI() string { return d.uri }

// SetURI names the document for fn:doc resolution. Call before sharing the
// document across goroutines.
func (d *Document) SetURI(uri string) { d.uri = uri }

// ResolveDoc implements xdm.DocResolver for a standalone document — the
// degenerate one-document collection: only the document's own URI resolves.
func (d *Document) ResolveDoc(uri string) (*xdm.Node, error) {
	if d.uri != "" && uri == d.uri {
		return d.tree.Root, nil
	}
	return nil, fmt.Errorf("doc(%q): no such document", uri)
}

// ResolveCollection implements xdm.DocResolver for a standalone document:
// the default collection is the document itself.
func (d *Document) ResolveCollection(name string) (xdm.Sequence, error) {
	if name != "" {
		return nil, fmt.Errorf("collection(%q): no such collection (only the default collection is defined)", name)
	}
	return d.rootSeq, nil
}

// NumNodes returns the number of nodes in the document (including the
// document node and attributes).
func (d *Document) NumNodes() int { return d.tree.CountNodes() }

// SizeBytes returns the serialized size of the document.
func (d *Document) SizeBytes() int {
	return len(xmlstore.AppendXML(nil, d.tree.Root))
}

// XML serializes the document.
func (d *Document) XML() string { return xmlstore.SerializeString(d.tree.Root) }

// WriteXML serializes the document to w without materializing the whole
// document as a string first.
func (d *Document) WriteXML(w io.Writer) error {
	return xmlstore.Serialize(w, d.tree.Root)
}

// SaveSnapshot writes the document in the columnar binary snapshot format:
// the region columns and index streams go out as-is, so loading skips both
// the parse and the index build.
func (d *Document) SaveSnapshot(w io.Writer) error {
	// A one-member corpus snapshot carrying the document's URI, so a
	// file-mapped reopen (OpenSnapshotFile) restores fn:doc resolution.
	return xmlstore.WriteCorpus(w, &xmlstore.CorpusSnapshot{
		URIs:    []string{d.uri},
		Indexes: []*xmlstore.Index{d.index},
	})
}

// LoadSnapshot reads a document written by SaveSnapshot. The tree and its
// tag-stream index come straight from the stored columns — no region
// encoding or index rebuild.
func LoadSnapshot(r io.Reader) (*Document, error) {
	ix, err := xmlstore.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return newDocumentIndexed(ix), nil
}

// OpenSnapshotFile opens a single-document snapshot by memory-mapping the
// file: the columns, symbol table and rank streams alias the mapping
// directly, so no copy of the document is made and cold pages load on
// demand. The document owns the mapping — call Close to release it; after
// Close the Run entry points return ErrClosed. Unlike the deferred corpus
// open, the single member is validated here (the open reports corruption
// immediately rather than at first query).
func OpenSnapshotFile(path string) (*Document, error) {
	m, err := xmlstore.MapFile(path)
	if err != nil {
		return nil, err
	}
	s, err := xmlstore.OpenCorpusMapping(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	if len(s.Indexes) != 1 {
		m.Close()
		return nil, fmt.Errorf("xqtp: snapshot holds %d members; use OpenCorpusFile for corpora", len(s.Indexes))
	}
	if err := s.Indexes[0].Ensure(); err != nil {
		m.Close()
		return nil, err
	}
	d := newDocumentIndexed(s.Indexes[0])
	d.mapping = m
	if len(s.URIs) == 1 {
		d.uri = s.URIs[0]
	}
	return d, nil
}

// Close poisons the document and releases its snapshot file mapping (if
// any). After Close the Run entry points return ErrClosed; so does a second
// Close. Closing while queries are in flight is a caller bug, exactly as
// with os.File. Close on a parsed (non-mapped) document only poisons it.
func (d *Document) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	if d.mapping != nil {
		return d.mapping.Close()
	}
	return nil
}

// Closed reports whether Close has been called.
func (d *Document) Closed() bool { return d.closed.Load() }

// Mapped reports whether the document is backed by a live file mapping
// (true only for OpenSnapshotFile documents on mmap-capable builds, before
// Close).
func (d *Document) Mapped() bool {
	return d.mapping != nil && d.mapping.Mapped()
}

// closedErr is the entry-point check used by the Run paths.
func (d *Document) closedErr() error {
	if d.closed.Load() {
		return ErrClosed
	}
	return nil
}

// CompileOptions configures query preparation.
type CompileOptions struct {
	// TreePatterns enables the algebraic tree-pattern detection (Fig. 3
	// rules). Disabling it yields plans that keep their navigational maps.
	TreePatterns bool
	// Rewrites enables the TPNF′ core rewritings (§3). Disabling both
	// Rewrites and TreePatterns reproduces the paper's "standard engine"
	// baseline, whose plans depend on the syntactic form of the query.
	Rewrites bool
	// ContextVar names the variable bound to the context item for "." and
	// absolute paths. Defaults to "dot".
	ContextVar string

	// Ablation knobs (benchmarks measure the value of individual design
	// choices; leave false for normal use).
	DisablePositionalFirst bool // keep MapIndex/Select instead of Head (§5.3 early exit)
	DisableBulkConversion  bool // force the per-tuple fallback instead of rule (b)
}

// DefaultOptions is the configuration used by Prepare.
var DefaultOptions = CompileOptions{TreePatterns: true, Rewrites: true, ContextVar: "dot"}

// StandardEngineOptions reproduces the paper's baseline engine: no core
// rewritings, no tree-pattern detection — nested maps with navigational
// TreeJoins and explicit ddo calls.
var StandardEngineOptions = CompileOptions{TreePatterns: false, Rewrites: false, ContextVar: "dot"}

// Query is a compiled query, retaining every intermediate compilation phase
// for inspection.
type Query struct {
	Source string

	surface   ast.Expr
	coreExpr  core.Expr // normalized
	rewritten core.Expr // TPNF′
	plan      algebra.Expr
	optimized algebra.Expr
	freeVars  []string

	// preps caches (pattern, document, algorithm) join preparations across
	// runs of this query, so serving workloads resolve each pattern's tag
	// streams once per document instead of once per Run call.
	preps *exec.PrepCache
	// phys memoizes the physical lowering of the optimized plan, one entry
	// per algorithm: slots resolved, builtins bound, patterns annotated —
	// compiled on first use and shared by every subsequent Run.
	phys sync.Map // Algorithm -> *physical.Plan
}

// Prepare compiles a query with the default options.
func Prepare(query string) (*Query, error) {
	return PrepareWithOptions(query, DefaultOptions)
}

// PrepareWithOptions compiles a query through all phases of Fig. 2.
func PrepareWithOptions(query string, opts CompileOptions) (*Query, error) {
	if opts.ContextVar == "" {
		opts.ContextVar = "dot"
	}
	surface, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	normalized, err := core.Normalize(surface, opts.ContextVar)
	if err != nil {
		return nil, err
	}
	free := freeVariables(normalized)
	singletons := map[string]bool{}
	for _, v := range free {
		// Run binds every free variable to a single node, so the
		// rewriter's singleton assumption is discharged by construction.
		singletons[v] = true
	}
	rewritten := normalized
	if opts.Rewrites {
		rewritten = rewrite.Rewrite(normalized, rewrite.Options{SingletonVars: singletons})
	}
	plan, err := compile.Compile(rewritten)
	if err != nil {
		return nil, err
	}
	q := &Query{
		Source:    query,
		surface:   surface,
		coreExpr:  normalized,
		rewritten: rewritten,
		plan:      plan,
		optimized: plan,
		freeVars:  free,
		preps:     exec.NewPrepCache(),
	}
	if opts.TreePatterns {
		q.optimized = optimize.Optimize(plan, optimize.Options{
			SingletonVars:          singletons,
			DisablePositionalFirst: opts.DisablePositionalFirst,
			DisableBulkConversion:  opts.DisableBulkConversion,
		})
	}
	return q, nil
}

// MustPrepare compiles a query and panics on error (for fixed query sets).
func MustPrepare(query string) *Query {
	q, err := Prepare(query)
	if err != nil {
		panic(err)
	}
	return q
}

// physicalPlan returns the query's compiled physical plan for alg, lowering
// the optimized logical plan on first use and memoizing it. The compiled
// plan is immutable and shared by concurrent runs.
func (q *Query) physicalPlan(alg Algorithm) (*physical.Plan, error) {
	if v, ok := q.phys.Load(alg); ok {
		return v.(*physical.Plan), nil
	}
	p, err := physical.Compile(q.optimized, alg)
	if err != nil {
		return nil, err
	}
	v, _ := q.phys.LoadOrStore(alg, p)
	return v.(*physical.Plan), nil
}

// runtime builds the per-call runtime: the document's catalog, the query's
// prepared-pattern cache, and the variable environment. Free-variable slot
// resolution happened at plan compile time, so the uniform document binding
// is a single field store, not a map.
func (q *Query) runtime(doc *Document, workers int) *physical.Runtime {
	docs := xdm.DocResolver(doc)
	if doc.docs != nil {
		// A corpus member resolves fn:doc/fn:collection corpus-wide.
		docs = doc.docs
	}
	return &physical.Runtime{
		Catalog:  doc.catalog,
		Preps:    q.preps,
		Parallel: workers,
		Docs:     docs,
		Root:     doc.rootSeq,
	}
}

// Run evaluates the query against a document with the given algorithm.
// Every free variable of the query ($d, $input, …) and the context item are
// bound to the document node. Run is safe to call concurrently from many
// goroutines on the same Query and Document.
func (q *Query) Run(doc *Document, alg Algorithm) (Sequence, error) {
	if err := doc.closedErr(); err != nil {
		return nil, err
	}
	p, err := q.physicalPlan(alg)
	if err != nil {
		return nil, err
	}
	return p.Run(q.runtime(doc, 0))
}

// RunParallel evaluates like Run but allows the TupleTreePattern operator
// to match its context nodes on up to workers goroutines (<= 0: one worker
// per available CPU). Results are identical to the sequential evaluation.
func (q *Query) RunParallel(doc *Document, alg Algorithm, workers int) (Sequence, error) {
	if err := doc.closedErr(); err != nil {
		return nil, err
	}
	p, err := q.physicalPlan(alg)
	if err != nil {
		return nil, err
	}
	return p.Run(q.runtime(doc, normalizeWorkers(workers)))
}

// RunWithVars evaluates the query with explicit variable bindings.
func (q *Query) RunWithVars(doc *Document, alg Algorithm, vars map[string]Sequence) (Sequence, error) {
	if err := doc.closedErr(); err != nil {
		return nil, err
	}
	p, err := q.physicalPlan(alg)
	if err != nil {
		return nil, err
	}
	rt := q.runtime(doc, 0)
	rt.Root = nil
	rt.Vars = p.BindVars(vars)
	return p.Run(rt)
}

// Plan returns the optimized plan in the paper's functional notation.
func (q *Query) Plan() string { return algebra.String(q.optimized) }

// PlanTree returns the optimized plan with one operator per line.
func (q *Query) PlanTree() string { return algebra.Pretty(q.optimized) }

// UnoptimizedPlan returns the plan before tree-pattern detection (the
// paper's P1 shape).
func (q *Query) UnoptimizedPlan() string { return algebra.String(q.plan) }

// Core returns the normalized XQuery Core (the paper's Q1a-n shape).
func (q *Query) Core() string { return core.Pretty(q.coreExpr) }

// Rewritten returns the TPNF′ core after the §3 rewritings (the paper's
// Q1-tp shape).
func (q *Query) Rewritten() string { return core.Pretty(q.rewritten) }

// Operators returns the operator counts of the optimized plan.
func (q *Query) Operators() map[string]int { return algebra.CountOperators(q.optimized) }

// TreePatterns returns the number of TupleTreePattern operators in the
// optimized plan.
func (q *Query) TreePatterns() int { return q.Operators()["TupleTreePattern"] }

// Explain renders every compilation phase (the Fig. 2 pipeline, extended
// with the physical lowering) for inspection. The physical phase shows the
// default algorithm's plan; ExplainPhysical renders other algorithms and
// per-document Auto choices.
func (q *Query) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query:\n  %s\n\n", q.Source)
	fmt.Fprintf(&b, "Parsed (surface syntax):\n  %s\n\n", ast.String(q.surface))
	fmt.Fprintf(&b, "Normalized (XQuery Core):\n%s\n\n", indentLines(core.Pretty(q.coreExpr)))
	fmt.Fprintf(&b, "Rewritten (TPNF'):\n%s\n\n", indentLines(core.Pretty(q.rewritten)))
	fmt.Fprintf(&b, "Compiled plan:\n%s\n", indentLines(algebra.Pretty(q.plan)))
	fmt.Fprintf(&b, "Optimized plan:\n%s\n\n", indentLines(algebra.Pretty(q.optimized)))
	if phys, err := q.ExplainPhysical(Staircase, nil); err != nil {
		fmt.Fprintf(&b, "Physical plan:\n  (error: %v)", err)
	} else {
		fmt.Fprintf(&b, "Physical plan:\n%s", indentLines(phys))
	}
	return b.String()
}

// ExplainPhysical renders the compiled physical plan for alg: one operator
// per line, with the frame slot every dependent field and variable was
// compiled to and each pattern operator's algorithm annotation. When doc is
// non-nil and alg is Auto, every pattern line additionally records the
// algorithm the cost model chooses for that document (evaluated from the
// document root, the context the optimized plans feed their patterns).
func (q *Query) ExplainPhysical(alg Algorithm, doc *Document) (string, error) {
	return q.ExplainPhysicalCtx(context.Background(), alg, doc)
}

// ExplainPhysicalCtx is ExplainPhysical under a context: the per-step actual
// cardinality evaluations (one full pattern run per spine step) poll ctx and
// the explain aborts with ErrCanceled once it is done — these are the
// expensive part of an Auto explain on a large document.
func (q *Query) ExplainPhysicalCtx(ctx context.Context, alg Algorithm, doc *Document) (string, error) {
	p, err := q.physicalPlan(alg)
	if err != nil {
		return "", err
	}
	if doc == nil || alg != Auto {
		return p.Explain(), nil
	}
	ec := execctx.From(ctx, 0, 0)
	// Document-rooted annotations only make sense for pattern operators fed
	// directly by the root binding; downstream operators (after a positional
	// head, say) consume derived bindings and their per-document choice is
	// made per context at run time.
	rootBound := make(map[*pattern.Pattern]bool)
	pats := p.Patterns()
	for i, rb := range p.RootBoundPatterns() {
		if rb {
			rootBound[pats[i]] = true
		}
	}
	choice := func(pat *pattern.Pattern) string {
		if !rootBound[pat] {
			return ""
		}
		est := join.ChooseEstimate(doc.index, doc.tree.Root, pat)
		if est.Empty {
			return "skip(empty)"
		}
		return est.Alg.String()
	}
	// The detail lines put the cost model on trial: per spine step, the
	// model's predicted cardinality next to the exact count from evaluating
	// the corresponding pattern prefix.
	detail := func(pat *pattern.Pattern) []string {
		if !rootBound[pat] {
			return nil
		}
		est := join.ChooseEstimate(doc.index, doc.tree.Root, pat)
		acts := join.StepActualsCtx(ec, doc.index, doc.tree.Root, pat)
		lines := make([]string, 0, len(est.Steps))
		for i, se := range est.Steps {
			act := -1
			if i < len(acts) {
				act = acts[i]
			}
			lines = append(lines, fmt.Sprintf("step %s est=%s act=%d",
				se.Step.StepString(), formatEst(se.Out), act))
		}
		return lines
	}
	out := p.ExplainDetail(choice, detail)
	if err := ec.Err(); err != nil {
		return "", err
	}
	return out, nil
}

// formatEst renders a cardinality estimate compactly: whole numbers without
// a fraction, small fractional estimates with two decimals.
func formatEst(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	if v < 10 {
		return fmt.Sprintf("%.2f", v)
	}
	return fmt.Sprintf("%.0f", v)
}

func indentLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}

// freeVariables collects the free variables of a core expression in sorted
// order.
func freeVariables(e core.Expr) []string {
	set := map[string]bool{}
	var walk func(core.Expr, map[string]bool)
	walk = func(e core.Expr, bound map[string]bool) {
		switch x := e.(type) {
		case *core.Var:
			if !bound[x.Name] {
				set[x.Name] = true
			}
			return
		case *core.For:
			walk(x.In, bound)
			b2 := withNames(bound, x.Var, x.Pos)
			if x.Where != nil {
				walk(x.Where, b2)
			}
			walk(x.Return, b2)
			return
		case *core.Let:
			walk(x.In, bound)
			walk(x.Return, withNames(bound, x.Var))
			return
		case *core.TypeSwitch:
			walk(x.Input, bound)
			for _, c := range x.Cases {
				walk(c.Body, withNames(bound, c.Var))
			}
			walk(x.Default, withNames(bound, x.DefVar))
			return
		}
		for _, c := range core.Children(e) {
			walk(c, bound)
		}
	}
	walk(e, map[string]bool{})
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func withNames(bound map[string]bool, names ...string) map[string]bool {
	out := make(map[string]bool, len(bound)+len(names))
	for k := range bound {
		out[k] = true
	}
	for _, n := range names {
		if n != "" {
			out[n] = true
		}
	}
	return out
}

// ItemString renders an item for display.
func ItemString(it Item) string { return xdm.ItemString(it) }

// SerializeItem renders a node item as XML, and atomics as their lexical
// value.
func SerializeItem(it Item) string {
	if n, ok := it.(*xdm.Node); ok {
		return xmlstore.SerializeString(n)
	}
	return xdm.ItemString(it)
}
