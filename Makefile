GO ?= go

# Packages with concurrency-sensitive paths (shared catalog, prepared-join
# caches, parallel TupleTreePattern workers) get a dedicated -race run.
RACE_PKGS = ./internal/exec ./internal/join

.PHONY: all build vet test race check bench serve clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS) .

check: build vet test race

# Single-threaded paper benchmarks (Table 1, Fig. 4, ...).
bench:
	$(GO) test -bench 'Table1|Figure4' -benchmem -benchtime 1x .

# Concurrent serving benchmark; -cpu exercises the QPS scaling.
serve:
	$(GO) test -bench Serve -benchmem -cpu 1,4 .

clean:
	$(GO) clean ./...
