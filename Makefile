GO ?= go

# Packages with concurrency-sensitive paths (shared catalog, prepared-join
# caches, shared compiled physical plans, parallel TupleTreePattern workers)
# plus the unsafe-aliasing ingest scanner and the parallel corpus layer get a
# dedicated -race run.
RACE_PKGS = ./internal/collection ./internal/exec ./internal/join ./internal/physical ./internal/server ./internal/xmlstore

.PHONY: all build vet test race check bench serve run-server bench-compare bench-smoke fuzz-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) vet -tags race ./...
	$(GO) build -tags nommap ./...
	GOOS=windows GOARCH=amd64 $(GO) build ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks SA ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS) .

check: build vet test race

# Single-threaded paper benchmarks (Table 1, Fig. 4, ...).
bench:
	$(GO) test -bench 'Table1|Figure4' -benchmem -benchtime 1x .

# Concurrent serving benchmark; -cpu exercises the QPS scaling.
serve:
	$(GO) test -bench Serve -benchmem -cpu 1,4 .

# Run the HTTP query server over a corpus:
#   make run-server CORPUS=corpus.snap            (snapshot, mmap)
#   make run-server CORPUS=xmldir/ ADDR=:9090     (directory of *.xml)
ADDR ?= :8080
run-server:
	@test -n "$(CORPUS)" || \
		{ echo "usage: make run-server CORPUS=path/to/corpus.snap [ADDR=:8080]"; exit 2; }
	$(GO) run ./cmd/xqd -addr $(ADDR) -corpus main=$(CORPUS)

# Quick benchmark smoke: re-measure Table 1 at reduced scale and diff it
# against the committed quick-scale baseline. The gating row fails when the
# SC/TJ cells' median ns/op regressed more than 2% — the bound the
# cancellation checkpoints must stay under; the remaining diffs are
# report-only (the leading `-` ignores their exit status), surfacing drift
# without gating on per-cell noise of shared CI machines.
bench-smoke:
	$(GO) run ./cmd/treebench -exp table1 -quick -json /tmp/bench_table1_quick.json
	$(GO) run ./cmd/benchdiff -gate-ns 2 -gate-algs SC,TJ BENCH_table1_quick.json /tmp/bench_table1_quick.json
	$(GO) run ./cmd/treebench -exp ingest -quick -json /tmp/bench_ingest_quick.json
	-$(GO) run ./cmd/benchdiff BENCH_ingest_quick.json /tmp/bench_ingest_quick.json
	$(GO) run ./cmd/treebench -exp collection -quick -json /tmp/bench_collection_quick.json
	-$(GO) run ./cmd/benchdiff BENCH_collection_quick.json /tmp/bench_collection_quick.json
	$(GO) run ./cmd/treebench -exp optimizer -quick -json /tmp/bench_optimizer_quick.json
	-$(GO) run ./cmd/benchdiff BENCH_optimizer_quick.json /tmp/bench_optimizer_quick.json
	$(GO) run ./cmd/treebench -exp snapshot -quick -json /tmp/bench_snapshot_quick.json
	-$(GO) run ./cmd/benchdiff BENCH_snapshot_quick.json /tmp/bench_snapshot_quick.json

# Short differential fuzz of the ingest scanner against the encoding/xml
# oracle, and of the snapshot reader against corrupted/truncated bytes (the
# committed seed corpus always runs as part of `make test`; this also
# explores new inputs for a bounded time).
fuzz-smoke:
	$(GO) test ./internal/xmlstore -run FuzzScanVsStd -fuzz FuzzScanVsStd -fuzztime 30s
	$(GO) test ./internal/xmlstore -run FuzzSnapshot -fuzz FuzzSnapshot -fuzztime 30s

# Compare two treebench JSON reports (table1 or serve):
#   make bench-compare OLD=BENCH_table1.json NEW=/tmp/new.json
bench-compare:
	@test -n "$(OLD)" -a -n "$(NEW)" || \
		{ echo "usage: make bench-compare OLD=old.json NEW=new.json"; exit 2; }
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

clean:
	$(GO) clean ./...
