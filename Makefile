GO ?= go

# Packages with concurrency-sensitive paths (shared catalog, prepared-join
# caches, parallel TupleTreePattern workers) get a dedicated -race run.
RACE_PKGS = ./internal/exec ./internal/join

.PHONY: all build vet test race check bench serve bench-compare clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS) .

check: build vet test race

# Single-threaded paper benchmarks (Table 1, Fig. 4, ...).
bench:
	$(GO) test -bench 'Table1|Figure4' -benchmem -benchtime 1x .

# Concurrent serving benchmark; -cpu exercises the QPS scaling.
serve:
	$(GO) test -bench Serve -benchmem -cpu 1,4 .

# Compare two treebench JSON reports (table1 or serve):
#   make bench-compare OLD=BENCH_table1.json NEW=/tmp/new.json
bench-compare:
	@test -n "$(OLD)" -a -n "$(NEW)" || \
		{ echo "usage: make bench-compare OLD=old.json NEW=new.json"; exit 2; }
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

clean:
	$(GO) clean ./...
