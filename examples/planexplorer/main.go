// Plan explorer: reproduce the paper's worked compilation examples. For
// each Fig. 1 query the program prints the detected plan and the pattern
// count, and for Q1a the full derivation — the normalized core (the
// paper's Q1a-n), every TPNF' rewriting step down to Q1-tp, the compiled
// plan P1, and each algebraic rule application up to P5.
package main

import (
	"fmt"
	"log"

	"xqtp"
)

func main() {
	fmt.Println("=== Fig. 1 queries and their optimized plans ===")
	for _, pq := range xqtp.Figure1Queries {
		q, err := xqtp.Prepare(pq.Query)
		if err != nil {
			log.Fatalf("%s: %v", pq.Name, err)
		}
		fmt.Printf("\n%s: %s\n  patterns: %d\n  plan: %s\n",
			pq.Name, pq.Query, q.TreePatterns(), q.Plan())
	}

	fmt.Println("\n=== Full derivation for Q1a (the paper's Section 2/4 walkthrough) ===")
	_, tr, err := xqtp.PrepareTraced(xqtp.Figure1Queries[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr)

	fmt.Println("=== The standard engine keeps syntax-dependent plans ===")
	for _, name := range []int{0, 1} { // Q1a vs Q1b
		pq := xqtp.Figure1Queries[name]
		q, err := xqtp.PrepareWithOptions(pq.Query, xqtp.StandardEngineOptions)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (standard): %s\n", pq.Name, q.Plan())
	}
}
