// FLWOR variants (§5.1 of the paper): every syntactic variant of the path
//
//	$input/site/people/person[emailaddress]/profile/interest
//
// — obtained by replacing / operators with for clauses and the predicate
// with a where clause — compiles to the identical plan containing a single
// TupleTreePattern operator, and all variants return identical results.
package main

import (
	"fmt"
	"log"

	"xqtp"
)

func main() {
	doc := xqtp.NewXMarkDocument(7, 200)
	fmt.Printf("XMark-like document: %d nodes, %.2f MB\n\n",
		doc.NumNodes(), float64(doc.SizeBytes())/1e6)

	variants := xqtp.Fig4Variants()
	var refPlan, refResult string
	identical := 0
	for i, v := range variants {
		q, err := xqtp.Prepare(v)
		if err != nil {
			log.Fatalf("variant %d: %v", i, err)
		}
		items, err := q.Run(doc, xqtp.Staircase)
		if err != nil {
			log.Fatalf("variant %d: %v", i, err)
		}
		result := fmt.Sprintf("%d items", len(items))
		if i == 0 {
			refPlan, refResult = q.Plan(), result
		}
		same := q.Plan() == refPlan && result == refResult
		if same {
			identical++
		}
		fmt.Printf("[%v] %s\n", same, v)
	}
	fmt.Printf("\n%d/%d variants -> identical single-pattern plan:\n  %s\n",
		identical, len(variants), refPlan)

	// Contrast with the standard engine (no rewrites, no tree-pattern
	// detection): the plan shape depends on the syntactic form.
	old1, _ := xqtp.PrepareWithOptions(variants[0], xqtp.StandardEngineOptions)
	old2, _ := xqtp.PrepareWithOptions(variants[1], xqtp.StandardEngineOptions)
	fmt.Printf("\nstandard engine, same plan for variants 0 and 1: %v\n",
		old1.Plan() == old2.Plan())
}
