// Quickstart: load a document, compile the paper's Q1a, inspect the
// detected tree pattern, and evaluate it with each physical algorithm.
package main

import (
	"fmt"
	"log"

	"xqtp"
)

const doc = `<doc>
  <person><name>John</name><emailaddress>john@example.com</emailaddress></person>
  <person><name>Mary</name></person>
  <person>
    <person><name>Nested</name><emailaddress>nested@example.com</emailaddress></person>
    <name>Outer</name>
    <emailaddress>outer@example.com</emailaddress>
  </person>
</doc>`

func main() {
	d, err := xqtp.LoadXMLString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// Q1a from the paper: the names of persons with an email address, in
	// document order.
	q, err := xqtp.Prepare(`$d//person[emailaddress]/name`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", q.Source)
	fmt.Println("optimized plan:", q.Plan())
	fmt.Println("tree patterns detected:", q.TreePatterns())
	fmt.Println()

	for _, alg := range xqtp.Algorithms {
		items, err := q.Run(d, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s:", alg)
		for _, it := range items {
			if n, ok := it.(*xqtp.Node); ok {
				fmt.Printf(" %s", n.StringValue())
			}
		}
		fmt.Println()
	}

	// The same query written as a FLWOR (Q1c) compiles to the identical
	// plan — the point of the paper.
	q1c, err := xqtp.Prepare(`let $x := for $y in $d//person where $y/emailaddress return $y return $x/name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Q1c compiles to the same plan:", q1c.Plan() == q.Plan())
}
