// XMark queries: run the paper's Fig. 6 query set (child vs descendant
// forms) on an XMark-like auction document and compare the three physical
// tree-pattern algorithms, reproducing the experiment's shape: NLJoin never
// wins on bulk paths, SCJoin and TwigJoin trade places with query
// complexity.
package main

import (
	"fmt"
	"log"
	"time"

	"xqtp"
)

func main() {
	doc := xqtp.NewXMarkDocument(1, 2000)
	fmt.Printf("XMark-like document: %d nodes, %.2f MB\n\n",
		doc.NumNodes(), float64(doc.SizeBytes())/1e6)

	fmt.Printf("%-14s %-6s %10s %10s %10s   %s\n", "query", "form", "NL", "TJ", "SC", "items")
	for _, pair := range xqtp.Figure6Queries {
		for _, form := range []struct{ label, src string }{
			{"child", pair.Child}, {"desc", pair.Descendant},
		} {
			q, err := xqtp.Prepare(form.src)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-6s", pair.Name, form.label)
			var count int
			for _, alg := range []xqtp.Algorithm{xqtp.NestedLoop, xqtp.Twig, xqtp.Staircase} {
				start := time.Now()
				items, err := q.Run(doc, alg)
				if err != nil {
					log.Fatal(err)
				}
				count = len(items)
				fmt.Printf(" %10s", fmt.Sprintf("%.2fms", float64(time.Since(start).Microseconds())/1000))
			}
			fmt.Printf("   %d\n", count)
		}
	}

	// The §5.3 counterexample: a highly selective positional chain where
	// the nested loop's early exit wins by orders of magnitude.
	fmt.Println()
	deep := xqtp.NewDeepDocument(1, 50_000, 15, "t1")
	q, err := xqtp.Prepare(xqtp.Section53Query(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(/t1[1])^10 on a %d-node document:\n", deep.NumNodes())
	for _, alg := range []xqtp.Algorithm{xqtp.NestedLoop, xqtp.Twig, xqtp.Staircase} {
		start := time.Now()
		if _, err := q.Run(deep, alg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %v\n", alg, time.Since(start))
	}
}
