package xqtp

import (
	"xqtp/internal/gen"
)

// NewMemberDocument generates a MemBeR-style synthetic document (Table 1's
// workload): a random tree of depth 4 with 100 uniformly distributed tags,
// sized to approximately targetBytes of serialized XML.
func NewMemberDocument(seed int64, targetBytes int) *Document {
	return newDocument(gen.MemberForSize(seed, targetBytes))
}

// NewMemberDocumentNodes generates a MemBeR-style document with an explicit
// shape: depth levels, numTags distinct tags, numNodes elements.
func NewMemberDocumentNodes(seed int64, depth, numTags, numNodes int) *Document {
	return newDocument(gen.Member(gen.MemberConfig{
		Seed: seed, Depth: depth, NumTags: numTags, NumNodes: numNodes,
	}))
}

// NewXMarkDocument generates an XMark-like auction-site document (Fig. 4
// and Fig. 6 workloads) scaled by the number of person elements.
func NewXMarkDocument(seed int64, people int) *Document {
	return newDocument(gen.XMark(gen.XMarkConfig{Seed: seed, People: people}))
}

// NewDeepDocument generates the §5.3 document: numNodes elements all named
// tag, maximum depth maxDepth, with a full-depth first-child spine.
func NewDeepDocument(seed int64, numNodes, maxDepth int, tag string) *Document {
	return newDocument(gen.Deep(seed, numNodes, maxDepth, tag))
}
