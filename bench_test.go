package xqtp

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Run with:
//
//	go test -bench=. -benchmem
//
// Document sizes are scaled down from the paper's (a benchmark iteration
// should be milliseconds, not seconds); cmd/treebench runs the experiments
// at full paper scale. The comparisons that matter — which algorithm wins,
// by what factor, where the crossovers are — are preserved at this scale.
import (
	"fmt"
	"testing"
)

// benchDoc caches generated documents across benchmark invocations.
var benchDocs = map[string]*Document{}

func memberDoc(b *testing.B, bytes int) *Document {
	b.Helper()
	key := fmt.Sprintf("member-%d", bytes)
	if d, ok := benchDocs[key]; ok {
		return d
	}
	d := NewMemberDocument(1, bytes)
	benchDocs[key] = d
	return d
}

func xmarkDoc(b *testing.B, people int) *Document {
	b.Helper()
	key := fmt.Sprintf("xmark-%d", people)
	if d, ok := benchDocs[key]; ok {
		return d
	}
	d := NewXMarkDocument(1, people)
	benchDocs[key] = d
	return d
}

func deepDoc(b *testing.B) *Document {
	b.Helper()
	if d, ok := benchDocs["deep"]; ok {
		return d
	}
	d := NewDeepDocument(1, 50_000, 15, "t1")
	benchDocs["deep"] = d
	return d
}

func runQuery(b *testing.B, q *Query, doc *Document, alg Algorithm) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Run(doc, alg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1: QE1–QE6 × {NL, TJ, SC} × document
// sizes (scaled to 0.5 and 1 MB; treebench runs the paper's 2.1–11 MB).
func BenchmarkTable1(b *testing.B) {
	sizes := []int{500_000, 1_000_000}
	for _, pq := range QEQueries {
		q := MustPrepare(pq.Query)
		for _, alg := range []Algorithm{NestedLoop, Twig, Staircase} {
			for _, sz := range sizes {
				name := fmt.Sprintf("%s/%s/%.1fMB", pq.Name, shortAlg(alg), float64(sz)/1e6)
				b.Run(name, func(b *testing.B) {
					runQuery(b, q, memberDoc(b, sz), alg)
				})
			}
		}
	}
}

// BenchmarkFigure4 regenerates Fig. 4: the FLWOR-written path with and
// without the tree-pattern rewrites, over growing XMark documents.
func BenchmarkFigure4(b *testing.B) {
	flwor := Fig4Variants()[7]
	oldQ, err := PrepareWithOptions(flwor, StandardEngineOptions)
	if err != nil {
		b.Fatal(err)
	}
	newQ := MustPrepare(flwor)
	for _, people := range []int{250, 500, 1000} {
		doc := xmarkDoc(b, people)
		b.Run(fmt.Sprintf("no-rewrite/p%d", people), func(b *testing.B) {
			runQuery(b, oldQ, doc, NestedLoop)
		})
		for _, alg := range []Algorithm{NestedLoop, Twig, Staircase} {
			b.Run(fmt.Sprintf("ttp-%s/p%d", shortAlg(alg), people), func(b *testing.B) {
				runQuery(b, newQ, doc, alg)
			})
		}
	}
}

// BenchmarkFigure6 regenerates Fig. 6: XMark queries in child form and the
// equivalent descendant form under the three algorithms.
func BenchmarkFigure6(b *testing.B) {
	doc := xmarkDoc(b, 1000)
	for _, pair := range Figure6Queries {
		for _, form := range []struct{ label, src string }{
			{"child", pair.Child}, {"desc", pair.Descendant},
		} {
			q := MustPrepare(form.src)
			for _, alg := range []Algorithm{NestedLoop, Twig, Staircase} {
				b.Run(fmt.Sprintf("%s/%s/%s", pair.Name, form.label, shortAlg(alg)), func(b *testing.B) {
					runQuery(b, q, doc, alg)
				})
			}
		}
	}
}

// BenchmarkSection53 regenerates the §5.3 table: (/t1[1])^k for k = 5, 10,
// 15 on the 50 000-node depth-15 document.
func BenchmarkSection53(b *testing.B) {
	doc := deepDoc(b)
	for _, k := range []int{5, 10, 15} {
		q := MustPrepare(Section53Query(k))
		for _, alg := range []Algorithm{NestedLoop, Twig, Staircase} {
			b.Run(fmt.Sprintf("k%d/%s", k, shortAlg(alg)), func(b *testing.B) {
				runQuery(b, q, doc, alg)
			})
		}
	}
}

// BenchmarkValidation measures the §5.1 compilation itself: all syntactic
// variants through the full pipeline.
func BenchmarkValidation(b *testing.B) {
	variants := Fig4Variants()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range variants {
			if _, err := Prepare(v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompile measures compilation time per phase-2 query shape.
func BenchmarkCompile(b *testing.B) {
	for _, pq := range Figure1Queries {
		b.Run(pq.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Prepare(pq.Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
