package xqtp

// XMarkQueries approximates the XMark benchmark queries that fall into the
// supported XQuery fragment, phrased against the auction-site documents of
// NewXMarkDocument. They exercise the engine the way the benchmark's
// workload does: point lookups, twig predicates, FLWOR joins with value
// comparisons, aggregation, and quantifiers.
var XMarkQueries = []PaperQuery{
	// XMark Q1: the name of the person with a given id (value predicate on
	// an attribute).
	{"XQ1", `for $b in $input/site/people/person[@id = "person0"] return $b/name`},
	// XMark Q2-like: the first bid (increase) of each open auction.
	{"XQ2", `for $b in $input/site/open_auctions/open_auction return $b/bidder[1]/increase`},
	// XMark Q4-like: auctions with at least two bidders.
	{"XQ4", `for $b in $input/site/open_auctions/open_auction where $b/bidder[2] return $b/itemref`},
	// XMark Q5-like: number of sales above a threshold.
	{"XQ5", `count(for $i in $input/site/closed_auctions/closed_auction where $i/price >= 40 return $i/price)`},
	// XMark Q6: number of items listed anywhere.
	{"XQ6", `count($input/site/regions//item)`},
	// XMark Q7-like: all pieces of prose (simplified to names+descriptions).
	{"XQ7", `count($input//description) + count($input//name) + count($input//emailaddress)`},
	// XMark Q8-like: for each person, the number of auctions they bought
	// (join on attribute values).
	{"XQ8", `count(for $p in $input/site/people/person, $t in $input/site/closed_auctions/closed_auction[buyer/@person = $p/@id] return $t)`},
	// XMark Q13-like: items of a region with their descriptions.
	{"XQ13", `$input/site/regions/australia/item[description]/name`},
	// XMark Q14-like: items whose description mentions a word.
	{"XQ14", `for $i in $input//item where contains($i/description, "condition") return $i/name`},
	// XMark Q17-like: people without an email address.
	{"XQ17", `for $p in $input/site/people/person where empty($p/emailaddress) return $p/name`},
	// XMark Q19-like: names of items with a quantity, anywhere.
	{"XQ19", `$input/site/regions//item[quantity]/name`},
	// XMark Q20-like: income-based partitioning via quantifiers.
	{"XQ20", `count(for $p in $input/site/people/person where some $i in $p/profile satisfies $i/@income > 50000 return $p)`},
}
