package xqtp

import (
	"fmt"
	"strings"

	"xqtp/internal/algebra"
	"xqtp/internal/compile"
	"xqtp/internal/core"
	"xqtp/internal/exec"
	"xqtp/internal/optimize"
	"xqtp/internal/parser"
	"xqtp/internal/rewrite"
)

// TraceStep is one intermediate state of the compilation pipeline.
type TraceStep struct {
	Phase string // which pass produced this state
	Repr  string // the expression/plan after the pass
}

// Trace records the evolution of a query through the rewriting and
// optimization phases — the paper's worked example (Q1a-n → Q1-tp → P1 →
// … → P5), step by step.
type Trace struct {
	Source    string
	Core      string      // after normalization
	CoreSteps []TraceStep // after each core rewriting pass that changed it
	Plan      string      // after compilation
	PlanSteps []TraceStep // after each algebraic rule application
}

// PrepareTraced compiles a query like Prepare while recording every
// intermediate rewriting state.
func PrepareTraced(query string) (*Query, *Trace, error) {
	tr := &Trace{Source: query}
	surface, err := parser.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	normalized, err := core.Normalize(surface, "dot")
	if err != nil {
		return nil, nil, err
	}
	tr.Core = core.String(normalized)
	free := freeVariables(normalized)
	singletons := map[string]bool{}
	for _, v := range free {
		singletons[v] = true
	}
	rewritten := rewrite.Rewrite(normalized, rewrite.Options{
		SingletonVars: singletons,
		Trace: func(phase string, e core.Expr) {
			tr.CoreSteps = append(tr.CoreSteps, TraceStep{Phase: phase, Repr: core.String(e)})
		},
	})
	plan, err := compile.Compile(rewritten)
	if err != nil {
		return nil, nil, err
	}
	tr.Plan = algebra.String(plan)
	optimized := optimize.Optimize(plan, optimize.Options{
		SingletonVars: singletons,
		Trace: func(step int, p algebra.Expr) {
			tr.PlanSteps = append(tr.PlanSteps, TraceStep{
				Phase: fmt.Sprintf("rule %d", step),
				Repr:  algebra.String(p),
			})
		},
	})
	q := &Query{
		Source:    query,
		surface:   surface,
		coreExpr:  normalized,
		rewritten: rewritten,
		plan:      plan,
		optimized: optimized,
		freeVars:  free,
		preps:     exec.NewPrepCache(),
	}
	return q, tr, nil
}

// String renders the trace, skipping consecutive identical states.
func (tr *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n\nnormalized core:\n  %s\n", tr.Source, tr.Core)
	prev := tr.Core
	fmt.Fprintf(&b, "\ncore rewriting:\n")
	for _, s := range tr.CoreSteps {
		if s.Repr == prev {
			continue
		}
		prev = s.Repr
		fmt.Fprintf(&b, "  [%-12s] %s\n", s.Phase, s.Repr)
	}
	fmt.Fprintf(&b, "\ncompiled plan:\n  %s\n", tr.Plan)
	fmt.Fprintf(&b, "\nalgebraic optimization:\n")
	prev = tr.Plan
	for _, s := range tr.PlanSteps {
		if s.Repr == prev {
			continue
		}
		prev = s.Repr
		fmt.Fprintf(&b, "  [%-8s] %s\n", s.Phase, s.Repr)
	}
	return b.String()
}
