package xqtp

import (
	"strings"
	"testing"
)

// The ablation knobs change plan shapes but never results.
func TestAblationsPreserveSemantics(t *testing.T) {
	doc, err := LoadXMLString(personDoc)
	if err != nil {
		t.Fatal(err)
	}
	deep := NewDeepDocument(9, 3000, 10, "t1")
	cases := []struct {
		query string
		docs  *Document
	}{
		{`$d//person[emailaddress]/name`, doc},
		{`$d//person[1]/name`, doc},
		{`for $x in $d//person[emailaddress] return $x/name`, doc},
		{`/t1[1]/t1[1]/t1[1]`, deep},
	}
	ablations := []CompileOptions{
		{TreePatterns: true, Rewrites: true, ContextVar: "dot", DisablePositionalFirst: true},
		{TreePatterns: true, Rewrites: true, ContextVar: "dot", DisableBulkConversion: true},
		{TreePatterns: true, Rewrites: true, ContextVar: "dot", DisablePositionalFirst: true, DisableBulkConversion: true},
	}
	for _, tc := range cases {
		ref := MustPrepare(tc.query)
		want, err := ref.Run(tc.docs, Staircase)
		if err != nil {
			t.Fatal(err)
		}
		for ai, opts := range ablations {
			q, err := PrepareWithOptions(tc.query, opts)
			if err != nil {
				t.Fatalf("%s ablation %d: %v", tc.query, ai, err)
			}
			for _, alg := range []Algorithm{NestedLoop, Twig, Staircase, Auto} {
				got, err := q.Run(tc.docs, alg)
				if err != nil {
					t.Fatalf("%s ablation %d (%v): %v", tc.query, ai, alg, err)
				}
				if strings.Join(values(t, want), "|") != strings.Join(values(t, got), "|") {
					t.Errorf("%s ablation %d (%v): results differ", tc.query, ai, alg)
				}
			}
		}
	}
}

// Disabling the positional-first rewrite removes Head operators.
func TestAblationPositionalFirstShape(t *testing.T) {
	on := MustPrepare(`/t1[1]/t1[1]`)
	off, err := PrepareWithOptions(`/t1[1]/t1[1]`,
		CompileOptions{TreePatterns: true, Rewrites: true, ContextVar: "dot", DisablePositionalFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Operators()["Head"] == 0 {
		t.Errorf("positional-first did not fire: %s", on.Plan())
	}
	if off.Operators()["Head"] != 0 {
		t.Errorf("ablation left Head operators: %s", off.Plan())
	}
	if off.Operators()["MapIndex"] == 0 || off.Operators()["Select"] == 0 {
		t.Errorf("ablation should keep MapIndex/Select: %s", off.Plan())
	}
}

// Disabling bulk conversion forces per-tuple patterns (every TupleTreePattern
// reads IN).
func TestAblationBulkShape(t *testing.T) {
	off, err := PrepareWithOptions(Fig4Query,
		CompileOptions{TreePatterns: true, Rewrites: true, ContextVar: "dot", DisableBulkConversion: true})
	if err != nil {
		t.Fatal(err)
	}
	ops := off.Operators()
	if ops["TupleTreePattern"] < 2 {
		t.Errorf("bulk ablation should leave multiple per-step patterns, got %d:\n%s",
			ops["TupleTreePattern"], off.Plan())
	}
	if ops["IN"] == 0 {
		t.Errorf("bulk ablation should produce per-tuple (IN) patterns:\n%s", off.Plan())
	}
}

// Auto runs every Fig. 1 query correctly.
func TestAutoAlgorithm(t *testing.T) {
	doc, err := LoadXMLString(personDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, pq := range Figure1Queries {
		q := MustPrepare(pq.Query)
		want, err := q.Run(doc, Staircase)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Run(doc, Auto)
		if err != nil {
			t.Fatalf("%s (Auto): %v", pq.Name, err)
		}
		if strings.Join(values(t, want), "|") != strings.Join(values(t, got), "|") {
			t.Errorf("%s: Auto disagrees with Staircase", pq.Name)
		}
	}
}
