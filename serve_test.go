package xqtp

import (
	"fmt"
	"sync"
	"testing"
)

// Concurrent serving from cached plans must produce the sequential results:
// many goroutines share one document, one plan cache, and each query's
// prepared-pattern cache (run with -race to validate the synchronization).
func TestConcurrentServing(t *testing.T) {
	doc := NewXMarkDocument(3, 200)
	cache := NewPlanCache(16)
	sources := make([]string, 0, len(Figure6Queries)*2)
	for _, pair := range Figure6Queries {
		sources = append(sources, pair.Child, pair.Descendant)
	}
	want := make(map[string][]string)
	for _, src := range sources {
		q, err := cache.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		items, err := q.Run(doc, Auto)
		if err != nil {
			t.Fatal(err)
		}
		strs := make([]string, len(items))
		for i, it := range items {
			strs[i] = SerializeItem(it)
		}
		want[src] = strs
	}
	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				src := sources[(g+r)%len(sources)]
				alg := Algorithms[(g+r)%len(Algorithms)]
				q, err := cache.Prepare(src)
				if err != nil {
					errs <- err
					return
				}
				items, err := q.Run(doc, alg)
				if err != nil {
					errs <- fmt.Errorf("%s/%v: %w", src, alg, err)
					return
				}
				exp := want[src]
				if len(items) != len(exp) {
					errs <- fmt.Errorf("%s/%v: got %d items, want %d", src, alg, len(items), len(exp))
					return
				}
				for i, it := range items {
					if SerializeItem(it) != exp[i] {
						errs <- fmt.Errorf("%s/%v: item %d differs", src, alg, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("plan cache saw no hits: %+v", st)
	}
}

func TestPlanCacheSharesQueries(t *testing.T) {
	cache := NewPlanCache(4)
	q1, err := cache.Prepare(`$d//person/name`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := cache.Prepare(`$d//person/name`)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatalf("same query text compiled twice")
	}
	// "" normalizes to the default context variable: one entry, not two.
	opts := DefaultOptions
	opts.ContextVar = ""
	q3, err := cache.PrepareWithOptions(`$d//person/name`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if q3 != q1 {
		t.Fatalf("ContextVar \"\" and \"dot\" compiled separately")
	}
	st := cache.Stats()
	if st.Size != 1 || st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want size 1, 1 miss, 2 hits", st)
	}
	// Distinct options are distinct plans.
	if _, err := cache.PrepareWithOptions(`$d//person/name`, StandardEngineOptions); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Size != 2 {
		t.Fatalf("distinct options shared an entry: %+v", st)
	}
}

func TestPlanCacheEvictsLRU(t *testing.T) {
	cache := NewPlanCache(2)
	mk := func(i int) string { return fmt.Sprintf(`$d//person/name[%d]`, i) }
	for i := 1; i <= 2; i++ {
		if _, err := cache.Prepare(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 is the LRU entry, then insert 3 to evict 2.
	if _, err := cache.Prepare(mk(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Prepare(mk(3)); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2, 1 eviction", st)
	}
	// 1 survived (hit), 2 was evicted (miss).
	if _, err := cache.Prepare(mk(1)); err != nil {
		t.Fatal(err)
	}
	if hits := cache.Stats().Hits; hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if _, err := cache.Prepare(mk(2)); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (entry 2 was evicted)", st.Misses)
	}
	cache.Reset()
	if st := cache.Stats(); st.Size != 0 || st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Fatalf("Reset left state: %+v", st)
	}
}
