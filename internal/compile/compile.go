// Package compile lowers rewritten XQuery Core expressions into the tuple
// algebra, following the compilation scheme of the Galax algebraic compiler
// (Re, Siméon, Fernández, ICDE 2006) that the paper builds on: for-loops
// become MapFromItem/MapToItem pipelines, where clauses become Select,
// positional variables become MapIndex, and axis steps become TreeJoin. The
// output for Q1-tp is exactly the paper's plan P1.
package compile

import (
	"fmt"

	"xqtp/internal/algebra"
	"xqtp/internal/core"
	"xqtp/internal/xdm"
)

// Compile lowers a core expression to an algebraic plan. Variables bound by
// for/let inside the expression become tuple-field accesses (IN#x); free
// variables become engine-environment references ($x).
func Compile(e core.Expr) (algebra.Expr, error) {
	return compile(e, map[string]bool{})
}

func compile(e core.Expr, bound map[string]bool) (algebra.Expr, error) {
	switch x := e.(type) {
	case *core.Var:
		if bound[x.Name] {
			return &algebra.Field{Name: x.Name}, nil
		}
		return &algebra.VarRef{Name: x.Name}, nil

	case *core.StringLit:
		return &algebra.Const{Item: xdm.String(x.Value)}, nil

	case *core.NumberLit:
		if x.IsInt {
			return &algebra.Const{Item: xdm.Integer(int64(x.Value))}, nil
		}
		return &algebra.Const{Item: xdm.Float(x.Value)}, nil

	case *core.EmptySeq:
		return &algebra.EmptySeq{}, nil

	case *core.Step:
		in, err := compile(x.Input, bound)
		if err != nil {
			return nil, err
		}
		return &algebra.TreeJoin{Axis: x.Axis, Test: x.Test, Input: in}, nil

	case *core.For:
		return compileFor(x, bound)

	case *core.Let:
		val, err := compile(x.In, bound)
		if err != nil {
			return nil, err
		}
		body, err := compile(x.Return, with(bound, x.Var))
		if err != nil {
			return nil, err
		}
		return &algebra.LetBind{Name: x.Var, Value: val, Body: body}, nil

	case *core.If:
		cond, err := compile(x.Cond, bound)
		if err != nil {
			return nil, err
		}
		then, err := compile(x.Then, bound)
		if err != nil {
			return nil, err
		}
		els, err := compile(x.Else, bound)
		if err != nil {
			return nil, err
		}
		return &algebra.If{Cond: cond, Then: then, Else: els}, nil

	case *core.TypeSwitch:
		return compileTypeSwitch(x, bound)

	case *core.Call:
		args := make([]algebra.Expr, len(x.Args))
		for i, a := range x.Args {
			c, err := compile(a, bound)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		return &algebra.Call{Name: x.Name, Args: args}, nil

	case *core.Compare:
		l, err := compile(x.L, bound)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.R, bound)
		if err != nil {
			return nil, err
		}
		return &algebra.Compare{Op: x.Op, L: l, R: r}, nil

	case *core.Sequence:
		out := &algebra.Sequence{Items: make([]algebra.Expr, len(x.Items))}
		for i, it := range x.Items {
			c, err := compile(it, bound)
			if err != nil {
				return nil, err
			}
			out.Items[i] = c
		}
		return out, nil

	case *core.Arith:
		l, err := compile(x.L, bound)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.R, bound)
		if err != nil {
			return nil, err
		}
		return &algebra.Arith{Op: x.Op, L: l, R: r}, nil

	case *core.And:
		l, err := compile(x.L, bound)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.R, bound)
		if err != nil {
			return nil, err
		}
		return &algebra.And{L: l, R: r}, nil

	case *core.Or:
		l, err := compile(x.L, bound)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.R, bound)
		if err != nil {
			return nil, err
		}
		return &algebra.Or{L: l, R: r}, nil
	}
	return nil, fmt.Errorf("compile: cannot compile %T", e)
}

// compileFor produces the map pipeline
//
//	MapToItem{Return'}(Select{Where'}(MapIndex[pos](MapFromItem{[x : IN]}(In'))))
//
// with Select/MapIndex present only when the loop has a where clause or a
// positional variable.
func compileFor(f *core.For, bound map[string]bool) (algebra.Expr, error) {
	in, err := compile(f.In, bound)
	if err != nil {
		return nil, err
	}
	inner := with(bound, f.Var)
	var plan algebra.Expr = &algebra.MapFromItem{Bind: f.Var, Input: in}
	if f.Pos != "" {
		inner = with(inner, f.Pos)
		plan = &algebra.MapIndex{Field: f.Pos, Input: plan}
	}
	if f.Where != nil {
		pred, err := compile(f.Where, inner)
		if err != nil {
			return nil, err
		}
		plan = &algebra.Select{Pred: ensureBoolean(f.Where, pred), Input: plan}
	}
	dep, err := compile(f.Return, inner)
	if err != nil {
		return nil, err
	}
	return &algebra.MapToItem{Dep: dep, Input: plan}, nil
}

func compileTypeSwitch(ts *core.TypeSwitch, bound map[string]bool) (algebra.Expr, error) {
	in, err := compile(ts.Input, bound)
	if err != nil {
		return nil, err
	}
	out := &algebra.TypeSwitch{Input: in, DefVar: ts.DefVar}
	for _, c := range ts.Cases {
		if c.Type != core.TypeNumeric {
			return nil, fmt.Errorf("compile: unsupported typeswitch case %s", c.Type)
		}
		body, err := compile(c.Body, with(bound, c.Var))
		if err != nil {
			return nil, err
		}
		out.Cases = append(out.Cases, algebra.TSCase{Type: "numeric", Var: c.Var, Body: body})
	}
	def, err := compile(ts.Default, with(bound, ts.DefVar))
	if err != nil {
		return nil, err
	}
	out.Default = def
	return out, nil
}

// ensureBoolean wraps a compiled predicate in fn:boolean unless the core
// expression is already boolean-valued (the shape of the paper's Select
// predicates: fn:boolean(TreeJoin…) for existence, a bare comparison for
// value predicates).
func ensureBoolean(orig core.Expr, compiled algebra.Expr) algebra.Expr {
	switch x := orig.(type) {
	case *core.Compare, *core.And, *core.Or:
		return compiled
	case *core.Call:
		switch x.Name {
		case "boolean", "not", "empty", "exists", "true", "false":
			return compiled
		}
	}
	return &algebra.Call{Name: "boolean", Args: []algebra.Expr{compiled}}
}

func with(bound map[string]bool, name string) map[string]bool {
	out := make(map[string]bool, len(bound)+1)
	for k := range bound {
		out[k] = true
	}
	if name != "" {
		out[name] = true
	}
	return out
}
