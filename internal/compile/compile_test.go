package compile

import (
	"strings"
	"testing"

	"xqtp/internal/algebra"
	"xqtp/internal/core"
	"xqtp/internal/parser"
	"xqtp/internal/rewrite"
	"xqtp/internal/xdm"
)

func compileQuery(t *testing.T, q string) algebra.Expr {
	t.Helper()
	e, err := parser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Normalize(e, "dot")
	if err != nil {
		t.Fatal(err)
	}
	c = rewrite.Rewrite(c, rewrite.Options{SingletonVars: map[string]bool{"d": true, "dot": true}})
	p, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The compiled plan for Q1-tp is the paper's P1: map operators, TreeJoins
// on tuple fields, a boolean Select, one surrounding ddo.
func TestQ1CompilesToP1(t *testing.T) {
	p := compileQuery(t, `$d//person[emailaddress]/name`)
	s := algebra.String(p)
	top, ok := p.(*algebra.Call)
	if !ok || top.Name != "ddo" {
		t.Fatalf("top is %T, want fs:ddo: %s", p, s)
	}
	mti, ok := top.Args[0].(*algebra.MapToItem)
	if !ok {
		t.Fatalf("below ddo: %T", top.Args[0])
	}
	tj, ok := mti.Dep.(*algebra.TreeJoin)
	if !ok || tj.Test.Name != "name" {
		t.Fatalf("outer dep: %s", algebra.String(mti.Dep))
	}
	if _, ok := tj.Input.(*algebra.Field); !ok {
		t.Fatalf("TreeJoin input is %T, want Field", tj.Input)
	}
	if !strings.Contains(s, "Select{fn:boolean(TreeJoin[child::emailaddress]") {
		t.Errorf("Select predicate shape wrong: %s", s)
	}
	if !strings.Contains(s, "MapFromItem") {
		t.Errorf("missing MapFromItem: %s", s)
	}
}

// Comparisons compile without an fn:boolean wrapper (the paper's Q2 Select).
func TestComparisonPredicateNotWrapped(t *testing.T) {
	p := compileQuery(t, `$d//person[name = "John"]/emailaddress`)
	s := algebra.String(p)
	if strings.Contains(s, `boolean(TreeJoin[child::name](IN#`) {
		t.Errorf("comparison wrongly wrapped in boolean: %s", s)
	}
	if !strings.Contains(s, `= "John"`) {
		t.Errorf("comparison lost: %s", s)
	}
}

// Positional loops compile to MapIndex.
func TestPositionalCompilesToMapIndex(t *testing.T) {
	p := compileQuery(t, `$d//person[1]`)
	counts := algebra.CountOperators(p)
	if counts["MapIndex"] != 1 {
		t.Errorf("MapIndex = %d: %s", counts["MapIndex"], algebra.String(p))
	}
}

// Free variables compile to engine references; bound ones to fields.
func TestVarCompilation(t *testing.T) {
	p := compileQuery(t, `for $x in $d/a return $x/b`)
	counts := algebra.CountOperators(p)
	if counts["Var"] != 1 {
		t.Errorf("free var refs = %d", counts["Var"])
	}
	if counts["Field"] == 0 {
		t.Errorf("no field refs: %s", algebra.String(p))
	}
}

// Residual lets and typeswitches compile to LetBind/TypeSwitch.
func TestResidualLetAndTypeSwitch(t *testing.T) {
	// A multi-use let survives rewriting.
	lets := &core.Let{
		Var: "x",
		In:  &core.StringLit{Value: "v"},
		Return: &core.Compare{Op: xdm.OpEq,
			L: &core.Var{Name: "x"}, R: &core.Var{Name: "x"}},
	}
	p, err := Compile(lets)
	if err != nil {
		t.Fatal(err)
	}
	if algebra.CountOperators(p)["LetBind"] != 1 {
		t.Errorf("LetBind missing: %s", algebra.String(p))
	}
	// An unknown-typed predicate keeps its typeswitch.
	e, err := parser.Parse(`$d//person[$k]/name`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Normalize(e, "dot")
	if err != nil {
		t.Fatal(err)
	}
	c = rewrite.Rewrite(c, rewrite.Options{SingletonVars: map[string]bool{"d": true}})
	p2, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if algebra.CountOperators(p2)["TypeSwitch"] != 1 {
		t.Errorf("TypeSwitch missing: %s", algebra.String(p2))
	}
}

// If expressions (where after let) compile.
func TestIfCompilation(t *testing.T) {
	p := compileQuery(t, `for $x in $d/a let $n := $x/b where $n = "q" return $n`)
	if algebra.CountOperators(p)["If"] == 0 {
		t.Errorf("If missing: %s", algebra.String(p))
	}
}
