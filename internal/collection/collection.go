// Package collection is the corpus layer: a sharded store of many XML
// documents behind one query surface. A Corpus ingests documents
// concurrently (bounded worker pool over the fused xmlstore scanner, each
// member's index and symbol table built during its parse), assigns the
// members a contiguous block of tree IDs in corpus order so cross-document
// ordering is deterministic regardless of ingest scheduling, interns every
// member tag into a corpus-level name table (query symbol → per-document
// symbol id), and fans query evaluation out across the members on a worker
// pool, merging per-document results back in stable corpus order through a
// bounded channel.
//
// A Corpus is immutable after construction and safe for concurrent use;
// Extend builds a new snapshot sharing the existing members, so readers of
// the old corpus are never disturbed by growth.
package collection

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// ErrClosed reports use of a corpus after Close. It is the same value as
// xmlstore.ErrSnapshotClosed, so errors.Is matches whichever layer detected
// the closed store.
var ErrClosed = xmlstore.ErrSnapshotClosed

// Doc is one corpus member: a parsed document with its index, addressed by
// URI.
type Doc struct {
	URI   string
	Index *xmlstore.Index
}

// Tree returns the member's document tree.
func (d *Doc) Tree() *xdm.Tree { return d.Index.Tree }

// Root returns the member's document node, materializing a snapshot-loaded
// member's pointer data model on first use.
func (d *Doc) Root() *xdm.Node { return d.Index.Tree.RootNode() }

// Ensure forces a deferred snapshot member's parse + validation (no-op for
// ingested members and already-loaded ones). The error-returning twin of
// Root: fan-out evaluation calls it before touching the member so a corrupt
// member becomes a per-query error.
func (d *Doc) Ensure() error { return d.Index.Ensure() }

// Corpus is an immutable snapshot of a document collection. Member order is
// the corpus order: ascending tree IDs, which makes it coincide with
// cross-document document order (xdm.CompareOrder ranks documents by ID) —
// the invariant behind every determinism guarantee of the fan-out executor
// and of fn:collection().
type Corpus struct {
	docs   []*Doc
	byURI  map[string]int
	byTree map[*xdm.Tree]int
	// catalog registers every member index so any engine run against the
	// corpus resolves indexes without rebuilding them.
	catalog *xmlstore.Catalog
	names   *NameTable
	// epoch counts the Extend steps behind this snapshot: a freshly ingested
	// or snapshot-loaded corpus is epoch 0, and each Extend returns a corpus
	// one epoch later. The pair (corpus name, epoch) is what result caches
	// key on — swapping in an extended corpus changes the epoch, so every
	// cached answer computed against the old membership stops matching.
	epoch uint64
	// roots is the memoized fn:collection() result: every member's document
	// node in corpus order. Built on first ResolveCollection rather than at
	// assembly, because gathering the document nodes forces materialization
	// of every member — which would make opening a corpus snapshot pay for
	// all the Node structs the open was designed to defer.
	roots     xdm.Sequence
	rootsErr  error
	rootsOnce sync.Once

	// mapping is the file mapping behind a corpus opened with
	// OpenSnapshotFile; nil for ingested and in-memory-snapshot corpora.
	// Close releases it.
	mapping *xmlstore.Mapping
	closed  atomic.Bool
}

// Close poisons the corpus and releases its file mapping (if any). After
// Close every run/resolve entry point returns ErrClosed; a second Close
// returns ErrClosed too. Closing while queries are in flight is a caller
// bug (the os.File contract): the entry-point checks catch sequential
// use-after-close, not races.
func (c *Corpus) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	if c.mapping != nil {
		return c.mapping.Close()
	}
	return nil
}

// Closed reports whether Close has been called.
func (c *Corpus) Closed() bool { return c.closed.Load() }

// Mapping returns the file mapping behind the corpus (nil unless opened
// with OpenSnapshotFile).
func (c *Corpus) Mapping() *xmlstore.Mapping { return c.mapping }

// closedErr is the entry-point check used by every run/resolve path.
func (c *Corpus) closedErr() error {
	if c.closed.Load() {
		return ErrClosed
	}
	return nil
}

// New builds a corpus from already-ingested members. Members are sorted by
// tree ID (load order) to establish the corpus-order invariant; duplicate
// URIs are rejected. The given slice is not retained.
func New(docs []*Doc) (*Corpus, error) {
	members := make([]*Doc, len(docs))
	copy(members, docs)
	sort.SliceStable(members, func(i, j int) bool {
		return members[i].Tree().ID < members[j].Tree().ID
	})
	return assemble(members)
}

// assemble builds the corpus structures over a member slice already in
// ascending tree-ID order, deriving the name table from scratch.
func assemble(members []*Doc) (*Corpus, error) {
	return assembleWith(members, nil)
}

// assembleWith is assemble with an already-built name table (Extend grows
// the previous corpus's table incrementally; the snapshot loader decodes a
// stored one). names nil falls back to a full build.
func assembleWith(members []*Doc, names *NameTable) (*Corpus, error) {
	c := &Corpus{
		docs:    members,
		byURI:   make(map[string]int, len(members)),
		byTree:  make(map[*xdm.Tree]int, len(members)),
		catalog: xmlstore.NewCatalog(),
	}
	for i, d := range members {
		if d.Index == nil {
			return nil, fmt.Errorf("collection: member %q has no index", d.URI)
		}
		if prev, ok := c.byURI[d.URI]; ok {
			return nil, fmt.Errorf("collection: duplicate URI %q (members %d and %d)", d.URI, prev, i)
		}
		c.byURI[d.URI] = i
		c.byTree[d.Tree()] = i
		c.catalog.Register(d.Index)
	}
	if names == nil {
		names = buildNameTable(members)
	}
	c.names = names
	return c, nil
}

// Len returns the number of member documents.
func (c *Corpus) Len() int { return len(c.docs) }

// Doc returns member i in corpus order.
func (c *Corpus) Doc(i int) *Doc { return c.docs[i] }

// Docs returns the members in corpus order. The slice is shared: callers
// must not modify it.
func (c *Corpus) Docs() []*Doc { return c.docs }

// ByURI resolves a member by URI.
func (c *Corpus) ByURI(uri string) (*Doc, bool) {
	i, ok := c.byURI[uri]
	if !ok {
		return nil, false
	}
	return c.docs[i], true
}

// ByTree resolves the member holding the given tree (attributing a result
// node back to its document).
func (c *Corpus) ByTree(t *xdm.Tree) (*Doc, bool) {
	i, ok := c.byTree[t]
	if !ok {
		return nil, false
	}
	return c.docs[i], true
}

// Catalog returns the corpus catalog, with every member index registered.
func (c *Corpus) Catalog() *xmlstore.Catalog { return c.catalog }

// Names returns the corpus-level name table.
func (c *Corpus) Names() *NameTable { return c.names }

// Epoch returns the corpus's extension epoch: 0 for a freshly built or
// loaded corpus, the parent's epoch plus one for an Extend result.
func (c *Corpus) Epoch() uint64 { return c.epoch }

// ResolveDoc implements xdm.DocResolver: fn:doc($uri).
func (c *Corpus) ResolveDoc(uri string) (*xdm.Node, error) {
	if err := c.closedErr(); err != nil {
		return nil, err
	}
	d, ok := c.ByURI(uri)
	if !ok {
		return nil, fmt.Errorf("doc(%q): no such document in the collection", uri)
	}
	if err := d.Ensure(); err != nil {
		return nil, err
	}
	return d.Root(), nil
}

// ResolveCollection implements xdm.DocResolver: fn:collection(). The empty
// name is the default collection — every member document node, in corpus
// order (already document order by the tree-ID invariant).
func (c *Corpus) ResolveCollection(name string) (xdm.Sequence, error) {
	if name != "" {
		return nil, fmt.Errorf("collection(%q): no such collection (only the default collection is defined)", name)
	}
	if err := c.closedErr(); err != nil {
		return nil, err
	}
	c.rootsOnce.Do(func() {
		roots := make(xdm.Sequence, len(c.docs))
		for i, d := range c.docs {
			if err := d.Ensure(); err != nil {
				c.rootsErr = err
				return
			}
			roots[i] = d.Root()
		}
		c.roots = roots
	})
	if c.rootsErr != nil {
		return nil, c.rootsErr
	}
	return c.roots, nil
}

// SizeBytes returns the total serialized size of the corpus members.
func (c *Corpus) SizeBytes() int {
	total := 0
	for _, d := range c.docs {
		total += len(xmlstore.AppendXML(nil, d.Root()))
	}
	return total
}

// NumNodes returns the total node count across members. Deferred snapshot
// members answer from their section directory, so this never forces loads.
func (c *Corpus) NumNodes() int {
	total := 0
	for _, d := range c.docs {
		total += d.Index.NumNodes()
	}
	return total
}
