package collection

import (
	"io"

	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// WriteSnapshot serializes the corpus in the columnar snapshot format:
// every member's region columns, symbol table and rank streams, plus the
// corpus name table, in corpus order. Loading the result (OpenSnapshot)
// rebuilds none of them.
func (c *Corpus) WriteSnapshot(w io.Writer) error {
	if err := c.closedErr(); err != nil {
		return err
	}
	uris := make([]string, len(c.docs))
	ixs := make([]*xmlstore.Index, len(c.docs))
	for i, d := range c.docs {
		uris[i] = d.URI
		ixs[i] = d.Index
	}
	names := c.names.Names()
	cells := make([]xdm.Sym, len(names)*len(c.docs))
	for i, name := range names {
		col := c.names.byName[name]
		copy(cells[i*len(c.docs):], col)
	}
	return xmlstore.WriteCorpus(w, &xmlstore.CorpusSnapshot{
		URIs:     uris,
		Indexes:  ixs,
		Names:    names,
		NameSyms: cells,
	})
}

// OpenSnapshot deserializes a corpus written by WriteSnapshot. It takes
// ownership of data: the members' strings, columns and streams alias the
// buffer, so the caller must not modify it afterwards. The members get a
// fresh contiguous tree-ID block in stored order, re-establishing the
// corpus-order invariant exactly as parallel ingest does; the name table
// comes from the snapshot, so no member symbol table is re-walked.
func OpenSnapshot(data []byte) (*Corpus, error) {
	s, err := xmlstore.OpenCorpus(data)
	if err != nil {
		return nil, err
	}
	return fromSnapshot(s)
}

// OpenSnapshotDeferred is OpenSnapshot without the member loads: members
// parse and validate themselves the first time a query touches them.
func OpenSnapshotDeferred(data []byte) (*Corpus, error) {
	s, err := xmlstore.OpenCorpusDeferred(data)
	if err != nil {
		return nil, err
	}
	return fromSnapshot(s)
}

// OpenSnapshotFile maps the snapshot file and opens it deferred: the O(open)
// path. Only the header, offset table and corpus tables are read; member
// pages fault in as queries touch them, so a corpus larger than RAM stays
// queryable. The corpus owns the mapping — Close releases it.
func OpenSnapshotFile(path string) (*Corpus, error) {
	m, err := xmlstore.MapFile(path)
	if err != nil {
		return nil, err
	}
	s, err := xmlstore.OpenCorpusMapping(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	c, err := fromSnapshot(s)
	if err != nil {
		m.Close()
		return nil, err
	}
	c.mapping = m
	return c, nil
}

func fromSnapshot(s *xmlstore.CorpusSnapshot) (*Corpus, error) {
	docs := make([]*Doc, len(s.Indexes))
	for i, ix := range s.Indexes {
		docs[i] = &Doc{URI: s.URIs[i], Index: ix}
	}
	xdm.AssignTreeIDs(trees(docs))
	return assembleWith(docs, nameTableFromSnapshot(s))
}

// nameTableFromSnapshot decodes the flat row-major name-table cells back
// into the per-name column map.
func nameTableFromSnapshot(s *xmlstore.CorpusSnapshot) *NameTable {
	nt := &NameTable{
		byName: make(map[string][]xdm.Sym, len(s.Names)),
		ndocs:  len(s.Indexes),
	}
	for i, name := range s.Names {
		col := make([]xdm.Sym, nt.ndocs)
		copy(col, s.NameSyms[i*nt.ndocs:(i+1)*nt.ndocs])
		nt.byName[name] = col
	}
	return nt
}
