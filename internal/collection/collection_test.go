package collection

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xqtp/internal/xdm"
)

// genSources builds n small documents with per-document distinguishable
// content: document i carries <id>i</id> and a tag unique to i%3.
func genSources(n int) []Source {
	out := make([]Source, n)
	for i := 0; i < n; i++ {
		var b strings.Builder
		fmt.Fprintf(&b, "<doc><id>%d</id>", i)
		switch i % 3 {
		case 0:
			b.WriteString("<alpha/>")
		case 1:
			b.WriteString("<beta/>")
		case 2:
			b.WriteString("<gamma/>")
		}
		b.WriteString("</doc>")
		out[i] = Source{URI: fmt.Sprintf("mem://doc-%03d.xml", i), Data: []byte(b.String())}
	}
	return out
}

func TestIngestOrderDeterminism(t *testing.T) {
	sources := genSources(50)
	for _, workers := range []int{1, 4, 16} {
		c, err := Ingest(sources, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if c.Len() != len(sources) {
			t.Fatalf("workers=%d: got %d members, want %d", workers, c.Len(), len(sources))
		}
		prevID := 0
		for i, d := range c.Docs() {
			if d.URI != sources[i].URI {
				t.Fatalf("workers=%d: member %d is %q, want %q", workers, i, d.URI, sources[i].URI)
			}
			if id := d.Tree().ID; id <= prevID {
				t.Fatalf("workers=%d: member %d tree ID %d not ascending after %d", workers, i, id, prevID)
			} else {
				prevID = id
			}
		}
	}
}

func TestResolveDocAndCollection(t *testing.T) {
	c, err := Ingest(genSources(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.ResolveDoc("mem://doc-003.xml")
	if err != nil {
		t.Fatal(err)
	}
	if n != c.Doc(3).Root() {
		t.Fatal("ResolveDoc returned the wrong document node")
	}
	if _, err := c.ResolveDoc("mem://missing.xml"); err == nil {
		t.Fatal("ResolveDoc of a missing URI should fail")
	}
	seq, err := c.ResolveCollection("")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 5 {
		t.Fatalf("default collection has %d items, want 5", len(seq))
	}
	for i, it := range seq {
		if it != c.Doc(i).Root() {
			t.Fatalf("collection item %d is not member %d's root", i, i)
		}
	}
	if _, err := c.ResolveCollection("named"); err == nil {
		t.Fatal("named collections are not defined and should fail")
	}
}

func TestDuplicateURIRejected(t *testing.T) {
	sources := genSources(3)
	sources[2].URI = sources[0].URI
	if _, err := Ingest(sources, 2); err == nil {
		t.Fatal("duplicate URI should be rejected")
	}
}

func TestIngestErrorIsDeterministic(t *testing.T) {
	sources := genSources(20)
	sources[7].Data = []byte("<broken")
	sources[13].Data = []byte("<also-broken")
	for _, workers := range []int{1, 8} {
		_, err := Ingest(sources, workers)
		if err == nil {
			t.Fatalf("workers=%d: malformed member should fail ingest", workers)
		}
		if !strings.Contains(err.Error(), "doc-007") {
			t.Fatalf("workers=%d: error should name the first bad source, got: %v", workers, err)
		}
	}
}

func TestNameTable(t *testing.T) {
	c, err := Ingest(genSources(9), 3)
	if err != nil {
		t.Fatal(err)
	}
	nt := c.Names()
	if got := nt.DocsWith("doc"); got != 9 {
		t.Fatalf("DocsWith(doc) = %d, want 9", got)
	}
	if got := nt.DocsWith("alpha"); got != 3 {
		t.Fatalf("DocsWith(alpha) = %d, want 3", got)
	}
	if got := nt.DocsWith("nosuch"); got != 0 {
		t.Fatalf("DocsWith(nosuch) = %d, want 0", got)
	}
	for i := 0; i < 9; i++ {
		wantAlpha := i%3 == 0
		if nt.Has("alpha", i) != wantAlpha {
			t.Fatalf("Has(alpha, %d) = %v, want %v", i, !wantAlpha, wantAlpha)
		}
		// The per-document symbol must agree with the member's own table.
		s := nt.Sym("id", i)
		if want, ok := c.Doc(i).Tree().Syms.Lookup("id"); !ok || s != want {
			t.Fatalf("Sym(id, %d) = %v, want %v", i, s, want)
		}
		if !nt.HasAll(i, []string{"doc", "id"}) {
			t.Fatalf("HasAll(doc,id) false for member %d", i)
		}
		if nt.HasAll(i, []string{"doc", "nosuch"}) {
			t.Fatalf("HasAll with a missing name true for member %d", i)
		}
	}
}

// perDocSeq is a synthetic evaluation: a one-item sequence naming the member.
func perDocSeq(d *Doc) (xdm.Sequence, error) {
	return xdm.Sequence{xdm.String(d.URI)}, nil
}

func TestRunAllMergeOrder(t *testing.T) {
	c, err := Ingest(genSources(40), 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.RunAll(1, nil, perDocSeq)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 64} {
		got, err := c.RunAll(workers, nil, perDocSeq)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d items, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunAllSkip(t *testing.T) {
	c, err := Ingest(genSources(12), 4)
	if err != nil {
		t.Fatal(err)
	}
	skip := func(doc int) bool { return doc%2 == 1 }
	for _, workers := range []int{1, 4} {
		got, err := c.RunAll(workers, skip, perDocSeq)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 6 {
			t.Fatalf("workers=%d: %d items after skip, want 6", workers, len(got))
		}
		for i, it := range got {
			if want := xdm.String(c.Doc(2 * i).URI); it != want {
				t.Fatalf("workers=%d: item %d = %v, want %v", workers, i, it, want)
			}
		}
	}
}

func TestRunAllError(t *testing.T) {
	c, err := Ingest(genSources(20), 4)
	if err != nil {
		t.Fatal(err)
	}
	evalErr := func(d *Doc) (xdm.Sequence, error) {
		if strings.Contains(d.URI, "doc-011") {
			return nil, fmt.Errorf("poisoned")
		}
		return perDocSeq(d)
	}
	for _, workers := range []int{1, 8} {
		if _, err := c.RunAll(workers, nil, evalErr); err == nil {
			t.Fatalf("workers=%d: poisoned member should fail the run", workers)
		} else if !strings.Contains(err.Error(), "doc-011") {
			t.Fatalf("workers=%d: error should name the member, got: %v", workers, err)
		}
	}
}

// TestExtendSnapshotUnderQueries is the concurrency contract: a corpus is an
// immutable snapshot, so queries keep running against the old corpus while
// Extend assembles a new one. Run with -race.
func TestExtendSnapshotUnderQueries(t *testing.T) {
	base, err := Ingest(genSources(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := base.RunAll(3, nil, perDocSeq)
				if err != nil {
					t.Errorf("query during Extend: %v", err)
					return
				}
				if len(got) != 10 {
					t.Errorf("query during Extend saw %d members, want 10", len(got))
					return
				}
			}
		}()
	}
	grown := base
	for round := 0; round < 5; round++ {
		extra := make([]Source, 4)
		for i := range extra {
			extra[i] = Source{
				URI:  fmt.Sprintf("mem://extra-%d-%d.xml", round, i),
				Data: []byte(fmt.Sprintf("<extra><round>%d</round></extra>", round)),
			}
		}
		next, err := grown.Extend(extra, 4)
		if err != nil {
			t.Fatal(err)
		}
		if next.Len() != grown.Len()+4 {
			t.Fatalf("Extend: %d members, want %d", next.Len(), grown.Len()+4)
		}
		grown = next
	}
	close(stop)
	wg.Wait()
	if base.Len() != 10 {
		t.Fatalf("base corpus mutated by Extend: %d members", base.Len())
	}
	if grown.Len() != 30 {
		t.Fatalf("grown corpus has %d members, want 30", grown.Len())
	}
	// The old members are shared, not reparsed: same indexes, same IDs.
	for i := 0; i < 10; i++ {
		if grown.Doc(i) != base.Doc(i) {
			t.Fatalf("Extend copied member %d instead of sharing it", i)
		}
	}
	prevID := 0
	for i, d := range grown.Docs() {
		if d.Tree().ID <= prevID {
			t.Fatalf("grown corpus member %d breaks the ascending-ID invariant", i)
		}
		prevID = d.Tree().ID
	}
}
