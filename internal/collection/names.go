package collection

import (
	"sort"

	"xqtp/internal/xdm"
)

// NameTable is the corpus-level name index: for every tag or attribute name
// interned by any member, the per-document symbol IDs it resolved to. It
// answers two questions in O(1) per document: "what is this query name's
// symbol in document i" (so per-document plan preparation skips the string
// hash), and "does document i contain this name at all" (so the fan-out
// executor can skip documents that cannot match a conjunctive pattern).
type NameTable struct {
	// byName maps a name to its symbol in each member, indexed by corpus
	// position; xdm.NoSym marks members that never interned the name.
	byName map[string][]xdm.Sym
	ndocs  int
}

func buildNameTable(members []*Doc) *NameTable {
	nt := &NameTable{
		byName: make(map[string][]xdm.Sym),
		ndocs:  len(members),
	}
	for i, d := range members {
		syms := d.Tree().Syms
		for s := 0; s < syms.Len(); s++ {
			name := syms.Name(xdm.Sym(s))
			col, ok := nt.byName[name]
			if !ok {
				col = make([]xdm.Sym, len(members))
				for j := range col {
					col[j] = xdm.NoSym
				}
				nt.byName[name] = col
			}
			col[i] = xdm.Sym(s)
		}
	}
	return nt
}

// extend builds the table for a corpus of nt's members followed by added.
// Existing columns are copied and padded with NoSym; only the added members'
// symbol tables are walked. This is what keeps Corpus.Extend linear in the
// growth instead of rebuilding the table over every member each time.
func (nt *NameTable) extend(added []*Doc) *NameTable {
	out := &NameTable{
		byName: make(map[string][]xdm.Sym, len(nt.byName)),
		ndocs:  nt.ndocs + len(added),
	}
	for name, col := range nt.byName {
		grown := make([]xdm.Sym, out.ndocs)
		copy(grown, col)
		for j := nt.ndocs; j < out.ndocs; j++ {
			grown[j] = xdm.NoSym
		}
		out.byName[name] = grown
	}
	for i, d := range added {
		syms := d.Tree().Syms
		for s := 0; s < syms.Len(); s++ {
			name := syms.Name(xdm.Sym(s))
			col, ok := out.byName[name]
			if !ok {
				col = make([]xdm.Sym, out.ndocs)
				for j := range col {
					col[j] = xdm.NoSym
				}
				out.byName[name] = col
			}
			col[nt.ndocs+i] = xdm.Sym(s)
		}
	}
	return out
}

// Sym resolves a name to document doc's symbol ID (xdm.NoSym when the
// document never interned the name).
func (nt *NameTable) Sym(name string, doc int) xdm.Sym {
	col, ok := nt.byName[name]
	if !ok || doc < 0 || doc >= len(col) {
		return xdm.NoSym
	}
	return col[doc]
}

// Has reports whether document doc interned the name (as an element tag or
// attribute name).
func (nt *NameTable) Has(name string, doc int) bool {
	return nt.Sym(name, doc) != xdm.NoSym
}

// HasAll reports whether document doc interned every given name. A document
// missing any name of a conjunctive tree pattern cannot produce a binding,
// which is what makes HasAll a sound skip test for the fan-out executor.
func (nt *NameTable) HasAll(doc int, names []string) bool {
	for _, n := range names {
		if !nt.Has(n, doc) {
			return false
		}
	}
	return true
}

// SymColumn returns the per-member symbol column for a name, indexed by
// corpus position (nil when no member interned the name; xdm.NoSym entries
// mark members that didn't). The count-based skip test hoists this lookup
// out of its per-member loop.
func (nt *NameTable) SymColumn(name string) []xdm.Sym {
	return nt.byName[name]
}

// DocsWith counts the members that interned the name.
func (nt *NameTable) DocsWith(name string) int {
	n := 0
	for _, s := range nt.byName[name] {
		if s != xdm.NoSym {
			n++
		}
	}
	return n
}

// Names returns every name in the table, sorted.
func (nt *NameTable) Names() []string {
	out := make([]string, 0, len(nt.byName))
	for n := range nt.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct names across the corpus.
func (nt *NameTable) Len() int { return len(nt.byName) }
