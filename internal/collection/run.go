package collection

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xqtp/internal/xdm"
)

// RunAll evaluates eval against every member on a pool of workers and
// returns the concatenation of the per-document results in corpus order.
// skip, when non-nil, elides members without evaluating them (the caller's
// name-table pruning hook); a skipped member contributes the empty sequence.
//
// Results stream back through a channel bounded at the worker count, and the
// merger holds out-of-order arrivals in a pending buffer until their corpus
// position comes up — so the output order is the corpus order no matter how
// the pool interleaves, and at most workers+len(pending) document results
// are in flight at once. The first failure (earliest corpus position among
// the documents that evaluated) cancels the remaining work.
func (c *Corpus) RunAll(workers int, skip func(doc int) bool, eval func(d *Doc) (xdm.Sequence, error)) (xdm.Sequence, error) {
	n := len(c.docs)
	if n == 0 {
		return nil, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var out xdm.Sequence
		for i, d := range c.docs {
			if skip != nil && skip(i) {
				continue
			}
			seq, err := eval(d)
			if err != nil {
				return nil, fmt.Errorf("collection: %s: %w", d.URI, err)
			}
			out = append(out, seq...)
		}
		return out, nil
	}

	type docResult struct {
		pos int
		seq xdm.Sequence
		err error
	}
	results := make(chan docResult, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pos := int(next.Add(1)) - 1
				if pos >= n || failed.Load() {
					return
				}
				if skip != nil && skip(pos) {
					results <- docResult{pos: pos}
					continue
				}
				seq, err := eval(c.docs[pos])
				if err != nil {
					failed.Store(true)
				}
				results <- docResult{pos: pos, seq: seq, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var out xdm.Sequence
	pending := make(map[int]xdm.Sequence, workers)
	nextOut := 0
	var firstErr error
	errPos := n
	for r := range results {
		if r.err != nil {
			if r.pos < errPos {
				errPos = r.pos
				firstErr = fmt.Errorf("collection: %s: %w", c.docs[r.pos].URI, r.err)
			}
			continue
		}
		if firstErr != nil {
			continue // drain; the merged prefix no longer matters
		}
		if r.pos != nextOut {
			pending[r.pos] = r.seq
			continue
		}
		out = append(out, r.seq...)
		nextOut++
		for {
			seq, ok := pending[nextOut]
			if !ok {
				break
			}
			delete(pending, nextOut)
			out = append(out, seq...)
			nextOut++
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
