package collection

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xqtp/internal/execctx"
	"xqtp/internal/xdm"
)

// RunAll evaluates eval against every member on a pool of workers and
// returns the concatenation of the per-document results in corpus order.
// skip, when non-nil, elides members without evaluating them (the caller's
// name-table pruning hook); a skipped member contributes the empty sequence.
// RunAll is RunAllCtx without an execution context, collecting the emitted
// sequences.
func (c *Corpus) RunAll(workers int, skip func(doc int) bool, eval func(d *Doc) (xdm.Sequence, error)) (xdm.Sequence, error) {
	var out xdm.Sequence
	err := c.RunAllCtx(nil, workers, skip, eval, func(seq xdm.Sequence) error {
		out = append(out, seq...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAllCtx evaluates eval against every member on a pool of workers,
// handing each member's result to emit in corpus order.
//
// Results stream back through a channel bounded at the worker count, and the
// merger holds out-of-order arrivals in a pending buffer until their corpus
// position comes up — so emit sees the corpus order no matter how the pool
// interleaves, and at most workers+len(pending) document results are in
// flight at once. The first failure (earliest corpus position among the
// documents that evaluated) cancels the remaining work.
//
// The execution context governs the fan-out's lifetime: once ec stops
// (cancellation, or a budget spent by emit's Deliver), workers admit no new
// member, in-flight members are cut short by the kernels' own checkpoints,
// and their abort errors are recognized as stop fallout rather than member
// failures. The merger always drains the channel to its close, so a
// canceled run leaks no goroutine; the function then returns ec.Err(). An
// emit error (budget exhaustion, a sink refusing an item) likewise stops
// admission, and the sequences already emitted are exactly the corpus-order
// prefix — emit is only ever called from the merger, in order.
func (c *Corpus) RunAllCtx(ec *execctx.Ctx, workers int, skip func(doc int) bool, eval func(d *Doc) (xdm.Sequence, error), emit func(seq xdm.Sequence) error) error {
	if err := c.closedErr(); err != nil {
		return err
	}
	n := len(c.docs)
	if n == 0 {
		return ec.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, d := range c.docs {
			if err := ec.Err(); err != nil {
				return err
			}
			if skip != nil && skip(i) {
				continue
			}
			seq, err := eval(d)
			if err != nil {
				if stopErr := ec.Err(); stopErr != nil {
					return stopErr
				}
				return fmt.Errorf("collection: %s: %w", d.URI, err)
			}
			if err := emit(seq); err != nil {
				return err
			}
		}
		return ec.Err()
	}

	type docResult struct {
		pos int
		seq xdm.Sequence
		err error
	}
	results := make(chan docResult, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pos := int(next.Add(1)) - 1
				if pos >= n || failed.Load() || ec.Stopped() {
					return
				}
				if skip != nil && skip(pos) {
					results <- docResult{pos: pos}
					continue
				}
				seq, err := eval(c.docs[pos])
				if err != nil {
					failed.Store(true)
				}
				results <- docResult{pos: pos, seq: seq, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]xdm.Sequence, workers)
	nextOut := 0
	var firstErr, emitErr error
	errPos := n
	for r := range results {
		if r.err != nil {
			if ec.Stopped() {
				// The stop cut this member short; its abort error is the
				// run-level stop, not a member failure.
				continue
			}
			if r.pos < errPos {
				errPos = r.pos
				firstErr = fmt.Errorf("collection: %s: %w", c.docs[r.pos].URI, r.err)
			}
			continue
		}
		if firstErr != nil || emitErr != nil || ec.Stopped() {
			continue // drain; the merged prefix is already settled
		}
		if r.pos != nextOut {
			pending[r.pos] = r.seq
			continue
		}
		if emitErr = emit(r.seq); emitErr != nil {
			continue
		}
		nextOut++
		for {
			seq, ok := pending[nextOut]
			if !ok {
				break
			}
			delete(pending, nextOut)
			if emitErr = emit(seq); emitErr != nil {
				break
			}
			nextOut++
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if emitErr != nil {
		return emitErr
	}
	return ec.Err()
}
