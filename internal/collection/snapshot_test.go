package collection

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"xqtp/internal/xdm"
)

func TestCorpusSnapshotRoundTrip(t *testing.T) {
	c, err := Ingest(genSources(20), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d members, want %d", c2.Len(), c.Len())
	}
	prevID := 0
	for i := 0; i < c.Len(); i++ {
		a, b := c.Doc(i), c2.Doc(i)
		if a.URI != b.URI {
			t.Fatalf("member %d URI %q, want %q", i, b.URI, a.URI)
		}
		ta, tb := a.Tree(), b.Tree()
		// Force the loaded member's lazy pointer model so the node-for-node
		// comparison below sees it.
		tb.RootNode()
		if len(ta.Nodes) != len(tb.Nodes) {
			t.Fatalf("member %d: %d nodes, want %d", i, len(tb.Nodes), len(ta.Nodes))
		}
		for j := range ta.Nodes {
			x, y := ta.Nodes[j], tb.Nodes[j]
			if x.Kind != y.Kind || x.Name != y.Name || x.Text != y.Text ||
				x.Pre != y.Pre || x.Post != y.Post || x.Size != y.Size || x.Level != y.Level {
				t.Fatalf("member %d node %d differs: %+v vs %+v", i, j, x, y)
			}
		}
		// Corpus-order invariant re-established on load.
		if tb.ID <= prevID {
			t.Fatalf("member %d tree ID %d not ascending after %d", i, tb.ID, prevID)
		}
		prevID = tb.ID
		// Members resolve through the loaded corpus maps and catalog.
		if d, ok := c2.ByURI(a.URI); !ok || d != b {
			t.Fatalf("member %d not resolvable by URI %q", i, a.URI)
		}
		if d, ok := c2.ByTree(tb); !ok || d != b {
			t.Fatalf("member %d not resolvable by tree", i)
		}
		if c2.Catalog().Index(tb) != b.Index {
			t.Fatalf("member %d index not registered in catalog", i)
		}
	}
	// Name table survives: same names, same per-member resolution.
	if !reflect.DeepEqual(c2.Names().Names(), c.Names().Names()) {
		t.Fatalf("name table names differ: %v vs %v", c2.Names().Names(), c.Names().Names())
	}
	for _, name := range c.Names().Names() {
		for i := 0; i < c.Len(); i++ {
			if got, want := c2.Names().Sym(name, i), c.Names().Sym(name, i); got != want {
				t.Fatalf("name %q member %d: sym %d, want %d", name, i, got, want)
			}
		}
	}
	// fn:collection() over the loaded corpus yields the loaded roots in order.
	roots, err := c2.ResolveCollection("")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != c2.Len() {
		t.Fatalf("collection() returned %d roots, want %d", len(roots), c2.Len())
	}
}

// Extend must produce the same name table the from-scratch build does — the
// incremental path (copy + walk only the added members) is an optimization,
// not a semantic change.
func TestExtendNameTableMatchesRebuild(t *testing.T) {
	c, err := Ingest(genSources(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		extra := []Source{
			{URI: fmt.Sprintf("mem://nt-%d-a.xml", round),
				Data: []byte(fmt.Sprintf(`<grown round="%d"><delta/></grown>`, round))},
			{URI: fmt.Sprintf("mem://nt-%d-b.xml", round),
				Data: []byte("<doc><alpha/><fresh>x</fresh></doc>")},
		}
		next, err := c.Extend(extra, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := buildNameTable(next.Docs())
		got := next.Names()
		if !reflect.DeepEqual(got.Names(), want.Names()) {
			t.Fatalf("round %d: names %v, want %v", round, got.Names(), want.Names())
		}
		for _, name := range want.Names() {
			if !reflect.DeepEqual(got.byName[name], want.byName[name]) {
				t.Fatalf("round %d: column for %q is %v, want %v",
					round, name, got.byName[name], want.byName[name])
			}
		}
		if got.ndocs != next.Len() {
			t.Fatalf("round %d: table covers %d docs, want %d", round, got.ndocs, next.Len())
		}
		c = next
	}
}

// Snapshots of an extended corpus carry the incremental name table;
// loading one must agree with the original.
func TestExtendThenSnapshot(t *testing.T) {
	c, err := Ingest(genSources(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err = c.Extend([]Source{
		{URI: "mem://late.xml", Data: []byte("<late><omega/></late>")},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c2.Names().Sym("omega", 5), c.Names().Sym("omega", 5); got != want {
		t.Fatalf("omega sym in late member: %d, want %d", got, want)
	}
	if c2.Names().Has("omega", 0) {
		t.Fatal("omega leaked into member 0")
	}
	if got := c2.Names().DocsWith("doc"); got != 5 {
		t.Fatalf("DocsWith(doc) = %d, want 5", got)
	}
}

func TestOpenSnapshotRejectsGarbage(t *testing.T) {
	if _, err := OpenSnapshot([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage should not load")
	}
	var buf bytes.Buffer
	c, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 0 {
		t.Fatalf("empty corpus loaded with %d members", c2.Len())
	}
	if _, err := c2.ResolveDoc("x"); err == nil {
		t.Fatal("resolving a doc in an empty corpus should fail")
	}
}

// TestOpenSnapshotFile checks the file-mapped deferred open end to end:
// equality with the in-memory load, fan-out evaluation over deferred
// members, and the Close contract.
func TestOpenSnapshotFile(t *testing.T) {
	c, err := Ingest(genSources(12), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.xqts")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d members, want %d", c2.Len(), c.Len())
	}
	// Nothing is loaded at open: the whole point of the mapped path.
	for i := 0; i < c2.Len(); i++ {
		if c2.Doc(i).Index.Loaded() {
			t.Fatalf("member %d loaded at open", i)
		}
	}
	// NumNodes answers from the directories without forcing loads.
	if got, want := c2.NumNodes(), c.NumNodes(); got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	for i := 0; i < c2.Len(); i++ {
		if c2.Doc(i).Index.Loaded() {
			t.Fatalf("member %d loaded by NumNodes", i)
		}
	}
	// Evaluation touches every member; the results must match the ingested
	// corpus member for member.
	seq, err := c2.RunAll(4, nil, func(d *Doc) (xdm.Sequence, error) {
		if err := d.Ensure(); err != nil {
			return nil, err
		}
		return xdm.Sequence{d.Root()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != c.Len() {
		t.Fatalf("fan-out returned %d roots, want %d", len(seq), c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		a, b := c.Doc(i), c2.Doc(i)
		if a.URI != b.URI {
			t.Fatalf("member %d URI %q, want %q", i, b.URI, a.URI)
		}
		ta, tb := a.Tree(), b.Tree()
		tb.RootNode()
		if len(ta.Nodes) != len(tb.Nodes) {
			t.Fatalf("member %d: %d nodes, want %d", i, len(tb.Nodes), len(ta.Nodes))
		}
	}

	// Close: typed error on reuse, on double close, and on late loads.
	if c2.Closed() {
		t.Fatal("Closed before Close")
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !c2.Closed() {
		t.Fatal("not Closed after Close")
	}
	if err := c2.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := c2.ResolveDoc(c.Doc(0).URI); !errors.Is(err, ErrClosed) {
		t.Fatalf("ResolveDoc after Close = %v, want ErrClosed", err)
	}
	if _, err := c2.ResolveCollection(""); !errors.Is(err, ErrClosed) {
		t.Fatalf("ResolveCollection after Close = %v, want ErrClosed", err)
	}
	err = c2.RunAllCtx(nil, 2, nil, func(d *Doc) (xdm.Sequence, error) { return nil, nil },
		func(seq xdm.Sequence) error { return nil })
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("RunAllCtx after Close = %v, want ErrClosed", err)
	}
	if err := c2.WriteSnapshot(&bytes.Buffer{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteSnapshot after Close = %v, want ErrClosed", err)
	}
}

// A member never loaded before Close must surface ErrClosed from its load,
// not fault on the unmapped pages.
func TestOpenSnapshotFileCloseBeforeLoad(t *testing.T) {
	c, err := Ingest(genSources(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.xqts")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Doc(0).Ensure(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ensure after Close = %v, want ErrClosed", err)
	}
	c2.Doc(0).Root() // poisoned placeholder, must not fault
}

// A snapshot file that shrank after being written must be rejected at open:
// the offset table claims more bytes than the file holds.
func TestOpenSnapshotFileTruncated(t *testing.T) {
	c, err := Ingest(genSources(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	for _, cut := range []int{1, 17, len(good) / 2, len(good) - 1} {
		path := filepath.Join(dir, fmt.Sprintf("trunc-%d.xqts", cut))
		if err := os.WriteFile(path, good[:len(good)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSnapshotFile(path); err == nil {
			t.Errorf("open of snapshot truncated by %d bytes should fail", cut)
		}
	}
}
