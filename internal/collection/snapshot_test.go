package collection

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

func TestCorpusSnapshotRoundTrip(t *testing.T) {
	c, err := Ingest(genSources(20), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d members, want %d", c2.Len(), c.Len())
	}
	prevID := 0
	for i := 0; i < c.Len(); i++ {
		a, b := c.Doc(i), c2.Doc(i)
		if a.URI != b.URI {
			t.Fatalf("member %d URI %q, want %q", i, b.URI, a.URI)
		}
		ta, tb := a.Tree(), b.Tree()
		// Force the loaded member's lazy pointer model so the node-for-node
		// comparison below sees it.
		tb.RootNode()
		if len(ta.Nodes) != len(tb.Nodes) {
			t.Fatalf("member %d: %d nodes, want %d", i, len(tb.Nodes), len(ta.Nodes))
		}
		for j := range ta.Nodes {
			x, y := ta.Nodes[j], tb.Nodes[j]
			if x.Kind != y.Kind || x.Name != y.Name || x.Text != y.Text ||
				x.Pre != y.Pre || x.Post != y.Post || x.Size != y.Size || x.Level != y.Level {
				t.Fatalf("member %d node %d differs: %+v vs %+v", i, j, x, y)
			}
		}
		// Corpus-order invariant re-established on load.
		if tb.ID <= prevID {
			t.Fatalf("member %d tree ID %d not ascending after %d", i, tb.ID, prevID)
		}
		prevID = tb.ID
		// Members resolve through the loaded corpus maps and catalog.
		if d, ok := c2.ByURI(a.URI); !ok || d != b {
			t.Fatalf("member %d not resolvable by URI %q", i, a.URI)
		}
		if d, ok := c2.ByTree(tb); !ok || d != b {
			t.Fatalf("member %d not resolvable by tree", i)
		}
		if c2.Catalog().Index(tb) != b.Index {
			t.Fatalf("member %d index not registered in catalog", i)
		}
	}
	// Name table survives: same names, same per-member resolution.
	if !reflect.DeepEqual(c2.Names().Names(), c.Names().Names()) {
		t.Fatalf("name table names differ: %v vs %v", c2.Names().Names(), c.Names().Names())
	}
	for _, name := range c.Names().Names() {
		for i := 0; i < c.Len(); i++ {
			if got, want := c2.Names().Sym(name, i), c.Names().Sym(name, i); got != want {
				t.Fatalf("name %q member %d: sym %d, want %d", name, i, got, want)
			}
		}
	}
	// fn:collection() over the loaded corpus yields the loaded roots in order.
	roots, err := c2.ResolveCollection("")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != c2.Len() {
		t.Fatalf("collection() returned %d roots, want %d", len(roots), c2.Len())
	}
}

// Extend must produce the same name table the from-scratch build does — the
// incremental path (copy + walk only the added members) is an optimization,
// not a semantic change.
func TestExtendNameTableMatchesRebuild(t *testing.T) {
	c, err := Ingest(genSources(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		extra := []Source{
			{URI: fmt.Sprintf("mem://nt-%d-a.xml", round),
				Data: []byte(fmt.Sprintf(`<grown round="%d"><delta/></grown>`, round))},
			{URI: fmt.Sprintf("mem://nt-%d-b.xml", round),
				Data: []byte("<doc><alpha/><fresh>x</fresh></doc>")},
		}
		next, err := c.Extend(extra, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := buildNameTable(next.Docs())
		got := next.Names()
		if !reflect.DeepEqual(got.Names(), want.Names()) {
			t.Fatalf("round %d: names %v, want %v", round, got.Names(), want.Names())
		}
		for _, name := range want.Names() {
			if !reflect.DeepEqual(got.byName[name], want.byName[name]) {
				t.Fatalf("round %d: column for %q is %v, want %v",
					round, name, got.byName[name], want.byName[name])
			}
		}
		if got.ndocs != next.Len() {
			t.Fatalf("round %d: table covers %d docs, want %d", round, got.ndocs, next.Len())
		}
		c = next
	}
}

// Snapshots of an extended corpus carry the incremental name table;
// loading one must agree with the original.
func TestExtendThenSnapshot(t *testing.T) {
	c, err := Ingest(genSources(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err = c.Extend([]Source{
		{URI: "mem://late.xml", Data: []byte("<late><omega/></late>")},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c2.Names().Sym("omega", 5), c.Names().Sym("omega", 5); got != want {
		t.Fatalf("omega sym in late member: %d, want %d", got, want)
	}
	if c2.Names().Has("omega", 0) {
		t.Fatal("omega leaked into member 0")
	}
	if got := c2.Names().DocsWith("doc"); got != 5 {
		t.Fatalf("DocsWith(doc) = %d, want 5", got)
	}
}

func TestOpenSnapshotRejectsGarbage(t *testing.T) {
	if _, err := OpenSnapshot([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage should not load")
	}
	var buf bytes.Buffer
	c, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 0 {
		t.Fatalf("empty corpus loaded with %d members", c2.Len())
	}
	if _, err := c2.ResolveDoc("x"); err == nil {
		t.Fatal("resolving a doc in an empty corpus should fail")
	}
}
