package collection

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Source is one document to ingest. Data nil means read the URI as a file
// path inside the ingest worker, overlapping file IO with parsing.
type Source struct {
	URI  string
	Data []byte
}

// FileSources builds sources that load each path from disk during ingest.
func FileSources(paths []string) []Source {
	out := make([]Source, len(paths))
	for i, p := range paths {
		out[i] = Source{URI: p}
	}
	return out
}

// Ingest parses every source on a bounded worker pool — each worker runs the
// fused xmlstore scanner, so a member's columns, symbols and rank streams are
// built during its one parse pass — and assembles the corpus. Tree IDs are
// reassigned in source order after the last parse lands (xdm.AssignTreeIDs),
// so the corpus order, and with it every query result, is independent of how
// the pool scheduled the parses. workers <= 0 means one worker per source.
func Ingest(sources []Source, workers int) (*Corpus, error) {
	docs, err := ingestDocs(sources, workers)
	if err != nil {
		return nil, err
	}
	xdm.AssignTreeIDs(trees(docs))
	return assemble(docs)
}

// Extend ingests additional sources and returns a new corpus holding the
// existing members followed by the new ones. The receiver is untouched — a
// corpus is an immutable snapshot, so queries running against it concurrently
// with Extend never observe partial growth. The new members' tree IDs come
// from a fresh block of the global counter (AssignTreeIDs walks only the new
// docs), so they sort after every existing member and the combined slice
// keeps the corpus-order invariant. The name table likewise grows
// incrementally from the receiver's, so the cost of an Extend is linear in
// the documents added, not in the corpus size — repeated Extends are O(n),
// not O(n²).
func (c *Corpus) Extend(sources []Source, workers int) (*Corpus, error) {
	docs, err := ingestDocs(sources, workers)
	if err != nil {
		return nil, err
	}
	xdm.AssignTreeIDs(trees(docs))
	members := make([]*Doc, 0, len(c.docs)+len(docs))
	members = append(members, c.docs...)
	members = append(members, docs...)
	grown, err := assembleWith(members, c.names.extend(docs))
	if err != nil {
		return nil, err
	}
	grown.epoch = c.epoch + 1
	return grown, nil
}

func trees(docs []*Doc) []*xdm.Tree {
	ts := make([]*xdm.Tree, len(docs))
	for i, d := range docs {
		ts[i] = d.Tree()
	}
	return ts
}

// ingestDocs runs the parse pool: a shared atomic cursor hands source
// positions to workers, results land by position, and the first error (by
// source order, for a deterministic message) stops the remaining work.
func ingestDocs(sources []Source, workers int) ([]*Doc, error) {
	n := len(sources)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	docs := make([]*Doc, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pos := int(next.Add(1)) - 1
				if pos >= n || failed.Load() {
					return
				}
				ix, err := ingestOne(sources[pos])
				if err != nil {
					errs[pos] = err
					failed.Store(true)
					continue
				}
				docs[pos] = &Doc{URI: sources[pos].URI, Index: ix}
			}
		}()
	}
	wg.Wait()
	for pos, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("collection: ingest %q: %w", sources[pos].URI, err)
		}
	}
	// An abandoned tail (a worker saw failed && bailed) only exists alongside
	// an error, so every doc is populated here.
	return docs, nil
}

func ingestOne(s Source) (*xmlstore.Index, error) {
	data := s.Data
	if data == nil {
		b, err := os.ReadFile(s.URI)
		if err != nil {
			return nil, err
		}
		data = b
	}
	return xmlstore.Ingest(data)
}
