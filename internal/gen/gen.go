// Package gen produces the synthetic documents used by the paper's
// evaluation:
//
//   - MemBeR-style documents (Table 1): random trees of a fixed depth with a
//     configurable number of uniformly distributed tags, scaled to a target
//     serialized size;
//   - XMark-like auction documents (Fig. 4, Fig. 6): the element hierarchy
//     of the XMark benchmark that the evaluated queries touch;
//   - the deep single-tag document of §5.3.
//
// All generators are deterministic given their seed, so experiments are
// reproducible. The real MemBeR/XMark data sets are not redistributable;
// DESIGN.md documents why these synthetic equivalents preserve the behaviour
// the experiments measure.
package gen

import (
	"fmt"
	"math/rand"

	"xqtp/internal/xdm"
)

// MemberConfig parameterizes the MemBeR-style generator.
type MemberConfig struct {
	Seed     int64
	Depth    int // tree depth below the root element (the paper uses 4)
	NumTags  int // number of distinct tags, uniformly distributed (paper: 100)
	NumNodes int // total number of element nodes to generate
}

// Member generates a MemBeR-style document: a random tree with exactly
// cfg.Depth levels below the root and cfg.NumNodes elements whose tags are
// drawn uniformly from t01..tNN.
func Member(cfg MemberConfig) *xdm.Tree { return xdm.Finalize(MemberRoot(cfg)) }

// MemberRoot generates the MemBeR-style document as an unfinalized node
// skeleton — no region encoding, no columns — for callers that serialize
// the document (xmlstore.AppendXML works on skeletons) instead of querying
// it, e.g. the ingest benchmark streaming generated XML straight into the
// scanner.
func MemberRoot(cfg MemberConfig) *xdm.Node {
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.NumTags <= 0 {
		cfg.NumTags = 100
	}
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tag := func() string { return fmt.Sprintf("t%02d", 1+rng.Intn(cfg.NumTags)) }

	root := xdm.NewElement("root")
	// Track candidate parents per level (level of root = 0 here).
	levels := make([][]*xdm.Node, cfg.Depth)
	levels[0] = []*xdm.Node{root}
	made := 0
	for made < cfg.NumNodes {
		// Pick a level whose nodes may still have children, biased toward
		// deeper levels so the bulk of the nodes sits near the leaves (the
		// shape of a bulk-loaded shallow document).
		l := rng.Intn(cfg.Depth)
		if levels[l] == nil || len(levels[l]) == 0 {
			l = 0
		}
		parent := levels[l][rng.Intn(len(levels[l]))]
		el := xdm.NewElement(tag())
		parent.AppendChild(el)
		made++
		if l+1 < cfg.Depth {
			levels[l+1] = append(levels[l+1], el)
		}
	}
	return root
}

// MemberForSize generates a MemBeR-style document whose serialized size is
// approximately targetBytes (the paper's 2.1–11 MB series). The element
// count is derived from the average serialized node width of the generator's
// output (measured: ≈ 9 bytes per element).
func MemberForSize(seed int64, targetBytes int) *xdm.Tree {
	const bytesPerNode = 9
	return Member(MemberConfig{
		Seed:     seed,
		Depth:    4,
		NumTags:  100,
		NumNodes: targetBytes / bytesPerNode,
	})
}

// Deep generates the §5.3 document: numNodes elements, maximum depth
// maxDepth, every element named tag. A full-depth spine is created first so
// that first-child chains reach the maximum depth, then the remaining nodes
// are attached at random levels.
func Deep(seed int64, numNodes, maxDepth int, tag string) *xdm.Tree {
	return xdm.Finalize(DeepRoot(seed, numNodes, maxDepth, tag))
}

// DeepRoot generates the §5.3 document as an unfinalized skeleton (see
// MemberRoot).
func DeepRoot(seed int64, numNodes, maxDepth int, tag string) *xdm.Node {
	rng := rand.New(rand.NewSource(seed))
	root := xdm.NewElement(tag)
	levels := make([][]*xdm.Node, maxDepth)
	levels[0] = []*xdm.Node{root}
	made := 1
	// Spine: one chain from the root down to maxDepth.
	cur := root
	for l := 1; l < maxDepth && made < numNodes; l++ {
		el := xdm.NewElement(tag)
		cur.AppendChild(el)
		levels[l] = append(levels[l], el)
		cur = el
		made++
	}
	for made < numNodes {
		l := rng.Intn(maxDepth - 1)
		parent := levels[l][rng.Intn(len(levels[l]))]
		el := xdm.NewElement(tag)
		parent.AppendChild(el)
		levels[l+1] = append(levels[l+1], el)
		made++
	}
	return root
}
