package gen

import (
	"fmt"
	"math/rand"

	"xqtp/internal/xdm"
)

// XMarkConfig parameterizes the XMark-like auction document generator. The
// defaults follow the proportions of the XMark benchmark document for the
// subtrees that the paper's queries touch.
type XMarkConfig struct {
	Seed   int64
	People int // number of person elements (scale knob; everything else derives from it)
}

// regions of the XMark site.
var xmarkRegions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var interests = []string{"sports", "music", "books", "travel", "food", "movies", "art", "science"}

// XMark generates an auction-site document with the XMark element hierarchy:
//
//	site/regions/<region>/item/(location,name,description)
//	site/people/person/(name, emailaddress?, phone?, profile/(interest*, education?), address?)
//	site/open_auctions/open_auction/(initial, bidder*/(date,increase), current, itemref)
//	site/closed_auctions/closed_auction/(seller, buyer, price, date)
//	site/categories/category/(name, description)
func XMark(cfg XMarkConfig) *xdm.Tree { return xdm.Finalize(XMarkRoot(cfg)) }

// XMarkRoot generates the auction document as an unfinalized node skeleton
// (see MemberRoot).
func XMarkRoot(cfg XMarkConfig) *xdm.Node {
	if cfg.People <= 0 {
		cfg.People = 255
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nItems := cfg.People * 4
	nOpen := cfg.People / 2
	nClosed := cfg.People / 3
	nCategories := cfg.People / 10

	site := xdm.NewElement("site")

	regions := xdm.NewElement("regions")
	site.AppendChild(regions)
	regionEls := make([]*xdm.Node, len(xmarkRegions))
	for i, r := range xmarkRegions {
		regionEls[i] = xdm.NewElement(r)
		regions.AppendChild(regionEls[i])
	}
	for i := 0; i < nItems; i++ {
		item := xdm.NewElement("item")
		item.SetAttr("id", fmt.Sprintf("item%d", i))
		item.AppendChild(textEl("location", pick(rng, "United States", "Germany", "Japan", "Belgium")))
		item.AppendChild(textEl("name", fmt.Sprintf("thing %d", i)))
		item.AppendChild(textEl("description", "great condition"))
		if rng.Intn(3) == 0 {
			item.AppendChild(textEl("quantity", fmt.Sprintf("%d", 1+rng.Intn(5))))
		}
		regionEls[rng.Intn(len(regionEls))].AppendChild(item)
	}

	people := xdm.NewElement("people")
	site.AppendChild(people)
	for i := 0; i < cfg.People; i++ {
		p := xdm.NewElement("person")
		p.SetAttr("id", fmt.Sprintf("person%d", i))
		p.AppendChild(textEl("name", fmt.Sprintf("Person %d", i)))
		if rng.Intn(10) < 8 { // 80% have an email address, like XMark
			p.AppendChild(textEl("emailaddress", fmt.Sprintf("mailto:p%d@example.com", i)))
		}
		if rng.Intn(2) == 0 {
			p.AppendChild(textEl("phone", fmt.Sprintf("+1 555 01%02d", i%100)))
		}
		prof := xdm.NewElement("profile")
		prof.SetAttr("income", fmt.Sprintf("%d", 20000+rng.Intn(80000)))
		for k := rng.Intn(4); k > 0; k-- {
			in := xdm.NewElement("interest")
			in.SetAttr("category", pick(rng, interests...))
			prof.AppendChild(in)
		}
		if rng.Intn(3) == 0 {
			prof.AppendChild(textEl("education", pick(rng, "High School", "College", "Graduate School")))
		}
		p.AppendChild(prof)
		if rng.Intn(2) == 0 {
			addr := xdm.NewElement("address")
			addr.AppendChild(textEl("city", pick(rng, "Antwerp", "Yorktown", "Brussels", "New York")))
			addr.AppendChild(textEl("country", pick(rng, "Belgium", "United States")))
			p.AppendChild(addr)
		}
		people.AppendChild(p)
	}

	open := xdm.NewElement("open_auctions")
	site.AppendChild(open)
	for i := 0; i < nOpen; i++ {
		oa := xdm.NewElement("open_auction")
		oa.SetAttr("id", fmt.Sprintf("open%d", i))
		oa.AppendChild(textEl("initial", fmt.Sprintf("%d.00", 5+rng.Intn(100))))
		for b := rng.Intn(5); b > 0; b-- {
			bid := xdm.NewElement("bidder")
			bid.AppendChild(textEl("date", fmt.Sprintf("2006-0%d-1%d", 1+rng.Intn(9), rng.Intn(9))))
			bid.AppendChild(textEl("increase", fmt.Sprintf("%d.50", 1+rng.Intn(20))))
			oa.AppendChild(bid)
		}
		oa.AppendChild(textEl("current", fmt.Sprintf("%d.00", 10+rng.Intn(300))))
		ir := xdm.NewElement("itemref")
		ir.SetAttr("item", fmt.Sprintf("item%d", rng.Intn(nItems)))
		oa.AppendChild(ir)
		open.AppendChild(oa)
	}

	closed := xdm.NewElement("closed_auctions")
	site.AppendChild(closed)
	for i := 0; i < nClosed; i++ {
		ca := xdm.NewElement("closed_auction")
		seller := xdm.NewElement("seller")
		seller.SetAttr("person", fmt.Sprintf("person%d", rng.Intn(cfg.People)))
		buyer := xdm.NewElement("buyer")
		buyer.SetAttr("person", fmt.Sprintf("person%d", rng.Intn(cfg.People)))
		ca.AppendChild(seller)
		ca.AppendChild(buyer)
		ca.AppendChild(textEl("price", fmt.Sprintf("%d.00", 10+rng.Intn(500))))
		ca.AppendChild(textEl("date", fmt.Sprintf("2006-1%d-0%d", rng.Intn(2), 1+rng.Intn(9))))
		closed.AppendChild(ca)
	}

	cats := xdm.NewElement("categories")
	site.AppendChild(cats)
	for i := 0; i < nCategories; i++ {
		c := xdm.NewElement("category")
		c.SetAttr("id", fmt.Sprintf("cat%d", i))
		c.AppendChild(textEl("name", pick(rng, interests...)))
		c.AppendChild(textEl("description", "all sorts"))
		cats.AppendChild(c)
	}

	return site
}

func textEl(name, text string) *xdm.Node {
	el := xdm.NewElement(name)
	el.AppendChild(xdm.NewText(text))
	return el
}

func pick(rng *rand.Rand, options ...string) string { return options[rng.Intn(len(options))] }
