package gen

import (
	"testing"

	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

func maxDepth(n *xdm.Node) int {
	d := 0
	for _, c := range n.Children {
		if cd := maxDepth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

func TestMemberShape(t *testing.T) {
	tr := Member(MemberConfig{Seed: 42, Depth: 4, NumTags: 100, NumNodes: 5000})
	elems := 0
	tags := map[string]bool{}
	for _, n := range tr.Nodes {
		if n.Kind == xdm.ElementNode {
			elems++
			tags[n.Name] = true
		}
	}
	if elems != 5001 { // root + 5000 generated
		t.Errorf("element count = %d", elems)
	}
	// Depth: root element is level 1; generated nodes reach at most depth 4 below it.
	if d := maxDepth(tr.DocElem()); d > 5 {
		t.Errorf("max depth = %d, want <= 5", d)
	}
	if len(tags) < 80 { // 100 tags, 5000 draws: all but a few appear
		t.Errorf("only %d distinct tags", len(tags))
	}
	// Deterministic.
	tr2 := Member(MemberConfig{Seed: 42, Depth: 4, NumTags: 100, NumNodes: 5000})
	if tr2.CountNodes() != tr.CountNodes() {
		t.Error("generator not deterministic")
	}
}

func TestMemberForSize(t *testing.T) {
	target := 200_000
	tr := MemberForSize(7, target)
	got := len(xmlstore.SerializeString(tr.Root))
	if got < target/2 || got > target*2 {
		t.Errorf("serialized size = %d, target %d (off by more than 2x)", got, target)
	}
}

func TestDeepShape(t *testing.T) {
	tr := Deep(1, 5000, 15, "t1")
	elems := 0
	for _, n := range tr.Nodes {
		if n.Kind == xdm.ElementNode {
			elems++
			if n.Name != "t1" {
				t.Fatalf("unexpected tag %q", n.Name)
			}
		}
	}
	if elems != 5000 {
		t.Errorf("element count = %d", elems)
	}
	if d := maxDepth(tr.DocElem()); d != 15 {
		t.Errorf("max depth = %d, want 15 (spine)", d)
	}
	// First-child chain reaches the bottom.
	n := tr.DocElem()
	for i := 1; i < 15; i++ {
		if len(n.Children) == 0 {
			t.Fatalf("first-child chain broke at depth %d", i)
		}
		n = n.Children[0]
	}
}

func TestXMarkShape(t *testing.T) {
	tr := XMark(XMarkConfig{Seed: 3, People: 100})
	site := tr.DocElem()
	if site.Name != "site" {
		t.Fatalf("root = %s", site.Name)
	}
	persons := xdm.Step(site, xdm.AxisDescendant, xdm.NameTest("person"))
	if len(persons) != 100 {
		t.Errorf("%d persons", len(persons))
	}
	withEmail := 0
	for _, p := range persons {
		if p.Parent.Name != "people" {
			t.Fatal("person not under people")
		}
		if len(xdm.Step(p, xdm.AxisChild, xdm.NameTest("emailaddress"))) > 0 {
			withEmail++
		}
		if len(xdm.Step(p, xdm.AxisChild, xdm.NameTest("profile"))) != 1 {
			t.Fatal("person without profile")
		}
	}
	if withEmail < 60 || withEmail > 95 {
		t.Errorf("persons with email = %d, want ~80%%", withEmail)
	}
	for _, tag := range []string{"regions", "open_auctions", "closed_auctions", "categories", "item", "bidder", "price"} {
		if len(xdm.Step(site, xdm.AxisDescendant, xdm.NameTest(tag))) == 0 {
			t.Errorf("no %s elements generated", tag)
		}
	}
	interests := xdm.Step(site, xdm.AxisDescendant, xdm.NameTest("interest"))
	if len(interests) == 0 {
		t.Error("no interests generated")
	}
	for _, in := range interests {
		if in.Parent.Name != "profile" {
			t.Fatal("interest not under profile")
		}
	}
}
