// Package execctx carries the per-run execution context of a query
// evaluation: cancellation (a context.Context's done channel), row and byte
// budgets, and the streaming result sink. One *Ctx is threaded from the
// public entry points through the physical operators down into the join
// kernels, which poll it at bounded intervals — a sticky-flag load on the
// hot path, a non-blocking channel probe only when the flag is still clear.
//
// Every method is nil-receiver-safe: entry points without a deadline or
// budget thread a nil *Ctx, so the pre-existing Run paths pay exactly one
// nil-check branch per checkpoint and nothing per row.
package execctx

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xqtp/internal/xdm"
)

// Sentinel abort reasons. Run errors match them through errors.Is.
var (
	// ErrCanceled reports that the run's context was canceled or its
	// deadline passed before evaluation finished.
	ErrCanceled = errors.New("execution canceled")
	// ErrBudgetExceeded reports that the run hit its MaxRows or MaxBytes
	// budget; the rows delivered before the stop are exactly the
	// document-order prefix of the uncancelled result.
	ErrBudgetExceeded = errors.New("execution budget exceeded")
)

// Error is the typed abort error a stopped run returns: the reason (one of
// the sentinels above), the partial-progress counters at the stop point, and
// the underlying cause (the context's error, so errors.Is also matches
// context.Canceled / context.DeadlineExceeded).
type Error struct {
	Reason error // ErrCanceled or ErrBudgetExceeded
	Rows   int64 // rows delivered to the sink before the stop
	Bytes  int64 // approximate bytes delivered (counted only under MaxBytes)
	Cause  error // the context's error, when the reason is a cancellation
}

func (e *Error) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("%s after %d rows: %v", e.Reason, e.Rows, e.Cause)
	}
	return fmt.Sprintf("%s after %d rows", e.Reason, e.Rows)
}

// Is matches the sentinel reason, so errors.Is(err, ErrCanceled) works on
// the wrapped form.
func (e *Error) Is(target error) bool { return target == e.Reason }

// Unwrap exposes the cause, so errors.Is also reaches context.Canceled and
// context.DeadlineExceeded.
func (e *Error) Unwrap() error { return e.Cause }

// state is the shared stop/progress state of one run. Cancel-only views of
// a Ctx (corpus member evaluations) alias it, so a budget stop observed at
// the merge point halts every in-flight member.
type state struct {
	stopped atomic.Bool
	rows    atomic.Int64
	bytes   atomic.Int64

	mu  sync.Mutex
	err error // the first stop error; returned by every Err call after it
}

// Ctx is one run's execution context. The zero-value-free constructor is
// From; a nil *Ctx is the valid "no limits" context.
type Ctx struct {
	done     <-chan struct{}
	ctxErr   func() error
	maxRows  int64 // 0: unlimited
	maxBytes int64 // 0: unlimited
	st       *state
}

// From builds the execution context for one run. It returns nil — the
// zero-overhead context — when ctx can never be canceled and no budget is
// set, so the legacy entry points stay genuinely free wrappers.
func From(ctx context.Context, maxRows, maxBytes int64) *Ctx {
	if maxRows < 0 {
		maxRows = 0
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	var done <-chan struct{}
	ctxErr := func() error { return nil }
	if ctx != nil {
		done = ctx.Done()
		ctxErr = ctx.Err
	}
	if done == nil && maxRows == 0 && maxBytes == 0 {
		return nil
	}
	return &Ctx{done: done, ctxErr: ctxErr, maxRows: maxRows, maxBytes: maxBytes, st: &state{}}
}

// CancelOnly returns a view sharing ec's cancellation and stop state but
// carrying no budget: corpus member evaluations run under it, so only the
// corpus-order merge point charges the budget (the delivered prefix is then
// exactly the document-order prefix), while a budget stop recorded at the
// merge still halts every member through the shared state.
func (ec *Ctx) CancelOnly() *Ctx {
	if ec == nil || (ec.maxRows == 0 && ec.maxBytes == 0) {
		return ec
	}
	return &Ctx{done: ec.done, ctxErr: ec.ctxErr, st: ec.st}
}

// Stopped reports whether the run must abort. The fast path is one atomic
// load of the sticky flag; the done channel is probed (without blocking)
// only while the flag is clear. Kernels poll this at bounded intervals and
// bail out returning partial scratch results; the operator layer above
// converts the stop into the typed error, so partial kernel output is never
// observed by callers.
func (ec *Ctx) Stopped() bool {
	if ec == nil {
		return false
	}
	if ec.st.stopped.Load() {
		return true
	}
	if ec.done != nil {
		select {
		case <-ec.done:
			ec.stopWith(&Error{
				Reason: ErrCanceled,
				Rows:   ec.st.rows.Load(),
				Bytes:  ec.st.bytes.Load(),
				Cause:  ec.ctxErr(),
			})
			return true
		default:
		}
	}
	return false
}

// Err returns the run's stop error: nil while the run may continue, the
// first recorded abort error once it must stop.
func (ec *Ctx) Err() error {
	if ec == nil || !ec.Stopped() {
		return nil
	}
	ec.st.mu.Lock()
	defer ec.st.mu.Unlock()
	return ec.st.err
}

// Rows returns the number of rows delivered to the sink so far.
func (ec *Ctx) Rows() int64 {
	if ec == nil {
		return 0
	}
	return ec.st.rows.Load()
}

// Bytes returns the approximate bytes delivered so far (counted only when a
// MaxBytes budget is set).
func (ec *Ctx) Bytes() int64 {
	if ec == nil {
		return 0
	}
	return ec.st.bytes.Load()
}

// stopWith records the first stop error and raises the sticky flag. Later
// calls keep the first error (the reason the run actually aborted).
func (ec *Ctx) stopWith(err error) {
	ec.st.mu.Lock()
	if ec.st.err == nil {
		ec.st.err = err
	}
	ec.st.mu.Unlock()
	ec.st.stopped.Store(true)
}

// Sink receives result items as evaluation produces them. A Push error
// aborts the run, which returns that error.
type Sink interface {
	Push(it xdm.Item) error
}

// bulkSink is the optional fast path: sinks that can absorb a whole
// sequence at once (the Collector) skip the per-item dispatch when no
// per-item budget charging is needed.
type bulkSink interface {
	PushAll(items xdm.Sequence) error
}

// Collector is the default sink: it gathers pushed items into a Sequence.
// The materializing entry points (Run, RunParallel, …) are implemented as
// streaming runs into a Collector.
type Collector struct {
	Seq xdm.Sequence
}

// Push appends one item.
func (c *Collector) Push(it xdm.Item) error {
	c.Seq = append(c.Seq, it)
	return nil
}

// PushAll appends a whole sequence (the bulk fast path).
func (c *Collector) PushAll(items xdm.Sequence) error {
	c.Seq = append(c.Seq, items...)
	return nil
}

// Deliver pushes items to the sink under ec's budget. Budget charging is
// per item and happens before the push, so under MaxRows = K item K+1 is
// never pushed: the sink sees exactly the length-K prefix, then Deliver
// stops the run with ErrBudgetExceeded and returns the typed error. A sink
// error stops the run and is returned as-is.
func Deliver(ec *Ctx, sink Sink, items xdm.Sequence) error {
	if len(items) == 0 {
		return nil
	}
	if ec == nil {
		return pushAll(sink, items)
	}
	if err := ec.Err(); err != nil {
		return err
	}
	if ec.maxRows == 0 && ec.maxBytes == 0 {
		// No budget: count progress in bulk and keep the bulk sink path.
		ec.st.rows.Add(int64(len(items)))
		if err := pushAll(sink, items); err != nil {
			ec.stopWith(err)
			return err
		}
		return nil
	}
	for _, it := range items {
		rows := ec.st.rows.Add(1)
		if ec.maxRows > 0 && rows > ec.maxRows {
			ec.st.rows.Add(-1) // the item was not delivered
			ec.stopBudget()
			return ec.Err()
		}
		if ec.maxBytes > 0 {
			if ec.st.bytes.Add(itemWeight(it)) > ec.maxBytes {
				ec.st.rows.Add(-1)
				ec.stopBudget()
				return ec.Err()
			}
		}
		if err := sink.Push(it); err != nil {
			ec.stopWith(err)
			return err
		}
	}
	return nil
}

func (ec *Ctx) stopBudget() {
	ec.stopWith(&Error{
		Reason: ErrBudgetExceeded,
		Rows:   ec.st.rows.Load(),
		Bytes:  ec.st.bytes.Load(),
	})
}

func pushAll(sink Sink, items xdm.Sequence) error {
	if b, ok := sink.(bulkSink); ok {
		return b.PushAll(items)
	}
	for _, it := range items {
		if err := sink.Push(it); err != nil {
			return err
		}
	}
	return nil
}

// itemWeight is the O(1) byte-budget charge of one item: nodes are charged
// by their subtree region size times a nominal per-node serialization cost
// (no serialization happens), atomics by their lexical length.
func itemWeight(it xdm.Item) int64 {
	if n, ok := it.(*xdm.Node); ok {
		return int64(n.Size+1) * 16
	}
	return int64(len(xdm.ItemString(it)))
}
