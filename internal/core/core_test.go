package core

import (
	"strings"
	"testing"

	"xqtp/internal/parser"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// personDoc distinguishes Q1a from Q5: the third person's name follows a
// nested person, so mapping over persons (Q5) yields a different order than
// the document-ordered path result (Q1a).
const personDoc = `<doc>
  <person><name>John</name><emailaddress>j@x</emailaddress></person>
  <person><name>Mary</name></person>
  <person>
    <person><name>Nested</name><emailaddress>n@x</emailaddress></person>
    <name>Outer</name>
    <emailaddress>o@x</emailaddress>
  </person>
</doc>`

func evalQuery(t *testing.T, q, doc string) xdm.Sequence {
	t.Helper()
	tr, err := xmlstore.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse %s: %v", q, err)
	}
	c, err := Normalize(e, "dot")
	if err != nil {
		t.Fatalf("normalize %s: %v", q, err)
	}
	env := (*Env)(nil).
		Bind("dot", xdm.Singleton(tr.Root)).
		Bind("d", xdm.Singleton(tr.Root)).
		Bind("input", xdm.Singleton(tr.Root))
	out, err := Eval(c, env)
	if err != nil {
		t.Fatalf("eval %s: %v", q, err)
	}
	return out
}

func stringValues(s xdm.Sequence) []string {
	out := make([]string, len(s))
	for i, it := range s {
		if n, ok := it.(*xdm.Node); ok {
			out[i] = n.StringValue()
		} else {
			out[i] = xdm.ItemString(it)
		}
	}
	return out
}

func TestPaperQuerySemantics(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		// Q1a/Q1b/Q1c are equivalent: names of persons with an email
		// address, in document order.
		{`$d//person[emailaddress]/name`, []string{"John", "Nested", "Outer"}},
		{`(for $x in $d//person[emailaddress] return $x)/name`, []string{"John", "Nested", "Outer"}},
		{`let $x := for $y in $d//person where $y/emailaddress return $y return $x/name`, []string{"John", "Nested", "Outer"}},
		// Q2: selection on the name.
		{`$d//person[name = "John"]/emailaddress`, []string{"j@x"}},
		// Q3: positional predicate over all persons.
		{`$d//person[1]/name`, []string{"John"}},
		// Q4: positional predicate after a selection.
		{`$d//person[name = "John"]/emailaddress[1]`, []string{"j@x"}},
		// Q5 is NOT equivalent to Q1a: results follow iteration order, so
		// Outer precedes Nested... no — iteration visits the outer person
		// before the nested one, and each $x/name is document-ordered per
		// person, giving John, Outer, Nested.
		{`for $x in $d//person[emailaddress] return $x/name`, []string{"John", "Outer", "Nested"}},
		// Mixed positional forms.
		{`$d//person[position() = 1]/name`, []string{"John"}},
		{`$d//person[2]/name`, []string{"Mary"}},
		{`$d//person[position() = last()]/name`, []string{"Nested"}},
		// Attribute-free existence and comparisons.
		{`$d//person[name = "Mary"]/name`, []string{"Mary"}},
		{`for $x in $d//person where $x/name = "Mary" return $x/name`, []string{"Mary"}},
		// count / exists / empty.
		{`count($d//person)`, []string{"4"}},
		{`exists($d//person[emailaddress])`, []string{"true"}},
		{`empty($d//person[name = "Zoe"])`, []string{"true"}},
		// Boolean connectives in predicates.
		{`$d//person[name = "John" and emailaddress]/name`, []string{"John"}},
		{`$d//person[name = "Zoe" or name = "Mary"]/name`, []string{"Mary"}},
		// Absolute paths.
		{`/doc/person[1]/name`, []string{"John"}},
		{`(/doc)/person[2]/name`, []string{"Mary"}},
		// FLWOR with at.
		{`for $x at $i in $d//person where $i = 2 return $x/name`, []string{"Mary"}},
		// Let with where (if-then-else path).
		{`for $x in $d//person let $n := $x/name where $n = "Mary" return $n`, []string{"Mary"}},
	}
	for _, tc := range cases {
		got := stringValues(evalQuery(t, tc.query, personDoc))
		if strings.Join(got, "|") != strings.Join(tc.want, "|") {
			t.Errorf("%s:\n got  %v\n want %v", tc.query, got, tc.want)
		}
	}
}

func TestNormalizeQ1aShape(t *testing.T) {
	e := parser.MustParse(`$d//person[emailaddress]/name`)
	c, err := Normalize(e, "dot")
	if err != nil {
		t.Fatal(err)
	}
	// Top: ddo( let $seq := ddo(...) return let $last := count($seq)
	// return for $dot at $pos in $seq return child::name ).
	call, ok := c.(*Call)
	if !ok || call.Name != "ddo" {
		t.Fatalf("top is %T (%s), want ddo", c, String(c))
	}
	letSeq, ok := call.Args[0].(*Let)
	if !ok {
		t.Fatalf("ddo arg is %T", call.Args[0])
	}
	if _, ok := letSeq.In.(*Call); !ok {
		t.Fatalf("let $seq binds %T, want ddo(...)", letSeq.In)
	}
	letLast, ok := letSeq.Return.(*Let)
	if !ok {
		t.Fatalf("second binding is %T", letSeq.Return)
	}
	cnt, ok := letLast.In.(*Call)
	if !ok || cnt.Name != "count" {
		t.Fatalf("last binds %T", letLast.In)
	}
	f, ok := letLast.Return.(*For)
	if !ok || f.Pos == "" {
		t.Fatalf("for clause missing or without position: %T", letLast.Return)
	}
	st, ok := f.Return.(*Step)
	if !ok || st.Axis != xdm.AxisChild || st.Test.Name != "name" {
		t.Fatalf("return is %T (%s)", f.Return, String(f.Return))
	}
	// The predicate produced a typeswitch with a numeric case somewhere.
	s := String(c)
	if !strings.Contains(s, "typeswitch") || !strings.Contains(s, "numeric()") {
		t.Errorf("normalized form lacks predicate typeswitch: %s", s)
	}
	if !strings.Contains(s, "boolean(") {
		t.Errorf("normalized form lacks default boolean branch: %s", s)
	}
}

func TestNormalizeErrors(t *testing.T) {
	for _, q := range []string{
		`position()`,         // outside a predicate
		`last()`,             // outside a predicate
		`frobnicate($a, $b)`, // unknown function
		`count($a, $b)`,      // wrong arity
	} {
		e, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		if _, err := Normalize(e, "dot"); err == nil {
			t.Errorf("Normalize(%s) should fail", q)
		}
	}
	// No context: '.' and absolute paths fail.
	for _, q := range []string{`.`, `/a`, `child::a`} {
		e, _ := parser.Parse(q)
		if _, err := Normalize(e, ""); err == nil {
			t.Errorf("Normalize(%s) without context should fail", q)
		}
	}
}

func TestUsageAndSubst(t *testing.T) {
	e := parser.MustParse(`for $x in $d/a return $x/b`)
	c, err := Normalize(e, "dot")
	if err != nil {
		t.Fatal(err)
	}
	if got := Usage(c, "d"); got != 1 {
		t.Errorf("Usage($d) = %d", got)
	}
	if got := Usage(c, "x"); got != 0 {
		// $x is bound by the for; no free occurrences.
		t.Errorf("Usage($x) = %d, want 0 (bound)", got)
	}
	// Substituting a free variable.
	c2 := Subst(c, "d", &StringLit{Value: "gone"})
	if Usage(c2, "d") != 0 {
		t.Error("Subst left occurrences of $d")
	}
	// Shadowed variables are untouched.
	inner := &For{Var: "y", In: &Var{Name: "y"}, Return: &Var{Name: "y"}}
	out := Subst(inner, "y", &StringLit{Value: "z"}).(*For)
	if _, ok := out.In.(*StringLit); !ok {
		t.Error("free occurrence in For.In not substituted")
	}
	if _, ok := out.Return.(*Var); !ok {
		t.Error("bound occurrence in For.Return wrongly substituted")
	}
}

func TestEvalErrors(t *testing.T) {
	tr, _ := xmlstore.ParseString(`<a><b/></a>`)
	env := (*Env)(nil).Bind("d", xdm.Singleton(tr.Root))
	for _, q := range []string{
		`$nope`,        // unbound variable
		`"x"/child::b`, // step on atomic
	} {
		e := parser.MustParse(q)
		c, err := Normalize(e, "d")
		if err != nil {
			continue // normalization may reject some; that is fine too
		}
		if _, err := Eval(c, env); err == nil {
			t.Errorf("Eval(%s) should fail", q)
		}
	}
}

func TestPrettyAndString(t *testing.T) {
	e := parser.MustParse(`$d//person[emailaddress]/name`)
	c, _ := Normalize(e, "dot")
	if s := Pretty(c); !strings.Contains(s, "for $") || !strings.Contains(s, "\n") {
		t.Errorf("Pretty output unexpected: %s", s)
	}
	if s := String(c); !strings.Contains(s, "descendant::person") {
		t.Errorf("String output unexpected: %s", s)
	}
}
