package core

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders a core expression in the paper's notation, on one line.
func String(e Expr) string {
	var b strings.Builder
	printCore(&b, e)
	return b.String()
}

// Pretty renders a core expression with indentation, for plan inspection.
func Pretty(e Expr) string {
	var b strings.Builder
	prettyCore(&b, e, 0)
	return b.String()
}

func printCore(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Var:
		b.WriteString("$" + x.Name)
	case *StringLit:
		fmt.Fprintf(b, "%q", x.Value)
	case *NumberLit:
		if x.IsInt {
			b.WriteString(strconv.FormatInt(int64(x.Value), 10))
		} else {
			b.WriteString(strconv.FormatFloat(x.Value, 'g', -1, 64))
		}
	case *EmptySeq:
		b.WriteString("()")
	case *Step:
		printCore(b, x.Input)
		fmt.Fprintf(b, "/%s::%s", x.Axis, x.Test)
	case *For:
		b.WriteString("for $" + x.Var)
		if x.Pos != "" {
			b.WriteString(" at $" + x.Pos)
		}
		b.WriteString(" in ")
		printCore(b, x.In)
		if x.Where != nil {
			b.WriteString(" where ")
			printCore(b, x.Where)
		}
		b.WriteString(" return (")
		printCore(b, x.Return)
		b.WriteString(")")
	case *Let:
		b.WriteString("let $" + x.Var + " := ")
		printCore(b, x.In)
		b.WriteString(" return (")
		printCore(b, x.Return)
		b.WriteString(")")
	case *If:
		b.WriteString("if (")
		printCore(b, x.Cond)
		b.WriteString(") then (")
		printCore(b, x.Then)
		b.WriteString(") else (")
		printCore(b, x.Else)
		b.WriteString(")")
	case *TypeSwitch:
		b.WriteString("typeswitch (")
		printCore(b, x.Input)
		b.WriteString(")")
		for _, c := range x.Cases {
			fmt.Fprintf(b, " case $%s as %s return (", c.Var, c.Type)
			printCore(b, c.Body)
			b.WriteString(")")
		}
		b.WriteString(" default")
		if x.DefVar != "" {
			b.WriteString(" $" + x.DefVar)
		}
		b.WriteString(" return (")
		printCore(b, x.Default)
		b.WriteString(")")
	case *Call:
		b.WriteString(x.Name + "(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printCore(b, a)
		}
		b.WriteString(")")
	case *Compare:
		printCore(b, x.L)
		fmt.Fprintf(b, " %s ", x.Op)
		printCore(b, x.R)
	case *Sequence:
		b.WriteString("(")
		for i, it := range x.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			printCore(b, it)
		}
		b.WriteString(")")
	case *Arith:
		b.WriteString("(")
		printCore(b, x.L)
		fmt.Fprintf(b, " %s ", x.Op)
		printCore(b, x.R)
		b.WriteString(")")
	case *And:
		b.WriteString("(")
		printCore(b, x.L)
		b.WriteString(" and ")
		printCore(b, x.R)
		b.WriteString(")")
	case *Or:
		b.WriteString("(")
		printCore(b, x.L)
		b.WriteString(" or ")
		printCore(b, x.R)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "?%T?", e)
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func prettyCore(b *strings.Builder, e Expr, depth int) {
	switch x := e.(type) {
	case *For:
		b.WriteString("for $" + x.Var)
		if x.Pos != "" {
			b.WriteString(" at $" + x.Pos)
		}
		b.WriteString(" in ")
		prettyCore(b, x.In, depth+1)
		if x.Where != nil {
			b.WriteString("\n")
			indent(b, depth)
			b.WriteString("where ")
			prettyCore(b, x.Where, depth+1)
		}
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("return ")
		prettyCore(b, x.Return, depth+1)
	case *Let:
		b.WriteString("let $" + x.Var + " := ")
		prettyCore(b, x.In, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("return ")
		prettyCore(b, x.Return, depth+1)
	case *Call:
		if x.Name == "ddo" && len(x.Args) == 1 {
			b.WriteString("ddo(")
			prettyCore(b, x.Args[0], depth+1)
			b.WriteString(")")
			return
		}
		printCore(b, x)
	case *TypeSwitch:
		b.WriteString("typeswitch (")
		prettyCore(b, x.Input, depth+1)
		b.WriteString(")")
		for _, c := range x.Cases {
			b.WriteString("\n")
			indent(b, depth+1)
			fmt.Fprintf(b, "case $%s as %s return ", c.Var, c.Type)
			prettyCore(b, c.Body, depth+2)
		}
		b.WriteString("\n")
		indent(b, depth+1)
		b.WriteString("default")
		if x.DefVar != "" {
			b.WriteString(" $" + x.DefVar)
		}
		b.WriteString(" return ")
		prettyCore(b, x.Default, depth+2)
	default:
		printCore(b, e)
	}
}
