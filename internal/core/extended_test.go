package core

import (
	"strings"
	"testing"
)

// Semantics of the extended fragment: sequences, arithmetic, union,
// if/then/else, quantifiers, and the function library.
func TestExtendedFragmentSemantics(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		// Sequence construction and union.
		{`(1, 2, 3)`, []string{"1", "2", "3"}},
		{`count(($d//name, $d//emailaddress))`, []string{"7"}},
		// Union is distinct-document-order: names and emails interleaved.
		{`count($d//name | $d//emailaddress)`, []string{"7"}},
		{`($d//person[1]/name | $d//person[1]/name)/text()`, []string{"John"}},
		// Arithmetic.
		{`1 + 2 * 3`, []string{"7"}},
		{`(1 + 2) * 3`, []string{"9"}},
		{`7 idiv 2`, []string{"3"}},
		{`7 mod 2`, []string{"1"}},
		{`-(3 - 5)`, []string{"2"}},
		{`count($d//person) - 1`, []string{"3"}},
		{`$d//person[position() = last() - 2]/name`, []string{"Mary"}},
		// if/then/else.
		{`if ($d//person[name = "John"]) then "yes" else "no"`, []string{"yes"}},
		{`if ($d//person[name = "Zoe"]) then "yes" else "no"`, []string{"no"}},
		// Quantifiers.
		{`some $x in $d//person satisfies $x/name = "Mary"`, []string{"true"}},
		{`every $x in $d//person satisfies $x/name`, []string{"true"}},
		{`every $x in $d//person satisfies $x/emailaddress`, []string{"false"}},
		{`some $x in $d//person, $y in $x/person satisfies $y/emailaddress`, []string{"true"}},
		// Function library.
		{`string($d//person[2]/name)`, []string{"Mary"}},
		{`concat("<", $d//name[1], ">")`, []string{"<John>"}},
		{`count($d//person[contains(name, "oh")])`, []string{"1"}},
		{`count($d//person[starts-with(name, "M")])`, []string{"1"}},
		{`string-length($d//name[1])`, []string{"4"}},
		{`substring("hello", 2, 3)`, []string{"ell"}},
		{`normalize-space("  a   b ")`, []string{"a b"}},
		{`number("3.5") + 1`, []string{"4.5"}},
		{`sum((1, 2, 3))`, []string{"6"}},
		{`avg((1, 2))`, []string{"1.5"}},
		{`min((4, 2, 9))`, []string{"2"}},
		{`max((4, 2, 9))`, []string{"9"}},
		{`name($d//person[1]/name)`, []string{"name"}},
		{`count(data($d//name))`, []string{"4"}},
		// string() / number() on the context item inside predicates.
		{`count($d//name[string() = "John"])`, []string{"1"}},
	}
	for _, tc := range cases {
		got := stringValues(evalQuery(t, tc.query, personDoc))
		if strings.Join(got, "|") != strings.Join(tc.want, "|") {
			t.Errorf("%s:\n got  %v\n want %v", tc.query, got, tc.want)
		}
	}
}

// The name lexing gotcha: a-b is one name, a - b is subtraction.
func TestHyphenVsMinus(t *testing.T) {
	got := stringValues(evalQuery(t, `3 -1`, personDoc))
	if len(got) != 1 || got[0] != "2" {
		t.Errorf("3 -1 = %v", got)
	}
	// closed-auction style names still work as single steps.
	got = stringValues(evalQuery(t, `count($d//closed-thing)`, `<doc><closed-thing/></doc>`))
	if len(got) != 1 || got[0] != "1" {
		t.Errorf("hyphenated name = %v", got)
	}
}

// Union results are document-ordered and duplicate-free even when the
// operands overlap or arrive out of order.
func TestUnionDDOSemantics(t *testing.T) {
	doc := `<doc><a/><b/><a/></doc>`
	got := evalQuery(t, `count($d//b | $d//a | $d//a)`, doc)
	if len(got) != 1 || stringValues(got)[0] != "3" {
		t.Errorf("union count = %v", stringValues(got))
	}
}

// The reverse and horizontal axes evaluate correctly end to end (they stay
// outside the tree-pattern fragment; the nested loop handles them).
func TestExtraAxes(t *testing.T) {
	doc := `<doc><a/><b><c/><d/><c/></b><e/></doc>`
	cases := []struct {
		query string
		want  string
	}{
		{`count($d//c[1]/following-sibling::node())`, "2"},
		{`count($d//d/preceding-sibling::c)`, "1"},
		{`name($d//b/following::*[1])`, "e"},
		{`count($d//e/preceding::*)`, "5"}, // a, b, c, d, c
		{`name($d//d/parent::*)`, "b"},
		{`count($d//d/ancestor::*)`, "2"},
		{`count($d//d/ancestor-or-self::node())`, "4"},
	}
	for _, tc := range cases {
		got := stringValues(evalQuery(t, tc.query, doc))
		if len(got) != 1 || got[0] != tc.want {
			t.Errorf("%s = %v, want %s", tc.query, got, tc.want)
		}
	}
}
