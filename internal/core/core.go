// Package core defines the XQuery Core — the normalized form that queries
// are lowered into before rewriting (paper §2). Normalization exposes the
// implicit iteration of XPath's E1/E2 and E1[E2] expressions as explicit
// for-loops with context, position and last bindings, inserts
// fs:distinct-doc-order (ddo) calls, and compiles predicates into typeswitch
// expressions, exactly as in the paper's worked example Q1a-n.
//
// The package also contains a naive reference interpreter for the core; the
// rewriting and optimization phases are differentially tested against it.
package core

import (
	"xqtp/internal/xdm"
)

// Expr is an XQuery Core expression.
type Expr interface {
	isCore()
}

// Var is a variable reference.
type Var struct {
	Name string
}

// StringLit is a string literal.
type StringLit struct {
	Value string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	IsInt bool
}

// EmptySeq is the empty sequence.
type EmptySeq struct{}

// Step is an axis step applied to an input expression. Normalization always
// produces steps whose input is the current context variable; the explicit
// input makes compilation into TreeJoin operators direct.
type Step struct {
	Input Expr
	Axis  xdm.Axis
	Test  xdm.NodeTest
}

// For is the core iteration construct, with an optional positional variable
// and an optional where condition (evaluated via its effective boolean
// value).
type For struct {
	Var    string
	Pos    string // positional variable, "" if absent
	In     Expr
	Where  Expr // nil if absent
	Return Expr
}

// Let binds a variable.
type Let struct {
	Var    string
	In     Expr
	Return Expr
}

// If is a two-branch conditional (the else branch is the empty sequence when
// normalization introduces it for a where clause over a let).
type If struct {
	Cond Expr // tested via effective boolean value
	Then Expr
	Else Expr
}

// SeqType is the small type algebra used by typeswitch and the static
// typing judgment of the type rewritings.
type SeqType uint8

// Core sequence types.
const (
	TypeUnknown SeqType = iota
	TypeEmpty
	TypeNodes
	TypeNumeric
	TypeString
	TypeBoolean
)

// String names the type as it appears in typeswitch cases.
func (t SeqType) String() string {
	switch t {
	case TypeEmpty:
		return "empty()"
	case TypeNodes:
		return "node()*"
	case TypeNumeric:
		return "numeric()"
	case TypeString:
		return "xs:string"
	case TypeBoolean:
		return "xs:boolean"
	}
	return "item()*"
}

// TypeSwitch is the core typeswitch expression produced when normalizing
// XPath predicates: the numeric case turns the predicate into a positional
// test, the default case into an effective-boolean-value test.
type TypeSwitch struct {
	Input   Expr
	Cases   []TSCase
	DefVar  string // "" when the default expression ignores the value
	Default Expr
}

// TSCase is one case clause of a typeswitch.
type TSCase struct {
	Type SeqType
	Var  string
	Body Expr
}

// Call is a call to one of the core builtin functions: "ddo"
// (fs:distinct-doc-order), "count", "boolean", "not", "empty", "exists",
// "root".
type Call struct {
	Name string
	Args []Expr
}

// Compare is a general comparison.
type Compare struct {
	Op   xdm.CompareOp
	L, R Expr
}

// Sequence is sequence concatenation (E1, E2, …).
type Sequence struct {
	Items []Expr
}

// Arith is binary arithmetic over atomized singleton operands.
type Arith struct {
	Op   xdm.ArithOp
	L, R Expr
}

// And is conjunction over effective boolean values.
type And struct {
	L, R Expr
}

// Or is disjunction over effective boolean values.
type Or struct {
	L, R Expr
}

func (*Var) isCore()        {}
func (*StringLit) isCore()  {}
func (*NumberLit) isCore()  {}
func (*EmptySeq) isCore()   {}
func (*Step) isCore()       {}
func (*For) isCore()        {}
func (*Let) isCore()        {}
func (*If) isCore()         {}
func (*TypeSwitch) isCore() {}
func (*Call) isCore()       {}
func (*Compare) isCore()    {}
func (*Sequence) isCore()   {}
func (*Arith) isCore()      {}
func (*And) isCore()        {}
func (*Or) isCore()         {}

// Children returns the direct subexpressions of e, in evaluation order.
func Children(e Expr) []Expr {
	switch x := e.(type) {
	case *Step:
		return []Expr{x.Input}
	case *For:
		out := []Expr{x.In}
		if x.Where != nil {
			out = append(out, x.Where)
		}
		return append(out, x.Return)
	case *Let:
		return []Expr{x.In, x.Return}
	case *If:
		return []Expr{x.Cond, x.Then, x.Else}
	case *TypeSwitch:
		out := []Expr{x.Input}
		for _, c := range x.Cases {
			out = append(out, c.Body)
		}
		return append(out, x.Default)
	case *Call:
		return x.Args
	case *Compare:
		return []Expr{x.L, x.R}
	case *Sequence:
		return x.Items
	case *Arith:
		return []Expr{x.L, x.R}
	case *And:
		return []Expr{x.L, x.R}
	case *Or:
		return []Expr{x.L, x.R}
	}
	return nil
}

// Usage counts the number of free occurrences of variable name in e,
// respecting shadowing by for/let/typeswitch bindings.
func Usage(e Expr, name string) int {
	switch x := e.(type) {
	case *Var:
		if x.Name == name {
			return 1
		}
		return 0
	case *For:
		n := Usage(x.In, name)
		if x.Var == name || x.Pos == name {
			return n
		}
		if x.Where != nil {
			n += Usage(x.Where, name)
		}
		return n + Usage(x.Return, name)
	case *Let:
		n := Usage(x.In, name)
		if x.Var == name {
			return n
		}
		return n + Usage(x.Return, name)
	case *TypeSwitch:
		n := Usage(x.Input, name)
		for _, c := range x.Cases {
			if c.Var != name {
				n += Usage(c.Body, name)
			}
		}
		if x.DefVar != name {
			n += Usage(x.Default, name)
		}
		return n
	}
	n := 0
	for _, c := range Children(e) {
		n += Usage(c, name)
	}
	return n
}

// Subst returns e with every free occurrence of variable name replaced by
// repl. Normalization generates globally unique variable names, so no
// capture can occur; Subst still respects shadowing for safety.
func Subst(e Expr, name string, repl Expr) Expr {
	switch x := e.(type) {
	case *Var:
		if x.Name == name {
			return repl
		}
		return x
	case *StringLit, *NumberLit, *EmptySeq:
		return x
	case *Step:
		return &Step{Input: Subst(x.Input, name, repl), Axis: x.Axis, Test: x.Test}
	case *For:
		out := &For{Var: x.Var, Pos: x.Pos, In: Subst(x.In, name, repl), Where: x.Where, Return: x.Return}
		if x.Var != name && x.Pos != name {
			if x.Where != nil {
				out.Where = Subst(x.Where, name, repl)
			}
			out.Return = Subst(x.Return, name, repl)
		}
		return out
	case *Let:
		out := &Let{Var: x.Var, In: Subst(x.In, name, repl), Return: x.Return}
		if x.Var != name {
			out.Return = Subst(x.Return, name, repl)
		}
		return out
	case *If:
		return &If{Cond: Subst(x.Cond, name, repl), Then: Subst(x.Then, name, repl), Else: Subst(x.Else, name, repl)}
	case *TypeSwitch:
		out := &TypeSwitch{Input: Subst(x.Input, name, repl), DefVar: x.DefVar, Default: x.Default}
		for _, c := range x.Cases {
			if c.Var != name {
				c.Body = Subst(c.Body, name, repl)
			}
			out.Cases = append(out.Cases, c)
		}
		if x.DefVar != name {
			out.Default = Subst(x.Default, name, repl)
		}
		return out
	case *Call:
		out := &Call{Name: x.Name, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			out.Args[i] = Subst(a, name, repl)
		}
		return out
	case *Compare:
		return &Compare{Op: x.Op, L: Subst(x.L, name, repl), R: Subst(x.R, name, repl)}
	case *Sequence:
		out := &Sequence{Items: make([]Expr, len(x.Items))}
		for i, it := range x.Items {
			out.Items[i] = Subst(it, name, repl)
		}
		return out
	case *Arith:
		return &Arith{Op: x.Op, L: Subst(x.L, name, repl), R: Subst(x.R, name, repl)}
	case *And:
		return &And{L: Subst(x.L, name, repl), R: Subst(x.R, name, repl)}
	case *Or:
		return &Or{L: Subst(x.L, name, repl), R: Subst(x.R, name, repl)}
	}
	return e
}
