package core

import (
	"fmt"

	"xqtp/internal/funcs"
	"xqtp/internal/xdm"
)

// Env is an immutable evaluation environment (a linked list of bindings).
type Env struct {
	name   string
	val    xdm.Sequence
	parent *Env
	// docs resolves fn:doc / fn:collection; usually set on the root link by
	// BindDocs and found by walking the chain.
	docs xdm.DocResolver
}

// Bind returns a new environment extending env with name ↦ val.
func (env *Env) Bind(name string, val xdm.Sequence) *Env {
	return &Env{name: name, val: val, parent: env}
}

// BindDocs returns a new environment extending env with a document resolver
// for fn:doc and fn:collection.
func (env *Env) BindDocs(docs xdm.DocResolver) *Env {
	return &Env{parent: env, docs: docs}
}

// resolver returns the innermost document resolver in scope.
func (env *Env) resolver() xdm.DocResolver {
	for e := env; e != nil; e = e.parent {
		if e.docs != nil {
			return e.docs
		}
	}
	return nil
}

// Lookup resolves a variable.
func (env *Env) Lookup(name string) (xdm.Sequence, bool) {
	for e := env; e != nil; e = e.parent {
		if e.name == name {
			return e.val, true
		}
	}
	return nil, false
}

// Eval evaluates a core expression under env with the naive reference
// semantics. It is the oracle that the rewriting and algebraic phases are
// differentially tested against.
func Eval(e Expr, env *Env) (xdm.Sequence, error) {
	switch x := e.(type) {
	case *Var:
		v, ok := env.Lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("core: unbound variable $%s", x.Name)
		}
		return v, nil
	case *StringLit:
		return xdm.Singleton(xdm.String(x.Value)), nil
	case *NumberLit:
		if x.IsInt {
			return xdm.Singleton(xdm.Integer(int64(x.Value))), nil
		}
		return xdm.Singleton(xdm.Float(x.Value)), nil
	case *EmptySeq:
		return nil, nil
	case *Step:
		return evalStep(x, env)
	case *For:
		return evalFor(x, env)
	case *Let:
		v, err := Eval(x.In, env)
		if err != nil {
			return nil, err
		}
		return Eval(x.Return, env.Bind(x.Var, v))
	case *If:
		c, err := Eval(x.Cond, env)
		if err != nil {
			return nil, err
		}
		b, err := xdm.EffectiveBool(c)
		if err != nil {
			return nil, err
		}
		if b {
			return Eval(x.Then, env)
		}
		return Eval(x.Else, env)
	case *TypeSwitch:
		return evalTypeSwitch(x, env)
	case *Call:
		return evalCall(x, env)
	case *Compare:
		l, err := Eval(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return nil, err
		}
		b, err := xdm.GeneralCompare(x.Op, l, r)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Bool(b)), nil
	case *Sequence:
		var out xdm.Sequence
		for _, it := range x.Items {
			v, err := Eval(it, env)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *Arith:
		l, err := Eval(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return nil, err
		}
		return xdm.Arithmetic(x.Op, l, r)
	case *And:
		l, err := evalBool(x.L, env)
		if err != nil {
			return nil, err
		}
		if !l {
			return xdm.Singleton(xdm.Bool(false)), nil
		}
		r, err := evalBool(x.R, env)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Bool(r)), nil
	case *Or:
		l, err := evalBool(x.L, env)
		if err != nil {
			return nil, err
		}
		if l {
			return xdm.Singleton(xdm.Bool(true)), nil
		}
		r, err := evalBool(x.R, env)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Bool(r)), nil
	}
	return nil, fmt.Errorf("core: cannot evaluate %T", e)
}

func evalBool(e Expr, env *Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	return xdm.EffectiveBool(v)
}

// evalStep maps the axis step over the input items, concatenating results
// per item (the input is a singleton context variable in normalized code).
func evalStep(s *Step, env *Env) (xdm.Sequence, error) {
	in, err := Eval(s.Input, env)
	if err != nil {
		return nil, err
	}
	var out xdm.Sequence
	for _, it := range in {
		n, ok := it.(*xdm.Node)
		if !ok {
			return nil, fmt.Errorf("core: axis step applied to atomic value %T", it)
		}
		for _, m := range xdm.Step(n, s.Axis, s.Test) {
			out = append(out, m)
		}
	}
	return out, nil
}

func evalFor(f *For, env *Env) (xdm.Sequence, error) {
	in, err := Eval(f.In, env)
	if err != nil {
		return nil, err
	}
	var out xdm.Sequence
	for i, it := range in {
		bodyEnv := env.Bind(f.Var, xdm.Singleton(it))
		if f.Pos != "" {
			bodyEnv = bodyEnv.Bind(f.Pos, xdm.Singleton(xdm.Integer(i+1)))
		}
		if f.Where != nil {
			keep, err := evalBool(f.Where, bodyEnv)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		v, err := Eval(f.Return, bodyEnv)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

// evalTypeSwitch matches the dynamic type of the input against each case in
// order; numeric() matches singleton numeric values.
func evalTypeSwitch(ts *TypeSwitch, env *Env) (xdm.Sequence, error) {
	in, err := Eval(ts.Input, env)
	if err != nil {
		return nil, err
	}
	for _, c := range ts.Cases {
		if matchesType(in, c.Type) {
			cEnv := env
			if c.Var != "" {
				cEnv = env.Bind(c.Var, in)
			}
			return Eval(c.Body, cEnv)
		}
	}
	dEnv := env
	if ts.DefVar != "" {
		dEnv = env.Bind(ts.DefVar, in)
	}
	return Eval(ts.Default, dEnv)
}

// matchesType implements the dynamic type test of the typeswitch cases.
func matchesType(s xdm.Sequence, t SeqType) bool {
	switch t {
	case TypeEmpty:
		return len(s) == 0
	case TypeNumeric:
		return len(s) == 1 && xdm.IsNumeric(s[0])
	case TypeBoolean:
		if len(s) != 1 {
			return false
		}
		_, ok := s[0].(xdm.Bool)
		return ok
	case TypeString:
		if len(s) != 1 {
			return false
		}
		_, ok := s[0].(xdm.String)
		return ok
	case TypeNodes:
		for _, it := range s {
			if _, ok := it.(*xdm.Node); !ok {
				return false
			}
		}
		return true
	}
	return true
}

func evalCall(c *Call, env *Env) (xdm.Sequence, error) {
	if err := funcs.CheckArity(c.Name, len(c.Args)); err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	args := make([]xdm.Sequence, len(c.Args))
	for i, a := range c.Args {
		v, err := Eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	// The collection access functions read the environment's document
	// resolver; everything else is a pure function of its arguments.
	switch c.Name {
	case "doc", "collection":
		if docs := env.resolver(); docs != nil {
			out, err := evalDocAccess(c.Name, args, docs)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			return out, nil
		}
	}
	out, err := funcs.Invoke(c.Name, args)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return out, nil
}

// evalDocAccess evaluates fn:doc / fn:collection against a resolver.
func evalDocAccess(name string, args []xdm.Sequence, docs xdm.DocResolver) (xdm.Sequence, error) {
	if name == "doc" {
		uri, err := funcs.DocArg("doc", args[0])
		if err != nil {
			return nil, err
		}
		n, err := docs.ResolveDoc(uri)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(n), nil
	}
	coll := ""
	if len(args) == 1 {
		c, err := funcs.DocArg("collection", args[0])
		if err != nil {
			return nil, err
		}
		coll = c
	}
	return docs.ResolveCollection(coll)
}
