package core

import (
	"fmt"

	"xqtp/internal/ast"
	"xqtp/internal/funcs"
	"xqtp/internal/xdm"
)

// Normalizer lowers surface syntax into the XQuery Core, generating
// globally unique variable names (dot_N, seq_N, pos_N, last_N, v_N).
type Normalizer struct {
	counter int
}

// nctx carries the names of the context bindings in scope: the context item
// ($dot), the context position ($position) and the context size ($last).
type nctx struct {
	dot, pos, last string
}

// Normalize lowers a surface expression to the core. contextVar, if
// non-empty, names the variable holding the initial context item (what "."
// and absolute paths resolve against).
func Normalize(e ast.Expr, contextVar string) (Expr, error) {
	n := &Normalizer{}
	return n.norm(e, nctx{dot: contextVar})
}

func (n *Normalizer) fresh(stem string) string {
	n.counter++
	return fmt.Sprintf("%s_%d", stem, n.counter)
}

func (n *Normalizer) norm(e ast.Expr, ctx nctx) (Expr, error) {
	switch x := e.(type) {
	case *ast.VarRef:
		return &Var{Name: x.Name}, nil
	case *ast.StringLit:
		return &StringLit{Value: x.Value}, nil
	case *ast.NumberLit:
		return &NumberLit{Value: x.Value, IsInt: x.IsInt}, nil
	case *ast.EmptySeq:
		return &EmptySeq{}, nil
	case *ast.ContextItem:
		if ctx.dot == "" {
			return nil, fmt.Errorf("core: '.' used without a context item")
		}
		return &Var{Name: ctx.dot}, nil
	case *ast.Root:
		if ctx.dot == "" {
			return nil, fmt.Errorf("core: absolute path used without a context item")
		}
		return &Call{Name: "root", Args: []Expr{&Var{Name: ctx.dot}}}, nil
	case *ast.Step:
		if ctx.dot == "" {
			return nil, fmt.Errorf("core: axis step used without a context item")
		}
		base := Expr(&Step{Input: &Var{Name: ctx.dot}, Axis: x.Axis, Test: x.Test})
		return n.normPreds(base, x.Preds, ctx)
	case *ast.Filter:
		base, err := n.norm(x.Primary, ctx)
		if err != nil {
			return nil, err
		}
		return n.normPreds(base, x.Preds, ctx)
	case *ast.Path:
		return n.normPath(x, ctx)
	case *ast.FLWOR:
		return n.normFLWOR(x, ctx)
	case *ast.Compare:
		l, err := n.norm(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := n.norm(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &Compare{Op: x.Op, L: l, R: r}, nil
	case *ast.And:
		l, err := n.norm(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := n.norm(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &And{L: l, R: r}, nil
	case *ast.Or:
		l, err := n.norm(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := n.norm(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &Or{L: l, R: r}, nil
	case *ast.Call:
		return n.normCall(x, ctx)
	case *ast.SeqExpr:
		out := &Sequence{Items: make([]Expr, len(x.Items))}
		for i, it := range x.Items {
			ni, err := n.norm(it, ctx)
			if err != nil {
				return nil, err
			}
			out.Items[i] = ni
		}
		return out, nil
	case *ast.Arith:
		l, err := n.norm(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := n.norm(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return &Arith{Op: x.Op, L: l, R: r}, nil
	case *ast.Neg:
		// -E normalizes to 0 - E.
		operand, err := n.norm(x.X, ctx)
		if err != nil {
			return nil, err
		}
		return &Arith{Op: xdm.OpSub, L: &NumberLit{Value: 0, IsInt: true}, R: operand}, nil
	case *ast.IfExpr:
		cond, err := n.norm(x.Cond, ctx)
		if err != nil {
			return nil, err
		}
		then, err := n.norm(x.Then, ctx)
		if err != nil {
			return nil, err
		}
		els, err := n.norm(x.Else, ctx)
		if err != nil {
			return nil, err
		}
		return &If{Cond: cond, Then: then, Else: els}, nil
	case *ast.Union:
		// E1 | E2 has distinct-document-order semantics over the combined
		// node sequences.
		l, err := n.norm(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := n.norm(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return ddo(&Sequence{Items: []Expr{l, r}}), nil
	case *ast.Quantified:
		return n.normQuantified(x, ctx)
	}
	return nil, fmt.Errorf("core: cannot normalize %T", e)
}

// normQuantified lowers quantified expressions:
//
//	some  $x in E satisfies C  ⇒  fn:exists(for $x in E where C return $x)
//	every $x in E satisfies C  ⇒  fn:empty(for $x in E where fn:not(C) return $x)
func (n *Normalizer) normQuantified(q *ast.Quantified, ctx nctx) (Expr, error) {
	cond, err := n.norm(q.Satisfies, ctx)
	if err != nil {
		return nil, err
	}
	if q.Every {
		cond = &Call{Name: "not", Args: []Expr{cond}}
	}
	// Innermost body: the last binding's variable (any non-empty witness).
	last := q.Bindings[len(q.Bindings)-1]
	body := Expr(&For{
		Var:    last.Var,
		Where:  cond,
		Return: &Var{Name: last.Var},
	})
	in, err := n.norm(last.In, ctx)
	if err != nil {
		return nil, err
	}
	body.(*For).In = in
	for i := len(q.Bindings) - 2; i >= 0; i-- {
		b := q.Bindings[i]
		in, err := n.norm(b.In, ctx)
		if err != nil {
			return nil, err
		}
		body = &For{Var: b.Var, In: in, Return: body}
	}
	if q.Every {
		return &Call{Name: "empty", Args: []Expr{body}}, nil
	}
	return &Call{Name: "exists", Args: []Expr{body}}, nil
}

// normPath implements the normalization of E1/E2 (paper §2, Q1a-n lines
// 1-2, 18-20):
//
//	ddo( let $seq := ddo([E1]),
//	     let $last := fn:count($seq)
//	     for $dot at $position in $seq
//	     return [E2] )
func (n *Normalizer) normPath(p *ast.Path, ctx nctx) (Expr, error) {
	left, err := n.norm(p.Left, ctx)
	if err != nil {
		return nil, err
	}
	seq := n.fresh("seq")
	last := n.fresh("last")
	dot := n.fresh("dot")
	pos := n.fresh("pos")
	right, err := n.norm(p.Right, nctx{dot: dot, pos: pos, last: last})
	if err != nil {
		return nil, err
	}
	return ddo(&Let{
		Var: seq,
		In:  ddo(left),
		Return: &Let{
			Var: last,
			In:  &Call{Name: "count", Args: []Expr{&Var{Name: seq}}},
			Return: &For{
				Var:    dot,
				Pos:    pos,
				In:     &Var{Name: seq},
				Return: right,
			},
		},
	}), nil
}

// normPreds implements the normalization of E[P] (paper §2, Q1a-n lines
// 3, 8-17):
//
//	let $seq := ddo([E]),
//	let $last := fn:count($seq)
//	for $dot at $position in $seq
//	where typeswitch ([P])
//	      case $v as numeric() return $position = $v
//	      default $v' return fn:boolean($v')
//	return $dot
func (n *Normalizer) normPreds(base Expr, preds []ast.Expr, _ nctx) (Expr, error) {
	for _, p := range preds {
		seq := n.fresh("seq")
		last := n.fresh("last")
		dot := n.fresh("dot")
		pos := n.fresh("pos")
		pn, err := n.norm(p, nctx{dot: dot, pos: pos, last: last})
		if err != nil {
			return nil, err
		}
		vNum := n.fresh("v")
		vDef := n.fresh("v")
		ts := &TypeSwitch{
			Input: pn,
			Cases: []TSCase{{
				Type: TypeNumeric,
				Var:  vNum,
				Body: &Compare{Op: xdm.OpEq, L: &Var{Name: pos}, R: &Var{Name: vNum}},
			}},
			DefVar:  vDef,
			Default: &Call{Name: "boolean", Args: []Expr{&Var{Name: vDef}}},
		}
		base = &Let{
			Var: seq,
			In:  ddo(base),
			Return: &Let{
				Var: last,
				In:  &Call{Name: "count", Args: []Expr{&Var{Name: seq}}},
				Return: &For{
					Var:    dot,
					Pos:    pos,
					In:     &Var{Name: seq},
					Where:  ts,
					Return: &Var{Name: dot},
				},
			},
		}
	}
	return base, nil
}

// normFLWOR lowers a surface FLWOR. The where condition applies after all
// clauses: it becomes the Where of the last clause when that clause is a
// for, and an if-then-else around the return otherwise.
func (n *Normalizer) normFLWOR(f *ast.FLWOR, ctx nctx) (Expr, error) {
	body, err := n.norm(f.Return, ctx)
	if err != nil {
		return nil, err
	}
	var cond Expr
	if f.Where != nil {
		cond, err = n.norm(f.Where, ctx)
		if err != nil {
			return nil, err
		}
	}
	if cond != nil {
		if last := f.Clauses[len(f.Clauses)-1]; last.Kind != ast.ForClause {
			body = &If{Cond: cond, Then: body, Else: &EmptySeq{}}
			cond = nil
		}
	}
	for i := len(f.Clauses) - 1; i >= 0; i-- {
		cl := f.Clauses[i]
		in, err := n.norm(cl.Expr, ctx)
		if err != nil {
			return nil, err
		}
		switch cl.Kind {
		case ast.ForClause:
			fe := &For{Var: cl.Var, Pos: cl.At, In: in, Return: body}
			if i == len(f.Clauses)-1 && cond != nil {
				fe.Where = cond
			}
			body = fe
		case ast.LetClause:
			body = &Let{Var: cl.Var, In: in, Return: body}
		}
	}
	return body, nil
}

func (n *Normalizer) normCall(c *ast.Call, ctx nctx) (Expr, error) {
	switch c.Name {
	case "position":
		if len(c.Args) != 0 {
			return nil, fmt.Errorf("core: position() takes no arguments")
		}
		if ctx.pos == "" {
			return nil, fmt.Errorf("core: position() used outside a predicate")
		}
		return &Var{Name: ctx.pos}, nil
	case "last":
		if len(c.Args) != 0 {
			return nil, fmt.Errorf("core: last() takes no arguments")
		}
		if ctx.last == "" {
			return nil, fmt.Errorf("core: last() used outside a predicate")
		}
		return &Var{Name: ctx.last}, nil
	}
	sig, ok := funcs.Lookup(c.Name)
	if !ok {
		return nil, fmt.Errorf("core: unknown function %q", c.Name)
	}
	args := make([]Expr, 0, len(c.Args))
	for _, a := range c.Args {
		na, err := n.norm(a, ctx)
		if err != nil {
			return nil, err
		}
		args = append(args, na)
	}
	// Zero-argument context functions implicitly apply to the context item
	// (fn:string(), fn:number(), …).
	if len(args) == 0 && sig.ContextArg {
		if ctx.dot == "" {
			return nil, fmt.Errorf("core: %s() used without a context item", c.Name)
		}
		args = append(args, &Var{Name: ctx.dot})
	}
	if err := funcs.CheckArity(c.Name, len(args)); err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	return &Call{Name: c.Name, Args: args}, nil
}

// ddo wraps an expression in a call to fs:distinct-doc-order, flattening
// directly nested calls.
func ddo(e Expr) Expr {
	if c, ok := e.(*Call); ok && c.Name == "ddo" {
		return c
	}
	return &Call{Name: "ddo", Args: []Expr{e}}
}
