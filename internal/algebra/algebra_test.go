package algebra

import (
	"strings"
	"testing"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// p5 builds the paper's final plan P5.
func p5() Expr {
	person := pattern.NewStep(xdm.AxisDescendant, xdm.NameTest("person"))
	person.Preds = []*pattern.Step{pattern.NewStep(xdm.AxisChild, xdm.NameTest("emailaddress"))}
	name := pattern.NewStep(xdm.AxisChild, xdm.NameTest("name"))
	name.Out = "out"
	person.Next = name
	return &MapToItem{
		Dep: &Field{Name: "out"},
		Input: &TupleTreePattern{
			Pattern: pattern.New("dot", person),
			Input:   &MapFromItem{Bind: "dot", Input: &VarRef{Name: "d"}},
		},
	}
}

func TestStringMatchesPaperNotation(t *testing.T) {
	got := String(p5())
	want := "MapToItem{IN#out}(TupleTreePattern[IN#dot/descendant::person[child::emailaddress]/child::name{out}](MapFromItem{[dot : IN]}($d)))"
	if got != want {
		t.Errorf("String() =\n  %s\nwant\n  %s", got, want)
	}
}

func TestPrettyOnePerLine(t *testing.T) {
	s := Pretty(p5())
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // MapToItem, TupleTreePattern, MapFromItem, $d
		t.Errorf("Pretty produced %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "  TupleTreePattern") {
		t.Errorf("indentation wrong:\n%s", s)
	}
}

func TestCountOperatorsAndEqual(t *testing.T) {
	p := p5()
	counts := CountOperators(p)
	for op, want := range map[string]int{
		"MapToItem": 1, "TupleTreePattern": 1, "MapFromItem": 1, "Field": 1, "Var": 1,
	} {
		if counts[op] != want {
			t.Errorf("counts[%s] = %d, want %d", op, counts[op], want)
		}
	}
	if !Equal(p, p5()) {
		t.Error("identical plans not Equal")
	}
	other := p5().(*MapToItem)
	other.Dep = &Field{Name: "nope"}
	if Equal(p, other) {
		t.Error("different plans Equal")
	}
}

func TestFieldUses(t *testing.T) {
	p := p5()
	if got := FieldUses(p, "out"); got != 1 {
		t.Errorf("FieldUses(out) = %d", got)
	}
	// The pattern anchor counts as a use of its input field.
	if got := FieldUses(p, "dot"); got != 1 {
		t.Errorf("FieldUses(dot) = %d", got)
	}
	if got := FieldUses(p, "zzz"); got != 0 {
		t.Errorf("FieldUses(zzz) = %d", got)
	}
}

func TestStringCoversAllOperators(t *testing.T) {
	exprs := []Expr{
		&In{}, &EmptySeq{}, &Const{Item: xdm.Integer(3)}, &Const{Item: xdm.String("s")},
		&TreeJoin{Axis: xdm.AxisChild, Test: xdm.StarTest(), Input: &In{}},
		&Call{Name: "ddo", Args: []Expr{&In{}}},
		&Call{Name: "count", Args: []Expr{&In{}}},
		&Compare{Op: xdm.OpLe, L: &In{}, R: &In{}},
		&And{L: &In{}, R: &In{}},
		&Or{L: &In{}, R: &In{}},
		&If{Cond: &In{}, Then: &In{}, Else: &EmptySeq{}},
		&LetBind{Name: "x", Value: &In{}, Body: &Field{Name: "x"}},
		&TypeSwitch{Input: &In{}, Cases: []TSCase{{Type: "numeric", Var: "v", Body: &In{}}}, DefVar: "w", Default: &In{}},
		&Select{Pred: &In{}, Input: &In{}},
		&MapIndex{Field: "i", Input: &In{}},
		&Head{Input: &In{}},
	}
	for _, e := range exprs {
		if s := String(e); s == "" || strings.Contains(s, "?") {
			t.Errorf("String(%T) = %q", e, s)
		}
		if n := OpName(e); n == "?" {
			t.Errorf("OpName(%T) = ?", e)
		}
		if s := Pretty(e); s == "" {
			t.Errorf("Pretty(%T) empty", e)
		}
	}
}

func TestChildrenCoverage(t *testing.T) {
	// Every composite operator exposes its children.
	p := p5()
	var count func(Expr) int
	count = func(e Expr) int {
		n := 1
		for _, c := range Children(e) {
			n += count(c)
		}
		return n
	}
	if got := count(p); got != 5 {
		t.Errorf("plan has %d reachable nodes, want 5", got)
	}
}
