// Package algebra defines the tuple algebra for XQuery (after Re, Siméon
// and Fernández, ICDE 2006) extended with the paper's TupleTreePattern
// operator. Plans are expression trees mixing item-level expressions
// (TreeJoin, calls, comparisons) with tuple-level operators (MapFromItem,
// MapToItem, Select, MapIndex, TupleTreePattern); dependent sub-expressions
// reference the per-tuple context as IN#field and the per-item context as
// IN, exactly as in the paper's plans P1–P5.
package algebra

import (
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// Expr is a node of an algebraic plan.
type Expr interface {
	isAlg()
}

// In is the per-item dependent context "IN" (bound by MapFromItem).
type In struct{}

// Field is the per-tuple dependent field access "IN#name".
type Field struct {
	Name string
}

// VarRef is a free variable supplied by the engine environment (e.g. $d).
type VarRef struct {
	Name string
}

// Const is a literal item.
type Const struct {
	Item xdm.Item
}

// EmptySeq is the empty sequence.
type EmptySeq struct{}

// TreeJoin is the navigational axis-step operator over items.
type TreeJoin struct {
	Axis  xdm.Axis
	Test  xdm.NodeTest
	Input Expr
}

// Call invokes a builtin function ("ddo", "count", "boolean", "not",
// "empty", "exists", "root", "true", "false") on item sequences.
type Call struct {
	Name string
	Args []Expr
}

// Compare is a general comparison over item sequences.
type Compare struct {
	Op   xdm.CompareOp
	L, R Expr
}

// Sequence is sequence concatenation.
type Sequence struct {
	Items []Expr
}

// Arith is binary arithmetic.
type Arith struct {
	Op   xdm.ArithOp
	L, R Expr
}

// And is conjunction of effective boolean values.
type And struct {
	L, R Expr
}

// Or is disjunction of effective boolean values.
type Or struct {
	L, R Expr
}

// If is the conditional over an effective boolean value.
type If struct {
	Cond, Then, Else Expr
}

// LetBind binds the value of an expression to a field name visible in Body
// (compilation target for residual core lets; sequences, not per-item).
type LetBind struct {
	Name  string
	Value Expr
	Body  Expr
}

// TypeSwitch is the runtime type dispatch (residual typeswitch whose input
// type could not be determined statically).
type TypeSwitch struct {
	Input   Expr
	Cases   []TSCase
	DefVar  string
	Default Expr
}

// TSCase is one typeswitch case.
type TSCase struct {
	Type string // "numeric" is the only type normalization emits
	Var  string
	Body Expr
}

// MapFromItem constructs one tuple [Bind: item] per item of the input
// sequence (the paper's MapFromItem{[f : IN]}(Op)).
type MapFromItem struct {
	Bind  string
	Input Expr
}

// MapToItem evaluates the dependent item expression once per input tuple
// and concatenates the results (the paper's MapToItem{E}(Op)).
type MapToItem struct {
	Dep   Expr
	Input Expr
}

// Select filters the input tuples by the effective boolean value of the
// dependent predicate.
type Select struct {
	Pred  Expr
	Input Expr
}

// MapIndex extends each input tuple with a 1-based position field (the
// compilation of "for … at $i").
type MapIndex struct {
	Field string
	Input Expr
}

// Head passes through the first input tuple only (the physical form of a
// position()=1 selection; gives nested-loop evaluation its cursor-style
// early exit, §5.3).
type Head struct {
	Input Expr
}

// TupleTreePattern evaluates a tree pattern against the context nodes in
// the pattern's input field of each input tuple, returning one output tuple
// per match binding (a dependent join). Output tuples extend the input
// tuple with the pattern's annotated output fields; bindings are emitted in
// root-to-leaf lexical document order with duplicate bindings removed, so
// that when the only output field is the extraction point the operator's
// result coincides with XPath semantics (paper §4.1).
type TupleTreePattern struct {
	Pattern *pattern.Pattern
	Input   Expr
}

func (*In) isAlg()               {}
func (*Field) isAlg()            {}
func (*VarRef) isAlg()           {}
func (*Const) isAlg()            {}
func (*EmptySeq) isAlg()         {}
func (*TreeJoin) isAlg()         {}
func (*Call) isAlg()             {}
func (*Compare) isAlg()          {}
func (*Sequence) isAlg()         {}
func (*Arith) isAlg()            {}
func (*And) isAlg()              {}
func (*Or) isAlg()               {}
func (*If) isAlg()               {}
func (*LetBind) isAlg()          {}
func (*TypeSwitch) isAlg()       {}
func (*MapFromItem) isAlg()      {}
func (*MapToItem) isAlg()        {}
func (*Select) isAlg()           {}
func (*MapIndex) isAlg()         {}
func (*Head) isAlg()             {}
func (*TupleTreePattern) isAlg() {}

// Children returns the direct sub-expressions of e.
func Children(e Expr) []Expr {
	switch x := e.(type) {
	case *TreeJoin:
		return []Expr{x.Input}
	case *Call:
		return x.Args
	case *Compare:
		return []Expr{x.L, x.R}
	case *Sequence:
		return x.Items
	case *Arith:
		return []Expr{x.L, x.R}
	case *And:
		return []Expr{x.L, x.R}
	case *Or:
		return []Expr{x.L, x.R}
	case *If:
		return []Expr{x.Cond, x.Then, x.Else}
	case *LetBind:
		return []Expr{x.Value, x.Body}
	case *TypeSwitch:
		out := []Expr{x.Input}
		for _, c := range x.Cases {
			out = append(out, c.Body)
		}
		return append(out, x.Default)
	case *MapFromItem:
		return []Expr{x.Input}
	case *MapToItem:
		return []Expr{x.Dep, x.Input}
	case *Select:
		return []Expr{x.Pred, x.Input}
	case *MapIndex:
		return []Expr{x.Input}
	case *Head:
		return []Expr{x.Input}
	case *TupleTreePattern:
		return []Expr{x.Input}
	}
	return nil
}

// Walk traverses the plan in depth-first pre-order, calling f on every node.
// Returning false from f skips the node's children. It is the structural
// visitor shared by the plan statistics below and by the physical lowering
// pass (internal/physical), which walks the plan once to size its slot frame
// before compiling operators.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	for _, c := range Children(e) {
		Walk(c, f)
	}
}

// CountOperators returns the number of nodes in the plan, by operator kind
// name (used by the validation experiments to assert plan shapes).
func CountOperators(e Expr) map[string]int {
	counts := map[string]int{}
	Walk(e, func(e Expr) bool {
		counts[OpName(e)]++
		return true
	})
	return counts
}

// OpName returns the display name of an operator.
func OpName(e Expr) string {
	switch x := e.(type) {
	case *In:
		return "IN"
	case *Field:
		return "Field"
	case *VarRef:
		return "Var"
	case *Const:
		return "Const"
	case *EmptySeq:
		return "Empty"
	case *TreeJoin:
		return "TreeJoin"
	case *Call:
		return "fn:" + x.Name
	case *Compare:
		return "Compare"
	case *Sequence:
		return "Sequence"
	case *Arith:
		return "Arith"
	case *And:
		return "And"
	case *Or:
		return "Or"
	case *If:
		return "If"
	case *LetBind:
		return "LetBind"
	case *TypeSwitch:
		return "TypeSwitch"
	case *MapFromItem:
		return "MapFromItem"
	case *MapToItem:
		return "MapToItem"
	case *Select:
		return "Select"
	case *MapIndex:
		return "MapIndex"
	case *Head:
		return "Head"
	case *TupleTreePattern:
		return "TupleTreePattern"
	}
	return "?"
}

// FieldUses counts the references to field name in the plan (Field nodes
// plus pattern input fields).
func FieldUses(e Expr, name string) int {
	n := 0
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Field:
			if x.Name == name {
				n++
			}
		case *TupleTreePattern:
			if x.Pattern.Input == name {
				n++
			}
		}
		for _, c := range Children(e) {
			walk(c)
		}
	}
	walk(e)
	return n
}
