package algebra

import (
	"fmt"
	"strings"

	"xqtp/internal/xdm"
)

// String renders a plan in the paper's functional notation on one line:
// operators with dependent sub-plans in curly braces and inputs in
// parentheses, e.g.
//
//	MapToItem{IN#out}(TupleTreePattern[IN#dot/child::name{out}](…))
func String(e Expr) string {
	var b strings.Builder
	write(&b, e)
	return b.String()
}

// Pretty renders a plan with one operator per line, indented by depth.
func Pretty(e Expr) string {
	var b strings.Builder
	pretty(&b, e, 0)
	return b.String()
}

func write(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *In:
		b.WriteString("IN")
	case *Field:
		b.WriteString("IN#" + x.Name)
	case *VarRef:
		b.WriteString("$" + x.Name)
	case *Const:
		switch v := x.Item.(type) {
		case xdm.String:
			fmt.Fprintf(b, "%q", string(v))
		default:
			b.WriteString(xdm.ItemString(x.Item))
		}
	case *EmptySeq:
		b.WriteString("()")
	case *TreeJoin:
		fmt.Fprintf(b, "TreeJoin[%s::%s](", x.Axis, x.Test)
		write(b, x.Input)
		b.WriteString(")")
	case *Call:
		name := x.Name
		if name == "ddo" {
			name = "fs:ddo"
		} else {
			name = "fn:" + name
		}
		b.WriteString(name + "(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			write(b, a)
		}
		b.WriteString(")")
	case *Compare:
		write(b, x.L)
		fmt.Fprintf(b, " %s ", x.Op)
		write(b, x.R)
	case *Sequence:
		b.WriteString("Seq(")
		for i, it := range x.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			write(b, it)
		}
		b.WriteString(")")
	case *Arith:
		b.WriteString("(")
		write(b, x.L)
		fmt.Fprintf(b, " %s ", x.Op)
		write(b, x.R)
		b.WriteString(")")
	case *And:
		b.WriteString("(")
		write(b, x.L)
		b.WriteString(" and ")
		write(b, x.R)
		b.WriteString(")")
	case *Or:
		b.WriteString("(")
		write(b, x.L)
		b.WriteString(" or ")
		write(b, x.R)
		b.WriteString(")")
	case *If:
		b.WriteString("If{")
		write(b, x.Cond)
		b.WriteString("}(")
		write(b, x.Then)
		b.WriteString(", ")
		write(b, x.Else)
		b.WriteString(")")
	case *LetBind:
		fmt.Fprintf(b, "Let[%s := ", x.Name)
		write(b, x.Value)
		b.WriteString("](")
		write(b, x.Body)
		b.WriteString(")")
	case *TypeSwitch:
		b.WriteString("TypeSwitch{")
		write(b, x.Input)
		b.WriteString("}(")
		for _, c := range x.Cases {
			fmt.Fprintf(b, "case %s %s: ", c.Type, c.Var)
			write(b, c.Body)
			b.WriteString("; ")
		}
		fmt.Fprintf(b, "default %s: ", x.DefVar)
		write(b, x.Default)
		b.WriteString(")")
	case *MapFromItem:
		fmt.Fprintf(b, "MapFromItem{[%s : IN]}(", x.Bind)
		write(b, x.Input)
		b.WriteString(")")
	case *MapToItem:
		b.WriteString("MapToItem{")
		write(b, x.Dep)
		b.WriteString("}(")
		write(b, x.Input)
		b.WriteString(")")
	case *Select:
		b.WriteString("Select{")
		write(b, x.Pred)
		b.WriteString("}(")
		write(b, x.Input)
		b.WriteString(")")
	case *MapIndex:
		fmt.Fprintf(b, "MapIndex[%s](", x.Field)
		write(b, x.Input)
		b.WriteString(")")
	case *Head:
		b.WriteString("Head(")
		write(b, x.Input)
		b.WriteString(")")
	case *TupleTreePattern:
		fmt.Fprintf(b, "TupleTreePattern[%s](", x.Pattern)
		write(b, x.Input)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "?%T?", e)
	}
}

func pretty(b *strings.Builder, e Expr, depth int) {
	pad := strings.Repeat("  ", depth)
	switch x := e.(type) {
	case *MapFromItem:
		fmt.Fprintf(b, "%sMapFromItem{[%s : IN]}\n", pad, x.Bind)
		pretty(b, x.Input, depth+1)
	case *MapToItem:
		fmt.Fprintf(b, "%sMapToItem{%s}\n", pad, String(x.Dep))
		pretty(b, x.Input, depth+1)
	case *Select:
		fmt.Fprintf(b, "%sSelect{%s}\n", pad, String(x.Pred))
		pretty(b, x.Input, depth+1)
	case *MapIndex:
		fmt.Fprintf(b, "%sMapIndex[%s]\n", pad, x.Field)
		pretty(b, x.Input, depth+1)
	case *Head:
		fmt.Fprintf(b, "%sHead\n", pad)
		pretty(b, x.Input, depth+1)
	case *TupleTreePattern:
		fmt.Fprintf(b, "%sTupleTreePattern[%s]\n", pad, x.Pattern)
		pretty(b, x.Input, depth+1)
	case *Call:
		if x.Name == "ddo" && len(x.Args) == 1 {
			fmt.Fprintf(b, "%sfs:ddo\n", pad)
			pretty(b, x.Args[0], depth+1)
			return
		}
		fmt.Fprintf(b, "%s%s\n", pad, String(e))
	default:
		fmt.Fprintf(b, "%s%s\n", pad, String(e))
	}
}

// Equal compares two plans structurally.
func Equal(a, b Expr) bool {
	return String(a) == String(b)
}
