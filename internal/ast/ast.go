// Package ast defines the surface syntax tree for the XQuery subset the
// compiler accepts: path expressions with predicates, FLWOR expressions,
// general comparisons, boolean connectives, literals and function calls.
// This is the fragment the paper's queries (Q1a–Q5, QE1–QE6, the FLWOR
// variants of §5.1 and the positional chains of §5.3) are written in.
package ast

import (
	"xqtp/internal/xdm"
)

// Expr is a surface-syntax expression.
type Expr interface {
	isExpr()
}

// VarRef is a variable reference $name.
type VarRef struct {
	Name string
}

// StringLit is a string literal.
type StringLit struct {
	Value string
}

// NumberLit is a numeric literal. Integers keep IsInt = true so positional
// predicates ([1]) can be recognized.
type NumberLit struct {
	Value float64
	IsInt bool
}

// ContextItem is the context item expression ".".
type ContextItem struct{}

// Root is the leading "/" of an absolute path: the root (document node) of
// the tree containing the context item.
type Root struct{}

// EmptySeq is the empty sequence "()".
type EmptySeq struct{}

// Step is an axis step with optional predicates: axis::test[p1][p2]...
type Step struct {
	Axis  xdm.Axis
	Test  xdm.NodeTest
	Preds []Expr
}

// Path is the binary path composition E1/E2 (E2 evaluated with each item of
// E1 as context, results combined with distinct-document-order semantics).
// "//" is desugared by the parser and never appears here.
type Path struct {
	Left, Right Expr
}

// Filter applies predicates to a primary expression: E[p1][p2]...
type Filter struct {
	Primary Expr
	Preds   []Expr
}

// Compare is a general comparison.
type Compare struct {
	Op   xdm.CompareOp
	L, R Expr
}

// And is the boolean conjunction.
type And struct {
	L, R Expr
}

// Or is the boolean disjunction.
type Or struct {
	L, R Expr
}

// Call is a function call; Name is the local name with any fn:/fs: prefix
// stripped ("count", "boolean", "not", "position", "last", "root", "ddo",
// "empty", "exists", "true", "false").
type Call struct {
	Name string
	Args []Expr
}

// ClauseKind distinguishes FLWOR clauses.
type ClauseKind uint8

// FLWOR clause kinds.
const (
	ForClause ClauseKind = iota
	LetClause
)

// Clause is one for/let binding of a FLWOR expression.
type Clause struct {
	Kind ClauseKind
	Var  string
	At   string // positional variable of "for $x at $i", empty if absent
	Expr Expr
}

// FLWOR is a FLWOR expression: one or more for/let clauses, an optional
// where condition, and the return expression.
type FLWOR struct {
	Clauses []Clause
	Where   Expr // nil if absent
	Return  Expr
}

// SeqExpr is a sequence construction (E1, E2, …).
type SeqExpr struct {
	Items []Expr
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   xdm.ArithOp
	L, R Expr
}

// Neg is unary minus.
type Neg struct {
	X Expr
}

// IfExpr is the conditional expression if (C) then E1 else E2.
type IfExpr struct {
	Cond, Then, Else Expr
}

// Union is the node-set union E1 | E2 (distinct document order).
type Union struct {
	L, R Expr
}

// QBinding is one variable binding of a quantified expression.
type QBinding struct {
	Var string
	In  Expr
}

// Quantified is some/every $x in E (, …) satisfies C.
type Quantified struct {
	Every     bool
	Bindings  []QBinding
	Satisfies Expr
}

func (*VarRef) isExpr()      {}
func (*StringLit) isExpr()   {}
func (*NumberLit) isExpr()   {}
func (*ContextItem) isExpr() {}
func (*Root) isExpr()        {}
func (*EmptySeq) isExpr()    {}
func (*Step) isExpr()        {}
func (*Path) isExpr()        {}
func (*Filter) isExpr()      {}
func (*Compare) isExpr()     {}
func (*And) isExpr()         {}
func (*Or) isExpr()          {}
func (*Call) isExpr()        {}
func (*FLWOR) isExpr()       {}
func (*SeqExpr) isExpr()     {}
func (*Arith) isExpr()       {}
func (*Neg) isExpr()         {}
func (*IfExpr) isExpr()      {}
func (*Union) isExpr()       {}
func (*Quantified) isExpr()  {}
