package ast

import (
	"fmt"
	"strconv"
	"strings"

	"xqtp/internal/xdm"
)

// String renders an expression back to surface syntax. The output reparses
// to a structurally identical tree (modulo redundant parentheses), which the
// parser tests rely on.
func String(e Expr) string {
	var b strings.Builder
	print(&b, e, 0)
	return b.String()
}

// Precedence levels, loosest first.
const (
	precFLWOR = iota
	precOr
	precAnd
	precCompare
	precAdd
	precMul
	precUnion
	precUnary
	precPath
	precPrimary
)

func print(b *strings.Builder, e Expr, ctx int) {
	prec := precedence(e)
	if prec < ctx {
		b.WriteString("(")
		defer b.WriteString(")")
	}
	switch x := e.(type) {
	case *VarRef:
		b.WriteString("$" + x.Name)
	case *StringLit:
		b.WriteString(`"` + strings.ReplaceAll(x.Value, `"`, `""`) + `"`)
	case *NumberLit:
		if x.IsInt {
			b.WriteString(strconv.FormatInt(int64(x.Value), 10))
		} else {
			b.WriteString(strconv.FormatFloat(x.Value, 'g', -1, 64))
		}
	case *ContextItem:
		b.WriteString(".")
	case *Root:
		b.WriteString("fn:root(.)")
	case *EmptySeq:
		b.WriteString("()")
	case *Step:
		fmt.Fprintf(b, "%s::%s", x.Axis, x.Test)
		printPreds(b, x.Preds)
	case *Path:
		print(b, x.Left, precPath)
		b.WriteString("/")
		print(b, x.Right, precPrimary)
	case *Filter:
		print(b, x.Primary, precPrimary)
		printPreds(b, x.Preds)
	case *Compare:
		print(b, x.L, precAdd)
		fmt.Fprintf(b, " %s ", x.Op)
		print(b, x.R, precAdd)
	case *Arith:
		inner := precAdd
		if x.Op == xdm.OpMul || x.Op == xdm.OpDiv || x.Op == xdm.OpIDiv || x.Op == xdm.OpMod {
			inner = precMul
		}
		print(b, x.L, inner)
		fmt.Fprintf(b, " %s ", x.Op)
		print(b, x.R, inner+1)
	case *Neg:
		b.WriteString("-")
		print(b, x.X, precUnary)
	case *Union:
		print(b, x.L, precUnion)
		b.WriteString(" | ")
		print(b, x.R, precUnion+1)
	case *SeqExpr:
		b.WriteString("(")
		for i, it := range x.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			print(b, it, 0)
		}
		b.WriteString(")")
	case *IfExpr:
		b.WriteString("if (")
		print(b, x.Cond, 0)
		b.WriteString(") then ")
		print(b, x.Then, precOr)
		b.WriteString(" else ")
		print(b, x.Else, precOr)
	case *Quantified:
		if x.Every {
			b.WriteString("every ")
		} else {
			b.WriteString("some ")
		}
		for i, qb := range x.Bindings {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("$" + qb.Var + " in ")
			print(b, qb.In, precOr)
		}
		b.WriteString(" satisfies ")
		print(b, x.Satisfies, precOr)
	case *And:
		print(b, x.L, precCompare)
		b.WriteString(" and ")
		print(b, x.R, precCompare)
	case *Or:
		print(b, x.L, precAnd)
		b.WriteString(" or ")
		print(b, x.R, precAnd)
	case *Call:
		b.WriteString(x.Name + "(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			print(b, a, 0)
		}
		b.WriteString(")")
	case *FLWOR:
		for i, c := range x.Clauses {
			if i > 0 {
				b.WriteString(" ")
			}
			switch c.Kind {
			case ForClause:
				b.WriteString("for $" + c.Var)
				if c.At != "" {
					b.WriteString(" at $" + c.At)
				}
				b.WriteString(" in ")
			case LetClause:
				b.WriteString("let $" + c.Var + " := ")
			}
			print(b, c.Expr, precOr)
		}
		if x.Where != nil {
			b.WriteString(" where ")
			print(b, x.Where, precOr)
		}
		b.WriteString(" return ")
		print(b, x.Return, precFLWOR)
	default:
		fmt.Fprintf(b, "?%T?", e)
	}
}

func printPreds(b *strings.Builder, preds []Expr) {
	for _, p := range preds {
		b.WriteString("[")
		print(b, p, 0)
		b.WriteString("]")
	}
}

func precedence(e Expr) int {
	switch x := e.(type) {
	case *FLWOR, *IfExpr, *Quantified:
		return precFLWOR
	case *Or:
		return precOr
	case *And:
		return precAnd
	case *Compare:
		return precCompare
	case *Arith:
		if x.Op == xdm.OpMul || x.Op == xdm.OpDiv || x.Op == xdm.OpIDiv || x.Op == xdm.OpMod {
			return precMul
		}
		return precAdd
	case *Union:
		return precUnion
	case *Neg:
		return precUnary
	case *Path:
		return precPath
	}
	return precPrimary
}
