package parser

import (
	"fmt"
	"strconv"
	"strings"

	"xqtp/internal/ast"
	"xqtp/internal/xdm"
)

// Parse parses an XQuery expression in the supported subset.
func Parse(src string) (ast.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.cur().kind)
	}
	return e, nil
}

// MustParse parses src and panics on error; for tests and fixed query sets.
func MustParse(src string) ast.Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) advance()    { p.pos++ }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parser: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errorf("expected %s, found %s %q", k, t.kind, t.text)
	}
	p.advance()
	return t, nil
}

// parseExpr := FLWOR | IfExpr | QuantifiedExpr | OrExpr
func (p *parser) parseExpr() (ast.Expr, error) {
	if p.cur().kind == tokName {
		switch p.cur().text {
		case "for", "let":
			// Only a FLWOR keyword if followed by a variable.
			if p.peek().kind == tokVar {
				return p.parseFLWOR()
			}
		case "if":
			if p.peek().kind == tokLParen {
				return p.parseIf()
			}
		case "some", "every":
			if p.peek().kind == tokVar {
				return p.parseQuantified()
			}
		}
	}
	return p.parseOr()
}

// parseIf := "if" "(" Expr ")" "then" Expr "else" Expr
func (p *parser) parseIf() (ast.Expr, error) {
	p.advance() // if
	p.advance() // (
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if p.cur().kind != tokName || p.cur().text != "then" {
		return nil, p.errorf("expected 'then'")
	}
	p.advance()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokName || p.cur().text != "else" {
		return nil, p.errorf("expected 'else'")
	}
	p.advance()
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.IfExpr{Cond: cond, Then: then, Else: els}, nil
}

// parseQuantified := ("some"|"every") "$"x "in" Expr ("," "$"y "in" Expr)* "satisfies" Expr
func (p *parser) parseQuantified() (ast.Expr, error) {
	every := p.cur().text == "every"
	p.advance()
	q := &ast.Quantified{Every: every}
	for {
		v, err := p.expect(tokVar)
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokName || p.cur().text != "in" {
			return nil, p.errorf("expected 'in' in quantified expression")
		}
		p.advance()
		in, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Bindings = append(q.Bindings, ast.QBinding{Var: v.text, In: in})
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if p.cur().kind != tokName || p.cur().text != "satisfies" {
		return nil, p.errorf("expected 'satisfies'")
	}
	p.advance()
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	q.Satisfies = cond
	return q, nil
}

func (p *parser) parseFLWOR() (ast.Expr, error) {
	f := &ast.FLWOR{}
	for {
		kw := p.cur()
		if kw.kind != tokName || (kw.text != "for" && kw.text != "let") {
			break
		}
		p.advance()
		kind := ast.ForClause
		if kw.text == "let" {
			kind = ast.LetClause
		}
		for {
			v, err := p.expect(tokVar)
			if err != nil {
				return nil, err
			}
			cl := ast.Clause{Kind: kind, Var: v.text}
			if kind == ast.ForClause {
				if p.cur().kind == tokName && p.cur().text == "at" {
					p.advance()
					av, err := p.expect(tokVar)
					if err != nil {
						return nil, err
					}
					cl.At = av.text
				}
				if p.cur().kind != tokName || p.cur().text != "in" {
					return nil, p.errorf("expected 'in' in for clause")
				}
				p.advance()
			} else {
				if _, err := p.expect(tokAssign); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cl.Expr = e
			f.Clauses = append(f.Clauses, cl)
			if p.cur().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if len(f.Clauses) == 0 {
		return nil, p.errorf("FLWOR without clauses")
	}
	if p.cur().kind == tokName && p.cur().text == "where" {
		p.advance()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Where = w
	}
	if p.cur().kind != tokName || p.cur().text != "return" {
		return nil, p.errorf("expected 'return', found %q", p.cur().text)
	}
	p.advance()
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	f.Return = r
	return f, nil
}

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokName && p.cur().text == "or" {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokName && p.cur().text == "and" {
		p.advance()
		r, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		l = &ast.And{L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[tokenKind]xdm.CompareOp{
	tokEq: xdm.OpEq, tokNe: xdm.OpNe, tokLt: xdm.OpLt,
	tokLe: xdm.OpLe, tokGt: xdm.OpGt, tokGe: xdm.OpGe,
}

func (p *parser) parseCompare() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().kind]; ok {
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &ast.Compare{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op xdm.ArithOp
		switch p.cur().kind {
		case tokPlus:
			op = xdm.OpAdd
		case tokMinus:
			op = xdm.OpSub
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnionExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op xdm.ArithOp
		switch {
		case p.cur().kind == tokStar:
			op = xdm.OpMul
		case p.cur().kind == tokName && p.cur().text == "div":
			op = xdm.OpDiv
		case p.cur().kind == tokName && p.cur().text == "idiv":
			op = xdm.OpIDiv
		case p.cur().kind == tokName && p.cur().text == "mod":
			op = xdm.OpMod
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnionExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnionExpr() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPipe || (p.cur().kind == tokName && p.cur().text == "union") {
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Union{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	switch p.cur().kind {
	case tokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Neg{X: x}, nil
	case tokPlus:
		// Unary plus: 0 + E (enforces a numeric operand, like XPath).
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Arith{Op: xdm.OpAdd, L: &ast.NumberLit{Value: 0, IsInt: true}, R: x}, nil
	}
	return p.parsePath()
}

// parsePath := ("/" RelStep?) | ("//" RelStep) | RelStep, then ("/"|"//") RelStep ...
func (p *parser) parsePath() (ast.Expr, error) {
	var left ast.Expr
	switch p.cur().kind {
	case tokSlash:
		p.advance()
		left = &ast.Root{}
		if !p.startsStepOrPrimary() {
			return left, nil
		}
		right, err := p.parseStepOrPrimary()
		if err != nil {
			return nil, err
		}
		left = &ast.Path{Left: left, Right: right}
	case tokSlashSlash:
		p.advance()
		right, err := p.parseStepOrPrimary()
		if err != nil {
			return nil, err
		}
		left = p.descend(&ast.Root{}, right)
	default:
		var err error
		left, err = p.parseStepOrPrimary()
		if err != nil {
			return nil, err
		}
	}
	for {
		switch p.cur().kind {
		case tokSlash:
			p.advance()
			right, err := p.parseStepOrPrimary()
			if err != nil {
				return nil, err
			}
			left = &ast.Path{Left: left, Right: right}
		case tokSlashSlash:
			p.advance()
			right, err := p.parseStepOrPrimary()
			if err != nil {
				return nil, err
			}
			left = p.descend(left, right)
		default:
			return left, nil
		}
	}
}

// descend implements the "//" abbreviation. Following the paper (§2,
// footnote 2), E//child::t is normalized directly to E/descendant::t; for
// any other right-hand side the general expansion
// E/descendant-or-self::node()/R is used.
func (p *parser) descend(left, right ast.Expr) ast.Expr {
	if st, ok := right.(*ast.Step); ok && st.Axis == xdm.AxisChild {
		st.Axis = xdm.AxisDescendant
		return &ast.Path{Left: left, Right: st}
	}
	dos := &ast.Step{Axis: xdm.AxisDescendantOrSelf, Test: xdm.AnyNodeTest()}
	return &ast.Path{Left: &ast.Path{Left: left, Right: dos}, Right: right}
}

func (p *parser) startsStepOrPrimary() bool {
	switch p.cur().kind {
	case tokName, tokVar, tokString, tokNumber, tokLParen, tokAt, tokDot, tokStar:
		return true
	}
	return false
}

// parseStepOrPrimary parses one path component: an axis step or a primary
// expression, with trailing predicates.
func (p *parser) parseStepOrPrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokAt:
		p.advance()
		test, err := p.parseNodeTest(xdm.AxisAttribute)
		if err != nil {
			return nil, err
		}
		st := &ast.Step{Axis: xdm.AxisAttribute, Test: test}
		return p.withPreds(st, &st.Preds)
	case tokStar:
		p.advance()
		st := &ast.Step{Axis: xdm.AxisChild, Test: xdm.StarTest()}
		return p.withPreds(st, &st.Preds)
	case tokDot:
		p.advance()
		return p.filtered(&ast.ContextItem{})
	case tokName:
		// axis::test
		if p.peek().kind == tokColonColon {
			axis, err := xdm.ParseAxis(t.text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			p.advance()
			p.advance()
			test, err := p.parseNodeTest(axis)
			if err != nil {
				return nil, err
			}
			st := &ast.Step{Axis: axis, Test: test}
			return p.withPreds(st, &st.Preds)
		}
		// Kind test as an abbreviated child step: node(), text().
		if (t.text == "node" || t.text == "text") && p.peek().kind == tokLParen {
			test, err := p.parseNodeTest(xdm.AxisChild)
			if err != nil {
				return nil, err
			}
			st := &ast.Step{Axis: xdm.AxisChild, Test: test}
			return p.withPreds(st, &st.Preds)
		}
		// Function call.
		if p.peek().kind == tokLParen {
			return p.parseCall()
		}
		// Abbreviated child step with a name test.
		p.advance()
		st := &ast.Step{Axis: xdm.AxisChild, Test: xdm.NameTest(t.text)}
		return p.withPreds(st, &st.Preds)
	case tokVar:
		p.advance()
		return p.filtered(&ast.VarRef{Name: t.text})
	case tokString:
		p.advance()
		return &ast.StringLit{Value: t.text}, nil
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &ast.NumberLit{Value: v, IsInt: !strings.Contains(t.text, ".")}, nil
	case tokLParen:
		p.advance()
		if p.cur().kind == tokRParen {
			p.advance()
			return &ast.EmptySeq{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tokComma {
			// Sequence construction (E1, E2, …).
			seq := &ast.SeqExpr{Items: []ast.Expr{e}}
			for p.cur().kind == tokComma {
				p.advance()
				it, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				seq.Items = append(seq.Items, it)
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return p.filtered(seq)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return p.filtered(e)
	}
	return nil, p.errorf("unexpected %s %q", t.kind, t.text)
}

// parseNodeTest parses a node test after an axis (or @).
func (p *parser) parseNodeTest(axis xdm.Axis) (xdm.NodeTest, error) {
	t := p.cur()
	switch t.kind {
	case tokStar:
		p.advance()
		return xdm.StarTest(), nil
	case tokName:
		p.advance()
		if t.text == "node" || t.text == "text" {
			if p.cur().kind == tokLParen {
				p.advance()
				if _, err := p.expect(tokRParen); err != nil {
					return xdm.NodeTest{}, err
				}
				if t.text == "node" {
					return xdm.AnyNodeTest(), nil
				}
				return xdm.TextTest(), nil
			}
		}
		return xdm.NameTest(t.text), nil
	}
	return xdm.NodeTest{}, p.errorf("expected node test, found %s %q", t.kind, t.text)
}

// withPreds attaches [pred] lists directly to a step.
func (p *parser) withPreds(st *ast.Step, preds *[]ast.Expr) (ast.Expr, error) {
	for p.cur().kind == tokLBracket {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		*preds = append(*preds, e)
	}
	return st, nil
}

// filtered wraps a primary expression in a Filter if predicates follow.
func (p *parser) filtered(e ast.Expr) (ast.Expr, error) {
	var preds []ast.Expr
	for p.cur().kind == tokLBracket {
		p.advance()
		pe, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		preds = append(preds, pe)
	}
	if len(preds) == 0 {
		return e, nil
	}
	return &ast.Filter{Primary: e, Preds: preds}, nil
}

func (p *parser) parseCall() (ast.Expr, error) {
	name := p.cur().text
	p.advance() // name
	p.advance() // (
	var args []ast.Expr
	if p.cur().kind != tokRParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	local := name
	for _, pfx := range []string{"fn:", "fs:"} {
		local = strings.TrimPrefix(local, pfx)
	}
	if local == "distinct-doc-order" {
		local = "ddo"
	}
	// fn:root() / fn:root(.) is the absolute-path root.
	if local == "root" {
		if len(args) == 0 {
			return &ast.Root{}, nil
		}
		if len(args) == 1 {
			if _, ok := args[0].(*ast.ContextItem); ok {
				return &ast.Root{}, nil
			}
		}
	}
	call := &ast.Call{Name: local, Args: args}
	return p.filtered(call)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
