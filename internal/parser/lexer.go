// Package parser implements a lexer and recursive-descent parser for the
// XQuery subset defined in package ast.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF        tokenKind = iota
	tokName                 // person, fn:count, node
	tokVar                  // $x (text holds "x")
	tokString               // "lit" or 'lit'
	tokNumber               // 1, 2.5
	tokSlash                // /
	tokSlashSlash           // //
	tokLBracket             // [
	tokRBracket             // ]
	tokLParen               // (
	tokRParen               // )
	tokComma                // ,
	tokAt                   // @
	tokDot                  // .
	tokStar                 // *
	tokColonColon           // ::
	tokAssign               // :=
	tokEq                   // =
	tokNe                   // !=
	tokLt                   // <
	tokLe                   // <=
	tokGt                   // >
	tokGe                   // >=
	tokPlus                 // +
	tokMinus                // -
	tokPipe                 // |
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "end of input", tokName: "name", tokVar: "variable", tokString: "string",
		tokNumber: "number", tokSlash: "/", tokSlashSlash: "//", tokLBracket: "[",
		tokRBracket: "]", tokLParen: "(", tokRParen: ")", tokComma: ",", tokAt: "@",
		tokDot: ".", tokStar: "*", tokColonColon: "::", tokAssign: ":=", tokEq: "=",
		tokNe: "!=", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
		tokPlus: "+", tokMinus: "-", tokPipe: "|",
	}
	return names[k]
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		// XQuery comments (: ... :), possibly nested.
		if c == '(' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == ':' {
			if err := lx.skipComment(); err != nil {
				return token{}, err
			}
			continue
		}
		break
	}
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '/':
		if lx.peekAt(1) == '/' {
			lx.pos += 2
			return token{tokSlashSlash, "//", start}, nil
		}
		lx.pos++
		return token{tokSlash, "/", start}, nil
	case '[':
		lx.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		lx.pos++
		return token{tokRBracket, "]", start}, nil
	case '(':
		lx.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		lx.pos++
		return token{tokRParen, ")", start}, nil
	case ',':
		lx.pos++
		return token{tokComma, ",", start}, nil
	case '@':
		lx.pos++
		return token{tokAt, "@", start}, nil
	case '*':
		lx.pos++
		return token{tokStar, "*", start}, nil
	case '+':
		lx.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		// A leading '-' is the unary/binary minus token; inside names the
		// hyphen is a name character and never reaches this switch.
		lx.pos++
		return token{tokMinus, "-", start}, nil
	case '|':
		lx.pos++
		return token{tokPipe, "|", start}, nil
	case '=':
		lx.pos++
		return token{tokEq, "=", start}, nil
	case '!':
		if lx.peekAt(1) == '=' {
			lx.pos += 2
			return token{tokNe, "!=", start}, nil
		}
		return token{}, fmt.Errorf("parser: unexpected '!' at offset %d", start)
	case '<':
		if lx.peekAt(1) == '=' {
			lx.pos += 2
			return token{tokLe, "<=", start}, nil
		}
		lx.pos++
		return token{tokLt, "<", start}, nil
	case '>':
		if lx.peekAt(1) == '=' {
			lx.pos += 2
			return token{tokGe, ">=", start}, nil
		}
		lx.pos++
		return token{tokGt, ">", start}, nil
	case ':':
		if lx.peekAt(1) == ':' {
			lx.pos += 2
			return token{tokColonColon, "::", start}, nil
		}
		if lx.peekAt(1) == '=' {
			lx.pos += 2
			return token{tokAssign, ":=", start}, nil
		}
		return token{}, fmt.Errorf("parser: unexpected ':' at offset %d", start)
	case '$':
		lx.pos++
		name := lx.scanName()
		if name == "" {
			return token{}, fmt.Errorf("parser: '$' not followed by a name at offset %d", start)
		}
		return token{tokVar, name, start}, nil
	case '"', '\'':
		return lx.scanString(c)
	case '.':
		// Distinguish "." from ".5".
		if d := lx.peekAt(1); d < '0' || d > '9' {
			lx.pos++
			return token{tokDot, ".", start}, nil
		}
		return lx.scanNumber()
	}
	if c >= '0' && c <= '9' {
		return lx.scanNumber()
	}
	if isNameStart(rune(c)) {
		name := lx.scanName()
		// Allow one prefix, e.g. fn:count (but not ::, handled above).
		if lx.pos < len(lx.src) && lx.src[lx.pos] == ':' && lx.peekAt(1) != ':' && lx.peekAt(1) != '=' {
			lx.pos++
			local := lx.scanName()
			if local == "" {
				return token{}, fmt.Errorf("parser: dangling prefix %q at offset %d", name, start)
			}
			name = name + ":" + local
		}
		return token{tokName, name, start}, nil
	}
	return token{}, fmt.Errorf("parser: unexpected character %q at offset %d", c, start)
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func (lx *lexer) skipComment() error {
	depth := 0
	for lx.pos < len(lx.src) {
		if strings.HasPrefix(lx.src[lx.pos:], "(:") {
			depth++
			lx.pos += 2
			continue
		}
		if strings.HasPrefix(lx.src[lx.pos:], ":)") {
			depth--
			lx.pos += 2
			if depth == 0 {
				return nil
			}
			continue
		}
		lx.pos++
	}
	return fmt.Errorf("parser: unterminated comment")
}

func (lx *lexer) scanName() string {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if lx.pos == start && !isNameStart(r) {
			break
		}
		if lx.pos > start && !isNameChar(r) {
			break
		}
		lx.pos += size
	}
	return lx.src[start:lx.pos]
}

func (lx *lexer) scanString(quote byte) (token, error) {
	start := lx.pos
	lx.pos++
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if lx.peekAt(1) == quote {
				b.WriteByte(quote)
				lx.pos += 2
				continue
			}
			lx.pos++
			return token{tokString, b.String(), start}, nil
		}
		b.WriteByte(c)
		lx.pos++
	}
	return token{}, fmt.Errorf("parser: unterminated string at offset %d", start)
}

func (lx *lexer) scanNumber() (token, error) {
	start := lx.pos
	seenDot := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c >= '0' && c <= '9' {
			lx.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			lx.pos++
			continue
		}
		break
	}
	return token{tokNumber, lx.src[start:lx.pos], start}, nil
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
