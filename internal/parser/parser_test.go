package parser

import (
	"reflect"
	"testing"

	"xqtp/internal/ast"
	"xqtp/internal/xdm"
)

// The paper's queries, all of which must parse.
var paperQueries = []string{
	`$d//person[emailaddress]/name`,                                                                          // Q1a
	`(for $x in $d//person[emailaddress] return $x)/name`,                                                    // Q1b
	`let $x := for $y in $d//person where $y/emailaddress return $y return $x/name`,                          // Q1c
	`$d//person[name = "John"]/emailaddress`,                                                                 // Q2
	`$d//person[1]/name`,                                                                                     // Q3
	`$d//person[name = "John"]/emailaddress[1]`,                                                              // Q4
	`for $x in $d//person[emailaddress] return $x/name`,                                                      // Q5
	`$input/site/people/person[emailaddress]/profile/interest`,                                               // §5.1
	`for $x1 in $input/site, $x2 in $x1/people, $x3 in $x2/person[emailaddress] return $x3/profile/interest`, // §5.1 FLWOR variant
	`$input/desc::t01[child::t02[child::t03[child::t04]]]`,                                                   // QE1
	`$input/desc::t01/child::t02[1]/child::t03[child::t04]`,                                                  // QE2
	`$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]`,                                        // QE3
	`$input/desc::t01[desc::t02[desc::t03[desc::t04]]]`,                                                      // QE4
	`$input/desc::t01/desc::t02[1]/desc::t03[desc::t04]`,                                                     // QE5
	`$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]`,                                            // QE6
	`/t1[1]/t1[1]/t1[1]/t1[1]/t1[1]`,                                                                         // §5.3, k=5
	`$d//person[position() = 1]/name`,
	`for $dot at $pos in $d/child::person where $pos = 1 return $dot`,
	// Extended fragment.
	`(1, 2.5, "three", $d/a)`,
	`1 + 2 * 3 - 4 div 5`,
	`7 idiv 2 + 7 mod 2`,
	`-count($d//a) + 1`,
	`$d//a | $d//b | $d//c`,
	`if ($d/a) then $d/b else ()`,
	`some $x in $d//person satisfies $x/name = "John"`,
	`every $x in $d//a, $y in $x/b satisfies $y/c`,
	`concat("a", "b", string($d/a))`,
	`$d//person[string-length(name) > 3]/name`,
	`sum((1, 2, 3)) * avg((4, 6))`,
	`$d//a[position() = last() - 1]`,
}

func TestPaperQueriesParse(t *testing.T) {
	for _, q := range paperQueries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%s): %v", q, err)
		}
	}
}

func TestParseShapes(t *testing.T) {
	// $d//person becomes $d/descendant::person (paper footnote 2).
	e := MustParse(`$d//person`)
	p, ok := e.(*ast.Path)
	if !ok {
		t.Fatalf("got %T", e)
	}
	st, ok := p.Right.(*ast.Step)
	if !ok || st.Axis != xdm.AxisDescendant || st.Test.Name != "person" {
		t.Fatalf("// not desugared to descendant step: %+v", p.Right)
	}
	if _, ok := p.Left.(*ast.VarRef); !ok {
		t.Fatalf("left = %T", p.Left)
	}

	// //x from the root.
	e = MustParse(`//person`)
	p = e.(*ast.Path)
	if _, ok := p.Left.(*ast.Root); !ok {
		t.Fatalf("leading // root = %T", p.Left)
	}

	// // before an attribute step expands via descendant-or-self::node().
	e = MustParse(`$d//@id`)
	p = e.(*ast.Path)
	if st := p.Right.(*ast.Step); st.Axis != xdm.AxisAttribute {
		t.Fatalf("right = %+v", st)
	}
	inner := p.Left.(*ast.Path)
	if st := inner.Right.(*ast.Step); st.Axis != xdm.AxisDescendantOrSelf || st.Test.Kind != xdm.TestNode {
		t.Fatalf("expansion step = %+v", st)
	}

	// Predicates attach to the step.
	e = MustParse(`$d/person[emailaddress][2]`)
	st = e.(*ast.Path).Right.(*ast.Step)
	if len(st.Preds) != 2 {
		t.Fatalf("preds = %d", len(st.Preds))
	}
	if n, ok := st.Preds[1].(*ast.NumberLit); !ok || !n.IsInt || n.Value != 2 {
		t.Fatalf("numeric predicate = %#v", st.Preds[1])
	}

	// FLWOR with at-variable and where.
	e = MustParse(`for $x at $i in $d/a where $i = 1 return $x`)
	f := e.(*ast.FLWOR)
	if len(f.Clauses) != 1 || f.Clauses[0].At != "i" || f.Where == nil {
		t.Fatalf("FLWOR = %+v", f)
	}

	// Nested FLWOR in a let binding (Q1c shape): greedy inner return.
	e = MustParse(`let $x := for $y in $d/person return $y return $x/name`)
	f = e.(*ast.FLWOR)
	if len(f.Clauses) != 1 || f.Clauses[0].Kind != ast.LetClause {
		t.Fatalf("outer FLWOR = %+v", f)
	}
	if _, ok := f.Clauses[0].Expr.(*ast.FLWOR); !ok {
		t.Fatalf("let binding = %T", f.Clauses[0].Expr)
	}
	if _, ok := f.Return.(*ast.Path); !ok {
		t.Fatalf("outer return = %T", f.Return)
	}

	// Comparisons, and/or precedence: a = 1 and b = 2 or c = 3.
	e = MustParse(`$a = 1 and $b = 2 or $c = 3`)
	or := e.(*ast.Or)
	if _, ok := or.L.(*ast.And); !ok {
		t.Fatalf("or.L = %T", or.L)
	}

	// Kind tests.
	e = MustParse(`$d/child::text()`)
	if st := e.(*ast.Path).Right.(*ast.Step); st.Test.Kind != xdm.TestText {
		t.Fatalf("text() test = %+v", st)
	}
	e = MustParse(`$d/node()`)
	if st := e.(*ast.Path).Right.(*ast.Step); st.Test.Kind != xdm.TestNode || st.Axis != xdm.AxisChild {
		t.Fatalf("node() step = %+v", st)
	}

	// Absolute root alone and fn:root(.).
	if _, ok := MustParse(`/`).(*ast.Root); !ok {
		t.Fatal("bare / not Root")
	}
	if _, ok := MustParse(`fn:root(.)`).(*ast.Root); !ok {
		t.Fatal("fn:root(.) not Root")
	}

	// Function name prefixes are stripped; ddo aliases resolve.
	c := MustParse(`fn:count($x)`).(*ast.Call)
	if c.Name != "count" || len(c.Args) != 1 {
		t.Fatalf("call = %+v", c)
	}
	if MustParse(`fs:distinct-doc-order($x)`).(*ast.Call).Name != "ddo" {
		t.Fatal("ddo alias not resolved")
	}

	// Filter on a parenthesized expression.
	e = MustParse(`(/t1)[1]`)
	fl, ok := e.(*ast.Filter)
	if !ok || len(fl.Preds) != 1 {
		t.Fatalf("filter = %#v", e)
	}

	// Comments are skipped.
	if _, err := Parse(`$d (: a (: nested :) comment :) /person`); err != nil {
		t.Errorf("comment handling: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `$`, `$d/`, `$d//`, `for $x return $x`, `for $x in $d`, `let $x = 2 return $x`,
		`$d[`, `(a, b`, `"unterminated`, `$d/foo::bar`, `!`, `$d/person[]`,
		`for in $d return 1`, `(: unterminated`, `$d)`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestExtendedSyntaxShapes(t *testing.T) {
	// Operator precedence: 1 + 2 * 3 parses as 1 + (2 * 3).
	e := MustParse(`1 + 2 * 3`)
	add, ok := e.(*ast.Arith)
	if !ok || add.Op != xdm.OpAdd {
		t.Fatalf("top = %#v", e)
	}
	if mul, ok := add.R.(*ast.Arith); !ok || mul.Op != xdm.OpMul {
		t.Fatalf("rhs = %#v", add.R)
	}
	// Comparison binds looser than arithmetic.
	e = MustParse(`$a + 1 = 2`)
	if _, ok := e.(*ast.Compare); !ok {
		t.Fatalf("top = %T", e)
	}
	// Union binds tighter than multiplication operands... it *is* an
	// operand: count($d/a | $d/b) parses; a | b inside arithmetic too.
	e = MustParse(`$d/a | $d/b`)
	if _, ok := e.(*ast.Union); !ok {
		t.Fatalf("union top = %T", e)
	}
	// Unary minus.
	e = MustParse(`-1`)
	if _, ok := e.(*ast.Neg); !ok {
		t.Fatalf("neg = %T", e)
	}
	// a-b is a single name; a - b is subtraction.
	e = MustParse(`$d/a-b`)
	if st := e.(*ast.Path).Right.(*ast.Step); st.Test.Name != "a-b" {
		t.Fatalf("hyphenated name = %v", st.Test)
	}
	e = MustParse(`$d/a - $d/b`)
	if ar, ok := e.(*ast.Arith); !ok || ar.Op != xdm.OpSub {
		t.Fatalf("subtraction = %#v", e)
	}
	// Sequences.
	e = MustParse(`(1, 2)`)
	if s, ok := e.(*ast.SeqExpr); !ok || len(s.Items) != 2 {
		t.Fatalf("seq = %#v", e)
	}
	// If and quantifiers.
	if _, ok := MustParse(`if ($d/a) then 1 else 2`).(*ast.IfExpr); !ok {
		t.Fatal("if expr")
	}
	q := MustParse(`some $x in $d/a, $y in $x/b satisfies $y`).(*ast.Quantified)
	if q.Every || len(q.Bindings) != 2 {
		t.Fatalf("quantified = %#v", q)
	}
	// `if` and `some` as element names still work when not followed by
	// their grammar anchors.
	if st := MustParse(`$d/if`).(*ast.Path).Right.(*ast.Step); st.Test.Name != "if" {
		t.Fatal("if as name test")
	}
}

// Printing then reparsing reaches a fixpoint: parse(print(e)) == e for every
// parsed paper query.
func TestPrintParseFixpoint(t *testing.T) {
	for _, q := range paperQueries {
		e1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%s): %v", q, err)
		}
		s1 := ast.String(e1)
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of %q (from %s): %v", s1, q, err)
		}
		if !reflect.DeepEqual(e1, e2) {
			t.Errorf("fixpoint failed for %s:\n  printed %s\n  e1=%#v\n  e2=%#v", q, s1, e1, e2)
		}
	}
}
