package join

import (
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// nlEval is the nested-loop (navigational) evaluation of a tree pattern:
// node-at-a-time recursion along the spine, existential early-exit checks
// for predicate branches. Bindings come out in lexical (context-major)
// order; the TupleTreePattern operator establishes the output order.
func nlEval(ctx *xdm.Node, pat *pattern.Pattern) []Binding {
	var out []Binding
	nlStep(ctx, pat.Root, nil, &out)
	return out
}

func nlStep(ctx *xdm.Node, s *pattern.Step, prefix Binding, out *[]Binding) {
	for _, cand := range xdm.Step(ctx, s.Axis, s.Test) {
		if !nlPreds(cand, s.Preds) {
			continue
		}
		b := prefix
		if s.Out != "" {
			b = append(append(Binding{}, prefix...), cand)
		}
		if s.Next == nil {
			if len(b) > 0 {
				*out = append(*out, b)
			}
			continue
		}
		nlStep(cand, s.Next, b, out)
	}
}

// nlPreds checks every predicate branch existentially.
func nlPreds(ctx *xdm.Node, preds []*pattern.Step) bool {
	for _, p := range preds {
		if !nlExists(ctx, p) {
			return false
		}
	}
	return true
}

// nlExists reports whether the chain rooted at s has at least one match
// from ctx, with early exit.
func nlExists(ctx *xdm.Node, s *pattern.Step) bool {
	for _, cand := range xdm.Step(ctx, s.Axis, s.Test) {
		if !nlPreds(cand, s.Preds) {
			continue
		}
		if s.Next == nil || nlExists(cand, s.Next) {
			return true
		}
	}
	return false
}

// nlFirst returns the lexically first binding without materializing the
// rest: the cursor-style evaluation that makes nested loops win on highly
// selective positional chains (§5.3).
func nlFirst(ctx *xdm.Node, pat *pattern.Pattern) (Binding, bool) {
	return nlFirstStep(ctx, pat.Root, nil)
}

func nlFirstStep(ctx *xdm.Node, s *pattern.Step, prefix Binding) (Binding, bool) {
	// Child and attribute steps iterate the candidate lists directly so the
	// cursor stops at the first match without materializing siblings.
	var candidates []*xdm.Node
	switch s.Axis {
	case xdm.AxisChild:
		candidates = ctx.Children
	case xdm.AxisAttribute:
		candidates = ctx.Attrs
	default:
		candidates = xdm.Step(ctx, s.Axis, s.Test)
	}
	for _, cand := range candidates {
		if !s.Test.Matches(s.Axis, cand) {
			continue
		}
		if !nlPreds(cand, s.Preds) {
			continue
		}
		b := prefix
		if s.Out != "" {
			b = append(append(Binding{}, prefix...), cand)
		}
		if s.Next == nil {
			if len(b) > 0 {
				return b, true
			}
			continue
		}
		if found, ok := nlFirstStep(cand, s.Next, b); ok {
			return found, true
		}
	}
	return nil, false
}
