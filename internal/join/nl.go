package join

import (
	"xqtp/internal/execctx"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// nlTick polls the execution context once every 256 candidate nodes: the
// nested loop's unit of work is one candidate (an axis-step result fed
// through the predicate checks), so the counter bounds the time between
// polls without a branch-per-node channel probe. A nil context costs the
// increment and the mask test only.
func nlTick(ec *execctx.Ctx, n *int) bool {
	*n++
	if *n&255 != 0 || ec == nil {
		return false
	}
	return ec.Stopped()
}

// nlEval is the nested-loop (navigational) evaluation of a tree pattern:
// node-at-a-time recursion along the spine, existential early-exit checks
// for predicate branches. Bindings come out in lexical (context-major)
// order; the TupleTreePattern operator establishes the output order. A stop
// of ec cuts the recursion short, returning the bindings found so far
// (EvalCtx's partial-result contract).
func nlEval(ec *execctx.Ctx, ctx *xdm.Node, pat *pattern.Pattern) []Binding {
	var out []Binding
	tick := 0
	nlStep(ec, &tick, ctx, pat.Root, nil, &out)
	return out
}

func nlStep(ec *execctx.Ctx, tick *int, ctx *xdm.Node, s *pattern.Step, prefix Binding, out *[]Binding) bool {
	for _, cand := range xdm.Step(ctx, s.Axis, s.Test) {
		if nlTick(ec, tick) {
			return false
		}
		if !nlPreds(ec, tick, cand, s.Preds) {
			continue
		}
		b := prefix
		if s.Out != "" {
			b = append(append(Binding{}, prefix...), cand)
		}
		if s.Next == nil {
			if len(b) > 0 {
				*out = append(*out, b)
			}
			continue
		}
		if !nlStep(ec, tick, cand, s.Next, b, out) {
			return false
		}
	}
	return true
}

// nlPreds checks every predicate branch existentially.
func nlPreds(ec *execctx.Ctx, tick *int, ctx *xdm.Node, preds []*pattern.Step) bool {
	for _, p := range preds {
		if !nlExists(ec, tick, ctx, p) {
			return false
		}
	}
	return true
}

// nlExists reports whether the chain rooted at s has at least one match
// from ctx, with early exit.
func nlExists(ec *execctx.Ctx, tick *int, ctx *xdm.Node, s *pattern.Step) bool {
	for _, cand := range xdm.Step(ctx, s.Axis, s.Test) {
		if nlTick(ec, tick) {
			return false
		}
		if !nlPreds(ec, tick, cand, s.Preds) {
			continue
		}
		if s.Next == nil || nlExists(ec, tick, cand, s.Next) {
			return true
		}
	}
	return false
}

// nlFirst returns the lexically first binding without materializing the
// rest: the cursor-style evaluation that makes nested loops win on highly
// selective positional chains (§5.3).
func nlFirst(ec *execctx.Ctx, ctx *xdm.Node, pat *pattern.Pattern) (Binding, bool) {
	tick := 0
	return nlFirstStep(ec, &tick, ctx, pat.Root, nil)
}

func nlFirstStep(ec *execctx.Ctx, tick *int, ctx *xdm.Node, s *pattern.Step, prefix Binding) (Binding, bool) {
	// Child and attribute steps iterate the candidate lists directly so the
	// cursor stops at the first match without materializing siblings.
	var candidates []*xdm.Node
	switch s.Axis {
	case xdm.AxisChild:
		candidates = ctx.Children
	case xdm.AxisAttribute:
		candidates = ctx.Attrs
	default:
		candidates = xdm.Step(ctx, s.Axis, s.Test)
	}
	for _, cand := range candidates {
		if nlTick(ec, tick) {
			return nil, false
		}
		if !s.Test.Matches(s.Axis, cand) {
			continue
		}
		if !nlPreds(ec, tick, cand, s.Preds) {
			continue
		}
		b := prefix
		if s.Out != "" {
			b = append(append(Binding{}, prefix...), cand)
		}
		if s.Next == nil {
			if len(b) > 0 {
				return b, true
			}
			continue
		}
		if found, ok := nlFirstStep(ec, tick, cand, s.Next, b); ok {
			return found, true
		}
	}
	return nil, false
}
