package join

import (
	"math/bits"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// Streaming is the streaming XPath evaluator the paper's conclusion lists
// as future work: linear child/descendant patterns are matched in a single
// preorder scan of the context subtree with a stack of per-level automaton
// states — no per-tag index streams, no navigation, one sequential pass
// (the shape a SAX-based engine would use).
//
// Patterns with predicate branches, attribute steps or reverse axes fall
// back to the nested loop.
const Streaming Algorithm = 254

// streamSupported reports whether the single scan can evaluate the pattern:
// a linear spine of child/descendant steps with name/star tests.
func streamSupported(p *pattern.Pattern) bool {
	for s := p.Root; s != nil; s = s.Next {
		if len(s.Preds) > 0 {
			return false
		}
		switch s.Axis {
		case xdm.AxisChild, xdm.AxisDescendant:
		default:
			return false
		}
		switch s.Test.Kind {
		case xdm.TestName, xdm.TestStar:
		default:
			return false
		}
	}
	return true
}

// streamEval runs the stack automaton over the preorder node array of the
// context's subtree. The automaton state is the set of pattern steps
// "active" at the current tree level, held in a bitmask (bit i = "the next
// step to match is spine[i]"); a node matching the final step is an answer.
// States are propagated level by level using an explicit stack of
// (subtree-end, bitmask) frames, so the whole evaluation is one linear scan
// with no per-node allocation.
func streamEval(p *Prepared, ctx *xdm.Node) []*xdm.Node {
	pat := p.pat
	var spine []*pattern.Step
	var descMask uint64
	for s := pat.Root; s != nil; s = s.Next {
		if s.Axis == xdm.AxisDescendant {
			descMask |= 1 << uint(len(spine))
		}
		spine = append(spine, s)
	}
	n := len(spine)
	if n > 63 {
		// Absurdly deep pattern: fall back to the nested loop's bindings.
		nodes := make([]*xdm.Node, 0)
		for _, b := range nlEval(ctx, pat) {
			nodes = append(nodes, b[0])
		}
		xdm.SortDoc(nodes)
		return xdm.DedupSorted(nodes)
	}
	finalBit := uint64(1) << uint(n-1)

	type frame struct {
		until  int    // preorder rank where this frame's subtree ends
		states uint64 // active state bitmask for this level
	}
	stack := []frame{{until: ctx.End(), states: 1}}
	var out []*xdm.Node

	nodes := ctx.Doc.Nodes
	lo, hi := ctx.Pre+1, ctx.End()
	for pre := lo; pre <= hi; pre++ {
		node := nodes[pre]
		if node.Kind == xdm.AttributeNode {
			continue
		}
		// Pop frames whose subtree ended before this node.
		for len(stack) > 1 && stack[len(stack)-1].until < pre {
			stack = stack[:len(stack)-1]
		}
		cur := stack[len(stack)-1].states
		// Descendant states persist downward; matched states advance.
		next := cur & descMask
		if node.Kind == xdm.ElementNode {
			for rest := cur; rest != 0; rest &= rest - 1 {
				i := bits.TrailingZeros64(rest)
				s := spine[i]
				if s.Test.Matches(s.Axis, node) {
					if uint64(1)<<uint(i) == finalBit {
						out = append(out, node)
						// Dedup: a node accepted once is enough.
						break
					}
					next |= 1 << uint(i+1)
				}
			}
		}
		if len(node.Children) > 0 {
			if next == 0 {
				// No state can fire anywhere below: skip the subtree.
				pre = node.End()
				continue
			}
			stack = append(stack, frame{until: node.End(), states: next})
		}
	}
	return out
}
