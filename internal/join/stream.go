package join

import (
	"math/bits"

	"xqtp/internal/execctx"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// Streaming is the streaming XPath evaluator the paper's conclusion lists
// as future work: linear child/descendant patterns are matched in a single
// preorder scan of the context subtree with a stack of per-level automaton
// states — no per-tag index streams, no navigation, one sequential pass
// (the shape a SAX-based engine would use). The scan reads the kind/sym/size
// columns directly: per node it is a byte load, an int32 compare per active
// state, and an int32 jump for skipped subtrees — no node object is touched.
//
// Patterns with predicate branches, attribute steps or reverse axes fall
// back to the nested loop.
const Streaming Algorithm = 254

// streamSupported reports whether the single scan can evaluate the pattern:
// a linear spine of child/descendant steps with name/star tests.
func streamSupported(p *pattern.Pattern) bool {
	for s := p.Root; s != nil; s = s.Next {
		if len(s.Preds) > 0 {
			return false
		}
		switch s.Axis {
		case xdm.AxisChild, xdm.AxisDescendant:
		default:
			return false
		}
		switch s.Test.Kind {
		case xdm.TestName, xdm.TestStar:
		default:
			return false
		}
	}
	return true
}

// streamEval runs the stack automaton over the preorder columns of the
// context's subtree. The automaton state is the set of pattern steps
// "active" at the current tree level, held in a bitmask (bit i = "the next
// step to match is spine[i]"); a node matching the final step is an answer.
// States are propagated level by level using an explicit stack of
// (subtree-end, bitmask) frames, so the whole evaluation is one linear scan
// with no per-node allocation. The execution context is polled once per
// 8192 preorder ranks — the scan's batch boundary; a stopped scan returns
// nil (EvalCtx's partial-result contract).
func streamEval(p *Prepared, ec *execctx.Ctx, ctx *xdm.Node) []*xdm.Node {
	pat := p.pat
	spine := p.spine
	var descMask uint64
	for i := range spine {
		if spine[i].axis == xdm.AxisDescendant {
			descMask |= 1 << uint(i)
		}
	}
	n := len(spine)
	if n > 63 {
		// Absurdly deep pattern: fall back to the nested loop's bindings.
		nodes := make([]*xdm.Node, 0)
		for _, b := range nlEval(ec, ctx, pat) {
			nodes = append(nodes, b[0])
		}
		xdm.SortDoc(nodes)
		return xdm.DedupSorted(nodes)
	}
	finalBit := uint64(1) << uint(n-1)

	type frame struct {
		until  int32  // preorder rank where this frame's subtree ends
		states uint64 // active state bitmask for this level
	}
	cols := p.cols
	kindCol, symCol, sizeCol := cols.Kind, cols.Sym, cols.Size
	stack := []frame{{until: int32(ctx.End()), states: 1}}
	var out []int32

	lo, hi := int32(ctx.Pre)+1, int32(ctx.End())
	for pre := lo; pre <= hi; pre++ {
		if pre&8191 == 0 && ec.Stopped() {
			return nil
		}
		kind := kindCol[pre]
		if kind == uint8(xdm.AttributeNode) {
			continue
		}
		// Pop frames whose subtree ended before this node.
		for len(stack) > 1 && stack[len(stack)-1].until < pre {
			stack = stack[:len(stack)-1]
		}
		cur := stack[len(stack)-1].states
		// Descendant states persist downward; matched states advance.
		next := cur & descMask
		if kind == uint8(xdm.ElementNode) {
			sym := symCol[pre]
			for rest := cur; rest != 0; rest &= rest - 1 {
				i := bits.TrailingZeros64(rest)
				t := spine[i].test
				// Spine tests are name or star on an element axis; the node
				// is an element, so star always fires.
				if t.kind == xdm.TestStar || t.sym == sym {
					if uint64(1)<<uint(i) == finalBit {
						out = append(out, pre)
						// Dedup: a node accepted once is enough.
						break
					}
					next |= 1 << uint(i+1)
				}
			}
		}
		if size := sizeCol[pre]; size > 0 {
			if next == 0 {
				// No state can fire anywhere below: skip the subtree.
				pre += size
				continue
			}
			stack = append(stack, frame{until: pre + size, states: next})
		}
	}
	return p.materialize(out)
}
