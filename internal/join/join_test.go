package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

const twigDoc = `<a>
  <b id="1"><c><d/></c></b>
  <b><c/></b>
  <c><b><c><d/><d/></c></b></c>
  <b id="2"><d/></b>
</a>`

func mustIndex(t *testing.T, doc string) *xmlstore.Index {
	t.Helper()
	tr, err := xmlstore.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return xmlstore.BuildIndex(tr)
}

// chain builds a linear pattern from (axis, test) pairs with the output on
// the last step.
func chain(field string, steps ...*pattern.Step) *pattern.Pattern {
	for i := 0; i < len(steps)-1; i++ {
		steps[i].Next = steps[i+1]
	}
	steps[len(steps)-1].Out = "out"
	return pattern.New(field, steps[0])
}

func st(axis xdm.Axis, name string) *pattern.Step {
	return pattern.NewStep(axis, xdm.NameTest(name))
}

func evalNodes(t *testing.T, alg Algorithm, ix *xmlstore.Index, ctx *xdm.Node, p *pattern.Pattern) []*xdm.Node {
	t.Helper()
	bs, err := Eval(alg, ix, ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*xdm.Node, len(bs))
	for i, b := range bs {
		if len(b) != 1 {
			t.Fatalf("binding width %d", len(b))
		}
		out[i] = b[0]
	}
	return out
}

func TestAlgorithmsOnFixedPatterns(t *testing.T) {
	ix := mustIndex(t, twigDoc)
	ctx := ix.Tree.Root
	cases := []struct {
		name string
		pat  *pattern.Pattern
		want int // distinct matched nodes
	}{
		{"desc-b", chain("dot", st(xdm.AxisDescendant, "b")), 4},
		{"desc-c", chain("dot", st(xdm.AxisDescendant, "c")), 4},
		{"desc-b/child-c", chain("dot", st(xdm.AxisDescendant, "b"), st(xdm.AxisChild, "c")), 3},
		{"desc-c/desc-d", chain("dot", st(xdm.AxisDescendant, "c"), st(xdm.AxisDescendant, "d")), 3},
		{"desc-b/child-c/child-d", chain("dot", st(xdm.AxisDescendant, "b"), st(xdm.AxisChild, "c"), st(xdm.AxisChild, "d")), 3},
	}
	distinct := func(ns []*xdm.Node) map[*xdm.Node]bool {
		set := map[*xdm.Node]bool{}
		for _, n := range ns {
			set[n] = true
		}
		return set
	}
	for _, tc := range cases {
		var ref map[*xdm.Node]bool
		for _, alg := range []Algorithm{NestedLoop, Staircase, Twig} {
			// NL reports one binding per match path (duplicates across
			// nested contexts possible; the operator dedupes); compare
			// distinct node sets.
			got := distinct(evalNodes(t, alg, ix, ctx, tc.pat.Clone()))
			if len(got) != tc.want {
				t.Errorf("%s/%s: got %d distinct nodes, want %d", tc.name, alg, len(got), tc.want)
			}
			if alg == NestedLoop {
				ref = got
				continue
			}
			for n := range got {
				if !ref[n] {
					t.Errorf("%s/%s: node %v not in NL result", tc.name, alg, n)
				}
			}
			for n := range ref {
				if !got[n] {
					t.Errorf("%s/%s: node %v missing", tc.name, alg, n)
				}
			}
		}
	}
}

func TestPredicateBranches(t *testing.T) {
	ix := mustIndex(t, twigDoc)
	ctx := ix.Tree.Root
	// descendant::b[child::c[child::d]] — twig with nested branch.
	p := chain("dot", st(xdm.AxisDescendant, "b"))
	inner := st(xdm.AxisChild, "c")
	inner.Preds = []*pattern.Step{st(xdm.AxisChild, "d")}
	p.Root.Preds = []*pattern.Step{inner}
	for _, alg := range []Algorithm{NestedLoop, Staircase, Twig} {
		got := evalNodes(t, alg, ix, ctx, p.Clone())
		if len(got) != 2 { // b(id=1) and the inner b
			t.Errorf("%s: got %d matches, want 2", alg, len(got))
		}
	}
	// Attribute predicate: descendant::b[@id].
	p2 := chain("dot", st(xdm.AxisDescendant, "b"))
	p2.Root.Preds = []*pattern.Step{pattern.NewStep(xdm.AxisAttribute, xdm.NameTest("id"))}
	for _, alg := range []Algorithm{NestedLoop, Staircase, Twig} {
		got := evalNodes(t, alg, ix, ctx, p2.Clone())
		if len(got) != 2 {
			t.Errorf("%s @id: got %d matches, want 2", alg, len(got))
		}
	}
}

func TestEvalFirst(t *testing.T) {
	ix := mustIndex(t, twigDoc)
	ctx := ix.Tree.Root
	p := chain("dot", st(xdm.AxisChild, "a"), st(xdm.AxisChild, "b"), st(xdm.AxisChild, "c"))
	for _, alg := range []Algorithm{NestedLoop, Staircase, Twig} {
		b, ok, err := EvalFirst(alg, ix, ctx, p.Clone())
		if err != nil || !ok {
			t.Fatalf("%s: %v ok=%v", alg, err, ok)
		}
		full := evalNodes(t, alg, ix, ctx, p.Clone())
		if b[0] != full[0] {
			t.Errorf("%s: EvalFirst = %v, full[0] = %v", alg, b[0], full[0])
		}
	}
	// No match.
	p2 := chain("dot", st(xdm.AxisChild, "zz"))
	if _, ok, _ := EvalFirst(NestedLoop, ix, ctx, p2); ok {
		t.Error("EvalFirst on empty pattern returned a match")
	}
}

func TestOutputInPredicateRejected(t *testing.T) {
	ix := mustIndex(t, twigDoc)
	p := chain("dot", st(xdm.AxisDescendant, "b"))
	bad := st(xdm.AxisChild, "c")
	bad.Out = "leak"
	p.Root.Preds = []*pattern.Step{bad}
	if _, err := Eval(NestedLoop, ix, ix.Tree.Root, p); err == nil {
		t.Error("output annotation in predicate should be rejected")
	}
}

// randomPattern builds a random single-output pattern over tags a-d.
func randomPattern(rng *rand.Rand) *pattern.Pattern {
	tags := []string{"a", "b", "c", "d"}
	axes := []xdm.Axis{xdm.AxisChild, xdm.AxisDescendant}
	var mk func(depth int) *pattern.Step
	mk = func(depth int) *pattern.Step {
		s := pattern.NewStep(axes[rng.Intn(2)], xdm.NameTest(tags[rng.Intn(len(tags))]))
		if depth < 2 && rng.Intn(3) == 0 {
			s.Preds = append(s.Preds, mk(depth+1))
		}
		if depth < 2 && rng.Intn(4) == 0 {
			s.Preds = append(s.Preds, mk(depth+1))
		}
		return s
	}
	spine := 1 + rng.Intn(3)
	first := mk(0)
	cur := first
	for i := 1; i < spine; i++ {
		cur.Next = mk(0)
		cur = cur.Next
	}
	cur.Out = "out"
	return pattern.New("dot", first)
}

func randomTree(rng *rand.Rand, n int) *xdm.Tree {
	tags := []string{"a", "b", "c", "d"}
	root := xdm.NewElement("a")
	nodes := []*xdm.Node{root}
	for i := 0; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xdm.NewElement(tags[rng.Intn(len(tags))])
		parent.AppendChild(el)
		nodes = append(nodes, el)
	}
	return xdm.Finalize(root)
}

// Property: the three algorithms agree (as node sets) on random patterns
// over random documents, from random context nodes.
func TestAlgorithmAgreementProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 3+rng.Intn(80))
		ix := xmlstore.BuildIndex(tr)
		ctx := tr.Nodes[rng.Intn(len(tr.Nodes))]
		if ctx.Kind == xdm.AttributeNode {
			ctx = tr.Root
		}
		pat := randomPattern(rng)
		nl, err := Eval(NestedLoop, ix, ctx, pat)
		if err != nil {
			return false
		}
		ref := map[*xdm.Node]bool{}
		for _, b := range nl {
			ref[b[0]] = true
		}
		for _, alg := range []Algorithm{Staircase, Twig} {
			got, err := Eval(alg, ix, ctx, pat)
			if err != nil {
				return false
			}
			if len(got) < len(ref) {
				// Set-at-a-time algorithms return duplicate-free results;
				// NL can repeat nodes across nested contexts. Compare sets.
			}
			seen := map[*xdm.Node]bool{}
			for _, b := range got {
				if !ref[b[0]] {
					t.Logf("seed %d: %s returned extra node %v for %s", seed, alg, b[0], pat)
					return false
				}
				seen[b[0]] = true
			}
			if len(seen) != len(ref) {
				t.Logf("seed %d: %s returned %d distinct nodes, NL %d, pattern %s", seed, alg, len(seen), len(ref), pat)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: SC and Twig results are in document order and duplicate-free.
func TestSetAlgorithmsOrderedProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 3+rng.Intn(60))
		ix := xmlstore.BuildIndex(tr)
		pat := randomPattern(rng)
		for _, alg := range []Algorithm{Staircase, Twig} {
			got, err := Eval(alg, ix, tr.Root, pat)
			if err != nil {
				return false
			}
			for i := 1; i < len(got); i++ {
				if xdm.CompareOrder(got[i-1][0], got[i][0]) >= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
