// Package join implements the physical tree-pattern algorithms behind the
// TupleTreePattern operator (paper §5):
//
//   - NestedLoop (NLJoin): navigational, node-at-a-time evaluation with
//     cursor-style early exit — the baseline every XQuery engine has;
//   - Staircase (SCJoin, Grust & van Keulen): set-at-a-time staircase join
//     over the pre/size region encoding, one pass per location step with
//     context pruning, scanning pre-sorted tag streams;
//   - Twig (TwigJoin, Bruno et al.): holistic twig join with one stream and
//     one stack per query node, linking candidate matches via region
//     containment, with a refinement pass that enforces child edges.
//
// All three implement the same contract: given a context node and a tree
// pattern, return the bindings of the pattern's annotated output steps.
package join

import (
	"fmt"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Algorithm selects the physical tree-pattern algorithm.
type Algorithm int

// The available algorithms.
const (
	NestedLoop Algorithm = iota
	Staircase
	Twig
)

// String names the algorithm as in the paper's tables.
func (a Algorithm) String() string {
	switch a {
	case NestedLoop:
		return "NLJoin"
	case Staircase:
		return "SCJoin"
	case Twig:
		return "TwigJoin"
	case Auto:
		return "Auto"
	case Streaming:
		return "Streaming"
	}
	return "?"
}

// ParseAlgorithm resolves an algorithm name ("nl", "sc", "twig", and the
// paper's table labels).
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "nl", "nljoin", "nested-loop", "NL":
		return NestedLoop, nil
	case "sc", "scjoin", "staircase", "SC":
		return Staircase, nil
	case "twig", "twigjoin", "tj", "TJ":
		return Twig, nil
	case "auto", "Auto":
		return Auto, nil
	case "stream", "streaming":
		return Streaming, nil
	}
	return 0, fmt.Errorf("join: unknown algorithm %q", name)
}

// Binding is one pattern match: the matched node for each annotated output
// step, in pattern.OutputFields() order.
type Binding []*xdm.Node

// Eval returns every binding of pat evaluated from context node ctx. It is
// the one-shot form of Prepare followed by Prepared.Eval; callers that
// evaluate the same pattern from many context nodes of one document should
// Prepare once instead.
func Eval(alg Algorithm, ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) ([]Binding, error) {
	p, err := Prepare(alg, ix, pat)
	if err != nil {
		return nil, err
	}
	return p.Eval(ctx), nil
}

// EvalFirst returns the first binding in document order — the one-shot form
// of Prepare followed by Prepared.EvalFirst.
func EvalFirst(alg Algorithm, ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) (Binding, bool, error) {
	p, err := Prepare(alg, ix, pat)
	if err != nil {
		return nil, false, err
	}
	b, ok := p.EvalFirst(ctx)
	return b, ok, nil
}

// wrapNodes views a freshly built node list as single-field bindings; the
// bindings alias the input slice (two allocations for the whole result set
// instead of one per binding).
func wrapNodes(nodes []*xdm.Node) []Binding {
	out := make([]Binding, len(nodes))
	for i := range nodes {
		out[i] = nodes[i : i+1 : i+1]
	}
	return out
}

// checkPattern rejects output annotations inside predicate branches, which
// the operator does not produce bindings for.
func checkPattern(pat *pattern.Pattern) error {
	var checkPreds func(s *pattern.Step) error
	var checkChain func(s *pattern.Step, inPred bool) error
	checkChain = func(s *pattern.Step, inPred bool) error {
		for c := s; c != nil; c = c.Next {
			if inPred && c.Out != "" {
				return fmt.Errorf("join: output annotation {%s} inside a predicate branch", c.Out)
			}
			if err := checkPreds(c); err != nil {
				return err
			}
		}
		return nil
	}
	checkPreds = func(s *pattern.Step) error {
		for _, p := range s.Preds {
			if err := checkChain(p, true); err != nil {
				return err
			}
		}
		return nil
	}
	return checkChain(pat.Root, false)
}

// scSupported reports whether the staircase join supports every axis in the
// pattern (forward axes only).
func scSupported(s *pattern.Step) bool {
	for c := s; c != nil; c = c.Next {
		if !c.Axis.Forward() {
			return false
		}
		for _, p := range c.Preds {
			if !scSupported(p) {
				return false
			}
		}
	}
	return true
}

// twigSupported reports whether the twig join supports the pattern:
// child/descendant/attribute edges with name or star tests.
func twigSupported(s *pattern.Step) bool {
	for c := s; c != nil; c = c.Next {
		switch c.Axis {
		case xdm.AxisChild, xdm.AxisDescendant, xdm.AxisAttribute:
		default:
			return false
		}
		switch c.Test.Kind {
		case xdm.TestName, xdm.TestStar:
		default:
			return false
		}
		for _, p := range c.Preds {
			if !twigSupported(p) {
				return false
			}
		}
	}
	return true
}

// spineChildOnly reports whether every spine step is a child or attribute
// step (results cannot nest, so lexical order equals document order).
func spineChildOnly(s *pattern.Step) bool {
	for c := s; c != nil; c = c.Next {
		switch c.Axis {
		case xdm.AxisChild, xdm.AxisAttribute, xdm.AxisSelf:
		default:
			return false
		}
	}
	return true
}
