package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

func TestStreamingFixed(t *testing.T) {
	ix := mustIndex(t, twigDoc)
	ctx := ix.Tree.Root
	cases := []struct {
		pat  *pattern.Pattern
		want int
	}{
		{chain("dot", st(xdm.AxisDescendant, "b")), 4},
		{chain("dot", st(xdm.AxisDescendant, "b"), st(xdm.AxisChild, "c")), 3},
		{chain("dot", st(xdm.AxisDescendant, "c"), st(xdm.AxisDescendant, "d")), 3},
		{chain("dot", st(xdm.AxisChild, "a"), st(xdm.AxisChild, "b"), st(xdm.AxisChild, "d")), 1},
		{chain("dot", st(xdm.AxisChild, "zz")), 0},
	}
	for _, tc := range cases {
		got := evalNodes(t, Streaming, ix, ctx, tc.pat.Clone())
		if len(got) != tc.want {
			t.Errorf("%s: got %d nodes, want %d", tc.pat, len(got), tc.want)
		}
		if !xdm.IsDocOrdered(xdm.SequenceOf(got)) {
			t.Errorf("%s: streaming result not in document order", tc.pat)
		}
	}
	// Star tests.
	star := chain("dot", st(xdm.AxisDescendant, "b"), pattern.NewStep(xdm.AxisChild, xdm.StarTest()))
	got := evalNodes(t, Streaming, ix, ctx, star)
	nl := evalNodes(t, NestedLoop, ix, ctx, star.Clone())
	set := map[*xdm.Node]bool{}
	for _, n := range nl {
		set[n] = true
	}
	if len(got) != len(set) {
		t.Errorf("star pattern: streaming %d distinct, NL %d", len(got), len(set))
	}
}

// Property: streaming agrees with the nested loop on random linear
// patterns (predicate-bearing patterns fall back to NL and trivially
// agree).
func TestStreamingAgreementProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 3+rng.Intn(80))
		ix := xmlstore.BuildIndex(tr)
		ctx := tr.Nodes[rng.Intn(len(tr.Nodes))]
		if ctx.Kind == xdm.AttributeNode {
			ctx = tr.Root
		}
		// Linear pattern only.
		tags := []string{"a", "b", "c", "d"}
		axes := []xdm.Axis{xdm.AxisChild, xdm.AxisDescendant}
		first := pattern.NewStep(axes[rng.Intn(2)], xdm.NameTest(tags[rng.Intn(4)]))
		cur := first
		for i := rng.Intn(3); i > 0; i-- {
			cur.Next = pattern.NewStep(axes[rng.Intn(2)], xdm.NameTest(tags[rng.Intn(4)]))
			cur = cur.Next
		}
		cur.Out = "out"
		pat := pattern.New("dot", first)

		nl, err := Eval(NestedLoop, ix, ctx, pat)
		if err != nil {
			return false
		}
		ref := map[*xdm.Node]bool{}
		for _, b := range nl {
			ref[b[0]] = true
		}
		got, err := Eval(Streaming, ix, ctx, pat)
		if err != nil {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		for _, b := range got {
			if !ref[b[0]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStreamingEdgeCases pins the scan's boundary behavior: an empty
// document (childless root element), a root-only single-step pattern, the
// unconstrained //* pattern, and a spine whose final step matches nothing
// even though every earlier step matches.
func TestStreamingEdgeCases(t *testing.T) {
	t.Run("empty-document", func(t *testing.T) {
		ix := mustIndex(t, `<a/>`)
		// The root element has no subtree to scan.
		if got := evalNodes(t, Streaming, ix, ix.Tree.Root, chain("dot", st(xdm.AxisDescendant, "b"))); len(got) != 0 {
			t.Errorf("//b on <a/> = %d nodes, want 0", len(got))
		}
		// The root element itself is still reachable from the document node.
		got := evalNodes(t, Streaming, ix, ix.Tree.Root, chain("dot", st(xdm.AxisChild, "a")))
		if len(got) != 1 || got[0] != ix.Tree.Root.Children[0] {
			t.Errorf("/a on <a/> = %v, want the root element", got)
		}
		// Evaluating from the (leaf) root element scans zero nodes.
		if got := evalNodes(t, Streaming, ix, ix.Tree.Root.Children[0], chain("dot", st(xdm.AxisChild, "a"))); len(got) != 0 {
			t.Errorf("/a from leaf element = %d nodes, want 0", len(got))
		}
	})
	t.Run("root-only-pattern", func(t *testing.T) {
		ix := mustIndex(t, twigDoc)
		got := evalNodes(t, Streaming, ix, ix.Tree.Root, chain("dot", st(xdm.AxisChild, "a")))
		if len(got) != 1 || got[0] != ix.Tree.Root.Children[0] {
			t.Errorf("single-step /a = %v, want the root element", got)
		}
	})
	t.Run("descendant-star", func(t *testing.T) {
		ix := mustIndex(t, twigDoc)
		pat := chain("dot", pattern.NewStep(xdm.AxisDescendant, xdm.StarTest()))
		got := evalNodes(t, Streaming, ix, ix.Tree.Root, pat)
		elements := 0
		for _, n := range ix.Tree.Nodes {
			if n.Kind == xdm.ElementNode {
				elements++
			}
		}
		if len(got) != elements {
			t.Errorf("//* = %d nodes, want every element (%d)", len(got), elements)
		}
		if !xdm.IsDocOrdered(xdm.SequenceOf(got)) {
			t.Error("//* result not in document order")
		}
	})
	t.Run("zero-match-final-step", func(t *testing.T) {
		ix := mustIndex(t, twigDoc)
		// desc::b/child::c matches; the trailing child::zz must empty the
		// result without tripping the subtree-skip bookkeeping.
		pat := chain("dot", st(xdm.AxisDescendant, "b"), st(xdm.AxisChild, "c"), st(xdm.AxisChild, "zz"))
		if got := evalNodes(t, Streaming, ix, ix.Tree.Root, pat); len(got) != 0 {
			t.Errorf("//b/c/zz = %d nodes, want 0", len(got))
		}
	})
}

func TestStreamingFallsBack(t *testing.T) {
	ix := mustIndex(t, twigDoc)
	// Predicates are outside the streaming fragment: the fallback must
	// still answer correctly.
	p := chain("dot", st(xdm.AxisDescendant, "b"))
	p.Root.Preds = []*pattern.Step{st(xdm.AxisChild, "c")}
	got := evalNodes(t, Streaming, ix, ix.Tree.Root, p)
	if len(got) != 3 {
		t.Errorf("fallback result = %d nodes, want 3", len(got))
	}
}
