package join

import (
	"slices"
	"sync"

	"xqtp/internal/execctx"
	"xqtp/internal/xdm"
)

// scArena is the per-evaluation scratch of the staircase join: a stack of
// candidate-list buffers handed out in LIFO order. Buffers hold int32 pre
// ranks, not node pointers — half the bytes per candidate and nothing for
// the GC to scan. One arena is fetched from a pool per scEval call, so the
// per-candidate existential semi-joins (scExists runs once per candidate per
// predicate) reuse buffers with plain integer bookkeeping instead of hitting
// the pool in the hot loop.
type scArena struct {
	bufs [][]int32
	next int
}

// take hands out the index of a fresh (empty) buffer.
func (a *scArena) take() int {
	if a.next == len(a.bufs) {
		a.bufs = append(a.bufs, make([]int32, 0, 64))
	}
	i := a.next
	a.next++
	return i
}

// giveBack writes a possibly-grown buffer back to its slot so the arena
// keeps the capacity for the next use; callers then restore a.next to their
// saved mark.
func (a *scArena) giveBack(i int, b []int32) { a.bufs[i] = b[:0] }

var scArenaPool = sync.Pool{New: func() any { return new(scArena) }}

// scEval is the staircase-join evaluation of a single-output tree pattern:
// one set-at-a-time pass per location step. Descendant steps prune the
// context staircase (contexts covered by an earlier context are skipped)
// and scan the pre-resolved integer rank stream region by region, producing
// duplicate-free results in document order without an explicit sort.
// Containment and node tests are integer compares against the tree's
// columns; no node pointer is touched until the final materialization.
// Predicate branches are evaluated as existential semi-joins per candidate
// — the per-candidate work is what makes SCJoin degrade on complex twigs
// while it shines on linear paths (paper §5.2).
//
// The per-step candidate lists live in arena buffers (two, swapped each
// step); only the final result materializes nodes, exactly sized.
//
// The execution context is polled once per spine step, once per 64 contexts
// inside the descendant scans, and once per 64 candidates in the predicate
// semi-join loop — the stream-advance batch boundaries, so the unchunked
// inner region scans stay branch-free. A stopped evaluation skips the
// materialization and returns nil (EvalCtx's partial-result contract); the
// arena goes back to the pool through the same path as a completed run, so
// cancellation never leaks or corrupts pooled scratch.
func scEval(p *Prepared, ec *execctx.Ctx, ctx *xdm.Node) []*xdm.Node {
	arena := scArenaPool.Get().(*scArena)
	ai, bi := arena.take(), arena.take()
	cur := append(arena.bufs[ai][:0], int32(ctx.Pre))
	next := arena.bufs[bi][:0]
	stopped := false
	for i := range p.spine {
		if ec.Stopped() {
			stopped = true
			break
		}
		s := &p.spine[i]
		next = scStep(p, ec, cur, s, next[:0])
		if len(s.preds) > 0 {
			kept := next[:0]
			for ci, cand := range next {
				if ci&63 == 63 && ec.Stopped() {
					break
				}
				if scPreds(p, arena, cand, s.preds) {
					kept = append(kept, cand)
				}
			}
			next = kept
		}
		cur, next = next, cur
		if len(cur) == 0 {
			break
		}
	}
	var out []*xdm.Node
	if !stopped {
		out = p.materialize(cur)
	}
	arena.giveBack(ai, cur)
	arena.giveBack(bi, next)
	arena.next = 0
	scArenaPool.Put(arena)
	return out
}

// scStep performs one staircase step over a document-ordered duplicate-free
// context rank list, appending into dst (which must not alias ctxs).
func scStep(p *Prepared, ec *execctx.Ctx, ctxs []int32, s *cstep, dst []int32) []int32 {
	cols := p.cols
	axis, test := s.axis, s.test
	out := dst
	switch axis {
	case xdm.AxisDescendant, xdm.AxisDescendantOrSelf:
		stream := s.stream
		// Staircase pruning: skip contexts covered by the previous kept
		// context; the remaining regions are disjoint and ascending, so the
		// concatenation of region scans is already in document order, and a
		// single galloping cursor walks the stream monotonically instead of
		// binary-searching it from scratch per context.
		covered := int32(-1)
		pos := 0
		for ci, c := range ctxs {
			if ci&63 == 63 && ec.Stopped() {
				return out
			}
			if c <= covered {
				continue
			}
			end := cols.End(c)
			covered = end
			if axis == xdm.AxisDescendantOrSelf && test.matches(cols, c) {
				out = append(out, c)
			}
			pos = gallopRanks(stream, pos, c+1)
			for pos < len(stream) && stream[pos] <= end {
				out = append(out, stream[pos])
				pos++
			}
		}
		return out
	case xdm.AxisChild:
		// Constant-cost child access via the size column (first child starts
		// after the attribute run, each sibling starts one past the previous
		// region); set-at-a-time with a final order/duplicate repair because
		// contexts may nest.
		for ci, c := range ctxs {
			if ci&63 == 63 && ec.Stopped() {
				break
			}
			end := cols.End(c)
			for ch := cols.FirstChild(c); ch <= end; ch = cols.NextSibling(ch) {
				if test.matches(cols, ch) {
					out = append(out, ch)
				}
			}
		}
		if !sortedRanks(out) {
			slices.Sort(out)
		}
		return dedupRanks(out)
	case xdm.AxisAttribute:
		// Attributes are numbered directly after their owner element.
		for _, c := range ctxs {
			end := cols.End(c)
			for a := c + 1; a <= end && cols.Kind[a] == uint8(xdm.AttributeNode); a++ {
				if test.matches(cols, a) {
					out = append(out, a)
				}
			}
		}
		if !sortedRanks(out) {
			slices.Sort(out)
		}
		return dedupRanks(out)
	case xdm.AxisSelf:
		for _, c := range ctxs {
			if test.matches(cols, c) {
				out = append(out, c)
			}
		}
		return out
	}
	return out
}

// scPreds checks the predicate branches of a candidate as existential
// semi-joins using the same staircase primitives from a singleton context.
func scPreds(p *Prepared, arena *scArena, cand int32, preds [][]cstep) bool {
	for _, pr := range preds {
		if !scExists(p, arena, cand, pr) {
			return false
		}
	}
	return true
}

func scExists(p *Prepared, arena *scArena, ctx int32, chain []cstep) bool {
	mark := arena.next
	ai, bi := arena.take(), arena.take()
	cur := append(arena.bufs[ai][:0], ctx)
	next := arena.bufs[bi][:0]
	found := true
	for i := range chain {
		s := &chain[i]
		// Predicate semi-joins run from singleton contexts, so their scans
		// are short; the execution context is polled by the outer loops.
		next = scStep(p, nil, cur, s, next[:0])
		if len(s.preds) > 0 {
			kept := next[:0]
			for _, cand := range next {
				if scPreds(p, arena, cand, s.preds) {
					kept = append(kept, cand)
				}
			}
			next = kept
		}
		cur, next = next, cur
		if len(cur) == 0 {
			found = false
			break
		}
	}
	arena.giveBack(ai, cur)
	arena.giveBack(bi, next)
	arena.next = mark
	return found
}

// sortedRanks reports whether the ranks are strictly ascending.
func sortedRanks(rs []int32) bool {
	for i := 1; i < len(rs); i++ {
		if rs[i-1] >= rs[i] {
			return false
		}
	}
	return true
}

// dedupRanks removes adjacent duplicates from a sorted rank slice in place.
func dedupRanks(rs []int32) []int32 {
	if len(rs) < 2 {
		return rs
	}
	w := 1
	for i := 1; i < len(rs); i++ {
		if rs[i] != rs[w-1] {
			rs[w] = rs[i]
			w++
		}
	}
	return rs[:w]
}

// searchGE returns the first index whose rank is >= x (len(a) when none is).
func searchGE(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopRanks advances a forward-only cursor to the first index at or after
// pos whose rank is >= x: exponential probing brackets the boundary, binary
// search pins it. Cheap when the skip is short (the common case on dense
// streams), logarithmic in the skip when it is long.
func gallopRanks(a []int32, pos int, x int32) int {
	n := len(a)
	if pos >= n || a[pos] >= x {
		return pos
	}
	lo, hi, step := pos+1, n, 1
	for pos+step < n {
		if a[pos+step] < x {
			lo = pos + step + 1
			step <<= 1
		} else {
			hi = pos + step
			break
		}
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
