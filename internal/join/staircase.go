package join

import (
	"sync"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// scArena is the per-evaluation scratch of the staircase join: a stack of
// candidate-list buffers handed out in LIFO order. One arena is fetched
// from a pool per scEval call, so the per-candidate existential semi-joins
// (scExists runs once per candidate per predicate) reuse buffers with plain
// integer bookkeeping instead of hitting the pool in the hot loop.
type scArena struct {
	bufs [][]*xdm.Node
	next int
}

// take hands out the index of a fresh (empty) buffer.
func (a *scArena) take() int {
	if a.next == len(a.bufs) {
		a.bufs = append(a.bufs, make([]*xdm.Node, 0, 64))
	}
	i := a.next
	a.next++
	return i
}

// giveBack writes a possibly-grown buffer back to its slot so the arena
// keeps the capacity for the next use; callers then restore a.next to their
// saved mark.
func (a *scArena) giveBack(i int, b []*xdm.Node) { a.bufs[i] = b[:0] }

var scArenaPool = sync.Pool{New: func() any { return new(scArena) }}

// scEval is the staircase-join evaluation of a single-output tree pattern:
// one set-at-a-time pass per location step. Descendant steps prune the
// context staircase (contexts covered by an earlier context are skipped)
// and scan the pre-resolved tag stream region by region, producing
// duplicate-free results in document order without an explicit sort.
// Predicate branches are evaluated as existential semi-joins per candidate
// — the per-candidate work is what makes SCJoin degrade on complex twigs
// while it shines on linear paths (paper §5.2).
//
// The per-step candidate lists live in arena buffers (two, swapped each
// step); only the final result is allocated, exactly sized.
func scEval(p *Prepared, ctx *xdm.Node) []*xdm.Node {
	arena := scArenaPool.Get().(*scArena)
	ai, bi := arena.take(), arena.take()
	cur := append(arena.bufs[ai][:0], ctx)
	next := arena.bufs[bi][:0]
	for s := p.pat.Root; s != nil; s = s.Next {
		next = scStep(p, cur, s, next[:0])
		if len(s.Preds) > 0 {
			kept := next[:0]
			for _, cand := range next {
				if scPreds(p, arena, cand, s.Preds) {
					kept = append(kept, cand)
				}
			}
			next = kept
		}
		cur, next = next, cur
		if len(cur) == 0 {
			break
		}
	}
	var out []*xdm.Node
	if len(cur) > 0 {
		out = make([]*xdm.Node, len(cur))
		copy(out, cur)
	}
	arena.giveBack(ai, cur)
	arena.giveBack(bi, next)
	arena.next = 0
	scArenaPool.Put(arena)
	return out
}

// scStep performs one staircase step over a document-ordered duplicate-free
// context list, appending into dst (which must not alias ctxs).
func scStep(p *Prepared, ctxs []*xdm.Node, s *pattern.Step, dst []*xdm.Node) []*xdm.Node {
	axis, test := s.Axis, s.Test
	out := dst
	switch axis {
	case xdm.AxisDescendant, xdm.AxisDescendantOrSelf:
		stream := p.stream(s)
		// Staircase pruning: skip contexts covered by the previous kept
		// context; the remaining regions are disjoint and ascending, so
		// the concatenation of region scans is already in document order.
		covered := -1
		for _, c := range ctxs {
			if c.Pre <= covered {
				continue
			}
			covered = c.End()
			if axis == xdm.AxisDescendantOrSelf && test.Matches(axis, c) {
				out = append(out, c)
			}
			out = append(out, xmlstore.RegionSlice(stream, c)...)
		}
		return out
	case xdm.AxisChild:
		// Constant-cost child access in the in-memory data model (the
		// paper's note on the Galax model); set-at-a-time with a final
		// order/duplicate repair because contexts may nest.
		for _, c := range ctxs {
			for _, ch := range c.Children {
				if test.Matches(axis, ch) {
					out = append(out, ch)
				}
			}
		}
		if !sortedNodes(out) {
			xdm.SortDoc(out)
		}
		return xdm.DedupSorted(out)
	case xdm.AxisAttribute:
		for _, c := range ctxs {
			for _, a := range c.Attrs {
				if test.Matches(axis, a) {
					out = append(out, a)
				}
			}
		}
		if !sortedNodes(out) {
			xdm.SortDoc(out)
		}
		return xdm.DedupSorted(out)
	case xdm.AxisSelf:
		for _, c := range ctxs {
			if test.Matches(axis, c) {
				out = append(out, c)
			}
		}
		return out
	}
	return out
}

// scPreds checks the predicate branches of a candidate as existential
// semi-joins using the same staircase primitives from a singleton context.
func scPreds(p *Prepared, arena *scArena, cand *xdm.Node, preds []*pattern.Step) bool {
	for _, pr := range preds {
		if !scExists(p, arena, cand, pr) {
			return false
		}
	}
	return true
}

func scExists(p *Prepared, arena *scArena, ctx *xdm.Node, chain *pattern.Step) bool {
	mark := arena.next
	ai, bi := arena.take(), arena.take()
	cur := append(arena.bufs[ai][:0], ctx)
	next := arena.bufs[bi][:0]
	found := true
	for s := chain; s != nil; s = s.Next {
		next = scStep(p, cur, s, next[:0])
		if len(s.Preds) > 0 {
			kept := next[:0]
			for _, cand := range next {
				if scPreds(p, arena, cand, s.Preds) {
					kept = append(kept, cand)
				}
			}
			next = kept
		}
		cur, next = next, cur
		if len(cur) == 0 {
			found = false
			break
		}
	}
	arena.giveBack(ai, cur)
	arena.giveBack(bi, next)
	arena.next = mark
	return found
}

func sortedNodes(ns []*xdm.Node) bool {
	for i := 1; i < len(ns); i++ {
		if xdm.CompareOrder(ns[i-1], ns[i]) >= 0 {
			return false
		}
	}
	return true
}
