package join

import (
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// scEval is the staircase-join evaluation of a single-output tree pattern:
// one set-at-a-time pass per location step. Descendant steps prune the
// context staircase (contexts covered by an earlier context are skipped)
// and scan the pre-sorted tag stream region by region, producing
// duplicate-free results in document order without an explicit sort.
// Predicate branches are evaluated as existential semi-joins per candidate
// — the per-candidate work is what makes SCJoin degrade on complex twigs
// while it shines on linear paths (paper §5.2).
func scEval(ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) []*xdm.Node {
	cur := []*xdm.Node{ctx}
	for s := pat.Root; s != nil; s = s.Next {
		cur = scStep(ix, cur, s.Axis, s.Test)
		if len(s.Preds) > 0 {
			kept := cur[:0:len(cur)]
			for _, cand := range cur {
				if scPreds(ix, cand, s.Preds) {
					kept = append(kept, cand)
				}
			}
			cur = kept
		}
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// scStep performs one staircase step over a document-ordered duplicate-free
// context list.
func scStep(ix *xmlstore.Index, ctxs []*xdm.Node, axis xdm.Axis, test xdm.NodeTest) []*xdm.Node {
	var out []*xdm.Node
	switch axis {
	case xdm.AxisDescendant, xdm.AxisDescendantOrSelf:
		stream := ix.StreamFor(axis, test)
		// Staircase pruning: skip contexts covered by the previous kept
		// context; the remaining regions are disjoint and ascending, so
		// the concatenation of region scans is already in document order.
		covered := -1
		for _, c := range ctxs {
			if c.Pre <= covered {
				continue
			}
			covered = c.End()
			if axis == xdm.AxisDescendantOrSelf && test.Matches(axis, c) {
				out = append(out, c)
			}
			out = append(out, xmlstore.RegionSlice(stream, c)...)
		}
		return out
	case xdm.AxisChild:
		// Constant-cost child access in the in-memory data model (the
		// paper's note on the Galax model); set-at-a-time with a final
		// order/duplicate repair because contexts may nest.
		for _, c := range ctxs {
			for _, ch := range c.Children {
				if test.Matches(axis, ch) {
					out = append(out, ch)
				}
			}
		}
		if !sortedNodes(out) {
			xdm.SortDoc(out)
		}
		return xdm.DedupSorted(out)
	case xdm.AxisAttribute:
		for _, c := range ctxs {
			for _, a := range c.Attrs {
				if test.Matches(axis, a) {
					out = append(out, a)
				}
			}
		}
		if !sortedNodes(out) {
			xdm.SortDoc(out)
		}
		return xdm.DedupSorted(out)
	case xdm.AxisSelf:
		for _, c := range ctxs {
			if test.Matches(axis, c) {
				out = append(out, c)
			}
		}
		return out
	}
	return nil
}

// scPreds checks the predicate branches of a candidate as existential
// semi-joins using the same staircase primitives from a singleton context.
func scPreds(ix *xmlstore.Index, cand *xdm.Node, preds []*pattern.Step) bool {
	for _, p := range preds {
		if !scExists(ix, cand, p) {
			return false
		}
	}
	return true
}

func scExists(ix *xmlstore.Index, ctx *xdm.Node, chain *pattern.Step) bool {
	cur := []*xdm.Node{ctx}
	for s := chain; s != nil; s = s.Next {
		cur = scStep(ix, cur, s.Axis, s.Test)
		if len(s.Preds) > 0 {
			kept := cur[:0:len(cur)]
			for _, cand := range cur {
				if scPreds(ix, cand, s.Preds) {
					kept = append(kept, cand)
				}
			}
			cur = kept
		}
		if len(cur) == 0 {
			return false
		}
	}
	return true
}

func sortedNodes(ns []*xdm.Node) bool {
	for i := 1; i < len(ns); i++ {
		if xdm.CompareOrder(ns[i-1], ns[i]) >= 0 {
			return false
		}
	}
	return true
}
