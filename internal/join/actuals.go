package join

import (
	"xqtp/internal/execctx"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// StepActuals evaluates every spine prefix of pat from ctx and returns the
// exact number of distinct nodes matching at each spine step (predicates of
// the prefix included) — the act= column Explain prints next to the cost
// model's est=. This is an observability path, not a hot path: it runs one
// full evaluation per spine step.
func StepActuals(ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) []int {
	return StepActualsCtx(nil, ix, ctx, pat)
}

// StepActualsCtx is StepActuals under an execution context: the per-prefix
// evaluations poll ec, and a stop cuts the walk short, returning the
// actuals computed so far (callers surface ec.Err()).
func StepActualsCtx(ec *execctx.Ctx, ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) []int {
	n := pat.SpineLen()
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if ec.Stopped() {
			break
		}
		prefix := pat.Clone()
		prefix.Root.ClearOutputs()
		s := prefix.Root
		for j := 0; j < i; j++ {
			s = s.Next
		}
		s.Next = nil
		s.Out = "n"
		p, err := Prepare(Auto, ix, prefix)
		if err != nil {
			out = append(out, -1)
			continue
		}
		out = append(out, distinctFirst(p.EvalCtx(ec, ctx)))
	}
	return out
}

// distinctFirst counts the distinct nodes in the bindings' single output
// column.
func distinctFirst(bs []Binding) int {
	seen := make(map[*xdm.Node]struct{}, len(bs))
	for _, b := range bs {
		if len(b) > 0 {
			seen[b[0]] = struct{}{}
		}
	}
	return len(seen)
}
