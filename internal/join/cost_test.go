package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

func TestAutoAgreesWithFixedAlgorithms(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 3+rng.Intn(60))
		ix := xmlstore.BuildIndex(tr)
		pat := randomPattern(rng)
		ref, err := Eval(NestedLoop, ix, tr.Root, pat)
		if err != nil {
			return false
		}
		refSet := map[*xdm.Node]bool{}
		for _, b := range ref {
			refSet[b[0]] = true
		}
		got, err := Eval(Auto, ix, tr.Root, pat)
		if err != nil {
			return false
		}
		gotSet := map[*xdm.Node]bool{}
		for _, b := range got {
			if !refSet[b[0]] {
				return false
			}
			gotSet[b[0]] = true
		}
		return len(gotSet) == len(refSet)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestChooseHeuristics(t *testing.T) {
	// A large document where set-at-a-time evaluation must win for a bulk
	// rooted path.
	rng := rand.New(rand.NewSource(4))
	tr := randomTree(rng, 4000)
	ix := xmlstore.BuildIndex(tr)
	bulk := chain("dot", st(xdm.AxisDescendant, "b"))
	if alg := Choose(ix, tr.Root, bulk); alg == NestedLoop {
		t.Errorf("Choose picked NLJoin for a bulk rooted path")
	}
	// Patterns outside the set-at-a-time fragment fall back to the fully
	// general nested loop.
	rev := chain("dot", st(xdm.AxisDescendant, "b"), st(xdm.AxisParent, "a"))
	if alg := Choose(ix, tr.Root, rev); alg != NestedLoop {
		t.Errorf("Choose picked %v for a reverse-axis pattern, want NLJoin", alg)
	}
	// First-match over a child spine: Auto takes the NL early exit.
	p := chain("dot", st(xdm.AxisChild, "a"), st(xdm.AxisChild, "b"))
	if _, _, err := EvalFirst(Auto, ix, tr.Root, p); err != nil {
		t.Fatal(err)
	}
}

func TestParseAlgorithmAuto(t *testing.T) {
	a, err := ParseAlgorithm("auto")
	if err != nil || a != Auto {
		t.Fatalf("ParseAlgorithm(auto) = %v, %v", a, err)
	}
	if Auto.String() != "Auto" {
		t.Errorf("Auto.String() = %q", Auto.String())
	}
}
