package join

import (
	"math/rand"
	"slices"
	"testing"

	"xqtp/internal/gen"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// The differential tests pin the integer kernels to the pointer-based
// nested-loop evaluator: for every pattern, document and context, the rank
// sequence an integer kernel returns must be byte-for-byte the nested
// loop's result after document-order sort and duplicate elimination — same
// pre ranks, same order. The nested loop never touches the columnar store
// (it navigates Node pointers), so agreement here checks the columns, the
// index streams, and the kernels against an independent implementation.

// rankSeq extracts the pre ranks of single-output bindings, in result order.
func rankSeq(t *testing.T, bs []Binding) []int32 {
	t.Helper()
	out := make([]int32, len(bs))
	for i, b := range bs {
		if len(b) != 1 {
			t.Fatalf("binding width %d", len(b))
		}
		out[i] = int32(b[0].Pre)
	}
	return out
}

// nlReference evaluates the pattern with the nested loop and returns the
// reference rank sequence: sorted, duplicate-free.
func nlReference(t *testing.T, ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) []int32 {
	t.Helper()
	bs, err := Eval(NestedLoop, ix, ctx, pat)
	if err != nil {
		t.Fatal(err)
	}
	ranks := rankSeq(t, bs)
	slices.Sort(ranks)
	return slices.Compact(ranks)
}

// checkKernels evaluates the pattern under every applicable integer kernel
// and compares the exact rank sequence against the nested-loop reference.
func checkKernels(t *testing.T, label string, ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) {
	t.Helper()
	want := nlReference(t, ix, ctx, pat)
	algs := []Algorithm{Staircase, Twig}
	if streamSupported(pat) {
		algs = append(algs, Streaming)
	}
	for _, alg := range algs {
		p, err := Prepare(alg, ix, pat)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, alg, err)
		}
		got := rankSeq(t, p.Eval(ctx))
		if !slices.Equal(got, want) {
			t.Errorf("%s/%s from pre=%d: ranks %v, nested loop %v (pattern %s)",
				label, alg, ctx.Pre, got, want, pat)
		}
	}
}

// corpusDocs are hand-picked edge-shape documents: a childless root, an
// attribute-only element, text between elements, repeated tags at multiple
// depths, and tag-equal nesting (ancestor and descendant share the name).
var corpusDocs = []string{
	`<a/>`,
	`<a id="1" class="x"/>`,
	`<a>text<b/>more<c/>tail</a>`,
	`<a><b><a><b><a/></b></a></b></a>`,
	`<a><b x="1"/><b x="2"><c/></b><c><b/></c></a>`,
	twigDoc,
}

// corpusPatterns builds the fixed pattern set run against every corpus
// document: linear spines, star tests, predicate branches and attribute
// steps over the corpus tags.
func corpusPatterns() []*pattern.Pattern {
	mk := func(steps ...*pattern.Step) *pattern.Pattern { return chain("dot", steps...) }
	withPred := func(p *pattern.Pattern, pred *pattern.Step) *pattern.Pattern {
		p.Root.Preds = []*pattern.Step{pred}
		return p
	}
	return []*pattern.Pattern{
		mk(st(xdm.AxisChild, "a")),
		mk(st(xdm.AxisDescendant, "a")),
		mk(st(xdm.AxisDescendant, "b")),
		mk(pattern.NewStep(xdm.AxisDescendant, xdm.StarTest())),
		mk(st(xdm.AxisDescendant, "a"), st(xdm.AxisChild, "b")),
		mk(st(xdm.AxisDescendant, "b"), st(xdm.AxisDescendant, "a")),
		mk(st(xdm.AxisChild, "a"), st(xdm.AxisChild, "b"), st(xdm.AxisChild, "c")),
		mk(st(xdm.AxisDescendant, "zz")),
		mk(st(xdm.AxisDescendant, "a"), st(xdm.AxisChild, "zz")),
		withPred(mk(st(xdm.AxisDescendant, "b")), st(xdm.AxisChild, "c")),
		withPred(mk(st(xdm.AxisDescendant, "b")), pattern.NewStep(xdm.AxisAttribute, xdm.NameTest("x"))),
		withPred(mk(st(xdm.AxisDescendant, "a")), st(xdm.AxisDescendant, "a")),
	}
}

func TestDifferentialCorpus(t *testing.T) {
	for di, doc := range corpusDocs {
		ix := mustIndex(t, doc)
		for pi, pat := range corpusPatterns() {
			label := "doc" + string(rune('0'+di)) + "/pat" + string(rune('0'+pi))
			// From the document node and from every element.
			checkKernels(t, label, ix, ix.Tree.Root, pat.Clone())
			for _, n := range ix.Tree.Nodes {
				if n.Kind == xdm.ElementNode {
					checkKernels(t, label, ix, n, pat.Clone())
				}
			}
		}
	}
}

// TestDifferentialRandomTrees fuzzes the kernels over random tree shapes,
// random patterns and random element contexts.
func TestDifferentialRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng, 3+rng.Intn(100))
		ix := xmlstore.BuildIndex(tr)
		pat := randomPattern(rng)
		ctx := tr.Nodes[rng.Intn(len(tr.Nodes))]
		if ctx.Kind != xdm.ElementNode && ctx.Kind != xdm.DocumentNode {
			ctx = tr.Root
		}
		checkKernels(t, "random", ix, ctx, pat)
	}
}

// xmarkTags are element names that occur in the generated XMark documents.
var xmarkTags = []string{
	"site", "people", "person", "profile", "interest", "name",
	"open_auctions", "open_auction", "bidder", "increase",
	"regions", "item", "description", "text", "emailaddress",
}

// randomXMarkPattern builds a random pattern over XMark tag names.
func randomXMarkPattern(rng *rand.Rand) *pattern.Pattern {
	axes := []xdm.Axis{xdm.AxisChild, xdm.AxisDescendant}
	mk := func() *pattern.Step {
		if rng.Intn(8) == 0 {
			return pattern.NewStep(axes[rng.Intn(2)], xdm.StarTest())
		}
		return st(axes[rng.Intn(2)], xmarkTags[rng.Intn(len(xmarkTags))])
	}
	first := mk()
	cur := first
	for n := rng.Intn(3); n > 0; n-- {
		cur.Next = mk()
		cur = cur.Next
	}
	if rng.Intn(2) == 0 {
		cur.Preds = append(cur.Preds, mk())
	}
	cur.Out = "out"
	return pattern.New("dot", first)
}

// TestDifferentialXMarkFragments fuzzes the kernels over fragments of an
// XMark document: random subtree roots serve as evaluation contexts.
func TestDifferentialXMarkFragments(t *testing.T) {
	tr := gen.XMark(gen.XMarkConfig{Seed: 11, People: 40})
	ix := xmlstore.BuildIndex(tr)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		pat := randomXMarkPattern(rng)
		ctx := tr.Nodes[rng.Intn(len(tr.Nodes))]
		if ctx.Kind != xdm.ElementNode {
			ctx = tr.Root
		}
		checkKernels(t, "xmark", ix, ctx, pat)
	}
}
