package join

import (
	"sort"
	"sync"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// twigEval is the holistic twig-join evaluation of a single-output tree
// pattern (after TwigStack, Bruno et al. SIGMOD'02): one pre-sorted stream
// and one stack per query node, a getNext oracle that advances the streams
// in lockstep, and stack-encoded root-to-node chains. Nodes reach a stack
// only when their parent stack links them to a full root path, which keeps
// the candidate sets near the final matches for descendant edges; child
// edges are enforced afterwards in a merge-style refinement pass over the
// pre-sorted candidate lists (TwigStack is provably optimal only for
// descendant edges — the paper's observation that child steps do not
// penalize it in the in-memory model still shows in the refinement cost).
//
// The streams come pre-resolved from the Prepared pattern; stacks and
// candidate lists live in a pooled arena, released after the result is
// copied out.
func twigEval(p *Prepared, ctx *xdm.Node) []*xdm.Node {
	arena := getTwigBufs()
	q := buildQuery(p, ctx, arena)
	runTwigStack(q)
	refine(q)
	// Select the extraction-point candidates that sit on a refined root
	// path (top-down pass).
	topDown(q)
	ep := findOutput(q)
	var out []*xdm.Node
	if ep != nil && len(ep.valid) > 0 {
		out = make([]*xdm.Node, len(ep.valid))
		copy(out, ep.valid)
	}
	arena.release(q)
	return out
}

// qnode is one query node of the twig.
type qnode struct {
	axis     xdm.Axis // edge from the parent (child/descendant/attribute)
	test     xdm.NodeTest
	out      bool
	parent   *qnode
	children []*qnode

	stream []*xdm.Node // region-restricted pre-sorted stream
	pos    int         // stream cursor
	stack  []*xdm.Node // pooled

	cand  []*xdm.Node // nodes ever pushed (root-path connected), pre-sorted; pooled
	valid []*xdm.Node // candidates surviving refinement and the top-down pass; pooled
}

// twigBufs recycles the stacks and candidate lists of one twig evaluation.
// get hands out a recycled buffer (or nil, which append grows); release
// collects the possibly grown buffers back off the query tree.
type twigBufs struct {
	bufs [][]*xdm.Node
	next int
}

var twigBufsPool = sync.Pool{New: func() any { return new(twigBufs) }}

func getTwigBufs() *twigBufs { return twigBufsPool.Get().(*twigBufs) }

func (a *twigBufs) get() []*xdm.Node {
	if a.next < len(a.bufs) {
		b := a.bufs[a.next]
		a.next++
		return b[:0]
	}
	return nil
}

func (a *twigBufs) release(root *qnode) {
	a.bufs = a.bufs[:0]
	var walk func(*qnode)
	walk = func(q *qnode) {
		a.bufs = append(a.bufs, q.stack[:0], q.cand[:0], q.valid[:0])
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
	a.next = 0
	twigBufsPool.Put(a)
}

// buildQuery turns the pattern into a query tree with region-restricted
// streams. The virtual root is the context node itself.
func buildQuery(p *Prepared, ctx *xdm.Node, arena *twigBufs) *qnode {
	root := &qnode{test: xdm.AnyNodeTest()}
	root.cand = append(arena.get(), ctx)
	root.valid = append(arena.get(), ctx)
	root.stack = append(arena.get(), ctx)
	var build func(parent *qnode, s *pattern.Step)
	build = func(parent *qnode, s *pattern.Step) {
		q := &qnode{axis: s.Axis, test: s.Test, out: s.Out != "", parent: parent}
		q.stream = xmlstore.RegionSlice(p.stream(s), ctx)
		q.stack = arena.get()
		q.cand = arena.get()
		q.valid = arena.get()
		parent.children = append(parent.children, q)
		for _, pr := range s.Preds {
			build(q, pr)
		}
		if s.Next != nil {
			build(q, s.Next)
		}
	}
	build(root, p.pat.Root)
	return root
}

func (q *qnode) exhausted() bool { return q.pos >= len(q.stream) }
func (q *qnode) next() *xdm.Node { return q.stream[q.pos] }
func (q *qnode) isLeaf() bool    { return len(q.children) == 0 }

// nextBegin returns the pre rank of the head of q's stream (infinity when
// exhausted).
func (q *qnode) nextBegin() int {
	if q.exhausted() {
		return int(^uint(0) >> 1)
	}
	return q.next().Pre
}

// runTwigStack advances all streams in document order, pushing a node onto
// its stack only when its parent's stack holds an ancestor (so every pushed
// node lies on a root-connected chain). Pushed nodes are the candidate sets
// the refinement pass works from.
func runTwigStack(root *qnode) {
	for {
		q := getNext(root)
		if q == nil {
			return
		}
		n := q.next()
		q.pos++
		// Clean ancestor stacks of entries that end before n.
		cleanStacks(root, n)
		if q.parent.topContains(n) {
			q.stack = append(q.stack, n)
			q.cand = append(q.cand, n)
			if q.isLeaf() {
				// Leaves never gain children; keep the stack shallow.
				q.stack = q.stack[:len(q.stack)-1]
			}
		}
	}
}

// getNext returns the descendant-or-self query node whose stream head has
// the minimal pre rank and can still contribute (the simplified getNext
// oracle: streams are advanced globally in document order, which preserves
// the stack invariants that TwigStack relies on).
func getNext(root *qnode) *qnode {
	var best *qnode
	var walk func(*qnode)
	walk = func(q *qnode) {
		if q.parent != nil && !q.exhausted() {
			if best == nil || q.nextBegin() < best.nextBegin() {
				best = q
			}
		}
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
	return best
}

// cleanStacks pops entries whose region ends before node n starts: they can
// never be ancestors of n or of anything after n.
func cleanStacks(root *qnode, n *xdm.Node) {
	var walk func(*qnode)
	walk = func(q *qnode) {
		for len(q.stack) > 0 {
			top := q.stack[len(q.stack)-1]
			if top.Doc == n.Doc && top.End() >= n.Pre {
				break
			}
			if top == n.Doc.Root || top.Contains(n) {
				break
			}
			q.stack = q.stack[:len(q.stack)-1]
		}
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
}

// topContains reports whether some entry of q's stack is an ancestor of n.
// Stack entries form a nested chain; the top can be a node at the same pre
// rank as n (streams of different query nodes may share tags), so the scan
// walks down until a containing entry is found. Respecting the edge axis is
// left to refinement for child edges.
func (q *qnode) topContains(n *xdm.Node) bool {
	for i := len(q.stack) - 1; i >= 0; i-- {
		e := q.stack[i]
		if e == n.Doc.Root || e.Contains(n) {
			return true
		}
	}
	return false
}

// refine keeps, bottom-up, only the candidates that have a matching
// candidate for every query child under the right axis — a merge over the
// pre-sorted candidate lists.
func refine(root *qnode) {
	var walk func(*qnode)
	walk = func(q *qnode) {
		for _, c := range q.children {
			walk(c)
		}
		if q.parent == nil {
			// The virtual root (the context node) only needs its children
			// checked.
			kept := q.valid[:0]
			for _, n := range q.valid {
				if supported(n, q) {
					kept = append(kept, n)
				}
			}
			q.valid = kept
			return
		}
		q.valid = q.valid[:0]
		for _, n := range q.cand {
			if supported(n, q) {
				q.valid = append(q.valid, n)
			}
		}
	}
	walk(root)
}

// supported reports whether node n has, for every query child of q, a valid
// candidate in the required axis relation.
func supported(n *xdm.Node, q *qnode) bool {
	for _, c := range q.children {
		if !hasMatch(n, c) {
			return false
		}
	}
	return true
}

// hasMatch checks whether any valid candidate of query node c stands in
// c.axis relation to n, by binary search over the pre-sorted candidates.
func hasMatch(n *xdm.Node, c *qnode) bool {
	cands := c.valid
	switch c.axis {
	case xdm.AxisDescendant:
		i := sort.Search(len(cands), func(i int) bool { return cands[i].Pre > n.Pre })
		return i < len(cands) && cands[i].Pre <= n.End()
	case xdm.AxisChild, xdm.AxisAttribute:
		i := sort.Search(len(cands), func(i int) bool { return cands[i].Pre > n.Pre })
		for ; i < len(cands) && cands[i].Pre <= n.End(); i++ {
			if cands[i].Parent == n {
				return true
			}
		}
		return false
	}
	return false
}

// topDown keeps only candidates whose parent query node has a valid
// candidate in the required relation, propagating root-path validity down
// to the extraction point.
func topDown(root *qnode) {
	var walk func(*qnode)
	walk = func(q *qnode) {
		if q.parent != nil {
			kept := q.valid[:0]
			for _, n := range q.valid {
				if underSome(n, q.parent.valid, q.axis) {
					kept = append(kept, n)
				}
			}
			q.valid = kept
		}
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
}

// underSome reports whether n stands in the axis relation below one of the
// pre-sorted parent candidates.
func underSome(n *xdm.Node, parents []*xdm.Node, axis xdm.Axis) bool {
	switch axis {
	case xdm.AxisChild, xdm.AxisAttribute:
		p := n.Parent
		if p == nil {
			return false
		}
		i := sort.Search(len(parents), func(i int) bool { return parents[i].Pre >= p.Pre })
		return i < len(parents) && parents[i] == p
	case xdm.AxisDescendant:
		// Ancestors have smaller pre; scan candidates with Pre < n.Pre
		// whose region covers n. Binary search for the insertion point,
		// then walk left while regions can still cover n.
		i := sort.Search(len(parents), func(i int) bool { return parents[i].Pre >= n.Pre })
		for j := i - 1; j >= 0; j-- {
			p := parents[j]
			if p == n.Doc.Root || p.Contains(n) {
				return true
			}
			// Candidates are in pre order; an earlier candidate can still
			// contain n even if this one does not (siblings vs ancestors),
			// so keep scanning until pre ranks leave any plausible region.
			if p.End() < n.Pre && p.Level <= 1 {
				break
			}
		}
		return false
	}
	return false
}

// findOutput locates the query node carrying the output annotation.
func findOutput(root *qnode) *qnode {
	var found *qnode
	var walk func(*qnode)
	walk = func(q *qnode) {
		if q.out {
			found = q
		}
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
	return found
}
