package join

import (
	"sync"

	"xqtp/internal/execctx"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// twigEval is the holistic twig-join evaluation of a single-output tree
// pattern (after TwigStack, Bruno et al. SIGMOD'02): one pre-sorted integer
// rank stream and one stack per query node, a getNext oracle that advances
// the streams in lockstep, and stack-encoded root-to-node chains. Nodes
// reach a stack only when their parent stack links them to a full root path,
// which keeps the candidate sets near the final matches for descendant
// edges; child edges are enforced afterwards in a merge-style refinement
// pass over the pre-sorted candidate lists (TwigStack is provably optimal
// only for descendant edges — the paper's observation that child steps do
// not penalize it in the in-memory model still shows in the refinement
// cost). Every structural check — stream advance, stack cleaning,
// containment, parent equality — is integer arithmetic over the tree's
// columns; nodes materialize once, from the surviving output ranks.
//
// The streams come pre-resolved from the Prepared pattern; stacks and
// candidate lists live in a pooled arena, released after the result is
// copied out.
//
// The execution context is polled every 512 stream advances inside
// runTwigStack (its per-iteration work — getNext plus stack maintenance —
// is the twig join's unit of progress). A stopped run skips refinement and
// materialization and returns nil; the arena is released through the same
// path as a completed run, so cancellation leaves the pool clean.
func twigEval(p *Prepared, ec *execctx.Ctx, ctx *xdm.Node) []*xdm.Node {
	arena := getTwigBufs()
	q := buildQuery(p, ctx, arena)
	cols := p.cols
	var out []*xdm.Node
	if runTwigStack(q, cols, ec) {
		refine(q, cols)
		// Select the extraction-point candidates that sit on a refined root
		// path (top-down pass).
		topDown(q, cols)
		if ep := findOutput(q); ep != nil {
			out = p.materialize(ep.valid)
		}
	}
	arena.release(q)
	return out
}

// qnode is one query node of the twig.
type qnode struct {
	axis     xdm.Axis // edge from the parent (child/descendant/attribute)
	out      bool
	parent   *qnode
	children []*qnode

	stream []int32 // region-restricted pre-sorted rank stream
	pos    int     // stream cursor
	stack  []int32 // pooled

	cand  []int32 // ranks ever pushed (root-path connected), pre-sorted; pooled
	valid []int32 // candidates surviving refinement and the top-down pass; pooled
}

// twigBufs recycles the stacks and candidate lists of one twig evaluation.
// get hands out a recycled buffer (or nil, which append grows); release
// collects the possibly grown buffers back off the query tree.
type twigBufs struct {
	bufs [][]int32
	next int
}

var twigBufsPool = sync.Pool{New: func() any { return new(twigBufs) }}

func getTwigBufs() *twigBufs { return twigBufsPool.Get().(*twigBufs) }

func (a *twigBufs) get() []int32 {
	if a.next < len(a.bufs) {
		b := a.bufs[a.next]
		a.next++
		return b[:0]
	}
	return nil
}

func (a *twigBufs) release(root *qnode) {
	a.bufs = a.bufs[:0]
	var walk func(*qnode)
	walk = func(q *qnode) {
		a.bufs = append(a.bufs, q.stack[:0], q.cand[:0], q.valid[:0])
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
	a.next = 0
	twigBufsPool.Put(a)
}

// buildQuery turns the pattern into a query tree with region-restricted
// streams. The virtual root is the context node itself.
func buildQuery(p *Prepared, ctx *xdm.Node, arena *twigBufs) *qnode {
	ctxPre, ctxEnd := int32(ctx.Pre), int32(ctx.End())
	root := &qnode{}
	root.cand = append(arena.get(), ctxPre)
	root.valid = append(arena.get(), ctxPre)
	root.stack = append(arena.get(), ctxPre)
	var build func(parent *qnode, chain []cstep)
	build = func(parent *qnode, chain []cstep) {
		for i := range chain {
			s := &chain[i]
			q := &qnode{axis: s.axis, out: s.out, parent: parent}
			q.stream = xmlstore.RegionRanks(s.stream, ctxPre, ctxEnd)
			q.stack = arena.get()
			q.cand = arena.get()
			q.valid = arena.get()
			parent.children = append(parent.children, q)
			for _, pr := range s.preds {
				build(q, pr)
			}
			parent = q
		}
	}
	build(root, p.spine)
	return root
}

func (q *qnode) exhausted() bool { return q.pos >= len(q.stream) }
func (q *qnode) isLeaf() bool    { return len(q.children) == 0 }

// nextBegin returns the pre rank of the head of q's stream (infinity when
// exhausted).
func (q *qnode) nextBegin() int32 {
	if q.exhausted() {
		return int32(^uint32(0) >> 1)
	}
	return q.stream[q.pos]
}

// runTwigStack advances all streams in document order, pushing a rank onto
// its stack only when its parent's stack holds an ancestor (so every pushed
// rank lies on a root-connected chain). Pushed ranks are the candidate sets
// the refinement pass works from. Returns false when the execution context
// stopped the scan before the streams were exhausted.
func runTwigStack(root *qnode, cols *xdm.Cols, ec *execctx.Ctx) bool {
	tick := 0
	for {
		q := getNext(root)
		if q == nil {
			return true
		}
		tick++
		if tick&511 == 0 && ec.Stopped() {
			return false
		}
		n := q.stream[q.pos]
		q.pos++
		// Clean ancestor stacks of entries that end before n.
		cleanStacks(root, n, cols)
		if q.parent.topContains(n, cols) {
			q.stack = append(q.stack, n)
			q.cand = append(q.cand, n)
			if q.isLeaf() {
				// Leaves never gain children; keep the stack shallow.
				q.stack = q.stack[:len(q.stack)-1]
			}
		}
	}
}

// getNext returns the descendant-or-self query node whose stream head has
// the minimal pre rank and can still contribute (the simplified getNext
// oracle: streams are advanced globally in document order, which preserves
// the stack invariants that TwigStack relies on).
func getNext(root *qnode) *qnode {
	var best *qnode
	var walk func(*qnode)
	walk = func(q *qnode) {
		if q.parent != nil && !q.exhausted() {
			if best == nil || q.nextBegin() < best.nextBegin() {
				best = q
			}
		}
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
	return best
}

// cleanStacks pops entries whose region ends before rank n starts: they can
// never be ancestors of n or of anything after n. (An entry whose region
// still covers n — including the virtual root — ends at or after it.)
func cleanStacks(root *qnode, n int32, cols *xdm.Cols) {
	var walk func(*qnode)
	walk = func(q *qnode) {
		for len(q.stack) > 0 {
			top := q.stack[len(q.stack)-1]
			if cols.End(top) >= n {
				break
			}
			q.stack = q.stack[:len(q.stack)-1]
		}
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
}

// topContains reports whether some entry of q's stack is an ancestor of n.
// Stack entries form a nested chain; the top can be a rank equal to n
// (streams of different query nodes may share tags), so the scan walks down
// until a containing entry is found. Respecting the edge axis is left to
// refinement for child edges.
func (q *qnode) topContains(n int32, cols *xdm.Cols) bool {
	for i := len(q.stack) - 1; i >= 0; i-- {
		if cols.Contains(q.stack[i], n) {
			return true
		}
	}
	return false
}

// refine keeps, bottom-up, only the candidates that have a matching
// candidate for every query child under the right axis — a merge over the
// pre-sorted candidate lists.
func refine(root *qnode, cols *xdm.Cols) {
	var walk func(*qnode)
	walk = func(q *qnode) {
		for _, c := range q.children {
			walk(c)
		}
		if q.parent == nil {
			// The virtual root (the context node) only needs its children
			// checked.
			kept := q.valid[:0]
			for _, n := range q.valid {
				if supported(n, q, cols) {
					kept = append(kept, n)
				}
			}
			q.valid = kept
			return
		}
		q.valid = q.valid[:0]
		for _, n := range q.cand {
			if supported(n, q, cols) {
				q.valid = append(q.valid, n)
			}
		}
	}
	walk(root)
}

// supported reports whether rank n has, for every query child of q, a valid
// candidate in the required axis relation.
func supported(n int32, q *qnode, cols *xdm.Cols) bool {
	for _, c := range q.children {
		if !hasMatch(n, c, cols) {
			return false
		}
	}
	return true
}

// hasMatch checks whether any valid candidate of query node c stands in
// c.axis relation to n, by binary search over the pre-sorted candidates.
func hasMatch(n int32, c *qnode, cols *xdm.Cols) bool {
	cands := c.valid
	switch c.axis {
	case xdm.AxisDescendant:
		i := searchGE(cands, n+1)
		return i < len(cands) && cands[i] <= cols.End(n)
	case xdm.AxisChild, xdm.AxisAttribute:
		end := cols.End(n)
		for i := searchGE(cands, n+1); i < len(cands) && cands[i] <= end; i++ {
			if cols.Parent[cands[i]] == n {
				return true
			}
		}
		return false
	}
	return false
}

// topDown keeps only candidates whose parent query node has a valid
// candidate in the required relation, propagating root-path validity down
// to the extraction point.
func topDown(root *qnode, cols *xdm.Cols) {
	var walk func(*qnode)
	walk = func(q *qnode) {
		if q.parent != nil {
			kept := q.valid[:0]
			for _, n := range q.valid {
				if underSome(n, q.parent.valid, q.axis, cols) {
					kept = append(kept, n)
				}
			}
			q.valid = kept
		}
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
}

// underSome reports whether rank n stands in the axis relation below one of
// the pre-sorted parent candidates.
func underSome(n int32, parents []int32, axis xdm.Axis, cols *xdm.Cols) bool {
	switch axis {
	case xdm.AxisChild, xdm.AxisAttribute:
		p := cols.Parent[n]
		if p < 0 {
			return false
		}
		i := searchGE(parents, p)
		return i < len(parents) && parents[i] == p
	case xdm.AxisDescendant:
		// Ancestors have smaller pre; scan candidates with pre < n whose
		// region covers n. Binary search for the insertion point, then walk
		// left while regions can still cover n.
		i := searchGE(parents, n)
		for j := i - 1; j >= 0; j-- {
			p := parents[j]
			if cols.Contains(p, n) {
				return true
			}
			// Candidates are in pre order; an earlier candidate can still
			// contain n even if this one does not (siblings vs ancestors),
			// so keep scanning until pre ranks leave any plausible region.
			if cols.End(p) < n && cols.Level[p] <= 1 {
				break
			}
		}
		return false
	}
	return false
}

// findOutput locates the query node carrying the output annotation.
func findOutput(root *qnode) *qnode {
	var found *qnode
	var walk func(*qnode)
	walk = func(q *qnode) {
		if q.out {
			found = q
		}
		for _, c := range q.children {
			walk(c)
		}
	}
	walk(root)
	return found
}
