package join

import (
	"math/rand"
	"slices"
	"testing"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// The minimization differential suite pins pattern.Minimize to semantic
// equivalence: on every document and context, the minimized pattern must
// return exactly the ranks of the original under every kernel, with the
// nested loop on the ORIGINAL pattern as the oracle — so a minimization bug
// cannot hide behind a matching bug in a set-at-a-time kernel.

// countSteps totals the steps of a chain, spine and predicates alike.
func countSteps(s *pattern.Step) int {
	n := 0
	for c := s; c != nil; c = c.Next {
		n++
		for _, p := range c.Preds {
			n += countSteps(p)
		}
	}
	return n
}

// checkMinimized verifies pattern.Minimize's contract for one (doc, ctx,
// pattern) triple: result equivalence under every applicable kernel,
// idempotence, never-growing size, and preserved output fields.
func checkMinimized(t *testing.T, label string, ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) {
	t.Helper()
	min := pattern.Minimize(pat)

	if got, want := countSteps(min.Root), countSteps(pat.Root); got > want {
		t.Fatalf("%s: minimization grew %s (%d steps) to %s (%d steps)",
			label, pat, want, min, got)
	}
	if !slices.Equal(min.OutputFields(), pat.OutputFields()) {
		t.Fatalf("%s: minimization changed output fields %v -> %v (pattern %s -> %s)",
			label, pat.OutputFields(), min.OutputFields(), pat, min)
	}
	if again := pattern.Minimize(min); again != min {
		t.Fatalf("%s: minimization not idempotent: %s -> %s -> %s", label, pat, min, again)
	}

	want := nlReference(t, ix, ctx, pat)
	algs := []Algorithm{NestedLoop, Staircase, Twig, Auto}
	if streamSupported(min) {
		algs = append(algs, Streaming)
	}
	for _, alg := range algs {
		p, err := Prepare(alg, ix, min)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, alg, err)
		}
		got := rankSeq(t, p.Eval(ctx))
		slices.Sort(got)
		got = slices.Compact(got)
		if !slices.Equal(got, want) {
			t.Errorf("%s/%s from pre=%d: minimized %s returns %v, original %s returns %v",
				label, alg, ctx.Pre, min, got, pat, want)
		}
	}
}

// redundantPatterns are hand-built patterns exercising each minimization
// rule: duplicate branches, child/descendant subsumption, spine-continuation
// subsumption, vacuous self::node() steps, and near-misses that must NOT be
// minimized (distinct names, descendant not implied by child, output-carrying
// branches).
func redundantPatterns() []*pattern.Pattern {
	mk := func(steps ...*pattern.Step) *pattern.Pattern { return chain("dot", steps...) }
	withPreds := func(p *pattern.Pattern, preds ...*pattern.Step) *pattern.Pattern {
		p.Root.Preds = preds
		return p
	}
	selfNode := func() *pattern.Step { return pattern.NewStep(xdm.AxisSelf, xdm.AnyNodeTest()) }
	out := []*pattern.Pattern{
		// Duplicate branch: a[b][b] == a[b].
		withPreds(mk(st(xdm.AxisDescendant, "a")),
			st(xdm.AxisChild, "b"), st(xdm.AxisChild, "b")),
		// Child implies descendant: a[.//b][b] == a[b].
		withPreds(mk(st(xdm.AxisDescendant, "a")),
			st(xdm.AxisDescendant, "b"), st(xdm.AxisChild, "b")),
		// Name implies star: a[*][b] == a[b] is WRONG (star also matches c),
		// but a[*] with sibling branch b may drop the star: a[b][*] == a[b].
		withPreds(mk(st(xdm.AxisDescendant, "a")),
			st(xdm.AxisChild, "b"),
			pattern.NewStep(xdm.AxisChild, xdm.StarTest())),
		// Spine continuation implies the branch: a[b]/b == a/b ranks-wise
		// only from the b child — NOT an equivalence on bindings of a, but
		// the branch b is implied by the spine child b, so a[b]/b == a/b.
		withPreds(mk(st(xdm.AxisDescendant, "a"), st(xdm.AxisChild, "b")),
			st(xdm.AxisChild, "b")),
		// Descendant branch implied through a child path: a[.//c][b/c] keeps
		// both (b/c does not imply an arbitrary .//c? it does: a/b/c is a
		// downward path to c) — a[.//c][b[c]] == a[b[c]].
		withPreds(mk(st(xdm.AxisDescendant, "a")),
			st(xdm.AxisDescendant, "c"),
			func() *pattern.Step {
				b := st(xdm.AxisChild, "b")
				b.Preds = []*pattern.Step{st(xdm.AxisChild, "c")}
				return b
			}()),
		// Nested duplicate: a[b[c]][b[c]] == a[b[c]].
		withPreds(mk(st(xdm.AxisDescendant, "a")),
			func() *pattern.Step {
				b := st(xdm.AxisChild, "b")
				b.Preds = []*pattern.Step{st(xdm.AxisChild, "c")}
				return b
			}(),
			func() *pattern.Step {
				b := st(xdm.AxisChild, "b")
				b.Preds = []*pattern.Step{st(xdm.AxisChild, "c")}
				return b
			}()),
		// Attribute branch duplicate: b[@x][@x] == b[@x].
		withPreds(mk(st(xdm.AxisDescendant, "b")),
			pattern.NewStep(xdm.AxisAttribute, xdm.NameTest("x")),
			pattern.NewStep(xdm.AxisAttribute, xdm.NameTest("x"))),
		// Vacuous self::node() mid-spine: a/self::node()/b == a/b.
		mk(st(xdm.AxisDescendant, "a"), selfNode(), st(xdm.AxisChild, "b")),
		// self::node() carrying a predicate folds it into the previous step:
		// a/self::node()[b]/c == a[b]/c.
		mk(st(xdm.AxisDescendant, "a"),
			func() *pattern.Step {
				s := selfNode()
				s.Preds = []*pattern.Step{st(xdm.AxisChild, "b")}
				return s
			}(),
			st(xdm.AxisChild, "c")),

		// Near-misses that must survive minimization unchanged:
		// distinct names,
		withPreds(mk(st(xdm.AxisDescendant, "a")),
			st(xdm.AxisChild, "b"), st(xdm.AxisChild, "c")),
		// child NOT implied by descendant (descendant is the general one),
		withPreds(mk(st(xdm.AxisDescendant, "a")), st(xdm.AxisDescendant, "b")),
		// the deeper branch is the stronger one and must be the survivor.
		withPreds(mk(st(xdm.AxisDescendant, "a")),
			func() *pattern.Step {
				b := st(xdm.AxisChild, "b")
				b.Preds = []*pattern.Step{st(xdm.AxisChild, "c")}
				return b
			}(),
			st(xdm.AxisChild, "b")),
	}
	return out
}

// TestMinimizeDifferentialCorpus runs every redundant pattern and every
// corpus pattern over the corpus documents, from the document node and from
// every element context.
func TestMinimizeDifferentialCorpus(t *testing.T) {
	pats := append(redundantPatterns(), corpusPatterns()...)
	for di, doc := range corpusDocs {
		ix := mustIndex(t, doc)
		for pi, pat := range pats {
			label := "doc" + string(rune('0'+di)) + "/min" + string(rune('0'+pi))
			checkMinimized(t, label, ix, ix.Tree.Root, pat.Clone())
			for _, n := range ix.Tree.Nodes {
				if n.Kind == xdm.ElementNode {
					checkMinimized(t, label, ix, n, pat.Clone())
				}
			}
		}
	}
}

// addRedundancy grafts a random redundant branch onto the pattern: a clone
// of an existing predicate branch, or a descendant-relaxed copy of the
// spine continuation. The result is semantically equivalent by construction,
// so minimization has real work to do and the differential check is tight.
func addRedundancy(rng *rand.Rand, pat *pattern.Pattern) *pattern.Pattern {
	out := pat.Clone()
	for s := out.Root; s != nil; s = s.Next {
		if len(s.Preds) > 0 && rng.Intn(2) == 0 {
			dup := s.Preds[rng.Intn(len(s.Preds))].Clone()
			s.Preds = append(s.Preds, dup)
		}
		if s.Next != nil && s.Next.Out == "" && rng.Intn(3) == 0 &&
			(s.Next.Axis == xdm.AxisChild || s.Next.Axis == xdm.AxisDescendant) {
			relaxed := pattern.NewStep(xdm.AxisDescendant, s.Next.Test)
			s.Preds = append(s.Preds, relaxed)
		}
	}
	return out
}

// TestMinimizeDifferentialRandom fuzzes minimization over random trees and
// random patterns augmented with random redundancy.
func TestMinimizeDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng, 3+rng.Intn(80))
		ix := xmlstore.BuildIndex(tr)
		pat := addRedundancy(rng, randomPattern(rng))
		ctx := tr.Nodes[rng.Intn(len(tr.Nodes))]
		if ctx.Kind != xdm.ElementNode && ctx.Kind != xdm.DocumentNode {
			ctx = tr.Root
		}
		checkMinimized(t, "random", ix, ctx, pat)
	}
}

// FuzzMinimize drives the same differential check from fuzzer-chosen seeds:
// each input seeds the tree, the pattern and the redundancy independently.
func FuzzMinimize(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3))
	f.Add(int64(7), int64(11), int64(13))
	f.Add(int64(42), int64(42), int64(42))
	f.Fuzz(func(t *testing.T, treeSeed, patSeed, augSeed int64) {
		tr := randomTree(rand.New(rand.NewSource(treeSeed)), 3+int(uint64(treeSeed)%60))
		ix := xmlstore.BuildIndex(tr)
		pat := addRedundancy(rand.New(rand.NewSource(augSeed)),
			randomPattern(rand.New(rand.NewSource(patSeed))))
		checkMinimized(t, "fuzz", ix, tr.Root, pat)
	})
}
