package join

import (
	"sort"

	"xqtp/internal/execctx"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Prepared is a tree pattern compiled against one document's index: the
// pattern is validated once, algorithm applicability is decided once, and
// every step's node test is resolved to its pre-sorted integer rank stream
// and its columnar test (interned symbol + principal kind) once — the
// compile-once half of the serving path. After that, Eval per context node
// does no string hashing and no per-run setup, and the set-at-a-time kernels
// run entirely on int32 ranks against the tree's columns; nodes materialize
// only in the returned bindings.
//
// A Prepared is immutable and safe for concurrent Eval/EvalFirst calls from
// many goroutines (the evaluation scratch comes from internal pools).
type Prepared struct {
	alg Algorithm
	ix  *xmlstore.Index
	pat *pattern.Pattern

	fields    []string // output fields, root-to-leaf (cached: OutputFields walks)
	single    bool     // single output annotation at the extraction point
	scOK      bool     // staircase supports every axis
	twigOK    bool     // twig supports every edge/test
	streamOK  bool     // streaming automaton supports the spine
	childOnly bool     // spine has child/attribute/self steps only
	empty     bool     // some required step's stream is empty document-wide

	cols    *xdm.Cols                 // the document's region-encoding columns
	spine   []cstep                   // compiled steps, spine order
	streams map[*pattern.Step][]int32 // per-step streams for the cost model
}

// cstep is one compiled pattern step: the axis, the columnar node test, the
// resolved rank stream, and the compiled predicate chains. The spine and
// each predicate chain are flat slices, so the kernels walk plain arrays —
// no map lookups and no step-pointer chasing in the hot loops.
type cstep struct {
	axis   xdm.Axis
	test   rankTest
	stream []int32
	out    bool
	preds  [][]cstep
}

// compileChain compiles a step chain (the spine or a predicate branch).
// Each step's predicate branches are ordered smallest total stream first:
// predicates are conjunctive existential checks (patterns cannot carry
// outputs inside predicates), so their order is free, and checking the
// scarcest branch first fail-fasts both the staircase semi-joins and the
// twig stack's child-support probes. The pattern itself is never mutated —
// only the compiled form is reordered.
func compileChain(ix *xmlstore.Index, s *pattern.Step) []cstep {
	var out []cstep
	for c := s; c != nil; c = c.Next {
		cs := cstep{
			axis:   c.Axis,
			test:   compileRankTest(ix, c.Axis, c.Test),
			stream: ix.RanksFor(c.Axis, c.Test),
			out:    c.Out != "",
		}
		for _, pr := range c.Preds {
			cs.preds = append(cs.preds, compileChain(ix, pr))
		}
		if len(cs.preds) > 1 {
			sort.SliceStable(cs.preds, func(i, j int) bool {
				return chainStream(cs.preds[i]) < chainStream(cs.preds[j])
			})
		}
		out = append(out, cs)
	}
	return out
}

// chainStream totals the stream lengths of a compiled chain (branch cost
// proxy for the smallest-first ordering).
func chainStream(chain []cstep) int {
	n := 0
	for i := range chain {
		n += len(chain[i].stream)
		for _, pr := range chain[i].preds {
			n += chainStream(pr)
		}
	}
	return n
}

// rankTest is a node test compiled against one document: the name resolved
// to its interned symbol, the principal node kind fixed by the axis. A match
// is at most two integer compares against the columns.
type rankTest struct {
	kind      xdm.TestKind
	principal uint8 // element, or attribute on the attribute axis
	sym       int32 // resolved name; int32(xdm.NoSym) when absent from the doc
}

// matches reports whether the node at pre rank r satisfies the test.
func (t rankTest) matches(cols *xdm.Cols, r int32) bool {
	switch t.kind {
	case xdm.TestName:
		return cols.Sym[r] == t.sym && cols.Kind[r] == t.principal
	case xdm.TestStar:
		return cols.Kind[r] == t.principal
	case xdm.TestNode:
		return true
	case xdm.TestText:
		return cols.Kind[r] == uint8(xdm.TextNode)
	}
	return false
}

// compileRankTest resolves a step's test against the document's symbols.
func compileRankTest(ix *xmlstore.Index, axis xdm.Axis, test xdm.NodeTest) rankTest {
	rt := rankTest{kind: test.Kind, principal: uint8(xdm.ElementNode), sym: int32(xdm.NoSym)}
	if axis == xdm.AxisAttribute {
		rt.principal = uint8(xdm.AttributeNode)
	}
	if test.Kind == xdm.TestName {
		rt.sym = int32(ix.ResolveName(test.Name))
	}
	return rt
}

// Prepare resolves pat against ix for evaluation under alg. The index may be
// nil only for algorithms that never touch streams (pure nested-loop
// evaluation).
func Prepare(alg Algorithm, ix *xmlstore.Index, pat *pattern.Pattern) (*Prepared, error) {
	if err := checkPattern(pat); err != nil {
		return nil, err
	}
	// A deferred snapshot member loads and validates here, on its first
	// preparation — the error-returning boundary every kernel path passes
	// through, so a corrupt member turns into a query error instead of a
	// fault inside a join loop.
	if ix != nil {
		if err := ix.Ensure(); err != nil {
			return nil, err
		}
	}
	p := &Prepared{alg: alg, ix: ix, pat: pat}
	p.fields = pat.OutputFields()
	_, p.single = pat.SingleOutput()
	p.scOK = scSupported(pat.Root)
	p.twigOK = twigSupported(pat.Root)
	p.streamOK = streamSupported(pat)
	p.childOnly = spineChildOnly(pat.Root)
	if ix != nil && alg != NestedLoop {
		p.cols = ix.Tree.Cols
		p.spine = compileChain(ix, pat.Root)
		// The cost model walks the pattern's step pointers; give it a
		// side table (cold path: consulted once per Auto evaluation).
		p.streams = make(map[*pattern.Step][]int32, pat.Size())
		var walk func(*pattern.Step)
		walk = func(s *pattern.Step) {
			for c := s; c != nil; c = c.Next {
				p.streams[c] = ix.RanksFor(c.Axis, c.Test)
				for _, pr := range c.Preds {
					walk(pr)
				}
			}
		}
		walk(pat.Root)
		// The conjunctive emptiness proof: one required step with an empty
		// document-wide stream means no binding can exist anywhere in this
		// document, so the kernels never need to run (generalizes the
		// corpus layer's name-presence skip to counts).
		p.empty = provablyEmpty(pat.Root, p.stream)
	}
	return p, nil
}

// Pattern returns the prepared pattern.
func (p *Prepared) Pattern() *pattern.Pattern { return p.pat }

// OutputFields returns the pattern's output fields, root-to-leaf, resolved
// once at preparation time.
func (p *Prepared) OutputFields() []string { return p.fields }

// stream returns the resolved rank stream of a step (cost-model side table;
// the kernels read streams off the compiled spine instead).
func (p *Prepared) stream(s *pattern.Step) []int32 { return p.streams[s] }

// materialize crosses the output boundary: rank results become node
// bindings. This is the only place the set-at-a-time kernels touch nodes.
func (p *Prepared) materialize(ranks []int32) []*xdm.Node {
	return p.ix.Tree.Materialize(ranks)
}

// Eval returns every binding of the pattern from context node ctx.
// Single-output patterns run on the selected algorithm; patterns outside an
// algorithm's supported fragment fall back to nested-loop evaluation, which
// is fully general.
func (p *Prepared) Eval(ctx *xdm.Node) []Binding { return p.EvalCtx(nil, ctx) }

// EvalCtx is Eval under an execution context: the kernels poll ec at
// bounded intervals and bail out once it stops. A stopped evaluation
// returns a partial (possibly empty) binding set — callers that thread a
// non-nil ec must check ec.Err() afterwards and discard the result on stop
// (the physical operator layer does exactly that).
func (p *Prepared) EvalCtx(ec *execctx.Ctx, ctx *xdm.Node) []Binding {
	alg := p.alg
	if p.empty && alg != NestedLoop {
		// Provably empty document-wide. Plain NestedLoop stays fully
		// general (it is the differential oracle); every other algorithm —
		// Auto included — takes the skip.
		return nil
	}
	if alg == Auto {
		alg = p.choose(ctx)
	}
	if p.single {
		switch alg {
		case Staircase:
			if p.scOK {
				return wrapNodes(scEval(p, ec, ctx))
			}
		case Twig:
			if p.twigOK {
				return wrapNodes(twigEval(p, ec, ctx))
			}
		case Streaming:
			if p.streamOK {
				return wrapNodes(streamEval(p, ec, ctx))
			}
		}
	}
	return nlEval(ec, ctx, p.pat)
}

// EvalFirst returns the first binding in document order, allowing the
// nested-loop algorithm its cursor-style early exit (§5.3). The
// set-at-a-time algorithms evaluate fully and take the head — that cost
// difference is precisely the paper's §5.3 observation. The early exit is
// only taken for child/attribute-only spines, where the nested loop's
// lexical first binding is also the document-order first.
func (p *Prepared) EvalFirst(ctx *xdm.Node) (Binding, bool) { return p.EvalFirstCtx(nil, ctx) }

// EvalFirstCtx is EvalFirst under an execution context, with the same
// partial-result contract as EvalCtx.
func (p *Prepared) EvalFirstCtx(ec *execctx.Ctx, ctx *xdm.Node) (Binding, bool) {
	alg := p.alg
	if p.empty && alg != NestedLoop {
		return nil, false
	}
	if alg == Auto && p.childOnly {
		// First-match over a non-nesting spine: the §5.3 heuristic —
		// always take the nested loop's cursor-style early exit.
		alg = NestedLoop
	}
	if alg == NestedLoop && p.childOnly {
		return nlFirst(ec, ctx, p.pat)
	}
	all := p.EvalCtx(ec, ctx)
	if len(all) == 0 {
		return nil, false
	}
	return all[0], true
}

// choose runs the cost model over the pre-resolved streams.
func (p *Prepared) choose(ctx *xdm.Node) Algorithm {
	return estimate(p.ix, ctx, p.pat, p.single, p.stream).Alg
}

// Estimate runs the full cost model for ctx over the pre-resolved streams:
// the algorithm Auto would pick, the per-algorithm costs, the emptiness
// proof, and per-spine-step cardinality predictions. Requires an index
// (Prepare with alg != NestedLoop); without one it returns a NestedLoop
// estimate with no step data.
func (p *Prepared) Estimate(ctx *xdm.Node) Estimate {
	if p.streams == nil {
		return Estimate{Alg: NestedLoop, CostNL: costNL(ctx, p.pat)}
	}
	return estimate(p.ix, ctx, p.pat, p.single, p.stream)
}

// ProvablyEmpty reports whether the prepared pattern can match nowhere in
// its document (some required step's stream is empty).
func (p *Prepared) ProvablyEmpty() bool { return p.empty }
