package join

import (
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Prepared is a tree pattern compiled against one document's index: the
// pattern is validated once, algorithm applicability is decided once, and
// every step's node test is resolved to its pre-sorted tag stream once —
// the compile-once half of the serving path. After that, Eval per context
// node does no string hashing and no per-run setup.
//
// A Prepared is immutable and safe for concurrent Eval/EvalFirst calls from
// many goroutines (the evaluation scratch comes from internal pools).
type Prepared struct {
	alg Algorithm
	ix  *xmlstore.Index
	pat *pattern.Pattern

	single    bool // single output annotation at the extraction point
	scOK      bool // staircase supports every axis
	twigOK    bool // twig supports every edge/test
	streamOK  bool // streaming automaton supports the spine
	childOnly bool // spine has child/attribute/self steps only

	streams map[*pattern.Step][]*xdm.Node // per-step resolved tag streams
}

// Prepare resolves pat against ix for evaluation under alg. The index may be
// nil only for algorithms that never touch streams (pure nested-loop
// evaluation).
func Prepare(alg Algorithm, ix *xmlstore.Index, pat *pattern.Pattern) (*Prepared, error) {
	if err := checkPattern(pat); err != nil {
		return nil, err
	}
	p := &Prepared{alg: alg, ix: ix, pat: pat}
	_, p.single = pat.SingleOutput()
	p.scOK = scSupported(pat.Root)
	p.twigOK = twigSupported(pat.Root)
	p.streamOK = streamSupported(pat)
	p.childOnly = spineChildOnly(pat.Root)
	if ix != nil && (alg == Staircase || alg == Twig || alg == Auto) {
		p.streams = make(map[*pattern.Step][]*xdm.Node, pat.Size())
		var walk func(*pattern.Step)
		walk = func(s *pattern.Step) {
			for c := s; c != nil; c = c.Next {
				p.streams[c] = ix.StreamFor(c.Axis, c.Test)
				for _, pr := range c.Preds {
					walk(pr)
				}
			}
		}
		walk(pat.Root)
	}
	return p, nil
}

// Pattern returns the prepared pattern.
func (p *Prepared) Pattern() *pattern.Pattern { return p.pat }

// stream returns the resolved tag stream of a step (pointer-keyed lookup;
// the string hash happened once, in Prepare).
func (p *Prepared) stream(s *pattern.Step) []*xdm.Node { return p.streams[s] }

// Eval returns every binding of the pattern from context node ctx.
// Single-output patterns run on the selected algorithm; patterns outside an
// algorithm's supported fragment fall back to nested-loop evaluation, which
// is fully general.
func (p *Prepared) Eval(ctx *xdm.Node) []Binding {
	alg := p.alg
	if alg == Auto {
		alg = p.choose(ctx)
	}
	if p.single {
		switch alg {
		case Staircase:
			if p.scOK {
				return wrapNodes(scEval(p, ctx))
			}
		case Twig:
			if p.twigOK {
				return wrapNodes(twigEval(p, ctx))
			}
		case Streaming:
			if p.streamOK {
				return wrapNodes(streamEval(p, ctx))
			}
		}
	}
	return nlEval(ctx, p.pat)
}

// EvalFirst returns the first binding in document order, allowing the
// nested-loop algorithm its cursor-style early exit (§5.3). The
// set-at-a-time algorithms evaluate fully and take the head — that cost
// difference is precisely the paper's §5.3 observation. The early exit is
// only taken for child/attribute-only spines, where the nested loop's
// lexical first binding is also the document-order first.
func (p *Prepared) EvalFirst(ctx *xdm.Node) (Binding, bool) {
	alg := p.alg
	if alg == Auto && p.childOnly {
		// First-match over a non-nesting spine: the §5.3 heuristic —
		// always take the nested loop's cursor-style early exit.
		alg = NestedLoop
	}
	if alg == NestedLoop && p.childOnly {
		return nlFirst(ctx, p.pat)
	}
	all := p.Eval(ctx)
	if len(all) == 0 {
		return nil, false
	}
	return all[0], true
}

// choose runs the cost model over the pre-resolved streams.
func (p *Prepared) choose(ctx *xdm.Node) Algorithm {
	return choose(ctx, p.pat, p.single, p.stream)
}
