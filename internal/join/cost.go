package join

import (
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Auto selects the physical algorithm per TupleTreePattern invocation using
// the cost model below — the "cost based approach for evaluating XPath
// expressions" the paper's conclusion calls for, instantiated with the
// heuristics §5 derives:
//
//   - NLJoin is never best for bulk rooted paths, but wins when the context
//     is small (high selectivity) or the evaluation is first-match only;
//   - SCJoin and TwigJoin are comparable on simple paths; SCJoin's
//     per-candidate semi-joins degrade with branching, TwigJoin always
//     scans every stream once.
const Auto Algorithm = 255

// streamFn resolves a pattern step to its full-document rank stream. The
// Prepared form passes its pre-resolved table; the one-shot Choose hits the
// index directly.
type streamFn func(*pattern.Step) []int32

// Choose estimates the cost of each algorithm for evaluating pat from ctx
// and returns the cheapest. The estimates count index-stream entries and
// tree nodes touched.
func Choose(ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) Algorithm {
	_, single := pat.SingleOutput()
	return choose(ctx, pat, single, func(s *pattern.Step) []int32 {
		return ix.RanksFor(s.Axis, s.Test)
	})
}

func choose(ctx *xdm.Node, pat *pattern.Pattern, single bool, streams streamFn) Algorithm {
	nl := costNL(ctx, pat)
	sc, scOK := costSC(ctx, pat, single, streams)
	tj, tjOK := costTJ(ctx, pat, single, streams)
	best, bestCost := NestedLoop, nl
	if scOK && sc < bestCost {
		best, bestCost = Staircase, sc
	}
	if tjOK && tj < bestCost {
		best = Twig
	}
	return best
}

// costNL bounds nested-loop evaluation by the context subtree size times
// the number of existential re-walks the predicates can trigger.
func costNL(ctx *xdm.Node, pat *pattern.Pattern) float64 {
	subtree := float64(ctx.Size + 1)
	walks := 1.0
	var count func(*pattern.Step)
	count = func(s *pattern.Step) {
		for c := s; c != nil; c = c.Next {
			for _, p := range c.Preds {
				walks++
				count(p)
			}
		}
	}
	count(pat.Root)
	return subtree * walks
}

// costSC sums the spine stream scans plus a per-candidate charge for each
// predicate branch (the semi-join work that makes SCJoin degrade on
// complex twigs).
func costSC(ctx *xdm.Node, pat *pattern.Pattern, single bool, streams streamFn) (float64, bool) {
	if !single || !scSupported(pat.Root) {
		return 0, false
	}
	total := 0.0
	for s := pat.Root; s != nil; s = s.Next {
		stream := float64(streamLen(ctx, s, streams))
		total += stream
		for _, p := range s.Preds {
			// Each candidate pays a binary-searched region probe per
			// predicate step (cheap: the existential check usually decides
			// on the first probe).
			total += stream * float64(chainLen(p))
		}
	}
	return total, true
}

// costTJ sums every stream once (holistic scan) plus the refinement merge.
func costTJ(ctx *xdm.Node, pat *pattern.Pattern, single bool, streams streamFn) (float64, bool) {
	if !single || !twigSupported(pat.Root) {
		return 0, false
	}
	total := 0.0
	var walk func(*pattern.Step)
	walk = func(s *pattern.Step) {
		for c := s; c != nil; c = c.Next {
			// Each stream entry passes through the stack machinery and the
			// refinement merge (a higher per-entry constant than the
			// staircase scan, calibrated on the Table 1 workload).
			total += float64(streamLen(ctx, c, streams)) * 6
			for _, p := range c.Preds {
				walk(p)
			}
		}
	}
	walk(pat.Root)
	return total, true
}

// streamLen approximates the number of stream entries inside the context
// region (a pair of binary searches; no slice is formed).
func streamLen(ctx *xdm.Node, s *pattern.Step, streams streamFn) int {
	stream := streams(s)
	if ctx.Kind == xdm.DocumentNode {
		return len(stream)
	}
	return xmlstore.RegionCount(stream, int32(ctx.Pre), int32(ctx.End()))
}

func chainLen(s *pattern.Step) int {
	n := 0
	for c := s; c != nil; c = c.Next {
		n++
		for _, p := range c.Preds {
			n += chainLen(p)
		}
	}
	return n
}
