package join

import (
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Auto selects the physical algorithm per TupleTreePattern invocation using
// the cost model below — the "cost based approach for evaluating XPath
// expressions" the paper's conclusion calls for, instantiated with the
// heuristics §5 derives:
//
//   - NLJoin is never best for bulk rooted paths, but wins when the context
//     is small (high selectivity) or the evaluation is first-match only;
//   - SCJoin and TwigJoin are comparable on simple paths; SCJoin's
//     per-candidate semi-joins degrade with branching, TwigJoin always
//     scans every stream once.
//
// The model runs on the index's exact statistics: every step's input
// cardinality is its rank-stream count inside the context region (two binary
// searches), and per-step output estimates come from containment
// selectivity — the share of the region lying beneath the previous step's
// matches, read off the per-symbol subtree masses in xmlstore.Stats.
const Auto Algorithm = 255

// streamFn resolves a pattern step to its full-document rank stream. The
// Prepared form passes its pre-resolved table; the one-shot Choose hits the
// index directly.
type streamFn func(*pattern.Step) []int32

// StepEstimate is the model's prediction for one spine step.
type StepEstimate struct {
	Step  *pattern.Step
	Count int     // exact stream entries inside the context region
	Out   float64 // predicted candidates surviving the step and its predicates
}

// Estimate is the cost model's full decision for one (pattern, context)
// pair: the chosen algorithm, the per-algorithm cost figures it compared,
// and the per-spine-step cardinality predictions — what Explain prints as
// est=N and what the optimizer benchmark scores against actual counts.
type Estimate struct {
	Alg Algorithm
	// Empty is set when some required step's document-wide stream is empty:
	// the pattern is conjunctive, so it can have no binding anywhere in the
	// document and evaluation can be skipped outright.
	Empty bool

	CostNL, CostSC, CostTJ float64
	SCOK, TJOK             bool

	Steps []StepEstimate // spine steps, root to leaf
}

// Cardinality returns the predicted output cardinality (the last spine
// step's estimate; 0 for empty patterns).
func (e *Estimate) Cardinality() float64 {
	if e.Empty || len(e.Steps) == 0 {
		return 0
	}
	return e.Steps[len(e.Steps)-1].Out
}

// Choose estimates the cost of each algorithm for evaluating pat from ctx
// and returns the cheapest. The estimates count index-stream entries and
// tree nodes touched.
func Choose(ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) Algorithm {
	return ChooseEstimate(ix, ctx, pat).Alg
}

// ChooseEstimate runs the full cost model for pat from ctx: algorithm
// choice, per-algorithm costs, emptiness proof and per-step cardinalities.
func ChooseEstimate(ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern) Estimate {
	_, single := pat.SingleOutput()
	return estimate(ix, ctx, pat, single, func(s *pattern.Step) []int32 {
		return ix.RanksFor(s.Axis, s.Test)
	})
}

func estimate(ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern, single bool, streams streamFn) Estimate {
	e := Estimate{Empty: provablyEmpty(pat.Root, streams)}
	e.CostNL = costNL(ctx, pat)
	e.Steps = estimateSteps(ix, ctx, pat, streams)
	e.CostSC, e.SCOK = costSC(ctx, pat, single, streams, e.Steps)
	e.CostTJ, e.TJOK = costTJ(ctx, pat, single, streams)
	e.Alg = NestedLoop
	best := e.CostNL
	if e.SCOK && e.CostSC < best {
		e.Alg, best = Staircase, e.CostSC
	}
	if e.TJOK && e.CostTJ < best {
		e.Alg = Twig
	}
	return e
}

// provablyEmpty reports whether some step of the pattern can never match in
// the document: the pattern is conjunctive — every spine step and every
// predicate step must bind for any output tuple — so one required step with
// an empty document-wide stream empties the whole pattern, on any axis.
// node() tests on non-attribute axes are exempt: they can match the document
// node, which no stream carries.
func provablyEmpty(s *pattern.Step, streams streamFn) bool {
	for c := s; c != nil; c = c.Next {
		if stepRequiresStream(c) && len(streams(c)) == 0 {
			return true
		}
		for _, p := range c.Preds {
			if provablyEmpty(p, streams) {
				return true
			}
		}
	}
	return false
}

// stepRequiresStream reports whether every node the step can match appears
// in its rank stream (so an empty stream proves the step unmatchable). The
// one exception is node() off the attribute axis, which also matches the
// document node.
func stepRequiresStream(s *pattern.Step) bool {
	return s.Test.Kind != xdm.TestNode || s.Axis == xdm.AxisAttribute
}

// estimateSteps predicts the per-spine-step output cardinalities via
// containment selectivity. For each step the exact region stream count is
// the ceiling; it is scaled by the estimated fraction of the region that
// lies beneath the previous step's matches (per-symbol subtree mass over
// region size), and predicate branches multiply in a survival factor — the
// expected number of branch matches per candidate subtree, capped at 1.
func estimateSteps(ix *xmlstore.Index, ctx *xdm.Node, pat *pattern.Pattern, streams streamFn) []StepEstimate {
	var st *xmlstore.Stats
	if ix != nil {
		st = ix.Stats()
	}
	region := float64(ctx.Size + 1)
	if region < 1 {
		region = 1
	}
	out := make([]StepEstimate, 0, pat.SpineLen())
	cover := 1.0  // est. fraction of the region below the current frontier
	prev := 1.0   // previous step's estimated output
	first := true // step 0's region count is exact, not an estimate
	for s := pat.Root; s != nil; s = s.Next {
		n := streamLen(ctx, s, streams)
		est := float64(n)
		switch s.Axis {
		case xdm.AxisChild, xdm.AxisDescendant, xdm.AxisDescendantOrSelf, xdm.AxisAttribute:
			if !first {
				est *= cover
			}
		default:
			// Self, reverse and sibling axes yield at most one frontier-size
			// worth of nodes (parent is 1:1, self filters); stay bounded by
			// both the stream and the incoming frontier.
			if prev < est {
				est = prev
			}
		}
		// Predicate branches filter candidates under the containment
		// assumption: branch matches cluster beneath the step's candidates,
		// so the survival rate is the branch's bottleneck stream count over
		// the candidate count, capped at 1.
		for _, p := range s.Preds {
			est *= predSurvival(ctx, float64(n), p, streams)
		}
		out = append(out, StepEstimate{Step: s, Count: n, Out: est})
		// The next downward step must land beneath this step's surviving
		// matches: shrink the covered fraction to their total subtree share.
		if f := stepFrac(ix, s, st, est, region); f < cover {
			cover = f
		}
		prev = est
		first = false
	}
	return out
}

// stepFrac estimates the fraction of the region beneath the step's matches:
// n of the tag's occurrences are in the region, each contributing its
// document-wide average subtree size.
func stepFrac(ix *xmlstore.Index, s *pattern.Step, st *xmlstore.Stats, n, region float64) float64 {
	if n == 0 {
		return 0
	}
	avg, ok := avgSubtree(ix, s, st)
	if !ok {
		return 1
	}
	f := n * avg / region
	if f > 1 {
		return 1
	}
	return f
}

// avgSubtree returns the document-wide average subtree size (self included)
// of the step's matches, when the step is an element name test with
// statistics available.
func avgSubtree(ix *xmlstore.Index, s *pattern.Step, st *xmlstore.Stats) (float64, bool) {
	if ix == nil || st == nil || s.Test.Kind != xdm.TestName || s.Axis == xdm.AxisAttribute {
		return 0, false
	}
	sym := ix.ResolveName(s.Test.Name)
	if sym < 0 || int(sym) >= len(st.ElemCount) || st.ElemCount[sym] == 0 {
		return 0, false
	}
	return float64(st.ElemMass[sym]) / float64(st.ElemCount[sym]), true
}

// predSurvival estimates the fraction of cands candidates that satisfy
// predicate branch p, under the containment assumption: the branch's
// matches sit beneath candidates (an emailaddress occurs inside a person),
// so at most bottleneck-many candidates can have one, where the bottleneck
// is the scarcest required step anywhere in the branch.
func predSurvival(ctx *xdm.Node, cands float64, p *pattern.Step, streams streamFn) float64 {
	min := -1
	var scan func(*pattern.Step)
	scan = func(c *pattern.Step) {
		for ; c != nil; c = c.Next {
			if stepRequiresStream(c) {
				if n := streamLen(ctx, c, streams); min < 0 || n < min {
					min = n
				}
			}
			for _, q := range c.Preds {
				scan(q)
			}
		}
	}
	scan(p)
	if min == 0 {
		return 0
	}
	if min < 0 || cands <= 0 || float64(min) >= cands {
		return 1
	}
	return float64(min) / cands
}

// costNL bounds nested-loop evaluation by the context subtree size times
// the number of existential re-walks the predicates can trigger.
func costNL(ctx *xdm.Node, pat *pattern.Pattern) float64 {
	subtree := float64(ctx.Size + 1)
	walks := 1.0
	var count func(*pattern.Step)
	count = func(s *pattern.Step) {
		for c := s; c != nil; c = c.Next {
			for _, p := range c.Preds {
				walks++
				count(p)
			}
		}
	}
	count(pat.Root)
	return subtree * walks
}

// costSC sums the spine stream scans plus a per-candidate charge for each
// predicate branch — but the candidates charged are the model's estimated
// survivors reaching that step, not the raw stream, so a selective upstream
// step makes SCJoin's semi-joins cheap in the estimate exactly as it does
// in the kernel.
func costSC(ctx *xdm.Node, pat *pattern.Pattern, single bool, streams streamFn, steps []StepEstimate) (float64, bool) {
	if !single || !scSupported(pat.Root) {
		return 0, false
	}
	total := 0.0
	i := 0
	for s := pat.Root; s != nil; s = s.Next {
		stream := float64(streamLen(ctx, s, streams))
		total += stream
		// Candidates that reach the predicate check: the stream narrowed by
		// the upstream containment selectivity (never more than the stream).
		cands := stream
		if i < len(steps) && steps[i].Out < cands {
			cands = steps[i].Out
		}
		for _, p := range s.Preds {
			// Each candidate pays a binary-searched region probe per
			// predicate step (cheap: the existential check usually decides
			// on the first probe).
			total += cands * float64(chainLen(p))
		}
		i++
	}
	return total, true
}

// costTJ sums every stream once (holistic scan) plus the refinement merge.
func costTJ(ctx *xdm.Node, pat *pattern.Pattern, single bool, streams streamFn) (float64, bool) {
	if !single || !twigSupported(pat.Root) {
		return 0, false
	}
	total := 0.0
	var walk func(*pattern.Step)
	walk = func(s *pattern.Step) {
		for c := s; c != nil; c = c.Next {
			// Each stream entry passes through the stack machinery and the
			// refinement merge (a higher per-entry constant than the
			// staircase scan, calibrated on the Table 1 workload).
			total += float64(streamLen(ctx, c, streams)) * 6
			for _, p := range c.Preds {
				walk(p)
			}
		}
	}
	walk(pat.Root)
	return total, true
}

// streamLen approximates the number of stream entries inside the context
// region (a pair of binary searches; no slice is formed).
func streamLen(ctx *xdm.Node, s *pattern.Step, streams streamFn) int {
	stream := streams(s)
	if ctx.Kind == xdm.DocumentNode {
		return len(stream)
	}
	return xmlstore.RegionCount(stream, int32(ctx.Pre), int32(ctx.End()))
}

func chainLen(s *pattern.Step) int {
	n := 0
	for c := s; c != nil; c = c.Next {
		n++
		for _, p := range c.Preds {
			n += chainLen(p)
		}
	}
	return n
}
