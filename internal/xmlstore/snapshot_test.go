package xmlstore

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"xqtp/internal/xdm"
)

// indexesEqual compares two indexes node for node and stream for stream:
// the region columns, the pointer data model, and every tag stream.
func indexesEqual(t *testing.T, a, b *Index) {
	t.Helper()
	ta, tb := a.Tree, b.Tree
	// Force materialization so the pointer data model of a snapshot-loaded
	// tree is built and compared, not just its columns.
	ta.RootNode()
	tb.RootNode()
	if len(ta.Nodes) != len(tb.Nodes) {
		t.Fatalf("node count %d != %d", len(tb.Nodes), len(ta.Nodes))
	}
	for i := range ta.Nodes {
		x, y := ta.Nodes[i], tb.Nodes[i]
		if x.Kind != y.Kind || x.Name != y.Name || x.Text != y.Text ||
			x.Pre != y.Pre || x.Post != y.Post || x.Size != y.Size || x.Level != y.Level ||
			x.Sym != y.Sym {
			t.Fatalf("node %d differs: %+v vs %+v", i, x, y)
		}
		if len(x.Children) != len(y.Children) || len(x.Attrs) != len(y.Attrs) {
			t.Fatalf("node %d fan-out differs", i)
		}
		if (x.Parent == nil) != (y.Parent == nil) {
			t.Fatalf("node %d parent presence differs", i)
		}
		if x.Parent != nil && x.Parent.Pre != y.Parent.Pre {
			t.Fatalf("node %d parent differs: %d vs %d", i, x.Parent.Pre, y.Parent.Pre)
		}
	}
	ca, cb := ta.Cols, tb.Cols
	if !reflect.DeepEqual(ca.Post, cb.Post) || !reflect.DeepEqual(ca.Size, cb.Size) ||
		!reflect.DeepEqual(ca.Level, cb.Level) || !reflect.DeepEqual(ca.Parent, cb.Parent) ||
		!reflect.DeepEqual(ca.Kind, cb.Kind) || !reflect.DeepEqual(ca.Sym, cb.Sym) {
		t.Fatalf("columns differ")
	}
	if ta.Syms.Len() != tb.Syms.Len() {
		t.Fatalf("symbol count %d != %d", tb.Syms.Len(), ta.Syms.Len())
	}
	for s := xdm.Sym(0); int(s) < ta.Syms.Len(); s++ {
		if ta.Syms.Name(s) != tb.Syms.Name(s) {
			t.Fatalf("symbol %d: %q != %q", s, tb.Syms.Name(s), ta.Syms.Name(s))
		}
		ae, be := a.ElementRanksSym(s), b.ElementRanksSym(s)
		if !streamsEq(ae, be) {
			t.Fatalf("element stream for %q differs: %v vs %v", ta.Syms.Name(s), ae, be)
		}
		aa, ba := a.AttributeRanksSym(s), b.AttributeRanksSym(s)
		if !streamsEq(aa, ba) {
			t.Fatalf("attribute stream for %q differs: %v vs %v", ta.Syms.Name(s), aa, ba)
		}
	}
	if !streamsEq(a.allElems, b.allElems) || !streamsEq(a.allText, b.allText) ||
		!streamsEq(a.allNodes, b.allNodes) || !streamsEq(a.allAttrs, b.allAttrs) {
		t.Fatalf("merged streams differ")
	}
}

func streamsEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	ix, err := IngestString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ix); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, ix, ix2)
	if SerializeString(ix2.Tree.RootNode()) != SerializeString(ix.Tree.RootNode()) {
		t.Errorf("serialization differs:\n  %s\n  %s",
			SerializeString(ix.Tree.RootNode()), SerializeString(ix2.Tree.RootNode()))
	}
}

// snapshotFromIndexes assembles a CorpusSnapshot over members the way the
// collection layer does: the name table is the union of all member symbol
// tables, sorted, with NoSym cells for absent names.
func snapshotFromIndexes(uris []string, ixs []*Index) *CorpusSnapshot {
	set := map[string]bool{}
	for _, ix := range ixs {
		for _, n := range ix.Tree.Syms.Names() {
			set[n] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	cells := make([]xdm.Sym, len(names)*len(ixs))
	for i, name := range names {
		for m, ix := range ixs {
			s, ok := ix.Tree.Syms.Lookup(name)
			if !ok {
				s = xdm.NoSym
			}
			cells[i*len(ixs)+m] = s
		}
	}
	return &CorpusSnapshot{URIs: uris, Indexes: ixs, Names: names, NameSyms: cells}
}

func TestCorpusSnapshotRoundTrip(t *testing.T) {
	docs := []string{
		`<a id="1"><b>one</b><b>two</b></a>`,
		`<catalog><item price="3">x</item><other/></catalog>`,
		`<a><c k="v"/></a>`,
	}
	uris := []string{"one.xml", "two.xml", "three.xml"}
	ixs := make([]*Index, len(docs))
	for i, d := range docs {
		ix, err := IngestString(d)
		if err != nil {
			t.Fatal(err)
		}
		ixs[i] = ix
	}
	s := snapshotFromIndexes(uris, ixs)
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenCorpus(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2.URIs, s.URIs) {
		t.Fatalf("URIs differ: %v vs %v", s2.URIs, s.URIs)
	}
	if !reflect.DeepEqual(s2.Names, s.Names) {
		t.Fatalf("names differ: %v vs %v", s2.Names, s.Names)
	}
	if !reflect.DeepEqual(s2.NameSyms, s.NameSyms) {
		t.Fatalf("name table cells differ: %v vs %v", s2.NameSyms, s.NameSyms)
	}
	for m := range ixs {
		indexesEqual(t, ixs[m], s2.Indexes[m])
	}
}

func TestSnapshotEmptyCorpus(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, &CorpusSnapshot{}); err != nil {
		t.Fatal(err)
	}
	s, err := OpenCorpus(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Indexes) != 0 || len(s.URIs) != 0 || len(s.Names) != 0 {
		t.Fatalf("empty corpus round-tripped non-empty: %+v", s)
	}
}

func TestSnapshotErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XQ"),
		[]byte("NOPE\x01\x00\x00\x00"),
		[]byte("XQTS\x01\x00\x00\x00"), // old version
		[]byte("XQTS\x63\x00\x00\x00"), // future version
		[]byte("XQTS\x02\x00\x00\x00"), // truncated header
		// Header claiming 4 billion members with no member data: must error,
		// not attempt a giant allocation.
		append([]byte("XQTS\x02\x00\x00\x00"), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0),
	}
	for _, c := range cases {
		if _, err := OpenCorpus(c); err == nil {
			t.Errorf("OpenCorpus(%q) should fail", c)
		}
	}
}

// Corrupting any single byte of a valid snapshot must produce either an
// error or a successful load — never a panic. (Some flips are benign: a bit
// in a text character, say.)
func TestSnapshotCorruption(t *testing.T) {
	ix, err := IngestString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := range good {
		for _, flip := range []byte{0xff, 0x01, 0x80} {
			data := bytes.Clone(good)
			data[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("OpenCorpus panicked with byte %d ^= %#x: %v", i, flip, r)
					}
				}()
				s, err := OpenCorpus(data)
				if err != nil {
					return
				}
				// A load that succeeds must also materialize without
				// panicking — load-time validation has to be strong enough
				// to cover the deferred pointer-model build.
				for _, ix2 := range s.Indexes {
					ix2.Tree.RootNode()
				}
			}()
		}
	}
	// Every truncation must error (a prefix is never a valid snapshot here).
	for n := 0; n < len(good); n++ {
		if _, err := OpenCorpus(good[:n:n]); err == nil {
			t.Errorf("truncation to %d bytes should fail", n)
		}
	}
}

// Property: snapshot round trips preserve random documents exactly,
// including their index streams.
func TestSnapshotProperty(t *testing.T) {
	tags := []string{"a", "b", "c-long-name", "d"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := xdm.NewElement("root")
		nodes := []*xdm.Node{root}
		for i := 0; i < 5+rng.Intn(80); i++ {
			parent := nodes[rng.Intn(len(nodes))]
			el := xdm.NewElement(tags[rng.Intn(len(tags))])
			if rng.Intn(3) == 0 {
				el.SetAttr("k", strings.Repeat("v", rng.Intn(5)))
			}
			if rng.Intn(4) == 0 {
				el.AppendChild(xdm.NewText("text & <stuff>"))
			}
			parent.AppendChild(el)
			nodes = append(nodes, el)
		}
		tr := xdm.Finalize(root)
		ix := BuildIndex(tr)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, ix); err != nil {
			return false
		}
		ix2, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		return SerializeString(ix2.Tree.RootNode()) == SerializeString(tr.Root) &&
			ix2.Tree.CountNodes() == tr.CountNodes() &&
			streamsEq(ix.allNodes, ix2.allNodes) &&
			streamsEq(ix.allElems, ix2.allElems)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
