package xmlstore

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xqtp/internal/xdm"
)

func TestSnapshotRoundTrip(t *testing.T) {
	tr, err := ParseString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.CountNodes() != tr.CountNodes() {
		t.Fatalf("node count %d != %d", tr2.CountNodes(), tr.CountNodes())
	}
	if SerializeString(tr2.Root) != SerializeString(tr.Root) {
		t.Errorf("serialization differs:\n  %s\n  %s",
			SerializeString(tr.Root), SerializeString(tr2.Root))
	}
	// Region encodings match node for node.
	for i := range tr.Nodes {
		a, b := tr.Nodes[i], tr2.Nodes[i]
		if a.Kind != b.Kind || a.Name != b.Name || a.Text != b.Text ||
			a.Pre != b.Pre || a.Post != b.Post || a.Size != b.Size || a.Level != b.Level {
			t.Fatalf("node %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XQ"),
		[]byte("NOPE\x01"),
		[]byte("XQTS\x63"),         // bad version
		[]byte("XQTS\x01\x01"),     // truncated name table
		[]byte("XQTS\x01\x00\x00"), // zero nodes
	}
	for _, c := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(c)); err == nil {
			t.Errorf("ReadSnapshot(%q) should fail", c)
		}
	}
}

// Property: snapshot round trips preserve random documents exactly.
func TestSnapshotProperty(t *testing.T) {
	tags := []string{"a", "b", "c-long-name", "d"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := xdm.NewElement("root")
		nodes := []*xdm.Node{root}
		for i := 0; i < 5+rng.Intn(80); i++ {
			parent := nodes[rng.Intn(len(nodes))]
			el := xdm.NewElement(tags[rng.Intn(len(tags))])
			if rng.Intn(3) == 0 {
				el.SetAttr("k", strings.Repeat("v", rng.Intn(5)))
			}
			if rng.Intn(4) == 0 {
				el.AppendChild(xdm.NewText("text & <stuff>"))
			}
			parent.AppendChild(el)
			nodes = append(nodes, el)
		}
		tr := xdm.Finalize(root)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, tr); err != nil {
			return false
		}
		tr2, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		return SerializeString(tr2.Root) == SerializeString(tr.Root) &&
			tr2.CountNodes() == tr.CountNodes()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
