package xmlstore

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"xqtp/internal/xdm"
)

// indexesEqual compares two indexes node for node and stream for stream:
// the region columns, the pointer data model, and every tag stream.
func indexesEqual(t *testing.T, a, b *Index) {
	t.Helper()
	ta, tb := a.Tree, b.Tree
	// Force materialization so the pointer data model of a snapshot-loaded
	// tree is built and compared, not just its columns.
	ta.RootNode()
	tb.RootNode()
	if len(ta.Nodes) != len(tb.Nodes) {
		t.Fatalf("node count %d != %d", len(tb.Nodes), len(ta.Nodes))
	}
	for i := range ta.Nodes {
		x, y := ta.Nodes[i], tb.Nodes[i]
		if x.Kind != y.Kind || x.Name != y.Name || x.Text != y.Text ||
			x.Pre != y.Pre || x.Post != y.Post || x.Size != y.Size || x.Level != y.Level ||
			x.Sym != y.Sym {
			t.Fatalf("node %d differs: %+v vs %+v", i, x, y)
		}
		if len(x.Children) != len(y.Children) || len(x.Attrs) != len(y.Attrs) {
			t.Fatalf("node %d fan-out differs", i)
		}
		if (x.Parent == nil) != (y.Parent == nil) {
			t.Fatalf("node %d parent presence differs", i)
		}
		if x.Parent != nil && x.Parent.Pre != y.Parent.Pre {
			t.Fatalf("node %d parent differs: %d vs %d", i, x.Parent.Pre, y.Parent.Pre)
		}
	}
	ca, cb := ta.Cols, tb.Cols
	if !reflect.DeepEqual(ca.Post, cb.Post) || !reflect.DeepEqual(ca.Size, cb.Size) ||
		!reflect.DeepEqual(ca.Level, cb.Level) || !reflect.DeepEqual(ca.Parent, cb.Parent) ||
		!reflect.DeepEqual(ca.Kind, cb.Kind) || !reflect.DeepEqual(ca.Sym, cb.Sym) {
		t.Fatalf("columns differ")
	}
	if ta.Syms.Len() != tb.Syms.Len() {
		t.Fatalf("symbol count %d != %d", tb.Syms.Len(), ta.Syms.Len())
	}
	for s := xdm.Sym(0); int(s) < ta.Syms.Len(); s++ {
		if ta.Syms.Name(s) != tb.Syms.Name(s) {
			t.Fatalf("symbol %d: %q != %q", s, tb.Syms.Name(s), ta.Syms.Name(s))
		}
		ae, be := a.ElementRanksSym(s), b.ElementRanksSym(s)
		if !streamsEq(ae, be) {
			t.Fatalf("element stream for %q differs: %v vs %v", ta.Syms.Name(s), ae, be)
		}
		aa, ba := a.AttributeRanksSym(s), b.AttributeRanksSym(s)
		if !streamsEq(aa, ba) {
			t.Fatalf("attribute stream for %q differs: %v vs %v", ta.Syms.Name(s), aa, ba)
		}
	}
	if !streamsEq(a.allElems, b.allElems) || !streamsEq(a.allText, b.allText) ||
		!streamsEq(a.allNodes, b.allNodes) || !streamsEq(a.allAttrs, b.allAttrs) {
		t.Fatalf("merged streams differ")
	}
}

func streamsEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	ix, err := IngestString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ix); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, ix, ix2)
	if SerializeString(ix2.Tree.RootNode()) != SerializeString(ix.Tree.RootNode()) {
		t.Errorf("serialization differs:\n  %s\n  %s",
			SerializeString(ix.Tree.RootNode()), SerializeString(ix2.Tree.RootNode()))
	}
}

// snapshotFromIndexes assembles a CorpusSnapshot over members the way the
// collection layer does: the name table is the union of all member symbol
// tables, sorted, with NoSym cells for absent names.
func snapshotFromIndexes(uris []string, ixs []*Index) *CorpusSnapshot {
	set := map[string]bool{}
	for _, ix := range ixs {
		for _, n := range ix.Tree.Syms.Names() {
			set[n] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	cells := make([]xdm.Sym, len(names)*len(ixs))
	for i, name := range names {
		for m, ix := range ixs {
			s, ok := ix.Tree.Syms.Lookup(name)
			if !ok {
				s = xdm.NoSym
			}
			cells[i*len(ixs)+m] = s
		}
	}
	return &CorpusSnapshot{URIs: uris, Indexes: ixs, Names: names, NameSyms: cells}
}

func TestCorpusSnapshotRoundTrip(t *testing.T) {
	docs := []string{
		`<a id="1"><b>one</b><b>two</b></a>`,
		`<catalog><item price="3">x</item><other/></catalog>`,
		`<a><c k="v"/></a>`,
	}
	uris := []string{"one.xml", "two.xml", "three.xml"}
	ixs := make([]*Index, len(docs))
	for i, d := range docs {
		ix, err := IngestString(d)
		if err != nil {
			t.Fatal(err)
		}
		ixs[i] = ix
	}
	s := snapshotFromIndexes(uris, ixs)
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenCorpus(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2.URIs, s.URIs) {
		t.Fatalf("URIs differ: %v vs %v", s2.URIs, s.URIs)
	}
	if !reflect.DeepEqual(s2.Names, s.Names) {
		t.Fatalf("names differ: %v vs %v", s2.Names, s.Names)
	}
	if !reflect.DeepEqual(s2.NameSyms, s.NameSyms) {
		t.Fatalf("name table cells differ: %v vs %v", s2.NameSyms, s.NameSyms)
	}
	for m := range ixs {
		indexesEqual(t, ixs[m], s2.Indexes[m])
	}
}

func TestSnapshotEmptyCorpus(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, &CorpusSnapshot{}); err != nil {
		t.Fatal(err)
	}
	s, err := OpenCorpus(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Indexes) != 0 || len(s.URIs) != 0 || len(s.Names) != 0 {
		t.Fatalf("empty corpus round-tripped non-empty: %+v", s)
	}
}

func TestSnapshotErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XQ"),
		[]byte("NOPE\x01\x00\x00\x00"),
		[]byte("XQTS\x01\x00\x00\x00"), // old version
		[]byte("XQTS\x63\x00\x00\x00"), // future version
		[]byte("XQTS\x02\x00\x00\x00"), // truncated header
		// Header claiming 4 billion members with no member data: must error,
		// not attempt a giant allocation.
		append([]byte("XQTS\x02\x00\x00\x00"), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0),
	}
	for _, c := range cases {
		if _, err := OpenCorpus(c); err == nil {
			t.Errorf("OpenCorpus(%q) should fail", c)
		}
	}
}

// Corrupting any single byte of a valid snapshot must produce either an
// error or a successful load — never a panic. (Some flips are benign: a bit
// in a text character, say.)
func TestSnapshotCorruption(t *testing.T) {
	ix, err := IngestString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := range good {
		for _, flip := range []byte{0xff, 0x01, 0x80} {
			data := bytes.Clone(good)
			data[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("OpenCorpus panicked with byte %d ^= %#x: %v", i, flip, r)
					}
				}()
				s, err := OpenCorpus(data)
				if err != nil {
					return
				}
				// A load that succeeds must also materialize without
				// panicking — load-time validation has to be strong enough
				// to cover the deferred pointer-model build.
				for _, ix2 := range s.Indexes {
					ix2.Tree.RootNode()
				}
			}()
		}
	}
	// Every truncation must error (a prefix is never a valid snapshot here).
	for n := 0; n < len(good); n++ {
		if _, err := OpenCorpus(good[:n:n]); err == nil {
			t.Errorf("truncation to %d bytes should fail", n)
		}
	}
}

// Property: snapshot round trips preserve random documents exactly,
// including their index streams.
func TestSnapshotProperty(t *testing.T) {
	tags := []string{"a", "b", "c-long-name", "d"}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := xdm.NewElement("root")
		nodes := []*xdm.Node{root}
		for i := 0; i < 5+rng.Intn(80); i++ {
			parent := nodes[rng.Intn(len(nodes))]
			el := xdm.NewElement(tags[rng.Intn(len(tags))])
			if rng.Intn(3) == 0 {
				el.SetAttr("k", strings.Repeat("v", rng.Intn(5)))
			}
			if rng.Intn(4) == 0 {
				el.AppendChild(xdm.NewText("text & <stuff>"))
			}
			parent.AppendChild(el)
			nodes = append(nodes, el)
		}
		tr := xdm.Finalize(root)
		ix := BuildIndex(tr)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, ix); err != nil {
			return false
		}
		ix2, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		return SerializeString(ix2.Tree.RootNode()) == SerializeString(tr.Root) &&
			ix2.Tree.CountNodes() == tr.CountNodes() &&
			streamsEq(ix.allNodes, ix2.allNodes) &&
			streamsEq(ix.allElems, ix2.allElems)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotDeferredRoundTrip checks the O(open) path: a deferred open
// answers the directory probes (node counts, stream lengths) without loading
// any member, and a later Ensure yields exactly the eager load.
func TestSnapshotDeferredRoundTrip(t *testing.T) {
	docs := []string{
		`<a id="1"><b>one</b><b>two</b></a>`,
		`<catalog><item price="3">x</item><other/></catalog>`,
		`<a><c k="v"/></a>`,
	}
	uris := []string{"one.xml", "two.xml", "three.xml"}
	ixs := make([]*Index, len(docs))
	for i, d := range docs {
		ix, err := IngestString(d)
		if err != nil {
			t.Fatal(err)
		}
		ixs[i] = ix
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, snapshotFromIndexes(uris, ixs)); err != nil {
		t.Fatal(err)
	}
	s, err := OpenCorpusDeferred(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for m, ix := range s.Indexes {
		if ix.Loaded() {
			t.Fatalf("member %d loaded before any touch", m)
		}
		// Directory probes against the eager truth, before any load.
		if got, want := ix.NumNodes(), ixs[m].Tree.CountNodes(); got != want {
			t.Fatalf("member %d NumNodes = %d, want %d", m, got, want)
		}
		for sym := xdm.Sym(0); int(sym) < ixs[m].Tree.Syms.Len(); sym++ {
			for _, attr := range []bool{false, true} {
				n, ok := ix.StreamLen(sym, attr)
				if !ok {
					t.Fatalf("member %d StreamLen(%d, %v) not answerable", m, sym, attr)
				}
				want := len(ixs[m].ElementRanksSym(sym))
				if attr {
					want = len(ixs[m].AttributeRanksSym(sym))
				}
				if n != want {
					t.Fatalf("member %d StreamLen(%d, %v) = %d, want %d", m, sym, attr, n, want)
				}
			}
		}
		// Out-of-range symbols have no cheap proof: the fan-out must admit
		// the member rather than silently skip it.
		if _, ok := ix.StreamLen(xdm.Sym(ixs[m].Tree.Syms.Len()), false); ok {
			t.Fatalf("member %d StreamLen past the symbol table reported ok", m)
		}
		if ix.Loaded() {
			t.Fatalf("member %d loaded by a directory probe", m)
		}
		if err := ix.Ensure(); err != nil {
			t.Fatalf("member %d Ensure: %v", m, err)
		}
		if !ix.Loaded() {
			t.Fatalf("member %d not loaded after Ensure", m)
		}
		indexesEqual(t, ixs[m], ix)
	}
}

// Byte flips against the deferred path: open, probe, Ensure, materialize —
// an error at any stage is fine, a panic never is. This sweeps the
// validation that moved from open time to load time.
func TestSnapshotDeferredCorruption(t *testing.T) {
	var buf bytes.Buffer
	ix, err := IngestString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&buf, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := range good {
		for _, flip := range []byte{0xff, 0x01, 0x80} {
			data := bytes.Clone(good)
			data[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("deferred path panicked with byte %d ^= %#x: %v", i, flip, r)
					}
				}()
				s, err := OpenCorpusDeferred(data)
				if err != nil {
					return
				}
				for _, ix2 := range s.Indexes {
					ix2.NumNodes()
					ix2.StreamLen(0, false)
					ix2.StreamLen(0, true)
					if err := ix2.Ensure(); err != nil {
						// Sticky: the second Ensure must return the same error,
						// and the poisoned tree must still navigate.
						if err2 := ix2.Ensure(); err2 != err {
							t.Fatalf("Ensure not sticky: %v then %v", err, err2)
						}
					}
					ix2.Tree.RootNode()
				}
			}()
		}
	}
	// Deferred open of every truncation must fail at open (the offset table
	// is validated against the file length before any member is trusted).
	for n := 0; n < len(good); n++ {
		if _, err := OpenCorpusDeferred(good[:n:n]); err == nil {
			t.Errorf("deferred open of truncation to %d bytes should fail", n)
		}
	}
}

// TestSnapshotPortableFallback forces the decode-copy path (as used on
// big-endian hosts and under -tags nommap cross-builds) and checks it
// round-trips identically to the aliasing path.
func TestSnapshotPortableFallback(t *testing.T) {
	defer func(prev bool) { forcePortable = prev }(forcePortable)

	ix, err := IngestString(`<a id="1"><b x="y"><c>hello</c></b><c>world</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, portable := range []bool{false, true} {
		forcePortable = portable
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, ix); err != nil {
			t.Fatalf("portable=%v write: %v", portable, err)
		}
		ix2, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("portable=%v read: %v", portable, err)
		}
		indexesEqual(t, ix, ix2)
	}
	// Cross: written aliased, read portable (and the reverse) — the on-disk
	// format is identical, only the in-memory aliasing differs.
	forcePortable = false
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ix); err != nil {
		t.Fatal(err)
	}
	forcePortable = true
	ix2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, ix, ix2)
}

// TestSnapshotDeferredFromMapping runs the deferred round trip against a
// real file mapping, including the prefetch hint and mapping close ordering.
func TestSnapshotDeferredFromMapping(t *testing.T) {
	path := writeTempSnapshot(t,
		[]string{`<a id="1"><b>one</b></a>`, `<c><d x="y">two</d></c>`},
		[]string{"one.xml", "two.xml"})
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenCorpusMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, ix := range s.Indexes {
		ix.Prefetch()
		if err := ix.Ensure(); err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		ix.Tree.RootNode()
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// A member never loaded before Close must fail with the typed error, not
	// fault on unmapped pages.
	m2, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenCorpusMapping(m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Indexes[0].Ensure(); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("Ensure after mapping Close = %v, want ErrSnapshotClosed", err)
	}
	s2.Indexes[0].Tree.RootNode() // poisoned, must not fault
}
