package xmlstore

// Snapshot format v2: a columnar corpus serialization — the persistence
// substrate that makes restarting a server O(open) instead of O(re-parse).
//
// The format dumps exactly what the in-memory store holds: the per-member
// structure-of-arrays region columns (Post/Size/Level/Parent/Kind/Sym), the
// per-member symbol tables and text blobs, the per-symbol element/attribute
// rank streams plus the merged streams, and the corpus-level name table and
// member URIs. Loading therefore rebuilds no region encoding and re-interns
// no name: the fixed-width little-endian arrays are sliced straight out of
// the snapshot buffer (zero-copy on little-endian hosts, a decode-copy
// fallback elsewhere), and the pointer data model — the Node structs — is
// not built at all until something forces it: xdm.TreeFromColumns validates
// the columns and returns a lazy tree whose nodes materialize on first
// access (Tree.RootNode), so members a query never touches never allocate a
// Node.
//
// Layout (all integers little-endian; every array starts 8-byte aligned,
// which is what admits a future mmap-backed loader — the u32/int32 arrays
// can be viewed in place at any page boundary):
//
//	header:  magic "XQTS", u8 version=2, pad3, u32 nMembers, u32 nNames
//	uris:    string table (nMembers entries)
//	names:   string table (nNames entries) — corpus name table
//	nameSyms: int32[nNames*nMembers], row-major by name
//	members: nMembers member sections
//
//	member:  u32 nNodes, u32 nSyms, u32 nTexts, u32 reserved
//	         symbols: string table (nSyms)
//	         Post/Size/Level/Parent int32[nNodes] each, Sym int32[nNodes],
//	         Kind u8[nNodes]
//	         texts: string table (nTexts) — text/attribute values in preorder
//	         elemOff u32[nSyms+1], elemData int32[elemOff[nSyms]]
//	         attrOff u32[nSyms+1], attrData int32[attrOff[nSyms]]
//	         u32 nAllElems, nAllText, nAllNodes, nAllAttrs, then the four
//	         merged int32 streams
//
//	string table (count): u32 offsets[count+1] (cumulative, offsets[0]=0),
//	         then the blob bytes; strings alias the blob on load
//
// The v1 per-node varint format is gone; its writers and readers migrated
// to this encoder (a single document is a one-member corpus with an empty
// corpus name table).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"

	"xqtp/internal/xdm"
)

const (
	snapshotMagic   = "XQTS"
	snapshotVersion = 2
)

// hostLittleEndian reports whether int32 slices can alias snapshot bytes
// directly. On big-endian hosts the reader falls back to a decode copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// CorpusSnapshot is the in-memory image of a v2 snapshot: the member URIs
// and indexes, plus the corpus name table in flat serializable form
// (Names[i]'s symbol in member m sits at NameSyms[i*len(URIs)+m]).
// Single-document snapshots are one-member corpora with empty Names.
type CorpusSnapshot struct {
	URIs     []string
	Indexes  []*Index
	Names    []string
	NameSyms []xdm.Sym
}

// ---------------------------------------------------------------------------
// Writer

type snapWriter struct {
	w   *bufio.Writer
	off int64
	err error
}

func (w *snapWriter) bytes(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
	w.off += int64(len(b))
}

func (w *snapWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.bytes(buf[:])
}

// i32s writes an int32 array. On little-endian hosts the slice's bytes go
// out as-is; elsewhere each element is encoded.
func (w *snapWriter) i32s(a []int32) {
	if len(a) == 0 {
		return
	}
	if hostLittleEndian {
		w.bytes(unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), len(a)*4))
		return
	}
	for _, v := range a {
		w.u32(uint32(v))
	}
}

var snapPad [8]byte

// align8 pads the stream to the next 8-byte boundary.
func (w *snapWriter) align8() {
	if rem := int(w.off & 7); rem != 0 {
		w.bytes(snapPad[:8-rem])
	}
}

// stringTable writes count strings as cumulative offsets plus one blob.
func (w *snapWriter) stringTable(ss []string) {
	off := uint32(0)
	w.u32(0)
	for _, s := range ss {
		off += uint32(len(s))
		w.u32(off)
	}
	w.align8()
	for _, s := range ss {
		w.bytes(stringBytes(s))
	}
	w.align8()
}

// WriteCorpus serializes a corpus snapshot.
func WriteCorpus(w io.Writer, s *CorpusSnapshot) error {
	if len(s.URIs) != len(s.Indexes) {
		return fmt.Errorf("xmlstore: %d URIs for %d members", len(s.URIs), len(s.Indexes))
	}
	if len(s.NameSyms) != len(s.Names)*len(s.URIs) {
		return fmt.Errorf("xmlstore: name table has %d cells, want %d", len(s.NameSyms), len(s.Names)*len(s.URIs))
	}
	sw := &snapWriter{w: bufio.NewWriter(w)}
	sw.bytes([]byte(snapshotMagic))
	sw.bytes([]byte{snapshotVersion, 0, 0, 0})
	sw.u32(uint32(len(s.URIs)))
	sw.u32(uint32(len(s.Names)))
	sw.stringTable(s.URIs)
	sw.stringTable(s.Names)
	if len(s.NameSyms) > 0 {
		sw.i32s(unsafe.Slice((*int32)(unsafe.Pointer(&s.NameSyms[0])), len(s.NameSyms)))
	}
	sw.align8()
	for _, ix := range s.Indexes {
		writeMember(sw, ix)
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

func writeMember(w *snapWriter, ix *Index) {
	t := ix.Tree
	cols := t.Cols
	n := len(cols.Kind)
	// The text-bearing values in preorder — the same order the loader hands
	// them back to xdm.TreeFromColumns. TextValues reads a loaded tree's
	// stored values directly, so re-saving a snapshot-loaded corpus never
	// forces node materialization.
	texts := t.TextValues()
	syms := t.Syms.Names()
	w.u32(uint32(n))
	w.u32(uint32(len(syms)))
	w.u32(uint32(len(texts)))
	w.u32(0)
	w.stringTable(syms)
	w.i32s(cols.Post)
	w.align8()
	w.i32s(cols.Size)
	w.align8()
	w.i32s(cols.Level)
	w.align8()
	w.i32s(cols.Parent)
	w.align8()
	w.i32s(cols.Sym)
	w.align8()
	w.bytes(cols.Kind)
	w.align8()
	w.stringTable(texts)
	writeStreams(w, ix.elemBySym)
	writeStreams(w, ix.attrBySym)
	w.u32(uint32(len(ix.allElems)))
	w.u32(uint32(len(ix.allText)))
	w.u32(uint32(len(ix.allNodes)))
	w.u32(uint32(len(ix.allAttrs)))
	for _, stream := range [][]int32{ix.allElems, ix.allText, ix.allNodes, ix.allAttrs} {
		w.i32s(stream)
		w.align8()
	}
}

// writeStreams writes per-symbol rank streams as cumulative offsets plus one
// concatenated data array.
func writeStreams(w *snapWriter, streams [][]int32) {
	off := uint32(0)
	w.u32(0)
	for _, s := range streams {
		off += uint32(len(s))
		w.u32(off)
	}
	w.align8()
	for _, s := range streams {
		w.i32s(s)
	}
	w.align8()
}

// ---------------------------------------------------------------------------
// Reader

type snapReader struct {
	data []byte
	off  int
}

func (r *snapReader) remaining() int { return len(r.data) - r.off }

func (r *snapReader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("xmlstore: snapshot truncated at offset %d (need %d bytes)", r.off, n)
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b, nil
}

func (r *snapReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *snapReader) align8() error {
	if rem := r.off & 7; rem != 0 {
		if _, err := r.take(8 - rem); err != nil {
			return err
		}
	}
	return nil
}

// i32s returns n int32 values. The count is bounds-checked against the
// remaining bytes before any allocation, so a hostile header cannot force a
// huge make. On little-endian hosts with an aligned cursor the returned
// slice aliases the snapshot buffer.
func (r *snapReader) i32s(n int) ([]int32, error) {
	if n < 0 || n > r.remaining()/4 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: %d int32s at offset %d", n, r.off)
	}
	b, err := r.take(n * 4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))&3 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// stringTable reads a table of count strings; the strings alias the buffer.
func (r *snapReader) stringTable(count int) ([]string, error) {
	if count < 0 || count+1 > r.remaining()/4 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: string table of %d at offset %d", count, r.off)
	}
	offb, err := r.take((count + 1) * 4)
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	if first := binary.LittleEndian.Uint32(offb); first != 0 {
		return nil, fmt.Errorf("xmlstore: snapshot string table does not start at 0")
	}
	blobLen := binary.LittleEndian.Uint32(offb[count*4:])
	blob, err := r.take(int(blobLen))
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	out := make([]string, count)
	prev := uint32(0)
	for i := 0; i < count; i++ {
		end := binary.LittleEndian.Uint32(offb[(i+1)*4:])
		if end < prev || end > blobLen {
			return nil, fmt.Errorf("xmlstore: snapshot string table offsets out of order")
		}
		out[i] = byteString(blob[prev:end])
		prev = end
	}
	return out, nil
}

// streams reads per-symbol rank streams (cumulative offsets + concatenated
// data), returning subslices of one shared array.
func (r *snapReader) streams(nsyms, nNodes int) ([][]int32, error) {
	if nsyms < 0 || nsyms+1 > r.remaining()/4 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: stream table of %d at offset %d", nsyms, r.off)
	}
	offb, err := r.take((nsyms + 1) * 4)
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	if first := binary.LittleEndian.Uint32(offb); first != 0 {
		return nil, fmt.Errorf("xmlstore: snapshot stream offsets do not start at 0")
	}
	total := binary.LittleEndian.Uint32(offb[nsyms*4:])
	data, err := r.i32s(int(total))
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	out := make([][]int32, nsyms)
	prev := uint32(0)
	for i := 0; i < nsyms; i++ {
		end := binary.LittleEndian.Uint32(offb[(i+1)*4:])
		if end < prev || end > total {
			return nil, fmt.Errorf("xmlstore: snapshot stream offsets out of order")
		}
		if end > prev {
			// Each symbol's stream is ascending on its own; the concatenation
			// across symbols is not.
			if err := checkRanks(data[prev:end], nNodes); err != nil {
				return nil, err
			}
			out[i] = data[prev:end:end]
		}
		prev = end
	}
	return out, nil
}

// checkRanks validates a rank stream: strictly ascending within [0, nNodes),
// so Materialize and the binary-search kernels can never index out of range
// over a corrupted snapshot.
func checkRanks(a []int32, nNodes int) error {
	prev := int32(-1)
	for _, v := range a {
		if v <= prev || int(v) >= nNodes {
			return fmt.Errorf("xmlstore: snapshot rank stream not ascending in range")
		}
		prev = v
	}
	return nil
}

// mergedStream reads one merged rank stream of length n, validating order
// and range. Streams within a section are each followed by alignment.
func (r *snapReader) mergedStream(n, nNodes int) ([]int32, error) {
	a, err := r.i32s(n)
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	if err := checkRanks(a, nNodes); err != nil {
		return nil, err
	}
	return a, nil
}

// OpenCorpus deserializes a v2 corpus snapshot held in data. It takes
// ownership of the buffer: the loaded trees' names, text values, columns and
// rank streams alias it (on little-endian hosts), so the caller must not
// modify it afterwards. Corrupted or truncated input returns an error, never
// a panic — the fuzz suite holds the reader to that.
func OpenCorpus(data []byte) (*CorpusSnapshot, error) {
	r := &snapReader{data: data}
	head, err := r.take(8)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: snapshot header: %w", err)
	}
	if string(head[:4]) != snapshotMagic {
		return nil, fmt.Errorf("xmlstore: not a snapshot file")
	}
	if head[4] != snapshotVersion {
		return nil, fmt.Errorf("xmlstore: unsupported snapshot version %d (this build reads version %d)", head[4], snapshotVersion)
	}
	nMembers, err := r.u32()
	if err != nil {
		return nil, err
	}
	nNames, err := r.u32()
	if err != nil {
		return nil, err
	}
	s := &CorpusSnapshot{}
	if s.URIs, err = r.stringTable(int(nMembers)); err != nil {
		return nil, err
	}
	if s.Names, err = r.stringTable(int(nNames)); err != nil {
		return nil, err
	}
	cells := int64(nNames) * int64(nMembers)
	if cells > int64(r.remaining())/4 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: name table of %d cells", cells)
	}
	flat, err := r.i32s(int(cells))
	if err != nil {
		return nil, err
	}
	if len(flat) > 0 {
		s.NameSyms = unsafe.Slice((*xdm.Sym)(unsafe.Pointer(&flat[0])), len(flat))
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	s.Indexes = make([]*Index, 0, min(int(nMembers), r.remaining()/16))
	for m := 0; m < int(nMembers); m++ {
		ix, err := readMember(r)
		if err != nil {
			return nil, fmt.Errorf("xmlstore: snapshot member %d: %w", m, err)
		}
		s.Indexes = append(s.Indexes, ix)
	}
	// Validate the corpus name table against the member symbol tables, so a
	// corrupt cell cannot alias one name's stream to another's.
	for i, name := range s.Names {
		for m := range s.Indexes {
			sym := s.NameSyms[i*int(nMembers)+m]
			if sym == xdm.NoSym {
				continue
			}
			if int(sym) >= s.Indexes[m].Tree.Syms.Len() || s.Indexes[m].Tree.Syms.Name(sym) != name {
				return nil, fmt.Errorf("xmlstore: snapshot name table cell (%q, member %d) does not match the member's symbols", name, m)
			}
		}
	}
	return s, nil
}

func readMember(r *snapReader) (*Index, error) {
	nNodes, err := r.u32()
	if err != nil {
		return nil, err
	}
	nSyms, err := r.u32()
	if err != nil {
		return nil, err
	}
	nTexts, err := r.u32()
	if err != nil {
		return nil, err
	}
	if _, err := r.u32(); err != nil { // reserved
		return nil, err
	}
	names, err := r.stringTable(int(nSyms))
	if err != nil {
		return nil, err
	}
	syms, err := xdm.NewSymbols(names)
	if err != nil {
		return nil, err
	}
	n := int(nNodes)
	cols := &xdm.Cols{}
	for _, col := range []*[]int32{&cols.Post, &cols.Size, &cols.Level, &cols.Parent, &cols.Sym} {
		if *col, err = r.i32s(n); err != nil {
			return nil, err
		}
		if err := r.align8(); err != nil {
			return nil, err
		}
	}
	kind, err := r.take(n)
	if err != nil {
		return nil, err
	}
	cols.Kind = kind
	if err := r.align8(); err != nil {
		return nil, err
	}
	texts, err := r.stringTable(int(nTexts))
	if err != nil {
		return nil, err
	}
	tree, err := xdm.TreeFromColumns(cols, syms, texts)
	if err != nil {
		return nil, err
	}
	ix := &Index{Tree: tree}
	if ix.elemBySym, err = r.streams(int(nSyms), n); err != nil {
		return nil, err
	}
	if ix.attrBySym, err = r.streams(int(nSyms), n); err != nil {
		return nil, err
	}
	var counts [4]uint32
	for i := range counts {
		if counts[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	if ix.allElems, err = r.mergedStream(int(counts[0]), n); err != nil {
		return nil, err
	}
	if ix.allText, err = r.mergedStream(int(counts[1]), n); err != nil {
		return nil, err
	}
	if ix.allNodes, err = r.mergedStream(int(counts[2]), n); err != nil {
		return nil, err
	}
	if ix.allAttrs, err = r.mergedStream(int(counts[3]), n); err != nil {
		return nil, err
	}
	return ix, nil
}

// ---------------------------------------------------------------------------
// Single-document entry points (one-member corpora)

// WriteSnapshot serializes a single document with its index: a one-member
// corpus snapshot with an empty corpus name table.
func WriteSnapshot(w io.Writer, ix *Index) error {
	return WriteCorpus(w, &CorpusSnapshot{URIs: []string{""}, Indexes: []*Index{ix}})
}

// ReadSnapshot deserializes a single-document snapshot written by
// WriteSnapshot, returning the member's ready index (no region or index
// rebuild). The reader's bytes are consumed into a private buffer.
func ReadSnapshot(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: %w", err)
	}
	s, err := OpenCorpus(data)
	if err != nil {
		return nil, err
	}
	if len(s.Indexes) != 1 {
		return nil, fmt.Errorf("xmlstore: snapshot holds %d members; use OpenCorpus for corpora", len(s.Indexes))
	}
	return s.Indexes[0], nil
}
