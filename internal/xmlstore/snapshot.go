package xmlstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"xqtp/internal/xdm"
)

// Snapshot format: a compact binary serialization of a parsed document —
// the storage substrate for tools that reload the same document repeatedly
// (region encodings are rebuilt deterministically on load).
//
//	magic "XQTS", version u8
//	name table: uvarint count, then uvarint-length-prefixed strings
//	node count (uvarint), then per node in preorder:
//	  kind u8, name index (uvarint, elements/attributes),
//	  text (uvarint length + bytes, texts/attributes),
//	  parent preorder rank (uvarint, offset by one; 0 = none)
const (
	snapshotMagic   = "XQTS"
	snapshotVersion = 1
)

// WriteSnapshot serializes a document.
func WriteSnapshot(w io.Writer, t *xdm.Tree) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	// Name table.
	names := []string{}
	nameID := map[string]int{}
	for _, n := range t.Nodes {
		if n.Kind == xdm.ElementNode || n.Kind == xdm.AttributeNode {
			if _, ok := nameID[n.Name]; !ok {
				nameID[n.Name] = len(names)
				names = append(names, n.Name)
			}
		}
	}
	writeUvarint(bw, uint64(len(names)))
	for _, s := range names {
		writeString(bw, s)
	}
	writeUvarint(bw, uint64(len(t.Nodes)))
	for _, n := range t.Nodes {
		if err := bw.WriteByte(byte(n.Kind)); err != nil {
			return err
		}
		switch n.Kind {
		case xdm.ElementNode, xdm.AttributeNode:
			writeUvarint(bw, uint64(nameID[n.Name]))
		}
		switch n.Kind {
		case xdm.TextNode, xdm.AttributeNode:
			writeString(bw, n.Text)
		}
		parent := uint64(0)
		if n.Parent != nil {
			parent = uint64(n.Parent.Pre) + 1
		}
		writeUvarint(bw, parent)
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a document written by WriteSnapshot and rebuilds
// its region encodings.
func ReadSnapshot(r io.Reader) (*xdm.Tree, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("xmlstore: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("xmlstore: not a snapshot file")
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("xmlstore: unsupported snapshot version %d", version)
	}
	nNames, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	names := make([]string, nNames)
	for i := range names {
		if names[i], err = readString(br); err != nil {
			return nil, err
		}
	}
	nNodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nNodes < 2 {
		return nil, fmt.Errorf("xmlstore: snapshot without a document root")
	}
	nodes := make([]*xdm.Node, 0, nNodes)
	var rootElem *xdm.Node
	for i := uint64(0); i < nNodes; i++ {
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		kind := xdm.Kind(kindByte)
		n := &xdm.Node{Kind: kind}
		switch kind {
		case xdm.ElementNode, xdm.AttributeNode:
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if id >= uint64(len(names)) {
				return nil, fmt.Errorf("xmlstore: snapshot name index out of range")
			}
			n.Name = names[id]
		case xdm.DocumentNode:
		case xdm.TextNode:
		default:
			return nil, fmt.Errorf("xmlstore: snapshot has invalid node kind %d", kindByte)
		}
		switch kind {
		case xdm.TextNode, xdm.AttributeNode:
			if n.Text, err = readString(br); err != nil {
				return nil, err
			}
		}
		parentPlus1, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if parentPlus1 == 0 {
			if kind != xdm.DocumentNode || i != 0 {
				return nil, fmt.Errorf("xmlstore: snapshot node %d has no parent", i)
			}
		} else {
			if parentPlus1 > uint64(len(nodes)) {
				return nil, fmt.Errorf("xmlstore: snapshot parent reference out of order")
			}
			parent := nodes[parentPlus1-1]
			switch kind {
			case xdm.AttributeNode:
				n.Parent = parent
				parent.Attrs = append(parent.Attrs, n)
			case xdm.DocumentNode:
				return nil, fmt.Errorf("xmlstore: nested document node")
			default:
				n.Parent = parent
				parent.Children = append(parent.Children, n)
				if kind == xdm.ElementNode && parent.Kind == xdm.DocumentNode && rootElem == nil {
					rootElem = n
				}
			}
		}
		nodes = append(nodes, n)
	}
	if rootElem == nil {
		return nil, fmt.Errorf("xmlstore: snapshot without a root element")
	}
	// Rebuild the region encodings from scratch (Finalize re-wraps the
	// root element in a fresh document node).
	rootElem.Parent = nil
	return xdm.Finalize(rootElem), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("xmlstore: snapshot string too large")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
