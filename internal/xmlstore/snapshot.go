package xmlstore

// Snapshot format v3: a columnar corpus serialization — the persistence
// substrate that makes restarting a server O(open) instead of O(re-parse),
// and, over an mmap (see mmap.go), makes corpora larger than RAM queryable:
// bytes fault in per page as queries touch them.
//
// The format dumps exactly what the in-memory store holds: the per-member
// structure-of-arrays region columns (Post/Size/Level/Parent/Kind/Sym), the
// per-member symbol tables and text blobs, the per-symbol element/attribute
// rank streams plus the merged streams, and the corpus-level name table and
// member URIs. Loading rebuilds no region encoding and re-interns no name:
// the fixed-width little-endian arrays are sliced straight out of the
// snapshot buffer (zero-copy on little-endian hosts, a decode-copy fallback
// elsewhere or under XQTP_SNAPSHOT_PORTABLE).
//
// v3 adds the two tables that let the reader defer everything per member:
//
//   - a corpus-level member offset table (u64 absolute offsets, one past the
//     end included), validated in O(members) at open — monotonic, 8-aligned,
//     last entry equal to the file length, so a truncated or shrunk file
//     errors at open rather than faulting mid-query;
//   - a fixed 128-byte per-member section directory (counts + 14 section
//     offsets), enough to answer "how many nodes" and "how long is symbol
//     s's stream" from one or two pages without parsing the member.
//
// Open therefore costs the header, the offset table and the corpus tables;
// each member's full parse + structural validation runs at most once, behind
// a sync.Once, the first time a query (or an explicit Ensure) needs it —
// first query on a member pays that member's validation, untouched members
// pay nothing. The pointer data model (Node structs) stays deferred behind
// the same once chain (xdm shell trees), exactly as in v2.
//
// Layout (all integers little-endian; every array starts 8-byte aligned, so
// int32/u32 arrays can be viewed in place at any page offset):
//
//	header:  magic "XQTS", u8 version=3, pad3, u32 nMembers, u32 nNames
//	offsets: u64 memberOff[nMembers+1] — absolute; memberOff[0] is the first
//	         member, memberOff[nMembers] the file length
//	uris:    string table (nMembers entries)
//	names:   string table (nNames entries) — corpus name table
//	nameSyms: int32[nNames*nMembers], row-major by name
//	members: nMembers member sections at their stated offsets
//
//	member:  directory (128 bytes): u32 nNodes, nSyms, nTexts, reserved,
//	         then u64 sect[14] — member-relative offsets of the 13 sections
//	         below plus the member length
//	         [0]  symbols: string table (nSyms)
//	         [1..5] Post/Size/Level/Parent/Sym int32[nNodes] each (padded)
//	         [6]  Kind u8[nNodes] (padded)
//	         [7]  texts: string table (nTexts) — text/attr values in preorder
//	         [8]  elemOff u32[nSyms+1] (padded)
//	         [9]  elemData int32[elemOff[nSyms]] (padded)
//	         [10] attrOff u32[nSyms+1] (padded)
//	         [11] attrData int32[attrOff[nSyms]] (padded)
//	         [12] u32 nAllElems, nAllText, nAllNodes, nAllAttrs, then the
//	              four merged int32 streams (each padded)
//
//	string table (count): u32 offsets[count+1] (cumulative, offsets[0]=0),
//	         then the blob bytes; strings alias the blob on load
//
// The v2 format (inline member counts, no offset tables) is not readable by
// this build; snapshots are regenerated from the XML they index.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"unsafe"

	"xqtp/internal/xdm"
)

const (
	snapshotMagic   = "XQTS"
	snapshotVersion = 3
)

// Member section indexes into the per-member directory.
const (
	secSymbols = iota
	secPost
	secSize
	secLevel
	secParent
	secSym
	secKind
	secTexts
	secElemOff
	secElemData
	secAttrOff
	secAttrData
	secMerged
	numMemberSections
)

// memberDirSize is the fixed directory prefix of every member: the counts
// plus the section offset table, sized to a multiple of 8 so the member
// body stays 8-aligned.
const memberDirSize = 16 + 8*(numMemberSections+1)

// hostLittleEndian reports whether int32 slices can alias snapshot bytes
// directly. On big-endian hosts the reader falls back to a decode copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// forcePortable disables the zero-copy aliasing between snapshot bytes and
// the loaded columns/streams (and the writer's mirror fast path), forcing
// the per-element encode/decode loops that big-endian hosts run. Set
// XQTP_SNAPSHOT_PORTABLE=1 to hold the portable branch to the differential
// suite without big-endian hardware; in-package tests flip the variable
// directly.
var forcePortable = os.Getenv("XQTP_SNAPSHOT_PORTABLE") != ""

// aliasInt32 gates the zero-copy int32 view of snapshot bytes.
func aliasInt32() bool { return hostLittleEndian && !forcePortable }

// CorpusSnapshot is the in-memory image of a v3 snapshot: the member URIs
// and indexes, plus the corpus name table in flat serializable form
// (Names[i]'s symbol in member m sits at NameSyms[i*len(URIs)+m]).
// Single-document snapshots are one-member corpora with empty Names.
//
// Opened deferred (OpenCorpusDeferred, OpenCorpusMapping), the Indexes are
// shells: identity and directory only, parse + validation on first use.
type CorpusSnapshot struct {
	URIs     []string
	Indexes  []*Index
	Names    []string
	NameSyms []xdm.Sym

	mapping *Mapping // non-nil when the snapshot pages a mapped file
}

// Mapping returns the file mapping behind the snapshot (nil for in-memory
// buffers). The collection layer owns its lifecycle: Corpus.Close closes it.
func (s *CorpusSnapshot) Mapping() *Mapping { return s.mapping }

// ---------------------------------------------------------------------------
// Writer

// snapWriter writes the stream or, with a nil sink, only counts: the
// counting pass runs the same code as the real write to learn every member's
// size and section offsets, which the real pass then embeds in the offset
// tables. mark records a section boundary.
type snapWriter struct {
	w     *bufio.Writer // nil: counting pass
	off   int64
	err   error
	marks []int64
}

func (w *snapWriter) mark() { w.marks = append(w.marks, w.off) }

func (w *snapWriter) bytes(b []byte) {
	if w.err != nil {
		return
	}
	if w.w != nil {
		_, w.err = w.w.Write(b)
	}
	w.off += int64(len(b))
}

func (w *snapWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.bytes(buf[:])
}

func (w *snapWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.bytes(buf[:])
}

// i32s writes an int32 array. With aliasing enabled the slice's bytes go
// out as-is; otherwise each element is encoded.
func (w *snapWriter) i32s(a []int32) {
	if len(a) == 0 {
		return
	}
	if aliasInt32() {
		w.bytes(unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), len(a)*4))
		return
	}
	for _, v := range a {
		w.u32(uint32(v))
	}
}

var snapPad [8]byte

// align8 pads the stream to the next 8-byte boundary.
func (w *snapWriter) align8() {
	if rem := int(w.off & 7); rem != 0 {
		w.bytes(snapPad[:8-rem])
	}
}

// stringTable writes count strings as cumulative offsets plus one blob.
func (w *snapWriter) stringTable(ss []string) {
	off := uint32(0)
	w.u32(0)
	for _, s := range ss {
		off += uint32(len(s))
		w.u32(off)
	}
	w.align8()
	for _, s := range ss {
		w.bytes(stringBytes(s))
	}
	w.align8()
}

// WriteCorpus serializes a corpus snapshot. Members still deferred from a
// snapshot open are loaded first (the writer walks every column anyway);
// a member whose deferred validation fails aborts the write.
func WriteCorpus(w io.Writer, s *CorpusSnapshot) error {
	if len(s.URIs) != len(s.Indexes) {
		return fmt.Errorf("xmlstore: %d URIs for %d members", len(s.URIs), len(s.Indexes))
	}
	if len(s.NameSyms) != len(s.Names)*len(s.URIs) {
		return fmt.Errorf("xmlstore: name table has %d cells, want %d", len(s.NameSyms), len(s.Names)*len(s.URIs))
	}
	for _, ix := range s.Indexes {
		if err := ix.Ensure(); err != nil {
			return err
		}
	}

	// Counting pass, members first: body sizes and section marks. The
	// directory prefix is fixed-size, so member-relative section offsets are
	// the marks shifted by it.
	dirs := make([][]int64, len(s.Indexes))
	sizes := make([]int64, len(s.Indexes))
	for i, ix := range s.Indexes {
		cw := &snapWriter{}
		writeMemberBody(cw, ix)
		if len(cw.marks) != numMemberSections {
			return fmt.Errorf("xmlstore: internal: member body recorded %d section marks, want %d", len(cw.marks), numMemberSections)
		}
		sect := make([]int64, numMemberSections+1)
		for k, m := range cw.marks {
			sect[k] = memberDirSize + m
		}
		sect[numMemberSections] = memberDirSize + cw.off
		dirs[i] = sect
		sizes[i] = memberDirSize + cw.off
	}
	// Counting pass, corpus prefix: its size does not depend on the offset
	// values (fixed-width u64 cells), so dummy offsets measure it exactly.
	memberOff := make([]int64, len(s.Indexes)+1)
	pw := &snapWriter{}
	writeCorpusPrefix(pw, s, memberOff)
	memberOff[0] = pw.off
	for i := range s.Indexes {
		memberOff[i+1] = memberOff[i] + sizes[i]
	}

	sw := &snapWriter{w: bufio.NewWriter(w)}
	writeCorpusPrefix(sw, s, memberOff)
	for i, ix := range s.Indexes {
		writeMemberDir(sw, ix, dirs[i])
		writeMemberBody(sw, ix)
		if sw.err == nil && sw.off != memberOff[i+1] {
			return fmt.Errorf("xmlstore: internal: member %d ends at %d, counting pass said %d", i, sw.off, memberOff[i+1])
		}
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

func writeCorpusPrefix(w *snapWriter, s *CorpusSnapshot, memberOff []int64) {
	w.bytes([]byte(snapshotMagic))
	w.bytes([]byte{snapshotVersion, 0, 0, 0})
	w.u32(uint32(len(s.URIs)))
	w.u32(uint32(len(s.Names)))
	for _, off := range memberOff {
		w.u64(uint64(off))
	}
	w.stringTable(s.URIs)
	w.stringTable(s.Names)
	if len(s.NameSyms) > 0 {
		w.i32s(unsafe.Slice((*int32)(unsafe.Pointer(&s.NameSyms[0])), len(s.NameSyms)))
	}
	w.align8()
}

func writeMemberDir(w *snapWriter, ix *Index, sect []int64) {
	t := ix.Tree
	w.u32(uint32(len(t.Cols.Kind)))
	w.u32(uint32(t.Syms.Len()))
	w.u32(uint32(len(t.TextValues())))
	w.u32(0)
	for _, s := range sect {
		w.u64(uint64(s))
	}
}

func writeMemberBody(w *snapWriter, ix *Index) {
	t := ix.Tree
	cols := t.Cols
	// The text-bearing values in preorder — the same order the loader hands
	// back to FillColumns. TextValues reads a loaded tree's stored values
	// directly, so re-saving a snapshot-loaded corpus never forces node
	// materialization.
	texts := t.TextValues()
	syms := t.Syms.Names()
	w.mark() // secSymbols
	w.stringTable(syms)
	for _, col := range [][]int32{cols.Post, cols.Size, cols.Level, cols.Parent, cols.Sym} {
		w.mark() // secPost..secSym
		w.i32s(col)
		w.align8()
	}
	w.mark() // secKind
	w.bytes(cols.Kind)
	w.align8()
	w.mark() // secTexts
	w.stringTable(texts)
	writeStreams(w, ix.elemBySym) // secElemOff, secElemData
	writeStreams(w, ix.attrBySym) // secAttrOff, secAttrData
	w.mark()                      // secMerged
	w.u32(uint32(len(ix.allElems)))
	w.u32(uint32(len(ix.allText)))
	w.u32(uint32(len(ix.allNodes)))
	w.u32(uint32(len(ix.allAttrs)))
	for _, stream := range [][]int32{ix.allElems, ix.allText, ix.allNodes, ix.allAttrs} {
		w.i32s(stream)
		w.align8()
	}
}

// writeStreams writes per-symbol rank streams as two sections: cumulative
// offsets, then one concatenated data array. Keeping the offsets in their
// own section lets the deferred reader answer stream lengths from the
// directory without touching the data pages.
func writeStreams(w *snapWriter, streams [][]int32) {
	w.mark() // offsets section
	off := uint32(0)
	w.u32(0)
	for _, s := range streams {
		off += uint32(len(s))
		w.u32(off)
	}
	w.align8()
	w.mark() // data section
	for _, s := range streams {
		w.i32s(s)
	}
	w.align8()
}

// ---------------------------------------------------------------------------
// Reader

type snapReader struct {
	data []byte
	off  int
}

func (r *snapReader) remaining() int { return len(r.data) - r.off }

func (r *snapReader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("xmlstore: snapshot truncated at offset %d (need %d bytes)", r.off, n)
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b, nil
}

func (r *snapReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *snapReader) align8() error {
	if rem := r.off & 7; rem != 0 {
		if _, err := r.take(8 - rem); err != nil {
			return err
		}
	}
	return nil
}

// i32s returns n int32 values. The count is bounds-checked against the
// remaining bytes before any allocation, so a hostile header cannot force a
// huge make. With aliasing enabled and an aligned cursor the returned slice
// aliases the snapshot buffer.
func (r *snapReader) i32s(n int) ([]int32, error) {
	if n < 0 || n > r.remaining()/4 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: %d int32s at offset %d", n, r.off)
	}
	b, err := r.take(n * 4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if aliasInt32() && uintptr(unsafe.Pointer(&b[0]))&3 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// stringTable reads a table of count strings; the strings alias the buffer.
func (r *snapReader) stringTable(count int) ([]string, error) {
	if count < 0 || count+1 > r.remaining()/4 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: string table of %d at offset %d", count, r.off)
	}
	offb, err := r.take((count + 1) * 4)
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	if first := binary.LittleEndian.Uint32(offb); first != 0 {
		return nil, fmt.Errorf("xmlstore: snapshot string table does not start at 0")
	}
	blobLen := binary.LittleEndian.Uint32(offb[count*4:])
	blob, err := r.take(int(blobLen))
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	out := make([]string, count)
	prev := uint32(0)
	for i := 0; i < count; i++ {
		end := binary.LittleEndian.Uint32(offb[(i+1)*4:])
		if end < prev || end > blobLen {
			return nil, fmt.Errorf("xmlstore: snapshot string table offsets out of order")
		}
		out[i] = byteString(blob[prev:end])
		prev = end
	}
	return out, nil
}

// checkRanks validates a rank stream: strictly ascending within [0, nNodes),
// so Materialize and the binary-search kernels can never index out of range
// over a corrupted snapshot.
func checkRanks(a []int32, nNodes int) error {
	prev := int32(-1)
	for _, v := range a {
		if v <= prev || int(v) >= nNodes {
			return fmt.Errorf("xmlstore: snapshot rank stream not ascending in range")
		}
		prev = v
	}
	return nil
}

// mergedStream reads one merged rank stream of length n, validating order
// and range. Streams within a section are each followed by alignment.
func (r *snapReader) mergedStream(n, nNodes int) ([]int32, error) {
	a, err := r.i32s(n)
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	if err := checkRanks(a, nNodes); err != nil {
		return nil, err
	}
	return a, nil
}

// ---------------------------------------------------------------------------
// Deferred members

// memberDir is a member's parsed directory: the counts and section offsets
// that answer size and stream-length probes without loading the member.
type memberDir struct {
	nNodes, nSyms, nTexts int
	sect                  [numMemberSections + 1]int64 // member-relative starts; last = member length
}

// parseMemberDir validates the fixed directory prefix of a member: counts,
// then a monotonic 8-aligned section table whose last entry is the member
// length. Every later probe indexes l.data inside [sect[k], sect[k+1])
// ranges this function bounded, so a corrupt directory can redirect probes
// only inside the member's own bytes.
func parseMemberDir(data []byte, d *memberDir) error {
	if len(data) < memberDirSize {
		return fmt.Errorf("xmlstore: snapshot member truncated: %d bytes, directory needs %d", len(data), memberDirSize)
	}
	d.nNodes = int(binary.LittleEndian.Uint32(data[0:]))
	d.nSyms = int(binary.LittleEndian.Uint32(data[4:]))
	d.nTexts = int(binary.LittleEndian.Uint32(data[8:]))
	prev := int64(memberDirSize)
	for k := 0; k <= numMemberSections; k++ {
		off := binary.LittleEndian.Uint64(data[16+8*k:])
		if off > uint64(len(data)) || int64(off) < prev || off&7 != 0 {
			return fmt.Errorf("xmlstore: snapshot member section table corrupt (section %d at %d)", k, off)
		}
		d.sect[k] = int64(off)
		prev = int64(off)
	}
	if d.sect[numMemberSections] != int64(len(data)) {
		return fmt.Errorf("xmlstore: snapshot member is %d bytes but its section table ends at %d", len(data), d.sect[numMemberSections])
	}
	return nil
}

// expect verifies the sequential parse sits exactly at a directory-stated
// section start — the cross-check tying the two views of the member (the
// directory probes and the full parse) together.
func (d *memberDir) expect(r *snapReader, k int) error {
	if int64(r.off) != d.sect[k] {
		return fmt.Errorf("xmlstore: snapshot member section %d starts at %d, directory says %d", k, r.off, d.sect[k])
	}
	return nil
}

// lazyMember is the deferred-load state of one snapshot member: the
// member's byte range, the directory cache, and the once-gated full parse.
type lazyMember struct {
	data   []byte   // the member's bytes (directory + body), a view of the snapshot buffer
	m      *Mapping // non-nil for file-mapped snapshots (paging hints, closed check)
	off    int64    // absolute offset of the member in the snapshot file
	member int      // member position, for error attribution

	// Corpus name-table cross-check, bound at open: names[i]'s symbol in
	// this member is nameSyms[i*stride+member]. Runs inside the deferred
	// load, so each member validates its own name-table column.
	names    []string
	nameSyms []xdm.Sym
	stride   int

	dirOnce sync.Once
	dirErr  error
	dir     memberDir

	once   sync.Once
	err    error       // sticky load failure
	loaded atomic.Bool // set after a successful load (advisory fast path)
}

// memberDir parses and caches the member's directory.
func (l *lazyMember) memberDir() (*memberDir, error) {
	l.dirOnce.Do(func() { l.dirErr = parseMemberDir(l.data, &l.dir) })
	if l.dirErr != nil {
		return nil, l.dirErr
	}
	return &l.dir, nil
}

// streamLen answers a stream-length probe from the directory: two u32 reads
// from the stream's offset section. ok=false when the directory cannot
// prove an answer (corrupt, or symbol out of the member's range) — the
// caller must then treat the stream as possibly non-empty.
func (l *lazyMember) streamLen(s xdm.Sym, attr bool) (int, bool) {
	d, err := l.memberDir()
	if err != nil || s < 0 || int(s) >= d.nSyms {
		return 0, false
	}
	sec := secElemOff
	if attr {
		sec = secAttrOff
	}
	base := d.sect[sec]
	if base+int64(d.nSyms+1)*4 > d.sect[sec+1] {
		return 0, false
	}
	a := binary.LittleEndian.Uint32(l.data[base+int64(s)*4:])
	b := binary.LittleEndian.Uint32(l.data[base+int64(s)*4+4:])
	if b < a {
		return 0, false
	}
	return int(b - a), true
}

// Ensure forces the member's deferred parse + structural validation; a
// no-op on loaded members and eagerly built indexes. The first error is
// sticky: every later Ensure returns it, and the member's tree is poisoned
// to an empty placeholder so pointer navigation cannot fault.
func (ix *Index) Ensure() error {
	l := ix.lazy
	if l == nil {
		return nil
	}
	l.once.Do(func() {
		l.err = ix.loadDeferred()
		if l.err == nil {
			l.loaded.Store(true)
		}
	})
	return l.err
}

// Loaded reports whether the member's columns are resident (always true for
// eagerly built indexes). Advisory: a concurrent Ensure may complete at any
// moment.
func (ix *Index) Loaded() bool {
	l := ix.lazy
	return l == nil || l.loaded.Load()
}

// NumNodes returns the member's node count — from the section directory on
// deferred members, so corpus-level accounting never forces loads.
func (ix *Index) NumNodes() int {
	if l := ix.lazy; l != nil && !l.loaded.Load() {
		if d, err := l.memberDir(); err == nil {
			return d.nNodes
		}
		return 0
	}
	return ix.Tree.CountNodes()
}

// StreamLen returns the length of the element (attr=false) or attribute
// (attr=true) rank stream for symbol s. On a deferred member it answers
// from the section directory — touching only the directory and offset-table
// pages, never forcing the load — which is what the corpus fan-out's
// per-member skip test needs: proving a stream empty must not cost a member
// parse. ok=false means no cheap proof exists; treat the stream as
// possibly non-empty.
func (ix *Index) StreamLen(s xdm.Sym, attr bool) (int, bool) {
	l := ix.lazy
	if l == nil || l.loaded.Load() {
		if attr {
			return len(ix.AttributeRanksSym(s)), true
		}
		return len(ix.ElementRanksSym(s)), true
	}
	return l.streamLen(s, attr)
}

// Prefetch asks the OS to start paging in a deferred member's bytes
// (madvise WILLNEED) — the corpus fan-out calls it when the skip test
// admits a member, so the load that follows faults against pages already in
// flight. No-op for loaded members and non-mapped snapshots.
func (ix *Index) Prefetch() {
	if l := ix.lazy; l != nil && l.m != nil && !l.loaded.Load() {
		l.m.AdviseWillNeed(l.off, len(l.data))
	}
}

// loadDeferred runs the member's full parse + validation (once, under the
// Ensure gate). A closed mapping fails with ErrSnapshotClosed before any
// page is touched.
func (ix *Index) loadDeferred() error {
	l := ix.lazy
	if l.m != nil {
		if _, err := l.m.Bytes(); err != nil {
			return err
		}
		// The parse walks the member front to back exactly once.
		l.m.AdviseSequential(l.off, len(l.data))
		defer l.m.AdviseNormal(l.off, len(l.data))
	}
	d, err := l.memberDir()
	if err != nil {
		return fmt.Errorf("xmlstore: snapshot member %d: %w", l.member, err)
	}
	r := &snapReader{data: l.data, off: memberDirSize}
	if err := ix.readMemberInto(r, d); err != nil {
		return fmt.Errorf("xmlstore: snapshot member %d: %w", l.member, err)
	}
	return nil
}

// readMemberInto parses the member body into the index's shell tree,
// cross-checking every section start against the directory. All structural
// validation of v2 lives on: rank streams ascending in range, columns
// validated by FillColumns, the corpus name-table column checked against
// the member's symbols.
func (ix *Index) readMemberInto(r *snapReader, d *memberDir) error {
	if err := d.expect(r, secSymbols); err != nil {
		return err
	}
	names, err := r.stringTable(d.nSyms)
	if err != nil {
		return err
	}
	syms, err := xdm.NewSymbols(names)
	if err != nil {
		return err
	}
	// Validate this member's corpus name-table column before anything is
	// installed on the tree, so a corrupt cell cannot alias one name's
	// stream to another's.
	if l := ix.lazy; l != nil {
		for i, name := range l.names {
			sym := l.nameSyms[i*l.stride+l.member]
			if sym == xdm.NoSym {
				continue
			}
			if int(sym) >= syms.Len() || syms.Name(sym) != name {
				return fmt.Errorf("xmlstore: snapshot name table cell (%q) does not match the member's symbols", name)
			}
		}
	}
	n := d.nNodes
	cols := &xdm.Cols{}
	colSecs := []struct {
		sec int
		dst *[]int32
	}{
		{secPost, &cols.Post}, {secSize, &cols.Size}, {secLevel, &cols.Level},
		{secParent, &cols.Parent}, {secSym, &cols.Sym},
	}
	for _, c := range colSecs {
		if err := d.expect(r, c.sec); err != nil {
			return err
		}
		if *c.dst, err = r.i32s(n); err != nil {
			return err
		}
		if err := r.align8(); err != nil {
			return err
		}
	}
	if err := d.expect(r, secKind); err != nil {
		return err
	}
	kind, err := r.take(n)
	if err != nil {
		return err
	}
	cols.Kind = kind
	if err := r.align8(); err != nil {
		return err
	}
	if err := d.expect(r, secTexts); err != nil {
		return err
	}
	texts, err := r.stringTable(d.nTexts)
	if err != nil {
		return err
	}
	elemBySym, err := readStreams(r, d, secElemOff, n)
	if err != nil {
		return err
	}
	attrBySym, err := readStreams(r, d, secAttrOff, n)
	if err != nil {
		return err
	}
	if err := d.expect(r, secMerged); err != nil {
		return err
	}
	var counts [4]uint32
	for i := range counts {
		if counts[i], err = r.u32(); err != nil {
			return err
		}
	}
	allElems, err := r.mergedStream(int(counts[0]), n)
	if err != nil {
		return err
	}
	allText, err := r.mergedStream(int(counts[1]), n)
	if err != nil {
		return err
	}
	allNodes, err := r.mergedStream(int(counts[2]), n)
	if err != nil {
		return err
	}
	allAttrs, err := r.mergedStream(int(counts[3]), n)
	if err != nil {
		return err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("xmlstore: snapshot member has %d trailing bytes", r.remaining())
	}
	if err := ix.Tree.FillColumns(cols, syms, texts); err != nil {
		return err
	}
	ix.elemBySym = elemBySym
	ix.attrBySym = attrBySym
	ix.allElems = allElems
	ix.allText = allText
	ix.allNodes = allNodes
	ix.allAttrs = allAttrs
	return nil
}

// readStreams reads a per-symbol stream pair (offsets section, data
// section), returning subslices of one shared array. offSec names the
// offsets section; the data section is offSec+1.
func readStreams(r *snapReader, d *memberDir, offSec, nNodes int) ([][]int32, error) {
	if err := d.expect(r, offSec); err != nil {
		return nil, err
	}
	nsyms := d.nSyms
	if nsyms < 0 || nsyms+1 > r.remaining()/4 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: stream table of %d at offset %d", nsyms, r.off)
	}
	offb, err := r.take((nsyms + 1) * 4)
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	if first := binary.LittleEndian.Uint32(offb); first != 0 {
		return nil, fmt.Errorf("xmlstore: snapshot stream offsets do not start at 0")
	}
	if err := d.expect(r, offSec+1); err != nil {
		return nil, err
	}
	total := binary.LittleEndian.Uint32(offb[nsyms*4:])
	data, err := r.i32s(int(total))
	if err != nil {
		return nil, err
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	out := make([][]int32, nsyms)
	prev := uint32(0)
	for i := 0; i < nsyms; i++ {
		end := binary.LittleEndian.Uint32(offb[(i+1)*4:])
		if end < prev || end > total {
			return nil, fmt.Errorf("xmlstore: snapshot stream offsets out of order")
		}
		if end > prev {
			// Each symbol's stream is ascending on its own; the concatenation
			// across symbols is not.
			if err := checkRanks(data[prev:end], nNodes); err != nil {
				return nil, err
			}
			out[i] = data[prev:end:end]
		}
		prev = end
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Open entry points

// OpenCorpus deserializes a corpus snapshot held in data, loading and
// validating every member before returning — the read-all path, unchanged
// semantics from v2. It takes ownership of the buffer: the loaded trees'
// names, text values, columns and rank streams alias it (with zero-copy
// aliasing enabled), so the caller must not modify it afterwards. Corrupted
// or truncated input returns an error, never a panic — the fuzz suite holds
// the reader to that.
func OpenCorpus(data []byte) (*CorpusSnapshot, error) {
	s, err := openCorpus(data, nil)
	if err != nil {
		return nil, err
	}
	for _, ix := range s.Indexes {
		if err := ix.Ensure(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// OpenCorpusDeferred is OpenCorpus without the member loads: it validates
// the header, offset table and corpus tables in O(members), and returns
// shell members that parse and validate themselves on first use.
func OpenCorpusDeferred(data []byte) (*CorpusSnapshot, error) {
	return openCorpus(data, nil)
}

// OpenCorpusMapping opens a deferred corpus over a file mapping: the O(open)
// mmap path. Member bytes fault in per page as queries touch them; the
// returned snapshot holds the mapping (Mapping accessor) but does not close
// it — the owner (the collection layer's Corpus.Close) does.
func OpenCorpusMapping(m *Mapping) (*CorpusSnapshot, error) {
	data, err := m.Bytes()
	if err != nil {
		return nil, err
	}
	s, err := openCorpus(data, m)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func openCorpus(data []byte, mp *Mapping) (*CorpusSnapshot, error) {
	r := &snapReader{data: data}
	head, err := r.take(8)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: snapshot header: %w", err)
	}
	if string(head[:4]) != snapshotMagic {
		return nil, fmt.Errorf("xmlstore: not a snapshot file")
	}
	if head[4] != snapshotVersion {
		return nil, fmt.Errorf("xmlstore: unsupported snapshot version %d (this build reads version %d)", head[4], snapshotVersion)
	}
	nMembers, err := r.u32()
	if err != nil {
		return nil, err
	}
	nNames, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(nMembers)+1 > int64(r.remaining())/8 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: offset table of %d members", nMembers)
	}
	offb, err := r.take((int(nMembers) + 1) * 8)
	if err != nil {
		return nil, err
	}
	memberOff := make([]int64, int(nMembers)+1)
	for i := range memberOff {
		v := binary.LittleEndian.Uint64(offb[i*8:])
		if v > uint64(len(data)) || v&7 != 0 || (i > 0 && int64(v) < memberOff[i-1]) {
			return nil, fmt.Errorf("xmlstore: snapshot member offset table corrupt (entry %d = %d)", i, v)
		}
		memberOff[i] = int64(v)
	}
	// The offset table's end entry pins the file length: a shrunk or
	// truncated file fails here, at open, instead of faulting mid-query.
	if memberOff[len(memberOff)-1] != int64(len(data)) {
		return nil, fmt.Errorf("xmlstore: snapshot is %d bytes but its offset table ends at %d (truncated?)", len(data), memberOff[len(memberOff)-1])
	}
	s := &CorpusSnapshot{mapping: mp}
	if s.URIs, err = r.stringTable(int(nMembers)); err != nil {
		return nil, err
	}
	if s.Names, err = r.stringTable(int(nNames)); err != nil {
		return nil, err
	}
	cells := int64(nNames) * int64(nMembers)
	if cells > int64(r.remaining())/4 {
		return nil, fmt.Errorf("xmlstore: snapshot truncated: name table of %d cells", cells)
	}
	flat, err := r.i32s(int(cells))
	if err != nil {
		return nil, err
	}
	if len(flat) > 0 {
		s.NameSyms = unsafe.Slice((*xdm.Sym)(unsafe.Pointer(&flat[0])), len(flat))
	}
	if err := r.align8(); err != nil {
		return nil, err
	}
	if int64(r.off) != memberOff[0] {
		return nil, fmt.Errorf("xmlstore: snapshot corpus tables end at %d but the first member starts at %d", r.off, memberOff[0])
	}
	s.Indexes = make([]*Index, int(nMembers))
	for m := range s.Indexes {
		lm := &lazyMember{
			data:     data[memberOff[m]:memberOff[m+1]:memberOff[m+1]],
			m:        mp,
			off:      memberOff[m],
			member:   m,
			names:    s.Names,
			nameSyms: s.NameSyms,
			stride:   int(nMembers),
		}
		ix := &Index{lazy: lm}
		ix.Tree = xdm.NewShellTree(ix.Ensure)
		s.Indexes[m] = ix
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Single-document entry points (one-member corpora)

// WriteSnapshot serializes a single document with its index: a one-member
// corpus snapshot with an empty corpus name table.
func WriteSnapshot(w io.Writer, ix *Index) error {
	return WriteCorpus(w, &CorpusSnapshot{URIs: []string{""}, Indexes: []*Index{ix}})
}

// ReadSnapshot deserializes a single-document snapshot written by
// WriteSnapshot, returning the member's ready index (no region or index
// rebuild). The reader's bytes are consumed into a private buffer.
func ReadSnapshot(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: %w", err)
	}
	s, err := OpenCorpus(data)
	if err != nil {
		return nil, err
	}
	if len(s.Indexes) != 1 {
		return nil, fmt.Errorf("xmlstore: snapshot holds %d members; use OpenCorpus for corpora", len(s.Indexes))
	}
	return s.Indexes[0], nil
}
