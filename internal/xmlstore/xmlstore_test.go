package xmlstore

import (
	"strings"
	"testing"

	"xqtp/internal/xdm"
)

const sampleXML = `<a id="1">
  <b><c>hello</c></b>
  <b x="y"><d/></b>
  <c>world &amp; more</c>
</a>`

func TestParseRoundTrip(t *testing.T) {
	tr, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.DocElem()
	if a.Name != "a" || len(a.Attrs) != 1 || a.Attrs[0].Text != "1" {
		t.Fatalf("root parsed wrong: %v", a)
	}
	if got := len(xdm.Step(a, xdm.AxisChild, xdm.StarTest())); got != 3 {
		t.Fatalf("root has %d element children, want 3", got)
	}
	cs := xdm.Step(a, xdm.AxisChild, xdm.NameTest("c"))
	if len(cs) != 1 || cs[0].StringValue() != "world & more" {
		t.Fatalf("entity not decoded: %v", cs)
	}
	// Round trip: serialize and reparse; same structure.
	out := SerializeString(tr.Root)
	tr2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse of %q: %v", out, err)
	}
	if tr2.CountNodes() != tr.CountNodes() {
		t.Errorf("round trip node count %d != %d (serialized: %s)", tr2.CountNodes(), tr.CountNodes(), out)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a><b></a>", "<a/><b/>", "text only"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestParseMixedAndWhitespace(t *testing.T) {
	tr, err := ParseString("<a>  \n  <b>x</b>mid<b>y</b>\t</a>")
	if err != nil {
		t.Fatal(err)
	}
	a := tr.DocElem()
	// Whitespace-only runs dropped, "mid" preserved.
	texts := xdm.Step(a, xdm.AxisChild, xdm.TextTest())
	if len(texts) != 1 || texts[0].Text != "mid" {
		t.Errorf("mixed content handling wrong: %v", texts)
	}
	if a.StringValue() != "xmidy" {
		t.Errorf("string value = %q", a.StringValue())
	}
}

func TestIndexStreams(t *testing.T) {
	tr, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(tr)
	bs := ix.ElementStream(xdm.NameTest("b"))
	if len(bs) != 2 {
		t.Fatalf("b stream has %d entries", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Pre >= bs[i].Pre {
			t.Fatal("stream not sorted by pre")
		}
	}
	if got := len(ix.ElementStream(xdm.StarTest())); got != 6 {
		t.Errorf("element stream * has %d entries, want 6", got)
	}
	if got := len(ix.ElementStream(xdm.TextTest())); got != 2 {
		t.Errorf("text stream has %d entries, want 2", got)
	}
	if got := len(ix.AttributeStream(xdm.NameTest("id"))); got != 1 {
		t.Errorf("@id stream has %d entries, want 1", got)
	}
	if got := len(ix.AttributeStream(xdm.StarTest())); got != 2 {
		t.Errorf("@* stream has %d entries, want 2", got)
	}
	node := ix.ElementStream(xdm.AnyNodeTest())
	if len(node) != 8 { // 6 elements + 2 texts
		t.Errorf("node() stream has %d entries, want 8", len(node))
	}
	for i := 1; i < len(node); i++ {
		if node[i-1].Pre >= node[i].Pre {
			t.Fatal("node() stream not merged in pre order")
		}
	}
	if tags := ix.Tags(); strings.Join(tags, ",") != "a,b,c,d" {
		t.Errorf("Tags = %v", tags)
	}
}

func TestRegionRanks(t *testing.T) {
	tr, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(tr)
	a := tr.DocElem()
	bs := xdm.Step(a, xdm.AxisChild, xdm.NameTest("b"))
	cs := ix.ElementRanks(xdm.NameTest("c"))
	region := func(n *xdm.Node) []int32 {
		return RegionRanks(cs, int32(n.Pre), int32(n.End()))
	}
	// c nodes inside the first b.
	csInB := tr.Materialize(region(bs[0]))
	if len(csInB) != 1 || csInB[0].StringValue() != "hello" {
		t.Errorf("RegionRanks(c, b1) = %v", csInB)
	}
	// No c inside the second b.
	if got := region(bs[1]); len(got) != 0 {
		t.Errorf("RegionRanks(c, b2) = %v", got)
	}
	// All c inside a.
	if got := region(a); len(got) != 2 {
		t.Errorf("RegionRanks(c, a) = %v", got)
	}
	if got := RegionCount(cs, int32(a.Pre), int32(a.End())); got != 2 {
		t.Errorf("RegionCount(c, a) = %d", got)
	}
}
