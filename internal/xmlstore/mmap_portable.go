//go:build nommap || (!linux && !darwin)

package xmlstore

import (
	"io"
	"os"
)

// mapFile on targets without mmap support (or under -tags nommap) reads the
// whole file into the heap. Same interface, eager paging: the Mapping then
// behaves exactly like the read-all loader, which keeps every code path
// above this file portable.
func mapFile(f *os.File, _ int) ([]byte, bool, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmap(data []byte) error { return nil }

func madviseRange(b []byte, kind int) {}
