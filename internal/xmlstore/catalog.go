package xmlstore

import (
	"sync"

	"xqtp/internal/xdm"
)

// Catalog is a concurrency-safe document→index store: each tree's index is
// built exactly once, no matter how many goroutines ask for it
// concurrently. A catalog shared between a Document and every engine that
// queries it is what makes the serving path index-once — Run can be called
// from many goroutines with zero per-run index work.
//
// Catalogs hold strong references to their trees; they are meant to live
// with the documents they index (a Document owns one), not as a process-wide
// registry of transient trees. The zero value is ready to use.
type Catalog struct {
	m sync.Map // *xdm.Tree -> *catalogEntry
}

type catalogEntry struct {
	once sync.Once
	ix   *Index
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{} }

// Index returns the index for t, building it on first request. Concurrent
// callers for the same tree block on one build and share its result.
func (c *Catalog) Index(t *xdm.Tree) *Index {
	v, ok := c.m.Load(t)
	if !ok {
		v, _ = c.m.LoadOrStore(t, &catalogEntry{})
	}
	e := v.(*catalogEntry)
	e.once.Do(func() { e.ix = BuildIndex(t) })
	return e.ix
}

// Register installs a prebuilt index. If the tree is already cataloged the
// existing index wins (indexes over the same tree are interchangeable).
func (c *Catalog) Register(ix *Index) {
	v, ok := c.m.Load(ix.Tree)
	if !ok {
		v, _ = c.m.LoadOrStore(ix.Tree, &catalogEntry{})
	}
	e := v.(*catalogEntry)
	e.once.Do(func() { e.ix = ix })
}

// Drop removes a tree's index (e.g. when a document is unloaded).
func (c *Catalog) Drop(t *xdm.Tree) { c.m.Delete(t) }

// Len returns the number of cataloged documents.
func (c *Catalog) Len() int {
	n := 0
	c.m.Range(func(_, _ any) bool { n++; return true })
	return n
}
