package xmlstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func writeTempSnapshot(t *testing.T, docs, uris []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.xqts")
	if err := os.WriteFile(path, fuzzSeedSnapshot(docs, uris), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMapFileRoundTrip(t *testing.T) {
	path := writeTempSnapshot(t,
		[]string{`<a id="1"><b>one</b></a>`, `<c><d x="y">two</d></c>`},
		[]string{"one.xml", "two.xml"})
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != len(want) {
		t.Fatalf("mapped %d bytes, want %d", m.Len(), len(want))
	}
	got, err := m.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mapped bytes differ from file contents")
	}
	if m.Path() != path {
		t.Fatalf("Path() = %q, want %q", m.Path(), path)
	}
	// The advise hints must be safe on any range, aligned or not.
	m.AdviseSequential(3, m.Len()-3)
	m.AdviseWillNeed(0, m.Len())
	m.AdviseNormal(0, m.Len())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMapFileCloseSemantics(t *testing.T) {
	path := writeTempSnapshot(t, []string{`<a/>`}, []string{"a.xml"})
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := m.Close(); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("second Close = %v, want ErrSnapshotClosed", err)
	}
	if _, err := m.Bytes(); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("Bytes after Close = %v, want ErrSnapshotClosed", err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len after Close = %d, want 0", m.Len())
	}
	if m.Mapped() {
		t.Fatal("Mapped true after Close")
	}
	// Hints and Resident after Close must be inert, not fault.
	m.AdviseWillNeed(0, 100)
	if _, ok := m.Resident(); ok {
		t.Fatal("Resident reported ok after Close")
	}
}

func TestMapFileMissing(t *testing.T) {
	if _, err := MapFile(filepath.Join(t.TempDir(), "no-such-file")); err == nil {
		t.Fatal("MapFile on a missing file should fail")
	}
}

func TestMapFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", m.Len())
	}
	if m.Mapped() {
		t.Fatal("empty file should not report a live mapping")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMapFileResident(t *testing.T) {
	path := writeTempSnapshot(t,
		[]string{`<a id="1"><b>one</b><b>two</b><b>three</b></a>`},
		[]string{"a.xml"})
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res, ok := m.Resident()
	if runtime.GOOS != "linux" || !m.Mapped() {
		if ok {
			t.Fatalf("Resident reported ok on %s (mapped=%v)", runtime.GOOS, m.Mapped())
		}
		return
	}
	if !ok {
		t.Fatal("Resident not reported on linux")
	}
	page := int64(os.Getpagesize())
	if res < 0 || res > int64(m.Len())+page {
		t.Fatalf("Resident = %d, outside [0, %d]", res, int64(m.Len())+page)
	}
	// Touch every byte: the whole mapping must now be resident.
	data, err := m.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	sum := byte(0)
	for _, b := range data {
		sum += b
	}
	_ = sum
	res, ok = m.Resident()
	if !ok || res < int64(m.Len())-page {
		t.Fatalf("after touching all pages Resident = %d (ok=%v), want ~%d", res, ok, m.Len())
	}
}
