package xmlstore

import (
	"bytes"
	"strings"
	"testing"

	"xqtp/internal/gen"
	"xqtp/internal/xdm"
)

// The differential contract of the ingest fast path: for every input that
// ParseStd (the encoding/xml reference) accepts, the scanner must accept it
// too and produce a bit-identical tree — same nodes in preorder, same
// symbol table, same columns — and Ingest's fused index must equal a
// BuildIndex run over the finished tree. The scanner may additionally
// accept inputs ParseStd rejects (it is non-validating); it must never
// reject what ParseStd accepts.

// requireTreesEqual compares two trees node for node and column for column.
func requireTreesEqual(t *testing.T, want, got *xdm.Tree) {
	t.Helper()
	if want.CountNodes() != got.CountNodes() {
		t.Fatalf("node count: fast %d, std %d", got.CountNodes(), want.CountNodes())
	}
	if want.Syms.Len() != got.Syms.Len() {
		t.Fatalf("symbol count: fast %d, std %d", got.Syms.Len(), want.Syms.Len())
	}
	for s := 0; s < want.Syms.Len(); s++ {
		if want.Syms.Name(xdm.Sym(s)) != got.Syms.Name(xdm.Sym(s)) {
			t.Fatalf("symbol %d: fast %q, std %q", s, got.Syms.Name(xdm.Sym(s)), want.Syms.Name(xdm.Sym(s)))
		}
	}
	for pre := range want.Nodes {
		w, g := want.Nodes[pre], got.Nodes[pre]
		if w.Kind != g.Kind || w.Name != g.Name || w.Text != g.Text || w.Sym != g.Sym {
			t.Fatalf("pre %d: fast {kind=%v name=%q text=%q sym=%d}, std {kind=%v name=%q text=%q sym=%d}",
				pre, g.Kind, g.Name, g.Text, g.Sym, w.Kind, w.Name, w.Text, w.Sym)
		}
		if w.Pre != g.Pre || w.Post != g.Post || w.Size != g.Size || w.Level != g.Level {
			t.Fatalf("pre %d: encoding fast (post=%d size=%d level=%d), std (post=%d size=%d level=%d)",
				pre, g.Post, g.Size, g.Level, w.Post, w.Size, w.Level)
		}
		wp, gp := -1, -1
		if w.Parent != nil {
			wp = w.Parent.Pre
		}
		if g.Parent != nil {
			gp = g.Parent.Pre
		}
		if wp != gp {
			t.Fatalf("pre %d: parent fast %d, std %d", pre, gp, wp)
		}
		if len(w.Children) != len(g.Children) || len(w.Attrs) != len(g.Attrs) {
			t.Fatalf("pre %d: fast %d children/%d attrs, std %d children/%d attrs",
				pre, len(g.Children), len(g.Attrs), len(w.Children), len(w.Attrs))
		}
		for i := range w.Children {
			if w.Children[i].Pre != g.Children[i].Pre {
				t.Fatalf("pre %d child %d: fast %d, std %d", pre, i, g.Children[i].Pre, w.Children[i].Pre)
			}
		}
		for i := range w.Attrs {
			if w.Attrs[i].Pre != g.Attrs[i].Pre {
				t.Fatalf("pre %d attr %d: fast %d, std %d", pre, i, g.Attrs[i].Pre, w.Attrs[i].Pre)
			}
		}
		if g.Doc != got {
			t.Fatalf("pre %d: Doc pointer not set", pre)
		}
	}
	wc, gc := want.Cols, got.Cols
	for pre := range want.Nodes {
		if wc.Post[pre] != gc.Post[pre] || wc.Size[pre] != gc.Size[pre] ||
			wc.Level[pre] != gc.Level[pre] || wc.Parent[pre] != gc.Parent[pre] ||
			wc.Kind[pre] != gc.Kind[pre] || wc.Sym[pre] != gc.Sym[pre] {
			t.Fatalf("pre %d: column mismatch fast(post=%d size=%d level=%d parent=%d kind=%d sym=%d) std(post=%d size=%d level=%d parent=%d kind=%d sym=%d)",
				pre, gc.Post[pre], gc.Size[pre], gc.Level[pre], gc.Parent[pre], gc.Kind[pre], gc.Sym[pre],
				wc.Post[pre], wc.Size[pre], wc.Level[pre], wc.Parent[pre], wc.Kind[pre], wc.Sym[pre])
		}
	}
}

// requireIndexesEqual compares a fused index against a reference, rank
// stream for rank stream.
func requireIndexesEqual(t *testing.T, want, got *Index) {
	t.Helper()
	requireStreams := func(label string, w, g []int32) {
		t.Helper()
		if len(w) != len(g) {
			t.Fatalf("%s: fast has %d ranks, reference %d", label, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s[%d]: fast %d, reference %d", label, i, g[i], w[i])
			}
		}
	}
	if len(want.elemBySym) != len(got.elemBySym) || len(want.attrBySym) != len(got.attrBySym) {
		t.Fatalf("per-symbol table sizes: fast %d/%d, reference %d/%d",
			len(got.elemBySym), len(got.attrBySym), len(want.elemBySym), len(want.attrBySym))
	}
	for s := range want.elemBySym {
		requireStreams("elem sym "+want.Tree.Syms.Name(xdm.Sym(s)), want.elemBySym[s], got.elemBySym[s])
	}
	for s := range want.attrBySym {
		requireStreams("attr sym "+want.Tree.Syms.Name(xdm.Sym(s)), want.attrBySym[s], got.attrBySym[s])
	}
	requireStreams("allElems", want.allElems, got.allElems)
	requireStreams("allText", want.allText, got.allText)
	requireStreams("allNodes", want.allNodes, got.allNodes)
	requireStreams("allAttrs", want.allAttrs, got.allAttrs)
}

// differentialCorpus exercises the scanner against ParseStd: every entry is
// accepted by encoding/xml.
var differentialCorpus = []string{
	`<a/>`,
	`<a></a>`,
	`<doc><person><name>Ann</name><emailaddress/></person></doc>`,
	`<p>one<b>two</b> three</p>`,
	"<a>\n  <b/>\n  <c>x</c>\n</a>",
	"<a>\u00a0</a>", // NBSP: Unicode whitespace-only text is dropped
	"<a>\ufeff</a>", // ZWNBSP is not TrimSpace whitespace: kept
	"<a>\t \n</a>",  // ASCII whitespace-only: dropped
	`<a><![CDATA[<not>&markup;]]></a>`,
	`<a>pre<![CDATA[mid]]>post</a>`, // CDATA splits the run into 3 text nodes
	`<a>  <![CDATA[]]>  </a>`,
	`<a><![CDATA[x]]><![CDATA[y]]></a>`,
	`<a>&lt;&gt;&amp;&apos;&quot;</a>`,
	`<a>&#65;&#x41;&#x1F600;&#x00000041;</a>`,
	`<a b="x&amp;y&#10;z" c="&quot;q&apos;"/>`,
	"<a>line1\r\nline2\rline3</a>", // \r\n and \r normalize to \n
	"<a b=\"v1\r\nv2\rv3\"/>",
	"<a><![CDATA[x\r\ny\rz]]></a>", // normalization applies inside CDATA too
	`<a>x<!-- comment -->y</a>`,    // comment splits the run into 2 text nodes
	`<a><!-- only --></a>`,
	`<?xml version="1.0" encoding="UTF-8"?><a><?pi data?>t</a>`,
	`<!DOCTYPE doc [<!ELEMENT doc (#PCDATA)> <!-- c --> ]><doc>x</doc>`,
	`<a xmlns="u" xmlns:p="v" p:attr="w" regular="r"><p:b p:c="1"/></a>`,
	`<a xmlns:z="xmlns" z:b="1"/>`, // z resolves to the xmlns space: dropped
	`<a xmlns:z="xmlns"><b z:c="1"/><z:d/></a>`,
	`<a xmlns:z="xmlns"><b xmlns:z="other" z:c="1"/><c z:d="1"/></a>`, // shadowing
	`<a z:b="1" xmlns:z="xmlns"/>`,                                    // declaration after use, same tag
	`<a p:xmlns="v"/>`,                                                // not a declaration: kept (local name xmlns)
	`<a xmlns:="v"/>`,                                                 // trailing colon does not split: kept
	`<a b="1" b="2"/>`,                                                // duplicate attributes are both kept
	"<a  b = '1'\tc\n=\n\"2\" />",
	`<a></a >`,
	`<root><mid><deep attr="x">t1</deep></mid>tail</root>`,
	`<a><b/><b></b><b>x</b></a>`,
	`<a>t1<b>t2</b>t3<b/>t4</a>`,
}

// TestFastVsStdCorpus checks the scanner node for node against ParseStd on
// the handwritten corpus, and the fused index rank for rank against
// BuildIndex.
func TestFastVsStdCorpus(t *testing.T) {
	for _, doc := range differentialCorpus {
		t.Run("", func(t *testing.T) {
			want, err := ParseStd(strings.NewReader(doc))
			if err != nil {
				t.Fatalf("ParseStd rejected corpus entry %q: %v", doc, err)
			}
			got, err := ParseString(doc)
			if err != nil {
				t.Fatalf("fast parser rejected %q accepted by ParseStd: %v", doc, err)
			}
			requireTreesEqual(t, want, got)
			ix, err := IngestString(doc)
			if err != nil {
				t.Fatalf("Ingest rejected %q: %v", doc, err)
			}
			requireTreesEqual(t, want, ix.Tree)
			requireIndexesEqual(t, BuildIndex(ix.Tree), ix)
		})
	}
}

// TestFastVsStdGenerated runs the differential check over serialized
// MemBeR, XMark, and deep generated documents — the benchmark workloads.
func TestFastVsStdGenerated(t *testing.T) {
	docs := map[string][]byte{
		"member": AppendXML(nil, gen.MemberRoot(gen.MemberConfig{Seed: 7, Depth: 4, NumTags: 100, NumNodes: 20000})),
		"xmark":  AppendXML(nil, gen.XMarkRoot(gen.XMarkConfig{Seed: 7, People: 200})),
		"deep":   AppendXML(nil, gen.DeepRoot(7, 5000, 15, "t1")),
	}
	for name, data := range docs {
		t.Run(name, func(t *testing.T) {
			want, err := ParseStd(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("ParseStd: %v", err)
			}
			ix, err := Ingest(data)
			if err != nil {
				t.Fatalf("Ingest: %v", err)
			}
			requireTreesEqual(t, want, ix.Tree)
			requireIndexesEqual(t, BuildIndex(ix.Tree), ix)
		})
	}
}

// TestMalformedRejected checks that both parsers reject malformed input
// with an xmlstore:-prefixed error.
func TestMalformedRejected(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"empty", ""},
		{"whitespace only", "  \n\t "},
		{"text only", "hello"},
		{"unterminated root", "<a>"},
		{"unterminated nested", "<a><b></b>"},
		{"mismatched close", "<a><b></a>"},
		{"stray end", "</x>"},
		{"stray end after root", "<a/></x>"},
		{"multiple roots", "<a/><b/>"},
		{"unquoted attr", "<a b=c/>"},
		{"attr without value", "<a b/>"},
		{"bad self close", "<a/ >"},
		{"junk in end tag", "<a></a junk>"},
		{"unknown entity", "<a>&unknown;</a>"},
		{"empty charref", "<a>&#;</a>"},
		{"bare ampersand run", "<a>x & y</a>"},
		{"unterminated comment", "<a><!-- never"},
		{"unterminated cdata", "<a><![CDATA[x"},
		{"unterminated pi", "<a><?pi x"},
		{"unterminated tag", "<a b=\"1\""},
		{"lone angle", "<"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseStd(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("ParseStd accepted %q", tc.doc)
			} else if !strings.HasPrefix(err.Error(), "xmlstore:") {
				t.Fatalf("ParseStd error not xmlstore-prefixed: %v", err)
			}
			if _, err := ParseString(tc.doc); err == nil {
				t.Fatalf("fast parser accepted %q", tc.doc)
			} else if !strings.HasPrefix(err.Error(), "xmlstore:") {
				t.Fatalf("fast parser error not xmlstore-prefixed: %v", err)
			}
		})
	}
}

// TestXmlnsDropSymmetry pins the namespace-declaration handling both
// parsers share: declarations are dropped, lookalikes are kept.
func TestXmlnsDropSymmetry(t *testing.T) {
	cases := []struct {
		doc       string
		wantAttrs []string // names of the root's surviving attributes, in order
	}{
		{`<a xmlns="u"/>`, nil},
		{`<a xmlns:p="u"/>`, nil},
		{`<a xmlns="u" keep="1"/>`, []string{"keep"}},
		{`<a p:xmlns="v"/>`, []string{"xmlns"}},
		{`<a xmlns:="v"/>`, []string{"xmlns:"}},
		{`<a Xmlns="v"/>`, []string{"Xmlns"}},
		{`<a xmlns:z="xmlns" z:b="1" keep="2"/>`, []string{"keep"}},
		{`<a z:b="1" xmlns:z="xmlns"/>`, nil},
		{`<a xmlns:z="other" z:b="1"/>`, []string{"b"}},
	}
	for _, tc := range cases {
		for _, parse := range []struct {
			label string
			fn    func(string) (*xdm.Tree, error)
		}{{"std", ParseStdString}, {"fast", ParseString}} {
			tr, err := parse.fn(tc.doc)
			if err != nil {
				t.Fatalf("%s rejected %q: %v", parse.label, tc.doc, err)
			}
			root := tr.Root.Children[0]
			var names []string
			for _, a := range root.Attrs {
				names = append(names, a.Name)
			}
			if len(names) != len(tc.wantAttrs) {
				t.Fatalf("%s on %q: attrs %v, want %v", parse.label, tc.doc, names, tc.wantAttrs)
			}
			for i := range names {
				if names[i] != tc.wantAttrs[i] {
					t.Fatalf("%s on %q: attrs %v, want %v", parse.label, tc.doc, names, tc.wantAttrs)
				}
			}
		}
	}
}

// FuzzScanVsStd fuzzes the differential contract: whenever ParseStd accepts
// an input, the fast scanner must accept it and produce an identical tree
// and index.
func FuzzScanVsStd(f *testing.F) {
	for _, doc := range differentialCorpus {
		f.Add([]byte(doc))
	}
	f.Add([]byte("<a>&#xD;&#13;</a>")) // charrefs escape newline normalization
	f.Add([]byte("<a><b><c/></b><b/></a>"))
	f.Add([]byte("<!DOCTYPE a SYSTEM \"x\"><a/>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		want, stdErr := ParseStd(bytes.NewReader(data))
		if stdErr != nil {
			// ParseStd rejects; the non-validating scanner may go either way.
			return
		}
		ix, err := Ingest(bytes.Clone(data))
		if err != nil {
			t.Fatalf("fast parser rejected input accepted by ParseStd: %v\ninput: %q", err, data)
		}
		requireTreesEqual(t, want, ix.Tree)
		requireIndexesEqual(t, BuildIndex(ix.Tree), ix)
	})
}
