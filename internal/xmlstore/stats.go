package xmlstore

import (
	"sync"

	"xqtp/internal/xdm"
)

// The statistics the optimizer consumes are already sitting in the index:
// every per-symbol rank stream's length is the exact occurrence count of
// that name, and the merged streams give the per-kind totals. CountFor and
// Stats expose them without any new scan over the document — the only
// derived figure is the per-symbol subtree mass (the containment-selectivity
// input), computed lazily in one pass over the streams and memoized.

// CountFor returns the exact number of nodes in the document that satisfy
// an axis step's node test — the length of the step's rank stream. This is
// the document-wide count; it is an upper bound on the matches of the step
// from any context node, and a zero proves the step (and any conjunctive
// pattern containing it) can never match anywhere in the document.
func (ix *Index) CountFor(axis xdm.Axis, test xdm.NodeTest) int {
	return len(ix.RanksFor(axis, test))
}

// Stats is a per-tree statistics snapshot for the cost model: exact totals
// per node kind, the tree's depth, and per-symbol occurrence counts and
// subtree masses. All counts are exact (they restate stream lengths); the
// masses are the one derived quantity, used to estimate what fraction of a
// region lies beneath the nodes of a given tag.
type Stats struct {
	Nodes      int // every node, the document node included
	Elements   int
	Attributes int
	Texts      int
	MaxDepth   int // deepest level (document node is level 0)

	// ElemCount[s] / AttrCount[s] are the exact occurrence counts of symbol
	// s as an element tag / attribute name (stream lengths, restated).
	ElemCount []int
	AttrCount []int

	// ElemMass[s] is the total subtree size (descendants + self) of every
	// element with symbol s — the containment-selectivity numerator: the
	// share of the document lying at or below tag s is ElemMass[s]/Nodes.
	// Nested same-tag elements are counted once per occurrence, so the mass
	// can exceed Nodes for recursive tags; callers clamp the fraction.
	ElemMass []int64
}

// ElemFrac returns the estimated fraction of the document's nodes lying at
// or beneath elements with symbol s, clamped to [0,1].
func (st *Stats) ElemFrac(s xdm.Sym) float64 {
	if s < 0 || int(s) >= len(st.ElemMass) || st.Nodes == 0 {
		return 0
	}
	f := float64(st.ElemMass[s]) / float64(st.Nodes)
	if f > 1 {
		return 1
	}
	return f
}

// Stats returns the tree's statistics snapshot, built on first use and
// memoized. The build is one pass over the per-symbol streams (reading the
// Size and Level columns by rank), not a walk of the tree.
func (ix *Index) Stats() *Stats {
	ix.statsOnce.Do(func() {
		// A deferred member must be loaded before its columns exist. The
		// planner only reaches Stats after a successful Prepare (which
		// Ensured the member), so a failure here means a direct caller on a
		// corrupt member: memoize zero stats, the query error surfaces
		// through the prepare path.
		if err := ix.Ensure(); err != nil {
			ix.stats = &Stats{}
			return
		}
		cols := ix.Tree.Cols
		st := &Stats{
			Nodes:     len(cols.Kind),
			Elements:  len(ix.allElems),
			Texts:     len(ix.allText),
			ElemCount: make([]int, len(ix.elemBySym)),
			AttrCount: make([]int, len(ix.attrBySym)),
			ElemMass:  make([]int64, len(ix.elemBySym)),
		}
		for _, stream := range ix.attrBySym {
			st.Attributes += len(stream)
		}
		for s, stream := range ix.elemBySym {
			st.ElemCount[s] = len(stream)
			var mass int64
			for _, r := range stream {
				mass += int64(cols.Size[r]) + 1
			}
			st.ElemMass[s] = mass
		}
		for s, stream := range ix.attrBySym {
			st.AttrCount[s] = len(stream)
		}
		for _, lvl := range cols.Level {
			if int(lvl) > st.MaxDepth {
				st.MaxDepth = int(lvl)
			}
		}
		ix.stats = st
	})
	return ix.stats
}

// statsState is embedded in Index so the zero value of every construction
// site (BuildIndex, the fused ingester, the snapshot loader) lazily builds
// the snapshot on first use.
type statsState struct {
	statsOnce sync.Once
	stats     *Stats
}
