package xmlstore

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"unsafe"
)

// ErrSnapshotClosed reports use of a snapshot mapping (or a corpus or
// document built over one) after Close. Every layer above returns this same
// value, so errors.Is works regardless of which entry point hit the closed
// store.
var ErrSnapshotClosed = errors.New("xmlstore: snapshot is closed")

// Mapping is a read-only view of a snapshot file. On Unix-like hosts (and
// without the nommap build tag) the view is an mmap of the file: opening
// costs the map syscall only, bytes fault in on first touch, and the page
// cache — not the Go heap — holds the data, so corpora larger than RAM stay
// queryable. On other targets, or under -tags nommap, the same type reads
// the whole file into memory; callers cannot tell the difference except
// through Mapped.
//
// The mapping owns the file's resources: the fd is closed right after
// mapping (the mapping itself keeps the pages alive), and Close releases
// the pages. After Close, Bytes returns ErrSnapshotClosed; slices handed
// out before Close must no longer be used (the same contract as os.File —
// closing a store while queries are in flight is a caller bug, not a
// checked condition).
type Mapping struct {
	mu     sync.RWMutex
	data   []byte
	mapped bool // data is an mmap view (munmap on Close), not a heap copy
	closed bool
	path   string
}

// MapFile maps the file at path read-only. The file's length is fixed at
// map time; a file that later shrinks on disk can still SIGBUS a mapped
// reader on Unix — snapshots are immutable by contract, and the open-time
// length validation (OpenCorpusMapping) rejects files already shorter than
// their offset table claims.
func MapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{path: path}, nil
	}
	if size != int64(int(size)) || size < 0 {
		return nil, fmt.Errorf("xmlstore: snapshot %s (%d bytes) exceeds the address space", path, size)
	}
	data, mapped, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("xmlstore: map %s: %w", path, err)
	}
	return &Mapping{data: data, mapped: mapped, path: path}, nil
}

// Bytes returns the mapped view, or ErrSnapshotClosed after Close. The
// slice aliases the mapping and is invalidated by Close.
func (m *Mapping) Bytes() ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrSnapshotClosed
	}
	return m.data, nil
}

// Len returns the mapped length in bytes (0 after Close).
func (m *Mapping) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// Mapped reports whether the view is demand-paged (true) or a read-all heap
// copy (false: nommap build, unsupported OS, or an empty file).
func (m *Mapping) Mapped() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.mapped
}

// Path returns the file the mapping was opened from.
func (m *Mapping) Path() string { return m.path }

// Close unmaps the view and poisons the mapping. A second Close returns
// ErrSnapshotClosed.
func (m *Mapping) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrSnapshotClosed
	}
	m.closed = true
	data, wasMapped := m.data, m.mapped
	m.data = nil
	m.mapped = false
	if wasMapped && data != nil {
		return unmap(data)
	}
	return nil
}

// Advice values for advise.
const (
	adviseNormal = iota
	adviseSequential
	adviseWillNeed
)

// AdviseSequential hints that [off, off+n) is about to be read front to
// back — the deferred member parse, which walks every section once.
func (m *Mapping) AdviseSequential(off int64, n int) { m.advise(off, n, adviseSequential) }

// AdviseWillNeed asks the OS to start paging in [off, off+n) — the fan-out
// prefetch when the skip test admits a member that is not yet loaded.
func (m *Mapping) AdviseWillNeed(off int64, n int) { m.advise(off, n, adviseWillNeed) }

// AdviseNormal resets the kernel's readahead policy for [off, off+n).
func (m *Mapping) AdviseNormal(off int64, n int) { m.advise(off, n, adviseNormal) }

// advise page-aligns the range, clamps it to the mapping and forwards the
// hint. Hints are advisory: failures (and closed mappings) are ignored.
func (m *Mapping) advise(off int64, n int, kind int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed || !m.mapped || n <= 0 || off < 0 || off >= int64(len(m.data)) {
		return
	}
	end := off + int64(n)
	if end > int64(len(m.data)) {
		end = int64(len(m.data))
	}
	// madvise wants a page-aligned address; align the range start down to a
	// page boundary relative to the mapping base (mmap bases are aligned).
	off -= off % int64(os.Getpagesize())
	madviseRange(m.data[off:end], kind)
}

// Resident reports how many bytes of the mapped range are currently in
// physical memory, summed from /proc/self/smaps. ok is false when the view
// is not an mmap, already closed, or the platform has no smaps (non-Linux).
// This is the bench harness's page-touch meter: after a single-member query
// it shows how little of the snapshot the query actually faulted in.
func (m *Mapping) Resident() (int64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed || !m.mapped || len(m.data) == 0 || runtime.GOOS != "linux" {
		return 0, false
	}
	start := uintptr(unsafe.Pointer(&m.data[0]))
	end := start + uintptr(len(m.data))
	f, err := os.Open("/proc/self/smaps")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var total int64
	inRange := false
	found := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Map header lines read "start-end perms offset dev inode [path]";
		// attribute lines read "Key:  value kB". A first field that parses
		// as two hex numbers around a dash is a header.
		head := line
		if sp := strings.IndexByte(line, ' '); sp >= 0 {
			head = line[:sp]
		}
		if dash := strings.IndexByte(head, '-'); dash > 0 {
			lo, err1 := strconv.ParseUint(head[:dash], 16, 64)
			hi, err2 := strconv.ParseUint(head[dash+1:], 16, 64)
			if err1 == nil && err2 == nil {
				inRange = uintptr(lo) < end && uintptr(hi) > start
				found = found || inRange
				continue
			}
		}
		if inRange && strings.HasPrefix(line, "Rss:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					total += kb * 1024
				}
			}
		}
	}
	if sc.Err() != nil || !found {
		return 0, false
	}
	return total, true
}
