//go:build (linux || darwin) && !nommap

package xmlstore

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned view stays valid
// after f is closed; the second result reports that the view is a real
// mapping (unmap on Close).
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}

// madviseRange forwards a paging hint for b (page-aligned by the caller).
// Advisory only: errors are dropped.
func madviseRange(b []byte, kind int) {
	adv := syscall.MADV_NORMAL
	switch kind {
	case adviseSequential:
		adv = syscall.MADV_SEQUENTIAL
	case adviseWillNeed:
		adv = syscall.MADV_WILLNEED
	}
	_ = syscall.Madvise(b, adv)
}
