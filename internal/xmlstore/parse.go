// Package xmlstore loads XML documents into the XDM and maintains the index
// structures (per-tag and per-attribute streams sorted by preorder rank)
// that the set-at-a-time tree-pattern algorithms scan. The serving entry
// points (Parse, Ingest, in ingest.go) run a fused zero-copy scanner;
// ParseStd below keeps the encoding/xml path alive as the reference oracle
// for differential testing.
package xmlstore

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xqtp/internal/xdm"
)

// ParseStd reads an XML document from r through encoding/xml and builds the
// tree via xdm.Finalize — the slow, well-understood reference path. The
// fast scanner must produce a bit-identical tree (nodes, symbols, columns)
// for every input this function accepts; the differential and fuzz suites
// in this package enforce that. Production callers use Parse or Ingest.
func ParseStd(r io.Reader) (*xdm.Tree, error) {
	dec := xml.NewDecoder(r)
	var stack []*xdm.Node
	var root *xdm.Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlstore: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := xdm.NewElement(t.Name.Local)
			for _, a := range t.Attr {
				// Namespace declarations carry no attribute node: xmlns="..."
				// and xmlns:p="..." are dropped. An attribute whose *prefix*
				// resolves to the xmlns space covers both spellings; a plain
				// local name that merely ends in "xmlns" (e.g. p:xmlns) is a
				// real attribute and must be kept.
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue
				}
				el.SetAttr(a.Name.Local, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmlstore: multiple root elements")
				}
				root = el
			} else {
				stack[len(stack)-1].AppendChild(el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlstore: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			stack[len(stack)-1].AppendChild(xdm.NewText(text))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlstore: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlstore: unexpected end of input inside <%s>", stack[len(stack)-1].Name)
	}
	return xdm.Finalize(root), nil
}

// ParseStdString parses a document held in a string through the reference
// path.
func ParseStdString(s string) (*xdm.Tree, error) { return ParseStd(strings.NewReader(s)) }

// AppendXML appends the XML serialization of the subtree rooted at n to dst
// and returns the extended slice. The output round-trips through both Parse
// and ParseStd: text escapes &, <, > and carriage returns (which parsers
// would otherwise normalize to \n); attribute values additionally escape
// quotes, tabs, and newlines numerically.
func AppendXML(dst []byte, n *xdm.Node) []byte {
	switch n.Kind {
	case xdm.DocumentNode:
		for _, c := range n.Children {
			dst = AppendXML(dst, c)
		}
		return dst
	case xdm.TextNode:
		return appendEscaped(dst, n.Text, false)
	case xdm.AttributeNode:
		dst = append(dst, n.Name...)
		dst = append(dst, '=', '"')
		dst = appendEscaped(dst, n.Text, true)
		return append(dst, '"')
	}
	dst = append(dst, '<')
	dst = append(dst, n.Name...)
	for _, a := range n.Attrs {
		dst = append(dst, ' ')
		dst = AppendXML(dst, a)
	}
	if len(n.Children) == 0 {
		return append(dst, '/', '>')
	}
	dst = append(dst, '>')
	for _, c := range n.Children {
		dst = AppendXML(dst, c)
	}
	dst = append(dst, '<', '/')
	dst = append(dst, n.Name...)
	return append(dst, '>')
}

// appendEscaped appends s with XML escaping. Attribute mode also escapes
// the delimiter quote and whitespace that attribute-value normalization
// would fold.
func appendEscaped(dst []byte, s string, attr bool) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '\r':
			dst = append(dst, "&#xD;"...)
		case '"':
			if attr {
				dst = append(dst, "&quot;"...)
			} else {
				dst = append(dst, c)
			}
		case '\n':
			if attr {
				dst = append(dst, "&#xA;"...)
			} else {
				dst = append(dst, c)
			}
		case '\t':
			if attr {
				dst = append(dst, "&#x9;"...)
			} else {
				dst = append(dst, c)
			}
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// Serialize writes the subtree rooted at n as XML to w, streaming through a
// fixed-size buffer instead of materializing the whole serialization. The
// document generators stream through it into an IngestWriter, so generated
// documents reach the scanner without an intermediate full-document string.
func Serialize(w io.Writer, n *xdm.Node) error {
	x := &xmlWriter{w: w, buf: make([]byte, 0, serializeBufSize)}
	x.emit(n)
	x.flush()
	return x.err
}

const serializeBufSize = 32 << 10

type xmlWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func (x *xmlWriter) flush() {
	if len(x.buf) > 0 && x.err == nil {
		_, x.err = x.w.Write(x.buf)
	}
	x.buf = x.buf[:0]
}

func (x *xmlWriter) emit(n *xdm.Node) {
	if x.err != nil {
		return
	}
	switch n.Kind {
	case xdm.DocumentNode:
		for _, c := range n.Children {
			x.emit(c)
		}
		return
	case xdm.TextNode, xdm.AttributeNode:
		x.buf = AppendXML(x.buf, n)
	default:
		x.buf = append(x.buf, '<')
		x.buf = append(x.buf, n.Name...)
		for _, a := range n.Attrs {
			x.buf = append(x.buf, ' ')
			x.buf = AppendXML(x.buf, a)
		}
		if len(n.Children) == 0 {
			x.buf = append(x.buf, '/', '>')
		} else {
			x.buf = append(x.buf, '>')
			for _, c := range n.Children {
				x.emit(c)
			}
			x.buf = append(x.buf, '<', '/')
			x.buf = append(x.buf, n.Name...)
			x.buf = append(x.buf, '>')
		}
	}
	if len(x.buf) >= serializeBufSize {
		x.flush()
	}
}

// SerializeString renders the subtree rooted at n as an XML string.
func SerializeString(n *xdm.Node) string {
	return string(AppendXML(nil, n))
}
