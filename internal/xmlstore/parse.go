// Package xmlstore loads XML documents into the XDM and maintains the index
// structures (per-tag and per-attribute streams sorted by preorder rank)
// that the set-at-a-time tree-pattern algorithms scan.
package xmlstore

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xqtp/internal/xdm"
)

// Parse reads an XML document from r and returns its XDM tree. Whitespace-
// only text between elements is dropped (data-oriented parsing); mixed
// content text is preserved.
func Parse(r io.Reader) (*xdm.Tree, error) {
	dec := xml.NewDecoder(r)
	var stack []*xdm.Node
	var root *xdm.Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlstore: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := xdm.NewElement(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				el.SetAttr(a.Name.Local, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmlstore: multiple root elements")
				}
				root = el
			} else {
				stack[len(stack)-1].AppendChild(el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlstore: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			stack[len(stack)-1].AppendChild(xdm.NewText(text))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlstore: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlstore: unexpected end of input inside <%s>", stack[len(stack)-1].Name)
	}
	return xdm.Finalize(root), nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*xdm.Tree, error) { return Parse(strings.NewReader(s)) }

// Serialize writes the subtree rooted at n as XML to w.
func Serialize(w io.Writer, n *xdm.Node) error {
	switch n.Kind {
	case xdm.DocumentNode:
		for _, c := range n.Children {
			if err := Serialize(w, c); err != nil {
				return err
			}
		}
		return nil
	case xdm.TextNode:
		return escapeTo(w, n.Text)
	case xdm.AttributeNode:
		_, err := fmt.Fprintf(w, "%s=%q", n.Name, n.Text)
		return err
	}
	if _, err := fmt.Fprintf(w, "<%s", n.Name); err != nil {
		return err
	}
	for _, a := range n.Attrs {
		if _, err := fmt.Fprintf(w, " %s=%q", a.Name, a.Text); err != nil {
			return err
		}
	}
	if len(n.Children) == 0 {
		_, err := io.WriteString(w, "/>")
		return err
	}
	if _, err := io.WriteString(w, ">"); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := Serialize(w, c); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>", n.Name)
	return err
}

// SerializeString renders the subtree rooted at n as an XML string.
func SerializeString(n *xdm.Node) string {
	var b strings.Builder
	if err := Serialize(&b, n); err != nil {
		return ""
	}
	return b.String()
}

var xmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escapeTo(w io.Writer, s string) error {
	_, err := xmlEscaper.WriteString(w, s)
	return err
}
