package xmlstore

// The ingest fast path: a non-validating, zero-copy streaming scan over the
// raw document bytes fused with single-pass columnar tree construction.
// One walk over the input interns tag and attribute names, allocates nodes
// from the xdm.TreeBuilder's slab arenas, emits the post/size/level/parent/
// kind/sym columns, and appends every element and attribute rank to its
// per-symbol index stream — the separate xdm.Finalize and BuildIndex
// re-traversals of the encoding/xml path disappear entirely.
//
// The scanner accepts a superset of what ParseStd accepts (no UTF-8
// validation, no name-character checks, '<' allowed in attribute values,
// ']]>' allowed in text) but produces a bit-identical tree and index for
// every input ParseStd accepts; the differential and fuzz suites enforce
// that contract. Structural errors — unbalanced or mismatched tags, stray
// end elements, multiple or missing roots — are rejected with xmlstore:-
// prefixed errors either way.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"xqtp/internal/xdm"
)

// Ingest scans an XML document held in data and returns its fused tree and
// index. Ingest takes ownership of data: the tree's text and attribute
// values alias the buffer, so the caller must not modify it afterwards.
func Ingest(data []byte) (*Index, error) {
	_, ix, err := ingest(data, true)
	return ix, err
}

// IngestReader reads r to the end and ingests the document.
func IngestReader(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: %w", err)
	}
	return Ingest(data)
}

// Parse reads an XML document from r and returns its XDM tree via the fast
// scanner. Whitespace-only text between elements is dropped (data-oriented
// parsing); mixed content text is preserved. ParseStd is the encoding/xml
// reference implementation of the same contract.
func Parse(r io.Reader) (*xdm.Tree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: %w", err)
	}
	return ParseBytes(data)
}

// ParseBytes parses an XML document held in a byte slice via the fast
// scanner. It takes ownership of data (see Ingest).
func ParseBytes(data []byte) (*xdm.Tree, error) {
	t, _, err := ingest(data, false)
	return t, err
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*xdm.Tree, error) {
	// The scanner never writes to its input, so aliasing the string's bytes
	// is safe and keeps the path copy-free.
	return ParseBytes(stringBytes(s))
}

// IngestString ingests an XML document held in a string (copy-free: strings
// are immutable, so the ownership condition of Ingest holds trivially).
func IngestString(s string) (*Index, error) {
	_, ix, err := ingest(stringBytes(s), true)
	return ix, err
}

// IngestWriter is an io.Writer front-end to the ingester: the document
// generators stream serialized XML into it and Finish scans the
// accumulated bytes, so no intermediate string of the full document is
// ever materialized.
type IngestWriter struct {
	buf []byte
}

// NewIngestWriter returns a writer expecting roughly sizeHint bytes.
func NewIngestWriter(sizeHint int) *IngestWriter {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &IngestWriter{buf: make([]byte, 0, sizeHint)}
}

// Write appends p to the pending document.
func (w *IngestWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Bytes returns the accumulated document bytes (owned by the writer).
func (w *IngestWriter) Bytes() []byte { return w.buf }

// Finish ingests the accumulated document. The writer must not be reused
// afterwards: the returned tree aliases its buffer.
func (w *IngestWriter) Finish() (*Index, error) {
	return Ingest(w.buf)
}

// ingester is the fused scanner + builder state for one document.
type ingester struct {
	data []byte
	pos  int
	b    *xdm.TreeBuilder

	sawRoot bool
	open    []xdm.Sym // symbols of the open elements, for end-tag matching

	// Incremental index streams (nil stays nil when emitIndex is false).
	// Appending in scan order is appending in preorder, so every stream —
	// including the merged node() and attribute::* streams — comes out
	// sorted with no sort pass, exactly like BuildIndex's column scan.
	emitIndex bool
	elemBySym [][]int32
	attrBySym [][]int32
	allElems  []int32
	allText   []int32
	allNodes  []int32
	allAttrs  []int32

	scratch   []byte     // reused decode buffer for entity-bearing character data
	attrSpans []attrSpan // reused per-tag attribute buffer

	// nsBindings tracks xmlns:p="..." declarations in scope, recording for
	// each whether the bound URI is the literal string "xmlns". encoding/xml
	// resolves a prefixed attribute to its namespace URI before the drop
	// decision, so an attribute whose prefix maps to the URI "xmlns" becomes
	// indistinguishable from a real declaration and ParseStd drops it; the
	// scanner mirrors that by resolving prefixes against this stack. Empty
	// for documents without prefixed namespace declarations (the common
	// case), where it costs nothing.
	nsBindings []nsBinding
}

// attrSpan records the byte extents of one attribute in the current tag:
// its name and its raw (still encoded) value.
type attrSpan struct {
	ns, ne int
	vs, ve int
}

// nsBinding is one xmlns:prefix declaration in scope.
type nsBinding struct {
	prefix  []byte
	isXmlns bool // the bound URI is the literal string "xmlns"
	depth   int  // element depth of the declaring tag
}

// ingest runs the fused scan. With emitIndex, the per-symbol rank streams
// are assembled during the same pass and returned as a ready Index.
func ingest(data []byte, emitIndex bool) (*xdm.Tree, *Index, error) {
	in := &ingester{
		data:      data,
		b:         xdm.NewTreeBuilder(nodeHint(data)),
		emitIndex: emitIndex,
	}
	if err := in.run(); err != nil {
		return nil, nil, err
	}
	t := in.b.Finish()
	if !emitIndex {
		return t, nil, nil
	}
	return t, in.finishIndex(t), nil
}

// nodeHint estimates the node count of a document by counting its structural
// bytes: every tag owns one '<' (start and end tags both, so elements and the
// text runs between them are covered) and every attribute owns one '='. The
// '=' count alone is unreliable — '=' is an ordinary character inside text
// and attribute values, so an equation-heavy document would inflate the hint
// far past the real node count and the builder would pre-allocate slabs it
// never fills. Attributes live only inside tags, and a tag of a well-formed
// document holds at most a handful of them, so the '=' contribution is capped
// at twice the tag count; beyond that the excess is provably text. The two
// vectorized Count passes are noise next to the scan itself, and the capped
// estimate tracks the real node count within a few tens of percent for
// element-dense, data-heavy and '='-laden documents alike — where a bytes/16
// guess missed by 2-3x in either direction and paid for it in slab
// over-allocation.
func nodeHint(data []byte) int {
	lt := bytes.Count(data, []byte{'<'})
	eq := bytes.Count(data, []byte{'='})
	if eq > 2*lt {
		eq = 2 * lt
	}
	return lt + eq + 16
}

func (in *ingester) run() error {
	data := in.data
	for in.pos < len(data) {
		if data[in.pos] != '<' {
			if err := in.text(); err != nil {
				return err
			}
			continue
		}
		if in.pos+1 >= len(data) {
			return in.errEOF()
		}
		var err error
		switch data[in.pos+1] {
		case '/':
			err = in.endTag()
		case '!':
			err = in.bang()
		case '?':
			err = in.procInst()
		default:
			err = in.startTag()
		}
		if err != nil {
			return err
		}
	}
	if in.b.Depth() > 0 {
		return fmt.Errorf("xmlstore: unexpected end of input inside <%s>", in.b.Name(in.b.CurrentSym()))
	}
	if !in.sawRoot {
		return fmt.Errorf("xmlstore: no root element")
	}
	return nil
}

// errEOF reports input ending in the middle of a markup construct.
func (in *ingester) errEOF() error {
	if in.b.Depth() > 0 {
		return fmt.Errorf("xmlstore: unexpected end of input inside <%s>", in.b.Name(in.b.CurrentSym()))
	}
	return fmt.Errorf("xmlstore: unexpected end of input")
}

// text scans the character-data run starting at pos (a non-'<' byte) and
// emits it as a text node unless it is whitespace-only or outside the root.
func (in *ingester) text() error {
	data := in.data
	start := in.pos
	i := start
	for i < len(data) && data[i] != '<' {
		i++
	}
	in.pos = i
	return in.segment(data[start:i], false)
}

// segment handles one character-data segment — a text run, or the contents
// of one CDATA section (cdata true: '&' is literal there). Segments are
// dropped when whitespace-only or outside the root, matching ParseStd.
func (in *ingester) segment(raw []byte, cdata bool) error {
	if in.b.Depth() == 0 || len(raw) == 0 {
		// Character data outside the root element carries no node. ParseStd
		// ignores it the same way (without even decoding its entities, which
		// makes the fast path strictly more lenient there).
		return nil
	}
	simple, wsOnly, hasHigh := scanSegment(raw, cdata)
	if simple {
		if wsOnly {
			return nil
		}
		s := byteString(raw)
		if hasHigh && strings.TrimSpace(s) == "" {
			return nil // non-ASCII Unicode whitespace, e.g. NBSP
		}
		in.emitText(s)
		return nil
	}
	decoded, err := in.decode(raw, cdata)
	if err != nil {
		return err
	}
	if strings.TrimSpace(decoded) == "" {
		return nil
	}
	in.emitText(decoded)
	return nil
}

// scanSegment classifies a raw segment: simple (needs no decoding — no
// entity, no carriage return), whitespace-only so far as ASCII can tell,
// and whether any non-ASCII byte occurs.
func scanSegment(raw []byte, cdata bool) (simple, wsOnly, hasHigh bool) {
	simple, wsOnly = true, true
	for _, c := range raw {
		switch {
		case c == '\r' || (c == '&' && !cdata):
			simple = false
		case c == ' ' || c == '\t' || c == '\n':
		default:
			wsOnly = false
			if c >= 0x80 {
				hasHigh = true
			}
		}
	}
	return simple, wsOnly, hasHigh
}

// decode rewrites a segment with entities expanded (unless cdata) and line
// endings normalized ("\r\n" and "\r" become "\n", matching encoding/xml;
// decoded character references are exempt).
func (in *ingester) decode(raw []byte, cdata bool) (string, error) {
	buf := in.scratch[:0]
	for i := 0; i < len(raw); {
		switch c := raw[i]; {
		case c == '&' && !cdata:
			r, n, err := decodeEntity(raw[i:])
			if err != nil {
				return "", err
			}
			buf = utf8.AppendRune(buf, r)
			i += n
		case c == '\r':
			buf = append(buf, '\n')
			i++
			if i < len(raw) && raw[i] == '\n' {
				i++
			}
		default:
			buf = append(buf, c)
			i++
		}
	}
	in.scratch = buf
	return string(buf), nil
}

func (in *ingester) emitText(s string) {
	pre := in.b.Text(s)
	if in.emitIndex {
		in.allText = append(in.allText, pre)
		in.allNodes = append(in.allNodes, pre)
	}
}

// startTag parses a start or empty-element tag at pos ('<'). Attribute
// spans are buffered until the whole tag is scanned because namespace
// resolution is order-independent: a declaration may follow the attributes
// it affects within the same tag.
func (in *ingester) startTag() error {
	data := in.data
	i := in.pos + 1
	e := scanName(data, i)
	if e == i {
		return fmt.Errorf("xmlstore: expected element name after < at offset %d", in.pos)
	}
	_, local := splitName(data[i:e])
	if in.b.Depth() == 0 {
		if in.sawRoot {
			return fmt.Errorf("xmlstore: multiple root elements")
		}
		in.sawRoot = true
	}
	pre, sym := in.b.OpenElement(local)
	in.open = append(in.open, sym)
	if in.emitIndex {
		in.addElem(sym, pre)
	}
	attrs := in.attrSpans[:0]
	i = e
	selfClose := false
scan:
	for {
		i = skipWS(data, i)
		if i >= len(data) {
			return in.errEOF()
		}
		switch data[i] {
		case '>':
			in.pos = i + 1
			break scan
		case '/':
			if i+1 >= len(data) {
				return in.errEOF()
			}
			if data[i+1] != '>' {
				return fmt.Errorf("xmlstore: expected /> in element at offset %d", i)
			}
			selfClose = true
			in.pos = i + 2
			break scan
		}
		ae := scanName(data, i)
		if ae == i {
			return fmt.Errorf("xmlstore: expected attribute name in element at offset %d", i)
		}
		ns := i
		i = skipWS(data, ae)
		if i >= len(data) {
			return in.errEOF()
		}
		if data[i] != '=' {
			return fmt.Errorf("xmlstore: attribute name without = in element at offset %d", i)
		}
		i = skipWS(data, i+1)
		if i >= len(data) {
			return in.errEOF()
		}
		quote := data[i]
		if quote != '"' && quote != '\'' {
			return fmt.Errorf("xmlstore: unquoted or missing attribute value in element at offset %d", i)
		}
		i++
		vs := i
		for i < len(data) && data[i] != quote {
			i++
		}
		if i >= len(data) {
			return in.errEOF()
		}
		attrs = append(attrs, attrSpan{ns: ns, ne: ae, vs: vs, ve: i})
		i++
	}
	in.attrSpans = attrs
	depth := in.b.Depth()
	// Pass 1: register this tag's prefixed namespace declarations so the
	// drop decisions below see them regardless of attribute order.
	for _, a := range attrs {
		prefix, plocal := splitName(data[a.ns:a.ne])
		if string(prefix) != "xmlns" {
			continue
		}
		uri, err := in.attrValue(data[a.vs:a.ve])
		if err != nil {
			return err
		}
		in.nsBindings = append(in.nsBindings, nsBinding{
			prefix:  plocal,
			isXmlns: uri == "xmlns",
			depth:   depth,
		})
	}
	// Pass 2: emit attribute nodes, dropping the namespace declarations and
	// any attribute whose prefix resolves to the xmlns space.
	for _, a := range attrs {
		aname := data[a.ns:a.ne]
		if isNSDecl(aname) {
			continue // namespace declarations carry no attribute node
		}
		aprefix, alocal := splitName(aname)
		if len(aprefix) > 0 && in.prefixIsXmlns(aprefix) {
			continue
		}
		value, err := in.attrValue(data[a.vs:a.ve])
		if err != nil {
			return err
		}
		apre, asym := in.b.Attr(alocal, value)
		if in.emitIndex {
			in.addAttr(asym, apre)
		}
	}
	if selfClose {
		in.popBindings(depth)
		in.b.CloseElement()
		in.open = in.open[:len(in.open)-1]
	}
	return nil
}

// prefixIsXmlns resolves a prefix against the innermost binding in scope
// and reports whether it maps to the literal URI "xmlns".
func (in *ingester) prefixIsXmlns(prefix []byte) bool {
	for j := len(in.nsBindings) - 1; j >= 0; j-- {
		if bytes.Equal(in.nsBindings[j].prefix, prefix) {
			return in.nsBindings[j].isXmlns
		}
	}
	return false
}

// popBindings drops the namespace bindings declared at or below depth (the
// element at that depth is closing, so its declarations leave scope).
func (in *ingester) popBindings(depth int) {
	for len(in.nsBindings) > 0 && in.nsBindings[len(in.nsBindings)-1].depth >= depth {
		in.nsBindings = in.nsBindings[:len(in.nsBindings)-1]
	}
}

// attrValue materializes an attribute value, aliasing the input when no
// decoding is needed.
func (in *ingester) attrValue(raw []byte) (string, error) {
	for _, c := range raw {
		if c == '&' || c == '\r' {
			return in.decode(raw, false)
		}
	}
	return byteString(raw), nil
}

// endTag parses an end tag at pos ("</").
func (in *ingester) endTag() error {
	data := in.data
	i := in.pos + 2
	e := scanName(data, i)
	if e == i {
		return fmt.Errorf("xmlstore: expected element name after </ at offset %d", in.pos)
	}
	_, local := splitName(data[i:e])
	i = skipWS(data, e)
	if i >= len(data) {
		return in.errEOF()
	}
	if data[i] != '>' {
		return fmt.Errorf("xmlstore: invalid characters between </%s and > at offset %d", local, i)
	}
	if len(in.open) == 0 {
		return fmt.Errorf("xmlstore: unbalanced end element %s", local)
	}
	sym := in.open[len(in.open)-1]
	if in.b.Name(sym) != string(local) {
		return fmt.Errorf("xmlstore: element <%s> closed by </%s>", in.b.Name(sym), local)
	}
	in.open = in.open[:len(in.open)-1]
	if len(in.nsBindings) > 0 {
		in.popBindings(in.b.Depth())
	}
	in.b.CloseElement()
	in.pos = i + 1
	return nil
}

var (
	commentOpen  = []byte("<!--")
	commentClose = []byte("-->")
	cdataOpen    = []byte("<![CDATA[")
	cdataClose   = []byte("]]>")
)

// bang dispatches the markup at pos ("<!"): comment, CDATA section, or
// directive (DOCTYPE and friends, skipped like encoding/xml's Directive
// tokens are by ParseStd).
func (in *ingester) bang() error {
	data := in.data
	rest := data[in.pos:]
	switch {
	case bytes.HasPrefix(rest, commentOpen):
		end := bytes.Index(rest[len(commentOpen):], commentClose)
		if end < 0 {
			return fmt.Errorf("xmlstore: unterminated comment")
		}
		in.pos += len(commentOpen) + end + len(commentClose)
		return nil
	case bytes.HasPrefix(rest, cdataOpen):
		end := bytes.Index(rest[len(cdataOpen):], cdataClose)
		if end < 0 {
			return fmt.Errorf("xmlstore: unterminated CDATA section")
		}
		raw := rest[len(cdataOpen) : len(cdataOpen)+end]
		in.pos += len(cdataOpen) + end + len(cdataClose)
		// A CDATA section is its own character-data segment: adjacent text
		// produces separate text nodes, exactly as the std tokenizer emits
		// separate CharData tokens around it.
		return in.segment(raw, true)
	default:
		return in.directive()
	}
}

// directive skips a <! ... > construct, tracking quotes, nested angle
// brackets (internal DTD subsets), and embedded comments the way
// encoding/xml's directive reader does. Like that reader, the first byte
// after "<!" is consumed without interpretation — no quote, bracket, or
// terminator significance — so <!"> is a complete directive while <!"x">
// opens a quote at the second quote character.
func (in *ingester) directive() error {
	data := in.data
	if in.pos+2 >= len(data) {
		return fmt.Errorf("xmlstore: unterminated directive")
	}
	i := in.pos + 3
	depth := 1
	for i < len(data) {
		switch c := data[i]; c {
		case '"', '\'':
			j := i + 1
			for j < len(data) && data[j] != c {
				j++
			}
			if j >= len(data) {
				return fmt.Errorf("xmlstore: unterminated directive")
			}
			i = j + 1
		case '<':
			if bytes.HasPrefix(data[i:], commentOpen) {
				end := bytes.Index(data[i+len(commentOpen):], commentClose)
				if end < 0 {
					return fmt.Errorf("xmlstore: unterminated comment")
				}
				i += len(commentOpen) + end + len(commentClose)
			} else {
				depth++
				i++
			}
		case '>':
			depth--
			i++
			if depth == 0 {
				in.pos = i
				return nil
			}
		default:
			i++
		}
	}
	return fmt.Errorf("xmlstore: unterminated directive")
}

// procInst skips a processing instruction (including the XML declaration).
func (in *ingester) procInst() error {
	end := bytes.Index(in.data[in.pos+2:], []byte("?>"))
	if end < 0 {
		return fmt.Errorf("xmlstore: unterminated processing instruction")
	}
	in.pos += 2 + end + 2
	return nil
}

// addElem appends an element rank to its per-symbol and merged streams.
func (in *ingester) addElem(sym xdm.Sym, pre int32) {
	for int(sym) >= len(in.elemBySym) {
		in.elemBySym = append(in.elemBySym, nil)
	}
	in.elemBySym[sym] = append(in.elemBySym[sym], pre)
	in.allElems = append(in.allElems, pre)
	in.allNodes = append(in.allNodes, pre)
}

// addAttr appends an attribute rank to its per-symbol and merged streams.
func (in *ingester) addAttr(sym xdm.Sym, pre int32) {
	for int(sym) >= len(in.attrBySym) {
		in.attrBySym = append(in.attrBySym, nil)
	}
	in.attrBySym[sym] = append(in.attrBySym[sym], pre)
	in.allAttrs = append(in.allAttrs, pre)
}

// finishIndex assembles the incrementally built streams into an Index,
// padding the per-symbol tables to the final symbol count (symbols interned
// only for kinds that never occurred keep empty streams).
func (in *ingester) finishIndex(t *xdm.Tree) *Index {
	nsyms := t.Syms.Len()
	for len(in.elemBySym) < nsyms {
		in.elemBySym = append(in.elemBySym, nil)
	}
	for len(in.attrBySym) < nsyms {
		in.attrBySym = append(in.attrBySym, nil)
	}
	return &Index{
		Tree:      t,
		elemBySym: in.elemBySym,
		attrBySym: in.attrBySym,
		allElems:  in.allElems,
		allText:   in.allText,
		allNodes:  in.allNodes,
		allAttrs:  in.allAttrs,
	}
}
