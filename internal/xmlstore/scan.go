package xmlstore

// Low-level primitives of the zero-copy XML scanner: name scanning, the
// namespace name-splitting rule of encoding/xml, and character-data decoding
// (predefined entities, numeric character references, newline
// normalization). The fused tree construction lives in ingest.go; ParseStd
// in parse.go remains the encoding/xml reference oracle the scanner is
// differentially tested against.

import (
	"bytes"
	"fmt"
	"unicode/utf8"
	"unsafe"
)

// byteString returns a string aliasing b without copying. Callers must
// guarantee that b is never modified afterwards — the ingest entry points
// take ownership of their input buffer for exactly this reason.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// stringBytes returns a []byte aliasing s. The scanner never writes through
// it.
func stringBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// nameDelim marks the bytes that terminate a tag or attribute name.
var nameDelim [256]bool

func init() {
	for _, c := range []byte{' ', '\t', '\n', '\r', '/', '>', '=', '<', '"', '\''} {
		nameDelim[c] = true
	}
}

// scanName returns the end offset of the name starting at i. The scanner is
// non-validating: any run of non-delimiter bytes is a name; inputs that
// encoding/xml would reject for bad name characters simply parse leniently.
func scanName(data []byte, i int) int {
	for i < len(data) && !nameDelim[data[i]] {
		i++
	}
	return i
}

// skipWS returns the first offset at or after i holding a non-whitespace
// byte.
func skipWS(data []byte, i int) int {
	for i < len(data) {
		switch data[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// splitName applies the name-splitting rule of encoding/xml: a name splits
// into (prefix, local) only at a single interior colon; names with a
// leading, trailing, or repeated colon stay whole (prefix empty).
func splitName(name []byte) (prefix, local []byte) {
	i := bytes.IndexByte(name, ':')
	if i <= 0 || i == len(name)-1 || bytes.IndexByte(name[i+1:], ':') >= 0 {
		return nil, name
	}
	return name[:i], name[i+1:]
}

// isNSDecl reports whether an attribute name declares a namespace — a
// literal xmlns or an xmlns: prefix that actually splits — matching the
// attributes ParseStd drops.
func isNSDecl(name []byte) bool {
	if string(name) == "xmlns" {
		return true
	}
	prefix, _ := splitName(name)
	return string(prefix) == "xmlns"
}

// decodeEntity decodes the entity or character reference starting at b[0]
// (which is '&'), returning the rune and the number of input bytes
// consumed. Only the five predefined entities and numeric character
// references are supported, like a non-validating parser without a DTD.
func decodeEntity(b []byte) (rune, int, error) {
	// An entity reference is short (longest legal forms are numeric
	// references padded with leading zeros); bound the semicolon scan so a
	// stray '&' in front of megabytes of text fails fast.
	limit := len(b)
	if limit > 70 {
		limit = 70
	}
	semi := -1
	for j := 1; j < limit; j++ {
		if b[j] == ';' {
			semi = j
			break
		}
	}
	if semi < 0 {
		return 0, 0, fmt.Errorf("xmlstore: invalid character entity (no semicolon)")
	}
	ent := b[1:semi]
	if len(ent) > 1 && ent[0] == '#' {
		digits := ent[1:]
		base := rune(10)
		if digits[0] == 'x' {
			base = 16
			digits = digits[1:]
		}
		if len(digits) == 0 {
			return 0, 0, fmt.Errorf("xmlstore: invalid character entity &%s;", ent)
		}
		var n rune
		for _, d := range digits {
			var v rune
			switch {
			case d >= '0' && d <= '9':
				v = rune(d - '0')
			case base == 16 && d >= 'a' && d <= 'f':
				v = rune(d-'a') + 10
			case base == 16 && d >= 'A' && d <= 'F':
				v = rune(d-'A') + 10
			default:
				return 0, 0, fmt.Errorf("xmlstore: invalid character entity &%s;", ent)
			}
			n = n*base + v
			if n > utf8.MaxRune {
				return 0, 0, fmt.Errorf("xmlstore: invalid character entity &%s;", ent)
			}
		}
		// Surrogate code points encode as U+FFFD, matching string(rune(n)).
		return n, semi + 1, nil
	}
	switch string(ent) {
	case "lt":
		return '<', semi + 1, nil
	case "gt":
		return '>', semi + 1, nil
	case "amp":
		return '&', semi + 1, nil
	case "apos":
		return '\'', semi + 1, nil
	case "quot":
		return '"', semi + 1, nil
	}
	return 0, 0, fmt.Errorf("xmlstore: invalid character entity &%s;", ent)
}
