package xmlstore

import (
	"strings"
	"sync"
	"testing"
)

func TestCatalogBuildsOnce(t *testing.T) {
	tree, err := Parse(strings.NewReader(`<a><b/><b/><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	const goroutines = 16
	indexes := make([]*Index, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			indexes[g] = cat.Index(tree)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if indexes[g] != indexes[0] {
			t.Fatalf("goroutine %d got a different index instance", g)
		}
	}
	if indexes[0].Tree != tree {
		t.Fatalf("index built for the wrong tree")
	}
	if got := cat.Len(); got != 1 {
		t.Fatalf("catalog has %d entries, want 1", got)
	}
}

func TestCatalogRegisterExistingWins(t *testing.T) {
	tree, err := Parse(strings.NewReader(`<a><b/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	pre := BuildIndex(tree)
	cat.Register(pre)
	if got := cat.Index(tree); got != pre {
		t.Fatalf("catalog did not return the registered index")
	}
	// A second Register of a fresh index for the same tree keeps the first.
	cat.Register(BuildIndex(tree))
	if got := cat.Index(tree); got != pre {
		t.Fatalf("second Register displaced the original index")
	}
	cat.Drop(tree)
	if cat.Len() != 0 {
		t.Fatalf("Drop left %d entries", cat.Len())
	}
	if got := cat.Index(tree); got == pre {
		t.Fatalf("catalog returned the dropped index instance")
	}
}
