package xmlstore

import (
	"bytes"
	"testing"
)

// fuzzSeedSnapshot builds a valid snapshot to seed the fuzzer with — byte
// flips on real encodings explore far more reader states than random bytes.
func fuzzSeedSnapshot(docs []string, uris []string) []byte {
	ixs := make([]*Index, len(docs))
	for i, d := range docs {
		ix, err := IngestString(d)
		if err != nil {
			panic(err)
		}
		ixs[i] = ix
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, snapshotFromIndexes(uris, ixs)); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzSnapshot fuzzes the snapshot reader's safety contract: arbitrary
// bytes — including corrupted and truncated valid snapshots — must produce
// an error or a structurally valid corpus, never a panic. A snapshot that
// does load must round-trip back to identical bytes.
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("XQTS\x02\x00\x00\x00"))
	single := fuzzSeedSnapshot(
		[]string{`<a id="1"><b x="y"><c>hello</c></b><c>world</c></a>`},
		[]string{""})
	f.Add(single)
	f.Add(single[:len(single)/2])
	f.Add(fuzzSeedSnapshot(
		[]string{`<a><b>one</b></a>`, `<catalog><item price="3">x</item></catalog>`},
		[]string{"one.xml", "two.xml"}))
	corrupt := bytes.Clone(single)
	corrupt[20] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		// The deferred path must uphold the same no-panic contract through
		// its probe-then-load stages, and must accept/reject the same inputs
		// as the eager open (eager is deferred + Ensure everything).
		sd, errD := OpenCorpusDeferred(bytes.Clone(data))
		if errD == nil {
			for _, ix := range sd.Indexes {
				ix.NumNodes()
				ix.StreamLen(0, false)
				_ = ix.Ensure()
				ix.Tree.RootNode()
			}
		}
		s, err := OpenCorpus(bytes.Clone(data))
		if err == nil && errD != nil {
			// Eager is deferred + Ensure everything, so it can only reject
			// more inputs (member corruption), never fewer.
			t.Fatalf("eager open accepted what deferred open rejected: %v", errD)
		}
		if err != nil {
			return
		}
		// Accepted input: materialization of the lazy pointer model must not
		// panic — load-time validation has to cover everything the deferred
		// build relies on.
		for _, ix := range s.Indexes {
			ix.Tree.RootNode()
		}
		// Accepted input: the decoded corpus must re-encode and re-open
		// cleanly (the writer asserts the structural invariants the query
		// engine relies on).
		var buf bytes.Buffer
		if err := WriteCorpus(&buf, s); err != nil {
			t.Fatalf("loaded snapshot does not re-encode: %v", err)
		}
		if _, err := OpenCorpus(buf.Bytes()); err != nil {
			t.Fatalf("re-encoded snapshot does not load: %v", err)
		}
	})
}
