package xmlstore

import (
	"strings"
	"testing"
)

// hintRatio parses doc and returns (hint, actual nodes, hint/actual).
func hintRatio(t *testing.T, doc string) (int, int, float64) {
	t.Helper()
	data := []byte(doc)
	hint := nodeHint(data)
	tree, err := ParseBytes(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	actual := tree.CountNodes()
	if actual == 0 {
		t.Fatalf("document parsed to zero nodes")
	}
	return hint, actual, float64(hint) / float64(actual)
}

// TestNodeHintBounded pins the slab pre-allocation hint to the real node
// count across document shapes. The '='-laden case is the regression: '=' is
// an ordinary text character, so an uncapped '=' count once inflated the hint
// (and the builder's slab capacity) by an unbounded factor on equation-heavy
// text — the cap keeps the over-allocation bounded no matter how much text
// the document carries.
func TestNodeHintBounded(t *testing.T) {
	// Small fixed slack absorbs the +16 constant on tiny documents.
	const slack = 16.0

	cases := []struct {
		name string
		doc  string
		max  float64 // max allowed hint/actual beyond the slack
	}{
		{
			name: "element-dense",
			doc:  "<r>" + strings.Repeat("<a><b/><c/></a>", 200) + "</r>",
			max:  1.5,
		},
		{
			name: "attribute-heavy",
			doc:  "<r>" + strings.Repeat(`<a x="1" y="2" z="3"/>`, 200) + "</r>",
			max:  1.5,
		},
		{
			// Text stuffed with '=': every byte of payload is an equals
			// sign, but none of them is an attribute. Uncapped, the hint
			// here is ~100x the node count.
			name: "equals-laden-text",
			doc:  "<r>" + strings.Repeat("<p>x=1; y=2; a==b; c=d=e=f=g</p>", 200) + "</r>",
			max:  3.0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hint, actual, ratio := hintRatio(t, tc.doc)
			if float64(hint) > tc.max*float64(actual)+slack {
				t.Fatalf("hint %d over-allocates for %d nodes (ratio %.2f, max %.2f): slab pre-allocation would balloon",
					hint, actual, ratio, tc.max)
			}
			// The hint must also not collapse: a drastic under-estimate
			// forfeits the pre-allocation entirely.
			if float64(hint) < 0.5*float64(actual) {
				t.Fatalf("hint %d under-allocates for %d nodes (ratio %.2f)", hint, actual, ratio)
			}
		})
	}
}
