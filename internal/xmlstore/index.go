package xmlstore

import (
	"sort"

	"xqtp/internal/xdm"
)

// Index holds the access structures built over one document: per-tag element
// streams and per-name attribute streams, each sorted by preorder rank.
// These streams are the inputs of the staircase and twig join algorithms —
// the moral equivalent of an element-tag B-tree in a disk-based store.
type Index struct {
	Tree *xdm.Tree

	elemByTag  map[string][]*xdm.Node
	attrByName map[string][]*xdm.Node
	allElems   []*xdm.Node
	allText    []*xdm.Node
}

// BuildIndex scans the tree once and constructs its index.
func BuildIndex(t *xdm.Tree) *Index {
	ix := &Index{
		Tree:       t,
		elemByTag:  make(map[string][]*xdm.Node),
		attrByName: make(map[string][]*xdm.Node),
	}
	for _, n := range t.Nodes {
		switch n.Kind {
		case xdm.ElementNode:
			ix.elemByTag[n.Name] = append(ix.elemByTag[n.Name], n)
			ix.allElems = append(ix.allElems, n)
		case xdm.AttributeNode:
			ix.attrByName[n.Name] = append(ix.attrByName[n.Name], n)
		case xdm.TextNode:
			ix.allText = append(ix.allText, n)
		}
	}
	return ix
}

// ElementStream returns the preorder-sorted stream of nodes matching the
// test on an element axis (child/descendant/...): a single tag stream for a
// name test, all elements for *, all elements and texts for node(), text
// nodes for text(). The returned slice is shared and must not be mutated.
func (ix *Index) ElementStream(test xdm.NodeTest) []*xdm.Node {
	switch test.Kind {
	case xdm.TestName:
		return ix.elemByTag[test.Name]
	case xdm.TestStar:
		return ix.allElems
	case xdm.TestText:
		return ix.allText
	case xdm.TestNode:
		// Merge elements and text nodes by pre (both already sorted).
		out := make([]*xdm.Node, 0, len(ix.allElems)+len(ix.allText))
		i, j := 0, 0
		for i < len(ix.allElems) && j < len(ix.allText) {
			if ix.allElems[i].Pre < ix.allText[j].Pre {
				out = append(out, ix.allElems[i])
				i++
			} else {
				out = append(out, ix.allText[j])
				j++
			}
		}
		out = append(out, ix.allElems[i:]...)
		out = append(out, ix.allText[j:]...)
		return out
	}
	return nil
}

// AttributeStream returns the preorder-sorted stream of attribute nodes
// matching the test on the attribute axis.
func (ix *Index) AttributeStream(test xdm.NodeTest) []*xdm.Node {
	switch test.Kind {
	case xdm.TestName:
		return ix.attrByName[test.Name]
	case xdm.TestStar, xdm.TestNode:
		var out []*xdm.Node
		for _, s := range ix.attrByName {
			out = append(out, s...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Pre < out[j].Pre })
		return out
	}
	return nil
}

// StreamFor returns the stream matching an axis step (element streams for
// element axes, attribute streams for the attribute axis).
func (ix *Index) StreamFor(axis xdm.Axis, test xdm.NodeTest) []*xdm.Node {
	if axis == xdm.AxisAttribute {
		return ix.AttributeStream(test)
	}
	return ix.ElementStream(test)
}

// RegionSlice narrows a preorder-sorted stream to the nodes strictly inside
// the region of ctx (its proper descendants), using binary search. The
// result aliases the stream.
func RegionSlice(stream []*xdm.Node, ctx *xdm.Node) []*xdm.Node {
	lo := sort.Search(len(stream), func(i int) bool { return stream[i].Pre > ctx.Pre })
	hi := sort.Search(len(stream), func(i int) bool { return stream[i].Pre > ctx.End() })
	return stream[lo:hi]
}

// Tags returns the distinct element names in the index.
func (ix *Index) Tags() []string {
	out := make([]string, 0, len(ix.elemByTag))
	for t := range ix.elemByTag {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
