package xmlstore

import (
	"sort"

	"xqtp/internal/xdm"
)

// Index holds the access structures built over one document: per-tag element
// streams and per-name attribute streams, each sorted by preorder rank.
// These streams are the inputs of the staircase and twig join algorithms —
// the moral equivalent of an element-tag B-tree in a disk-based store.
//
// Streams are keyed by the tree's interned symbol IDs (xdm.Sym), so a
// resolved name test reaches its stream by a slice index instead of a string
// hash; names absent from the document resolve to the empty stream via the
// symbol-table lookup. The merged streams that older revisions rebuilt per
// call (node() over elements+text, the all-attributes stream) are
// precomputed once here. An Index is immutable after BuildIndex and safe for
// concurrent readers.
type Index struct {
	Tree *xdm.Tree

	elemBySym [][]*xdm.Node // element streams, indexed by xdm.Sym
	attrBySym [][]*xdm.Node // attribute streams, indexed by xdm.Sym
	allElems  []*xdm.Node
	allText   []*xdm.Node
	allNodes  []*xdm.Node // elements and texts merged by pre (node() stream)
	allAttrs  []*xdm.Node // every attribute, by pre (attribute::* stream)
}

// BuildIndex scans the tree twice — once to size every stream exactly, once
// to fill them — and constructs its index.
func BuildIndex(t *xdm.Tree) *Index {
	nsyms := t.Syms.Len()
	ix := &Index{
		Tree:      t,
		elemBySym: make([][]*xdm.Node, nsyms),
		attrBySym: make([][]*xdm.Node, nsyms),
	}
	elemCount := make([]int, nsyms)
	attrCount := make([]int, nsyms)
	var nElems, nTexts, nAttrs int
	for _, n := range t.Nodes {
		switch n.Kind {
		case xdm.ElementNode:
			elemCount[n.Sym]++
			nElems++
		case xdm.AttributeNode:
			attrCount[n.Sym]++
			nAttrs++
		case xdm.TextNode:
			nTexts++
		}
	}
	for s := 0; s < nsyms; s++ {
		if elemCount[s] > 0 {
			ix.elemBySym[s] = make([]*xdm.Node, 0, elemCount[s])
		}
		if attrCount[s] > 0 {
			ix.attrBySym[s] = make([]*xdm.Node, 0, attrCount[s])
		}
	}
	ix.allElems = make([]*xdm.Node, 0, nElems)
	ix.allText = make([]*xdm.Node, 0, nTexts)
	ix.allNodes = make([]*xdm.Node, 0, nElems+nTexts)
	ix.allAttrs = make([]*xdm.Node, 0, nAttrs)
	// t.Nodes is in preorder, so appending in scan order leaves every
	// stream — including the merged ones — sorted by pre with no sort pass.
	for _, n := range t.Nodes {
		switch n.Kind {
		case xdm.ElementNode:
			ix.elemBySym[n.Sym] = append(ix.elemBySym[n.Sym], n)
			ix.allElems = append(ix.allElems, n)
			ix.allNodes = append(ix.allNodes, n)
		case xdm.AttributeNode:
			ix.attrBySym[n.Sym] = append(ix.attrBySym[n.Sym], n)
			ix.allAttrs = append(ix.allAttrs, n)
		case xdm.TextNode:
			ix.allText = append(ix.allText, n)
			ix.allNodes = append(ix.allNodes, n)
		}
	}
	return ix
}

// ElementStreamSym returns the element stream for an interned name. Pass
// xdm.NoSym (or any out-of-range symbol) for the empty stream.
func (ix *Index) ElementStreamSym(s xdm.Sym) []*xdm.Node {
	if s < 0 || int(s) >= len(ix.elemBySym) {
		return nil
	}
	return ix.elemBySym[s]
}

// AttributeStreamSym returns the attribute stream for an interned name.
func (ix *Index) AttributeStreamSym(s xdm.Sym) []*xdm.Node {
	if s < 0 || int(s) >= len(ix.attrBySym) {
		return nil
	}
	return ix.attrBySym[s]
}

// ResolveName resolves a name test to this document's symbol ID (xdm.NoSym
// when the name does not occur, i.e. its streams are empty).
func (ix *Index) ResolveName(name string) xdm.Sym {
	s, ok := ix.Tree.Syms.Lookup(name)
	if !ok {
		return xdm.NoSym
	}
	return s
}

// ElementStream returns the preorder-sorted stream of nodes matching the
// test on an element axis (child/descendant/...): a single tag stream for a
// name test, all elements for *, all elements and texts for node(), text
// nodes for text(). The returned slice is shared and must not be mutated.
func (ix *Index) ElementStream(test xdm.NodeTest) []*xdm.Node {
	switch test.Kind {
	case xdm.TestName:
		return ix.ElementStreamSym(ix.ResolveName(test.Name))
	case xdm.TestStar:
		return ix.allElems
	case xdm.TestText:
		return ix.allText
	case xdm.TestNode:
		return ix.allNodes
	}
	return nil
}

// AttributeStream returns the preorder-sorted stream of attribute nodes
// matching the test on the attribute axis.
func (ix *Index) AttributeStream(test xdm.NodeTest) []*xdm.Node {
	switch test.Kind {
	case xdm.TestName:
		return ix.AttributeStreamSym(ix.ResolveName(test.Name))
	case xdm.TestStar, xdm.TestNode:
		return ix.allAttrs
	}
	return nil
}

// StreamFor returns the stream matching an axis step (element streams for
// element axes, attribute streams for the attribute axis).
func (ix *Index) StreamFor(axis xdm.Axis, test xdm.NodeTest) []*xdm.Node {
	if axis == xdm.AxisAttribute {
		return ix.AttributeStream(test)
	}
	return ix.ElementStream(test)
}

// RegionSlice narrows a preorder-sorted stream to the nodes strictly inside
// the region of ctx (its proper descendants), using binary search. The
// result aliases the stream.
func RegionSlice(stream []*xdm.Node, ctx *xdm.Node) []*xdm.Node {
	lo := sort.Search(len(stream), func(i int) bool { return stream[i].Pre > ctx.Pre })
	hi := sort.Search(len(stream), func(i int) bool { return stream[i].Pre > ctx.End() })
	return stream[lo:hi]
}

// Tags returns the distinct element names in the index.
func (ix *Index) Tags() []string {
	var out []string
	for s, stream := range ix.elemBySym {
		if len(stream) > 0 {
			out = append(out, ix.Tree.Syms.Name(xdm.Sym(s)))
		}
	}
	sort.Strings(out)
	return out
}
