package xmlstore

import (
	"sort"

	"xqtp/internal/xdm"
)

// Index holds the access structures built over one document: per-tag element
// streams and per-name attribute streams, each a []int32 slice of preorder
// ranks sorted ascending. These streams are the inputs of the staircase and
// twig join algorithms — the moral equivalent of an element-tag B-tree in a
// disk-based store, flattened to integers so a region scan touches packed
// ranks instead of chasing GC-scanned node pointers (the columns of
// xdm.Tree.Cols carry the per-rank encoding).
//
// Streams are keyed by the tree's interned symbol IDs (xdm.Sym), so a
// resolved name test reaches its stream by a slice index instead of a string
// hash; names absent from the document resolve to the empty stream via the
// symbol-table lookup. The merged streams (node() over elements+text, the
// all-attributes stream) are precomputed once here. An Index is immutable
// after BuildIndex and safe for concurrent readers.
type Index struct {
	Tree *xdm.Tree

	elemBySym [][]int32 // element rank streams, indexed by xdm.Sym
	attrBySym [][]int32 // attribute rank streams, indexed by xdm.Sym
	allElems  []int32
	allText   []int32
	allNodes  []int32 // elements and texts merged by pre (node() stream)
	allAttrs  []int32 // every attribute, by pre (attribute::* stream)

	// lazy is the deferred-load state of a snapshot member (snapshot.go);
	// nil on eagerly built indexes. While unloaded, the streams above are
	// empty and the tree is a shell — Ensure fills them, and the directory
	// probes (StreamLen, NumNodes) answer without forcing it.
	lazy *lazyMember

	statsState // lazily built Stats snapshot (stats.go)
}

// BuildIndex scans the tree's kind/sym columns twice — once to size every
// stream exactly, once to fill them — and constructs its index without
// touching a single node pointer.
func BuildIndex(t *xdm.Tree) *Index {
	nsyms := t.Syms.Len()
	cols := t.Cols
	ix := &Index{
		Tree:      t,
		elemBySym: make([][]int32, nsyms),
		attrBySym: make([][]int32, nsyms),
	}
	elemCount := make([]int, nsyms)
	attrCount := make([]int, nsyms)
	var nElems, nTexts, nAttrs int
	for pre := range cols.Kind {
		switch xdm.Kind(cols.Kind[pre]) {
		case xdm.ElementNode:
			elemCount[cols.Sym[pre]]++
			nElems++
		case xdm.AttributeNode:
			attrCount[cols.Sym[pre]]++
			nAttrs++
		case xdm.TextNode:
			nTexts++
		}
	}
	for s := 0; s < nsyms; s++ {
		if elemCount[s] > 0 {
			ix.elemBySym[s] = make([]int32, 0, elemCount[s])
		}
		if attrCount[s] > 0 {
			ix.attrBySym[s] = make([]int32, 0, attrCount[s])
		}
	}
	ix.allElems = make([]int32, 0, nElems)
	ix.allText = make([]int32, 0, nTexts)
	ix.allNodes = make([]int32, 0, nElems+nTexts)
	ix.allAttrs = make([]int32, 0, nAttrs)
	// The columns are in preorder, so appending in scan order leaves every
	// stream — including the merged ones — sorted by pre with no sort pass.
	for pre := range cols.Kind {
		r := int32(pre)
		switch xdm.Kind(cols.Kind[pre]) {
		case xdm.ElementNode:
			s := cols.Sym[pre]
			ix.elemBySym[s] = append(ix.elemBySym[s], r)
			ix.allElems = append(ix.allElems, r)
			ix.allNodes = append(ix.allNodes, r)
		case xdm.AttributeNode:
			s := cols.Sym[pre]
			ix.attrBySym[s] = append(ix.attrBySym[s], r)
			ix.allAttrs = append(ix.allAttrs, r)
		case xdm.TextNode:
			ix.allText = append(ix.allText, r)
			ix.allNodes = append(ix.allNodes, r)
		}
	}
	return ix
}

// ElementRanksSym returns the element rank stream for an interned name. Pass
// xdm.NoSym (or any out-of-range symbol) for the empty stream.
func (ix *Index) ElementRanksSym(s xdm.Sym) []int32 {
	if s < 0 || int(s) >= len(ix.elemBySym) {
		return nil
	}
	return ix.elemBySym[s]
}

// AttributeRanksSym returns the attribute rank stream for an interned name.
func (ix *Index) AttributeRanksSym(s xdm.Sym) []int32 {
	if s < 0 || int(s) >= len(ix.attrBySym) {
		return nil
	}
	return ix.attrBySym[s]
}

// ResolveName resolves a name test to this document's symbol ID (xdm.NoSym
// when the name does not occur, i.e. its streams are empty).
func (ix *Index) ResolveName(name string) xdm.Sym {
	s, ok := ix.Tree.Syms.Lookup(name)
	if !ok {
		return xdm.NoSym
	}
	return s
}

// ElementRanks returns the preorder-sorted rank stream matching the test on
// an element axis (child/descendant/...): a single tag stream for a name
// test, all elements for *, all elements and texts for node(), text nodes
// for text(). The returned slice is shared and must not be mutated.
func (ix *Index) ElementRanks(test xdm.NodeTest) []int32 {
	switch test.Kind {
	case xdm.TestName:
		return ix.ElementRanksSym(ix.ResolveName(test.Name))
	case xdm.TestStar:
		return ix.allElems
	case xdm.TestText:
		return ix.allText
	case xdm.TestNode:
		return ix.allNodes
	}
	return nil
}

// AttributeRanks returns the preorder-sorted rank stream of attribute nodes
// matching the test on the attribute axis.
func (ix *Index) AttributeRanks(test xdm.NodeTest) []int32 {
	switch test.Kind {
	case xdm.TestName:
		return ix.AttributeRanksSym(ix.ResolveName(test.Name))
	case xdm.TestStar, xdm.TestNode:
		return ix.allAttrs
	}
	return nil
}

// RanksFor returns the rank stream matching an axis step (element streams
// for element axes, attribute streams for the attribute axis).
func (ix *Index) RanksFor(axis xdm.Axis, test xdm.NodeTest) []int32 {
	if axis == xdm.AxisAttribute {
		return ix.AttributeRanks(test)
	}
	return ix.ElementRanks(test)
}

// ElementStream materializes ElementRanks as nodes (convenience for callers
// outside the join kernels; allocates).
func (ix *Index) ElementStream(test xdm.NodeTest) []*xdm.Node {
	return ix.Tree.Materialize(ix.ElementRanks(test))
}

// AttributeStream materializes AttributeRanks as nodes.
func (ix *Index) AttributeStream(test xdm.NodeTest) []*xdm.Node {
	return ix.Tree.Materialize(ix.AttributeRanks(test))
}

// RegionRanks narrows a preorder-sorted rank stream to the ranks strictly
// inside the region (pre, end] — the proper descendants of the node with
// that region — using binary search. The result aliases the stream.
func RegionRanks(stream []int32, pre, end int32) []int32 {
	lo := searchRanks(stream, pre+1)
	hi := searchRanks(stream, end+1)
	return stream[lo:hi]
}

// RegionCount counts the stream entries strictly inside the region (pre,
// end] without slicing.
func RegionCount(stream []int32, pre, end int32) int {
	return searchRanks(stream, end+1) - searchRanks(stream, pre+1)
}

// searchRanks returns the first index whose rank is >= x (len(a) when none
// is) — an inlined branch-lean binary search over the sorted rank stream.
func searchRanks(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Tags returns the distinct element names in the index.
func (ix *Index) Tags() []string {
	var out []string
	for s, stream := range ix.elemBySym {
		if len(stream) > 0 {
			out = append(out, ix.Tree.Syms.Name(xdm.Sym(s)))
		}
	}
	sort.Strings(out)
	return out
}
