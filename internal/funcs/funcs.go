// Package funcs implements the core function library shared by the XQuery
// Core reference interpreter and the algebraic plan executor: the special
// functions of the formal semantics (fs:distinct-doc-order), the boolean
// and cardinality functions used by normalization, and the value/string
// functions of the supported fragment.
package funcs

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"xqtp/internal/xdm"
)

// Signature describes one builtin.
type Signature struct {
	Name    string
	MinArgs int
	MaxArgs int
	// ContextArg: with zero arguments the function implicitly applies to
	// the context item (fn:string(), fn:number(), …); normalization
	// supplies it.
	ContextArg bool
	// DupSensitive: the result depends on duplicates/order of node
	// arguments (blocks set-tolerant ddo removal inside the argument).
	DupSensitive bool
}

// Table lists every builtin of the fragment.
var Table = map[string]Signature{
	"ddo":             {Name: "ddo", MinArgs: 1, MaxArgs: 1},
	"count":           {Name: "count", MinArgs: 1, MaxArgs: 1, DupSensitive: true},
	"boolean":         {Name: "boolean", MinArgs: 1, MaxArgs: 1},
	"not":             {Name: "not", MinArgs: 1, MaxArgs: 1},
	"empty":           {Name: "empty", MinArgs: 1, MaxArgs: 1},
	"exists":          {Name: "exists", MinArgs: 1, MaxArgs: 1},
	"root":            {Name: "root", MinArgs: 0, MaxArgs: 1, ContextArg: true, DupSensitive: true},
	"true":            {Name: "true", MinArgs: 0, MaxArgs: 0},
	"false":           {Name: "false", MinArgs: 0, MaxArgs: 0},
	"string":          {Name: "string", MinArgs: 0, MaxArgs: 1, ContextArg: true, DupSensitive: true},
	"data":            {Name: "data", MinArgs: 1, MaxArgs: 1, DupSensitive: true},
	"number":          {Name: "number", MinArgs: 0, MaxArgs: 1, ContextArg: true, DupSensitive: true},
	"concat":          {Name: "concat", MinArgs: 2, MaxArgs: -1, DupSensitive: true},
	"contains":        {Name: "contains", MinArgs: 2, MaxArgs: 2, DupSensitive: true},
	"starts-with":     {Name: "starts-with", MinArgs: 2, MaxArgs: 2, DupSensitive: true},
	"string-length":   {Name: "string-length", MinArgs: 0, MaxArgs: 1, ContextArg: true, DupSensitive: true},
	"normalize-space": {Name: "normalize-space", MinArgs: 0, MaxArgs: 1, ContextArg: true, DupSensitive: true},
	"substring":       {Name: "substring", MinArgs: 2, MaxArgs: 3, DupSensitive: true},
	"name":            {Name: "name", MinArgs: 0, MaxArgs: 1, ContextArg: true, DupSensitive: true},
	"sum":             {Name: "sum", MinArgs: 1, MaxArgs: 1, DupSensitive: true},
	"avg":             {Name: "avg", MinArgs: 1, MaxArgs: 1, DupSensitive: true},
	"min":             {Name: "min", MinArgs: 1, MaxArgs: 1},
	"max":             {Name: "max", MinArgs: 1, MaxArgs: 1},
	// The collection access functions. Their evaluation needs the run's
	// document resolver, so the core interpreter and the physical lowering
	// intercept them (evalCall / opDoc, opCollection); the table entries give
	// them names and arities like any other builtin.
	"doc":        {Name: "doc", MinArgs: 1, MaxArgs: 1},
	"collection": {Name: "collection", MinArgs: 0, MaxArgs: 1},
}

// Lookup resolves a builtin by name.
func Lookup(name string) (Signature, bool) {
	s, ok := Table[name]
	return s, ok
}

// CheckArity validates a call's argument count.
func CheckArity(name string, n int) error {
	sig, ok := Table[name]
	if !ok {
		return fmt.Errorf("unknown function %q", name)
	}
	if n < sig.MinArgs || (sig.MaxArgs >= 0 && n > sig.MaxArgs) {
		return fmt.Errorf("%s() called with %d arguments", name, n)
	}
	return nil
}

// Fn is the compiled form of a builtin: a direct function pointer over
// already-evaluated arguments. The physical plan compiler resolves every
// Call node to its Fn once at lowering time, so invocation performs no name
// dispatch.
type Fn func(args []xdm.Sequence) (xdm.Sequence, error)

// impls binds every builtin of Table to its implementation.
var impls = map[string]Fn{
	"true": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.Bool(true)), nil
	},
	"false": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.Bool(false)), nil
	},
	"ddo": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.DDO(args[0])
	},
	"count": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.Integer(len(args[0]))), nil
	},
	"boolean": func(args []xdm.Sequence) (xdm.Sequence, error) {
		b, err := xdm.EffectiveBool(args[0])
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Bool(b)), nil
	},
	"not": func(args []xdm.Sequence) (xdm.Sequence, error) {
		b, err := xdm.EffectiveBool(args[0])
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Bool(!b)), nil
	},
	"empty": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.Bool(len(args[0]) == 0)), nil
	},
	"exists": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.Bool(len(args[0]) > 0)), nil
	},
	"root": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return invokeRoot(args[0])
	},
	"string": func(args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringValue(args[0])
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.String(s)), nil
	},
	"data": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.AtomizeSequence(args[0]), nil
	},
	"number": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return invokeNumber(args[0])
	},
	"concat": func(args []xdm.Sequence) (xdm.Sequence, error) {
		var b strings.Builder
		for _, a := range args {
			s, err := stringValue(a)
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return xdm.Singleton(xdm.String(b.String())), nil
	},
	"contains": func(args []xdm.Sequence) (xdm.Sequence, error) {
		a, b, err := stringPair(args)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Bool(strings.Contains(a, b))), nil
	},
	"starts-with": func(args []xdm.Sequence) (xdm.Sequence, error) {
		a, b, err := stringPair(args)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Bool(strings.HasPrefix(a, b))), nil
	},
	"string-length": func(args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringValue(args[0])
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Integer(len([]rune(s)))), nil
	},
	"normalize-space": func(args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringValue(args[0])
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.String(strings.Join(strings.Fields(s), " "))), nil
	},
	"substring": invokeSubstring,
	"name": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return invokeName(args[0])
	},
	"sum": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return invokeAggregate("sum", args[0])
	},
	"avg": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return invokeAggregate("avg", args[0])
	},
	"min": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return invokeAggregate("min", args[0])
	},
	"max": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return invokeAggregate("max", args[0])
	},
	// doc and collection only reach these fallbacks when evaluated without a
	// document resolver in scope (the executors bind them to the run's
	// corpus); the error names the missing piece instead of the function.
	"doc": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return nil, fmt.Errorf("doc(): no document collection bound to this evaluation")
	},
	"collection": func(args []xdm.Sequence) (xdm.Sequence, error) {
		return nil, fmt.Errorf("collection(): no document collection bound to this evaluation")
	},
}

// DocArg extracts the singleton string URI argument of fn:doc (and the
// optional collection-name argument of fn:collection) from an evaluated
// argument sequence.
func DocArg(fn string, arg xdm.Sequence) (string, error) {
	if len(arg) != 1 {
		return "", fmt.Errorf("%s(): URI argument has %d items", fn, len(arg))
	}
	s, ok := arg[0].(xdm.String)
	if !ok {
		return "", fmt.Errorf("%s(): URI argument is %T, not a string", fn, arg[0])
	}
	return string(s), nil
}

// Resolve returns the implementation of a builtin. Arity is the caller's
// responsibility (CheckArity); the returned Fn assumes a valid argument
// count.
func Resolve(name string) (Fn, bool) {
	fn, ok := impls[name]
	return fn, ok
}

// Invoke evaluates a builtin on already-evaluated arguments.
func Invoke(name string, args []xdm.Sequence) (xdm.Sequence, error) {
	fn, ok := impls[name]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", name)
	}
	return fn(args)
}

// stringPair extracts the two singleton string arguments of the binary
// string predicates.
func stringPair(args []xdm.Sequence) (string, string, error) {
	a, err := stringValue(args[0])
	if err != nil {
		return "", "", err
	}
	b, err := stringValue(args[1])
	if err != nil {
		return "", "", err
	}
	return a, b, nil
}

func invokeRoot(arg xdm.Sequence) (xdm.Sequence, error) {
	if len(arg) == 0 {
		return nil, nil
	}
	if len(arg) != 1 {
		return nil, fmt.Errorf("root() requires at most one node, got %d items", len(arg))
	}
	n, ok := arg[0].(*xdm.Node)
	if !ok {
		return nil, fmt.Errorf("root() applied to atomic value")
	}
	return xdm.Singleton(n.Doc.Root), nil
}

// stringValue implements fn:string on a sequence of at most one item.
func stringValue(s xdm.Sequence) (string, error) {
	if len(s) == 0 {
		return "", nil
	}
	if len(s) > 1 {
		return "", fmt.Errorf("string value of a sequence of %d items", len(s))
	}
	switch v := s[0].(type) {
	case *xdm.Node:
		return v.StringValue(), nil
	case xdm.String:
		return string(v), nil
	case xdm.Bool:
		return strconv.FormatBool(bool(v)), nil
	case xdm.Integer:
		return strconv.FormatInt(int64(v), 10), nil
	case xdm.Float:
		return formatFloat(float64(v)), nil
	}
	return "", fmt.Errorf("string value of %T", s[0])
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 && !math.IsInf(f, 0) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func invokeNumber(arg xdm.Sequence) (xdm.Sequence, error) {
	if len(arg) != 1 {
		return xdm.Singleton(xdm.Float(math.NaN())), nil
	}
	switch v := xdm.Atomize(arg[0]).(type) {
	case xdm.Integer:
		return xdm.Singleton(xdm.Float(float64(v))), nil
	case xdm.Float:
		return xdm.Singleton(v), nil
	case xdm.Bool:
		if v {
			return xdm.Singleton(xdm.Float(1)), nil
		}
		return xdm.Singleton(xdm.Float(0)), nil
	case xdm.String:
		f, err := strconv.ParseFloat(strings.TrimSpace(string(v)), 64)
		if err != nil {
			return xdm.Singleton(xdm.Float(math.NaN())), nil
		}
		return xdm.Singleton(xdm.Float(f)), nil
	}
	return xdm.Singleton(xdm.Float(math.NaN())), nil
}

// numArg extracts a required singleton numeric argument.
func numArg(s xdm.Sequence, fn string) (float64, error) {
	if len(s) != 1 {
		return 0, fmt.Errorf("%s(): numeric argument has %d items", fn, len(s))
	}
	if f, ok := xdm.NumericValue(s[0]); ok {
		return f, nil
	}
	return 0, fmt.Errorf("%s(): argument %v is not numeric", fn, s[0])
}

func invokeSubstring(args []xdm.Sequence) (xdm.Sequence, error) {
	s, err := stringValue(args[0])
	if err != nil {
		return nil, err
	}
	start, err := numArg(args[1], "substring")
	if err != nil {
		return nil, err
	}
	runes := []rune(s)
	// XPath substring: 1-based, rounding; simplified to the common case.
	from := int(math.Round(start)) - 1
	to := len(runes)
	if len(args) == 3 {
		length, err := numArg(args[2], "substring")
		if err != nil {
			return nil, err
		}
		to = from + int(math.Round(length))
	}
	if from < 0 {
		from = 0
	}
	if to > len(runes) {
		to = len(runes)
	}
	if from >= len(runes) || to <= from {
		return xdm.Singleton(xdm.String("")), nil
	}
	return xdm.Singleton(xdm.String(string(runes[from:to]))), nil
}

func invokeName(arg xdm.Sequence) (xdm.Sequence, error) {
	if len(arg) == 0 {
		return xdm.Singleton(xdm.String("")), nil
	}
	if len(arg) != 1 {
		return nil, fmt.Errorf("name() requires at most one node")
	}
	n, ok := arg[0].(*xdm.Node)
	if !ok {
		return nil, fmt.Errorf("name() applied to atomic value")
	}
	return xdm.Singleton(xdm.String(n.Name)), nil
}

func invokeAggregate(name string, arg xdm.Sequence) (xdm.Sequence, error) {
	if len(arg) == 0 {
		if name == "sum" {
			return xdm.Singleton(xdm.Integer(0)), nil
		}
		return nil, nil
	}
	nums := make([]float64, len(arg))
	allInt := true
	for i, it := range arg {
		a := xdm.Atomize(it)
		switch v := a.(type) {
		case xdm.Integer:
			nums[i] = float64(v)
		case xdm.Float:
			nums[i] = float64(v)
			allInt = false
		case xdm.String:
			f, err := strconv.ParseFloat(strings.TrimSpace(string(v)), 64)
			if err != nil {
				return nil, fmt.Errorf("%s(): cannot cast %q to a number", name, string(v))
			}
			nums[i] = f
			allInt = false
		default:
			return nil, fmt.Errorf("%s() over non-numeric item %T", name, a)
		}
	}
	out := nums[0]
	for _, f := range nums[1:] {
		switch name {
		case "sum", "avg":
			out += f
		case "min":
			out = math.Min(out, f)
		case "max":
			out = math.Max(out, f)
		}
	}
	if name == "avg" {
		out /= float64(len(nums))
		allInt = false
	}
	if allInt && out == math.Trunc(out) {
		return xdm.Singleton(xdm.Integer(int64(out))), nil
	}
	return xdm.Singleton(xdm.Float(out)), nil
}
