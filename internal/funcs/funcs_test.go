package funcs

import (
	"math"
	"strings"
	"testing"

	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

func seq(items ...xdm.Item) xdm.Sequence { return xdm.Sequence(items) }

func one(t *testing.T, name string, args ...xdm.Sequence) xdm.Item {
	t.Helper()
	out, err := Invoke(name, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(out) != 1 {
		t.Fatalf("%s returned %d items", name, len(out))
	}
	return out[0]
}

func TestBooleanFamily(t *testing.T) {
	if v := one(t, "boolean", seq(xdm.String("x"))); v != xdm.Bool(true) {
		t.Errorf("boolean = %v", v)
	}
	if v := one(t, "not", seq()); v != xdm.Bool(true) {
		t.Errorf("not(()) = %v", v)
	}
	if v := one(t, "empty", seq()); v != xdm.Bool(true) {
		t.Errorf("empty = %v", v)
	}
	if v := one(t, "exists", seq(xdm.Integer(1))); v != xdm.Bool(true) {
		t.Errorf("exists = %v", v)
	}
	if v := one(t, "count", seq(xdm.Integer(1), xdm.Integer(2))); v != xdm.Integer(2) {
		t.Errorf("count = %v", v)
	}
	if one(t, "true") != xdm.Bool(true) || one(t, "false") != xdm.Bool(false) {
		t.Error("true/false broken")
	}
}

func TestStringFamily(t *testing.T) {
	tr, err := xmlstore.ParseString(`<a><b>he</b><b>llo</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	el := tr.DocElem()
	if v := one(t, "string", seq(el)); v != xdm.String("hello") {
		t.Errorf("string(node) = %v", v)
	}
	if v := one(t, "string", seq()); v != xdm.String("") {
		t.Errorf("string(()) = %v", v)
	}
	if v := one(t, "string", seq(xdm.Float(2))); v != xdm.String("2") {
		t.Errorf("string(2e0) = %v", v)
	}
	if v := one(t, "concat", seq(xdm.String("a")), seq(el), seq(xdm.Integer(7))); v != xdm.String("ahello7") {
		t.Errorf("concat = %v", v)
	}
	if v := one(t, "contains", seq(el), seq(xdm.String("ell"))); v != xdm.Bool(true) {
		t.Errorf("contains = %v", v)
	}
	if v := one(t, "starts-with", seq(el), seq(xdm.String("he"))); v != xdm.Bool(true) {
		t.Errorf("starts-with = %v", v)
	}
	if v := one(t, "string-length", seq(el)); v != xdm.Integer(5) {
		t.Errorf("string-length = %v", v)
	}
	if v := one(t, "normalize-space", seq(xdm.String("  a  b \n c "))); v != xdm.String("a b c") {
		t.Errorf("normalize-space = %v", v)
	}
	if v := one(t, "substring", seq(xdm.String("hello")), seq(xdm.Integer(2)), seq(xdm.Integer(3))); v != xdm.String("ell") {
		t.Errorf("substring = %v", v)
	}
	if v := one(t, "substring", seq(xdm.String("hello")), seq(xdm.Integer(4))); v != xdm.String("lo") {
		t.Errorf("substring open = %v", v)
	}
	if v := one(t, "name", seq(el)); v != xdm.String("a") {
		t.Errorf("name = %v", v)
	}
	// Errors: string value of multi-item sequences.
	if _, err := Invoke("string", []xdm.Sequence{seq(xdm.String("a"), xdm.String("b"))}); err == nil {
		t.Error("string over 2 items should fail")
	}
}

func TestNumberAndAggregates(t *testing.T) {
	if v := one(t, "number", seq(xdm.String(" 2.5 "))); v != xdm.Float(2.5) {
		t.Errorf("number = %v", v)
	}
	if v := one(t, "number", seq(xdm.String("nope"))); !math.IsNaN(float64(v.(xdm.Float))) {
		t.Errorf("number(junk) = %v, want NaN", v)
	}
	if v := one(t, "number", seq(xdm.Bool(true))); v != xdm.Float(1) {
		t.Errorf("number(true) = %v", v)
	}
	if v := one(t, "sum", seq(xdm.Integer(1), xdm.Integer(2), xdm.Integer(3))); v != xdm.Integer(6) {
		t.Errorf("sum = %v", v)
	}
	if v := one(t, "sum", seq()); v != xdm.Integer(0) {
		t.Errorf("sum(()) = %v", v)
	}
	if v := one(t, "avg", seq(xdm.Integer(1), xdm.Integer(2))); v != xdm.Float(1.5) {
		t.Errorf("avg = %v", v)
	}
	if v := one(t, "min", seq(xdm.Integer(4), xdm.String("2"), xdm.Float(3))); v != xdm.Float(2) {
		t.Errorf("min = %v", v)
	}
	if v := one(t, "max", seq(xdm.Integer(4), xdm.String("7"))); v != xdm.Float(7) {
		t.Errorf("max = %v", v)
	}
	// Empty min/max/avg give empty.
	if out, err := Invoke("max", []xdm.Sequence{seq()}); err != nil || len(out) != 0 {
		t.Errorf("max(()) = %v, %v", out, err)
	}
	if _, err := Invoke("sum", []xdm.Sequence{seq(xdm.Bool(true))}); err == nil {
		t.Error("sum over boolean should fail")
	}
}

func TestDataAndRoot(t *testing.T) {
	tr, _ := xmlstore.ParseString(`<a><b>x</b></a>`)
	b := tr.DocElem().Children[0]
	out, err := Invoke("data", []xdm.Sequence{seq(b, xdm.Integer(3))})
	if err != nil || len(out) != 2 {
		t.Fatalf("data: %v %v", out, err)
	}
	if out[0] != xdm.String("x") || out[1] != xdm.Integer(3) {
		t.Errorf("data = %v", out)
	}
	if v := one(t, "root", seq(b)); v != xdm.Item(tr.Root) {
		t.Errorf("root = %v", v)
	}
	if out, err := Invoke("root", []xdm.Sequence{seq()}); err != nil || len(out) != 0 {
		t.Errorf("root(()) = %v, %v", out, err)
	}
}

func TestArityChecks(t *testing.T) {
	cases := map[string]int{
		"count": 0, "boolean": 2, "concat": 1, "substring": 4, "true": 1,
	}
	for name, n := range cases {
		if err := CheckArity(name, n); err == nil {
			t.Errorf("CheckArity(%s, %d) should fail", name, n)
		}
	}
	if err := CheckArity("nope", 1); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown function: %v", err)
	}
	if err := CheckArity("concat", 5); err != nil {
		t.Errorf("concat/5: %v", err)
	}
}

func TestTableConsistency(t *testing.T) {
	for name, sig := range Table {
		if sig.Name != name {
			t.Errorf("table key %q has Name %q", name, sig.Name)
		}
		if sig.MaxArgs >= 0 && sig.MaxArgs < sig.MinArgs {
			t.Errorf("%s: MaxArgs < MinArgs", name)
		}
	}
}
