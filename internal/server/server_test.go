package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xqtp"
)

// testCorpus builds a small corpus from inline documents.
func testCorpus(t *testing.T, docs ...string) *xqtp.Corpus {
	t.Helper()
	sources := make([]xqtp.CorpusSource, len(docs))
	for i, d := range docs {
		sources[i] = xqtp.CorpusSource{
			URI:  fmt.Sprintf("mem://doc-%d.xml", i),
			Data: []byte(d),
		}
	}
	c, err := xqtp.LoadCorpus(sources, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// fiveNames is a document with five result rows for $input//person/name.
const fiveNames = `<site><people>` +
	`<person><name>ada</name></person>` +
	`<person><name>grace</name></person>` +
	`<person><name>edsger</name></person>` +
	`<person><name>barbara</name></person>` +
	`<person><name>donald</name></person>` +
	`</people></site>`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.AddCorpus("main", testCorpus(t, fiveNames))
	return s
}

// postQuery sends one POST /query through the handler and returns the
// recorded response.
func postQuery(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// parseNDJSON splits a response into item lines and the summary.
func parseNDJSON(t *testing.T, body string) ([]wireItem, wireSummary) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(body), "\n")
	var items []wireItem
	var sum wireSummary
	for i, line := range lines {
		if i == len(lines)-1 {
			var wrap struct {
				Summary wireSummary `json:"summary"`
			}
			if err := json.Unmarshal([]byte(line), &wrap); err != nil {
				t.Fatalf("bad summary line %q: %v", line, err)
			}
			sum = wrap.Summary
			continue
		}
		var it wireItem
		if err := json.Unmarshal([]byte(line), &it); err != nil {
			t.Fatalf("bad item line %q: %v", line, err)
		}
		items = append(items, it)
	}
	return items, sum
}

// Request validation: every malformed request maps to its specific status
// code without consuming a worker slot, and the compile error carries the
// compiler's text.
func TestHandleQueryValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 256})
	cases := []struct {
		name     string
		method   string
		body     string
		wantCode int
		wantSub  string // substring of the response body
	}{
		{"method", http.MethodGet, `{"query": "$input//person"}`, http.StatusMethodNotAllowed, "POST only"},
		{"bad-json", http.MethodPost, `{"query": `, http.StatusBadRequest, "bad request body"},
		{"missing-query", http.MethodPost, `{}`, http.StatusBadRequest, "missing query"},
		{"unknown-corpus", http.MethodPost, `{"query": "$input//a", "corpus": "nope"}`, http.StatusNotFound, `no corpus \"nope\"`},
		{"bad-alg", http.MethodPost, `{"query": "$input//a", "alg": "quantum"}`, http.StatusBadRequest, "quantum"},
		{"bad-format", http.MethodPost, `{"query": "$input//a", "format": "csv"}`, http.StatusBadRequest, "csv"},
		{"bad-timeout", http.MethodPost, `{"query": "$input//a", "timeout": "soon"}`, http.StatusBadRequest, "soon"},
		{"compile-error", http.MethodPost, `{"query": "$input//person["}`, http.StatusBadRequest, ""},
		{"too-large", http.MethodPost, `{"query": "$input//a", "corpus": "` + strings.Repeat("x", 300) + `"}`, http.StatusRequestEntityTooLarge, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, "/query", strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %q)", rec.Code, tc.wantCode, rec.Body.String())
			}
			if tc.wantSub != "" && !strings.Contains(rec.Body.String(), tc.wantSub) {
				t.Fatalf("body %q does not mention %q", rec.Body.String(), tc.wantSub)
			}
			if tc.name == "compile-error" && len(rec.Body.String()) < 10 {
				t.Fatalf("compile error carries no compiler text: %q", rec.Body.String())
			}
		})
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("validation failures consumed worker slots: inflight = %d", got)
	}
}

// The streamed NDJSON body must agree with a direct engine run: same rows in
// the same order, then an ok summary with the exact row count.
func TestQueryStreamsEngineResult(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postQuery(t, s, `{"query": "$input//person/name", "alg": "sc"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("Content-Type = %q", ct)
	}
	items, sum := parseNDJSON(t, rec.Body.String())

	corpus, _ := s.Corpus("main")
	q, err := xqtp.PrepareCached(`$input//person/name`)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := corpus.Run(q, xqtp.Staircase)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(seq) {
		t.Fatalf("streamed %d items, engine returned %d", len(items), len(seq))
	}
	for i, it := range items {
		if want := xqtp.SerializeItem(seq[i]); it.Value != want {
			t.Fatalf("item %d = %q, want %q", i, it.Value, want)
		}
	}
	if sum.Status != statusOK || sum.Rows != int64(len(seq)) || sum.Cached {
		t.Fatalf("summary = %+v, want ok with %d rows, uncached", sum, len(seq))
	}
}

// XML format: a <results> stream of <item> elements closed by a <summary/>
// carrying the same status fields.
func TestQueryXMLFormat(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postQuery(t, s, `{"query": "$input//person/name", "format": "xml"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "xml") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.HasPrefix(body, "<results>\n") || !strings.HasSuffix(body, "</results>\n") {
		t.Fatalf("body not wrapped in <results>: %q", body)
	}
	if got := strings.Count(body, "<item"); got != 5 {
		t.Fatalf("%d <item> elements, want 5", got)
	}
	if !strings.Contains(body, `<summary status="ok" rows="5"`) {
		t.Fatalf("missing ok summary: %q", body)
	}
	if !strings.Contains(body, "<name>ada</name>") {
		t.Fatalf("items do not carry node XML: %q", body)
	}
}

// A row budget stops the stream after exactly the limit and reports
// limit-reached; a deadline stop reports timeout. The two must never be
// conflated — limit-reached is deterministic and cacheable, timeout is not.
func TestLimitVersusTimeout(t *testing.T) {
	s := newTestServer(t, Config{})

	rec := postQuery(t, s, `{"query": "$input//person/name", "limit": 2}`)
	items, sum := parseNDJSON(t, rec.Body.String())
	if len(items) != 2 {
		t.Fatalf("limit 2 streamed %d items", len(items))
	}
	if sum.Status != statusLimit {
		t.Fatalf("limit summary status = %q, want %q", sum.Status, statusLimit)
	}

	rec = postQuery(t, s, `{"query": "$input//person/name", "timeout": "1ns"}`)
	_, sum = parseNDJSON(t, rec.Body.String())
	if sum.Status != statusTimeout {
		t.Fatalf("timeout summary status = %q, want %q", sum.Status, statusTimeout)
	}
}

// The server-side row cap applies even when the request asks for more (or
// for no limit at all).
func TestServerRowCap(t *testing.T) {
	s := newTestServer(t, Config{MaxRows: 3})
	rec := postQuery(t, s, `{"query": "$input//person/name", "limit": 100}`)
	items, sum := parseNDJSON(t, rec.Body.String())
	if len(items) != 3 || sum.Status != statusLimit {
		t.Fatalf("server cap 3: streamed %d items, status %q", len(items), sum.Status)
	}
}

// Result-cache lifecycle over HTTP: a repeat of the same request is a hit
// served byte-for-byte with cached=true; an /extend bumps the corpus epoch,
// so the same request misses and sees the new member's rows.
func TestResultCacheHitThenExtendInvalidates(t *testing.T) {
	s := newTestServer(t, Config{})
	reqBody := `{"query": "$input//person/name", "alg": "sc"}`

	first := postQuery(t, s, reqBody)
	if got := first.Header().Get("X-Result-Cache"); got != "miss" {
		t.Fatalf("first request X-Result-Cache = %q, want miss", got)
	}
	firstItems, firstSum := parseNDJSON(t, first.Body.String())

	second := postQuery(t, s, reqBody)
	if got := second.Header().Get("X-Result-Cache"); got != "hit" {
		t.Fatalf("second request X-Result-Cache = %q, want hit", got)
	}
	secondItems, secondSum := parseNDJSON(t, second.Body.String())
	if len(secondItems) != len(firstItems) {
		t.Fatalf("cached replay has %d items, original %d", len(secondItems), len(firstItems))
	}
	for i := range secondItems {
		if secondItems[i] != firstItems[i] {
			t.Fatalf("cached item %d = %+v, original %+v", i, secondItems[i], firstItems[i])
		}
	}
	if !secondSum.Cached || secondSum.Rows != firstSum.Rows {
		t.Fatalf("cached summary = %+v, want cached with %d rows", secondSum, firstSum.Rows)
	}
	if st := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Hits)
	}

	ext := httptest.NewRequest(http.MethodPost, "/extend", strings.NewReader(
		`{"corpus": "main", "documents": [{"uri": "mem://extra.xml", "xml": "<site><people><person><name>alan</name></person></people></site>"}]}`))
	extRec := httptest.NewRecorder()
	s.Handler().ServeHTTP(extRec, ext)
	if extRec.Code != http.StatusOK {
		t.Fatalf("extend status = %d: %s", extRec.Code, extRec.Body.String())
	}
	var extResp struct {
		Members int    `json:"members"`
		Epoch   uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(extRec.Body.Bytes(), &extResp); err != nil {
		t.Fatal(err)
	}
	if extResp.Members != 2 || extResp.Epoch != 1 {
		t.Fatalf("extend response = %+v, want 2 members at epoch 1", extResp)
	}

	third := postQuery(t, s, reqBody)
	if got := third.Header().Get("X-Result-Cache"); got != "miss" {
		t.Fatalf("post-extend request X-Result-Cache = %q, want miss (epoch must invalidate)", got)
	}
	thirdItems, thirdSum := parseNDJSON(t, third.Body.String())
	if len(thirdItems) != len(firstItems)+1 {
		t.Fatalf("post-extend streamed %d items, want %d", len(thirdItems), len(firstItems)+1)
	}
	if thirdSum.Cached {
		t.Fatalf("post-extend summary claims cached: %+v", thirdSum)
	}
}

// Requests that differ only in worker count share one cache entry (the
// corpus-order merge makes the bytes identical), while a different format or
// budget is a distinct key.
func TestCacheKeyIgnoresWorkers(t *testing.T) {
	s := newTestServer(t, Config{MaxWorkers: 4})
	postQuery(t, s, `{"query": "$input//person/name", "workers": 1}`)
	rec := postQuery(t, s, `{"query": "$input//person/name", "workers": 4}`)
	if got := rec.Header().Get("X-Result-Cache"); got != "hit" {
		t.Fatalf("different worker count missed the cache (X-Result-Cache = %q)", got)
	}
	rec = postQuery(t, s, `{"query": "$input//person/name", "limit": 2}`)
	if got := rec.Header().Get("X-Result-Cache"); got != "miss" {
		t.Fatalf("different limit hit the cache (X-Result-Cache = %q)", got)
	}
}

// An empty corpus name resolves if and only if exactly one corpus is
// registered.
func TestDefaultCorpusResolution(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postQuery(t, s, `{"query": "$input//person/name"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("single-corpus default failed: %d %s", rec.Code, rec.Body.String())
	}
	s.AddCorpus("other", testCorpus(t, `<r/>`))
	rec = postQuery(t, s, `{"query": "$input//person/name"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("ambiguous empty corpus resolved: %d", rec.Code)
	}
}

// /metrics exposes the request counters, the latency histogram, and all
// three cache counter families in the Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	postQuery(t, s, `{"query": "$input//person/name"}`)
	postQuery(t, s, `{"query": "$input//person/name"}`) // cache hit
	postQuery(t, s, `{"query": "$input//person/name", "limit": 1}`)
	postQuery(t, s, `{"query": "("}`) // 400

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`xqd_requests_total{outcome="ok"} 2`,
		`xqd_requests_total{outcome="limit_reached"} 1`,
		`xqd_requests_total{outcome="bad_request"} 1`,
		`xqd_request_seconds_bucket{le="+Inf"} 3`,
		"xqd_request_seconds_sum",
		`xqd_request_seconds_quantile{q="0.99"}`,
		"xqd_rows_total 11",
		"xqd_result_cache_served_total 1",
		"xqd_plan_cache_hits_total",
		"xqd_prep_cache_entries",
		"xqd_result_cache_hits_total 1",
		"xqd_result_cache_bytes",
		`xqd_corpus_members{corpus="main"} 1`,
		`xqd_corpus_epoch{corpus="main"} 0`,
		"xqd_shed_total 0",
		"xqd_inflight 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// The histogram quantile estimator: with all mass in known buckets the
// interpolated quantiles stay inside those buckets' bounds.
func TestMetricsQuantile(t *testing.T) {
	m := newMetrics()
	for i := 0; i < 90; i++ {
		m.observe(2 * time.Millisecond) // bucket (0.001, 0.0025]
	}
	for i := 0; i < 10; i++ {
		m.observe(400 * time.Millisecond) // bucket (0.25, 0.5]
	}
	if p50 := m.quantile(0.5); p50 < 0.001 || p50 > 0.0025 {
		t.Fatalf("p50 = %v, want within (0.001, 0.0025]", p50)
	}
	if p99 := m.quantile(0.99); p99 < 0.25 || p99 > 0.5 {
		t.Fatalf("p99 = %v, want within (0.25, 0.5]", p99)
	}
}

// The result cache respects both bounds: entry count and total bytes, with
// per-entry oversize bodies never stored.
func TestResultCacheBounds(t *testing.T) {
	rc := newResultCache(2, 1000)
	entry := func(q string, n int) *cacheEntry {
		return &cacheEntry{
			key:    cacheKey{corpus: "c", query: q},
			body:   bytes.Repeat([]byte("x"), n),
			status: statusOK,
		}
	}
	rc.put(entry("a", 50))
	rc.put(entry("b", 50))
	rc.put(entry("c", 50)) // evicts a (LRU)
	if _, ok := rc.get(cacheKey{corpus: "c", query: "a"}); ok {
		t.Fatal("count bound did not evict the oldest entry")
	}
	if _, ok := rc.get(cacheKey{corpus: "c", query: "b"}); !ok {
		t.Fatal("entry b evicted prematurely")
	}

	rc.put(entry("big", 500)) // over maxBytes/8 = 125: never stored
	if _, ok := rc.get(cacheKey{corpus: "c", query: "big"}); ok {
		t.Fatal("oversized entry was stored")
	}

	rc.put(entry("d", 100)) // bytes: b(50)+c(50)+d(100)=200 > ... still under 1000, count evicts b? b was just touched by get, so c goes
	st := rc.stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	rc.invalidateCorpus("c")
	if st := rc.stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("invalidateCorpus left %d entries, %d bytes", st.Entries, st.Bytes)
	}

	// Nil receiver (cache disabled) is a no-op everywhere.
	var nilRC *resultCache
	nilRC.put(entry("x", 1))
	if _, ok := nilRC.get(cacheKey{}); ok {
		t.Fatal("nil cache returned a hit")
	}
	nilRC.invalidateCorpus("c")
}
