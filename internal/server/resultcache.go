package server

import (
	"container/list"
	"sync"

	"xqtp"
)

// cacheKey identifies one cacheable response: everything that determines the
// bytes a request streams. The corpus epoch is the invalidation hook — an
// Extend swap changes the epoch, so every entry computed against the old
// membership stops matching without any scan or flush. Workers are absent on
// purpose: the result is identical at any worker count (the corpus-order
// merge guarantees it), so requests differing only in parallelism share an
// entry.
type cacheKey struct {
	corpus string
	epoch  uint64
	query  string
	alg    string
	format string
	rows   int64 // effective row budget (0: unlimited)
	bytes  int64 // effective byte budget (0: unlimited)
}

// cacheEntry is one stored response: the rendered item lines (without the
// summary, which is re-rendered per hit so it can say cached=true) plus the
// summary fields of the original run.
type cacheEntry struct {
	key  cacheKey
	body []byte
	info xqtp.RunInfo
	// status is the original run's terminal status: "ok" or "limit-reached"
	// (nothing else is cached — a timeout's prefix depends on wall clock, not
	// on the request, so replaying it would be wrong).
	status string
}

// resultCache is a bounded LRU over rendered responses, limited both by
// entry count and by total stored bytes. Entries larger than the per-entry
// cap are never stored: one huge result must not evict the whole working set
// of small hot answers.
type resultCache struct {
	mu       sync.Mutex
	maxN     int
	maxBytes int64
	perEntry int64
	lru      *list.List // front = most recently used; values are *cacheEntry
	entries  map[cacheKey]*list.Element
	bytes    int64

	hits, misses, evictions uint64
}

func newResultCache(maxN int, maxBytes int64) *resultCache {
	perEntry := maxBytes / 8
	if perEntry < 1 {
		perEntry = 1
	}
	return &resultCache{
		maxN:     maxN,
		maxBytes: maxBytes,
		perEntry: perEntry,
		lru:      list.New(),
		entries:  make(map[cacheKey]*list.Element, min(maxN, 64)),
	}
}

// get returns the cached entry for key, marking it most recently used.
func (rc *resultCache) get(key cacheKey) (*cacheEntry, bool) {
	if rc == nil {
		return nil, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.entries[key]
	if !ok {
		rc.misses++
		return nil, false
	}
	rc.hits++
	rc.lru.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores a completed response, evicting from the LRU tail until both
// bounds hold. Oversized bodies are dropped silently.
func (rc *resultCache) put(e *cacheEntry) {
	if rc == nil || int64(len(e.body)) > rc.perEntry {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[e.key]; ok {
		// Same key stored twice (concurrent misses): keep the fresher body.
		rc.bytes += int64(len(e.body)) - int64(len(el.Value.(*cacheEntry).body))
		el.Value = e
		rc.lru.MoveToFront(el)
	} else {
		rc.entries[e.key] = rc.lru.PushFront(e)
		rc.bytes += int64(len(e.body))
	}
	for rc.lru.Len() > rc.maxN || rc.bytes > rc.maxBytes {
		oldest := rc.lru.Back()
		if oldest == nil {
			break
		}
		ev := oldest.Value.(*cacheEntry)
		rc.lru.Remove(oldest)
		delete(rc.entries, ev.key)
		rc.bytes -= int64(len(ev.body))
		rc.evictions++
	}
}

// invalidateCorpus drops every entry of the named corpus. The epoch key
// already makes stale entries unreachable after an Extend; this proactive
// sweep just returns their bytes to the budget immediately instead of
// waiting for LRU aging.
func (rc *resultCache) invalidateCorpus(name string) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for el := rc.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.key.corpus == name {
			rc.lru.Remove(el)
			delete(rc.entries, e.key)
			rc.bytes -= int64(len(e.body))
			rc.evictions++
		}
		el = next
	}
}

// CacheStats is a snapshot of the result cache counters, exported on
// /metrics next to the plan- and prep-cache stats.
type CacheStats struct {
	Entries   int
	Bytes     int64
	Capacity  int
	MaxBytes  int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

func (rc *resultCache) stats() CacheStats {
	if rc == nil {
		return CacheStats{}
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return CacheStats{
		Entries:   rc.lru.Len(),
		Bytes:     rc.bytes,
		Capacity:  rc.maxN,
		MaxBytes:  rc.maxBytes,
		Hits:      rc.hits,
		Misses:    rc.misses,
		Evictions: rc.evictions,
	}
}
