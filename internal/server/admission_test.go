package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Admission invariants: slots bound concurrency, the queue bounds waiting,
// and everything past both sheds immediately — the queue can never grow
// without bound.
func TestAdmissionSlotsAndQueue(t *testing.T) {
	adm := newAdmission(1, 1, time.Second)

	release1, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := adm.InFlight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}

	// Second caller takes the single queue token and waits for the slot.
	acquired := make(chan func(), 1)
	go func() {
		rel, err := adm.acquire(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		acquired <- rel
	}()
	waitFor(t, func() bool { return adm.QueueDepth() == 1 })

	// Third caller finds slots and queue full: immediate shed, no waiting.
	start := time.Now()
	if _, err := adm.acquire(context.Background()); !errors.Is(err, errShed) {
		t.Fatalf("third acquire = %v, want errShed", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("shed took %v, want immediate", d)
	}
	if got := adm.Shed(); got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}

	// Releasing the slot promotes the queued caller.
	release1()
	select {
	case rel := <-acquired:
		rel()
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller never got the released slot")
	}
	if got := adm.InFlight(); got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}
}

// A queued request sheds once QueueWait expires without a slot.
func TestAdmissionQueueWaitExpires(t *testing.T) {
	adm := newAdmission(1, 1, 30*time.Millisecond)
	release, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := adm.acquire(context.Background()); !errors.Is(err, errShed) {
		t.Fatalf("queued acquire = %v, want errShed after QueueWait", err)
	}
	if got := adm.Shed(); got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}
	if got := adm.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after shed = %d, want 0 (token leaked)", got)
	}
}

// A queued caller whose request context ends leaves the queue without
// counting as shed.
func TestAdmissionQueueContextCancel(t *testing.T) {
	adm := newAdmission(1, 1, time.Minute)
	release, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := adm.acquire(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return adm.QueueDepth() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	if got := adm.Shed(); got != 0 {
		t.Fatalf("context cancel counted as shed: %d", got)
	}
	if got := adm.QueueDepth(); got != 0 {
		t.Fatalf("queue depth = %d, want 0", got)
	}
}

// blockingWriter is a ResponseWriter whose first Write parks until released,
// pinning its request inside the handler — the deterministic way to hold a
// worker slot while a second request probes admission.
type blockingWriter struct {
	mu      sync.Mutex
	header  http.Header
	entered chan struct{} // closed on first Write
	release chan struct{} // Write returns once closed
	once    sync.Once
}

func newBlockingWriter() *blockingWriter {
	return &blockingWriter{
		header:  make(http.Header),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (b *blockingWriter) Header() http.Header {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.header
}
func (b *blockingWriter) WriteHeader(int) {}
func (b *blockingWriter) Write(p []byte) (int, error) {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return len(p), nil
}

// Overload sheds: with one worker slot and no queue, a request stalled in
// its response stream holds the slot, and the next request gets 429 with a
// Retry-After header instead of waiting unboundedly.
func TestQuerySheds429UnderLoad(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, NoResultCache: true})

	bw := newBlockingWriter()
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(bw.release) }) }
	defer unblock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest(http.MethodPost, "/query",
			strings.NewReader(`{"query": "$input//person/name"}`))
		s.Handler().ServeHTTP(bw, req)
	}()
	<-bw.entered // the first request streams, so it holds the slot
	if got := s.InFlight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}

	rec := postQuery(t, s, `{"query": "$input//person/name"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %q)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	unblock()
	<-done
	waitFor(t, func() bool { return s.InFlight() == 0 })

	// With the slot free again the same request is admitted.
	rec = postQuery(t, s, `{"query": "$input//person/name"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release status = %d", rec.Code)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
