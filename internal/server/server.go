// Package server is the network serving tier over the xqtp engine: an HTTP
// query endpoint that amortizes one compiled plan across millions of
// requests. POST /query streams results as NDJSON or XML, each request
// running under an execution budget derived from both the client's ask and
// the server's caps; around the engine sit admission control (a bounded
// worker pool with a bounded wait queue — overload sheds with 429 instead of
// queueing unboundedly), a bounded LRU result cache keyed by (query, corpus
// name, corpus epoch) so Extend invalidates by construction, and a /metrics
// endpoint in the Prometheus text format built from the engine's own cache
// counters plus the server's latency histogram.
//
// The package deliberately sits above the public xqtp surface: everything it
// needs — PrepareCached-style plan caching, Corpus.RunWith streaming with
// budgets, Corpus.Epoch — is exported engine API, so the server is a client
// of the engine, not a backdoor into it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"xqtp"
)

// Config sizes the server. The zero value of any field falls back to the
// default noted on it, so Config{} is a usable single-tenant configuration.
type Config struct {
	// MaxConcurrent is the worker-pool size: queries evaluating at once
	// (default: one per available CPU).
	MaxConcurrent int
	// MaxQueue bounds the requests allowed to wait for a worker slot beyond
	// MaxConcurrent (default: 4× MaxConcurrent). Everything past the queue
	// sheds with 429.
	MaxQueue int
	// QueueWait bounds how long a queued request waits before shedding
	// (default: 2s).
	QueueWait time.Duration
	// MaxBodyBytes caps the request body size (default: 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout applies when a request asks for no timeout
	// (default: 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the timeout a request may ask for (default: 2m).
	MaxTimeout time.Duration
	// MaxRows / MaxBytes, when positive, cap every request's row/byte budget
	// regardless of what it asked for (default: unbounded).
	MaxRows  int64
	MaxBytes int64
	// MaxWorkers caps the per-request evaluation parallelism a client may
	// request (default: one per available CPU). The default per-request
	// worker count is 1: cross-request parallelism comes from the pool.
	MaxWorkers int
	// ResultCacheEntries / ResultCacheBytes bound the result cache
	// (defaults: 1024 entries, 64 MiB). NoResultCache disables it.
	ResultCacheEntries int
	ResultCacheBytes   int64
	NoResultCache      bool
	// PlanCacheSize bounds the compiled-query cache (default:
	// xqtp.DefaultPlanCacheSize).
	PlanCacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.ResultCacheEntries <= 0 {
		c.ResultCacheEntries = 1024
	}
	if c.ResultCacheBytes <= 0 {
		c.ResultCacheBytes = 64 << 20
	}
	return c
}

// Server is one serving process: a registry of named corpora, the shared
// plan cache, admission control, the result cache, and the metrics set. All
// methods are safe for concurrent use.
type Server struct {
	cfg     Config
	plans   *xqtp.PlanCache
	adm     *admission
	cache   *resultCache // nil when disabled
	metrics *metrics

	mu      sync.RWMutex
	corpora map[string]*xqtp.Corpus

	// base is canceled to hard-stop every in-flight evaluation once the
	// graceful-shutdown drain deadline has passed; each request's execution
	// context is tied to it.
	base       context.Context
	baseCancel context.CancelFunc

	hs       *http.Server
	inflight sync.WaitGroup
}

// New builds a server with no corpora; register them with AddCorpus.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		plans:   xqtp.NewPlanCache(cfg.PlanCacheSize),
		adm:     newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueWait),
		metrics: newMetrics(),
		corpora: make(map[string]*xqtp.Corpus),
	}
	if !cfg.NoResultCache {
		s.cache = newResultCache(cfg.ResultCacheEntries, cfg.ResultCacheBytes)
	}
	s.base, s.baseCancel = context.WithCancel(context.Background())
	s.hs = &http.Server{Handler: s.Handler()}
	return s
}

// AddCorpus registers (or replaces) a corpus under name. Replacing drops the
// name's result-cache entries, since an unrelated corpus restarts the epoch
// lineage.
func (s *Server) AddCorpus(name string, c *xqtp.Corpus) {
	s.mu.Lock()
	s.corpora[name] = c
	s.mu.Unlock()
	s.cache.invalidateCorpus(name)
}

// Corpus returns the corpus registered under name.
func (s *Server) Corpus(name string) (*xqtp.Corpus, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.corpora[name]
	return c, ok
}

// resolveCorpus looks up a request's corpus: an empty name resolves when
// exactly one corpus is registered (the single-tenant convenience).
func (s *Server) resolveCorpus(name string) (*xqtp.Corpus, string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" && len(s.corpora) == 1 {
		for n, c := range s.corpora {
			return c, n, true
		}
	}
	c, ok := s.corpora[name]
	return c, name, ok
}

// ExtendCorpus ingests additional sources into the named corpus and swaps
// the grown snapshot into the registry. In-flight queries keep the corpus
// they resolved; new requests see the new membership, and the epoch bump
// retires every cached result of the old one.
func (s *Server) ExtendCorpus(name string, sources []xqtp.CorpusSource, workers int) (*xqtp.Corpus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.corpora[name]
	if !ok {
		return nil, fmt.Errorf("no corpus %q", name)
	}
	grown, err := cur.Extend(sources, workers)
	if err != nil {
		return nil, err
	}
	s.corpora[name] = grown
	// The epoch key already unreaches the old entries; sweep them so their
	// bytes return to the cache budget immediately.
	s.cache.invalidateCorpus(name)
	return grown, nil
}

// CacheStats returns the result-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// InFlight returns the number of requests holding worker slots.
func (s *Server) InFlight() int { return s.adm.InFlight() }

// QueueDepth returns the number of requests waiting for a slot.
func (s *Server) QueueDepth() int { return s.adm.QueueDepth() }

// Handler returns the server's routing handler:
//
//	POST /query    evaluate a query, streaming NDJSON or XML
//	POST /extend   grow a corpus; invalidates its cached results
//	GET  /corpora  list registered corpora (name, members, epoch)
//	GET  /metrics  Prometheus text-format metrics
//	GET  /healthz  liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/extend", s.handleExtend)
	mux.HandleFunc("/corpora", s.handleCorpora)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a Shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server: the listener closes immediately, in-flight
// requests run to completion, and once ctx expires (the drain deadline) the
// remaining evaluations are cut through the engine's cancellation protocol —
// their handlers observe ErrCanceled, write their summary, and unwind. A
// drain-deadline stop is still a clean shutdown: Shutdown returns nil either
// way, reserving errors for transport failures.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	// Whether or not the drain completed, cut any remaining evaluations so
	// nothing outlives the server (no-op when the drain got everything).
	s.baseCancel()
	if err == nil {
		return nil
	}
	// Drain deadline passed: the canceled handlers need a moment to stream
	// their summaries and return; then force-close whatever connections are
	// left.
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	s.hs.Close()
	return nil
}

// queryRequest is the POST /query body.
type queryRequest struct {
	// Query is the XQuery expression (required).
	Query string `json:"query"`
	// Corpus names the target corpus; may be empty when exactly one corpus
	// is registered.
	Corpus string `json:"corpus"`
	// Alg picks the tree-pattern algorithm: nl, sc, twig, stream, auto
	// (default auto).
	Alg string `json:"alg"`
	// Workers caps this request's evaluation parallelism (default 1,
	// clamped to the server's MaxWorkers).
	Workers int `json:"workers"`
	// Limit / MaxBytes bound the result (0: only the server caps apply).
	Limit    int64 `json:"limit"`
	MaxBytes int64 `json:"max_bytes"`
	// Timeout is a Go duration string ("250ms", "5s"); empty means the
	// server default, and the server's MaxTimeout caps it either way.
	Timeout string `json:"timeout"`
	// Format selects the stream encoding: ndjson (default) or xml.
	Format string `json:"format"`
}

// wireSummary is the terminal object of every query response: the last
// NDJSON line ({"summary": {...}}), or the <summary/> element closing an XML
// stream. Status distinguishes how the stream ended: ok, limit-reached,
// timeout, canceled, or error.
type wireSummary struct {
	Status    string  `json:"status"`
	Rows      int64   `json:"rows"`
	Bytes     int64   `json:"bytes"`
	Members   int     `json:"members,omitempty"`
	Skipped   int     `json:"skipped,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Cached    bool    `json:"cached"`
	Error     string  `json:"error,omitempty"`
}

const (
	statusOK       = "ok"
	statusLimit    = "limit-reached"
	statusTimeout  = "timeout"
	statusCanceled = "canceled"
	statusError    = "error"
)

// handleQuery is the serving hot path. The order of the checks is the
// production story: validate cheaply, answer from the result cache without
// taking a worker slot, and only then pass admission and touch the engine.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	start := time.Now()
	if r.Method != http.MethodPost {
		s.metrics.refuse(outMethod)
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.refuse(outTooLarge)
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.metrics.refuse(outBadRequest)
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Query == "" {
		s.metrics.refuse(outBadRequest)
		writeError(w, http.StatusBadRequest, "missing query")
		return
	}
	corpus, corpusName, ok := s.resolveCorpus(req.Corpus)
	if !ok {
		s.metrics.refuse(outNotFound)
		writeError(w, http.StatusNotFound, fmt.Sprintf("no corpus %q", req.Corpus))
		return
	}
	algName := req.Alg
	if algName == "" {
		algName = "auto"
	}
	alg, err := xqtp.ParseAlgorithm(algName)
	if err != nil {
		s.metrics.refuse(outBadRequest)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	format := req.Format
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "xml" {
		s.metrics.refuse(outBadRequest)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (ndjson or xml)", req.Format))
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			s.metrics.refuse(outBadRequest)
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad timeout %q", req.Timeout))
			return
		}
		timeout = d
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	maxRows := capBudget(req.Limit, s.cfg.MaxRows)
	maxBytes := capBudget(req.MaxBytes, s.cfg.MaxBytes)
	workers := req.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}

	// The compile is cheap to verify before admission (plan-cache hit on
	// every repeat), and a compile error must be a 400, not a consumed
	// worker slot.
	q, err := s.plans.Prepare(req.Query)
	if err != nil {
		s.metrics.refuse(outBadRequest)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	key := cacheKey{
		corpus: corpusName,
		epoch:  corpus.Epoch(),
		query:  req.Query,
		alg:    alg.String(),
		format: format,
		rows:   maxRows,
		bytes:  maxBytes,
	}
	if e, ok := s.cache.get(key); ok {
		s.metrics.cacheServed.Add(1)
		w.Header().Set("X-Result-Cache", "hit")
		st := newStreamer(w, format, corpus, 0)
		st.writeRaw(e.body)
		st.writeSummary(wireSummary{
			Status:    e.status,
			Rows:      e.info.Rows,
			Bytes:     e.info.Bytes,
			Members:   e.info.Members,
			Skipped:   e.info.Skipped,
			ElapsedMs: msSince(start),
			Cached:    true,
		})
		s.metrics.record(outcomeOf(e.status), time.Since(start), e.info.Rows, e.info.Bytes)
		return
	}
	w.Header().Set("X-Result-Cache", "miss")

	release, err := s.adm.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errShed) {
			s.metrics.refuse(outShed)
			w.Header().Set("Retry-After", strconv.Itoa(s.adm.RetryAfter()))
			writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
			return
		}
		// The client gave up while queued; nothing useful to write.
		s.metrics.refuse(outCanceled)
		return
	}
	defer release()

	// The run stops when the client disconnects, when the request deadline
	// passes, or when the server's drain deadline cuts the base context.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.base, cancel)
	defer stopAfter()
	if s.base.Err() != nil {
		// Already drained: AfterFunc fires asynchronously, so cancel here to
		// guarantee the run observes it before its first checkpoint.
		cancel()
	}

	capture := int64(0)
	if s.cache != nil {
		capture = s.cache.perEntry
	}
	st := newStreamer(w, format, corpus, capture)
	_, info, runErr := corpus.RunWith(ctx, q, alg, xqtp.RunOptions{
		Workers:  workers,
		Timeout:  timeout,
		MaxRows:  maxRows,
		MaxBytes: maxBytes,
		Sink:     st,
	})

	status := classify(runErr)
	if status == statusError && !st.wrote {
		// Nothing streamed yet: a real evaluation error can still be a clean
		// HTTP error instead of a 200 with an error summary.
		s.metrics.record(outError, time.Since(start), 0, 0)
		writeError(w, http.StatusInternalServerError, runErr.Error())
		return
	}
	sum := wireSummary{
		Status:    status,
		Rows:      info.Rows,
		Bytes:     info.Bytes,
		Members:   info.Members,
		Skipped:   info.Skipped,
		ElapsedMs: msSince(start),
	}
	if status == statusError {
		sum.Error = runErr.Error()
	}
	st.writeSummary(sum)
	if (status == statusOK || status == statusLimit) && st.captured() {
		// Only deterministic outcomes are cached: a timeout's prefix depends
		// on wall clock, so replaying it would serve one slow moment forever.
		s.cache.put(&cacheEntry{key: key, body: st.capture, info: info, status: status})
	}
	s.metrics.record(outcomeOf(status), time.Since(start), info.Rows, info.Bytes)
}

// classify maps a RunWith error to the wire status.
func classify(err error) string {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, xqtp.ErrBudgetExceeded):
		return statusLimit
	case errors.Is(err, context.DeadlineExceeded):
		return statusTimeout
	case errors.Is(err, xqtp.ErrCanceled):
		return statusCanceled
	default:
		return statusError
	}
}

func outcomeOf(status string) outcome {
	switch status {
	case statusOK:
		return outOK
	case statusLimit:
		return outLimit
	case statusTimeout:
		return outTimeout
	case statusCanceled:
		return outCanceled
	default:
		return outError
	}
}

// capBudget combines the client's ask with the server cap: the smaller
// positive bound wins; zero means unbounded only when the server itself has
// no cap.
func capBudget(asked, serverCap int64) int64 {
	if asked < 0 {
		asked = 0
	}
	if serverCap <= 0 {
		return asked
	}
	if asked == 0 || asked > serverCap {
		return serverCap
	}
	return asked
}

// extendRequest is the POST /extend body.
type extendRequest struct {
	Corpus    string `json:"corpus"`
	Workers   int    `json:"workers"`
	Documents []struct {
		URI string `json:"uri"`
		XML string `json:"xml"`
	} `json:"documents"`
}

func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req extendRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Documents) == 0 {
		writeError(w, http.StatusBadRequest, "no documents")
		return
	}
	sources := make([]xqtp.CorpusSource, len(req.Documents))
	for i, d := range req.Documents {
		if d.URI == "" {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("document %d has no uri", i))
			return
		}
		sources[i] = xqtp.CorpusSource{URI: d.URI, Data: []byte(d.XML)}
	}
	name := req.Corpus
	if _, resolved, ok := s.resolveCorpus(name); ok {
		name = resolved
	}
	grown, err := s.ExtendCorpus(name, sources, req.Workers)
	if err != nil {
		if _, ok := s.Corpus(name); !ok {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"corpus":  name,
		"members": grown.Len(),
		"epoch":   grown.Epoch(),
	})
}

func (s *Server) handleCorpora(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type corpusInfo struct {
		Name    string `json:"name"`
		Members int    `json:"members"`
		Epoch   uint64 `json:"epoch"`
		Nodes   int    `json:"nodes"`
	}
	s.mu.RLock()
	out := make([]corpusInfo, 0, len(s.corpora))
	for name, c := range s.corpora {
		out = append(out, corpusInfo{Name: name, Members: c.Len(), Epoch: c.Epoch(), Nodes: c.NumNodes()})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics renders the Prometheus text format from stdlib pieces only:
// the server's own counters plus the engine cache stats surfaced through
// xqtp.ServerStats — no internal imports, no client library.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w)

	fmt.Fprintf(w, "# HELP xqd_inflight Requests currently holding worker slots.\n")
	fmt.Fprintf(w, "# TYPE xqd_inflight gauge\n")
	fmt.Fprintf(w, "xqd_inflight %d\n", s.adm.InFlight())
	fmt.Fprintf(w, "# HELP xqd_queue_depth Requests waiting for a worker slot.\n")
	fmt.Fprintf(w, "# TYPE xqd_queue_depth gauge\n")
	fmt.Fprintf(w, "xqd_queue_depth %d\n", s.adm.QueueDepth())
	fmt.Fprintf(w, "# HELP xqd_shed_total Requests refused by admission control.\n")
	fmt.Fprintf(w, "# TYPE xqd_shed_total counter\n")
	fmt.Fprintf(w, "xqd_shed_total %d\n", s.adm.Shed())

	es := s.plans.ServerStats()
	writeCacheCounters(w, "plan", "Compiled-query plan cache",
		es.Plan.Hits, es.Plan.Misses, es.Plan.Evictions, es.Plan.Size, es.Plan.Capacity)
	writeCacheCounters(w, "prep", "Prepared-join caches aggregated over cached queries",
		es.Prep.Hits, es.Prep.Misses, es.Prep.Evictions, es.Prep.Size, es.Prep.Capacity)
	cs := s.cache.stats()
	writeCacheCounters(w, "result", "Rendered-result cache",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.Capacity)
	fmt.Fprintf(w, "# HELP xqd_result_cache_bytes Bytes held by the result cache.\n")
	fmt.Fprintf(w, "# TYPE xqd_result_cache_bytes gauge\n")
	fmt.Fprintf(w, "xqd_result_cache_bytes %d\n", cs.Bytes)

	s.mu.RLock()
	names := make([]string, 0, len(s.corpora))
	for name := range s.corpora {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP xqd_corpus_members Member documents per corpus.\n")
	fmt.Fprintf(w, "# TYPE xqd_corpus_members gauge\n")
	for _, name := range names {
		fmt.Fprintf(w, "xqd_corpus_members{corpus=%q} %d\n", name, s.corpora[name].Len())
	}
	fmt.Fprintf(w, "# HELP xqd_corpus_epoch Extension epoch per corpus.\n")
	fmt.Fprintf(w, "# TYPE xqd_corpus_epoch gauge\n")
	for _, name := range names {
		fmt.Fprintf(w, "xqd_corpus_epoch{corpus=%q} %d\n", name, s.corpora[name].Epoch())
	}
	s.mu.RUnlock()
}

// writeCacheCounters emits one cache's hit/miss/eviction/size metrics under
// xqd_<kind>_cache_*.
func writeCacheCounters(w io.Writer, kind, help string, hits, misses, evictions uint64, size, capacity int) {
	fmt.Fprintf(w, "# HELP xqd_%s_cache_hits_total %s: lookups served from cache.\n", kind, help)
	fmt.Fprintf(w, "# TYPE xqd_%s_cache_hits_total counter\n", kind)
	fmt.Fprintf(w, "xqd_%s_cache_hits_total %d\n", kind, hits)
	fmt.Fprintf(w, "# TYPE xqd_%s_cache_misses_total counter\n", kind)
	fmt.Fprintf(w, "xqd_%s_cache_misses_total %d\n", kind, misses)
	fmt.Fprintf(w, "# TYPE xqd_%s_cache_evictions_total counter\n", kind)
	fmt.Fprintf(w, "xqd_%s_cache_evictions_total %d\n", kind, evictions)
	fmt.Fprintf(w, "# TYPE xqd_%s_cache_entries gauge\n", kind)
	fmt.Fprintf(w, "xqd_%s_cache_entries %d\n", kind, size)
	fmt.Fprintf(w, "# TYPE xqd_%s_cache_capacity gauge\n", kind)
	fmt.Fprintf(w, "xqd_%s_cache_capacity %d\n", kind, capacity)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
