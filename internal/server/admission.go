package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errShed reports a request refused by admission control: every worker slot
// busy and the wait queue full (or the queue wait expired). The handler maps
// it to 429 + Retry-After.
var errShed = errors.New("server overloaded")

// admission is the bounded worker pool in front of the engine: at most
// `slots` requests evaluate concurrently, at most `queue` more wait for a
// slot, and everything beyond that is refused immediately. Both bounds are
// channels used as counting semaphores, so the whole structure is two
// buffered channels and the wait path is a single select — no lock, no list
// of waiters, nothing that grows with load. That shape is the point:
// overload cannot queue unboundedly, it converts into fast 429s while the
// admitted requests keep their latency.
type admission struct {
	slots chan struct{} // capacity = concurrent evaluations
	queue chan struct{} // capacity = waiters allowed behind the slots
	wait  time.Duration // longest a queued request waits before shedding

	shed atomic.Uint64 // refused requests (full queue or expired wait)
}

func newAdmission(slots, queue int, wait time.Duration) *admission {
	return &admission{
		slots: make(chan struct{}, slots),
		queue: make(chan struct{}, queue),
		wait:  wait,
	}
}

// acquire claims a worker slot, waiting in the bounded queue when all slots
// are busy. It returns a release func on success; errShed when the queue is
// full or the wait expired; the context error when the client gave up while
// queued.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	// All slots busy: take a queue token or shed. The token is held only
	// while waiting, so len(a.queue) is the live queue depth.
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Add(1)
		return nil, errShed
	}
	defer func() { <-a.queue }()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-timer.C:
		a.shed.Add(1)
		return nil, errShed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// InFlight returns the number of requests currently holding worker slots.
func (a *admission) InFlight() int { return len(a.slots) }

// QueueDepth returns the number of requests waiting for a slot.
func (a *admission) QueueDepth() int { return len(a.queue) }

// Shed returns the number of refused requests.
func (a *admission) Shed() uint64 { return a.shed.Load() }

// RetryAfter suggests how long a refused client should back off: the queue
// wait bound rounded up to whole seconds (at least one — Retry-After carries
// integer seconds).
func (a *admission) RetryAfter() int {
	s := int(a.wait / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
