package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xqtp"
)

// LoadOptions configures RunHTTPLoad, the closed-loop HTTP serving
// benchmark behind `treebench -exp serve`.
type LoadOptions struct {
	// Seed and People shape the single-member XMark corpus the server loads.
	Seed   int64
	People int
	// Clients are the concurrency levels to sweep (closed loop: each client
	// has exactly one request outstanding).
	Clients []int
	// Algorithms names the algorithms measured with the result cache off.
	Algorithms []string
	// CellDuration is the measured window per cell after warmup.
	CellDuration time.Duration
	// Context aborts the sweep between cells.
	Context context.Context
}

// RunHTTPLoad measures the network serving tier end to end: it starts the
// real *Server on a loopback listener, then drives it with closed-loop HTTP
// clients issuing the Fig. 6 child-form XMark queries round-robin as POST
// /query NDJSON requests. Each cell fixes (algorithm, client count) with the
// result cache off; one final cell repeats the largest client count with the
// cache on, bounding what the cache is worth when the working set repeats.
// Latency percentiles are computed from the sorted per-request samples.
func RunHTTPLoad(w io.Writer, opts LoadOptions) ([]xqtp.HTTPServeCell, error) {
	if opts.People <= 0 {
		opts.People = 100
	}
	if len(opts.Clients) == 0 {
		opts.Clients = []int{1, 4, 16}
	}
	if len(opts.Algorithms) == 0 {
		opts.Algorithms = []string{"sc", "auto"}
	}
	if opts.CellDuration <= 0 {
		opts.CellDuration = 2 * time.Second
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	doc := xqtp.NewXMarkDocument(opts.Seed, opts.People)
	corpus, err := xqtp.LoadCorpus([]xqtp.CorpusSource{
		{URI: "mem://xmark.xml", Data: []byte(doc.XML())},
	}, 1)
	if err != nil {
		return nil, err
	}
	defer corpus.Close()

	queries := make([]string, 0, len(xqtp.Figure6Queries))
	for _, pair := range xqtp.Figure6Queries {
		queries = append(queries, pair.Child)
	}

	maxClients := opts.Clients[0]
	for _, c := range opts.Clients {
		if c > maxClients {
			maxClients = c
		}
	}

	fmt.Fprintf(w, "\nHTTP serving: %d mixed XMark queries over POST /query (NDJSON), closed loop\n\n", len(queries))
	fmt.Fprintf(w, "%-6s %-8s %-7s %-9s %-9s %-9s %-9s %-8s %-6s\n",
		"alg", "clients", "cache", "qps", "p50ms", "p95ms", "p99ms", "reqs", "shed")

	var cells []xqtp.HTTPServeCell
	emit := func(cell xqtp.HTTPServeCell) {
		cells = append(cells, cell)
		fmt.Fprintf(w, "%-6s %-8d %-7s %-9.0f %-9.2f %-9.2f %-9.2f %-8d %-6d\n",
			cell.Algorithm, cell.Clients, cell.ResultCache, cell.QPS,
			cell.P50Ms, cell.P95Ms, cell.P99Ms, cell.Requests, cell.Shed)
	}

	for _, alg := range opts.Algorithms {
		for _, clients := range opts.Clients {
			if err := ctx.Err(); err != nil {
				return cells, err
			}
			cell, err := runLoadCell(ctx, corpus, queries, alg, clients, true, opts.CellDuration)
			if err != nil {
				return cells, err
			}
			emit(cell)
		}
	}
	// The cache-on cell: same workload, so after one warm pass every request
	// is a cache hit — the ceiling of what epoch-keyed result caching buys.
	if err := ctx.Err(); err != nil {
		return cells, err
	}
	cell, err := runLoadCell(ctx, corpus, queries, "auto", maxClients, false, opts.CellDuration)
	if err != nil {
		return cells, err
	}
	emit(cell)
	return cells, nil
}

// runLoadCell measures one (algorithm, clients, cache) cell: a fresh server
// on a loopback listener, closed-loop clients, latencies from every request
// in the measured window.
func runLoadCell(ctx context.Context, corpus *xqtp.Corpus, queries []string, alg string, clients int, noCache bool, d time.Duration) (xqtp.HTTPServeCell, error) {
	cell := xqtp.HTTPServeCell{
		Algorithm:   alg,
		Clients:     clients,
		ResultCache: "on",
	}
	if noCache {
		cell.ResultCache = "off"
	}

	// A fresh server per cell keeps the cells independent: no carried-over
	// cache contents or metrics. Admission is sized to the client count so a
	// closed loop never sheds; shed>0 in a row therefore flags a real bug.
	s := New(Config{
		MaxConcurrent: clients,
		MaxQueue:      clients,
		NoResultCache: noCache,
	})
	s.AddCorpus("xmark", corpus)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cell, err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		s.Serve(ln)
	}()
	defer func() {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(shCtx)
		<-serveDone
	}()

	url := "http://" + ln.Addr().String() + "/query"
	transport := &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport}

	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(queryRequest{Query: q, Corpus: "xmark", Alg: alg})
		if err != nil {
			return cell, err
		}
		bodies[i] = b
	}

	// Warmup: one pass over the workload compiles the plans (and, cache on,
	// populates the result cache) outside the measured window.
	for _, b := range bodies {
		if _, _, err := doLoadRequest(ctx, client, url, b); err != nil {
			return cell, fmt.Errorf("warmup: %w", err)
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rows      int64
		firstErr  error
	)
	var next atomic.Uint64
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			var localRows int64
			for time.Now().Before(deadline) && ctx.Err() == nil {
				b := bodies[int(next.Add(1))%len(bodies)]
				start := time.Now()
				n, _, err := doLoadRequest(ctx, client, url, b)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(start))
				localRows += n
			}
			mu.Lock()
			latencies = append(latencies, local...)
			rows += localRows
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return cell, firstErr
	}
	if err := ctx.Err(); err != nil {
		return cell, err
	}
	if len(latencies) == 0 {
		return cell, fmt.Errorf("load cell alg=%s clients=%d: no requests completed", alg, clients)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var total time.Duration
	for _, l := range latencies {
		total += l
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	cell.Requests = len(latencies)
	// Closed-loop throughput: clients / mean latency.
	cell.QPS = float64(clients) * float64(len(latencies)) / total.Seconds()
	cell.P50Ms = pct(0.50)
	cell.P95Ms = pct(0.95)
	cell.P99Ms = pct(0.99)
	cell.Rows = rows
	cell.Shed = s.adm.Shed()
	cs := s.CacheStats()
	cell.CacheHits = cs.Hits
	return cell, nil
}

// doLoadRequest issues one POST /query and drains the NDJSON stream,
// returning the row count from the summary line.
func doLoadRequest(ctx context.Context, client *http.Client, url string, body []byte) (rows int64, status string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	last := lines[len(lines)-1]
	var sum struct {
		Summary wireSummary `json:"summary"`
	}
	if err := json.Unmarshal(last, &sum); err != nil {
		return 0, "", fmt.Errorf("bad summary line %q: %w", last, err)
	}
	if sum.Summary.Status != statusOK && sum.Summary.Status != statusLimit {
		return 0, sum.Summary.Status, fmt.Errorf("query ended %s: %s", sum.Summary.Status, sum.Summary.Error)
	}
	return sum.Summary.Rows, sum.Summary.Status, nil
}
