package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"xqtp"
)

// streamer is the execctx.Sink behind a query response: every result item
// the engine delivers is rendered and written to the client immediately,
// with a flush per item so results stream as they are found. Because
// execctx.Deliver charges the row/byte budget per item *before* pushing,
// the budgets meter exactly what crosses this writer — a limit of K means
// the client receives K items and a limit-reached summary, never K+1.
//
// The streamer also mirrors what it writes into a capture buffer (up to the
// result cache's per-entry cap) so a completed deterministic response can be
// stored and replayed byte-for-byte.
type streamer struct {
	w      http.ResponseWriter
	fl     http.Flusher
	format string // "ndjson" or "xml"
	corpus *xqtp.Corpus
	wrote  bool // header (and, for xml, the <results> opener) written

	capture    []byte
	captureCap int64 // 0: no capturing
	overflowed bool
}

func newStreamer(w http.ResponseWriter, format string, corpus *xqtp.Corpus, captureCap int64) *streamer {
	fl, _ := w.(http.Flusher)
	return &streamer{w: w, fl: fl, format: format, corpus: corpus, captureCap: captureCap}
}

// wireItem is one NDJSON result line.
type wireItem struct {
	URI   string `json:"uri,omitempty"`
	Value string `json:"value"`
}

// begin writes the response header and, for XML, the stream opener. Lazy:
// the status line commits only when there is something to stream, so
// pre-stream failures can still use proper HTTP status codes.
func (st *streamer) begin() {
	if st.wrote {
		return
	}
	st.wrote = true
	if st.format == "xml" {
		st.w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		st.w.WriteHeader(http.StatusOK)
		// The opener is not captured: a cache replay goes through begin()
		// again, which regenerates it.
		st.w.Write([]byte("<results>\n"))
	} else {
		st.w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		st.w.WriteHeader(http.StatusOK)
	}
}

// Push implements execctx.Sink: render one item and flush it to the client.
func (st *streamer) Push(it xqtp.Item) error {
	st.begin()
	uri := ""
	if st.corpus != nil {
		uri, _ = st.corpus.URIOf(it)
	}
	var line []byte
	if st.format == "xml" {
		var b strings.Builder
		b.WriteString(`<item`)
		if uri != "" {
			b.WriteString(` uri="`)
			xmlEscape(&b, uri)
			b.WriteString(`"`)
		}
		b.WriteString(`>`)
		if _, isNode := it.(*xqtp.Node); isNode {
			b.WriteString(xqtp.SerializeItem(it))
		} else {
			xmlEscape(&b, xqtp.ItemString(it))
		}
		b.WriteString("</item>\n")
		line = []byte(b.String())
	} else {
		data, err := json.Marshal(wireItem{URI: uri, Value: xqtp.SerializeItem(it)})
		if err != nil {
			return err
		}
		line = append(data, '\n')
	}
	if err := st.emit(line); err != nil {
		return err
	}
	st.flush()
	return nil
}

// emit writes bytes to the client and mirrors them into the capture buffer
// while it still fits the cache's per-entry cap.
func (st *streamer) emit(p []byte) error {
	if !st.overflowed && st.captureCap > 0 {
		if int64(len(st.capture)+len(p)) > st.captureCap {
			st.overflowed = true
			st.capture = nil
		} else {
			st.capture = append(st.capture, p...)
		}
	}
	_, err := st.w.Write(p)
	return err
}

// writeRaw replays a cached body (already rendered item lines).
func (st *streamer) writeRaw(body []byte) {
	st.begin()
	if len(body) > 0 {
		st.w.Write(body)
	}
}

// writeSummary terminates the stream: the summary line (NDJSON) or the
// <summary/> element plus the closing tag (XML). It opens the stream first
// when nothing was written yet, so even an empty or timed-out-before-output
// response has the uniform shape.
func (st *streamer) writeSummary(sum wireSummary) {
	st.begin()
	if st.format == "xml" {
		var b strings.Builder
		b.WriteString(`<summary status="`)
		xmlEscape(&b, sum.Status)
		b.WriteString(`" rows="`)
		b.WriteString(strconv.FormatInt(sum.Rows, 10))
		b.WriteString(`" bytes="`)
		b.WriteString(strconv.FormatInt(sum.Bytes, 10))
		b.WriteString(`" members="`)
		b.WriteString(strconv.Itoa(sum.Members))
		b.WriteString(`" skipped="`)
		b.WriteString(strconv.Itoa(sum.Skipped))
		b.WriteString(`" cached="`)
		b.WriteString(strconv.FormatBool(sum.Cached))
		b.WriteString(`"`)
		if sum.Error != "" {
			b.WriteString(` error="`)
			xmlEscape(&b, sum.Error)
			b.WriteString(`"`)
		}
		b.WriteString("/>\n</results>\n")
		st.w.Write([]byte(b.String()))
	} else {
		data, err := json.Marshal(map[string]wireSummary{"summary": sum})
		if err == nil {
			st.w.Write(append(data, '\n'))
		}
	}
	st.flush()
}

// captured reports whether the full body fit the capture cap (a zero-item
// body counts: caching an empty result is exactly as valid).
func (st *streamer) captured() bool {
	return st.captureCap > 0 && !st.overflowed
}

func (st *streamer) flush() {
	if st.fl != nil {
		st.fl.Flush()
	}
}

// xmlEscape writes s with the five XML special characters escaped (attribute
// and text context).
func xmlEscape(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case '\'':
			b.WriteString("&apos;")
		default:
			b.WriteRune(r)
		}
	}
}
