package server

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// Outcome labels one finished (or refused) request for the counters. The
// set is closed so the metrics page enumerates every label with a stable
// order and zero allocation on the hot path.
type outcome int

const (
	outOK         outcome = iota // streamed to completion
	outLimit                     // stopped by the row/byte budget (limit-reached)
	outTimeout                   // stopped by the request deadline
	outCanceled                  // client went away or the server drained
	outBadRequest                // malformed body, unknown algorithm, compile error
	outNotFound                  // unknown corpus name
	outTooLarge                  // request body over the size cap
	outShed                      // refused by admission control (429)
	outMethod                    // wrong HTTP method
	outError                     // evaluation error after admission
	outcomeCount
)

var outcomeNames = [outcomeCount]string{
	"ok", "limit_reached", "timeout", "canceled", "bad_request",
	"not_found", "body_too_large", "shed", "bad_method", "error",
}

// latencyBuckets are the histogram upper bounds in seconds, exponential from
// 1ms to 30s — wide enough for a shed (microseconds) and a drain-deadline
// stop (tens of seconds) to land in distinct buckets.
var latencyBuckets = [...]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// metrics is the server's lock-free counter set: fixed-label counters, one
// latency histogram over completed query requests, and delivery totals.
// Everything is atomics, so the hot path never contends and /metrics reads a
// consistent-enough snapshot without stopping traffic.
type metrics struct {
	started  time.Time
	requests [outcomeCount]atomic.Uint64

	// latency histogram: counts per bucket (cumulative rendering happens at
	// scrape time), plus sum and count for the average.
	buckets    [len(latencyBuckets) + 1]atomic.Uint64 // last = +Inf
	latencySum atomic.Int64                           // nanoseconds
	latencyCnt atomic.Uint64

	rows  atomic.Int64 // result rows delivered across all requests
	bytes atomic.Int64 // estimated result bytes delivered (budget metric)

	cacheServed atomic.Uint64 // requests answered from the result cache
}

func newMetrics() *metrics { return &metrics{started: time.Now()} }

// record counts one finished query request.
func (m *metrics) record(out outcome, d time.Duration, rows, bytes int64) {
	m.requests[out].Add(1)
	m.observe(d)
	if rows > 0 {
		m.rows.Add(rows)
	}
	if bytes > 0 {
		m.bytes.Add(bytes)
	}
}

// refuse counts a request that never reached evaluation (shed, validation
// failure, wrong method). Refusals are counted but not observed by the
// latency histogram: its quantiles describe served queries, and a flood of
// microsecond 429s would otherwise drag p50 to the floor while the server is
// at its slowest.
func (m *metrics) refuse(out outcome) { m.requests[out].Add(1) }

func (m *metrics) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if s <= latencyBuckets[i] {
			break
		}
	}
	m.buckets[i].Add(1)
	m.latencySum.Add(int64(d))
	m.latencyCnt.Add(1)
}

// quantile estimates the q-quantile (0 < q < 1) from the histogram, linearly
// interpolated inside the winning bucket — the same estimate Prometheus's
// histogram_quantile computes server-side. Returns NaN with no samples.
func (m *metrics) quantile(q float64) float64 {
	total := m.latencyCnt.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var seen float64
	for i := range m.buckets {
		n := float64(m.buckets[i].Load())
		if seen+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			hi := lo * 2
			if i < len(latencyBuckets) {
				hi = latencyBuckets[i]
			}
			return lo + (hi-lo)*((rank-seen)/n)
		}
		seen += n
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// writeProm renders the counters in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers, cumulative histogram buckets, and the
// precomputed quantile gauges for dashboards without a PromQL evaluator.
func (m *metrics) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP xqd_requests_total Query requests by outcome.\n")
	fmt.Fprintf(w, "# TYPE xqd_requests_total counter\n")
	for i := outcome(0); i < outcomeCount; i++ {
		fmt.Fprintf(w, "xqd_requests_total{outcome=%q} %d\n", outcomeNames[i], m.requests[i].Load())
	}

	fmt.Fprintf(w, "# HELP xqd_request_seconds Latency of served query requests.\n")
	fmt.Fprintf(w, "# TYPE xqd_request_seconds histogram\n")
	var cum uint64
	for i, le := range latencyBuckets {
		cum += m.buckets[i].Load()
		fmt.Fprintf(w, "xqd_request_seconds_bucket{le=%q} %d\n", formatFloat(le), cum)
	}
	cum += m.buckets[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "xqd_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "xqd_request_seconds_sum %s\n", formatFloat(time.Duration(m.latencySum.Load()).Seconds()))
	fmt.Fprintf(w, "xqd_request_seconds_count %d\n", m.latencyCnt.Load())

	fmt.Fprintf(w, "# HELP xqd_request_seconds_quantile Latency quantiles estimated from the histogram.\n")
	fmt.Fprintf(w, "# TYPE xqd_request_seconds_quantile gauge\n")
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := m.quantile(q)
		if math.IsNaN(v) {
			v = 0
		}
		fmt.Fprintf(w, "xqd_request_seconds_quantile{q=%q} %s\n", formatFloat(q), formatFloat(v))
	}

	fmt.Fprintf(w, "# HELP xqd_rows_total Result rows delivered to clients.\n")
	fmt.Fprintf(w, "# TYPE xqd_rows_total counter\n")
	fmt.Fprintf(w, "xqd_rows_total %d\n", m.rows.Load())
	fmt.Fprintf(w, "# HELP xqd_result_bytes_total Estimated result bytes delivered (the byte-budget metric).\n")
	fmt.Fprintf(w, "# TYPE xqd_result_bytes_total counter\n")
	fmt.Fprintf(w, "xqd_result_bytes_total %d\n", m.bytes.Load())
	fmt.Fprintf(w, "# HELP xqd_result_cache_served_total Requests answered from the result cache.\n")
	fmt.Fprintf(w, "# TYPE xqd_result_cache_served_total counter\n")
	fmt.Fprintf(w, "xqd_result_cache_served_total %d\n", m.cacheServed.Load())
	fmt.Fprintf(w, "# HELP xqd_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE xqd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "xqd_uptime_seconds %s\n", formatFloat(time.Since(m.started).Seconds()))
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, no exponent for the magnitudes we emit.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
