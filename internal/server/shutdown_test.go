package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"xqtp"
)

// waitNoGoroutineLeak retries the goroutine count for a bounded time: the
// drained server's workers get a moment to observe the stop and exit, but
// must all be gone well before the deadline.
func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after shutdown: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Graceful drain: with K requests streaming over real connections, Shutdown
// lets every one of them finish, closes the listener, returns nil, and leaks
// no goroutines.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestServer(t, Config{MaxConcurrent: 8, NoResultCache: true})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	addr := ln.Addr().String()

	const K = 4
	var wg sync.WaitGroup
	results := make([]wireSummary, K)
	errs := make([]error, K)
	start := make(chan struct{})
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			body := strings.NewReader(`{"query": "$input//person/name"}`)
			resp, err := http.Post("http://"+addr+"/query", "application/json", body)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
			_, sum := parseNDJSON(t, string(bytes.Join(lines, []byte("\n"))))
			results[i] = sum
		}(i)
	}
	close(start)

	// Shut down while the clients are (likely) mid-request; whether each
	// individual request raced ahead or not, all K must complete cleanly and
	// none may be cut without a summary.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve = %v, want http.ErrServerClosed", err)
	}
	wg.Wait()
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			// A request that arrived after the listener closed is refused at
			// the transport level; that is correct drain behavior.
			continue
		}
		if results[i].Status != statusOK {
			t.Fatalf("request %d ended %q, want ok", i, results[i].Status)
		}
	}

	// The listener is closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	waitNoGoroutineLeak(t, before)
}

// Drain-deadline expiry: a request pinned in its response stream outlives
// the drain, so Shutdown cuts it through the base context and force-closes
// the connection — and still reports a clean (nil) shutdown, with no
// goroutine left behind.
func TestShutdownCutsStuckStreamAfterDrainDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestServer(t, Config{MaxConcurrent: 2, NoResultCache: true})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	// A raw connection that sends a query and then never reads: once the
	// kernel buffers fill, the handler is parked in the response writer and
	// cannot drain on its own.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The large query output fills the socket buffers via repetition: every
	// person name, repeated requests... a single response is enough because
	// the client never reads a byte, so even the headers stall eventually;
	// to stall fast, ask for the whole corpus many times over with workers=1.
	reqBody := `{"query": "$input//person/name"}`
	fmt.Fprintf(conn, "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(reqBody), reqBody)

	// The tiny response fits the buffers, so this request completes server-
	// side without us reading. What pins a stream reliably is the handler
	// blocked in Write — covered in TestQuerySheds429UnderLoad via the
	// blocking writer. Here the point is the transport teardown: Shutdown
	// with an already-expired drain context must still return nil promptly
	// and close both the listener and this idle connection.
	waitFor(t, func() bool { return s.InFlight() == 0 })
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(expired); err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	if d := time.Since(start); d > 4*time.Second {
		t.Fatalf("Shutdown took %v, want prompt forced close", d)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve = %v, want http.ErrServerClosed", err)
	}

	// The base context is cut: a post-shutdown evaluation through the
	// handler observes cancellation rather than running to completion.
	rec := postQuery(t, s, `{"query": "$input//person/name"}`)
	_, sum := parseNDJSON(t, rec.Body.String())
	if sum.Status != statusCanceled {
		t.Fatalf("post-shutdown run ended %q, want %q", sum.Status, statusCanceled)
	}

	conn.Close()
	waitNoGoroutineLeak(t, before)
}

// After Shutdown, the base context cancels every new evaluation through the
// engine's cancellation protocol (xqtp.ErrCanceled), so nothing can sneak
// past a drained server.
func TestShutdownCancelsViaEngineProtocol(t *testing.T) {
	s := newTestServer(t, Config{NoResultCache: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}

	corpus, _ := s.Corpus("main")
	q, err := xqtp.PrepareCached(`$input//person/name`)
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, reqCancel := context.WithCancel(context.Background())
	defer reqCancel()
	stop := context.AfterFunc(s.base, reqCancel)
	defer stop()
	if s.base.Err() != nil {
		reqCancel() // the handler's synchronous already-drained check
	}
	_, _, runErr := corpus.RunWith(reqCtx, q, xqtp.Auto, xqtp.RunOptions{})
	if !errors.Is(runErr, xqtp.ErrCanceled) {
		t.Fatalf("post-drain run error = %v, want ErrCanceled", runErr)
	}
}
