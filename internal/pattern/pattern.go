// Package pattern defines tree patterns — the parameter of the
// TupleTreePattern operator (paper §4.1). The grammar is the paper's:
//
//	TreePattern ::= IN#FieldName(/Pattern)?
//	Pattern     ::= Step([Pattern])* (/Pattern)?
//	Step        ::= Axis NodeTest{FieldName}?
//
// A pattern is a spine of steps, each carrying optional predicate branches
// (themselves patterns) and an optional output-field annotation. The
// extraction point is the last spine step.
package pattern

import (
	"strings"

	"xqtp/internal/xdm"
)

// Step is one node of a tree pattern: an axis step with predicate branches,
// an optional output field annotation, and the next spine step.
type Step struct {
	Axis  xdm.Axis
	Test  xdm.NodeTest
	Out   string  // output field annotation {field}, "" if none
	Preds []*Step // predicate branches (pattern chains)
	Next  *Step   // next spine step, nil at the extraction point
}

// Pattern is a tree pattern anchored at a tuple field: IN#Input/spine.
type Pattern struct {
	Input string // the field holding the context nodes
	Root  *Step  // first spine step
}

// New builds a pattern from a field name and a chain of steps.
func New(input string, root *Step) *Pattern {
	return &Pattern{Input: input, Root: root}
}

// NewStep builds a single step.
func NewStep(axis xdm.Axis, test xdm.NodeTest) *Step {
	return &Step{Axis: axis, Test: test}
}

// Clone deep-copies the pattern.
func (p *Pattern) Clone() *Pattern {
	return &Pattern{Input: p.Input, Root: p.Root.Clone()}
}

// Clone deep-copies a step chain.
func (s *Step) Clone() *Step {
	if s == nil {
		return nil
	}
	out := &Step{Axis: s.Axis, Test: s.Test, Out: s.Out, Next: s.Next.Clone()}
	for _, pr := range s.Preds {
		out.Preds = append(out.Preds, pr.Clone())
	}
	return out
}

// ExtractionPoint returns the last spine step (the step whose matches a
// path expression returns).
func (p *Pattern) ExtractionPoint() *Step {
	s := p.Root
	for s.Next != nil {
		s = s.Next
	}
	return s
}

// OutputFields returns the output-field annotations of the whole pattern in
// root-to-leaf, spine-before-predicates order.
func (p *Pattern) OutputFields() []string {
	var out []string
	var walk func(*Step)
	walk = func(s *Step) {
		if s == nil {
			return
		}
		if s.Out != "" {
			out = append(out, s.Out)
		}
		for _, pr := range s.Preds {
			walk(pr)
		}
		walk(s.Next)
	}
	walk(p.Root)
	return out
}

// SingleOutput reports whether the pattern's only output field annotation
// sits at the extraction point, and returns that field. This is the case in
// which the operator's result coincides with XPath semantics (paper §4.1).
func (p *Pattern) SingleOutput() (string, bool) {
	fields := p.OutputFields()
	ep := p.ExtractionPoint()
	if len(fields) == 1 && ep.Out == fields[0] {
		return fields[0], true
	}
	return "", false
}

// SpineLen returns the number of spine steps.
func (p *Pattern) SpineLen() int {
	n := 0
	for s := p.Root; s != nil; s = s.Next {
		n++
	}
	return n
}

// Size returns the total number of steps including predicate branches.
func (p *Pattern) Size() int {
	var count func(*Step) int
	count = func(s *Step) int {
		if s == nil {
			return 0
		}
		n := 1
		for _, pr := range s.Preds {
			n += count(pr)
		}
		return n + count(s.Next)
	}
	return count(p.Root)
}

// HasBranches reports whether any step carries predicate branches (a twig,
// as opposed to a linear path).
func (p *Pattern) HasBranches() bool {
	var walk func(*Step) bool
	walk = func(s *Step) bool {
		if s == nil {
			return false
		}
		if len(s.Preds) > 0 {
			return true
		}
		return walk(s.Next)
	}
	return walk(p.Root)
}

// ClearOutputs removes all output annotations from a step chain (used when
// a pattern becomes a predicate branch of another pattern).
func (s *Step) ClearOutputs() *Step {
	for c := s; c != nil; c = c.Next {
		c.Out = ""
		for _, pr := range c.Preds {
			pr.ClearOutputs()
		}
	}
	return s
}

// String renders the pattern in the paper's notation, e.g.
// IN#dot/descendant::person[child::emailaddress]/child::name{out}.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("IN#" + p.Input)
	for s := p.Root; s != nil; s = s.Next {
		b.WriteString("/")
		s.write(&b)
	}
	return b.String()
}

func (s *Step) write(b *strings.Builder) {
	b.WriteString(s.Axis.String())
	b.WriteString("::")
	b.WriteString(s.Test.String())
	if s.Out != "" {
		b.WriteString("{" + s.Out + "}")
	}
	for _, pr := range s.Preds {
		b.WriteString("[")
		for c, first := pr, true; c != nil; c, first = c.Next, false {
			if !first {
				b.WriteString("/")
			}
			c.write(b)
		}
		b.WriteString("]")
	}
}

// StepString renders this step alone — axis, test, output annotation and
// predicate branches, without the chain continuation.
func (s *Step) StepString() string {
	var b strings.Builder
	s.write(&b)
	return b.String()
}

// String renders a step chain without the IN#field anchor.
func (s *Step) String() string {
	var b strings.Builder
	for c, first := s, true; c != nil; c, first = c.Next, false {
		if !first {
			b.WriteString("/")
		}
		c.write(&b)
	}
	return b.String()
}

// Equal compares two patterns structurally.
func (p *Pattern) Equal(q *Pattern) bool {
	return p.Input == q.Input && stepEqual(p.Root, q.Root)
}

func stepEqual(a, b *Step) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Axis != b.Axis || a.Test != b.Test || a.Out != b.Out || len(a.Preds) != len(b.Preds) {
		return false
	}
	for i := range a.Preds {
		if !stepEqual(a.Preds[i], b.Preds[i]) {
			return false
		}
	}
	return stepEqual(a.Next, b.Next)
}
