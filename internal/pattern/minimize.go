// Tree-pattern minimization: the classic TPQ-minimization line ("A Survey
// of XML Tree Patterns"), restricted to rules whose safety follows from a
// one-way homomorphism argument. A predicate branch G hanging off step s is
// redundant when the structure that must match anyway — a sibling branch or
// the spine continuation below s — implies it: if there is a homomorphism
// from G into that required structure (child edges to child edges,
// descendant edges to downward paths, each G test implied by the image's
// test), then every match of the required structure witnesses a match of G,
// so dropping G changes no binding. Minimization also erases vacuous
// self::node() steps. Only downward axes (child, descendant, attribute)
// participate; anything else is left untouched.
package pattern

import "xqtp/internal/xdm"

// Minimize returns an equivalent pattern with redundant structure removed:
// subsumed predicate branches dropped and vacuous self::node() steps
// erased. The input is never mutated; when nothing can be removed the input
// itself is returned, so callers can detect "already minimal" by pointer
// equality.
func Minimize(p *Pattern) *Pattern {
	if p == nil || p.Root == nil {
		return p
	}
	out := p.Clone()
	changed := false
	// The rules only ever shrink the pattern, so the fixpoint terminates in
	// at most Size() rounds; in practice one or two.
	for minimizeChain(&out.Root, true) {
		changed = true
	}
	if !changed || out.Root == nil {
		return p
	}
	return out
}

// minimizeChain applies one round of the rules to the chain at *pp (the
// spine when spine is true, a predicate branch otherwise) and reports
// whether anything changed. A predicate branch may minimize to nil (a
// vacuous [self::node()] test); the spine keeps at least one step.
func minimizeChain(pp **Step, spine bool) bool {
	changed := false
	// Vacuous self steps: self::node() binds the same node as its
	// predecessor (or the context), so a step carrying no output and no
	// predicates is erased, and one carrying predicates folds them into the
	// predecessor. The chain's first step only drops when something follows
	// it or the chain is a predicate branch.
	for prev, s := (*Step)(nil), *pp; s != nil; {
		vacuous := s.Axis == xdm.AxisSelf && s.Test.Kind == xdm.TestNode && s.Out == ""
		if vacuous && prev != nil {
			prev.Preds = append(prev.Preds, s.Preds...)
			prev.Next = s.Next
			s = s.Next
			changed = true
			continue
		}
		if vacuous && len(s.Preds) == 0 && (s.Next != nil || !spine) {
			*pp = s.Next
			s = s.Next
			changed = true
			continue
		}
		prev, s = s, s.Next
	}
	for s := *pp; s != nil; s = s.Next {
		// Minimize inside each branch first, dropping branches that reduce
		// to nothing.
		kept := s.Preds[:0]
		for _, p := range s.Preds {
			for minimizeChain(&p, false) {
				changed = true
			}
			if p != nil {
				kept = append(kept, p)
			} else {
				changed = true
			}
		}
		s.Preds = kept
		// Subsumption: drop branch G when a surviving sibling branch or the
		// chain continuation implies it. Branches carrying outputs are never
		// dropped (they widen the binding, they don't just filter).
		for i := 0; i < len(s.Preds); i++ {
			g := s.Preds[i]
			if hasOut(g) {
				continue
			}
			implied := false
			for j := range s.Preds {
				if j != i && edgeMaps(g.Axis, g, s.Preds[j].Axis, s.Preds[j]) {
					implied = true
					break
				}
			}
			if !implied && s.Next != nil && edgeMaps(g.Axis, g, s.Next.Axis, s.Next) {
				implied = true
			}
			if implied {
				s.Preds = append(s.Preds[:i], s.Preds[i+1:]...)
				i--
				changed = true
			}
		}
	}
	return changed
}

func hasOut(s *Step) bool {
	for c := s; c != nil; c = c.Next {
		if c.Out != "" {
			return true
		}
		for _, p := range c.Preds {
			if hasOut(p) {
				return true
			}
		}
	}
	return false
}

// testImplies reports whether every node satisfying spec also satisfies gen
// (both on the same principal node kind).
func testImplies(spec, gen xdm.NodeTest) bool {
	switch gen.Kind {
	case xdm.TestNode:
		return true
	case xdm.TestStar:
		return spec.Kind == xdm.TestName || spec.Kind == xdm.TestStar
	case xdm.TestText:
		return spec.Kind == xdm.TestText
	case xdm.TestName:
		return spec.Kind == xdm.TestName && spec.Name == gen.Name
	}
	return false
}

// edgeMaps reports whether the edge (axG, g) — branch g reached from the
// shared parent via axis axG — is implied by the required edge (axS, s):
// every node with an (axS, s)-witness below it also has an (axG, g)-witness.
func edgeMaps(axG xdm.Axis, g *Step, axS xdm.Axis, s *Step) bool {
	switch axG {
	case xdm.AxisChild:
		return axS == xdm.AxisChild && nodeMaps(g, s)
	case xdm.AxisAttribute:
		// Attribute steps are leaves (attribute nodes have no children);
		// bail out on any structure below g rather than reason about it.
		return axS == xdm.AxisAttribute && g.Next == nil && len(g.Preds) == 0 &&
			testImplies(s.Test, g.Test)
	case xdm.AxisDescendant:
		if axS != xdm.AxisChild && axS != xdm.AxisDescendant {
			return false
		}
		return descMaps(g, s)
	}
	return false
}

// descMaps reports whether g (reached by a descendant edge) maps onto s or
// onto anything reachable from s by a downward element path.
func descMaps(g *Step, s *Step) bool {
	if nodeMaps(g, s) {
		return true
	}
	for _, e := range requiredEdges(s) {
		if e.axis == xdm.AxisChild || e.axis == xdm.AxisDescendant {
			if descMaps(g, e.head) {
				return true
			}
		}
	}
	return false
}

// nodeMaps reports whether mapping g's root onto s's root extends to a full
// homomorphism: s's test implies g's, and every edge out of g maps to some
// required edge out of s.
func nodeMaps(g *Step, s *Step) bool {
	if !testImplies(s.Test, g.Test) {
		return false
	}
	for _, ge := range requiredEdges(g) {
		ok := false
		for _, se := range requiredEdges(s) {
			if edgeMaps(ge.axis, ge.head, se.axis, se.head) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

type edge struct {
	axis xdm.Axis
	head *Step
}

// requiredEdges lists the structure that must match below a step for the
// step's own match to count: its predicate branches and its chain
// continuation (a chain, spine or branch, matches only if it matches to the
// end).
func requiredEdges(s *Step) []edge {
	out := make([]edge, 0, len(s.Preds)+1)
	for _, p := range s.Preds {
		out = append(out, edge{p.Axis, p})
	}
	if s.Next != nil {
		out = append(out, edge{s.Next.Axis, s.Next})
	}
	return out
}
