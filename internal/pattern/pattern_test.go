package pattern

import (
	"testing"

	"xqtp/internal/xdm"
)

// q1a builds IN#dot/descendant::person[child::emailaddress]/child::name{out}.
func q1a() *Pattern {
	person := NewStep(xdm.AxisDescendant, xdm.NameTest("person"))
	person.Preds = []*Step{NewStep(xdm.AxisChild, xdm.NameTest("emailaddress"))}
	name := NewStep(xdm.AxisChild, xdm.NameTest("name"))
	name.Out = "out"
	person.Next = name
	return New("dot", person)
}

func TestString(t *testing.T) {
	got := q1a().String()
	want := "IN#dot/descendant::person[child::emailaddress]/child::name{out}"
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestExtractionPointAndOutputs(t *testing.T) {
	p := q1a()
	ep := p.ExtractionPoint()
	if ep.Test.Name != "name" {
		t.Errorf("extraction point = %v", ep)
	}
	if fields := p.OutputFields(); len(fields) != 1 || fields[0] != "out" {
		t.Errorf("OutputFields = %v", fields)
	}
	out, ok := p.SingleOutput()
	if !ok || out != "out" {
		t.Errorf("SingleOutput = %q, %v", out, ok)
	}
	// Output on a non-extraction step breaks SingleOutput.
	p2 := q1a()
	p2.Root.Out = "x"
	if _, ok := p2.SingleOutput(); ok {
		t.Error("SingleOutput with two annotations should fail")
	}
	// Output inside a predicate is seen by OutputFields.
	p3 := q1a()
	p3.Root.Preds[0].Out = "leak"
	if len(p3.OutputFields()) != 2 {
		t.Errorf("OutputFields = %v", p3.OutputFields())
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := q1a()
	c := p.Clone()
	if !p.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Root.Preds[0].Test = xdm.NameTest("phone")
	if p.Root.Preds[0].Test.Name != "emailaddress" {
		t.Error("clone shares predicate steps")
	}
	c.ExtractionPoint().Out = "other"
	if p.ExtractionPoint().Out != "out" {
		t.Error("clone shares spine steps")
	}
}

func TestSizeAndShape(t *testing.T) {
	p := q1a()
	if p.SpineLen() != 2 {
		t.Errorf("SpineLen = %d", p.SpineLen())
	}
	if p.Size() != 3 {
		t.Errorf("Size = %d", p.Size())
	}
	if !p.HasBranches() {
		t.Error("HasBranches = false")
	}
	linear := New("dot", NewStep(xdm.AxisChild, xdm.NameTest("a")))
	if linear.HasBranches() {
		t.Error("linear pattern reports branches")
	}
}

func TestClearOutputs(t *testing.T) {
	p := q1a()
	p.Root.ClearOutputs()
	if len(p.OutputFields()) != 0 {
		t.Errorf("outputs remain: %v", p.OutputFields())
	}
}

func TestEqual(t *testing.T) {
	if !q1a().Equal(q1a()) {
		t.Error("identical patterns not equal")
	}
	other := q1a()
	other.Input = "x"
	if q1a().Equal(other) {
		t.Error("different inputs equal")
	}
	other2 := q1a()
	other2.ExtractionPoint().Test = xdm.StarTest()
	if q1a().Equal(other2) {
		t.Error("different tests equal")
	}
}
