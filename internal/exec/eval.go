package exec

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"xqtp/internal/algebra"
	"xqtp/internal/funcs"
	"xqtp/internal/join"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Engine evaluates algebraic plans against an environment of free variables
// using a configured physical tree-pattern algorithm.
//
// An engine is safe for concurrent Run calls as long as its configuration
// (Vars, Algorithm, Parallel, Catalog, Preps) is not mutated concurrently:
// evaluation state is per-call, and the catalog and prepared-pattern cache
// are concurrency-safe.
type Engine struct {
	// Vars binds the plan's free variables ($d, $input, the context item).
	Vars map[string]xdm.Sequence
	// Algorithm selects the physical evaluation of TupleTreePattern.
	Algorithm join.Algorithm
	// Parallel caps the number of goroutines evaluating the context nodes
	// of one TupleTreePattern invocation concurrently (<=1: sequential).
	// Results are deterministic: per-context bindings are merged in input
	// order before the operator's document-order sort.
	Parallel int
	// Catalog resolves documents to their indexes, building each exactly
	// once. Sharing a catalog between engines (e.g. the document's own)
	// makes every run after the first free of index work.
	Catalog *xmlstore.Catalog
	// Preps caches prepared (pattern, document, algorithm) joins. Sharing
	// it across runs of one compiled query skips per-run stream resolution.
	Preps *PrepCache
}

// NewEngine builds an execution engine with a private catalog and
// prepared-pattern cache (callers serving many runs share both by setting
// Catalog/Preps to long-lived instances).
func NewEngine(alg join.Algorithm, vars map[string]xdm.Sequence) *Engine {
	return &Engine{
		Vars:      vars,
		Algorithm: alg,
		Catalog:   xmlstore.NewCatalog(),
		Preps:     NewPrepCache(),
	}
}

// UseIndex registers a prebuilt index (otherwise indexes are built lazily
// per document on first pattern evaluation).
func (en *Engine) UseIndex(ix *xmlstore.Index) {
	en.Catalog.Register(ix)
}

// prepFor resolves the (pattern, document) pair to a prepared join,
// consulting the prepared-pattern cache and the document catalog. A
// zero-value Engine (no catalog, no cache) still works: it builds and
// prepares on the spot.
func (en *Engine) prepFor(pat *pattern.Pattern, t *xdm.Tree) (*join.Prepared, error) {
	var ix *xmlstore.Index
	if en.Catalog != nil {
		ix = en.Catalog.Index(t)
	} else {
		ix = xmlstore.BuildIndex(t)
	}
	if en.Preps == nil {
		return join.Prepare(en.Algorithm, ix, pat)
	}
	return en.Preps.prepared(en.Algorithm, ix, pat)
}

// Run evaluates a plan to an item sequence.
func (en *Engine) Run(plan algebra.Expr) (xdm.Sequence, error) {
	v, err := en.eval(plan, nil)
	if err != nil {
		return nil, err
	}
	return v.Items()
}

func (en *Engine) eval(e algebra.Expr, sc *scope) (Value, error) {
	switch x := e.(type) {
	case *algebra.In:
		if it, ok := sc.currentItem(); ok {
			return ItemsValue(xdm.Singleton(it)), nil
		}
		if t, ok := sc.currentTuple(); ok {
			return TuplesValue([]*Tuple{t}), nil
		}
		return Value{}, fmt.Errorf("exec: IN used outside a dependent context")

	case *algebra.Field:
		if v, ok := sc.lookupField(x.Name); ok {
			return ItemsValue(v), nil
		}
		return Value{}, fmt.Errorf("exec: unbound field IN#%s", x.Name)

	case *algebra.VarRef:
		if v, ok := en.Vars[x.Name]; ok {
			return ItemsValue(v), nil
		}
		return Value{}, fmt.Errorf("exec: unbound variable $%s", x.Name)

	case *algebra.Const:
		return ItemsValue(xdm.Singleton(x.Item)), nil

	case *algebra.EmptySeq:
		return ItemsValue(nil), nil

	case *algebra.TreeJoin:
		return en.evalTreeJoin(x, sc)

	case *algebra.Call:
		return en.evalCall(x, sc)

	case *algebra.Compare:
		l, err := en.evalItems(x.L, sc)
		if err != nil {
			return Value{}, err
		}
		r, err := en.evalItems(x.R, sc)
		if err != nil {
			return Value{}, err
		}
		b, err := xdm.GeneralCompare(x.Op, l, r)
		if err != nil {
			return Value{}, err
		}
		return ItemsValue(xdm.Singleton(xdm.Bool(b))), nil

	case *algebra.Sequence:
		var out xdm.Sequence
		for _, it := range x.Items {
			v, err := en.evalItems(it, sc)
			if err != nil {
				return Value{}, err
			}
			out = append(out, v...)
		}
		return ItemsValue(out), nil

	case *algebra.Arith:
		l, err := en.evalItems(x.L, sc)
		if err != nil {
			return Value{}, err
		}
		r, err := en.evalItems(x.R, sc)
		if err != nil {
			return Value{}, err
		}
		out, err := xdm.Arithmetic(x.Op, l, r)
		if err != nil {
			return Value{}, err
		}
		return ItemsValue(out), nil

	case *algebra.And:
		l, err := en.evalBool(x.L, sc)
		if err != nil {
			return Value{}, err
		}
		if !l {
			return ItemsValue(xdm.Singleton(xdm.Bool(false))), nil
		}
		r, err := en.evalBool(x.R, sc)
		if err != nil {
			return Value{}, err
		}
		return ItemsValue(xdm.Singleton(xdm.Bool(r))), nil

	case *algebra.Or:
		l, err := en.evalBool(x.L, sc)
		if err != nil {
			return Value{}, err
		}
		if l {
			return ItemsValue(xdm.Singleton(xdm.Bool(true))), nil
		}
		r, err := en.evalBool(x.R, sc)
		if err != nil {
			return Value{}, err
		}
		return ItemsValue(xdm.Singleton(xdm.Bool(r))), nil

	case *algebra.If:
		c, err := en.evalBool(x.Cond, sc)
		if err != nil {
			return Value{}, err
		}
		if c {
			return en.eval(x.Then, sc)
		}
		return en.eval(x.Else, sc)

	case *algebra.LetBind:
		v, err := en.evalItems(x.Value, sc)
		if err != nil {
			return Value{}, err
		}
		return en.eval(x.Body, sc.pushTuple((*Tuple)(nil).Extend(x.Name, v)))

	case *algebra.TypeSwitch:
		return en.evalTypeSwitch(x, sc)

	case *algebra.MapFromItem:
		in, err := en.evalItems(x.Input, sc)
		if err != nil {
			return Value{}, err
		}
		out := make([]*Tuple, len(in))
		for i, it := range in {
			out[i] = (*Tuple)(nil).Extend(x.Bind, xdm.Singleton(it))
		}
		return TuplesValue(out), nil

	case *algebra.MapToItem:
		in, err := en.evalTuples(x.Input, sc)
		if err != nil {
			return Value{}, err
		}
		var out xdm.Sequence
		for _, t := range in {
			v, err := en.evalItems(x.Dep, sc.pushTuple(t))
			if err != nil {
				return Value{}, err
			}
			out = append(out, v...)
		}
		return ItemsValue(out), nil

	case *algebra.Select:
		in, err := en.evalTuples(x.Input, sc)
		if err != nil {
			return Value{}, err
		}
		var out []*Tuple
		for _, t := range in {
			keep, err := en.evalBool(x.Pred, sc.pushTuple(t))
			if err != nil {
				return Value{}, err
			}
			if keep {
				out = append(out, t)
			}
		}
		return TuplesValue(out), nil

	case *algebra.MapIndex:
		in, err := en.evalTuples(x.Input, sc)
		if err != nil {
			return Value{}, err
		}
		out := make([]*Tuple, len(in))
		for i, t := range in {
			out[i] = t.Extend(x.Field, xdm.Singleton(xdm.Integer(i+1)))
		}
		return TuplesValue(out), nil

	case *algebra.Head:
		return en.evalHead(x, sc)

	case *algebra.TupleTreePattern:
		return en.evalTTP(x, sc, false)
	}
	return Value{}, fmt.Errorf("exec: cannot evaluate %T", e)
}

func (en *Engine) evalItems(e algebra.Expr, sc *scope) (xdm.Sequence, error) {
	v, err := en.eval(e, sc)
	if err != nil {
		return nil, err
	}
	return v.Items()
}

func (en *Engine) evalTuples(e algebra.Expr, sc *scope) ([]*Tuple, error) {
	v, err := en.eval(e, sc)
	if err != nil {
		return nil, err
	}
	return v.Tuples()
}

func (en *Engine) evalBool(e algebra.Expr, sc *scope) (bool, error) {
	v, err := en.evalItems(e, sc)
	if err != nil {
		return false, err
	}
	return xdm.EffectiveBool(v)
}

func (en *Engine) evalTreeJoin(tj *algebra.TreeJoin, sc *scope) (Value, error) {
	in, err := en.evalItems(tj.Input, sc)
	if err != nil {
		return Value{}, err
	}
	var out xdm.Sequence
	for _, it := range in {
		n, ok := it.(*xdm.Node)
		if !ok {
			return Value{}, fmt.Errorf("exec: TreeJoin applied to atomic value %T", it)
		}
		for _, m := range xdm.Step(n, tj.Axis, tj.Test) {
			out = append(out, m)
		}
	}
	return ItemsValue(out), nil
}

func (en *Engine) evalCall(c *algebra.Call, sc *scope) (Value, error) {
	if err := funcs.CheckArity(c.Name, len(c.Args)); err != nil {
		return Value{}, fmt.Errorf("exec: %v", err)
	}
	args := make([]xdm.Sequence, len(c.Args))
	for i, a := range c.Args {
		v, err := en.evalItems(a, sc)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	out, err := funcs.Invoke(c.Name, args)
	if err != nil {
		return Value{}, fmt.Errorf("exec: %w", err)
	}
	return ItemsValue(out), nil
}

func (en *Engine) evalTypeSwitch(ts *algebra.TypeSwitch, sc *scope) (Value, error) {
	in, err := en.evalItems(ts.Input, sc)
	if err != nil {
		return Value{}, err
	}
	for _, c := range ts.Cases {
		if c.Type == "numeric" && len(in) == 1 && xdm.IsNumeric(in[0]) {
			return en.eval(c.Body, sc.pushTuple((*Tuple)(nil).Extend(c.Var, in)))
		}
	}
	s2 := sc
	if ts.DefVar != "" {
		s2 = sc.pushTuple((*Tuple)(nil).Extend(ts.DefVar, in))
	}
	return en.eval(ts.Default, s2)
}

// evalHead returns the first tuple of the input. When the input is a
// TupleTreePattern over a single input tuple, the pattern is evaluated with
// a first-match limit, giving the nested-loop algorithm its cursor-style
// early exit (§5.3).
func (en *Engine) evalHead(h *algebra.Head, sc *scope) (Value, error) {
	if ttp, ok := h.Input.(*algebra.TupleTreePattern); ok {
		return en.evalTTP(ttp, sc, true)
	}
	in, err := en.evalTuples(h.Input, sc)
	if err != nil {
		return Value{}, err
	}
	if len(in) == 0 {
		return TuplesValue(nil), nil
	}
	return TuplesValue(in[:1]), nil
}

// row pairs an input tuple with one pattern binding.
type row struct {
	tuple   *Tuple
	binding join.Binding
}

// evalTTP implements the TupleTreePattern operator: a dependent join that,
// for each input tuple, matches the pattern from the context nodes in the
// pattern's input field, then emits the bindings in root-to-leaf lexical
// document order with duplicate bindings removed (so a single output field
// at the extraction point carries XPath semantics, §4.1).
func (en *Engine) evalTTP(ttp *algebra.TupleTreePattern, sc *scope, firstOnly bool) (Value, error) {
	in, err := en.evalTuples(ttp.Input, sc)
	if err != nil {
		return Value{}, err
	}
	// Collect the (tuple, context node) work list.
	type work struct {
		tuple *Tuple
		ctx   *xdm.Node
		prep  *join.Prepared
	}
	var items []work
	for _, t := range in {
		ctxSeq, ok := t.Lookup(ttp.Pattern.Input)
		if !ok {
			if ctxSeq, ok = sc.lookupField(ttp.Pattern.Input); !ok {
				return Value{}, fmt.Errorf("exec: pattern input field %s unbound", ttp.Pattern.Input)
			}
		}
		for _, it := range ctxSeq {
			ctx, ok := it.(*xdm.Node)
			if !ok {
				return Value{}, fmt.Errorf("exec: pattern context is atomic value %T", it)
			}
			items = append(items, work{tuple: t, ctx: ctx})
		}
	}
	// Resolve the prepared join once per distinct document (with a single
	// document — the common case — this is one cache lookup for the whole
	// work list, regardless of how many context nodes it holds).
	var lastTree *xdm.Tree
	var lastPrep *join.Prepared
	for i := range items {
		if t := items[i].ctx.Doc; t != lastTree {
			p, err := en.prepFor(ttp.Pattern, t)
			if err != nil {
				return Value{}, err
			}
			lastTree, lastPrep = t, p
		}
		items[i].prep = lastPrep
	}
	var fields []string
	if len(items) > 0 {
		// All items share the pattern; the prepared form resolved the output
		// fields once. With zero items the fields are never read.
		fields = items[0].prep.OutputFields()
	}
	if firstOnly && len(items) == 1 {
		b, found := items[0].prep.EvalFirst(items[0].ctx)
		var rows []row
		if found {
			rows = append(rows, row{tuple: items[0].tuple, binding: b})
		}
		return en.ttpOutput(rows, fields, firstOnly)
	}
	if len(items) == 1 {
		// One context node (the common case after rewrites root the pattern
		// at the document): no per-item fan-out bookkeeping.
		bs := items[0].prep.Eval(items[0].ctx)
		rows := make([]row, len(bs))
		for i, b := range bs {
			rows[i] = row{tuple: items[0].tuple, binding: b}
		}
		return en.ttpOutput(rows, fields, firstOnly)
	}
	perItem := make([][]join.Binding, len(items))
	if en.Parallel > 1 && len(items) > 1 {
		workers := en.Parallel
		if workers > len(items) {
			workers = len(items)
		}
		var wg sync.WaitGroup
		next := int64(-1)
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(items) {
						return
					}
					perItem[i] = items[i].prep.Eval(items[i].ctx)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, w := range items {
			perItem[i] = w.prep.Eval(w.ctx)
		}
	}
	total := 0
	for _, bs := range perItem {
		total += len(bs)
	}
	rows := make([]row, 0, total)
	for i, bs := range perItem {
		for _, b := range bs {
			rows = append(rows, row{tuple: items[i].tuple, binding: b})
		}
	}
	return en.ttpOutput(rows, fields, firstOnly)
}

func (en *Engine) ttpOutput(rows []row, fields []string, firstOnly bool) (Value, error) {
	// Root-to-leaf lexical document order over the binding vectors, then
	// duplicate-binding elimination.
	slices.SortStableFunc(rows, func(a, b row) int {
		return compareBindings(a.binding, b.binding)
	})
	// The output tuples and their singleton field sequences come from two
	// arenas sized up front, so emitting n rows costs three allocations, not
	// 2n. The tuple arena never grows past its capacity, which keeps the
	// parent pointers taken below stable.
	nf := len(fields)
	arena := make([]Tuple, 0, len(rows)*nf)
	itemArena := make([]xdm.Item, len(rows)*nf)
	ti := 0
	out := make([]*Tuple, 0, len(rows))
	for i, r := range rows {
		if i > 0 && compareBindings(rows[i-1].binding, r.binding) == 0 {
			continue
		}
		t := r.tuple
		for k, f := range fields {
			itemArena[ti] = r.binding[k]
			arena = append(arena, Tuple{name: f, val: itemArena[ti : ti+1 : ti+1], parent: t})
			t = &arena[len(arena)-1]
			ti++
		}
		out = append(out, t)
	}
	if firstOnly && len(out) > 1 {
		out = out[:1]
	}
	return TuplesValue(out), nil
}

func compareBindings(a, b join.Binding) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := xdm.CompareOrder(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// EvalPlanItems is a convenience wrapper: evaluate plan and require an item
// sequence result.
func EvalPlanItems(plan algebra.Expr, alg join.Algorithm, vars map[string]xdm.Sequence) (xdm.Sequence, error) {
	return NewEngine(alg, vars).Run(plan)
}
