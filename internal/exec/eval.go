// Package exec is the runtime for algebraic plans: it lowers each plan once
// through internal/physical (slot-addressed operators, builtin function
// pointers, plan-level pattern/algorithm annotation) and executes the
// compiled form against an environment of free variables, a document
// catalog, and a prepared-pattern cache.
package exec

import (
	"context"
	"sync"

	"xqtp/internal/algebra"
	"xqtp/internal/execctx"
	"xqtp/internal/join"
	"xqtp/internal/physical"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// Engine evaluates algebraic plans against an environment of free variables
// using a configured physical tree-pattern algorithm.
//
// An engine is safe for concurrent Run calls as long as its configuration
// (Vars, Algorithm, Parallel, Catalog, Preps) is not mutated concurrently:
// evaluation state is per-call, and the catalog, prepared-pattern cache and
// compiled-plan cache are concurrency-safe. The physical lowering of each
// distinct plan happens once per engine (the Algorithm in effect at that
// first Run is compiled in).
type Engine struct {
	// Vars binds the plan's free variables ($d, $input, the context item).
	Vars map[string]xdm.Sequence
	// Algorithm selects the physical evaluation of TupleTreePattern.
	Algorithm join.Algorithm
	// Parallel caps the number of goroutines evaluating the context nodes
	// of one TupleTreePattern invocation concurrently (<=1: sequential).
	// Results are deterministic: per-context bindings are merged in input
	// order before the operator's document-order sort.
	Parallel int
	// Catalog resolves documents to their indexes, building each exactly
	// once. Sharing a catalog between engines (e.g. the document's own)
	// makes every run after the first free of index work.
	Catalog *xmlstore.Catalog
	// Preps caches prepared (pattern, document, algorithm) joins. Sharing
	// it across runs of one compiled query skips per-run stream resolution.
	Preps *PrepCache

	// plans memoizes the physical lowering per algebra.Expr identity.
	plans sync.Map // algebra.Expr -> *physical.Plan
}

// NewEngine builds an execution engine with a private catalog and
// prepared-pattern cache (callers serving many runs share both by setting
// Catalog/Preps to long-lived instances).
func NewEngine(alg join.Algorithm, vars map[string]xdm.Sequence) *Engine {
	return &Engine{
		Vars:      vars,
		Algorithm: alg,
		Catalog:   xmlstore.NewCatalog(),
		Preps:     NewPrepCache(),
	}
}

// UseIndex registers a prebuilt index (otherwise indexes are built lazily
// per document on first pattern evaluation).
func (en *Engine) UseIndex(ix *xmlstore.Index) {
	en.Catalog.Register(ix)
}

// planFor returns the engine's compiled physical form of plan, lowering it
// on first use.
func (en *Engine) planFor(plan algebra.Expr) (*physical.Plan, error) {
	if v, ok := en.plans.Load(plan); ok {
		return v.(*physical.Plan), nil
	}
	p, err := physical.Compile(plan, en.Algorithm)
	if err != nil {
		return nil, err
	}
	v, _ := en.plans.LoadOrStore(plan, p)
	return v.(*physical.Plan), nil
}

// Run evaluates a plan to an item sequence.
func (en *Engine) Run(plan algebra.Expr) (xdm.Sequence, error) {
	return en.RunCtx(context.Background(), plan)
}

// RunCtx evaluates a plan to an item sequence under a context: the physical
// operators and join kernels poll ctx at bounded intervals and abort with
// the typed execctx error once it is done. A background context makes RunCtx
// exactly Run.
func (en *Engine) RunCtx(ctx context.Context, plan algebra.Expr) (xdm.Sequence, error) {
	p, err := en.planFor(plan)
	if err != nil {
		return nil, err
	}
	rt := &physical.Runtime{
		Catalog:  en.Catalog,
		Parallel: en.Parallel,
		Vars:     p.BindVars(en.Vars),
		EC:       execctx.From(ctx, 0, 0),
	}
	if en.Preps != nil {
		// The nil check matters: assigning a nil *PrepCache directly would
		// make the interface non-nil and panic inside it.
		rt.Preps = en.Preps
	}
	return p.Run(rt)
}

// EvalPlanItems is a convenience wrapper: evaluate plan and require an item
// sequence result.
func EvalPlanItems(plan algebra.Expr, alg join.Algorithm, vars map[string]xdm.Sequence) (xdm.Sequence, error) {
	return NewEngine(alg, vars).Run(plan)
}
