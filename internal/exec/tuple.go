// Package exec evaluates algebraic plans: a tuple-at-a-time interpreter for
// the map operators, navigational TreeJoins, and the TupleTreePattern
// operator dispatching to the configured physical algorithm.
package exec

import (
	"fmt"

	"xqtp/internal/xdm"
)

// Tuple is an immutable tuple of named sequence-valued fields, represented
// as a persistent chain so extension is O(1) and shares structure.
type Tuple struct {
	name   string
	val    xdm.Sequence
	parent *Tuple
}

// Extend returns a new tuple with an additional (or overriding) field.
func (t *Tuple) Extend(name string, val xdm.Sequence) *Tuple {
	return &Tuple{name: name, val: val, parent: t}
}

// Lookup resolves a field of the tuple.
func (t *Tuple) Lookup(name string) (xdm.Sequence, bool) {
	for c := t; c != nil; c = c.parent {
		if c.name == name {
			return c.val, true
		}
	}
	return nil, false
}

// Value is the result of evaluating an algebra expression: either an item
// sequence or a tuple sequence.
type Value struct {
	items    xdm.Sequence
	tuples   []*Tuple
	isTuples bool
}

// ItemsValue wraps an item sequence.
func ItemsValue(s xdm.Sequence) Value { return Value{items: s} }

// TuplesValue wraps a tuple sequence.
func TuplesValue(ts []*Tuple) Value { return Value{tuples: ts, isTuples: true} }

// Items returns the item sequence, or an error if the value is tuples.
func (v Value) Items() (xdm.Sequence, error) {
	if v.isTuples {
		return nil, fmt.Errorf("exec: expected an item sequence, got %d tuples", len(v.tuples))
	}
	return v.items, nil
}

// Tuples returns the tuple sequence, or an error if the value is items.
func (v Value) Tuples() ([]*Tuple, error) {
	if !v.isTuples {
		return nil, fmt.Errorf("exec: expected a tuple sequence, got %d items", len(v.items))
	}
	return v.tuples, nil
}

// scope is the dependent-evaluation context: a chain of frames carrying the
// current tuple (IN#field) and/or the current item (IN).
type scope struct {
	tuple   *Tuple
	item    xdm.Item
	hasItem bool
	parent  *scope
}

func (s *scope) pushTuple(t *Tuple) *scope { return &scope{tuple: t, parent: s} }

// lookupField resolves IN#name against the innermost frame that has it.
func (s *scope) lookupField(name string) (xdm.Sequence, bool) {
	for f := s; f != nil; f = f.parent {
		if f.tuple != nil {
			if v, ok := f.tuple.Lookup(name); ok {
				return v, true
			}
		}
	}
	return nil, false
}

// currentTuple returns the innermost tuple frame.
func (s *scope) currentTuple() (*Tuple, bool) {
	for f := s; f != nil; f = f.parent {
		if f.tuple != nil {
			return f.tuple, true
		}
	}
	return nil, false
}

// currentItem returns the innermost item frame.
func (s *scope) currentItem() (xdm.Item, bool) {
	for f := s; f != nil; f = f.parent {
		if f.hasItem {
			return f.item, true
		}
	}
	return nil, false
}
