package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xqtp/internal/algebra"
	"xqtp/internal/compile"
	"xqtp/internal/core"
	"xqtp/internal/join"
	"xqtp/internal/optimize"
	"xqtp/internal/parser"
	"xqtp/internal/rewrite"
	"xqtp/internal/xdm"
)

// qgen generates random queries in the supported fragment, biased toward
// pattern-rich shapes (paths with predicates, FLWOR nests) so the fuzzer
// exercises the whole detection pipeline.
type qgen struct {
	rng     *rand.Rand
	vars    []string // in-scope variables
	counter int
}

var fuzzTags = []string{"a", "b", "c", "d", "name"}
var fuzzValues = []string{"John", "Mary", "x"}

func (g *qgen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

func (g *qgen) freshVar() string {
	g.counter++
	return fmt.Sprintf("v%d", g.counter)
}

// genQuery produces a top-level expression.
func (g *qgen) genQuery(depth int) string {
	if depth <= 0 {
		return g.genPath(depth)
	}
	switch g.rng.Intn(10) {
	case 0:
		return g.genFLWOR(depth)
	case 1:
		return fmt.Sprintf("count(%s)", g.genPath(depth-1))
	case 2:
		return fmt.Sprintf("(%s) | (%s)", g.genPath(depth-1), g.genPath(depth-1))
	case 3:
		return fmt.Sprintf("if (%s) then %s else %s",
			g.genPath(depth-1), g.genPath(depth-1), g.genPath(depth-1))
	case 4:
		q := "some"
		if g.rng.Intn(2) == 0 {
			q = "every"
		}
		v := g.freshVar()
		in := g.genPath(depth - 1)
		g.vars = append(g.vars, v)
		cond := g.genPred(depth-1, false)
		g.vars = g.vars[:len(g.vars)-1]
		cond = strings.ReplaceAll(cond, "##", "$"+v+"/")
		return fmt.Sprintf("%s $%s in %s satisfies %s", q, v, in, cond)
	}
	return g.genPath(depth)
}

// genPath produces a path expression from an in-scope variable.
func (g *qgen) genPath(depth int) string {
	var b strings.Builder
	if len(g.vars) == 0 || g.rng.Intn(4) > 0 {
		b.WriteString("$d")
	} else {
		b.WriteString("$" + g.pick(g.vars))
	}
	steps := 1 + g.rng.Intn(3)
	for i := 0; i < steps; i++ {
		if g.rng.Intn(3) == 0 {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(g.pick(fuzzTags))
		if depth > 0 && g.rng.Intn(3) == 0 {
			pred := g.genPred(depth-1, true)
			pred = strings.ReplaceAll(pred, "##", "")
			fmt.Fprintf(&b, "[%s]", pred)
		}
	}
	return b.String()
}

// genPred produces a predicate body; "##" marks the context prefix for
// relative paths (filled by the caller).
func (g *qgen) genPred(depth int, positional bool) string {
	switch g.rng.Intn(8) {
	case 0:
		if positional {
			return fmt.Sprintf("%d", 1+g.rng.Intn(3))
		}
		return "##" + g.pick(fuzzTags)
	case 1:
		if positional {
			return fmt.Sprintf("position() = %d", 1+g.rng.Intn(3))
		}
		return fmt.Sprintf("count(##%s) = %d", g.pick(fuzzTags), 1+g.rng.Intn(2))
	case 2:
		return fmt.Sprintf("##%s = %q", g.pick(fuzzTags), g.pick(fuzzValues))
	case 3:
		if depth > 0 {
			return fmt.Sprintf("##%s[##%s]", g.pick(fuzzTags), g.pick(fuzzTags))
		}
		return "##" + g.pick(fuzzTags)
	case 4:
		return fmt.Sprintf("##%s and ##%s", g.pick(fuzzTags), g.pick(fuzzTags))
	case 5:
		return fmt.Sprintf("count(##%s) > %d", g.pick(fuzzTags), g.rng.Intn(3))
	case 6:
		return fmt.Sprintf("not(##%s)", g.pick(fuzzTags))
	case 7:
		// Axes outside the pattern fragment keep the fallback honest.
		axis := []string{"following-sibling", "preceding-sibling", "parent", "ancestor"}[g.rng.Intn(4)]
		return fmt.Sprintf("##%s::%s", axis, g.pick(fuzzTags))
	}
	return "##" + g.pick(fuzzTags) + "//" + g.pick(fuzzTags)
}

// genFLWOR produces a for expression, possibly nested, with optional where.
func (g *qgen) genFLWOR(depth int) string {
	v := g.freshVar()
	in := g.genPath(depth - 1)
	g.vars = append(g.vars, v)
	defer func() { g.vars = g.vars[:len(g.vars)-1] }()
	var where string
	if g.rng.Intn(2) == 0 {
		pred := g.genPred(depth-1, false)
		where = " where " + strings.ReplaceAll(pred, "##", "$"+v+"/")
	}
	var ret string
	if depth > 1 && g.rng.Intn(3) == 0 {
		ret = g.genFLWOR(depth - 1)
	} else {
		ret = g.genPath(depth - 1)
	}
	return fmt.Sprintf("for $%s in %s%s return %s", v, in, where, ret)
}

// TestFuzzPipeline generates random queries and random documents and
// checks that the optimized plan under every physical algorithm, and the
// unoptimized plan, agree with the core interpreter — including on errors.
func TestFuzzPipeline(t *testing.T) {
	iterations := 400
	if testing.Short() {
		iterations = 50
	}
	singletons := map[string]bool{"d": true, "dot": true}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := &qgen{rng: rng}
		src := g.genQuery(2 + rng.Intn(2))

		e, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated unparsable query %q: %v", seed, src, err)
		}
		c, err := core.Normalize(e, "dot")
		if err != nil {
			t.Fatalf("seed %d: normalize %q: %v", seed, src, err)
		}
		rewritten := rewrite.Rewrite(c, rewrite.Options{SingletonVars: singletons})
		rawPlan, err := compile.Compile(rewritten)
		if err != nil {
			t.Fatalf("seed %d: compile %q: %v", seed, src, err)
		}
		optPlan := optimize.Optimize(rawPlan, optimize.Options{SingletonVars: singletons})
		// Optimization must be idempotent.
		again := optimize.Optimize(optPlan, optimize.Options{SingletonVars: singletons})
		if !algebra.Equal(optPlan, again) {
			t.Errorf("seed %d: optimizer not idempotent for %q:\n  %s\n  %s",
				seed, src, algebra.String(optPlan), algebra.String(again))
		}

		for docSeed := 0; docSeed < 3; docSeed++ {
			drng := rand.New(rand.NewSource(int64(seed*31 + docSeed)))
			tr := randomDoc(drng, 5+drng.Intn(50))
			env := (*core.Env)(nil).
				Bind("dot", xdm.Singleton(tr.Root)).
				Bind("d", xdm.Singleton(tr.Root))
			want, werr := core.Eval(c, env)

			check := func(label string, plan algebra.Expr, alg join.Algorithm) {
				got, gerr := NewEngine(alg, engineVars(tr)).Run(plan)
				if (werr == nil) != (gerr == nil) {
					t.Errorf("seed %d/%d %s: error mismatch (%v vs %v) for %q",
						seed, docSeed, label, werr, gerr, src)
					return
				}
				if werr == nil && !seqEqual(want, got) {
					t.Errorf("seed %d/%d %s: result mismatch for %q\n want %v\n got  %v\n plan %s",
						seed, docSeed, label, src, want, got, algebra.String(plan))
				}
			}
			check("raw", rawPlan, join.NestedLoop)
			for _, alg := range []join.Algorithm{join.NestedLoop, join.Staircase, join.Twig, join.Auto, join.Streaming} {
				check("opt/"+alg.String(), optPlan, alg)
			}
		}
	}
}
