package exec

import (
	"math/rand"
	"testing"

	"xqtp/internal/algebra"
	"xqtp/internal/compile"
	"xqtp/internal/core"
	"xqtp/internal/join"
	"xqtp/internal/optimize"
	"xqtp/internal/parser"
	"xqtp/internal/rewrite"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

var singles = map[string]bool{"d": true, "input": true, "dot": true}

// pipeline runs the full compilation chain.
func pipeline(t *testing.T, q string, optimized bool) algebra.Expr {
	t.Helper()
	e, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse %s: %v", q, err)
	}
	c, err := core.Normalize(e, "dot")
	if err != nil {
		t.Fatalf("normalize %s: %v", q, err)
	}
	c = rewrite.Rewrite(c, rewrite.Options{SingletonVars: singles})
	p, err := compile.Compile(c)
	if err != nil {
		t.Fatalf("compile %s: %v", q, err)
	}
	if optimized {
		p = optimize.Optimize(p, optimize.Options{SingletonVars: singles})
	}
	return p
}

// oracle evaluates the unrewritten core directly.
func oracle(t *testing.T, q string, tr *xdm.Tree) (xdm.Sequence, error) {
	t.Helper()
	e, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse %s: %v", q, err)
	}
	c, err := core.Normalize(e, "dot")
	if err != nil {
		t.Fatalf("normalize %s: %v", q, err)
	}
	env := (*core.Env)(nil).
		Bind("dot", xdm.Singleton(tr.Root)).
		Bind("d", xdm.Singleton(tr.Root)).
		Bind("input", xdm.Singleton(tr.Root))
	return core.Eval(c, env)
}

func engineVars(tr *xdm.Tree) map[string]xdm.Sequence {
	return map[string]xdm.Sequence{
		"dot":   xdm.Singleton(tr.Root),
		"d":     xdm.Singleton(tr.Root),
		"input": xdm.Singleton(tr.Root),
	}
}

func seqEqual(a, b xdm.Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomDoc(rng *rand.Rand, n int) *xdm.Tree {
	tags := []string{"person", "name", "emailaddress", "profile", "interest", "site", "people", "t1", "a", "b"}
	root := xdm.NewElement("site")
	nodes := []*xdm.Node{root}
	for i := 0; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xdm.NewElement(tags[rng.Intn(len(tags))])
		if rng.Intn(4) == 0 {
			el.SetAttr("id", "x")
		}
		if rng.Intn(3) == 0 {
			el.AppendChild(xdm.NewText([]string{"John", "Mary", "x"}[rng.Intn(3)]))
		}
		parent.AppendChild(el)
		nodes = append(nodes, el)
	}
	return xdm.Finalize(root)
}

var differentialQueries = []string{
	// The paper's queries.
	`$d//person[emailaddress]/name`,
	`(for $x in $d//person[emailaddress] return $x)/name`,
	`let $x := for $y in $d//person where $y/emailaddress return $y return $x/name`,
	`$d//person[name = "John"]/emailaddress`,
	`$d//person[1]/name`,
	`$d//person[name = "John"]/emailaddress[1]`,
	`for $x in $d//person[emailaddress] return $x/name`,
	// §5.1 variants.
	`$input/site/people/person[emailaddress]/profile/interest`,
	`for $x1 in $input/site, $x2 in $x1/people, $x3 in $x2/person[emailaddress] return $x3/profile/interest`,
	// QE shapes (on the site/person tags).
	`$input/desc::person[child::name[child::interest]]`,
	`$input/desc::person/child::name[1]`,
	`$input/desc::person[desc::name]`,
	`$input/desc::person[child::name]/desc::interest`,
	`$input/desc::person[child::name/child::interest]`,
	// §5.3 chains.
	`/site/t1[1]/t1[1]`,
	`/site[1]`,
	// Positional and mixed.
	`$d//person[2]/name`,
	`$d//person[position() = last()]/name`,
	`$d//name[@id]`,
	`$d//person[@id][name]/name`,
	`$d//person[not(emailaddress)]/name`,
	`count($d//person)`,
	`exists($d//person[name = "John"])`,
	`$d//person[name = "John" and emailaddress]/name`,
	`$d//person[name = "Zoe" or name = "Mary"]/name`,
	`for $x at $i in $d//person where $i = 2 return $x/name`,
	`for $x in $d//person where $x/name = "John" return $x/emailaddress`,
	`$d//people/person/name`,
	`$d//person/name/text()`,
	// Extended fragment: sequences, union, arithmetic, conditionals,
	// quantifiers, function library.
	`($d//name, $d//emailaddress)`,
	`$d//name | $d//emailaddress`,
	`($d//person/name | $d//person[emailaddress]/name)[1]`,
	`count($d//person) - count($d//emailaddress)`,
	`$d//person[position() = last() - 1]/name`,
	`$d//person[count(name) + count(emailaddress) = 2]/name`,
	`if ($d//person[name = "John"]) then $d//person[1]/name else ()`,
	`some $x in $d//person satisfies $x/emailaddress`,
	`every $x in $d//person satisfies $x/name`,
	`some $x in $d//person, $y in $x/person satisfies $y/name = $x/name`,
	`$d//person[contains(name, "J")]/name`,
	`$d//person[starts-with(name, "M")]/name`,
	`concat("n=", count($d//name))`,
	`string($d//person[1]/name)`,
	`sum(for $x in $d//person return count($x/name))`,
	`$d//name[string-length(.) > 3]`,
	`max((0, for $x in $d//person return count($x/emailaddress)))`,
	`(1, 2, 3, count($d//person))`,
	`-count($d//person)`,
	`2 * 3 + 4 div 2`,
}

// The central correctness test: for every query, the optimized plan under
// each physical algorithm and the unoptimized plan all agree with the core
// interpreter on randomized documents.
func TestPlansMatchOracle(t *testing.T) {
	algs := []join.Algorithm{join.NestedLoop, join.Staircase, join.Twig}
	for _, q := range differentialQueries {
		optPlan := pipeline(t, q, true)
		rawPlan := pipeline(t, q, false)
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed * 77))
			tr := randomDoc(rng, 4+rng.Intn(70))
			want, werr := oracle(t, q, tr)
			// Unoptimized plan, NL only (no patterns to dispatch).
			got, gerr := NewEngine(join.NestedLoop, engineVars(tr)).Run(rawPlan)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s seed %d (raw): error mismatch %v vs %v", q, seed, werr, gerr)
			}
			if werr == nil && !seqEqual(want, got) {
				t.Fatalf("%s seed %d (raw plan):\n want %v\n got  %v\n plan %s",
					q, seed, want, got, algebra.String(rawPlan))
			}
			for _, alg := range algs {
				got, gerr := NewEngine(alg, engineVars(tr)).Run(optPlan)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s seed %d (%v): error mismatch %v vs %v", q, seed, alg, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if !seqEqual(want, got) {
					t.Errorf("%s seed %d (%v):\n want %v\n got  %v\n plan %s",
						q, seed, alg, want, got, algebra.String(optPlan))
					break
				}
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	tr, _ := xmlstore.ParseString(`<a><b/></a>`)
	en := NewEngine(join.NestedLoop, engineVars(tr))
	// Unbound variable.
	if _, err := en.Run(&algebra.VarRef{Name: "nope"}); err == nil {
		t.Error("unbound variable should fail")
	}
	// Field outside a tuple context.
	if _, err := en.Run(&algebra.Field{Name: "dot"}); err == nil {
		t.Error("unbound field should fail")
	}
	// Tuples where items expected.
	p := &algebra.MapFromItem{Bind: "x", Input: &algebra.VarRef{Name: "d"}}
	if _, err := en.Run(p); err == nil {
		t.Error("tuple result at top level should fail")
	}
	// TreeJoin over atomics.
	tj := &algebra.TreeJoin{Axis: xdm.AxisChild, Test: xdm.NameTest("b"),
		Input: &algebra.Const{Item: xdm.String("zap")}}
	if _, err := en.Run(tj); err == nil {
		t.Error("TreeJoin over atomic should fail")
	}
}

func TestHeadEarlyExitMatchesFull(t *testing.T) {
	// Head(TTP) with the limit path must equal full evaluation + head.
	doc := `<site><t1><t1/><t1/></t1><t1><t1/></t1></site>`
	tr, err := xmlstore.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	q := `/site/t1[1]/t1[1]`
	plan := pipeline(t, q, true)
	want, err := oracle(t, q, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []join.Algorithm{join.NestedLoop, join.Staircase, join.Twig} {
		got, err := NewEngine(alg, engineVars(tr)).Run(plan)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !seqEqual(want, got) {
			t.Errorf("%v: want %v got %v", alg, want, got)
		}
	}
}
