package exec

import (
	"testing"

	"xqtp/internal/xdm"
)

func TestTupleExtendAndLookup(t *testing.T) {
	var base *Tuple
	t1 := base.Extend("a", xdm.Singleton(xdm.Integer(1)))
	t2 := t1.Extend("b", xdm.Singleton(xdm.Integer(2)))
	t3 := t2.Extend("a", xdm.Singleton(xdm.Integer(9))) // override

	if v, ok := t2.Lookup("a"); !ok || v[0] != xdm.Integer(1) {
		t.Errorf("t2.a = %v, %v", v, ok)
	}
	if v, ok := t3.Lookup("a"); !ok || v[0] != xdm.Integer(9) {
		t.Errorf("t3.a = %v, %v (override)", v, ok)
	}
	if v, ok := t3.Lookup("b"); !ok || v[0] != xdm.Integer(2) {
		t.Errorf("t3.b = %v, %v", v, ok)
	}
	if _, ok := t3.Lookup("zzz"); ok {
		t.Error("missing field found")
	}
	// Persistence: extending t2 did not change t1.
	if _, ok := t1.Lookup("b"); ok {
		t.Error("t1 gained a field")
	}
}

func TestScopeChainLookup(t *testing.T) {
	outer := (*Tuple)(nil).Extend("x", xdm.Singleton(xdm.Integer(1)))
	inner := (*Tuple)(nil).Extend("y", xdm.Singleton(xdm.Integer(2)))
	sc := (*scope)(nil).pushTuple(outer).pushTuple(inner)

	if v, ok := sc.lookupField("y"); !ok || v[0] != xdm.Integer(2) {
		t.Errorf("inner lookup = %v, %v", v, ok)
	}
	// Outer fields visible through the chain (correlated predicates).
	if v, ok := sc.lookupField("x"); !ok || v[0] != xdm.Integer(1) {
		t.Errorf("outer lookup = %v, %v", v, ok)
	}
	if _, ok := sc.lookupField("z"); ok {
		t.Error("missing field found through chain")
	}
	if tp, ok := sc.currentTuple(); !ok || tp != inner {
		t.Error("currentTuple should be the innermost frame")
	}
	if _, ok := sc.currentItem(); ok {
		t.Error("no item frame expected")
	}
}

func TestValueDiscipline(t *testing.T) {
	items := ItemsValue(xdm.Singleton(xdm.Integer(1)))
	if _, err := items.Tuples(); err == nil {
		t.Error("items treated as tuples")
	}
	tuples := TuplesValue([]*Tuple{nil})
	if _, err := tuples.Items(); err == nil {
		t.Error("tuples treated as items")
	}
	if s, err := items.Items(); err != nil || len(s) != 1 {
		t.Errorf("Items() = %v, %v", s, err)
	}
	if ts, err := tuples.Tuples(); err != nil || len(ts) != 1 {
		t.Errorf("Tuples() = %v, %v", ts, err)
	}
}
