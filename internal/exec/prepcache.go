package exec

import (
	"container/list"
	"sync"

	"xqtp/internal/join"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// DefaultPrepCacheSize bounds a PrepCache built by NewPrepCache. One entry
// per (pattern, document, algorithm) is tiny — resolved stream slices and a
// validated pattern reference — but each entry pins its document's tree, so
// the bound is what lets a long-lived query serve an unbounded stream of
// transient documents (or a corpus larger than memory should hold twice)
// without accreting every tree it ever touched.
const DefaultPrepCacheSize = 4096

// PrepCache memoizes join.Prepare results per (pattern, document,
// algorithm): the compile-once piece of the serving path. A cache owned by a
// compiled query and threaded into every engine that runs it makes repeated
// Run calls skip pattern validation and stream resolution entirely.
//
// The cache is a bounded LRU: least-recently-used preparations are evicted
// once the cap is exceeded (re-preparing is cheap and idempotent, so
// eviction only costs time). All methods are safe for concurrent use.
type PrepCache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // front = most recently used; values are *prepEntry
	entries map[prepKey]*list.Element

	hits, misses, evictions uint64
}

type prepKey struct {
	pat  *pattern.Pattern
	tree *xdm.Tree
	alg  join.Algorithm
}

type prepEntry struct {
	key prepKey
	p   *join.Prepared
}

// NewPrepCache returns an empty cache with the default bound.
func NewPrepCache() *PrepCache { return NewPrepCacheSize(DefaultPrepCacheSize) }

// NewPrepCacheSize returns an empty cache holding at most size preparations
// (size <= 0 falls back to DefaultPrepCacheSize).
func NewPrepCacheSize(size int) *PrepCache {
	if size <= 0 {
		size = DefaultPrepCacheSize
	}
	return &PrepCache{
		max:     size,
		lru:     list.New(),
		entries: make(map[prepKey]*list.Element, min(size, 64)),
	}
}

// Prepared returns the cached prepared pattern, building and caching it on
// first use (it implements physical.PrepSource). The preparation itself runs
// outside the lock, so a large document's stream resolution never blocks
// hits; concurrent misses on the same key may prepare twice, and the first
// stored entry wins.
func (pc *PrepCache) Prepared(alg join.Algorithm, ix *xmlstore.Index, pat *pattern.Pattern) (*join.Prepared, error) {
	key := prepKey{pat: pat, tree: ix.Tree, alg: alg}
	pc.mu.Lock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		pc.hits++
		p := el.Value.(*prepEntry).p
		pc.mu.Unlock()
		return p, nil
	}
	pc.misses++
	pc.mu.Unlock()

	p, err := join.Prepare(alg, ix, pat)
	if err != nil {
		return nil, err
	}

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		return el.Value.(*prepEntry).p, nil
	}
	pc.entries[key] = pc.lru.PushFront(&prepEntry{key: key, p: p})
	for pc.lru.Len() > pc.max {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.entries, oldest.Value.(*prepEntry).key)
		pc.evictions++
	}
	return p, nil
}

// PrepCacheStats is a snapshot of cache activity.
type PrepCacheStats struct {
	Size      int    // entries currently cached
	Capacity  int    // maximum entries
	Hits      uint64 // lookups served from cache
	Misses    uint64 // lookups that prepared
	Evictions uint64 // entries dropped by the LRU bound
}

// Stats returns a snapshot of the cache counters.
func (pc *PrepCache) Stats() PrepCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PrepCacheStats{
		Size:      pc.lru.Len(),
		Capacity:  pc.max,
		Hits:      pc.hits,
		Misses:    pc.misses,
		Evictions: pc.evictions,
	}
}
