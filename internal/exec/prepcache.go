package exec

import (
	"sync"

	"xqtp/internal/join"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// PrepCache memoizes join.Prepare results per (pattern, document,
// algorithm): the compile-once piece of the serving path. A cache owned by a
// compiled query and threaded into every engine that runs it makes repeated
// Run calls skip pattern validation and stream resolution entirely.
//
// Entries hold references to the documents they were prepared against, so a
// PrepCache should live with the query (or engine) that owns it, not
// process-wide. All methods are safe for concurrent use.
type PrepCache struct {
	m sync.Map // prepKey -> *join.Prepared
}

type prepKey struct {
	pat  *pattern.Pattern
	tree *xdm.Tree
	alg  join.Algorithm
}

// NewPrepCache returns an empty cache.
func NewPrepCache() *PrepCache { return &PrepCache{} }

// Prepared returns the cached prepared pattern, building and caching it on
// first use (it implements physical.PrepSource). Concurrent callers may
// prepare the same key twice; the first stored entry wins and preparation
// is idempotent.
func (pc *PrepCache) Prepared(alg join.Algorithm, ix *xmlstore.Index, pat *pattern.Pattern) (*join.Prepared, error) {
	key := prepKey{pat: pat, tree: ix.Tree, alg: alg}
	if v, ok := pc.m.Load(key); ok {
		return v.(*join.Prepared), nil
	}
	p, err := join.Prepare(alg, ix, pat)
	if err != nil {
		return nil, err
	}
	v, _ := pc.m.LoadOrStore(key, p)
	return v.(*join.Prepared), nil
}
