package exec

import (
	"fmt"
	"sync"
	"testing"

	"xqtp/internal/join"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

func prepDoc(t *testing.T, tag string) *xmlstore.Index {
	t.Helper()
	ix, err := xmlstore.IngestString(fmt.Sprintf("<doc><%s><b/></%s></doc>", tag, tag))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func prepPattern(tag string) *pattern.Pattern {
	s := pattern.NewStep(xdm.AxisDescendant, xdm.NameTest(tag))
	s.Out = "v"
	return pattern.New("dot", s)
}

func TestPrepCacheHitsAndEviction(t *testing.T) {
	pc := NewPrepCacheSize(3)
	pat := prepPattern("a")
	docs := make([]*xmlstore.Index, 5)
	for i := range docs {
		docs[i] = prepDoc(t, "a")
	}
	// Warm: every document misses once.
	for _, ix := range docs[:3] {
		if _, err := pc.Prepared(join.Staircase, ix, pat); err != nil {
			t.Fatal(err)
		}
	}
	if st := pc.Stats(); st.Size != 3 || st.Misses != 3 || st.Hits != 0 || st.Evictions != 0 {
		t.Fatalf("after warm: %+v", st)
	}
	// Re-requesting cached keys hits without growing.
	for _, ix := range docs[:3] {
		if _, err := pc.Prepared(join.Staircase, ix, pat); err != nil {
			t.Fatal(err)
		}
	}
	if st := pc.Stats(); st.Size != 3 || st.Hits != 3 {
		t.Fatalf("after re-request: %+v", st)
	}
	// Two more documents overflow the cap and evict the two least recently
	// used (docs[0], docs[1]).
	for _, ix := range docs[3:] {
		if _, err := pc.Prepared(join.Staircase, ix, pat); err != nil {
			t.Fatal(err)
		}
	}
	if st := pc.Stats(); st.Size != 3 || st.Evictions != 2 {
		t.Fatalf("after overflow: %+v", st)
	}
	// The evicted key re-prepares (a miss, displacing the now-oldest
	// docs[2]), while the most recent key still hits.
	before := pc.Stats()
	if _, err := pc.Prepared(join.Staircase, docs[0], pat); err != nil {
		t.Fatal(err)
	}
	if st := pc.Stats(); st.Misses != before.Misses+1 {
		t.Fatalf("evicted key should re-prepare: %+v", st)
	}
	if _, err := pc.Prepared(join.Staircase, docs[4], pat); err != nil {
		t.Fatal(err)
	}
	if st := pc.Stats(); st.Hits != before.Hits+1 {
		t.Fatalf("retained key should hit: %+v", st)
	}
}

func TestPrepCacheDistinctKeys(t *testing.T) {
	pc := NewPrepCache()
	ix := prepDoc(t, "a")
	pat := prepPattern("a")
	p1, err := pc.Prepared(join.Staircase, ix, pat)
	if err != nil {
		t.Fatal(err)
	}
	// Same key returns the same preparation; a different algorithm or
	// document is a different key.
	p2, err := pc.Prepared(join.Staircase, ix, pat)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("same key should share one preparation")
	}
	p3, err := pc.Prepared(join.Twig, ix, pat)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("different algorithms must not share a preparation")
	}
	if st := pc.Stats(); st.Size != 2 || st.Capacity != DefaultPrepCacheSize {
		t.Fatalf("stats: %+v", st)
	}
}

// Concurrent lookups across a churning key set, run under -race: the LRU
// mutations (map, list, counters) must be fully synchronized, and every
// caller for one key must observe a usable preparation.
func TestPrepCacheConcurrent(t *testing.T) {
	pc := NewPrepCacheSize(8) // smaller than the working set, so eviction churns
	pats := []*pattern.Pattern{prepPattern("a"), prepPattern("b")}
	docs := make([]*xmlstore.Index, 6)
	for i := range docs {
		docs[i] = prepDoc(t, "a")
	}
	algs := []join.Algorithm{join.NestedLoop, join.Staircase, join.Twig}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ix := docs[(g+i)%len(docs)]
				pat := pats[i%len(pats)]
				alg := algs[(g+i)%len(algs)]
				p, err := pc.Prepared(alg, ix, pat)
				if err != nil {
					errs <- err
					return
				}
				if p == nil {
					errs <- fmt.Errorf("nil preparation")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := pc.Stats()
	if st.Size > 8 {
		t.Fatalf("cache exceeded its cap: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("churning working set should evict: %+v", st)
	}
}
