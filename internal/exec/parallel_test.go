package exec

import (
	"math/rand"
	"sync"
	"testing"

	"xqtp/internal/join"
	"xqtp/internal/xdm"
)

// Parallel TupleTreePattern evaluation is deterministic and identical to
// sequential evaluation on every algorithm (run with -race to validate the
// synchronization).
func TestParallelTTPMatchesSequential(t *testing.T) {
	queries := []string{
		`for $x in $d//person[emailaddress] return $x/name`, // per-tuple patterns
		`$d//person[name]/name`,
		`$d//site//person//name`,
	}
	for _, q := range queries {
		plan := pipeline(t, q, true)
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			tr := randomDoc(rng, 100+rng.Intn(200))
			for _, alg := range []join.Algorithm{join.NestedLoop, join.Staircase, join.Twig} {
				seqEngine := NewEngine(alg, engineVars(tr))
				want, err1 := seqEngine.Run(plan)
				parEngine := NewEngine(alg, engineVars(tr))
				parEngine.Parallel = 4
				got, err2 := parEngine.Run(plan)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s/%v seed %d: error mismatch %v vs %v", q, alg, seed, err1, err2)
				}
				if !seqEqual(want, got) {
					t.Errorf("%s/%v seed %d: parallel result differs", q, alg, seed)
				}
			}
		}
	}
}

// One engine, many concurrent Run calls: the serving pattern. The shared
// catalog builds each index once and the prepared-pattern cache is hit from
// every goroutine; results must match the single-threaded run (run with
// -race to validate the synchronization).
func TestConcurrentRunsShareEngine(t *testing.T) {
	queries := []string{
		`$d//person[emailaddress]/name`,
		`for $x in $d//person[emailaddress] return $x/name`,
		`$d//site//person//name`,
	}
	rng := rand.New(rand.NewSource(7))
	trees := []*xdm.Tree{randomDoc(rng, 150), randomDoc(rng, 250)}
	for _, alg := range []join.Algorithm{join.NestedLoop, join.Staircase, join.Twig, join.Auto} {
		for _, q := range queries {
			plan := pipeline(t, q, true)
			for _, tr := range trees {
				en := NewEngine(alg, engineVars(tr))
				want, werr := en.Run(plan)
				const goroutines = 8
				outs := make([]xdm.Sequence, goroutines)
				errs := make([]error, goroutines)
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						outs[g], errs[g] = en.Run(plan)
					}(g)
				}
				wg.Wait()
				for g := 0; g < goroutines; g++ {
					if (werr == nil) != (errs[g] == nil) {
						t.Fatalf("%s/%v: goroutine %d error mismatch %v vs %v", q, alg, g, werr, errs[g])
					}
					if !seqEqual(want, outs[g]) {
						t.Errorf("%s/%v: goroutine %d result differs", q, alg, g)
					}
				}
			}
		}
	}
}
