package exec

import (
	"math/rand"
	"testing"

	"xqtp/internal/join"
)

// Parallel TupleTreePattern evaluation is deterministic and identical to
// sequential evaluation on every algorithm (run with -race to validate the
// synchronization).
func TestParallelTTPMatchesSequential(t *testing.T) {
	queries := []string{
		`for $x in $d//person[emailaddress] return $x/name`, // per-tuple patterns
		`$d//person[name]/name`,
		`$d//site//person//name`,
	}
	for _, q := range queries {
		plan := pipeline(t, q, true)
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			tr := randomDoc(rng, 100+rng.Intn(200))
			for _, alg := range []join.Algorithm{join.NestedLoop, join.Staircase, join.Twig} {
				seqEngine := NewEngine(alg, engineVars(tr))
				want, err1 := seqEngine.Run(plan)
				parEngine := NewEngine(alg, engineVars(tr))
				parEngine.Parallel = 4
				got, err2 := parEngine.Run(plan)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s/%v seed %d: error mismatch %v vs %v", q, alg, seed, err1, err2)
				}
				if !seqEqual(want, got) {
					t.Errorf("%s/%v seed %d: parallel result differs", q, alg, seed)
				}
			}
		}
	}
}
