package physical

import (
	"sort"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// RequiredStep is one name the plan requires of a document, annotated with
// the node kind it must occur as: an attribute when the requiring step sits
// on the attribute axis (where the name test matches attribute nodes only),
// an element on every other axis (where the principal node kind is element).
type RequiredStep struct {
	Name string
	Attr bool
}

// RequiredSteps returns the (name, kind) pairs that must occur in a
// document for the plan to produce a non-empty result there: if any
// returned name has no occurrence of the required kind — count it via the
// document's per-symbol streams — running the plan with every binding
// (context item and free variables) set to that document is guaranteed to
// yield the empty sequence. A nil result means the analysis proved nothing
// and the caller must evaluate every document.
//
// The claim rests on two facts. Tree patterns are conjunctive — every step
// of the spine and of every predicate subtree must bind for any output tuple
// to exist — so each name test in a pattern is required, as the kind its
// axis's principal node kind dictates. And the operators between a pattern
// and the plan root must preserve emptiness for the requirement to
// propagate: tuple-stream operators (map, select, head, tree-join) do,
// while function calls (count() of nothing is 0), constants, comparisons
// and booleans do not, so their subtrees contribute no requirements.
// Any fn:doc/fn:collection operator voids the whole analysis: it injects
// nodes of other documents, against whose trees downstream patterns match.
func (p *Plan) RequiredSteps() []RequiredStep {
	p.reqOnce.Do(func() {
		if p.usesDocs {
			return
		}
		a := &analyzer{}
		steps := a.required(p.root)
		if a.crossDoc || len(steps) == 0 {
			return
		}
		out := make([]RequiredStep, 0, len(steps))
		for s := range steps {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Name != out[j].Name {
				return out[i].Name < out[j].Name
			}
			return !out[i].Attr && out[j].Attr
		})
		p.reqSteps = out
	})
	return p.reqSteps
}

// RequiredNames returns RequiredSteps' names (deduplicated, sorted) — the
// name-presence form of the emptiness requirement.
func (p *Plan) RequiredNames() []string {
	steps := p.RequiredSteps()
	if len(steps) == 0 {
		return nil
	}
	out := make([]string, 0, len(steps))
	for _, s := range steps {
		if len(out) == 0 || out[len(out)-1] != s.Name {
			out = append(out, s.Name)
		}
	}
	return out
}

type analyzer struct {
	// crossDoc is set when the plan can reach nodes outside the bound
	// document (fn:doc / fn:collection), which unsounds every name claim.
	crossDoc bool
}

// required returns the required steps whose absence forces o's result to be
// empty. An empty map is the vacuous claim ("cannot prove emptiness"), used
// for every operator that can produce output from nothing.
func (a *analyzer) required(o op) map[RequiredStep]struct{} {
	switch x := o.(type) {
	case *opDoc, *opCollection:
		a.crossDoc = true
		return nil

	case *opTTP:
		steps := a.required(x.input)
		if steps == nil {
			steps = map[RequiredStep]struct{}{}
		}
		patternSteps(x.pat.Root, steps)
		return steps

	case *opTreeJoin:
		steps := a.required(x.input)
		if x.test.Kind == xdm.TestName {
			if steps == nil {
				steps = map[RequiredStep]struct{}{}
			}
			steps[RequiredStep{Name: x.test.Name, Attr: x.axis == xdm.AxisAttribute}] = struct{}{}
		}
		return steps

	// Tuple-stream shells: empty input means empty output, so the input's
	// requirement carries through. Their dependent expressions (dep, pred)
	// run per input tuple and add nothing, but must still be walked for
	// cross-document operators.
	case *opMapFromItem:
		return a.required(x.input)
	case *opMapToItem:
		a.scan(x.dep)
		return a.required(x.input)
	case *opSelect:
		a.scan(x.pred)
		return a.required(x.input)
	case *opMapIndex:
		return a.required(x.input)
	case *opHead:
		return a.required(x.input)

	case *opLet:
		// The let value may be empty without emptying the body, so only the
		// body's requirement stands.
		a.scan(x.value)
		return a.required(x.body)

	case *opIf:
		// Absent names must empty both branches for the result to be
		// provably empty, whichever way the condition goes.
		a.scan(x.cond)
		return intersect(a.required(x.then), a.required(x.els))

	case *opTypeSwitch:
		a.scan(x.input)
		req := a.required(x.deflt)
		for _, cs := range x.cases {
			req = intersect(req, a.required(cs.body))
		}
		return req

	case *opSequence:
		// A sequence is empty only when every item is.
		if len(x.items) == 0 {
			return nil
		}
		req := a.required(x.items[0])
		for _, it := range x.items[1:] {
			req = intersect(req, a.required(it))
		}
		return req

	// Everything below can produce output from empty inputs (count()=0,
	// ()=() comparisons, constants, bindings), so it contributes no names —
	// but its subtrees may still hide fn:doc/fn:collection.
	case *opCall:
		for _, arg := range x.args {
			a.scan(arg)
		}
		return nil
	case *opCompare:
		a.scan(x.l)
		a.scan(x.r)
		return nil
	case *opArith:
		a.scan(x.l)
		a.scan(x.r)
		return nil
	case *opAnd:
		a.scan(x.l)
		a.scan(x.r)
		return nil
	case *opOr:
		a.scan(x.l)
		a.scan(x.r)
		return nil
	}
	return nil
}

// scan walks a subtree only for cross-document operators, discarding names.
func (a *analyzer) scan(o op) { a.required(o) }

// patternSteps collects every name test in the step chain rooted at s —
// spine and predicates alike, since all of them must bind — with the node
// kind its axis requires.
func patternSteps(s *pattern.Step, into map[RequiredStep]struct{}) {
	for ; s != nil; s = s.Next {
		if s.Test.Kind == xdm.TestName {
			into[RequiredStep{Name: s.Test.Name, Attr: s.Axis == xdm.AxisAttribute}] = struct{}{}
		}
		for _, p := range s.Preds {
			patternSteps(p, into)
		}
	}
}

func intersect(a, b map[RequiredStep]struct{}) map[RequiredStep]struct{} {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := map[RequiredStep]struct{}{}
	for n := range a {
		if _, ok := b[n]; ok {
			out[n] = struct{}{}
		}
	}
	return out
}
