package physical

import (
	"sort"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// RequiredNames returns names that must occur in a document for the plan to
// produce a non-empty result there: if any returned name is absent from a
// document's symbol table, running the plan with every binding (context item
// and free variables) set to that document is guaranteed to yield the empty
// sequence. A nil result means the analysis proved nothing and the caller
// must evaluate every document.
//
// The claim rests on two facts. Tree patterns are conjunctive — every step
// of the spine and of every predicate subtree must bind for any output tuple
// to exist — so each name test in a pattern is required. And the operators
// between a pattern and the plan root must preserve emptiness for the
// requirement to propagate: tuple-stream operators (map, select, head,
// tree-join) do, while function calls (count() of nothing is 0), constants,
// comparisons and booleans do not, so their subtrees contribute no names.
// Any fn:doc/fn:collection operator voids the whole analysis: it injects
// nodes of other documents, against whose trees downstream patterns match.
func (p *Plan) RequiredNames() []string {
	p.reqOnce.Do(func() {
		if p.usesDocs {
			return
		}
		a := &analyzer{}
		names := a.required(p.root)
		if a.crossDoc || len(names) == 0 {
			return
		}
		out := make([]string, 0, len(names))
		for n := range names {
			out = append(out, n)
		}
		sort.Strings(out)
		p.reqNames = out
	})
	return p.reqNames
}

type analyzer struct {
	// crossDoc is set when the plan can reach nodes outside the bound
	// document (fn:doc / fn:collection), which unsounds every name claim.
	crossDoc bool
}

// required returns the names whose absence forces o's result to be empty.
// An empty map is the vacuous claim ("cannot prove emptiness from names"),
// used for every operator that can produce output from nothing.
func (a *analyzer) required(o op) map[string]struct{} {
	switch x := o.(type) {
	case *opDoc, *opCollection:
		a.crossDoc = true
		return nil

	case *opTTP:
		names := a.required(x.input)
		if names == nil {
			names = map[string]struct{}{}
		}
		patternNames(x.pat.Root, names)
		return names

	case *opTreeJoin:
		names := a.required(x.input)
		if x.test.Kind == xdm.TestName {
			if names == nil {
				names = map[string]struct{}{}
			}
			names[x.test.Name] = struct{}{}
		}
		return names

	// Tuple-stream shells: empty input means empty output, so the input's
	// requirement carries through. Their dependent expressions (dep, pred)
	// run per input tuple and add nothing, but must still be walked for
	// cross-document operators.
	case *opMapFromItem:
		return a.required(x.input)
	case *opMapToItem:
		a.scan(x.dep)
		return a.required(x.input)
	case *opSelect:
		a.scan(x.pred)
		return a.required(x.input)
	case *opMapIndex:
		return a.required(x.input)
	case *opHead:
		return a.required(x.input)

	case *opLet:
		// The let value may be empty without emptying the body, so only the
		// body's requirement stands.
		a.scan(x.value)
		return a.required(x.body)

	case *opIf:
		// Absent names must empty both branches for the result to be
		// provably empty, whichever way the condition goes.
		a.scan(x.cond)
		return intersect(a.required(x.then), a.required(x.els))

	case *opTypeSwitch:
		a.scan(x.input)
		req := a.required(x.deflt)
		for _, cs := range x.cases {
			req = intersect(req, a.required(cs.body))
		}
		return req

	case *opSequence:
		// A sequence is empty only when every item is.
		if len(x.items) == 0 {
			return nil
		}
		req := a.required(x.items[0])
		for _, it := range x.items[1:] {
			req = intersect(req, a.required(it))
		}
		return req

	// Everything below can produce output from empty inputs (count()=0,
	// ()=() comparisons, constants, bindings), so it contributes no names —
	// but its subtrees may still hide fn:doc/fn:collection.
	case *opCall:
		for _, arg := range x.args {
			a.scan(arg)
		}
		return nil
	case *opCompare:
		a.scan(x.l)
		a.scan(x.r)
		return nil
	case *opArith:
		a.scan(x.l)
		a.scan(x.r)
		return nil
	case *opAnd:
		a.scan(x.l)
		a.scan(x.r)
		return nil
	case *opOr:
		a.scan(x.l)
		a.scan(x.r)
		return nil
	}
	return nil
}

// scan walks a subtree only for cross-document operators, discarding names.
func (a *analyzer) scan(o op) { a.required(o) }

// patternNames collects every name test in the step chain rooted at s —
// spine and predicates alike, since all of them must bind.
func patternNames(s *pattern.Step, into map[string]struct{}) {
	for ; s != nil; s = s.Next {
		if s.Test.Kind == xdm.TestName {
			into[s.Test.Name] = struct{}{}
		}
		for _, p := range s.Preds {
			patternNames(p, into)
		}
	}
}

func intersect(a, b map[string]struct{}) map[string]struct{} {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := map[string]struct{}{}
	for n := range a {
		if _, ok := b[n]; ok {
			out[n] = struct{}{}
		}
	}
	return out
}
