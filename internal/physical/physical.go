// Package physical compiles algebraic plans (internal/algebra) into
// slot-addressed physical operator trees. The lowering pass runs once per
// (plan, algorithm): it resolves every Field/In/VarRef to an integer slot in
// a flat tuple frame, binds every Call to its builtin function pointer
// (funcs.Resolve), and annotates every TupleTreePattern with its validated
// pattern, output-field slots and physical algorithm choice — so evaluation
// performs no string comparisons for tuple fields or variables, no name
// dispatch for builtins, and no per-run pattern analysis.
//
// A Plan is immutable after Compile and safe for concurrent Run calls; all
// per-run state lives in the Runtime and in frames allocated per call.
package physical

import (
	"fmt"
	"sync"

	"xqtp/internal/execctx"
	"xqtp/internal/join"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// frame is one tuple of the physical executor: a flat, plan-wide array of
// field sequences indexed by compile-time slot numbers. A nil entry means
// the binder for that slot has not executed on this tuple's path (reading it
// through its op yields the empty sequence, matching the persistent-chain
// semantics where such a field was simply absent from an enclosing scope).
type frame []xdm.Sequence

// value is the result of one operator: an item sequence or a tuple-frame
// sequence, mirroring the algebra's two-sorted typing.
type value struct {
	items    xdm.Sequence
	frames   []frame
	isFrames bool
}

func itemsValue(s xdm.Sequence) value { return value{items: s} }
func framesValue(fs []frame) value    { return value{frames: fs, isFrames: true} }

// itemsVal returns the item sequence, or an error if the value is tuples.
func (v value) itemsVal() (xdm.Sequence, error) {
	if v.isFrames {
		return nil, fmt.Errorf("exec: expected an item sequence, got %d tuples", len(v.frames))
	}
	return v.items, nil
}

// framesVal returns the tuple frames, or an error if the value is items.
func (v value) framesVal() ([]frame, error) {
	if !v.isFrames {
		return nil, fmt.Errorf("exec: expected a tuple sequence, got %d items", len(v.items))
	}
	return v.frames, nil
}

// op is a compiled physical operator.
type op interface {
	eval(rt *Runtime, fr frame) (value, error)
}

// PrepSource resolves (algorithm, document, pattern) to a prepared join;
// implemented by exec.PrepCache. Plans fall back to one-shot join.Prepare
// when the runtime carries none.
type PrepSource interface {
	Prepared(alg join.Algorithm, ix *xmlstore.Index, pat *pattern.Pattern) (*join.Prepared, error)
}

// Runtime is the per-engine execution environment of a compiled plan. It
// carries only what varies between runs: the document side (catalog, prep
// cache) and the variable bindings. A Runtime may be shared by concurrent
// Run calls as long as its fields are not mutated.
type Runtime struct {
	// Catalog resolves documents to their indexes, building each once. Nil
	// falls back to building an index per pattern evaluation.
	Catalog *xmlstore.Catalog
	// Preps caches prepared joins across plans and documents. Nil falls back
	// to the plan's private per-operator cache plus one-shot preparation.
	Preps PrepSource
	// Parallel caps the goroutines evaluating one TupleTreePattern's context
	// nodes concurrently (<=1: sequential).
	Parallel int
	// Docs resolves fn:doc($uri) and fn:collection() to document nodes. Nil
	// makes both functions evaluation errors (a plan that never calls them
	// needs no corpus).
	Docs xdm.DocResolver
	// Vars holds the free-variable bindings by the plan's variable slots
	// (Plan.BindVars). A nil entry is an unbound variable. Nil Vars with a
	// non-nil Root binds every variable to Root.
	Vars []*xdm.Sequence
	// Root, when non-nil, is the uniform binding used when Vars is nil: the
	// serving path binds every free variable (and the context item) to the
	// document node, so per-run setup is storing one field.
	Root xdm.Sequence
	// CountCards turns on the pattern operators' actual-cardinality
	// counters (evaluations, emitted rows, emptiness skips per opTTP; read
	// back via Plan.TTPStats). Off by default: the hot path pays nothing.
	CountCards bool
	// EC is the run's execution context: cancellation, deadline, and
	// row/byte budgets. Operators poll it at bounded intervals and abort
	// with its typed error once it stops. Nil (the default) disables every
	// check beyond a nil-test branch.
	EC *execctx.Ctx
}

// varBinding resolves variable slot i.
func (rt *Runtime) varBinding(i int) (xdm.Sequence, bool) {
	if rt.Vars == nil {
		if rt.Root != nil {
			return rt.Root, true
		}
		return nil, false
	}
	if p := rt.Vars[i]; p != nil {
		return *p, true
	}
	return nil, false
}

// Plan is a compiled physical plan: the operator tree plus its frame and
// variable layouts.
type Plan struct {
	root op
	alg  join.Algorithm

	// slotNames maps each frame slot to the field name it was allocated
	// for (explain output; never consulted at run time).
	slotNames []string
	// varNames maps each variable slot to its name, sorted by first use.
	varNames []string
	// ttps lists the plan's pattern operators in lowering order (explain).
	ttps []*opTTP
	// usesDocs records (at lowering time) whether the plan contains an
	// fn:doc/fn:collection operator, i.e. needs a Runtime document resolver
	// and may reach nodes outside its root binding.
	usesDocs bool

	// reqOnce/reqSteps memoize RequiredSteps (the analysis is per-plan, not
	// per-run).
	reqOnce  sync.Once
	reqSteps []RequiredStep
}

// UsesDocAccess reports whether the plan calls fn:doc or fn:collection, and
// therefore must be evaluated against a corpus-wide runtime rather than
// fanned out per document.
func (p *Plan) UsesDocAccess() bool { return p.usesDocs }

// Algorithm returns the physical tree-pattern algorithm the plan was
// compiled for.
func (p *Plan) Algorithm() join.Algorithm { return p.alg }

// NumSlots returns the width of the plan's tuple frame.
func (p *Plan) NumSlots() int { return len(p.slotNames) }

// Vars returns the plan's free-variable names in slot order.
func (p *Plan) Vars() []string { return p.varNames }

// Patterns returns the pattern of each TupleTreePattern operator, in
// lowering order.
func (p *Plan) Patterns() []*pattern.Pattern {
	out := make([]*pattern.Pattern, len(p.ttps))
	for i, t := range p.ttps {
		out[i] = t.pat
	}
	return out
}

// RootBoundPatterns reports, per pattern operator (lowering order, matching
// Patterns), whether the operator's input tuples are built directly from a
// free-variable binding — the document root under the uniform binding — so
// document-rooted cardinality estimates and actuals are meaningful for it.
// Downstream pattern operators (e.g. after a positional head) consume
// derived bindings, and scoring them from the root would be nonsense.
func (p *Plan) RootBoundPatterns() []bool {
	out := make([]bool, len(p.ttps))
	for i, t := range p.ttps {
		if m, ok := t.input.(*opMapFromItem); ok {
			if _, isVar := m.input.(*opVar); isVar {
				out[i] = true
			}
		}
	}
	return out
}

// TTPStats is one pattern operator's accumulated actual cardinalities,
// collected across every Run whose Runtime set CountCards.
type TTPStats struct {
	Pattern   *pattern.Pattern
	Minimized bool  // lowering-time minimization changed the pattern
	Evals     int64 // context nodes evaluated
	Rows      int64 // bindings emitted (before dedup)
	Skips     int64 // evaluations answered by the emptiness proof
}

// TTPStats returns the per-pattern-operator cardinality counters in
// lowering order. Counters only advance under runtimes with CountCards set.
func (p *Plan) TTPStats() []TTPStats {
	out := make([]TTPStats, len(p.ttps))
	for i, t := range p.ttps {
		out[i] = TTPStats{
			Pattern:   t.pat,
			Minimized: t.minimized,
			Evals:     t.actEvals.Load(),
			Rows:      t.actRows.Load(),
			Skips:     t.actSkips.Load(),
		}
	}
	return out
}

// BindVars resolves a name-keyed variable environment to the plan's slot
// layout once per run; unbound names stay nil and error lazily on use.
func (p *Plan) BindVars(vars map[string]xdm.Sequence) []*xdm.Sequence {
	out := make([]*xdm.Sequence, len(p.varNames))
	for i, n := range p.varNames {
		if v, ok := vars[n]; ok {
			v := v
			out[i] = &v
		}
	}
	return out
}

// Run evaluates the plan to an item sequence.
func (p *Plan) Run(rt *Runtime) (xdm.Sequence, error) {
	if err := rt.EC.Err(); err != nil {
		return nil, err
	}
	v, err := p.root.eval(rt, nil)
	if err != nil {
		return nil, err
	}
	return v.itemsVal()
}

// RunSink evaluates the plan, delivering result items to sink through the
// runtime's execution context (budget charging, typed early abort). When
// the plan's root is the usual MapToItem output boundary, the dependent
// item expression is evaluated tuple by tuple and each tuple's items are
// delivered before the next tuple is touched — so a spent budget or a
// canceled context stops further evaluation, not just further delivery,
// and the sink observes exactly the document-order prefix. Other root
// shapes evaluate fully, then deliver.
func (p *Plan) RunSink(rt *Runtime, sink execctx.Sink) error {
	if err := rt.EC.Err(); err != nil {
		return err
	}
	if m, ok := p.root.(*opMapToItem); ok {
		in, err := evalFrames(m.input, rt, nil)
		if err != nil {
			return err
		}
		for _, t := range in {
			if err := rt.EC.Err(); err != nil {
				return err
			}
			v, err := evalItems(m.dep, rt, t)
			if err != nil {
				return err
			}
			if err := execctx.Deliver(rt.EC, sink, v); err != nil {
				return err
			}
		}
		return nil
	}
	seq, err := p.Run(rt)
	if err != nil {
		return err
	}
	return execctx.Deliver(rt.EC, sink, seq)
}

// newFrame clones fr into a fresh frame of the plan's width (fr may be nil:
// the top-level context).
func (p *Plan) newFrame(fr frame) frame {
	nf := make(frame, len(p.slotNames))
	copy(nf, fr)
	return nf
}
