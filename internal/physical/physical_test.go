package physical

import (
	"strings"
	"testing"

	"xqtp/internal/algebra"
	"xqtp/internal/compile"
	"xqtp/internal/core"
	"xqtp/internal/join"
	"xqtp/internal/optimize"
	"xqtp/internal/parser"
	"xqtp/internal/pattern"
	"xqtp/internal/rewrite"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

var singles = map[string]bool{"d": true, "input": true, "dot": true}

// lower runs the full pipeline down to a physical plan.
func lower(t *testing.T, q string, alg join.Algorithm) *Plan {
	t.Helper()
	e, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse %s: %v", q, err)
	}
	c, err := core.Normalize(e, "dot")
	if err != nil {
		t.Fatalf("normalize %s: %v", q, err)
	}
	c = rewrite.Rewrite(c, rewrite.Options{SingletonVars: singles})
	a, err := compile.Compile(c)
	if err != nil {
		t.Fatalf("compile %s: %v", q, err)
	}
	a = optimize.Optimize(a, optimize.Options{SingletonVars: singles})
	p, err := Compile(a, alg)
	if err != nil {
		t.Fatalf("lower %s: %v", q, err)
	}
	return p
}

func parseDoc(t *testing.T, xml string) *xdm.Tree {
	t.Helper()
	tr, err := xmlstore.Parse(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSlotAndVarLayout(t *testing.T) {
	p := lower(t, `for $p in $d//person[emailaddress] return $p/name`, join.Staircase)
	if got := p.Vars(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("Vars() = %v, want [d]", got)
	}
	// At minimum the context binder and the pattern output occupy slots.
	if p.NumSlots() < 2 {
		t.Fatalf("NumSlots() = %d, want >= 2", p.NumSlots())
	}
	// Pattern detection splits the FLWOR into the filter pattern and the
	// return-clause path pattern.
	if n := len(p.Patterns()); n != 2 {
		t.Fatalf("Patterns() = %d operators, want 2", n)
	}
	if p.Algorithm() != join.Staircase {
		t.Fatalf("Algorithm() = %v, want Staircase", p.Algorithm())
	}
}

func TestExplainShowsSlotsAndAlgorithm(t *testing.T) {
	p := lower(t, `$d//person[emailaddress]/name`, join.Twig)
	out := p.Explain()
	for _, want := range []string{"physical plan:", "slots", "$d@0", "alg=TwigJoin", "TupleTreePattern["} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain() missing %q:\n%s", want, out)
		}
	}
	annotated := p.ExplainAnnotated(func(*pattern.Pattern) string { return "SCJoin" })
	if !strings.Contains(annotated, "alg=TwigJoin→SCJoin") {
		t.Errorf("ExplainAnnotated missing the choice annotation:\n%s", annotated)
	}
}

func TestRunAndUniformRootBinding(t *testing.T) {
	tr := parseDoc(t, `<site><person><emailaddress/><name>n1</name></person><person><name>n2</name></person></site>`)
	p := lower(t, `$d//person[emailaddress]/name`, join.Staircase)

	// Uniform binding: nil Vars + Root covers every free variable.
	rt := &Runtime{Root: xdm.Singleton(tr.Root)}
	out, err := p.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d items, want 1", len(out))
	}

	// Explicit slot-resolved bindings give the same answer.
	rt2 := &Runtime{Vars: p.BindVars(map[string]xdm.Sequence{"d": xdm.Singleton(tr.Root)})}
	out2, err := p.Run(rt2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 1 || out2[0] != out[0] {
		t.Fatalf("explicit binding differs: %v vs %v", out2, out)
	}
}

func TestUnboundVariableErrorsLazily(t *testing.T) {
	p := lower(t, `$d/site`, join.Staircase)
	// BindVars with a map that misses the variable: compiling and binding
	// succeed, the error surfaces at evaluation.
	rt := &Runtime{Vars: p.BindVars(map[string]xdm.Sequence{})}
	if _, err := p.Run(rt); err == nil || !strings.Contains(err.Error(), "unbound variable") {
		t.Fatalf("Run with unbound $d: err = %v, want unbound variable", err)
	}
}

func TestCallBindErrorSurfacesAtEval(t *testing.T) {
	// A call the lowering cannot bind (wrong arity, unknown name) compiles —
	// error parity with the interpreter requires the failure to surface at
	// evaluation time, not at plan-build time.
	for _, bad := range []algebra.Expr{
		&algebra.Call{Name: "count", Args: []algebra.Expr{&algebra.EmptySeq{}, &algebra.EmptySeq{}}},
		&algebra.Call{Name: "no-such-fn", Args: nil},
	} {
		p, err := Compile(bad, join.Staircase)
		if err != nil {
			t.Fatalf("Compile(%v) failed eagerly: %v", bad, err)
		}
		if _, err := p.Run(&Runtime{}); err == nil || !strings.Contains(err.Error(), "exec:") {
			t.Fatalf("Run(%v): err = %v, want a lazy exec error", bad, err)
		}
	}
}

func TestAutoPlanResolvesPerDocument(t *testing.T) {
	tr := parseDoc(t, `<site><person><emailaddress/><name>n1</name></person></site>`)
	p := lower(t, `$d//person[emailaddress]/name`, join.Auto)
	if p.Algorithm() != join.Auto {
		t.Fatalf("Algorithm() = %v, want Auto", p.Algorithm())
	}
	rt := &Runtime{Root: xdm.Singleton(tr.Root)}
	out, err := p.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("Auto plan: got %d items, want 1", len(out))
	}
}
