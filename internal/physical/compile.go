package physical

import (
	"fmt"

	"xqtp/internal/algebra"
	"xqtp/internal/funcs"
	"xqtp/internal/join"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// env is the compile-time lexical environment: field name → frame slot,
// innermost binder first. It exists only during lowering; at run time every
// field access is a slot index.
type env struct {
	name   string
	slot   int
	parent *env
}

func (e *env) bind(name string, slot int) *env {
	return &env{name: name, slot: slot, parent: e}
}

func (e *env) lookup(name string) (int, bool) {
	for c := e; c != nil; c = c.parent {
		if c.name == name {
			return c.slot, true
		}
	}
	return -1, false
}

// Compile lowers an algebraic plan into a physical plan for evaluation
// under alg. The pass allocates one frame slot per binder occurrence
// (MapFromItem, LetBind, MapIndex, TypeSwitch cases, pattern output fields)
// — shadowing is resolved here, lexically — then resolves every dependent
// reference to its slot, binds builtin calls to their function pointers,
// and annotates each TupleTreePattern with its algorithm choice.
func Compile(e algebra.Expr, alg join.Algorithm) (*Plan, error) {
	p := &Plan{alg: alg}
	c := &compiler{p: p, varSlots: map[string]int{}}
	// One structural pass to size the slot and variable layouts.
	nBinders, nVarRefs := 0, 0
	algebra.Walk(e, func(e algebra.Expr) bool {
		switch x := e.(type) {
		case *algebra.MapFromItem, *algebra.LetBind, *algebra.MapIndex:
			nBinders++
		case *algebra.TypeSwitch:
			nBinders += len(x.Cases) + 1
		case *algebra.TupleTreePattern:
			nBinders += len(x.Pattern.OutputFields())
		case *algebra.VarRef:
			nVarRefs++
		}
		return true
	})
	p.slotNames = make([]string, 0, nBinders)
	p.varNames = make([]string, 0, nVarRefs)
	root, _, err := c.compile(e, nil)
	if err != nil {
		return nil, err
	}
	p.root = root
	return p, nil
}

type compiler struct {
	p        *Plan
	varSlots map[string]int
}

// newSlot allocates a frame slot for a binder of name.
func (c *compiler) newSlot(name string) int {
	c.p.slotNames = append(c.p.slotNames, name)
	return len(c.p.slotNames) - 1
}

// varSlot resolves a free variable to its slot, allocating on first use.
func (c *compiler) varSlot(name string) int {
	if s, ok := c.varSlots[name]; ok {
		return s
	}
	s := len(c.p.varNames)
	c.p.varNames = append(c.p.varNames, name)
	c.varSlots[name] = s
	return s
}

// compile lowers e under the lexical environment en. The returned env is
// the environment of the operator's output tuples: tuple producers extend
// it with their binders (so consumers of their tuple stream resolve those
// fields); item-valued operators return en unchanged.
func (c *compiler) compile(e algebra.Expr, en *env) (op, *env, error) {
	switch x := e.(type) {
	case *algebra.In:
		return &opIn{}, en, nil

	case *algebra.Field:
		if slot, ok := en.lookup(x.Name); ok {
			return &opField{slot: slot, name: x.Name}, en, nil
		}
		return &opUnboundField{name: x.Name}, en, nil

	case *algebra.VarRef:
		return &opVar{slot: c.varSlot(x.Name), name: x.Name}, en, nil

	case *algebra.Const:
		return &opConst{seq: xdm.Singleton(x.Item)}, en, nil

	case *algebra.EmptySeq:
		return &opConst{}, en, nil

	case *algebra.TreeJoin:
		in, _, err := c.compile(x.Input, en)
		if err != nil {
			return nil, nil, err
		}
		return &opTreeJoin{axis: x.Axis, test: x.Test, input: in}, en, nil

	case *algebra.Call:
		// The collection access functions read the runtime's document
		// resolver, which the generic builtin calling convention (a pure
		// function of evaluated arguments) cannot reach; they lower to
		// dedicated operators.
		switch x.Name {
		case "doc":
			if len(x.Args) != 1 {
				return nil, nil, fmt.Errorf("exec: doc() called with %d arguments", len(x.Args))
			}
			uri, _, err := c.compile(x.Args[0], en)
			if err != nil {
				return nil, nil, err
			}
			c.p.usesDocs = true
			return &opDoc{uri: uri}, en, nil
		case "collection":
			if len(x.Args) > 1 {
				return nil, nil, fmt.Errorf("exec: collection() called with %d arguments", len(x.Args))
			}
			o := &opCollection{}
			if len(x.Args) == 1 {
				name, _, err := c.compile(x.Args[0], en)
				if err != nil {
					return nil, nil, err
				}
				o.name = name
			}
			c.p.usesDocs = true
			return o, en, nil
		}
		o := &opCall{name: x.Name, args: make([]op, len(x.Args))}
		for i, a := range x.Args {
			arg, _, err := c.compile(a, en)
			if err != nil {
				return nil, nil, err
			}
			o.args[i] = arg
		}
		if err := funcs.CheckArity(x.Name, len(x.Args)); err != nil {
			o.bindErr = err
		} else if fn, ok := funcs.Resolve(x.Name); ok {
			o.fn = fn
		} else {
			o.bindErr = fmt.Errorf("unknown function %q", x.Name)
		}
		return o, en, nil

	case *algebra.Compare:
		l, _, err := c.compile(x.L, en)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := c.compile(x.R, en)
		if err != nil {
			return nil, nil, err
		}
		return &opCompare{cmp: x.Op, l: l, r: r}, en, nil

	case *algebra.Sequence:
		o := &opSequence{items: make([]op, len(x.Items))}
		for i, it := range x.Items {
			item, _, err := c.compile(it, en)
			if err != nil {
				return nil, nil, err
			}
			o.items[i] = item
		}
		return o, en, nil

	case *algebra.Arith:
		l, _, err := c.compile(x.L, en)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := c.compile(x.R, en)
		if err != nil {
			return nil, nil, err
		}
		return &opArith{ar: x.Op, l: l, r: r}, en, nil

	case *algebra.And:
		l, _, err := c.compile(x.L, en)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := c.compile(x.R, en)
		if err != nil {
			return nil, nil, err
		}
		return &opAnd{l: l, r: r}, en, nil

	case *algebra.Or:
		l, _, err := c.compile(x.L, en)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := c.compile(x.R, en)
		if err != nil {
			return nil, nil, err
		}
		return &opOr{l: l, r: r}, en, nil

	case *algebra.If:
		cond, _, err := c.compile(x.Cond, en)
		if err != nil {
			return nil, nil, err
		}
		then, _, err := c.compile(x.Then, en)
		if err != nil {
			return nil, nil, err
		}
		els, _, err := c.compile(x.Else, en)
		if err != nil {
			return nil, nil, err
		}
		return &opIf{cond: cond, then: then, els: els}, en, nil

	case *algebra.LetBind:
		val, _, err := c.compile(x.Value, en)
		if err != nil {
			return nil, nil, err
		}
		slot := c.newSlot(x.Name)
		body, bodyEnv, err := c.compile(x.Body, en.bind(x.Name, slot))
		if err != nil {
			return nil, nil, err
		}
		return &opLet{p: c.p, slot: slot, value: val, body: body}, bodyEnv, nil

	case *algebra.TypeSwitch:
		in, _, err := c.compile(x.Input, en)
		if err != nil {
			return nil, nil, err
		}
		o := &opTypeSwitch{p: c.p, input: in, defSlot: -1}
		for _, cs := range x.Cases {
			slot := c.newSlot(cs.Var)
			body, _, err := c.compile(cs.Body, en.bind(cs.Var, slot))
			if err != nil {
				return nil, nil, err
			}
			o.cases = append(o.cases, tsCase{typ: cs.Type, slot: slot, body: body})
		}
		defEnv := en
		if x.DefVar != "" {
			o.defSlot = c.newSlot(x.DefVar)
			defEnv = en.bind(x.DefVar, o.defSlot)
		}
		deflt, _, err := c.compile(x.Default, defEnv)
		if err != nil {
			return nil, nil, err
		}
		o.deflt = deflt
		return o, en, nil

	case *algebra.MapFromItem:
		in, _, err := c.compile(x.Input, en)
		if err != nil {
			return nil, nil, err
		}
		slot := c.newSlot(x.Bind)
		return &opMapFromItem{p: c.p, slot: slot, input: in}, en.bind(x.Bind, slot), nil

	case *algebra.MapToItem:
		in, inEnv, err := c.compile(x.Input, en)
		if err != nil {
			return nil, nil, err
		}
		dep, _, err := c.compile(x.Dep, inEnv)
		if err != nil {
			return nil, nil, err
		}
		return &opMapToItem{dep: dep, input: in}, en, nil

	case *algebra.Select:
		in, inEnv, err := c.compile(x.Input, en)
		if err != nil {
			return nil, nil, err
		}
		pred, _, err := c.compile(x.Pred, inEnv)
		if err != nil {
			return nil, nil, err
		}
		return &opSelect{pred: pred, input: in}, inEnv, nil

	case *algebra.MapIndex:
		in, inEnv, err := c.compile(x.Input, en)
		if err != nil {
			return nil, nil, err
		}
		slot := c.newSlot(x.Field)
		return &opMapIndex{p: c.p, slot: slot, input: in}, inEnv.bind(x.Field, slot), nil

	case *algebra.Head:
		in, inEnv, err := c.compile(x.Input, en)
		if err != nil {
			return nil, nil, err
		}
		if ttp, ok := in.(*opTTP); ok {
			// Head(TupleTreePattern) is the first-match form: push the limit
			// into the pattern operator for the §5.3 early exit.
			ttp.first = true
			return ttp, inEnv, nil
		}
		return &opHead{input: in}, inEnv, nil

	case *algebra.TupleTreePattern:
		in, inEnv, err := c.compile(x.Input, en)
		if err != nil {
			return nil, nil, err
		}
		// Logical minimization runs once here, the choke point every entry
		// path compiles through: subsumed predicate branches and vacuous
		// self steps are gone before any algorithm sees the pattern.
		pat := pattern.Minimize(x.Pattern)
		o := &opTTP{p: c.p, input: in, pat: pat, alg: c.p.alg, inSlot: -1,
			minimized: pat != x.Pattern}
		if slot, ok := inEnv.lookup(x.Pattern.Input); ok {
			o.inSlot = slot
		}
		outEnv := inEnv
		for _, f := range pat.OutputFields() {
			slot := c.newSlot(f)
			o.outSlots = append(o.outSlots, slot)
			outEnv = outEnv.bind(f, slot)
		}
		c.p.ttps = append(c.p.ttps, o)
		return o, outEnv, nil
	}
	return nil, nil, fmt.Errorf("exec: cannot evaluate %T", e)
}
