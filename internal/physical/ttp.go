package physical

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"xqtp/internal/join"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
	"xqtp/internal/xmlstore"
)

// opTTP is the physical TupleTreePattern: a dependent join that matches its
// compiled pattern from the context nodes in the input slot of each input
// tuple and emits one output tuple per binding, in root-to-leaf lexical
// document order with duplicate bindings removed (§4.1). The operator
// carries everything resolvable before the first run — the validated
// pattern, the input and output slots, and the algorithm annotation (a
// fixed algorithm, or Auto for the per-context cost-model choice inside
// join.Prepared) — so evaluation resolves only the per-document prepared
// join, through a single-entry cache sized for the one-document serving
// path.
type opTTP struct {
	p      *Plan
	input  op
	pat    *pattern.Pattern
	inSlot int // slot of the pattern's input field; -1: unbound (lazy error)
	// outSlots maps the pattern's output fields (root-to-leaf) to frame
	// slots.
	outSlots []int
	alg      join.Algorithm
	// first limits evaluation to the first binding in document order: the
	// lowering of Head(TupleTreePattern), which hands the nested-loop
	// algorithm its cursor-style early exit (§5.3).
	first bool
	// minimized records that logical minimization changed the pattern at
	// lowering time (explain annotation only).
	minimized bool

	// cache is the last (document, prepared join) this operator resolved;
	// with one document — the serving case — every run after the first is a
	// single pointer compare.
	cache atomic.Pointer[ttpEntry]

	// Actual-cardinality counters, maintained only when the Runtime sets
	// CountCards: evaluations (context nodes evaluated), rows emitted, and
	// evaluations skipped by the emptiness proof. They make the cost model's
	// est=/act= regression visible without any cost on the default path.
	actEvals atomic.Int64
	actRows  atomic.Int64
	actSkips atomic.Int64
}

type ttpEntry struct {
	tree *xdm.Tree
	prep *join.Prepared
}

// prepFor resolves the prepared join for one document, consulting the
// operator's last-document cache, then the runtime's shared prep cache.
func (o *opTTP) prepFor(rt *Runtime, t *xdm.Tree) (*join.Prepared, error) {
	if e := o.cache.Load(); e != nil && e.tree == t {
		return e.prep, nil
	}
	var ix *xmlstore.Index
	if rt.Catalog != nil {
		ix = rt.Catalog.Index(t)
	} else {
		ix = xmlstore.BuildIndex(t)
	}
	var p *join.Prepared
	var err error
	if rt.Preps != nil {
		p, err = rt.Preps.Prepared(o.alg, ix, o.pat)
	} else {
		p, err = join.Prepare(o.alg, ix, o.pat)
	}
	if err != nil {
		return nil, err
	}
	o.cache.Store(&ttpEntry{tree: t, prep: p})
	return p, nil
}

// row pairs an input frame with one pattern binding.
type row struct {
	fr      frame
	binding join.Binding
}

func (o *opTTP) eval(rt *Runtime, fr frame) (value, error) {
	if err := rt.EC.Err(); err != nil {
		return value{}, err
	}
	in, err := evalFrames(o.input, rt, fr)
	if err != nil {
		return value{}, err
	}
	if o.inSlot < 0 && len(in) > 0 {
		return value{}, fmt.Errorf("exec: pattern input field %s unbound", o.pat.Input)
	}
	// Collect the (frame, context node) work list.
	type work struct {
		fr   frame
		ctx  *xdm.Node
		prep *join.Prepared
	}
	var items []work
	for _, t := range in {
		for _, it := range t[o.inSlot] {
			ctx, ok := it.(*xdm.Node)
			if !ok {
				return value{}, fmt.Errorf("exec: pattern context is atomic value %T", it)
			}
			items = append(items, work{fr: t, ctx: ctx})
		}
	}
	// Resolve the prepared join once per distinct document (with a single
	// document — the common case — this is one cache lookup for the whole
	// work list).
	var lastTree *xdm.Tree
	var lastPrep *join.Prepared
	for i := range items {
		if t := items[i].ctx.Doc; t != lastTree {
			p, err := o.prepFor(rt, t)
			if err != nil {
				return value{}, err
			}
			lastTree, lastPrep = t, p
		}
		items[i].prep = lastPrep
	}
	if rt.CountCards {
		o.actEvals.Add(int64(len(items)))
		for i := range items {
			if items[i].prep.ProvablyEmpty() {
				o.actSkips.Add(1)
			}
		}
	}
	if o.first && len(items) == 1 {
		b, found := items[0].prep.EvalFirstCtx(rt.EC, items[0].ctx)
		var rows []row
		if found {
			rows = append(rows, row{fr: items[0].fr, binding: b})
		}
		return o.emit(rt, rows)
	}
	if len(items) == 1 {
		// One context node (the common case after rewrites root the pattern
		// at the document): no per-item fan-out bookkeeping.
		bs := items[0].prep.EvalCtx(rt.EC, items[0].ctx)
		rows := make([]row, len(bs))
		for i, b := range bs {
			rows[i] = row{fr: items[0].fr, binding: b}
		}
		return o.emit(rt, rows)
	}
	perItem := make([][]join.Binding, len(items))
	if rt.Parallel > 1 && len(items) > 1 {
		workers := rt.Parallel
		if workers > len(items) {
			workers = len(items)
		}
		var wg sync.WaitGroup
		next := int64(-1)
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					// A stopped execution context halts the fan-out: no new
					// context node is admitted, and the kernels cut the
					// in-flight ones short at their own checkpoints.
					if i >= len(items) || rt.EC.Stopped() {
						return
					}
					perItem[i] = items[i].prep.EvalCtx(rt.EC, items[i].ctx)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, w := range items {
			if rt.EC.Stopped() {
				break
			}
			perItem[i] = w.prep.EvalCtx(rt.EC, w.ctx)
		}
	}
	total := 0
	for _, bs := range perItem {
		total += len(bs)
	}
	rows := make([]row, 0, total)
	for i, bs := range perItem {
		for _, b := range bs {
			rows = append(rows, row{fr: items[i].fr, binding: b})
		}
	}
	return o.emit(rt, rows)
}

// emit records the actual row cardinality when the runtime asks for it, then
// hands off to output. A stopped execution context surfaces here as the
// typed abort error — this is the single point every evaluation shape above
// funnels through, so partial kernel results are never emitted.
func (o *opTTP) emit(rt *Runtime, rows []row) (value, error) {
	if err := rt.EC.Err(); err != nil {
		return value{}, err
	}
	if rt.CountCards {
		o.actRows.Add(int64(len(rows)))
	}
	return o.output(rows)
}

// output sorts the rows into root-to-leaf lexical document order, drops
// duplicate bindings, and emits output frames from a single backing arena:
// each frame copies its input frame and writes the binding nodes into the
// pattern's output slots as singleton sequences cut from an item arena.
func (o *opTTP) output(rows []row) (value, error) {
	slices.SortStableFunc(rows, func(a, b row) int {
		return compareBindings(a.binding, b.binding)
	})
	w := len(o.p.slotNames)
	nf := len(o.outSlots)
	backing := make([]xdm.Sequence, len(rows)*w)
	itemArena := make([]xdm.Item, len(rows)*nf)
	out := make([]frame, 0, len(rows))
	ti := 0
	for i, r := range rows {
		if i > 0 && compareBindings(rows[i-1].binding, r.binding) == 0 {
			continue
		}
		row := backing[len(out)*w : (len(out)+1)*w : (len(out)+1)*w]
		copy(row, r.fr)
		for k, slot := range o.outSlots {
			itemArena[ti] = r.binding[k]
			row[slot] = itemArena[ti : ti+1 : ti+1]
			ti++
		}
		out = append(out, row)
	}
	if o.first && len(out) > 1 {
		out = out[:1]
	}
	return framesValue(out), nil
}

func compareBindings(a, b join.Binding) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := xdm.CompareOrder(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}
