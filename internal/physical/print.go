package physical

import (
	"fmt"
	"strings"

	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// ChoiceFn annotates a pattern operator's algorithm line, typically with the
// cost model's choice for a concrete document (join.Choose). Returning ""
// leaves the line unannotated.
type ChoiceFn func(pat *pattern.Pattern) string

// DetailFn returns extra lines to print beneath a pattern operator —
// typically the per-step `est=N act=M` cardinality table for a concrete
// document. Nil or an empty slice prints nothing.
type DetailFn func(pat *pattern.Pattern) []string

// Explain renders the physical plan: one operator per line with the slot
// numbers every dependent reference was compiled to, and each pattern
// operator's algorithm annotation.
func (p *Plan) Explain() string { return p.ExplainAnnotated(nil) }

// ExplainAnnotated renders the plan like Explain, appending choice's
// annotation (e.g. the cost model's per-document decision) to every pattern
// operator line.
func (p *Plan) ExplainAnnotated(choice ChoiceFn) string {
	return p.ExplainDetail(choice, nil)
}

// ExplainDetail renders the plan like ExplainAnnotated and additionally
// prints detail's lines (per-step estimated vs actual cardinalities)
// indented beneath every pattern operator.
func (p *Plan) ExplainDetail(choice ChoiceFn, detail DetailFn) string {
	var b strings.Builder
	fmt.Fprintf(&b, "physical plan: %d slots", len(p.slotNames))
	if len(p.slotNames) > 0 {
		b.WriteString(" [")
		for i, n := range p.slotNames {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s@%d", n, i)
		}
		b.WriteString("]")
	}
	if len(p.varNames) > 0 {
		b.WriteString(", vars [")
		for i, n := range p.varNames {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "$%s@%d", n, i)
		}
		b.WriteString("]")
	}
	fmt.Fprintf(&b, ", algorithm %s\n", p.alg)
	p.write(&b, p.root, 0, choice, detail)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (p *Plan) write(b *strings.Builder, o op, depth int, choice ChoiceFn, detail DetailFn) {
	indent(b, depth)
	switch x := o.(type) {
	case *opIn:
		b.WriteString("IN\n")
	case *opField:
		fmt.Fprintf(b, "IN#%s @%d\n", x.name, x.slot)
	case *opUnboundField:
		fmt.Fprintf(b, "IN#%s (unbound)\n", x.name)
	case *opVar:
		fmt.Fprintf(b, "$%s @v%d\n", x.name, x.slot)
	case *opConst:
		if len(x.seq) == 0 {
			b.WriteString("()\n")
		} else {
			fmt.Fprintf(b, "%s\n", xdm.ItemString(x.seq[0]))
		}
	case *opTreeJoin:
		fmt.Fprintf(b, "TreeJoin[%s::%s]\n", x.axis, x.test)
		p.write(b, x.input, depth+1, choice, detail)
	case *opCall:
		if x.bindErr != nil {
			fmt.Fprintf(b, "fn:%s (error: %v)\n", x.name, x.bindErr)
		} else {
			fmt.Fprintf(b, "fn:%s\n", x.name)
		}
		for _, a := range x.args {
			p.write(b, a, depth+1, choice, detail)
		}
	case *opDoc:
		b.WriteString("fn:doc\n")
		p.write(b, x.uri, depth+1, choice, detail)
	case *opCollection:
		b.WriteString("fn:collection\n")
		if x.name != nil {
			p.write(b, x.name, depth+1, choice, detail)
		}
	case *opCompare:
		fmt.Fprintf(b, "Compare[%s]\n", x.cmp)
		p.write(b, x.l, depth+1, choice, detail)
		p.write(b, x.r, depth+1, choice, detail)
	case *opArith:
		fmt.Fprintf(b, "Arith[%s]\n", x.ar)
		p.write(b, x.l, depth+1, choice, detail)
		p.write(b, x.r, depth+1, choice, detail)
	case *opAnd:
		b.WriteString("And\n")
		p.write(b, x.l, depth+1, choice, detail)
		p.write(b, x.r, depth+1, choice, detail)
	case *opOr:
		b.WriteString("Or\n")
		p.write(b, x.l, depth+1, choice, detail)
		p.write(b, x.r, depth+1, choice, detail)
	case *opIf:
		b.WriteString("If\n")
		p.write(b, x.cond, depth+1, choice, detail)
		p.write(b, x.then, depth+1, choice, detail)
		p.write(b, x.els, depth+1, choice, detail)
	case *opSequence:
		b.WriteString("Sequence\n")
		for _, it := range x.items {
			p.write(b, it, depth+1, choice, detail)
		}
	case *opLet:
		fmt.Fprintf(b, "LetBind[%s @%d]\n", p.slotNames[x.slot], x.slot)
		p.write(b, x.value, depth+1, choice, detail)
		p.write(b, x.body, depth+1, choice, detail)
	case *opTypeSwitch:
		b.WriteString("TypeSwitch\n")
		p.write(b, x.input, depth+1, choice, detail)
		for _, cs := range x.cases {
			indent(b, depth+1)
			fmt.Fprintf(b, "case %s [%s @%d]\n", cs.typ, p.slotNames[cs.slot], cs.slot)
			p.write(b, cs.body, depth+2, choice, detail)
		}
		indent(b, depth+1)
		if x.defSlot >= 0 {
			fmt.Fprintf(b, "default [%s @%d]\n", p.slotNames[x.defSlot], x.defSlot)
		} else {
			b.WriteString("default\n")
		}
		p.write(b, x.deflt, depth+2, choice, detail)
	case *opMapFromItem:
		fmt.Fprintf(b, "MapFromItem[%s @%d]\n", p.slotNames[x.slot], x.slot)
		p.write(b, x.input, depth+1, choice, detail)
	case *opMapToItem:
		b.WriteString("MapToItem\n")
		indent(b, depth+1)
		b.WriteString("dep:\n")
		p.write(b, x.dep, depth+2, choice, detail)
		p.write(b, x.input, depth+1, choice, detail)
	case *opSelect:
		b.WriteString("Select\n")
		indent(b, depth+1)
		b.WriteString("pred:\n")
		p.write(b, x.pred, depth+2, choice, detail)
		p.write(b, x.input, depth+1, choice, detail)
	case *opMapIndex:
		fmt.Fprintf(b, "MapIndex[%s @%d]\n", p.slotNames[x.slot], x.slot)
		p.write(b, x.input, depth+1, choice, detail)
	case *opHead:
		b.WriteString("Head\n")
		p.write(b, x.input, depth+1, choice, detail)
	case *opTTP:
		fmt.Fprintf(b, "TupleTreePattern[%s]", x.pat)
		if x.inSlot >= 0 {
			fmt.Fprintf(b, " in@%d", x.inSlot)
		} else {
			b.WriteString(" in=unbound")
		}
		if len(x.outSlots) > 0 {
			b.WriteString(" out{")
			fields := x.pat.OutputFields()
			for i, slot := range x.outSlots {
				if i > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(b, "%s@%d", fields[i], slot)
			}
			b.WriteString("}")
		}
		fmt.Fprintf(b, " alg=%s", x.alg)
		if choice != nil {
			if ann := choice(x.pat); ann != "" {
				fmt.Fprintf(b, "→%s", ann)
			}
		}
		if x.minimized {
			b.WriteString(" minimized")
		}
		if x.first {
			b.WriteString(" first-match")
		}
		b.WriteString("\n")
		if detail != nil {
			for _, line := range detail(x.pat) {
				indent(b, depth+1)
				b.WriteString(line)
				b.WriteString("\n")
			}
		}
		p.write(b, x.input, depth+1, choice, detail)
	default:
		fmt.Fprintf(b, "%T\n", o)
	}
}
