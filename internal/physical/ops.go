package physical

import (
	"fmt"

	"xqtp/internal/funcs"
	"xqtp/internal/xdm"
)

// evalItems evaluates o and requires an item sequence.
func evalItems(o op, rt *Runtime, fr frame) (xdm.Sequence, error) {
	v, err := o.eval(rt, fr)
	if err != nil {
		return nil, err
	}
	return v.itemsVal()
}

// evalFrames evaluates o and requires a tuple sequence.
func evalFrames(o op, rt *Runtime, fr frame) ([]frame, error) {
	v, err := o.eval(rt, fr)
	if err != nil {
		return nil, err
	}
	return v.framesVal()
}

// evalBool evaluates o to its effective boolean value.
func evalBool(o op, rt *Runtime, fr frame) (bool, error) {
	v, err := evalItems(o, rt, fr)
	if err != nil {
		return false, err
	}
	return xdm.EffectiveBool(v)
}

// opIn is the per-tuple dependent context IN: the current frame as a
// single-tuple stream (tuple ops consume it as the one-row input relation).
type opIn struct{}

func (*opIn) eval(rt *Runtime, fr frame) (value, error) {
	if fr == nil {
		return value{}, fmt.Errorf("exec: IN used outside a dependent context")
	}
	return framesValue([]frame{fr}), nil
}

// opField reads the tuple field compiled to slot (IN#name).
type opField struct {
	slot int
	name string
}

func (o *opField) eval(rt *Runtime, fr frame) (value, error) {
	if fr == nil {
		return value{}, fmt.Errorf("exec: unbound field IN#%s", o.name)
	}
	return itemsValue(fr[o.slot]), nil
}

// opUnboundField is a Field reference outside any binder's scope: the
// lowering pass keeps it as a lazy run-time error, matching the
// interpreter's unbound-field behavior (plans only hit it when malformed).
type opUnboundField struct {
	name string
}

func (o *opUnboundField) eval(rt *Runtime, fr frame) (value, error) {
	return value{}, fmt.Errorf("exec: unbound field IN#%s", o.name)
}

// opVar reads the free variable compiled to slot.
type opVar struct {
	slot int
	name string
}

func (o *opVar) eval(rt *Runtime, fr frame) (value, error) {
	if v, ok := rt.varBinding(o.slot); ok {
		return itemsValue(v), nil
	}
	return value{}, fmt.Errorf("exec: unbound variable $%s", o.name)
}

// opConst is a literal (or the empty sequence), materialized at compile
// time.
type opConst struct {
	seq xdm.Sequence
}

func (o *opConst) eval(rt *Runtime, fr frame) (value, error) {
	return itemsValue(o.seq), nil
}

// opTreeJoin is the navigational axis step over items.
type opTreeJoin struct {
	axis  xdm.Axis
	test  xdm.NodeTest
	input op
}

func (o *opTreeJoin) eval(rt *Runtime, fr frame) (value, error) {
	in, err := evalItems(o.input, rt, fr)
	if err != nil {
		return value{}, err
	}
	var out xdm.Sequence
	for _, it := range in {
		n, ok := it.(*xdm.Node)
		if !ok {
			return value{}, fmt.Errorf("exec: TreeJoin applied to atomic value %T", it)
		}
		for _, m := range xdm.Step(n, o.axis, o.test) {
			out = append(out, m)
		}
	}
	return itemsValue(out), nil
}

// opCall invokes a builtin through the function pointer bound at compile
// time. Arity and resolution errors are checked at lowering but surface at
// evaluation time (bindErr), preserving the interpreter's error timing.
type opCall struct {
	name    string
	fn      funcs.Fn
	args    []op
	bindErr error
}

func (o *opCall) eval(rt *Runtime, fr frame) (value, error) {
	if o.bindErr != nil {
		return value{}, fmt.Errorf("exec: %v", o.bindErr)
	}
	args := make([]xdm.Sequence, len(o.args))
	for i, a := range o.args {
		v, err := evalItems(a, rt, fr)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	out, err := o.fn(args)
	if err != nil {
		return value{}, fmt.Errorf("exec: %w", err)
	}
	return itemsValue(out), nil
}

// opDoc is fn:doc($uri): it resolves a document URI against the runtime's
// corpus. Compiled from Call nodes at lowering time (like every builtin),
// but evaluated against per-run state — the plan itself stays corpus-free.
type opDoc struct {
	uri op
}

func (o *opDoc) eval(rt *Runtime, fr frame) (value, error) {
	if rt.Docs == nil {
		return value{}, fmt.Errorf("exec: doc(): no document collection bound to this evaluation")
	}
	arg, err := evalItems(o.uri, rt, fr)
	if err != nil {
		return value{}, err
	}
	uri, err := funcs.DocArg("doc", arg)
	if err != nil {
		return value{}, fmt.Errorf("exec: %w", err)
	}
	n, err := rt.Docs.ResolveDoc(uri)
	if err != nil {
		return value{}, fmt.Errorf("exec: %w", err)
	}
	return itemsValue(xdm.Singleton(n)), nil
}

// opCollection is fn:collection([$name]): the member document nodes of the
// runtime's corpus, in stable corpus order (ascending tree IDs, so the
// result is already in document order).
type opCollection struct {
	name op // nil: the default collection
}

func (o *opCollection) eval(rt *Runtime, fr frame) (value, error) {
	if rt.Docs == nil {
		return value{}, fmt.Errorf("exec: collection(): no document collection bound to this evaluation")
	}
	name := ""
	if o.name != nil {
		arg, err := evalItems(o.name, rt, fr)
		if err != nil {
			return value{}, err
		}
		name, err = funcs.DocArg("collection", arg)
		if err != nil {
			return value{}, fmt.Errorf("exec: %w", err)
		}
	}
	roots, err := rt.Docs.ResolveCollection(name)
	if err != nil {
		return value{}, fmt.Errorf("exec: %w", err)
	}
	return itemsValue(roots), nil
}

// opCompare is the general comparison.
type opCompare struct {
	cmp  xdm.CompareOp
	l, r op
}

func (o *opCompare) eval(rt *Runtime, fr frame) (value, error) {
	l, err := evalItems(o.l, rt, fr)
	if err != nil {
		return value{}, err
	}
	r, err := evalItems(o.r, rt, fr)
	if err != nil {
		return value{}, err
	}
	b, err := xdm.GeneralCompare(o.cmp, l, r)
	if err != nil {
		return value{}, err
	}
	return itemsValue(xdm.Singleton(xdm.Bool(b))), nil
}

// opArith is binary arithmetic.
type opArith struct {
	ar   xdm.ArithOp
	l, r op
}

func (o *opArith) eval(rt *Runtime, fr frame) (value, error) {
	l, err := evalItems(o.l, rt, fr)
	if err != nil {
		return value{}, err
	}
	r, err := evalItems(o.r, rt, fr)
	if err != nil {
		return value{}, err
	}
	out, err := xdm.Arithmetic(o.ar, l, r)
	if err != nil {
		return value{}, err
	}
	return itemsValue(out), nil
}

// opAnd is short-circuit conjunction of effective boolean values.
type opAnd struct {
	l, r op
}

func (o *opAnd) eval(rt *Runtime, fr frame) (value, error) {
	l, err := evalBool(o.l, rt, fr)
	if err != nil {
		return value{}, err
	}
	if !l {
		return itemsValue(xdm.Singleton(xdm.Bool(false))), nil
	}
	r, err := evalBool(o.r, rt, fr)
	if err != nil {
		return value{}, err
	}
	return itemsValue(xdm.Singleton(xdm.Bool(r))), nil
}

// opOr is short-circuit disjunction.
type opOr struct {
	l, r op
}

func (o *opOr) eval(rt *Runtime, fr frame) (value, error) {
	l, err := evalBool(o.l, rt, fr)
	if err != nil {
		return value{}, err
	}
	if l {
		return itemsValue(xdm.Singleton(xdm.Bool(true))), nil
	}
	r, err := evalBool(o.r, rt, fr)
	if err != nil {
		return value{}, err
	}
	return itemsValue(xdm.Singleton(xdm.Bool(r))), nil
}

// opIf is the conditional.
type opIf struct {
	cond, then, els op
}

func (o *opIf) eval(rt *Runtime, fr frame) (value, error) {
	c, err := evalBool(o.cond, rt, fr)
	if err != nil {
		return value{}, err
	}
	if c {
		return o.then.eval(rt, fr)
	}
	return o.els.eval(rt, fr)
}

// opSequence is sequence concatenation.
type opSequence struct {
	items []op
}

func (o *opSequence) eval(rt *Runtime, fr frame) (value, error) {
	var out xdm.Sequence
	for _, it := range o.items {
		v, err := evalItems(it, rt, fr)
		if err != nil {
			return value{}, err
		}
		out = append(out, v...)
	}
	return itemsValue(out), nil
}

// opLet binds a sequence value into its slot for the body.
type opLet struct {
	p     *Plan
	slot  int
	value op
	body  op
}

func (o *opLet) eval(rt *Runtime, fr frame) (value, error) {
	v, err := evalItems(o.value, rt, fr)
	if err != nil {
		return value{}, err
	}
	nf := o.p.newFrame(fr)
	nf[o.slot] = v
	return o.body.eval(rt, nf)
}

// opTypeSwitch is the residual runtime type dispatch.
type opTypeSwitch struct {
	p       *Plan
	input   op
	cases   []tsCase
	defSlot int // -1: no default variable
	deflt   op
}

type tsCase struct {
	typ  string
	slot int
	body op
}

func (o *opTypeSwitch) eval(rt *Runtime, fr frame) (value, error) {
	in, err := evalItems(o.input, rt, fr)
	if err != nil {
		return value{}, err
	}
	for _, c := range o.cases {
		if c.typ == "numeric" && len(in) == 1 && xdm.IsNumeric(in[0]) {
			nf := o.p.newFrame(fr)
			nf[c.slot] = in
			return c.body.eval(rt, nf)
		}
	}
	if o.defSlot >= 0 {
		nf := o.p.newFrame(fr)
		nf[o.defSlot] = in
		return o.deflt.eval(rt, nf)
	}
	return o.deflt.eval(rt, fr)
}

// opMapFromItem builds one tuple [slot: item] per input item. Frames come
// from a single backing arena, so n tuples cost two allocations.
type opMapFromItem struct {
	p     *Plan
	slot  int
	input op
}

func (o *opMapFromItem) eval(rt *Runtime, fr frame) (value, error) {
	in, err := evalItems(o.input, rt, fr)
	if err != nil {
		return value{}, err
	}
	w := len(o.p.slotNames)
	backing := make([]xdm.Sequence, len(in)*w)
	out := make([]frame, len(in))
	for i, it := range in {
		row := backing[i*w : (i+1)*w : (i+1)*w]
		copy(row, fr)
		row[o.slot] = xdm.Singleton(it)
		out[i] = row
	}
	return framesValue(out), nil
}

// opMapToItem evaluates the dependent item expression per input tuple and
// concatenates the results.
type opMapToItem struct {
	dep   op
	input op
}

func (o *opMapToItem) eval(rt *Runtime, fr frame) (value, error) {
	in, err := evalFrames(o.input, rt, fr)
	if err != nil {
		return value{}, err
	}
	var out xdm.Sequence
	for _, t := range in {
		if rt.EC != nil && rt.EC.Stopped() {
			return value{}, rt.EC.Err()
		}
		v, err := evalItems(o.dep, rt, t)
		if err != nil {
			return value{}, err
		}
		out = append(out, v...)
	}
	return itemsValue(out), nil
}

// opSelect filters input tuples by the dependent predicate.
type opSelect struct {
	pred  op
	input op
}

func (o *opSelect) eval(rt *Runtime, fr frame) (value, error) {
	in, err := evalFrames(o.input, rt, fr)
	if err != nil {
		return value{}, err
	}
	var out []frame
	for _, t := range in {
		if rt.EC != nil && rt.EC.Stopped() {
			return value{}, rt.EC.Err()
		}
		keep, err := evalBool(o.pred, rt, t)
		if err != nil {
			return value{}, err
		}
		if keep {
			out = append(out, t)
		}
	}
	return framesValue(out), nil
}

// opMapIndex extends each input tuple with its 1-based position. Input
// frames may be shared with the producer, so rows are copied into a fresh
// arena before the position slot is written.
type opMapIndex struct {
	p     *Plan
	slot  int
	input op
}

func (o *opMapIndex) eval(rt *Runtime, fr frame) (value, error) {
	in, err := evalFrames(o.input, rt, fr)
	if err != nil {
		return value{}, err
	}
	w := len(o.p.slotNames)
	backing := make([]xdm.Sequence, len(in)*w)
	out := make([]frame, len(in))
	for i, t := range in {
		row := backing[i*w : (i+1)*w : (i+1)*w]
		copy(row, t)
		row[o.slot] = xdm.Singleton(xdm.Integer(i + 1))
		out[i] = row
	}
	return framesValue(out), nil
}

// opHead passes through the first input tuple (first-match pattern inputs
// compile to opTTP{first: true} instead — see lowerHead).
type opHead struct {
	input op
}

func (o *opHead) eval(rt *Runtime, fr frame) (value, error) {
	in, err := evalFrames(o.input, rt, fr)
	if err != nil {
		return value{}, err
	}
	if len(in) == 0 {
		return framesValue(nil), nil
	}
	return framesValue(in[:1]), nil
}
