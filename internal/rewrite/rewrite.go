package rewrite

import (
	"xqtp/internal/core"
)

// Options configures the rewriter.
type Options struct {
	// SingletonVars names free variables that the caller guarantees to bind
	// to exactly one node (typically the document variables and the initial
	// context item). The order/duplicate-freeness analysis uses this to
	// prove, e.g., that ddo($d) is redundant.
	SingletonVars map[string]bool

	// MaxIterations caps the fixpoint loop; the rule system terminates, the
	// cap is a defensive bound.
	MaxIterations int

	// Trace, if non-nil, receives the expression after each pass that
	// changed it (phase is "simplify", "ddo", "split" or "canonicalize").
	Trace func(phase string, e core.Expr)
}

// Rewrite normalizes a core expression into TPNF′: it runs the type
// rewritings, FLWOR rewritings, document-order rewritings and loop
// splitting to a fixpoint, then alpha-renames bound variables canonically.
// The result is semantically equivalent to the input (differentially tested
// against the core interpreter).
func Rewrite(e core.Expr, opts Options) core.Expr {
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	// The singleton guarantee feeds the order/duplicate-freeness analysis
	// only. It deliberately does NOT seed the static typing judgment: a
	// caller may bind a free variable to an atomic value (positional
	// predicates like E[$k] must keep their runtime typeswitch).
	var tenv *typeEnv
	var penv *propEnv
	for v := range opts.SingletonVars {
		penv = penv.bind(v, allProps)
	}
	trace := func(phase string, changed bool) {
		if changed && opts.Trace != nil {
			opts.Trace(phase, e)
		}
	}
	for i := 0; i < maxIter; i++ {
		var c1, c2, c3 bool
		e, c1 = simplifyPass(e, tenv)
		trace("simplify", c1)
		e, c2 = dropDDOPass(e, penv)
		trace("ddo", c2)
		e, c3 = loopSplitPass(e)
		trace("split", c3)
		if !c1 && !c2 && !c3 {
			break
		}
	}
	e = Canonicalize(e)
	trace("canonicalize", true)
	return e
}
