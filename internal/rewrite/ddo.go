package rewrite

import (
	"xqtp/internal/core"
	"xqtp/internal/funcs"
)

// dropDDOPass removes redundant calls to fs:distinct-doc-order. A ddo call
// is removed when either
//
//  1. its argument is provably in document order and duplicate-free
//     (inferProps), so the call is the identity; or
//  2. the call sits in a set-tolerant position: an enclosing consumer (an
//     outer ddo, an effective-boolean-value test, an existential
//     comparison) only depends on the *set* of nodes produced, and every
//     operator in between distributes over sets (for-iteration without
//     positional variables, existential filters). Removing the call can
//     change the order and multiplicity of the intermediate result but not
//     the query result.
//
// Positional variables make iteration order observable, so they block
// tolerance exactly as the paper's loop-split restriction describes.
func dropDDOPass(e core.Expr, env *propEnv) (core.Expr, bool) {
	d := &ddoDropper{}
	out := d.rw(e, env, false)
	return out, d.changed
}

type ddoDropper struct {
	changed bool
}

func (d *ddoDropper) rw(e core.Expr, env *propEnv, tolerant bool) core.Expr {
	switch x := e.(type) {
	case *core.Var, *core.StringLit, *core.NumberLit, *core.EmptySeq:
		return e

	case *core.Step:
		// A step distributes over the set of its context nodes.
		return &core.Step{Input: d.rw(x.Input, env, tolerant), Axis: x.Axis, Test: x.Test}

	case *core.Call:
		return d.rwCall(x, env, tolerant)

	case *core.For:
		bodyEnv := env.bind(x.Var, allProps)
		if x.Pos != "" {
			bodyEnv = bodyEnv.bind(x.Pos, props{atMostOne: true})
		}
		// The input is set-tolerant only if the loop has no positional
		// variable and the loop's own result is consumed set-tolerantly.
		in := d.rw(x.In, env, tolerant && x.Pos == "")
		var where core.Expr
		if x.Where != nil {
			// A where clause is consumed via its effective boolean value.
			where = d.rw(x.Where, bodyEnv, true)
		}
		ret := d.rw(x.Return, bodyEnv, tolerant)
		return &core.For{Var: x.Var, Pos: x.Pos, In: in, Where: where, Return: ret}

	case *core.Let:
		// Conservative: the binding may be used in order-sensitive ways.
		in := d.rw(x.In, env, false)
		ret := d.rw(x.Return, env.bind(x.Var, inferProps(in, env)), tolerant)
		return &core.Let{Var: x.Var, In: in, Return: ret}

	case *core.If:
		return &core.If{
			Cond: d.rw(x.Cond, env, true),
			Then: d.rw(x.Then, env, tolerant),
			Else: d.rw(x.Else, env, tolerant),
		}

	case *core.TypeSwitch:
		out := &core.TypeSwitch{Input: d.rw(x.Input, env, false), DefVar: x.DefVar}
		for _, c := range x.Cases {
			c.Body = d.rw(c.Body, env.bind(c.Var, noProps), tolerant)
			out.Cases = append(out.Cases, c)
		}
		out.Default = d.rw(x.Default, env.bind(x.DefVar, noProps), tolerant)
		return out

	case *core.Compare:
		// General comparisons are existential over atomized operands:
		// order and duplicates cannot change the outcome.
		return &core.Compare{Op: x.Op, L: d.rw(x.L, env, true), R: d.rw(x.R, env, true)}
	case *core.Sequence:
		// Concatenation distributes over sets: if the consumer is
		// set-tolerant, so is each item position.
		out := &core.Sequence{Items: make([]core.Expr, len(x.Items))}
		for i, it := range x.Items {
			out.Items[i] = d.rw(it, env, tolerant)
		}
		return out
	case *core.Arith:
		// Arithmetic requires singleton operands: removing a ddo can turn
		// a deduplicated singleton into a cardinality error.
		return &core.Arith{Op: x.Op, L: d.rw(x.L, env, false), R: d.rw(x.R, env, false)}
	case *core.And:
		return &core.And{L: d.rw(x.L, env, true), R: d.rw(x.R, env, true)}
	case *core.Or:
		return &core.Or{L: d.rw(x.L, env, true), R: d.rw(x.R, env, true)}
	}
	return e
}

func (d *ddoDropper) rwCall(c *core.Call, env *propEnv, tolerant bool) core.Expr {
	switch c.Name {
	case "ddo":
		arg := d.rw(c.Args[0], env, true)
		if tolerant {
			d.changed = true
			return arg
		}
		if p := inferProps(arg, env); p.ord && p.df {
			d.changed = true
			return arg
		}
		return &core.Call{Name: "ddo", Args: []core.Expr{arg}}
	}
	// Per the function table: arguments of duplicate-sensitive functions
	// (count, string, sum, …) must keep their exact sequences; the boolean
	// and emptiness functions, and min/max, are set-tolerant.
	argTolerant := false
	if sig, ok := funcs.Lookup(c.Name); ok {
		argTolerant = !sig.DupSensitive
	}
	args := make([]core.Expr, len(c.Args))
	for i, a := range c.Args {
		args[i] = d.rw(a, env, argTolerant)
	}
	return &core.Call{Name: c.Name, Args: args}
}
