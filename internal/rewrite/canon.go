package rewrite

import (
	"fmt"

	"xqtp/internal/core"
)

// Canonicalize alpha-renames every bound variable to a canonical name
// (dot1, dot2, … in traversal order), so that semantically identical
// rewritten cores — e.g. the 20 syntactic variants of §5.1 — become
// structurally identical expressions and compile to identical plans.
// Free variables keep their names.
func Canonicalize(e core.Expr) core.Expr {
	used := map[string]bool{}
	freeVars(e, map[string]bool{}, used)
	c := &canonizer{used: used, rename: map[string]string{}}
	return c.rw(e)
}

// freeVars collects variable names that occur free in e (canonical names
// must not collide with those; bound names are renamed anyway).
func freeVars(e core.Expr, bound map[string]bool, out map[string]bool) {
	switch x := e.(type) {
	case *core.Var:
		if !bound[x.Name] {
			out[x.Name] = true
		}
	case *core.For:
		freeVars(x.In, bound, out)
		restore := shadow(bound, x.Var, x.Pos)
		if x.Where != nil {
			freeVars(x.Where, bound, out)
		}
		freeVars(x.Return, bound, out)
		restore()
	case *core.Let:
		freeVars(x.In, bound, out)
		restore := shadow(bound, x.Var)
		freeVars(x.Return, bound, out)
		restore()
	case *core.TypeSwitch:
		freeVars(x.Input, bound, out)
		for _, c := range x.Cases {
			restore := shadow(bound, c.Var)
			freeVars(c.Body, bound, out)
			restore()
		}
		restore := shadow(bound, x.DefVar)
		freeVars(x.Default, bound, out)
		restore()
	default:
		for _, ch := range core.Children(e) {
			freeVars(ch, bound, out)
		}
	}
}

// shadow temporarily marks names as bound and returns an undo function.
func shadow(bound map[string]bool, names ...string) func() {
	type saved struct {
		name string
		was  bool
	}
	var st []saved
	for _, n := range names {
		if n == "" {
			continue
		}
		st = append(st, saved{n, bound[n]})
		bound[n] = true
	}
	return func() {
		for i := len(st) - 1; i >= 0; i-- {
			bound[st[i].name] = st[i].was
		}
	}
}

type canonizer struct {
	used    map[string]bool
	rename  map[string]string
	counter int
}

// fresh picks the next canonical name, skipping any name that occurs free
// somewhere in the expression.
func (c *canonizer) fresh() string {
	for {
		c.counter++
		name := fmt.Sprintf("dot%d", c.counter)
		if !c.used[name] {
			c.used[name] = true
			return name
		}
	}
}

// bind allocates a canonical name for a variable and returns a restore
// function for leaving the scope.
func (c *canonizer) bind(name string) (string, func()) {
	if name == "" {
		return "", func() {}
	}
	old, had := c.rename[name]
	canon := c.fresh()
	c.rename[name] = canon
	return canon, func() {
		if had {
			c.rename[name] = old
		} else {
			delete(c.rename, name)
		}
	}
}

func (c *canonizer) rw(e core.Expr) core.Expr {
	switch x := e.(type) {
	case *core.Var:
		if r, ok := c.rename[x.Name]; ok {
			return &core.Var{Name: r}
		}
		return x
	case *core.StringLit, *core.NumberLit, *core.EmptySeq:
		return e
	case *core.Step:
		return &core.Step{Input: c.rw(x.Input), Axis: x.Axis, Test: x.Test}
	case *core.For:
		in := c.rw(x.In)
		v, undoV := c.bind(x.Var)
		p, undoP := c.bind(x.Pos)
		out := &core.For{Var: v, Pos: p, In: in, Return: nil}
		if x.Where != nil {
			out.Where = c.rw(x.Where)
		}
		out.Return = c.rw(x.Return)
		undoP()
		undoV()
		return out
	case *core.Let:
		in := c.rw(x.In)
		v, undo := c.bind(x.Var)
		out := &core.Let{Var: v, In: in, Return: c.rw(x.Return)}
		undo()
		return out
	case *core.If:
		return &core.If{Cond: c.rw(x.Cond), Then: c.rw(x.Then), Else: c.rw(x.Else)}
	case *core.TypeSwitch:
		out := &core.TypeSwitch{Input: c.rw(x.Input)}
		for _, tc := range x.Cases {
			v, undo := c.bind(tc.Var)
			out.Cases = append(out.Cases, core.TSCase{Type: tc.Type, Var: v, Body: c.rw(tc.Body)})
			undo()
		}
		dv, undo := c.bind(x.DefVar)
		out.DefVar = dv
		out.Default = c.rw(x.Default)
		undo()
		return out
	case *core.Call:
		out := &core.Call{Name: x.Name, Args: make([]core.Expr, len(x.Args))}
		for i, a := range x.Args {
			out.Args[i] = c.rw(a)
		}
		return out
	case *core.Compare:
		return &core.Compare{Op: x.Op, L: c.rw(x.L), R: c.rw(x.R)}
	case *core.Sequence:
		out := &core.Sequence{Items: make([]core.Expr, len(x.Items))}
		for i, it := range x.Items {
			out.Items[i] = c.rw(it)
		}
		return out
	case *core.Arith:
		return &core.Arith{Op: x.Op, L: c.rw(x.L), R: c.rw(x.R)}
	case *core.And:
		return &core.And{L: c.rw(x.L), R: c.rw(x.R)}
	case *core.Or:
		return &core.Or{L: c.rw(x.L), R: c.rw(x.R)}
	}
	return e
}
