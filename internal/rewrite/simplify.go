package rewrite

import (
	"xqtp/internal/core"
)

// simplifier applies the type rewritings and FLWOR rewritings of paper §3,
// plus small cleanups (flattening nested ddo calls, stripping redundant
// fn:boolean wrappers in effective-boolean-value positions).
type simplifier struct {
	changed bool
}

// simplifyPass runs one bottom-up simplification sweep and reports whether
// anything changed.
func simplifyPass(e core.Expr, env *typeEnv) (core.Expr, bool) {
	s := &simplifier{}
	out := s.rw(e, env)
	return out, s.changed
}

func (s *simplifier) rw(e core.Expr, env *typeEnv) core.Expr {
	switch x := e.(type) {
	case *core.Var, *core.StringLit, *core.NumberLit, *core.EmptySeq:
		return e

	case *core.Step:
		return &core.Step{Input: s.rw(x.Input, env), Axis: x.Axis, Test: x.Test}

	case *core.Let:
		in := s.rw(x.In, env)
		ret := s.rw(x.Return, env.bind(x.Var, infer(in, env)))
		switch core.Usage(ret, x.Var) {
		case 0:
			// Unused let binding: the bound expression is pure, drop it.
			s.changed = true
			return ret
		case 1:
			// Variable inlining.
			s.changed = true
			return core.Subst(ret, x.Var, in)
		}
		// Always inline trivial bindings (variables and literals).
		switch in.(type) {
		case *core.Var, *core.StringLit, *core.NumberLit, *core.EmptySeq:
			s.changed = true
			return core.Subst(ret, x.Var, in)
		}
		return &core.Let{Var: x.Var, In: in, Return: ret}

	case *core.For:
		return s.rwFor(x, env)

	case *core.If:
		cond := s.stripBoolean(s.rw(x.Cond, env))
		return &core.If{Cond: cond, Then: s.rw(x.Then, env), Else: s.rw(x.Else, env)}

	case *core.TypeSwitch:
		return s.rwTypeSwitch(x, env)

	case *core.Call:
		args := make([]core.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = s.rw(a, env)
		}
		out := &core.Call{Name: x.Name, Args: args}
		switch x.Name {
		case "ddo":
			// ddo(ddo(E)) = ddo(E); ddo(()) = ().
			if inner, ok := args[0].(*core.Call); ok && inner.Name == "ddo" {
				s.changed = true
				return inner
			}
			if _, ok := args[0].(*core.EmptySeq); ok {
				s.changed = true
				return args[0]
			}
		case "boolean":
			// fn:boolean over a boolean-typed singleton is the identity.
			if ti := infer(args[0], env); ti.t == core.TypeBoolean && ti.exactlyOne {
				s.changed = true
				return args[0]
			}
		}
		return out

	case *core.Compare:
		return &core.Compare{Op: x.Op, L: s.rw(x.L, env), R: s.rw(x.R, env)}
	case *core.Sequence:
		// Flatten nested sequences and drop empty items.
		var items []core.Expr
		for _, it := range x.Items {
			ni := s.rw(it, env)
			switch y := ni.(type) {
			case *core.EmptySeq:
				s.changed = true
			case *core.Sequence:
				s.changed = true
				items = append(items, y.Items...)
			default:
				items = append(items, ni)
			}
		}
		switch len(items) {
		case 0:
			s.changed = true
			return &core.EmptySeq{}
		case 1:
			s.changed = true
			return items[0]
		}
		return &core.Sequence{Items: items}
	case *core.Arith:
		return &core.Arith{Op: x.Op, L: s.rw(x.L, env), R: s.rw(x.R, env)}
	case *core.And:
		return &core.And{L: s.rw(x.L, env), R: s.rw(x.R, env)}
	case *core.Or:
		return &core.Or{L: s.rw(x.L, env), R: s.rw(x.R, env)}
	}
	return e
}

func (s *simplifier) rwFor(f *core.For, env *typeEnv) core.Expr {
	in := s.rw(f.In, env)
	bodyEnv := env.bind(f.Var, typeInfo{t: infer(in, env).t, exactlyOne: true})
	if f.Pos != "" {
		bodyEnv = bodyEnv.bind(f.Pos, typeInfo{core.TypeNumeric, true})
	}
	var where core.Expr
	if f.Where != nil {
		// The where clause is an effective-boolean-value position: a
		// surrounding fn:boolean is redundant.
		where = s.stripBoolean(s.rw(f.Where, bodyEnv))
	}
	ret := s.rw(f.Return, bodyEnv)

	// Remove the positional variable when unused (paper §3, third FLWOR
	// rule).
	pos := f.Pos
	if pos != "" && core.Usage(whereAnd(where, ret), pos) == 0 {
		s.changed = true
		pos = ""
	}

	// for $x in () ... return E  =  ().
	if _, ok := in.(*core.EmptySeq); ok {
		s.changed = true
		return &core.EmptySeq{}
	}

	// for $x in E return $x  =  E (no where, no position).
	if where == nil && pos == "" {
		if v, ok := ret.(*core.Var); ok && v.Name == f.Var {
			s.changed = true
			return in
		}
	}

	// Iterating over a variable that is statically a single item is just a
	// substitution (the context variable case).
	if pos == "" {
		if v, ok := in.(*core.Var); ok && env.lookup(v.Name).exactlyOne {
			s.changed = true
			newRet := core.Subst(ret, f.Var, v)
			if where == nil {
				return newRet
			}
			return &core.If{Cond: core.Subst(where, f.Var, v), Then: newRet, Else: &core.EmptySeq{}}
		}
	}

	return &core.For{Var: f.Var, Pos: pos, In: in, Where: where, Return: ret}
}

// rwTypeSwitch applies the two type rewritings of paper §3: eliminating
// cases that can never match and bypassing the typeswitch when a case is
// sure to match.
func (s *simplifier) rwTypeSwitch(ts *core.TypeSwitch, env *typeEnv) core.Expr {
	in := s.rw(ts.Input, env)
	ti := infer(in, env)

	var cases []core.TSCase
	for _, c := range ts.Cases {
		c.Body = s.rw(c.Body, env.bind(c.Var, typeInfo{t: c.Type, exactlyOne: true}))
		// Rule 1: statEnv ⊢ Type0 ∩ Type1 = ∅ — drop the case.
		if c.Type == core.TypeNumeric && !canBeNumeric(ti) {
			s.changed = true
			continue
		}
		// Rule 2: statEnv ⊢ Type0 ⊂ Type1 — the case is sure to match.
		if c.Type == core.TypeNumeric && mustBeNumeric(ti) && len(cases) == 0 {
			s.changed = true
			return &core.Let{Var: c.Var, In: in, Return: c.Body}
		}
		cases = append(cases, c)
	}
	def := s.rw(ts.Default, env.bind(ts.DefVar, ti))
	if len(cases) == 0 {
		// Only the default remains.
		s.changed = true
		if ts.DefVar == "" {
			return def
		}
		return &core.Let{Var: ts.DefVar, In: in, Return: def}
	}
	return &core.TypeSwitch{Input: in, Cases: cases, DefVar: ts.DefVar, Default: def}
}

// stripBoolean removes an fn:boolean wrapper in a position whose value is
// consumed via the effective boolean value anyway.
func (s *simplifier) stripBoolean(e core.Expr) core.Expr {
	if c, ok := e.(*core.Call); ok && c.Name == "boolean" && len(c.Args) == 1 {
		s.changed = true
		return c.Args[0]
	}
	return e
}

// whereAnd combines where and return for usage counting.
func whereAnd(where, ret core.Expr) core.Expr {
	if where == nil {
		return ret
	}
	return &core.And{L: where, R: ret}
}
