package rewrite

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"xqtp/internal/core"
	"xqtp/internal/parser"
	"xqtp/internal/xdm"
)

var testSingletons = map[string]bool{"d": true, "input": true, "dot": true}

func rewriteQuery(t *testing.T, q string) core.Expr {
	t.Helper()
	e, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse %s: %v", q, err)
	}
	c, err := core.Normalize(e, "dot")
	if err != nil {
		t.Fatalf("normalize %s: %v", q, err)
	}
	return Rewrite(c, Options{SingletonVars: testSingletons})
}

// Q1a, Q1b and Q1c must rewrite to the same TPNF′ expression (the paper's
// Q1-tp).
func TestQ1VariantsConverge(t *testing.T) {
	q1a := rewriteQuery(t, `$d//person[emailaddress]/name`)
	q1b := rewriteQuery(t, `(for $x in $d//person[emailaddress] return $x)/name`)
	q1c := rewriteQuery(t, `let $x := for $y in $d//person where $y/emailaddress return $y return $x/name`)
	sa, sb, sc := core.String(q1a), core.String(q1b), core.String(q1c)
	if sa != sb {
		t.Errorf("Q1a and Q1b diverge:\n  %s\n  %s", sa, sb)
	}
	if sa != sc {
		t.Errorf("Q1a and Q1c diverge:\n  %s\n  %s", sa, sc)
	}

	// The shape of Q1-tp: a single surrounding ddo over left-nested fors,
	// with the predicate as a where clause; no lets, no typeswitch, no
	// inner ddo.
	if strings.Count(sa, "ddo(") != 1 {
		t.Errorf("Q1-tp should contain exactly one ddo: %s", sa)
	}
	for _, banned := range []string{"typeswitch", "let $", "count(", "boolean("} {
		if strings.Contains(sa, banned) {
			t.Errorf("Q1-tp still contains %q: %s", banned, sa)
		}
	}
	top, ok := q1a.(*core.Call)
	if !ok || top.Name != "ddo" {
		t.Fatalf("top of Q1-tp is %T, want ddo", q1a)
	}
	f1, ok := top.Args[0].(*core.For)
	if !ok {
		t.Fatalf("ddo arg is %T", top.Args[0])
	}
	if st, ok := f1.Return.(*core.Step); !ok || st.Test.Name != "name" {
		t.Errorf("outer for should return child::name, got %s", core.String(f1.Return))
	}
	f2, ok := f1.In.(*core.For)
	if !ok || f2.Where == nil {
		t.Fatalf("middle for missing where: %s", sa)
	}
	if _, ok := f2.Return.(*core.Var); !ok {
		t.Errorf("middle for should return its variable: %s", core.String(f2.Return))
	}
	f3, ok := f2.In.(*core.For)
	if !ok {
		t.Fatalf("inner for missing: %s", sa)
	}
	if st, ok := f3.Return.(*core.Step); !ok || st.Axis != xdm.AxisDescendant || st.Test.Name != "person" {
		t.Errorf("inner for should return descendant::person: %s", core.String(f3.Return))
	}
	if _, ok := f3.In.(*core.Var); !ok {
		t.Errorf("inner for should range over $d: %s", core.String(f3.In))
	}
}

// The §5.1 path expression and its FLWOR variants must rewrite to the same
// core.
func TestFLWORVariantsConverge(t *testing.T) {
	variants := []string{
		`$input/site/people/person[emailaddress]/profile/interest`,
		`for $x1 in $input/site, $x2 in $x1/people, $x3 in $x2/person[emailaddress] return $x3/profile/interest`,
		`for $x1 in $input/site return for $x2 in $x1/people return $x2/person[emailaddress]/profile/interest`,
		`for $x3 in $input/site/people/person where $x3/emailaddress return $x3/profile/interest`,
		`for $x in $input/site/people/person[emailaddress], $i in $x/profile return $i/interest`,
		`for $p in $input/site/people/person[emailaddress] return $p/profile/interest`,
	}
	first := ""
	for i, v := range variants {
		s := core.String(rewriteQuery(t, v))
		if i == 0 {
			first = s
			continue
		}
		if s != first {
			t.Errorf("variant %d diverges:\n  path:    %s\n  variant: %s\n  (%s)", i, first, s, v)
		}
	}
	// All ddo calls are provably redundant for this child-only query.
	if strings.Contains(first, "ddo(") {
		t.Errorf("child-only path should lose all ddo calls: %s", first)
	}
}

// Q5 must NOT converge with Q1a: the map over persons keeps its inner ddo
// region separate.
func TestQ5StaysSplit(t *testing.T) {
	q1a := core.String(rewriteQuery(t, `$d//person[emailaddress]/name`))
	q5 := core.String(rewriteQuery(t, `for $x in $d//person[emailaddress] return $x/name`))
	if q1a == q5 {
		t.Fatalf("Q5 wrongly converged with Q1a: %s", q5)
	}
	// Q5 keeps its ddo *inside* the map (around the person region), not
	// around the whole query: the top-level expression stays a for.
	q5e := rewriteQuery(t, `for $x in $d//person[emailaddress] return $x/name`)
	top, ok := q5e.(*core.For)
	if !ok {
		t.Fatalf("Q5 top is %T, want for: %s", q5e, q5)
	}
	if c, ok := top.In.(*core.Call); !ok || c.Name != "ddo" {
		t.Errorf("Q5 person region should stay ddo-protected: %s", q5)
	}
}

// Positional predicates keep their positional variable and block loop
// splitting (paper §3).
func TestPositionalBlocksRewrites(t *testing.T) {
	q3 := rewriteQuery(t, `$d//person[1]/name`)
	s := core.String(q3)
	if !strings.Contains(s, " at $") {
		t.Errorf("positional variable was lost: %s", s)
	}
	if !strings.Contains(s, "= 1") {
		t.Errorf("positional comparison was lost: %s", s)
	}
	// No typeswitch left: the numeric case was selected statically.
	if strings.Contains(s, "typeswitch") {
		t.Errorf("typeswitch not eliminated: %s", s)
	}
}

// The non-positional predicate of Q2 becomes a plain comparison in a where
// clause.
func TestQ2Shape(t *testing.T) {
	s := core.String(rewriteQuery(t, `$d//person[name = "John"]/emailaddress`))
	if strings.Contains(s, "typeswitch") || strings.Contains(s, "boolean(") {
		t.Errorf("Q2 predicate not simplified: %s", s)
	}
	if !strings.Contains(s, `= "John"`) {
		t.Errorf("Q2 lost its comparison: %s", s)
	}
}

// randomDoc builds a random tree using the tags the test queries touch,
// including nested persons (the Q5 discriminator).
func randomDoc(rng *rand.Rand, n int) *xdm.Tree {
	tags := []string{"person", "name", "emailaddress", "profile", "interest", "site", "people", "a", "b"}
	root := xdm.NewElement("site")
	nodes := []*xdm.Node{root}
	for i := 0; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xdm.NewElement(tags[rng.Intn(len(tags))])
		if rng.Intn(3) == 0 {
			el.AppendChild(xdm.NewText([]string{"John", "Mary", "x"}[rng.Intn(3)]))
		}
		parent.AppendChild(el)
		nodes = append(nodes, el)
	}
	return xdm.Finalize(root)
}

// Differential test: rewriting preserves semantics on randomized documents.
func TestRewritePreservesSemantics(t *testing.T) {
	queries := []string{
		`$d//person[emailaddress]/name`,
		`(for $x in $d//person[emailaddress] return $x)/name`,
		`let $x := for $y in $d//person where $y/emailaddress return $y return $x/name`,
		`$d//person[name = "John"]/emailaddress`,
		`$d//person[1]/name`,
		`$d//person[2]/name`,
		`$d//person[name = "John"]/emailaddress[1]`,
		`for $x in $d//person[emailaddress] return $x/name`,
		`$d//person[position() = last()]/name`,
		`$d/site/people/person[emailaddress]/profile/interest`,
		`$d//person[name]/name[1]`,
		`$d//a[b]/b`,
		`count($d//person)`,
		`$d//person[emailaddress][name = "Mary"]/name`,
		`for $x at $i in $d//person where $i = 2 return $x/name`,
		`$d//person[not(emailaddress)]/name`,
		`exists($d//person[name = "John"])`,
		`$d//person[descendant::person]/name`,
		`for $x in $d//person where $x/name = "John" or $x/emailaddress return $x/name`,
	}
	for _, q := range queries {
		e, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		orig, err := core.Normalize(e, "dot")
		if err != nil {
			t.Fatalf("normalize %s: %v", q, err)
		}
		rew := Rewrite(orig, Options{SingletonVars: testSingletons})
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(seed))
			tr := randomDoc(rng, 5+rng.Intn(60))
			env := (*core.Env)(nil).
				Bind("dot", xdm.Singleton(tr.Root)).
				Bind("d", xdm.Singleton(tr.Root))
			want, err1 := core.Eval(orig, env)
			got, err2 := core.Eval(rew, env)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s seed %d: error mismatch %v vs %v", q, seed, err1, err2)
			}
			if !seqEqual(want, got) {
				t.Errorf("%s seed %d:\n  want %v\n  got  %v\n  rewritten: %s",
					q, seed, want, got, core.String(rew))
				break
			}
		}
	}
}

// seqEqual compares sequences item by item (nil and empty are equal).
func seqEqual(a, b xdm.Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Where-hoisting: a where clause that does not use its own loop variable
// converges with the path form (the variant-17 shape of §5.1).
func TestWhereHoisting(t *testing.T) {
	hoisted := core.String(rewriteQuery(t,
		`for $x1 in $input/site/people/person, $x2 in $x1/profile where $x1/emailaddress return $x2/interest`))
	path := core.String(rewriteQuery(t,
		`$input/site/people/person[emailaddress]/profile/interest`))
	if hoisted != path {
		t.Errorf("where-hoisting did not converge:\n  %s\n  %s", hoisted, path)
	}
}

// Quantified expressions lower to exists/empty over filtering loops, which
// the later phases turn into patterns.
func TestQuantifierRewrite(t *testing.T) {
	s := core.String(rewriteQuery(t, `some $x in $d//person satisfies $x/emailaddress`))
	if !strings.Contains(s, "exists(") || !strings.Contains(s, "where $") {
		t.Errorf("some-quantifier shape: %s", s)
	}
	s = core.String(rewriteQuery(t, `every $x in $d//person satisfies $x/emailaddress`))
	if !strings.Contains(s, "empty(") || !strings.Contains(s, "not(") {
		t.Errorf("every-quantifier shape: %s", s)
	}
}

// Union keeps exactly one ddo around the concatenation; the operand ddos
// are redundant under it.
func TestUnionRewrite(t *testing.T) {
	s := core.String(rewriteQuery(t, `$d//a | $d//b`))
	if got := strings.Count(s, "ddo("); got != 1 {
		t.Errorf("union should keep exactly 1 ddo, has %d: %s", got, s)
	}
}

// Rewriting is idempotent: rewriting a rewritten expression changes
// nothing.
func TestRewriteIdempotent(t *testing.T) {
	for _, q := range []string{
		`$d//person[emailaddress]/name`,
		`$d//person[1]/name`,
		`for $x in $d//person[emailaddress] return $x/name`,
		`$d/site/people/person[emailaddress]/profile/interest`,
	} {
		once := rewriteQuery(t, q)
		twice := Rewrite(once, Options{SingletonVars: testSingletons})
		if core.String(once) != core.String(twice) {
			t.Errorf("not idempotent for %s:\n  once:  %s\n  twice: %s", q, core.String(once), core.String(twice))
		}
	}
}
