package rewrite

import (
	"fmt"

	"xqtp/internal/core"
)

// loopSplitPass applies the loop-splitting rewrite of paper §3:
//
//	for $x in E1 (where C1)? return
//	  for $y in E2 (where C2)? return E3
//	→
//	for $y in (for $x in E1 (where C1)? return E2)
//	  (where C2)? return E3
//
// provided neither loop carries a positional variable (the context position
// would otherwise be computed against the wrong sequence, as the paper's
// position()=1 example shows) and $x does not occur free in C2 or E3. The
// rewrite left-nests for chains, imposing the nesting that the algebraic
// tree-pattern merge rules expect.
// The pass also isolates predicates (a TPNF′ clean-up): a filtering loop
// whose body performs further navigation,
//
//	for $x in E where C return R      (R ≠ $x)
//	→
//	for $x in (for $x' in E where C[$x↦$x'] return $x') return R
//
// so that every where clause sits on a loop that returns its own variable,
// the shape the algebraic predicate-merge rule (e) recognizes.
func loopSplitPass(e core.Expr) (core.Expr, bool) {
	s := &splitter{used: map[string]bool{}}
	collectAllVars(e, s.used)
	out := s.rw(e)
	return out, s.changed
}

type splitter struct {
	changed bool
	used    map[string]bool
	counter int
}

func collectAllVars(e core.Expr, out map[string]bool) {
	switch x := e.(type) {
	case *core.Var:
		out[x.Name] = true
	case *core.For:
		out[x.Var] = true
		if x.Pos != "" {
			out[x.Pos] = true
		}
	case *core.Let:
		out[x.Var] = true
	}
	for _, ch := range core.Children(e) {
		collectAllVars(ch, out)
	}
}

func (s *splitter) fresh() string {
	for {
		s.counter++
		name := fmt.Sprintf("tp%d", s.counter)
		if !s.used[name] {
			s.used[name] = true
			return name
		}
	}
}

func (s *splitter) rw(e core.Expr) core.Expr {
	switch x := e.(type) {
	case *core.Step:
		return &core.Step{Input: s.rw(x.Input), Axis: x.Axis, Test: x.Test}
	case *core.For:
		out := &core.For{Var: x.Var, Pos: x.Pos, In: s.rw(x.In), Return: s.rw(x.Return)}
		if x.Where != nil {
			out.Where = s.rw(x.Where)
		}
		return s.split(out)
	case *core.Let:
		return &core.Let{Var: x.Var, In: s.rw(x.In), Return: s.rw(x.Return)}
	case *core.If:
		return &core.If{Cond: s.rw(x.Cond), Then: s.rw(x.Then), Else: s.rw(x.Else)}
	case *core.TypeSwitch:
		out := &core.TypeSwitch{Input: s.rw(x.Input), DefVar: x.DefVar, Default: s.rw(x.Default)}
		for _, c := range x.Cases {
			c.Body = s.rw(c.Body)
			out.Cases = append(out.Cases, c)
		}
		return out
	case *core.Call:
		out := &core.Call{Name: x.Name, Args: make([]core.Expr, len(x.Args))}
		for i, a := range x.Args {
			out.Args[i] = s.rw(a)
		}
		return out
	case *core.Compare:
		return &core.Compare{Op: x.Op, L: s.rw(x.L), R: s.rw(x.R)}
	case *core.Sequence:
		out := &core.Sequence{Items: make([]core.Expr, len(x.Items))}
		for i, it := range x.Items {
			out.Items[i] = s.rw(it)
		}
		return out
	case *core.Arith:
		return &core.Arith{Op: x.Op, L: s.rw(x.L), R: s.rw(x.R)}
	case *core.And:
		return &core.And{L: s.rw(x.L), R: s.rw(x.R)}
	case *core.Or:
		return &core.Or{L: s.rw(x.L), R: s.rw(x.R)}
	}
	return e
}

// split applies where-hoisting, predicate isolation and the loop-split rule
// at this node, repeatedly while they keep matching.
func (s *splitter) split(f *core.For) core.Expr {
	// Where hoisting: a nested loop's where clause that does not depend on
	// the inner variable filters the outer iteration:
	//
	//	for $x in E1 (where C1)? return for $y in E2 where C2 return E3
	//	→
	//	for $x in E1 where C1 and C2 return for $y in E2 return E3
	//
	// when $y (and its position) do not occur in C2. This is what makes
	// "for $x1 in …/person, $x2 in $x1/profile where $x1/emailaddress …"
	// converge with the plain path form.
	if inner, ok := f.Return.(*core.For); ok && inner.Where != nil {
		if core.Usage(inner.Where, inner.Var) == 0 &&
			(inner.Pos == "" || core.Usage(inner.Where, inner.Pos) == 0) {
			s.changed = true
			w := inner.Where
			if f.Where != nil {
				w = &core.And{L: f.Where, R: w}
			}
			f = &core.For{
				Var: f.Var, Pos: f.Pos, In: f.In, Where: w,
				Return: &core.For{Var: inner.Var, Pos: inner.Pos, In: inner.In, Return: inner.Return},
			}
		}
	}
	// Predicate isolation: make the filtering loop return its variable.
	if f.Pos == "" && f.Where != nil {
		if v, ok := f.Return.(*core.Var); !ok || v.Name != f.Var {
			inner := f.Var
			if core.Usage(f.In, inner) > 0 {
				inner = s.fresh()
			}
			s.changed = true
			f = &core.For{
				Var: f.Var,
				In: &core.For{
					Var:    inner,
					In:     f.In,
					Where:  core.Subst(f.Where, f.Var, &core.Var{Name: inner}),
					Return: &core.Var{Name: inner},
				},
				Return: f.Return,
			}
		}
	}
	for {
		inner, ok := f.Return.(*core.For)
		if !ok {
			return f
		}
		if f.Pos != "" || inner.Pos != "" {
			return f
		}
		if inner.Where != nil && core.Usage(inner.Where, f.Var) > 0 {
			return f
		}
		if core.Usage(inner.Return, f.Var) > 0 {
			return f
		}
		s.changed = true
		f = &core.For{
			Var: inner.Var,
			In: &core.For{
				Var:    f.Var,
				In:     f.In,
				Where:  f.Where,
				Return: inner.In,
			},
			Where:  inner.Where,
			Return: inner.Return,
		}
	}
}
