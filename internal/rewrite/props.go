package rewrite

import (
	"xqtp/internal/core"
	"xqtp/internal/xdm"
)

// props are the order/duplicate-freeness annotations of the document-order
// rewritings (paper §3, [19]): whether an expression's result is statically
// known to be in document order (ord), duplicate-free (df), free of
// ancestor-descendant pairs (unnested), and at most one item (atMostOne).
// A ddo call around an expression that is already ord∧df is the identity
// and can be removed.
type props struct {
	ord, df, unnested, atMostOne bool
}

// allProps holds for the empty sequence and for singleton variables.
var allProps = props{ord: true, df: true, unnested: true, atMostOne: true}

// noProps is the conservative bottom.
var noProps = props{}

// propEnv maps in-scope variables to the properties of their values.
type propEnv struct {
	name   string
	p      props
	parent *propEnv
}

func (e *propEnv) bind(name string, p props) *propEnv {
	return &propEnv{name: name, p: p, parent: e}
}

func (e *propEnv) lookup(name string) props {
	for t := e; t != nil; t = t.parent {
		if t.name == name {
			return t.p
		}
	}
	return noProps
}

// inferProps computes the order/duplicate-freeness annotations of e.
func inferProps(e core.Expr, env *propEnv) props {
	switch x := e.(type) {
	case *core.Var:
		return env.lookup(x.Name)
	case *core.EmptySeq:
		return allProps
	case *core.StringLit, *core.NumberLit, *core.Compare, *core.And, *core.Or, *core.Arith:
		// Atomic results: ord/df are meaningless (ddo rejects them), but
		// they are at most one item.
		return props{atMostOne: true}
	case *core.Sequence:
		// Concatenation gives no order guarantees (the union operator's
		// surrounding ddo re-establishes them).
		return noProps
	case *core.Step:
		return stepProps(inferProps(x.Input, env), x.Axis)
	case *core.Call:
		switch x.Name {
		case "ddo":
			in := inferProps(x.Args[0], env)
			return props{ord: true, df: true, unnested: in.unnested, atMostOne: in.atMostOne}
		case "root":
			// The root of a single node is a single document node.
			in := inferProps(x.Args[0], env)
			return props{ord: in.atMostOne, df: in.atMostOne, unnested: in.atMostOne, atMostOne: in.atMostOne}
		case "count", "boolean", "not", "empty", "exists", "true", "false":
			return props{atMostOne: true}
		case "doc":
			// One document node.
			return props{ord: true, df: true, unnested: true, atMostOne: true}
		case "collection":
			// Corpus members carry ascending tree IDs in corpus order, so the
			// roots come out ordered (CompareOrder ranks documents by ID),
			// distinct, and trivially unnested (no root contains another).
			return props{ord: true, df: true, unnested: true}
		}
		return noProps
	case *core.Let:
		return inferProps(x.Return, env.bind(x.Var, inferProps(x.In, env)))
	case *core.If:
		th := inferProps(x.Then, env)
		el := inferProps(x.Else, env)
		return props{
			ord:       th.ord && el.ord,
			df:        th.df && el.df,
			unnested:  th.unnested && el.unnested,
			atMostOne: th.atMostOne && el.atMostOne,
		}
	case *core.For:
		return forProps(x, env)
	case *core.TypeSwitch:
		return noProps
	}
	return noProps
}

// stepProps derives the properties of an axis step applied to a context
// with the given properties.
func stepProps(in props, axis xdm.Axis) props {
	if !in.atMostOne {
		// A step over a general sequence is a mapping; require the context
		// to be ordered, duplicate-free and unnested to conclude anything.
		if !(in.ord && in.df && in.unnested) {
			return noProps
		}
	}
	switch axis {
	case xdm.AxisChild, xdm.AxisAttribute:
		// Children/attributes of unnested ordered contexts are ordered,
		// duplicate-free and unnested.
		return props{ord: true, df: true, unnested: true}
	case xdm.AxisSelf:
		return in
	case xdm.AxisParent:
		if in.atMostOne {
			return allProps
		}
		// Distinct nodes can share a parent: duplicates possible.
		return noProps
	case xdm.AxisDescendant, xdm.AxisDescendantOrSelf:
		// Results can nest (a descendant and its own descendant).
		return props{ord: true, df: true, unnested: false}
	case xdm.AxisAncestor, xdm.AxisAncestorOrSelf:
		if in.atMostOne {
			// The ancestor chain of one node is ordered and duplicate-free
			// but nested by construction.
			return props{ord: true, df: true, unnested: false, atMostOne: false}
		}
		return noProps
	}
	return noProps
}

// forProps derives the properties of a for loop: if the input is ordered,
// duplicate-free and unnested, and the body maps each binding into its own
// subtree with an ordered duplicate-free result, the concatenation is
// ordered and duplicate-free (the distributivity law behind the paper's
// FLWOR-vs-path robustness, §5.1).
func forProps(f *core.For, env *propEnv) props {
	in := inferProps(f.In, env)
	bodyEnv := env.bind(f.Var, allProps)
	if f.Pos != "" {
		bodyEnv = bodyEnv.bind(f.Pos, props{atMostOne: true})
	}
	ret := inferProps(f.Return, bodyEnv)
	if in.atMostOne {
		// Zero or one iteration: the body's properties carry over.
		return props{ord: ret.ord, df: ret.df, unnested: ret.unnested, atMostOne: ret.atMostOne}
	}
	if in.ord && in.df && in.unnested && ret.ord && ret.df &&
		containedIn(f.Return, f.Var, nil) >= containedAtOrBelow {
		return props{ord: true, df: true, unnested: ret.unnested}
	}
	return noProps
}

// Containment degrees of an expression's result relative to a variable.
const (
	notContained       = 0 // no containment known
	containedAtOrBelow = 1 // every result node is the variable's node or below it
	containedBelow     = 2 // every result node is strictly below the variable's node
)

type containEnv struct {
	name   string
	deg    int
	parent *containEnv
}

func (e *containEnv) bind(name string, deg int) *containEnv {
	return &containEnv{name: name, deg: deg, parent: e}
}

func (e *containEnv) lookup(name string) int {
	for t := e; t != nil; t = t.parent {
		if t.name == name {
			return t.deg
		}
	}
	return notContained
}

// containedIn computes the containment degree of e's result nodes relative
// to the value of variable v.
func containedIn(e core.Expr, v string, env *containEnv) int {
	switch x := e.(type) {
	case *core.Var:
		if x.Name == v {
			return containedAtOrBelow
		}
		return env.lookup(x.Name)
	case *core.EmptySeq:
		return containedBelow // vacuously
	case *core.Step:
		in := containedIn(x.Input, v, env)
		if in == notContained {
			return notContained
		}
		switch x.Axis {
		case xdm.AxisChild, xdm.AxisAttribute, xdm.AxisDescendant:
			return containedBelow
		case xdm.AxisSelf:
			return in
		case xdm.AxisDescendantOrSelf:
			return in
		}
		return notContained
	case *core.Call:
		if x.Name == "ddo" {
			return containedIn(x.Args[0], v, env)
		}
		return notContained
	case *core.Sequence:
		deg := containedBelow // vacuous for the empty sequence
		for _, it := range x.Items {
			if d := containedIn(it, v, env); d < deg {
				deg = d
			}
		}
		return deg
	case *core.For:
		inDeg := containedIn(x.In, v, env)
		bodyEnv := env.bind(x.Var, inDeg)
		if x.Pos != "" {
			bodyEnv = bodyEnv.bind(x.Pos, notContained)
		}
		return containedIn(x.Return, v, bodyEnv)
	case *core.Let:
		return containedIn(x.Return, v, env.bind(x.Var, containedIn(x.In, v, env)))
	case *core.If:
		th := containedIn(x.Then, v, env)
		el := containedIn(x.Else, v, env)
		if th < el {
			return th
		}
		return el
	}
	return notContained
}
