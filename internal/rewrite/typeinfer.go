// Package rewrite implements the core rewritings that normalize queries
// into TPNF′ (paper §3): type rewritings on typeswitch expressions, FLWOR
// rewritings, document-order (ddo) rewritings, and loop splitting. Applied
// to a fixpoint they bring every query whose navigation lies in the
// tree-pattern fragment into the same canonical form, regardless of the
// syntax it was originally written in.
package rewrite

import (
	"xqtp/internal/core"
)

// typeInfo is the static typing judgment used by the type rewritings: the
// content kind of an expression's result plus whether it is statically known
// to be exactly one item.
type typeInfo struct {
	t          core.SeqType
	exactlyOne bool
}

var unknownType = typeInfo{t: core.TypeUnknown}

// typeEnv maps in-scope variables to their inferred types.
type typeEnv struct {
	name   string
	info   typeInfo
	parent *typeEnv
}

func (e *typeEnv) bind(name string, info typeInfo) *typeEnv {
	return &typeEnv{name: name, info: info, parent: e}
}

func (e *typeEnv) lookup(name string) typeInfo {
	for t := e; t != nil; t = t.parent {
		if t.name == name {
			return t.info
		}
	}
	return unknownType
}

// infer computes the static type of a core expression.
func infer(e core.Expr, env *typeEnv) typeInfo {
	switch x := e.(type) {
	case *core.Var:
		return env.lookup(x.Name)
	case *core.NumberLit:
		return typeInfo{core.TypeNumeric, true}
	case *core.StringLit:
		return typeInfo{core.TypeString, true}
	case *core.EmptySeq:
		return typeInfo{core.TypeEmpty, false}
	case *core.Step:
		return typeInfo{core.TypeNodes, false}
	case *core.Compare, *core.And, *core.Or:
		return typeInfo{core.TypeBoolean, true}
	case *core.Arith:
		l := infer(x.L, env)
		r := infer(x.R, env)
		return typeInfo{core.TypeNumeric, l.exactlyOne && r.exactlyOne}
	case *core.Sequence:
		if len(x.Items) == 0 {
			return typeInfo{core.TypeEmpty, false}
		}
		t := infer(x.Items[0], env).t
		for _, it := range x.Items[1:] {
			if infer(it, env).t != t {
				return unknownType
			}
		}
		return typeInfo{t: t, exactlyOne: false}
	case *core.Call:
		switch x.Name {
		case "ddo", "root":
			return typeInfo{core.TypeNodes, x.Name == "root"}
		case "count", "string-length", "sum":
			return typeInfo{core.TypeNumeric, true}
		case "number":
			return typeInfo{core.TypeNumeric, true}
		case "avg", "min", "max":
			return typeInfo{t: core.TypeNumeric, exactlyOne: false}
		case "boolean", "not", "empty", "exists", "true", "false", "contains", "starts-with":
			return typeInfo{core.TypeBoolean, true}
		case "string", "concat", "normalize-space", "substring", "name":
			return typeInfo{core.TypeString, true}
		case "data":
			return unknownType
		}
		return unknownType
	case *core.For:
		inInfo := infer(x.In, env)
		body := env.bind(x.Var, typeInfo{t: inInfo.t, exactlyOne: true})
		if x.Pos != "" {
			body = body.bind(x.Pos, typeInfo{core.TypeNumeric, true})
		}
		ret := infer(x.Return, body)
		return typeInfo{t: ret.t, exactlyOne: false}
	case *core.Let:
		return infer(x.Return, env.bind(x.Var, infer(x.In, env)))
	case *core.If:
		th := infer(x.Then, env)
		el := infer(x.Else, env)
		if el.t == core.TypeEmpty {
			return typeInfo{t: th.t, exactlyOne: false}
		}
		if th.t == core.TypeEmpty {
			return typeInfo{t: el.t, exactlyOne: false}
		}
		if th.t == el.t {
			return typeInfo{t: th.t, exactlyOne: th.exactlyOne && el.exactlyOne}
		}
		return unknownType
	case *core.TypeSwitch:
		return unknownType
	}
	return unknownType
}

// canBeNumeric reports whether the expression could evaluate to a single
// numeric item (the condition for a typeswitch numeric() case to fire).
func canBeNumeric(ti typeInfo) bool {
	switch ti.t {
	case core.TypeNodes, core.TypeString, core.TypeBoolean, core.TypeEmpty:
		return false
	}
	return true
}

// mustBeNumeric reports whether the expression always evaluates to a single
// numeric item.
func mustBeNumeric(ti typeInfo) bool {
	return ti.t == core.TypeNumeric && ti.exactlyOne
}
