package optimize

import (
	"xqtp/internal/algebra"
	"xqtp/internal/pattern"
	"xqtp/internal/xdm"
)

// rename records a field substitution to apply to the whole plan after a
// rule fires (used by the map-collapse rules, whose local rewrite retargets
// consumers of the eliminated field).
type rename struct {
	from, to string
}

// tryRules tries every rule at node e (with the given set-tolerance) and
// returns the replacement, an optional plan-wide field rename, and whether
// a rule fired.
func (o *optimizer) tryRules(e algebra.Expr, tolerant bool) (algebra.Expr, *rename, bool) {
	if out, ok := o.ruleF(e); ok {
		return out, nil, true
	}
	if !o.noHead {
		if out, ok := o.ruleHead(e); ok {
			return out, nil, true
		}
	}
	if !o.noBulk {
		if out, ok := o.ruleB(e, tolerant); ok {
			return out, nil, true
		}
	}
	// The per-tuple fallback (a) only runs once the bulk rules have reached
	// a fixpoint: a premature per-tuple conversion would hide a bulk
	// opportunity that inner conversions are about to expose.
	if o.enableFallback {
		if out, ok := o.ruleA(e); ok {
			return out, nil, true
		}
	}
	if out, ok := o.ruleFused(e); ok {
		return out, nil, true
	}
	if out, rn, ok := o.ruleC(e); ok {
		return out, rn, true
	}
	if out, ok := o.ruleD(e); ok {
		return out, nil, true
	}
	if out, ok := o.ruleE(e); ok {
		return out, nil, true
	}
	return e, nil, false
}

// singleStepTTP builds MapToItem{IN#out}(TupleTreePattern[IN#f/axis::test{out}](input)).
func (o *optimizer) singleStepTTP(f string, axis xdm.Axis, test xdm.NodeTest, input algebra.Expr) *algebra.MapToItem {
	out := o.fresh()
	st := pattern.NewStep(axis, test)
	st.Out = out
	return &algebra.MapToItem{
		Dep:   &algebra.Field{Name: out},
		Input: &algebra.TupleTreePattern{Pattern: pattern.New(f, st), Input: input},
	}
}

// convertibleField reports whether a TreeJoin input is a plain tuple-field
// access whose field holds single items (LetBind-bound names may hold whole
// sequences and are excluded).
func (o *optimizer) convertibleField(e algebra.Expr) (string, bool) {
	f, ok := e.(*algebra.Field)
	if !ok || o.letNames[f.Name] {
		return "", false
	}
	return f.Name, true
}

// ruleB is Fig. 3 rule (b), the bulk conversion:
//
//	MapToItem{TreeJoin[a](IN#f)}(Op) → MapToItem{IN#out}(TTP[IN#f/a{out}](Op))
//
// It reorders the concatenated result into document order (the operator's
// output is ddo'd over the whole stream), so it fires only when that is
// harmless: the consumer is set-tolerant (inside an fs:ddo region) or the
// field values are provably ordered and unnested across the stream. When it
// cannot fire, ruleA provides the per-tuple fallback.
func (o *optimizer) ruleB(e algebra.Expr, tolerant bool) (algebra.Expr, bool) {
	mti, ok := e.(*algebra.MapToItem)
	if !ok {
		return nil, false
	}
	tj, ok := mti.Dep.(*algebra.TreeJoin)
	if !ok {
		return nil, false
	}
	f, ok := o.convertibleField(tj.Input)
	if !ok {
		return nil, false
	}
	if !tolerant && !o.fieldUO(mti.Input, f) {
		return nil, false
	}
	return o.singleStepTTP(f, tj.Axis, tj.Test, mti.Input), true
}

// ruleA is Fig. 3 rule (a), the per-tuple conversion, applied where the
// bulk rule is not available:
//
//   - MapToItem{TreeJoin[a](IN#f)}(Op) →
//     MapToItem{MapToItem{IN#out}(TTP[IN#f/a{out}](IN))}(Op)
//     (the Q5 shape: a tree pattern evaluated inside a map), and
//   - fn:boolean(TreeJoin[a](IN#f)) →
//     fn:boolean(MapToItem{IN#out}(TTP[IN#f/a{out}](IN)))
//     (existence predicates, preparing rule (e)).
func (o *optimizer) ruleA(e algebra.Expr) (algebra.Expr, bool) {
	switch x := e.(type) {
	case *algebra.MapToItem:
		tj, ok := x.Dep.(*algebra.TreeJoin)
		if !ok {
			return nil, false
		}
		f, ok := o.convertibleField(tj.Input)
		if !ok {
			return nil, false
		}
		return &algebra.MapToItem{
			Dep:   o.singleStepTTP(f, tj.Axis, tj.Test, &algebra.In{}),
			Input: x.Input,
		}, true
	case *algebra.Call:
		if x.Name != "boolean" || len(x.Args) != 1 {
			return nil, false
		}
		tj, ok := x.Args[0].(*algebra.TreeJoin)
		if !ok {
			return nil, false
		}
		f, ok := o.convertibleField(tj.Input)
		if !ok {
			return nil, false
		}
		return &algebra.Call{
			Name: "boolean",
			Args: []algebra.Expr{o.singleStepTTP(f, tj.Axis, tj.Test, &algebra.In{})},
		}, true
	}
	return nil, false
}

// ruleFused is the composition of rules (a) and (c) for steps feeding a
// tuple constructor (predicate sub-plans):
//
//	MapFromItem{[g : IN]}(TreeJoin[a](IN#f)) → TTP[IN#f/a{g}](IN)
func (o *optimizer) ruleFused(e algebra.Expr) (algebra.Expr, bool) {
	mfi, ok := e.(*algebra.MapFromItem)
	if !ok {
		return nil, false
	}
	tj, ok := mfi.Input.(*algebra.TreeJoin)
	if !ok {
		return nil, false
	}
	f, ok := o.convertibleField(tj.Input)
	if !ok {
		return nil, false
	}
	st := pattern.NewStep(tj.Axis, tj.Test)
	st.Out = mfi.Bind
	return &algebra.TupleTreePattern{Pattern: pattern.New(f, st), Input: &algebra.In{}}, true
}

// ruleC is Fig. 3 rule (c), eliminating item-tuple conversions:
//
//	MapFromItem{[g : IN]}(MapToItem{IN#f}(Op)) → Op, renaming g to f in the
//	rest of the plan.
//
// Sound when f holds one item per tuple, which holds for fields produced by
// MapFromItem, MapIndex or pattern output annotations (LetBind-bound names
// are excluded).
func (o *optimizer) ruleC(e algebra.Expr) (algebra.Expr, *rename, bool) {
	mfi, ok := e.(*algebra.MapFromItem)
	if !ok {
		return nil, nil, false
	}
	mti, ok := mfi.Input.(*algebra.MapToItem)
	if !ok {
		return nil, nil, false
	}
	dep, ok := mti.Dep.(*algebra.Field)
	if !ok || o.letNames[dep.Name] {
		return nil, nil, false
	}
	return mti.Input, &rename{from: mfi.Bind, to: dep.Name}, true
}

// ruleD is Fig. 3 rule (d), merging consecutive steps:
//
//	TTP[IN#g/rest{out}](TTP[IN#f/spine{g}](Op)) → TTP[IN#f/spine/rest{out}](Op)
//
// when the inner pattern's only output is its extraction point g, the outer
// pattern is anchored at g, and g has no other consumers in the plan.
func (o *optimizer) ruleD(e algebra.Expr) (algebra.Expr, bool) {
	outer, ok := e.(*algebra.TupleTreePattern)
	if !ok {
		return nil, false
	}
	inner, ok := outer.Input.(*algebra.TupleTreePattern)
	if !ok {
		return nil, false
	}
	g, ok := inner.Pattern.SingleOutput()
	if !ok || outer.Pattern.Input != g {
		return nil, false
	}
	// The only consumer of g must be the outer pattern's anchor.
	if algebra.FieldUses(o.root, g) != 1 {
		return nil, false
	}
	merged := inner.Pattern.Clone()
	ep := merged.ExtractionPoint()
	ep.Out = ""
	ep.Next = outer.Pattern.Root.Clone()
	return &algebra.TupleTreePattern{Pattern: merged, Input: inner.Input}, true
}

// ruleE is Fig. 3 rule (e), merging existence predicates into the pattern:
//
//	Select{fn:boolean(MapToItem{IN#o}(TTP[IN#g/pred{o}](IN))) and …}(TTP[…{g}](Op))
//	→ TTP[…{g}[pred]…](Op)
//
// Conjuncts that are not in pattern-existence form stay in a residual
// Select (the Q2 behaviour: value comparisons are preserved).
func (o *optimizer) ruleE(e algebra.Expr) (algebra.Expr, bool) {
	sel, ok := e.(*algebra.Select)
	if !ok {
		return nil, false
	}
	ttp, ok := sel.Input.(*algebra.TupleTreePattern)
	if !ok {
		return nil, false
	}
	g, ok := ttp.Pattern.SingleOutput()
	if !ok {
		return nil, false
	}
	conjuncts := flattenAnd(sel.Pred)
	var branches []*pattern.Step
	var residual []algebra.Expr
	for _, c := range conjuncts {
		if br, ok := o.predBranch(c, g); ok {
			branches = append(branches, br)
		} else {
			residual = append(residual, c)
		}
	}
	if len(branches) == 0 {
		return nil, false
	}
	merged := ttp.Pattern.Clone()
	ep := merged.ExtractionPoint()
	ep.Preds = append(ep.Preds, branches...)
	var out algebra.Expr = &algebra.TupleTreePattern{Pattern: merged, Input: ttp.Input}
	if len(residual) > 0 {
		out = &algebra.Select{Pred: rebuildAnd(residual), Input: out}
	}
	return out, true
}

// predBranch recognizes fn:boolean(MapToItem{IN#o}(TTP[IN#g/chain{o}](IN)))
// and returns the chain as a predicate branch (output annotations cleared).
func (o *optimizer) predBranch(c algebra.Expr, g string) (*pattern.Step, bool) {
	call, ok := c.(*algebra.Call)
	if !ok || call.Name != "boolean" || len(call.Args) != 1 {
		return nil, false
	}
	mti, ok := call.Args[0].(*algebra.MapToItem)
	if !ok {
		return nil, false
	}
	dep, ok := mti.Dep.(*algebra.Field)
	if !ok {
		return nil, false
	}
	ttp, ok := mti.Input.(*algebra.TupleTreePattern)
	if !ok {
		return nil, false
	}
	if _, ok := ttp.Input.(*algebra.In); !ok {
		return nil, false
	}
	if ttp.Pattern.Input != g {
		return nil, false
	}
	out, ok := ttp.Pattern.SingleOutput()
	if !ok || out != dep.Name {
		return nil, false
	}
	return ttp.Pattern.Root.Clone().ClearOutputs(), true
}

// ruleF is Fig. 3 rule (f): the TupleTreePattern operator's output is
// already in distinct document order when its single output field is the
// extraction point, so a surrounding fs:ddo is redundant:
//
//	fs:ddo(MapToItem{IN#out}(TTP[p{out}](Op))) → MapToItem{IN#out}(TTP[p{out}](Op))
func (o *optimizer) ruleF(e algebra.Expr) (algebra.Expr, bool) {
	call, ok := e.(*algebra.Call)
	if !ok || call.Name != "ddo" || len(call.Args) != 1 {
		return nil, false
	}
	mti, ok := call.Args[0].(*algebra.MapToItem)
	if !ok {
		return nil, false
	}
	dep, ok := mti.Dep.(*algebra.Field)
	if !ok {
		return nil, false
	}
	ttp, ok := mti.Input.(*algebra.TupleTreePattern)
	if !ok {
		return nil, false
	}
	if out, ok := ttp.Pattern.SingleOutput(); !ok || out != dep.Name {
		return nil, false
	}
	return mti, true
}

// ruleHead is the positional-first physical rewrite:
//
//	Select{IN#p = 1}(MapIndex[p](Op)) → Head(Op)
//
// when p has no other consumers. It gives nested-loop plans their
// cursor-style early exit on [1] predicates (§5.3).
func (o *optimizer) ruleHead(e algebra.Expr) (algebra.Expr, bool) {
	sel, ok := e.(*algebra.Select)
	if !ok {
		return nil, false
	}
	mi, ok := sel.Input.(*algebra.MapIndex)
	if !ok {
		return nil, false
	}
	cmp, ok := sel.Pred.(*algebra.Compare)
	if !ok || cmp.Op != xdm.OpEq {
		return nil, false
	}
	f, ok := cmp.L.(*algebra.Field)
	if !ok || f.Name != mi.Field {
		return nil, false
	}
	c, ok := cmp.R.(*algebra.Const)
	if !ok {
		return nil, false
	}
	if n, ok := c.Item.(xdm.Integer); !ok || n != 1 {
		return nil, false
	}
	// p must have no consumers besides the comparison just removed.
	if algebra.FieldUses(o.root, mi.Field) != 1 {
		return nil, false
	}
	return &algebra.Head{Input: mi.Input}, true
}

func flattenAnd(e algebra.Expr) []algebra.Expr {
	if a, ok := e.(*algebra.And); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []algebra.Expr{e}
}

func rebuildAnd(es []algebra.Expr) algebra.Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &algebra.And{L: out, R: e}
	}
	return out
}
